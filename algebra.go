package gea

import (
	"gea/internal/core"
	"gea/internal/interval"
)

// The two-world algebra (thesis Chapter 3).
type (
	// Enum is a cluster in the extensional world: an enumeration of
	// libraries over a tag set.
	Enum = core.Enum
	// Sumy is a cluster in the intensional world: per-tag range, mean and
	// standard deviation.
	Sumy = core.Sumy
	// SumyRow is one row of a Sumy table.
	SumyRow = core.SumyRow
	// Gap summarizes the difference between Sumy tables.
	Gap = core.Gap
	// GapRow is one row of a Gap table.
	GapRow = core.GapRow
	// GapValue is one gap level (possibly NULL).
	GapValue = core.GapValue
	// AggregateOptions extends the basic SUMY aggregates.
	AggregateOptions = core.AggregateOptions
	// TagIndexes backs the optimized populate() of Section 3.3.2.
	TagIndexes = core.TagIndexes
	// PopulateStats reports a populate() call's work.
	PopulateStats = core.PopulateStats
	// PopulateOptions tune the populate() evaluation.
	PopulateOptions = core.PopulateOptions
	// MineResult is one mined cluster in both worlds.
	MineResult = core.MineResult
	// Algorithm selects the fascicle miner backing Mine.
	Algorithm = core.Algorithm
	// SumyPredicate / GapPredicate drive relational selection.
	SumyPredicate = core.SumyPredicate
	GapPredicate  = core.GapPredicate
	// CompareOp is the set operation of a GAP comparison.
	CompareOp = core.CompareOp
	// CompareQuery is one of the thirteen follow-up queries (Section 4.3.3).
	CompareQuery = core.CompareQuery
	// RangeCondition drives range-arithmetic searches.
	RangeCondition = core.RangeCondition
	// RangeSearchRow / RangeCell / RangeOutcome are range-search results.
	RangeSearchRow = core.RangeSearchRow
	RangeCell      = core.RangeCell
	RangeOutcome   = core.RangeOutcome
	// FrequencyResult is one row of an expression-value search.
	FrequencyResult = core.FrequencyResult
)

// Mining algorithms.
const (
	LatticeAlgorithm = core.LatticeAlgorithm
	GreedyAlgorithm  = core.GreedyAlgorithm
)

// Comparison operations and queries.
const (
	OpUnion      = core.OpUnion
	OpIntersect  = core.OpIntersect
	OpDifference = core.OpDifference

	QHigherInABoth  = core.QHigherInABoth
	QLowerInABoth   = core.QLowerInABoth
	QHigherInBBoth  = core.QHigherInBBoth
	QLowerInBBoth   = core.QLowerInBBoth
	QNonNullBoth    = core.QNonNullBoth
	QHigherInAOnlyA = core.QHigherInAOnlyA
	QLowerInAOnlyA  = core.QLowerInAOnlyA
	QHigherInBOnlyA = core.QHigherInBOnlyA
	QLowerInBOnlyA  = core.QLowerInBOnlyA
	QHigherInAOnlyB = core.QHigherInAOnlyB
	QLowerInAOnlyB  = core.QLowerInAOnlyB
	QHigherInBOnlyB = core.QHigherInBOnlyB
	QLowerInBOnlyB  = core.QLowerInBOnlyB
)

// Range-search outcomes.
const (
	RangeSatisfied = core.RangeSatisfied
	RangeNo        = core.RangeNo
	RangeNotExist  = core.RangeNotExist
)

// NullGap is the NULL gap level (the overlap case of Figure 3.4).
var NullGap = core.NullGap

// Operators.
var (
	// FullEnum wraps a whole dataset as a degenerate cluster.
	FullEnum = core.FullEnum
	// NewEnum builds an Enum over explicit rows and columns.
	NewEnum = core.NewEnum
	// NewSumy builds a Sumy from rows.
	NewSumy = core.NewSumy
	// NewGap builds a Gap from rows.
	NewGap = core.NewGap
	// Aggregate converts a cluster to its intensional form.
	Aggregate = core.Aggregate
	// Populate converts a cluster definition to its enumeration;
	// PopulateWithOptions adds evaluation options (e.g. simulated row
	// fetch for the Table 3.2 experiment).
	Populate            = core.Populate
	PopulateWithOptions = core.PopulateWithOptions
	// BuildTagIndexes creates sorted per-tag indexes for Populate.
	BuildTagIndexes = core.BuildTagIndexes
	// Mine runs fascicle production and builds both forms of each cluster.
	Mine = core.Mine
	// Diff produces a Gap from two Sumy tables.
	Diff = core.Diff
	// SelectSumy / ProjectSumy / MinusSumy / IntersectSumy / UnionSumy are
	// the intensional-world operators on SUMY tables.
	SelectSumy    = core.SelectSumy
	ProjectSumy   = core.ProjectSumy
	MinusSumy     = core.MinusSumy
	IntersectSumy = core.IntersectSumy
	UnionSumy     = core.UnionSumy
	// SelectGap / ProjectGap / MinusGap / IntersectGap / UnionGap are the
	// operators on GAP tables.
	SelectGap    = core.SelectGap
	ProjectGap   = core.ProjectGap
	MinusGap     = core.MinusGap
	IntersectGap = core.IntersectGap
	UnionGap     = core.UnionGap
	// TopGaps extracts the x largest-magnitude gaps.
	TopGaps = core.TopGaps
	// Compare combines two GAP tables for the thirteen queries.
	Compare = core.Compare
	// ApplyQuery runs one of the thirteen queries on a compare table.
	ApplyQuery = core.ApplyQuery
	// Gap predicates.
	GapPositive  = core.Positive
	GapNegative  = core.Negative
	GapNonNull   = core.NonNull
	GapMagnitude = core.MagnitudeAtLeast
	// Sumy range predicates.
	RangeRelation   = core.RangeRelation
	RangeAnyOverlap = core.RangeAnyOverlap
	// Searches (Section 4.4.4).
	RangeSearch     = core.RangeSearch
	AnyTagSearch    = core.AnyTagSearch
	StrictRelation  = core.StrictRelation
	BroadOverlap    = core.BroadOverlap
	FrequencySearch = core.FrequencySearch
	SingleTagSearch = core.SingleTagSearch
)

// Range arithmetic (Allen's interval algebra, Table 4.1).
type (
	// Interval is a closed numeric range.
	Interval = interval.Interval
	// Relation is one of Allen's thirteen basic relations.
	Relation = interval.Relation
	// RelationSet is an indefinite relationship: a set of basic relations,
	// closed under converse and composition.
	RelationSet = interval.RelationSet
)

// Allen's thirteen basic relations.
const (
	Before       = interval.Before
	After        = interval.After
	Meets        = interval.Meets
	MetBy        = interval.MetBy
	Overlaps     = interval.Overlaps
	OverlappedBy = interval.OverlappedBy
	During       = interval.During
	Includes     = interval.Includes
	Starts       = interval.Starts
	StartedBy    = interval.StartedBy
	Finishes     = interval.Finishes
	FinishedBy   = interval.FinishedBy
	Equals       = interval.Equals
)

var (
	// NewInterval returns [min, max] (panics if inverted; use MakeInterval
	// for untrusted input).
	NewInterval = interval.New
	// MakeInterval returns [min, max] or an error.
	MakeInterval = interval.Make
	// ClassifyIntervals returns the unique relation between two intervals.
	ClassifyIntervals = interval.Classify
	// HoldsRelation reports whether a relation holds between two intervals.
	HoldsRelation = interval.Holds
	// ParseRelation parses a relation name or Allen symbol.
	ParseRelation = interval.ParseRelation
	// NewRelationSet builds an indefinite relationship from basic relations.
	NewRelationSet = interval.NewRelationSet
	// ComposeRelations / ComposeRelationSets implement Allen's composition.
	ComposeRelations    = interval.Compose
	ComposeRelationSets = interval.ComposeSets
)

// Canonical relation sets.
const (
	EmptyRelationSet = interval.EmptySet
	FullRelationSet  = interval.FullSet
)

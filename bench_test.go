package gea

// This file holds one benchmark per table and figure of the thesis's
// evaluation (see DESIGN.md's per-experiment index), plus the ablation
// benches the design calls out. `go test -bench=. -benchmem` regenerates the
// performance side of EXPERIMENTS.md; the value side is produced by
// cmd/geabench.

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// fixture is the shared benchmark corpus: generated once, cleaned once.
type fixture struct {
	res    *GenResult
	sys    *System
	brain  *Dataset
	groups CaseGroups
	pure   string
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func getFixture(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		res, err := Generate(SmallConfig())
		if err != nil {
			fixErr = err
			return
		}
		sys, err := NewSystem(res.Corpus, SystemOptions{User: "bench", Catalog: res.Catalog, GeneDBSeed: 1})
		if err != nil {
			fixErr = err
			return
		}
		brain, err := sys.CreateTissueDataset("brain")
		if err != nil {
			fixErr = err
			return
		}
		if err := sys.GenerateMetadata("brain", 10); err != nil {
			fixErr = err
			return
		}
		pure, err := sys.FindPureFascicle("brain", PropCancer, 3)
		if err != nil {
			fixErr = err
			return
		}
		groups, err := sys.FormSUM(pure, "brain")
		if err != nil {
			fixErr = err
			return
		}
		fix = &fixture{res: res, sys: sys, brain: brain, groups: groups, pure: pure}
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fix
}

// mustSumy fetches a registered SUMY table.
func mustSumy(b *testing.B, f *fixture, name string) *Sumy {
	b.Helper()
	s, err := f.sys.Sumy(name)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// ------------------------------------------------------------- Table 2.2

// BenchmarkTable22FascicleExample mines the Section 2.5.1 worked example.
func BenchmarkTable22FascicleExample(b *testing.B) {
	tags := []TagID{
		MustParseTag("AAAAAAAAAA"), MustParseTag("AAAAAAAAAC"), MustParseTag("AAAAAAAAAT"),
		MustParseTag("AAAAAACTCC"), MustParseTag("AAAAAGAAAA"),
	}
	vals := [][]float64{
		{1843, 3, 10, 15, 11}, {1418, 7, 0, 30, 12}, {1251, 18, 0, 33, 20},
		{1800, 0, 58, 40, 20}, {1050, 25, 1, 60, 15}, {1910, 1, 17, 74, 30},
		{503, 8, 0, 0, 456}, {364, 7, 7, 7, 222}, {65, 5, 79, 9, 300}, {847, 4, 124, 0, 500},
	}
	c := &Corpus{}
	for i, row := range vals {
		l := &Library{Meta: LibraryMeta{ID: i + 1, Name: string(rune('a' + i)), Tissue: "brain"},
			Counts: map[TagID]float64{}}
		for j, v := range row {
			if v != 0 {
				l.Counts[tags[j]] = v
			}
		}
		c.Libraries = append(c.Libraries, l)
	}
	d := BuildDatasetWithTags(c, tags)
	tol := map[TagID]float64{tags[0]: 120, tags[1]: 3, tags[2]: 48, tags[3]: 60, tags[4]: 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineFasciclesLattice(d, FascicleParams{K: 5, Tolerance: tol, MinSize: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------------- Table 3.1

// BenchmarkTable31IndicesRequired computes the full Table 3.1.
func BenchmarkTable31IndicesRequired(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := Table31(60000, 25000, 10, DefaultConfidence)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].M != 17 {
			b.Fatalf("Table 3.1 drifted: %v", rows[0])
		}
	}
}

// ------------------------------------------------------------- Table 3.2

// benchPopulate is the Table 3.2 workload: a SUMY over 40% of the tags
// evaluated against the whole dataset, with w index hits.
func benchPopulate(b *testing.B, w int) {
	f := getFixture(b)
	d := f.sys.Data
	p := d.NumTags() * 2 / 5
	cols := make([]int, p)
	for j := range cols {
		cols[j] = j
	}
	rows := d.RowsWhere(func(m LibraryMeta) bool { return m.State == Cancer })[:6]
	enum, err := NewEnum("benchCluster", d, rows, cols)
	if err != nil {
		b.Fatal(err)
	}
	sumy, err := Aggregate("benchClusterSumy", enum, AggregateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	var idx *TagIndexes
	if w > 0 {
		ranked := RankByEntropy(d)
		var inSumy []int
		for _, rt := range ranked {
			if _, ok := sumy.Row(rt.Tag); ok {
				inSumy = append(inSumy, rt.Col)
			}
			if len(inSumy) >= w {
				break
			}
		}
		idx, err = BuildTagIndexes(d, inSumy)
		if err != nil {
			b.Fatal(err)
		}
	}
	opts := PopulateOptions{SimulateRowFetch: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := PopulateWithOptions("benchPop", sumy, d, idx, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable32PopulateSequential(b *testing.B) { benchPopulate(b, 0) }
func BenchmarkTable32PopulateIndexedW1(b *testing.B)  { benchPopulate(b, 1) }
func BenchmarkTable32PopulateIndexedW2(b *testing.B)  { benchPopulate(b, 2) }
func BenchmarkTable32PopulateIndexedW4(b *testing.B)  { benchPopulate(b, 4) }
func BenchmarkTable32PopulateIndexedW8(b *testing.B)  { benchPopulate(b, 8) }

// ------------------------------------------------------- cleaning (§4.2)

// BenchmarkCleaningPipeline runs the full Section 4.2 pipeline.
func BenchmarkCleaningPipeline(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Clean(f.res.Corpus, DefaultCleanOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------- figures 4.2/4.3/4.11

// benchFigure extracts a marker gene's per-group distribution (the work
// behind each figure's bar chart).
func benchFigure(b *testing.B, gene string) {
	f := getFixture(b)
	g, ok := f.res.Catalog.ByName(gene)
	if !ok {
		b.Fatalf("marker %q missing", gene)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SingleTagSearch(f.brain, g.Tag, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig42RibosomalL12(b *testing.B) { benchFigure(b, GeneRibosomalL12) }
func BenchmarkFig43AlphaTubulin(b *testing.B) { benchFigure(b, GeneAlphaTubulin) }
func BenchmarkFig411ADPProtein(b *testing.B)  { benchFigure(b, GeneADPProtein) }

// ------------------------------------------------------------ case studies

// BenchmarkCase1DiffAndTop runs diff + top-gap extraction of case study 1.
func BenchmarkCase1DiffAndTop(b *testing.B) {
	f := getFixture(b)
	s1 := mustSumy(b, f, f.groups.InFascicle)
	s3 := mustSumy(b, f, f.groups.Opposite)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := Diff("case1Gap", s1, s3)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := TopGaps("case1Top", g, 0, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCase2InsideVsOutside contrasts inside vs outside the fascicle.
func BenchmarkCase2InsideVsOutside(b *testing.B) {
	f := getFixture(b)
	s1 := mustSumy(b, f, f.groups.InFascicle)
	s2 := mustSumy(b, f, f.groups.SameNotInFascicle)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Diff("case2Gap", s1, s2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCase3CompareQueries intersects two GAP tables and runs query 2.
func BenchmarkCase3CompareQueries(b *testing.B) {
	f := getFixture(b)
	s1 := mustSumy(b, f, f.groups.InFascicle)
	s2 := mustSumy(b, f, f.groups.SameNotInFascicle)
	s3 := mustSumy(b, f, f.groups.Opposite)
	g1, err := Diff("b3g1", s1, s3)
	if err != nil {
		b.Fatal(err)
	}
	g2, err := Diff("b3g2", s1, s2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err := Compare("b3cmp", g1, g2, OpIntersect)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ApplyQuery("b3q2", cmp, QLowerInABoth); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCase4SetMinus selects non-null gaps then set-minuses them.
func BenchmarkCase4SetMinus(b *testing.B) {
	f := getFixture(b)
	s1 := mustSumy(b, f, f.groups.InFascicle)
	s2 := mustSumy(b, f, f.groups.SameNotInFascicle)
	s3 := mustSumy(b, f, f.groups.Opposite)
	g1, err := Diff("b4g1", s1, s3)
	if err != nil {
		b.Fatal(err)
	}
	g2, err := Diff("b4g2", s1, s2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := SelectGap("b4a", g1, GapNonNull(0))
		if err != nil {
			b.Fatal(err)
		}
		c, err := SelectGap("b4c", g2, GapNonNull(0))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := MinusGap("b4m", a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCase5Verification re-derives a cluster in the extensional world.
func BenchmarkCase5Verification(b *testing.B) {
	f := getFixture(b)
	var keep []int
	for i := 1; i < f.brain.NumLibraries(); i++ {
		keep = append(keep, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub, err := f.brain.Subset(keep)
		if err != nil {
			b.Fatal(err)
		}
		full := FullEnum("b5", sub)
		cancer := full.SelectRows("b5c", func(m LibraryMeta) bool { return m.State == Cancer })
		if _, err := Aggregate("b5s", cancer, AggregateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// -------------------------------------------------------------- ablations

// BenchmarkFascicleLattice vs BenchmarkFascicleGreedy: exact vs single-pass
// mining (DESIGN.md ablation).
func BenchmarkFascicleLattice(b *testing.B) {
	f := getFixture(b)
	tol, err := ToleranceVector(f.brain, 10)
	if err != nil {
		b.Fatal(err)
	}
	p := FascicleParams{K: f.brain.NumTags() * 55 / 100, Tolerance: tol, MinSize: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineFasciclesLattice(f.brain, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFascicleGreedy(b *testing.B) {
	f := getFixture(b)
	tol, err := ToleranceVector(f.brain, 10)
	if err != nil {
		b.Fatal(err)
	}
	p := FascicleParams{K: f.brain.NumTags() * 55 / 100, Tolerance: tol, MinSize: 3, BatchSize: 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineFasciclesGreedy(f.brain, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexSelectionEntropy vs Random: does the entropy heuristic beat
// random index placement at equal budget? Measured as candidate rows left
// after the index intersection (lower is better); the bench reports work via
// the populate path.
func BenchmarkIndexSelectionEntropy(b *testing.B) { benchIndexChoice(b, true) }
func BenchmarkIndexSelectionRandom(b *testing.B)  { benchIndexChoice(b, false) }

func benchIndexChoice(b *testing.B, entropy bool) {
	f := getFixture(b)
	d := f.sys.Data
	p := d.NumTags() / 2
	cols := make([]int, p)
	for j := range cols {
		cols[j] = j
	}
	rows := d.RowsWhere(func(m LibraryMeta) bool { return m.State == Cancer })[:6]
	enum, err := NewEnum("bic", d, rows, cols)
	if err != nil {
		b.Fatal(err)
	}
	sumy, err := Aggregate("bicSumy", enum, AggregateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	const m = 20
	var idxCols []int
	if entropy {
		for _, rt := range TopEntropyTags(d, m) {
			idxCols = append(idxCols, rt.Col)
		}
	} else {
		rng := rand.New(rand.NewSource(2))
		for len(idxCols) < m {
			idxCols = append(idxCols, rng.Intn(d.NumTags()))
		}
	}
	idx, err := BuildTagIndexes(d, idxCols)
	if err != nil {
		b.Fatal(err)
	}
	// The disk-resident evaluation model of Table 3.2: each examined row
	// costs a full fetch, so candidate reduction is what the bench measures.
	opts := PopulateOptions{SimulateRowFetch: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := PopulateWithOptions("bicPop", sumy, d, idx, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRotatedLayout measures the Section 4.6.1 physical rotation of the
// expression relation: 20 libraries x 200 tags, rotate plus a layout-adjusted
// per-tag sum.
func BenchmarkRotatedLayout(b *testing.B) {
	tbl := buildNaturalTable(20, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rot, err := NaturalToRotated(tbl)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RotatedSum(rot, tbl.Schema[1].Name); err != nil {
			b.Fatal(err)
		}
	}
}

func buildNaturalTable(libs, tags int) *RelTable {
	schema := RelSchema{{Name: "LibraryName", Kind: RelKindString}}
	for j := 0; j < tags; j++ {
		schema = append(schema, RelColumn{Name: TagID(j).String(), Kind: RelKindFloat})
	}
	tbl := NewRelTable("SAGE", schema)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < libs; i++ {
		row := make([]RelValue, 0, tags+1)
		row = append(row, RelS(string(rune('A'+i%26))+string(rune('a'+i/26))))
		for j := 0; j < tags; j++ {
			row = append(row, RelF(float64(rng.Intn(500))))
		}
		tbl.MustInsert(row...)
	}
	return tbl
}

// ------------------------------------------------------------- baselines

func baselineRows(b *testing.B) [][]float64 {
	f := getFixture(b)
	return f.brain.Expr
}

func BenchmarkBaselineHierarchical(b *testing.B) {
	rows := baselineRows(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dg, err := Hierarchical(rows, CorrelationDistance, AverageLinkage)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dg.Cut(2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineKMeans(b *testing.B) {
	rows := baselineRows(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(rows, 2, rng, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineSOM(b *testing.B) {
	rows := baselineRows(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SOM(rows, SOMConfig{GridW: 2, GridH: 1, Epochs: 30}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineOPTICS(b *testing.B) {
	rows := baselineRows(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OPTICS(rows, OPTICSConfig{Eps: math.Inf(1), MinPts: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------- operator scaling

// BenchmarkAggregateFullDataset covers the one-pass aggregation claim.
func BenchmarkAggregateFullDataset(b *testing.B) {
	f := getFixture(b)
	full := FullEnum("bAgg", f.sys.Data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Aggregate("bAggS", full, AggregateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregateWithMedian covers the O(n log n) aggregate variant.
func BenchmarkAggregateWithMedian(b *testing.B) {
	f := getFixture(b)
	full := FullEnum("bAggM", f.sys.Data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Aggregate("bAggMS", full, AggregateOptions{WithMedian: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiffFullWidth covers the linear-in-tags diff claim.
func BenchmarkDiffFullWidth(b *testing.B) {
	f := getFixture(b)
	full := FullEnum("bDiff", f.sys.Data)
	cancer := full.SelectRows("bDiffC", func(m LibraryMeta) bool { return m.State == Cancer })
	normal := full.SelectRows("bDiffN", func(m LibraryMeta) bool { return m.State == Normal })
	sc, err := Aggregate("bDiffCS", cancer, AggregateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	sn, err := Aggregate("bDiffNS", normal, AggregateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Diff("bDiffG", sc, sn); err != nil {
			b.Fatal(err)
		}
	}
}

package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gea"
)

// cmdXProfiler runs the pooled differential comparison of the NCBI
// xProfiler: cancerous vs normal pools of one tissue type.
func cmdXProfiler(args []string) error {
	fs := flag.NewFlagSet("xprofiler", flag.ExitOnError)
	in := fs.String("in", "SageLibrary", "corpus directory")
	tissue := fs.String("tissue", "brain", "tissue type to pool")
	alpha := fs.Float64("alpha", 1e-4, "two-sided significance threshold")
	top := fs.Int("top", 15, "rows to display")
	fs.Parse(args)

	corpus, err := gea.LoadCorpus(*in)
	if err != nil {
		return err
	}
	cancer, err := gea.XPoolByState(corpus, *tissue, gea.Cancer)
	if err != nil {
		return err
	}
	normal, err := gea.XPoolByState(corpus, *tissue, gea.Normal)
	if err != nil {
		return err
	}
	res, err := gea.XCompare(cancer, normal, gea.XOptions{Alpha: *alpha})
	if err != nil {
		return err
	}
	fmt.Printf("pooled %s: cancer total %.0f vs normal total %.0f; %d significant tags at alpha=%g\n",
		*tissue, cancer.Total, normal.Total, len(res), *alpha)
	fmt.Println("tag          cancer/M  normal/M   p-value  direction")
	for i, r := range res {
		if i >= *top {
			fmt.Printf("... and %d more\n", len(res)-*top)
			break
		}
		dir := "up in cancer"
		if !r.HigherInA {
			dir = "down in cancer"
		}
		fmt.Printf("%s %9.1f %9.1f  %8.2g  %s\n", r.Tag, r.RateA, r.RateB, r.PValue, dir)
	}
	return nil
}

// cmdAnnotate resolves tags through the auxiliary gene databases. The
// synthetic databases require the generator's catalog, so this command
// regenerates the corpus configuration rather than loading from disk.
func cmdAnnotate(args []string) error {
	fs := flag.NewFlagSet("annotate", flag.ExitOnError)
	full := fs.Bool("full", false, "full-scale corpus configuration")
	seed := fs.Int64("seed", 1, "generator seed (must match the corpus)")
	tagsArg := fs.String("tags", "", "comma-separated 10-bp tags to annotate")
	fs.Parse(args)
	if *tagsArg == "" {
		return fmt.Errorf("-tags is required, e.g. -tags AAAAAAAAAC,ACGTACGTAC")
	}
	cfg := gea.SmallConfig()
	if *full {
		cfg = gea.DefaultConfig()
	}
	cfg.Seed = *seed
	res, err := gea.Generate(cfg)
	if err != nil {
		return err
	}
	db, err := gea.BuildGeneDB(res.Catalog, *seed)
	if err != nil {
		return err
	}
	var tags []gea.TagID
	for _, s := range strings.Split(*tagsArg, ",") {
		tg, err := gea.ParseTag(strings.TrimSpace(s))
		if err != nil {
			return err
		}
		tags = append(tags, tg)
	}
	anns, err := db.AnnotateTags(tags)
	if err != nil {
		return err
	}
	if len(anns) == 0 {
		fmt.Println("no annotations (sequencing-error tags have no gene)")
		return nil
	}
	for _, a := range anns {
		fmt.Printf("%s -> %s\n  protein: %s (family %s)\n  pathways: %s\n  disease: %s\n  publications: %d\n",
			a.Tag, a.Gene, a.Protein, a.Family, strings.Join(a.Pathways, ", "), a.Disease, len(a.PubMed))
	}
	return nil
}

// cmdSession runs the case-study-1 pipeline and saves the session, or
// inspects a saved one.
func cmdSession(args []string) error {
	fs := flag.NewFlagSet("session", flag.ExitOnError)
	in := fs.String("in", "SageLibrary", "corpus directory (for -run)")
	dir := fs.String("dir", "gea-session", "session directory")
	run := fs.Bool("run", false, "run the brain pipeline and save the session")
	show := fs.Bool("show", false, "load the session and print its lineage tree")
	tissue := fs.String("tissue", "brain", "tissue for -run")
	fs.Parse(args)

	switch {
	case *run:
		corpus, err := gea.LoadCorpus(*in)
		if err != nil {
			return err
		}
		sys, err := gea.NewSystem(corpus, gea.SystemOptions{User: "cli"})
		if err != nil {
			return err
		}
		if _, err := sys.CreateTissueDataset(*tissue); err != nil {
			return err
		}
		if err := sys.GenerateMetadata(*tissue, 10); err != nil {
			return err
		}
		pure, err := sys.FindPureFascicle(*tissue, gea.PropCancer, 3)
		if err != nil {
			return err
		}
		groups, err := sys.FormSUM(pure, *tissue)
		if err != nil {
			return err
		}
		if _, err := sys.CreateGap(*tissue+"_gap", groups.InFascicle, groups.Opposite); err != nil {
			return err
		}
		if _, err := sys.CalculateTopGap(*tissue+"_gap", 10); err != nil {
			return err
		}
		if err := sys.SaveSession(*dir); err != nil {
			return err
		}
		fmt.Printf("session saved to %s (%d lineage nodes)\n", *dir, len(sys.Lineage.Names()))
		return nil
	case *show:
		sys, err := gea.LoadSession(*dir, nil, 0)
		if err != nil {
			return err
		}
		if sys.LoadReport != nil && !sys.LoadReport.OK() {
			fmt.Fprint(os.Stderr, sys.LoadReport)
		}
		fmt.Printf("session of user %q over %d libraries x %d tags\n",
			sys.User, sys.Data.NumLibraries(), sys.Data.NumTags())
		fmt.Print(sys.Lineage.Tree())
		return nil
	default:
		return fmt.Errorf("pass -run or -show")
	}
}

package main

import (
	"flag"
	"fmt"

	"gea"
)

// cmdIngest streams a synthetic corpus into an append store batch by
// batch: each batch is screened, folded into the maintained view
// incrementally, and durably committed as one corpus generation. Running
// it against a directory that already holds a corpus (from "gea gen" or
// a previous ingest) appends on top of the existing generations — the
// store upgrades a plain SaveCorpus directory for free.
func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	dir := fs.String("dir", "SageLibrary", "append-store directory (created if missing)")
	batches := fs.Int("batches", 4, "number of append batches to split the generated corpus into")
	full := fs.Bool("full", false, "full-scale corpus (100 libraries, 60k genes) instead of the small one")
	seed := fs.Int64("seed", 1, "generator seed")
	fs.Parse(args)
	if *batches < 1 {
		return fmt.Errorf("-batches must be >= 1")
	}

	cfg := gea.SmallConfig()
	if *full {
		cfg = gea.DefaultConfig()
	}
	cfg.Seed = *seed
	emitted, _, err := gea.EmitBatches(cfg, *batches)
	if err != nil {
		return err
	}

	st, corpus, problems, err := gea.OpenIngestStore(gea.OSFS, *dir, gea.DefaultIngestRetry())
	if err != nil {
		return err
	}
	for _, p := range problems {
		fmt.Printf("salvage: skipped %v\n", p)
	}
	fmt.Printf("store %s: generation %q, %d libraries\n", *dir, st.Gen(), len(corpus.Libraries))

	sys, err := gea.NewSystem(corpus, gea.SystemOptions{
		User:   "ingest",
		Ingest: &gea.SystemIngestOptions{Store: st},
	})
	if err != nil {
		return err
	}

	appended, quarantined := 0, 0
	for i, libs := range emitted {
		rep, err := sys.IngestAppend(gea.IngestBatchFromLibraries(libs))
		if err != nil {
			return fmt.Errorf("batch %d: %w", i+1, err)
		}
		appended += len(rep.Appended)
		quarantined += len(rep.Rejected)
		fmt.Printf("batch %d/%d: appended %d", i+1, len(emitted), len(rep.Appended))
		if rep.Gen != "" {
			fmt.Printf(" -> %s", rep.Gen)
		}
		if len(rep.Rejected) > 0 {
			fmt.Printf(", quarantined %d -> %s", len(rep.Rejected), rep.QuarantineDir)
		}
		if rep.Retries > 0 {
			fmt.Printf(" (absorbed %d transient-fault retries)", rep.Retries)
		}
		fmt.Println()
	}

	view, generation := sys.IngestView()
	fmt.Printf("done: corpus generation %d, %d libraries, %d tags (appended %d, quarantined %d)\n",
		generation, view.Data.NumLibraries(), view.Data.NumTags(), appended, quarantined)
	return nil
}

// Command gea is the Gene Expression Analyzer command-line front end: the
// CLI analogue of the thesis's GUI. It generates synthetic SAGE corpora,
// runs the cleaning pipeline, mines fascicles, builds GAP tables and answers
// the search operations of Chapter 4.
//
// Usage:
//
//	gea gen    -out DIR [-full] [-seed N]      generate a synthetic corpus
//	gea clean  -in DIR -out DIR                run the Section 4.2 pipeline
//	gea info   -in DIR                         corpus and tissue statistics
//	gea library -in DIR -name NAME             library-information search
//	gea fascicles -in DIR -tissue T [-kpct P] [-minsize M] [-greedy]
//	gea gap    -in DIR -tissue T [-kpct P] [-top X]
//	gea table31                                print thesis Table 3.1
//	gea case   -n 1..5                         run a case study end to end
//	gea xprofiler -in DIR -tissue T            pooled differential test
//	gea annotate -tags T1,T2                   gene-database lookups
//	gea ingest -dir D [-batches N]             stream a corpus into an
//	                                           append store, one crash-safe
//	                                           generation per batch
//	gea session -run|-show -dir D              persistent sessions
//	gea repl   [-in DIR] [-session DIR]        interactive session shell
//	gea serve  -in DIR [-addr A] [-debug]      HTTP front end; -debug exposes
//	           [-max-concurrent N] [-max-queue N]  /debug/vars, spans, metrics;
//	           [-admit-timeout D] [-request-timeout D]  admission queue with
//	           [-degraded-budget N] [-drain D]    429/503 backpressure and
//	                                              SIGTERM graceful drain
package main

import (
	"flag"
	"fmt"
	"os"

	"gea"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "gen":
		err = cmdGen(args)
	case "clean":
		err = cmdClean(args)
	case "info":
		err = cmdInfo(args)
	case "library":
		err = cmdLibrary(args)
	case "fascicles":
		err = cmdFascicles(args)
	case "gap":
		err = cmdGap(args)
	case "table31":
		err = cmdTable31(args)
	case "case":
		err = cmdCase(args)
	case "xprofiler":
		err = cmdXProfiler(args)
	case "annotate":
		err = cmdAnnotate(args)
	case "ingest":
		err = cmdIngest(args)
	case "session":
		err = cmdSession(args)
	case "repl":
		err = cmdRepl(args)
	case "serve":
		err = cmdServe(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "gea: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gea %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: gea <command> [flags]

commands:
  gen        generate a synthetic SAGE corpus into a directory
  clean      run the error-removal and normalization pipeline
  info       print corpus statistics and tissue types
  library    search library information by name or ID
  fascicles  mine fascicles for a tissue type
  gap        full case-study-1 pipeline: mine, purity check, diff, top gaps
  table31    print Table 3.1 (indices required for w hits)
  case       run one of the five thesis case studies (synthetic data)
  xprofiler  pooled Audic-Claverie comparison (the NCBI tool)
  annotate   resolve tags through the auxiliary gene databases
  ingest     stream a synthetic corpus into an append store batch by
             batch: generation commits, transient-fault retry, quarantine
  session    run-and-save or inspect a persistent GEA session
  repl       interactive session shell (crash-isolated command loop)
  serve      HTTP front end: bounded admission queue, 429/503 backpressure
             with Retry-After, graceful SIGTERM drain (-debug adds span and
             metrics endpoints; -ingest adds POST /ingest streaming appends)

run "gea <command> -h" for command flags`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "SageLibrary", "output directory")
	full := fs.Bool("full", false, "full-scale corpus (100 libraries, 60k genes) instead of the small one")
	seed := fs.Int64("seed", 1, "generator seed")
	fs.Parse(args)

	cfg := gea.SmallConfig()
	if *full {
		cfg = gea.DefaultConfig()
	}
	cfg.Seed = *seed
	res, err := gea.Generate(cfg)
	if err != nil {
		return err
	}
	if err := gea.SaveCorpus(*out, res.Corpus); err != nil {
		return err
	}
	fmt.Printf("wrote %d libraries (%d unique tags) to %s\n",
		len(res.Corpus.Libraries), res.Corpus.TotalUniqueTags(), *out)
	return nil
}

func cmdClean(args []string) error {
	fs := flag.NewFlagSet("clean", flag.ExitOnError)
	in := fs.String("in", "SageLibrary", "input corpus directory")
	out := fs.String("out", "SageClean", "output directory")
	tol := fs.Float64("tolerance", 1, "minimum tolerance: remove tags at or below this count in all libraries")
	fs.Parse(args)

	corpus, err := gea.LoadCorpus(*in)
	if err != nil {
		return err
	}
	cleaned, rep, err := gea.Clean(corpus, gea.CleanOptions{MinTolerance: *tol, ScaleTo: gea.NormalTotal})
	if err != nil {
		return err
	}
	fmt.Printf("unique tags: %d -> %d (%.1f%% removed)\n",
		rep.UniqueTagsBefore, rep.UniqueTagsAfter, 100*rep.RemovedTagFraction())
	for _, lr := range rep.Libraries {
		fmt.Printf("  %-32s removed %5.1f%% of total count, scaled x%.2f\n",
			lr.Name, 100*lr.RemovedFraction, lr.ScaleFactor)
	}
	return gea.SaveCorpus(*out, cleaned)
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "SageLibrary", "corpus directory")
	fs.Parse(args)

	corpus, err := gea.LoadCorpus(*in)
	if err != nil {
		return err
	}
	fmt.Printf("libraries: %d\nunique tags: %d\nsingleton fraction: %.2f\n",
		len(corpus.Libraries), corpus.TotalUniqueTags(), gea.SingletonFraction(corpus))
	for _, t := range corpus.TissueTypes() {
		libs := corpus.ByTissue(t)
		cancer := 0
		for _, l := range libs {
			if l.Meta.State == gea.Cancer {
				cancer++
			}
		}
		fmt.Printf("  %-10s %2d libraries (%d cancer, %d normal)\n", t, len(libs), cancer, len(libs)-cancer)
	}
	return nil
}

func cmdLibrary(args []string) error {
	fs := flag.NewFlagSet("library", flag.ExitOnError)
	in := fs.String("in", "SageLibrary", "corpus directory")
	name := fs.String("name", "", "library name or ID")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("-name is required")
	}
	corpus, err := gea.LoadCorpus(*in)
	if err != nil {
		return err
	}
	for _, l := range corpus.Libraries {
		if l.Meta.Name == *name || fmt.Sprint(l.Meta.ID) == *name {
			m := l.Meta
			fmt.Printf("name: %s\nID: %d\ntissue: %s\nstate: %s\nsource: %s\ntotal tags: %.0f\nunique tags: %d\n",
				m.Name, m.ID, m.Tissue, m.State, m.Source, l.Total(), l.Unique())
			return nil
		}
	}
	return fmt.Errorf("no library %q", *name)
}

// setupSession loads a corpus and builds a session with a mined tissue.
func setupSession(in, tissue string, kpct, minsize int, greedy bool) (*gea.System, []string, error) {
	corpus, err := gea.LoadCorpus(in)
	if err != nil {
		return nil, nil, err
	}
	sys, err := gea.NewSystem(corpus, gea.SystemOptions{User: "cli"})
	if err != nil {
		return nil, nil, err
	}
	d, err := sys.CreateTissueDataset(tissue)
	if err != nil {
		return nil, nil, err
	}
	if err := sys.GenerateMetadata(tissue, 10); err != nil {
		return nil, nil, err
	}
	alg := gea.LatticeAlgorithm
	if greedy {
		alg = gea.GreedyAlgorithm
	}
	names, err := sys.CalculateFascicles(tissue, gea.FascicleOptions{
		K: d.NumTags() * kpct / 100, MinSize: minsize, Algorithm: alg,
	})
	return sys, names, err
}

func cmdFascicles(args []string) error {
	fs := flag.NewFlagSet("fascicles", flag.ExitOnError)
	in := fs.String("in", "SageLibrary", "corpus directory")
	tissue := fs.String("tissue", "brain", "tissue type")
	kpct := fs.Int("kpct", 55, "compact attributes as a percentage of tags")
	minsize := fs.Int("minsize", 3, "minimum libraries per fascicle")
	greedy := fs.Bool("greedy", false, "use the single-pass greedy miner")
	fs.Parse(args)

	sys, names, err := setupSession(*in, *tissue, *kpct, *minsize, *greedy)
	if err != nil {
		return err
	}
	fmt.Printf("%d fascicles:\n", len(names))
	for _, n := range names {
		f, err := sys.Fascicle(n)
		if err != nil {
			return err
		}
		purity := "mixed"
		switch {
		case f.Enum.IsPure(gea.PropCancer):
			purity = "PURE cancer"
		case f.Enum.IsPure(gea.PropNormal):
			purity = "PURE normal"
		}
		fmt.Printf("  %-16s size=%d compact=%d %s: %v\n",
			n, f.Fascicle.Size(), f.Fascicle.NumCompact(), purity, f.Enum.LibraryNames())
	}
	return nil
}

func cmdGap(args []string) error {
	fs := flag.NewFlagSet("gap", flag.ExitOnError)
	in := fs.String("in", "SageLibrary", "corpus directory")
	tissue := fs.String("tissue", "brain", "tissue type")
	kpct := fs.Int("kpct", 55, "compact attributes as a percentage of tags")
	top := fs.Int("top", 10, "top gaps to display")
	fs.Parse(args)

	sys, names, err := setupSession(*in, *tissue, *kpct, 3, false)
	if err != nil {
		return err
	}
	pure, best := "", -1
	for _, n := range names {
		if ok, _ := sys.PurityCheck(n, gea.PropCancer); !ok {
			continue
		}
		f, _ := sys.Fascicle(n)
		if f.Fascicle.NumCompact() > best {
			best, pure = f.Fascicle.NumCompact(), n
		}
	}
	if pure == "" {
		return fmt.Errorf("no pure cancerous fascicle at kpct=%d; try other parameters", *kpct)
	}
	fmt.Printf("fascicle %s is pure cancer\n", pure)
	groups, err := sys.FormSUM(pure, *tissue)
	if err != nil {
		return err
	}
	if _, err := sys.CreateGap(pure+"_canvsnor", groups.InFascicle, groups.Opposite); err != nil {
		return err
	}
	topGap, err := sys.CalculateTopGap(pure+"_canvsnor", *top)
	if err != nil {
		return err
	}
	fmt.Println("top gaps (cancer-in-fascicle vs normal):")
	for _, r := range topGap.Rows {
		fmt.Printf("  %s_%s\n", r.Tag, r.Values[0])
	}
	return nil
}

func cmdTable31(args []string) error {
	fs := flag.NewFlagSet("table31", flag.ExitOnError)
	n := fs.Int("n", 60000, "total tags")
	p := fs.Int("p", 25000, "tags in the SUMY table")
	maxW := fs.Int("w", 10, "max index hits")
	fs.Parse(args)

	rows, err := gea.Table31(*n, *p, *maxW, gea.DefaultConfidence)
	if err != nil {
		return err
	}
	fmt.Println("At Least w Indices Hit | Number of Indices Required (m)")
	for _, r := range rows {
		fmt.Printf("%22d | %d\n", r.W, r.M)
	}
	return nil
}

func cmdCase(args []string) error {
	fs := flag.NewFlagSet("case", flag.ExitOnError)
	n := fs.Int("n", 1, "case study number (1-5)")
	fs.Parse(args)
	if *n < 1 || *n > 5 {
		return fmt.Errorf("case study must be 1-5")
	}
	fmt.Printf("case study %d runs via the example programs:\n", *n)
	switch *n {
	case 1, 2:
		fmt.Println("  go run ./examples/brainstudy")
	case 3, 4:
		fmt.Println("  go run ./examples/crosstissue")
	default:
		fmt.Println("  go run ./examples/lineage")
	}
	return nil
}

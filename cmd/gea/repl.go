package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"gea"
)

// cmdRepl runs the interactive command loop — the CLI analogue of keeping
// a GEA GUI session open across many operations. One failing or panicking
// command must not take the session (and its unsaved state) down with it.
func cmdRepl(args []string) error {
	fs := flag.NewFlagSet("repl", flag.ExitOnError)
	in := fs.String("in", "", "corpus directory to open at startup")
	session := fs.String("session", "", "session directory to load at startup")
	fs.Parse(args)

	// Ctrl-C cancels the in-flight operator's context instead of killing
	// the process: the session — and any unsaved state — stays alive.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	defer signal.Stop(sigc)

	r := &repl{out: os.Stdout, errw: os.Stderr, sigc: sigc}
	if *in != "" {
		if err := r.dispatch([]string{"open", *in}); err != nil {
			return err
		}
	}
	if *session != "" {
		if err := r.dispatch([]string{"load", *session}); err != nil {
			return err
		}
	}
	return r.run(os.Stdin)
}

type repl struct {
	out  io.Writer
	errw io.Writer
	sys  *gea.System
	// sigc delivers SIGINT while a command runs; nil (as in tests) means
	// no signal wiring.
	sigc chan os.Signal
	// limits and deadline bound governed commands, set by "limit".
	limits   gea.ExecLimits
	deadline time.Duration
	// trace, when set by "trace on", collects spans and metrics from
	// every governed command; "stats" and "explain last" read it.
	trace *gea.ObsCollector
	// engine, set by "limit engine", selects the execution engine for
	// governed commands. Columnar memoises a block view on each dataset
	// the session mines, which the operators' EngineAuto dispatch picks
	// up; results are bit-identical on either engine.
	engine gea.Engine
}

// opCtx builds the context for one governed command: the configured
// deadline is applied, and while the command runs a SIGINT cancels the
// context. The returned stop function must be called when the command
// finishes to detach the signal watcher.
func (r *repl) opCtx() (context.Context, func()) {
	ctx := context.Background()
	if r.trace != nil {
		// Tracing on: governed operators record spans into the session
		// collector, and the checkpoint hook meters poll cadence.
		ctx = gea.WithObsCollector(ctx, r.trace)
		ctx = gea.WithExecHook(ctx, r.trace.ExecHook())
	}
	cancel := func() {}
	if r.deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, r.deadline)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	if r.sigc == nil {
		return ctx, cancel
	}
	// A Ctrl-C that arrived just before the command started counts: drain
	// it synchronously so the operator is cancelled at its first checkpoint.
	select {
	case <-r.sigc:
		fmt.Fprintln(r.errw, "interrupt: cancelling the running operation (session kept)")
		cancel()
		return ctx, cancel
	default:
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-r.sigc:
			fmt.Fprintln(r.errw, "\ninterrupt: cancelling the running operation (session kept)")
			cancel()
		case <-done:
		}
	}()
	return ctx, func() {
		close(done)
		cancel()
	}
}

// run is the REPL command loop. Each line executes under panic recovery:
// a command that panics prints the failure and the loop — with the live
// session and all its unsaved state — continues.
func (r *repl) run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	fmt.Fprintln(r.out, `gea repl — "help" lists commands, "quit" exits`)
	for {
		fmt.Fprint(r.out, "gea> ")
		if !sc.Scan() {
			fmt.Fprintln(r.out)
			return sc.Err()
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "quit" || fields[0] == "exit" {
			return nil
		}
		if err := r.safeDispatch(fields); err != nil {
			fmt.Fprintf(r.errw, "error: %v\n", err)
		}
	}
}

// safeDispatch runs one command, converting a panic into an error so the
// loop survives.
func (r *repl) safeDispatch(fields []string) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("panic recovered: %v (session kept alive)\n%s", rec, debug.Stack())
		}
	}()
	return r.dispatch(fields)
}

func (r *repl) needSession() (*gea.System, error) {
	if r.sys == nil {
		return nil, fmt.Errorf(`no session: "gen", "open DIR" or "load DIR" first`)
	}
	return r.sys, nil
}

func (r *repl) dispatch(fields []string) error {
	cmd, args := fields[0], fields[1:]
	arg := func(i int) string {
		if i < len(args) {
			return args[i]
		}
		return ""
	}
	switch cmd {
	case "help":
		fmt.Fprint(r.out, `commands:
  gen                generate the small synthetic corpus and start a session
  open DIR           start a session from the corpus in DIR
  load DIR           load a saved session (salvages damaged artifacts)
  save DIR           save the session (atomic, checksummed)
  report             show what the last load had to salvage
  info               session dimensions and tissue types
  mine TISSUE        dataset + metadata + pure-fascicle search for a tissue
                     (Ctrl-C cancels the search, not the session)
  limit budget N     cap mining work at N units (partial results flagged)
  limit deadline D   bound mining wall time (e.g. 30s, 2m)
  limit workers N    evaluate sharded scans on N workers (same results)
  limit engine E     run operators on the row or columnar engine
                     (row|columnar|auto; same results, different scans)
  limit off          remove all limits; bare "limit" shows current
  trace on|off       record spans + metrics for governed commands
  stats              print the metrics snapshot collected so far
  explain last       print the span tree of the last governed command
                     (columnar runs show per-operator block statistics)
  tree               print the lineage tree
  quit               exit
`)
		return nil
	case "gen":
		res, err := gea.Generate(gea.SmallConfig())
		if err != nil {
			return err
		}
		sys, err := gea.NewSystem(res.Corpus, gea.SystemOptions{User: "repl"})
		if err != nil {
			return err
		}
		r.sys = sys
		fmt.Fprintf(r.out, "session over %d libraries x %d tags\n", sys.Data.NumLibraries(), sys.Data.NumTags())
		return nil
	case "open":
		if arg(0) == "" {
			return fmt.Errorf("usage: open DIR")
		}
		corpus, err := gea.LoadCorpus(arg(0))
		if err != nil {
			return err
		}
		sys, err := gea.NewSystem(corpus, gea.SystemOptions{User: "repl"})
		if err != nil {
			return err
		}
		r.sys = sys
		fmt.Fprintf(r.out, "session over %d libraries x %d tags\n", sys.Data.NumLibraries(), sys.Data.NumTags())
		return nil
	case "load":
		if arg(0) == "" {
			return fmt.Errorf("usage: load DIR")
		}
		sys, err := gea.LoadSession(arg(0), nil, 0)
		if err != nil {
			return err
		}
		r.sys = sys
		if sys.LoadReport != nil && !sys.LoadReport.OK() {
			fmt.Fprint(r.errw, sys.LoadReport)
		}
		fmt.Fprintf(r.out, "loaded session of user %q (%d lineage nodes)\n", sys.User, len(sys.Lineage.Names()))
		return nil
	case "save":
		sys, err := r.needSession()
		if err != nil {
			return err
		}
		if arg(0) == "" {
			return fmt.Errorf("usage: save DIR")
		}
		if err := sys.SaveSession(arg(0)); err != nil {
			return err
		}
		fmt.Fprintf(r.out, "session saved to %s\n", arg(0))
		return nil
	case "report":
		sys, err := r.needSession()
		if err != nil {
			return err
		}
		if sys.LoadReport == nil {
			fmt.Fprintln(r.out, "session was not loaded from disk")
			return nil
		}
		fmt.Fprint(r.out, sys.LoadReport)
		if sys.LoadReport.OK() {
			fmt.Fprintln(r.out)
		}
		return nil
	case "info":
		sys, err := r.needSession()
		if err != nil {
			return err
		}
		fmt.Fprintf(r.out, "user %q, %d libraries x %d tags\n", sys.User, sys.Data.NumLibraries(), sys.Data.NumTags())
		for tissue, libs := range sys.TissueTypes() {
			fmt.Fprintf(r.out, "  %-10s %d libraries\n", tissue, len(libs))
		}
		return nil
	case "mine":
		sys, err := r.needSession()
		if err != nil {
			return err
		}
		tissue := arg(0)
		if tissue == "" {
			return fmt.Errorf("usage: mine TISSUE")
		}
		// Re-mining a tissue (e.g. after an interrupted or budget-stopped
		// run) reuses the existing dataset.
		if _, err := sys.CreateTissueDataset(tissue); err != nil {
			var exists gea.ErrExists
			if !errors.As(err, &exists) {
				return err
			}
		}
		if err := sys.GenerateMetadata(tissue, 10); err != nil {
			return err
		}
		if r.engine == gea.EngineColumnar {
			// Memoise the columnar view on the tissue dataset so the
			// mining pipeline's operators dispatch to the block engine.
			if d, err := sys.Dataset(tissue); err == nil {
				gea.EnableColumnar(d)
			}
		}
		ctx, stop := r.opCtx()
		defer stop()
		pure, tr, err := sys.FindPureFascicleCtx(ctx, tissue, gea.PropCancer, 3, r.limits)
		if err != nil {
			if gea.IsCancellation(err) {
				fmt.Fprintf(r.out, "mine %s cancelled after %d work units; session kept\n", tissue, tr.Units)
				return nil
			}
			if gea.IsBudget(err) {
				fmt.Fprintf(r.out, "mine %s stopped by the work budget after %d units (no pure fascicle yet); raise it with \"limit budget N\"\n", tissue, tr.Units)
				return nil
			}
			return err
		}
		if tr.Partial {
			fmt.Fprintf(r.out, "note: the search hit its work budget; the result may not be the tightest fascicle\n")
		}
		fmt.Fprintf(r.out, "pure cancerous fascicle: %s\n", pure)
		return nil
	case "limit":
		switch arg(0) {
		case "":
			if r.limits.Budget == 0 && r.deadline == 0 && r.limits.Workers <= 1 && r.engine == gea.EngineAuto {
				fmt.Fprintln(r.out, "no limits set")
			} else {
				workers := r.limits.Workers
				if workers < 1 {
					workers = 1
				}
				fmt.Fprintf(r.out, "budget %d units, deadline %v, workers %d, engine %v\n", r.limits.Budget, r.deadline, workers, r.engine)
			}
			return nil
		case "off":
			r.limits = gea.ExecLimits{}
			r.deadline = 0
			r.engine = gea.EngineAuto
			fmt.Fprintln(r.out, "limits cleared")
			return nil
		case "budget":
			n, err := strconv.ParseInt(arg(1), 10, 64)
			if err != nil || n < 0 {
				return fmt.Errorf("usage: limit budget N (a nonnegative integer)")
			}
			r.limits.Budget = n
			fmt.Fprintf(r.out, "work budget set to %d units\n", n)
			return nil
		case "deadline":
			d, err := time.ParseDuration(arg(1))
			if err != nil || d <= 0 {
				return fmt.Errorf("usage: limit deadline DUR (e.g. 30s)")
			}
			r.deadline = d
			fmt.Fprintf(r.out, "deadline set to %v\n", d)
			return nil
		case "workers":
			n, err := strconv.ParseInt(arg(1), 10, 32)
			if err != nil || n < 1 || n > 1024 {
				return fmt.Errorf("usage: limit workers N (an integer in [1, 1024]; results are identical at any setting)")
			}
			r.limits.Workers = int(n)
			fmt.Fprintf(r.out, "worker count set to %d\n", n)
			return nil
		case "engine":
			eng, err := gea.ParseEngine(arg(1))
			if err != nil || arg(1) == "" {
				return fmt.Errorf("usage: limit engine row|columnar|auto (results are identical on either)")
			}
			r.engine = eng
			fmt.Fprintf(r.out, "engine set to %v\n", eng)
			return nil
		default:
			return fmt.Errorf(`usage: limit [budget N | deadline DUR | workers N | engine E | off]`)
		}
	case "trace":
		switch arg(0) {
		case "on":
			if r.trace == nil {
				r.trace = gea.NewObsCollector()
			}
			fmt.Fprintln(r.out, "tracing on: governed commands now record spans and metrics")
			return nil
		case "off":
			r.trace = nil
			fmt.Fprintln(r.out, "tracing off (collected spans and metrics discarded)")
			return nil
		default:
			return fmt.Errorf("usage: trace on|off")
		}
	case "stats":
		if r.trace == nil {
			return fmt.Errorf(`tracing is off: "trace on" first`)
		}
		fmt.Fprint(r.out, r.trace.Metrics.Snapshot().String())
		return nil
	case "explain":
		if arg(0) != "last" {
			return fmt.Errorf("usage: explain last")
		}
		if r.trace == nil {
			return fmt.Errorf(`tracing is off: "trace on" first`)
		}
		root := r.trace.LastRoot()
		if root == nil {
			return fmt.Errorf("no governed command has completed since tracing was enabled")
		}
		fmt.Fprint(r.out, root.Tree())
		return nil
	case "tree":
		sys, err := r.needSession()
		if err != nil {
			return err
		}
		fmt.Fprint(r.out, sys.Lineage.Tree())
		return nil
	case "debug-panic":
		// Deliberate crash used to exercise the loop's panic recovery.
		panic("debug-panic command")
	default:
		return fmt.Errorf("unknown command %q (try \"help\")", cmd)
	}
}

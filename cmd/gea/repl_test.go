package main

import (
	"strings"
	"testing"
)

// TestReplSurvivesPanic drives the command loop through a deliberate panic
// and asserts the loop keeps serving commands — with its session state
// intact — instead of crashing the process.
func TestReplSurvivesPanic(t *testing.T) {
	var out, errw strings.Builder
	r := &repl{out: &out, errw: &errw}
	script := "gen\ndebug-panic\ninfo\nquit\n"
	if err := r.run(strings.NewReader(script)); err != nil {
		t.Fatalf("repl exited with error: %v", err)
	}
	if !strings.Contains(errw.String(), "panic recovered") {
		t.Errorf("panic not surfaced to the user:\n%s", errw.String())
	}
	if r.sys == nil {
		t.Fatal("session lost across the panic")
	}
	// The post-panic "info" command ran against the surviving session.
	if !strings.Contains(out.String(), "libraries x") {
		t.Errorf("post-panic command did not run:\n%s", out.String())
	}
}

// TestReplUnknownAndSessionlessCommands checks ordinary error paths keep
// the loop alive too.
func TestReplUnknownAndSessionlessCommands(t *testing.T) {
	var out, errw strings.Builder
	r := &repl{out: &out, errw: &errw}
	script := "bogus\ninfo\nsave\nhelp\nquit\n"
	if err := r.run(strings.NewReader(script)); err != nil {
		t.Fatalf("repl exited with error: %v", err)
	}
	for _, want := range []string{"unknown command", "no session"} {
		if !strings.Contains(errw.String(), want) {
			t.Errorf("missing %q in error output:\n%s", want, errw.String())
		}
	}
	if !strings.Contains(out.String(), "commands:") {
		t.Error("help did not print after earlier errors")
	}
}

// TestReplSaveLoadRoundTrip saves a session from the REPL and loads it in
// a fresh loop, covering the CLI's durable save/load path.
func TestReplSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir() + "/session"
	var out, errw strings.Builder
	r := &repl{out: &out, errw: &errw}
	script := "gen\nmine brain\nsave " + dir + "\nquit\n"
	if err := r.run(strings.NewReader(script)); err != nil {
		t.Fatalf("save loop: %v", err)
	}
	if errw.Len() > 0 {
		t.Fatalf("save loop errors:\n%s", errw.String())
	}

	var out2, errw2 strings.Builder
	r2 := &repl{out: &out2, errw: &errw2}
	if err := r2.run(strings.NewReader("load " + dir + "\nreport\ntree\nquit\n")); err != nil {
		t.Fatalf("load loop: %v", err)
	}
	if errw2.Len() > 0 {
		t.Fatalf("load loop errors:\n%s", errw2.String())
	}
	if !strings.Contains(out2.String(), "load clean") {
		t.Errorf("expected clean load report:\n%s", out2.String())
	}
}

package main

import (
	"os"
	"strings"
	"testing"
	"time"

	"gea"
)

// TestReplSurvivesPanic drives the command loop through a deliberate panic
// and asserts the loop keeps serving commands — with its session state
// intact — instead of crashing the process.
func TestReplSurvivesPanic(t *testing.T) {
	var out, errw strings.Builder
	r := &repl{out: &out, errw: &errw}
	script := "gen\ndebug-panic\ninfo\nquit\n"
	if err := r.run(strings.NewReader(script)); err != nil {
		t.Fatalf("repl exited with error: %v", err)
	}
	if !strings.Contains(errw.String(), "panic recovered") {
		t.Errorf("panic not surfaced to the user:\n%s", errw.String())
	}
	if r.sys == nil {
		t.Fatal("session lost across the panic")
	}
	// The post-panic "info" command ran against the surviving session.
	if !strings.Contains(out.String(), "libraries x") {
		t.Errorf("post-panic command did not run:\n%s", out.String())
	}
}

// TestReplUnknownAndSessionlessCommands checks ordinary error paths keep
// the loop alive too.
func TestReplUnknownAndSessionlessCommands(t *testing.T) {
	var out, errw strings.Builder
	r := &repl{out: &out, errw: &errw}
	script := "bogus\ninfo\nsave\nhelp\nquit\n"
	if err := r.run(strings.NewReader(script)); err != nil {
		t.Fatalf("repl exited with error: %v", err)
	}
	for _, want := range []string{"unknown command", "no session"} {
		if !strings.Contains(errw.String(), want) {
			t.Errorf("missing %q in error output:\n%s", want, errw.String())
		}
	}
	if !strings.Contains(out.String(), "commands:") {
		t.Error("help did not print after earlier errors")
	}
}

// TestReplSaveLoadRoundTrip saves a session from the REPL and loads it in
// a fresh loop, covering the CLI's durable save/load path.
func TestReplSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir() + "/session"
	var out, errw strings.Builder
	r := &repl{out: &out, errw: &errw}
	script := "gen\nmine brain\nsave " + dir + "\nquit\n"
	if err := r.run(strings.NewReader(script)); err != nil {
		t.Fatalf("save loop: %v", err)
	}
	if errw.Len() > 0 {
		t.Fatalf("save loop errors:\n%s", errw.String())
	}

	var out2, errw2 strings.Builder
	r2 := &repl{out: &out2, errw: &errw2}
	if err := r2.run(strings.NewReader("load " + dir + "\nreport\ntree\nquit\n")); err != nil {
		t.Fatalf("load loop: %v", err)
	}
	if errw2.Len() > 0 {
		t.Fatalf("load loop errors:\n%s", errw2.String())
	}
	if !strings.Contains(out2.String(), "load clean") {
		t.Errorf("expected clean load report:\n%s", out2.String())
	}
}

// TestReplLimitCommand drives the "limit" command and a budget-bounded
// mine: an impossible budget must produce a friendly note — not an error —
// and the session must stay alive for the follow-up unlimited mine.
func TestReplLimitCommand(t *testing.T) {
	var out, errw strings.Builder
	r := &repl{out: &out, errw: &errw}
	script := strings.Join([]string{
		"gen",
		"limit budget 3",
		"limit",
		"mine brain",
		"limit off",
		"mine brain",
		"quit",
	}, "\n") + "\n"
	if err := r.run(strings.NewReader(script)); err != nil {
		t.Fatalf("repl exited with error: %v", err)
	}
	if errw.Len() > 0 {
		t.Fatalf("limit script errors:\n%s", errw.String())
	}
	if !strings.Contains(out.String(), "budget 3 units, deadline") {
		t.Errorf("limit did not report its setting:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "stopped by the work budget") {
		t.Errorf("budget-stopped mine not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "pure cancerous fascicle:") {
		t.Errorf("unlimited mine after limit off did not succeed:\n%s", out.String())
	}

	var errOut strings.Builder
	r2 := &repl{out: &strings.Builder{}, errw: &errOut}
	if err := r2.run(strings.NewReader("limit budget x\nlimit deadline nope\nlimit workers 0\nlimit workers many\nquit\n")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "limit budget N") || !strings.Contains(errOut.String(), "limit deadline DUR") {
		t.Errorf("bad limit arguments not rejected:\n%s", errOut.String())
	}
	if strings.Count(errOut.String(), "limit workers N") != 2 {
		t.Errorf("bad worker counts not rejected:\n%s", errOut.String())
	}
}

// TestReplLimitWorkers sets a worker count, checks the status line shows
// it, and runs a mine under it: the parallel evaluation must produce the
// same successful outcome as the sequential default.
func TestReplLimitWorkers(t *testing.T) {
	var out, errw strings.Builder
	r := &repl{out: &out, errw: &errw}
	script := strings.Join([]string{
		"gen",
		"limit workers 4",
		"limit",
		"mine brain",
		"quit",
	}, "\n") + "\n"
	if err := r.run(strings.NewReader(script)); err != nil {
		t.Fatalf("repl exited with error: %v", err)
	}
	if errw.Len() > 0 {
		t.Fatalf("workers script errors:\n%s", errw.String())
	}
	if !strings.Contains(out.String(), "worker count set to 4") {
		t.Errorf("limit workers did not confirm:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "workers 4") {
		t.Errorf("limit status does not show the worker count:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "pure cancerous fascicle:") {
		t.Errorf("mine under workers 4 did not succeed:\n%s", out.String())
	}
}

// TestReplLimitWorkersErrorPaths rejects every malformed worker count —
// zero, negative, non-numeric, and a missing value — with the same usage
// message, and leaves the session's worker setting untouched.
func TestReplLimitWorkersErrorPaths(t *testing.T) {
	var out, errOut strings.Builder
	r := &repl{out: &out, errw: &errOut}
	script := strings.Join([]string{
		"limit workers 0",
		"limit workers -2",
		"limit workers many",
		"limit workers",
		"quit",
	}, "\n") + "\n"
	if err := r.run(strings.NewReader(script)); err != nil {
		t.Fatalf("repl exited with error: %v", err)
	}
	if got := strings.Count(errOut.String(), "limit workers N"); got != 4 {
		t.Errorf("want 4 usage rejections, got %d:\n%s", got, errOut.String())
	}
	if r.limits.Workers != 0 {
		t.Errorf("rejected inputs changed the worker setting to %d", r.limits.Workers)
	}
}

// TestReplLimitEngine routes a traced mine onto the columnar engine via
// "limit engine columnar" and asserts the whole surface: the status line
// shows the engine, the mine still succeeds (engines are bit-identical),
// the explain-last span tree carries the per-operator block statistics
// the columnar kernels record, and "limit off" resets the engine.
func TestReplLimitEngine(t *testing.T) {
	var out, errw strings.Builder
	r := &repl{out: &out, errw: &errw}
	script := strings.Join([]string{
		"gen",
		"limit engine columnar",
		"limit",
		"trace on",
		"mine brain",
		"explain last",
		"limit off",
		"limit",
		"quit",
	}, "\n") + "\n"
	if err := r.run(strings.NewReader(script)); err != nil {
		t.Fatalf("repl exited with error: %v", err)
	}
	if errw.Len() > 0 {
		t.Fatalf("engine script errors:\n%s", errw.String())
	}
	if !strings.Contains(out.String(), "engine set to columnar") {
		t.Errorf("limit engine did not confirm:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "engine columnar") {
		t.Errorf("limit status does not show the engine:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "pure cancerous fascicle:") {
		t.Errorf("mine on the columnar engine did not succeed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "blocks_scanned=") {
		t.Errorf("explain last does not show columnar block statistics:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "no limits set") {
		t.Errorf("limit off did not reset the engine to auto:\n%s", out.String())
	}
	if r.engine != gea.EngineAuto {
		t.Errorf("engine after limit off = %v, want auto", r.engine)
	}

	var errOut strings.Builder
	r2 := &repl{out: &strings.Builder{}, errw: &errOut}
	if err := r2.run(strings.NewReader("limit engine bogus\nlimit engine\nquit\n")); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(errOut.String(), "limit engine row|columnar|auto"); got != 2 {
		t.Errorf("want 2 engine usage rejections, got %d:\n%s", got, errOut.String())
	}
	if r2.engine != gea.EngineAuto {
		t.Errorf("rejected inputs changed the engine to %v", r2.engine)
	}
}

// TestReplTraceStatsExplain exercises the observability commands end to
// end: the off-state errors, the usage errors, and a traced mine whose
// spans and metrics are then readable through "stats" and "explain last".
func TestReplTraceStatsExplain(t *testing.T) {
	var out, errw strings.Builder
	r := &repl{out: &out, errw: &errw}
	script := strings.Join([]string{
		"stats",        // tracing off
		"explain last", // tracing off
		"explain",      // usage
		"trace",        // usage
		"trace maybe",  // usage
		"gen",
		"trace on",
		"explain last", // nothing recorded yet
		"mine brain",
		"stats",
		"explain last",
		"trace off",
		"stats", // tracing off again
		"quit",
	}, "\n") + "\n"
	if err := r.run(strings.NewReader(script)); err != nil {
		t.Fatalf("repl exited with error: %v", err)
	}
	if got := strings.Count(errw.String(), "tracing is off"); got != 3 {
		t.Errorf("want 3 tracing-off errors, got %d:\n%s", got, errw.String())
	}
	if got := strings.Count(errw.String(), "usage: trace on|off"); got != 2 {
		t.Errorf("want 2 trace usage errors, got %d:\n%s", got, errw.String())
	}
	if !strings.Contains(errw.String(), "usage: explain last") {
		t.Errorf("bare explain not rejected:\n%s", errw.String())
	}
	if !strings.Contains(errw.String(), "no governed command has completed") {
		t.Errorf("explain before any traced run not reported:\n%s", errw.String())
	}
	// The traced mine fed the metrics registry and the span ring.
	if !strings.Contains(out.String(), "ops.system.FindPureFascicle.count") {
		t.Errorf("stats does not show the traced operator:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "exec.checkpoints") {
		t.Errorf("stats does not show the checkpoint hook counter:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "system.FindPureFascicle") || !strings.Contains(out.String(), "core.Mine") {
		t.Errorf("explain last does not render the span tree:\n%s", out.String())
	}
	if r.trace != nil {
		t.Error("trace off did not discard the collector")
	}
}

// TestReplInterruptCancelsOperator delivers a synthetic SIGINT mid-mine and
// asserts the command is cancelled while the loop and session survive.
func TestReplInterruptCancelsOperator(t *testing.T) {
	var out, errw strings.Builder
	sigc := make(chan os.Signal, 1)
	r := &repl{out: &out, errw: &errw, sigc: sigc}
	if err := r.run(strings.NewReader("gen\nquit\n")); err != nil {
		t.Fatal(err)
	}
	// Queue the interrupt before dispatching: the watcher started by opCtx
	// picks it up at the first checkpoint of the mining run.
	sigc <- os.Interrupt
	if err := r.safeDispatch([]string{"mine", "brain"}); err != nil {
		t.Fatalf("interrupted mine returned an error: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(out.String(), "cancelled") && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "cancelled") {
		t.Fatalf("interrupt did not cancel the mine:\n%s\n%s", out.String(), errw.String())
	}
	if r.sys == nil {
		t.Fatal("session lost across the interrupt")
	}
	// The session is still usable afterwards.
	out.Reset()
	if err := r.safeDispatch([]string{"info"}); err != nil {
		t.Fatalf("post-interrupt command failed: %v", err)
	}
	if !strings.Contains(out.String(), "libraries x") {
		t.Errorf("post-interrupt info did not run:\n%s", out.String())
	}
}

package main

import (
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"

	"gea"
)

// This file implements "gea serve": a small HTTP front end over a session,
// built so the observability layer has a live surface. Every /mine request
// runs a governed pure-fascicle search; with -debug the server also exposes
// the collected spans and metrics (/debug/spans, /debug/metrics) and the
// standard expvar dump (/debug/vars) the registry publishes into.

// debugServer bundles the session, its execution limits and the trace
// collector every request records into.
type debugServer struct {
	sys    *gea.System
	trace  *gea.ObsCollector
	limits gea.ExecLimits
}

// newServeMux wires the HTTP routes. The debug endpoints are opt-in so a
// plain "gea serve" exposes analysis only, no introspection surface.
func newServeMux(sys *gea.System, limits gea.ExecLimits, debug bool) (*debugServer, *http.ServeMux) {
	s := &debugServer{sys: sys, trace: gea.NewObsCollector(), limits: limits}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/mine", s.handleMine)
	if debug {
		s.trace.Metrics.Publish("gea.metrics")
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/spans", s.handleSpans)
		mux.HandleFunc("/debug/metrics", s.handleMetrics)
	}
	return s, mux
}

// mineResponse is the JSON body of a /mine reply.
type mineResponse struct {
	Tissue   string `json:"tissue"`
	Fascicle string `json:"fascicle,omitempty"`
	Units    int64  `json:"units"`
	Partial  bool   `json:"partial"`
	Note     string `json:"note,omitempty"`
}

// handleMine runs the tissue pipeline (dataset, metadata, governed
// pure-fascicle search) with the request's context, recording spans and
// metrics into the server's collector.
func (s *debugServer) handleMine(w http.ResponseWriter, r *http.Request) {
	tissue := r.URL.Query().Get("tissue")
	if tissue == "" {
		http.Error(w, "missing ?tissue= parameter", http.StatusBadRequest)
		return
	}
	// Re-mining a tissue reuses the dataset already in the session.
	if _, err := s.sys.CreateTissueDataset(tissue); err != nil {
		var exists gea.ErrExists
		if !errors.As(err, &exists) {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	if err := s.sys.GenerateMetadata(tissue, 10); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	ctx := gea.WithObsCollector(r.Context(), s.trace)
	ctx = gea.WithExecHook(ctx, s.trace.ExecHook())
	pure, tr, err := s.sys.FindPureFascicleCtx(ctx, tissue, gea.PropCancer, 3, s.limits)
	resp := mineResponse{Tissue: tissue, Fascicle: pure, Units: tr.Units, Partial: tr.Partial}
	switch {
	case err == nil:
	case gea.IsCancellation(err):
		resp.Note = "cancelled"
	case gea.IsBudget(err):
		resp.Note = "stopped by the work budget"
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, resp)
}

// handleSpans dumps the collector's retained root span records, oldest
// first — the run-record analogue of a goroutine dump.
func (s *debugServer) handleSpans(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.trace.Roots())
}

// handleMetrics serves the deterministic metrics snapshot.
func (s *debugServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.trace.Metrics.Snapshot())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	in := fs.String("in", "SageLibrary", "corpus directory")
	addr := fs.String("addr", "127.0.0.1:7333", "listen address")
	workers := fs.Int("workers", 1, "worker count for sharded evaluation (results are identical at any setting)")
	budget := fs.Int64("budget", 0, "work-unit budget per request (0 = unlimited; exceeded requests return partial results)")
	debug := fs.Bool("debug", false, "expose /debug/vars, /debug/spans and /debug/metrics")
	fs.Parse(args)

	corpus, err := gea.LoadCorpus(*in)
	if err != nil {
		return err
	}
	sys, err := gea.NewSystem(corpus, gea.SystemOptions{User: "serve", Workers: *workers})
	if err != nil {
		return err
	}
	_, mux := newServeMux(sys, gea.ExecLimits{Budget: *budget, Workers: *workers}, *debug)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("gea serve listening on http://%s (debug endpoints: %v)\n", ln.Addr(), *debug)
	return http.Serve(ln, mux)
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"gea"
)

// This file implements "gea serve": the HTTP front door over a session,
// built to stay up under overload. Every /mine request passes through the
// session's bounded admission queue: a queue-timeout surfaces as 429 with
// Retry-After, a full queue as an immediate 503 with Retry-After, and
// while the queue is degraded request budgets are shrunk so callers get
// flagged partials instead of timeouts. /healthz reports the load state,
// SIGTERM drains gracefully, and with -debug the server also exposes the
// collected spans and metrics (/debug/spans, /debug/metrics) and the
// standard expvar dump (/debug/vars) the registry publishes into.

// serveOptions is the per-server request policy.
type serveOptions struct {
	// limits is the base per-request execution limits; the admission
	// queue's load state may shrink the budget per request.
	limits gea.ExecLimits
	// debug exposes the introspection endpoints.
	debug bool
	// requestTimeout bounds each /mine request's governed work; an
	// expired request returns 503 with Retry-After. Zero disables.
	requestTimeout time.Duration
	// ingest exposes POST /ingest; the session must have been built with
	// SystemOptions.Ingest.
	ingest bool
	// sessionExpiry and maxSessions configure the /session table; zero
	// selects the session-package defaults.
	sessionExpiry time.Duration
	maxSessions   int
}

// gateway bundles the session, the trace collector every request records
// into, the request policy, and the fault-injection schedule the serve
// tests drive.
type gateway struct {
	sys   *gea.System
	trace *gea.ObsCollector
	opts  serveOptions
	// draining flips when graceful shutdown begins: new /mine work is
	// refused with 503 before it touches the session.
	draining atomic.Bool
	// reqSeq numbers /mine requests in arrival order, the coordinate
	// system the fault schedule uses.
	reqSeq atomic.Int64
	faults *serveFaults
	// sessions owns the /session lifecycle and operator dispatch.
	sessions *gea.SessionManager
}

// newServeMux wires the HTTP routes. The debug endpoints are opt-in so a
// plain "gea serve" exposes analysis only, no introspection surface.
func newServeMux(sys *gea.System, trace *gea.ObsCollector, opts serveOptions) (*gateway, *http.ServeMux) {
	gw := &gateway{sys: sys, trace: trace, opts: opts, faults: newServeFaults()}
	gw.sessions = gea.NewSessionManager(sys, gea.SessionOptions{
		Expiry:      opts.sessionExpiry,
		MaxSessions: opts.maxSessions,
		Metrics:     trace.Metrics,
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", protect(gw.handleHealthz))
	mux.HandleFunc("/mine", protect(gw.handleMine))
	mux.HandleFunc("POST /session", protect(gw.handleSessionCreate))
	mux.HandleFunc("GET /session/{id}", protect(gw.handleSessionGet))
	mux.HandleFunc("DELETE /session/{id}", protect(gw.handleSessionDelete))
	mux.HandleFunc("POST /session/{id}/run", protect(gw.handleSessionRun))
	mux.HandleFunc("GET /session/{id}/lineage", protect(gw.handleSessionLineage))
	if opts.ingest {
		mux.HandleFunc("/ingest", protect(gw.handleIngest))
	}
	if opts.debug {
		trace.Metrics.Publish("gea.metrics")
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/spans", protect(gw.handleSpans))
		mux.HandleFunc("/debug/metrics", protect(gw.handleMetrics))
	}
	return gw, mux
}

// protect isolates a panicking handler to its own request: the fault is
// answered with a 500 instead of tearing down the connection (and, under
// http.Server, the whole serving goroutine's connection state).
func protect(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				http.Error(w, fmt.Sprintf("internal error: %v", rec), http.StatusInternalServerError)
			}
		}()
		h(w, r)
	}
}

// shutdown begins the graceful drain: new /mine requests are refused,
// queued admission waiters are kicked, and the call blocks until every
// in-flight operator has released its slot or ctx dies.
func (gw *gateway) shutdown(ctx context.Context) error {
	gw.draining.Store(true)
	return gw.sys.Shutdown(ctx)
}

// mineResponse is the JSON body of a /mine reply.
type mineResponse struct {
	Tissue   string `json:"tissue"`
	Fascicle string `json:"fascicle,omitempty"`
	Units    int64  `json:"units"`
	Partial  bool   `json:"partial"`
	// State is the admission load state the request ran under; Degraded
	// mirrors it as a boolean for quick client checks.
	State    string `json:"state,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	// Throttled reports that the tenant's own work-budget envelope (not
	// fleet-wide load) shaped this request's budget down.
	Throttled bool   `json:"throttled,omitempty"`
	Note      string `json:"note,omitempty"`
}

// handleMine runs the tissue pipeline (dataset, metadata, governed
// pure-fascicle search) with the request's context, recording spans and
// metrics into the server's collector. Status mapping: 400 only for
// caller errors (missing or unknown tissue, or a typed ParamError from
// the mining pipeline), 429 for an admission-queue timeout, 503 for
// overload/shedding/draining/timeout (all with Retry-After), 500
// otherwise. Budget stops are 200s with the partial flagged — that is
// the degraded mode working as designed.
func (gw *gateway) handleMine(w http.ResponseWriter, r *http.Request) {
	n := gw.reqSeq.Add(1)
	gw.faults.maybePanic(n)
	if gw.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server is draining", http.StatusServiceUnavailable)
		return
	}
	tissue := r.URL.Query().Get("tissue")
	if tissue == "" {
		http.Error(w, "missing ?tissue= parameter", http.StatusBadRequest)
		return
	}
	if _, ok := gw.sys.TissueTypes()[tissue]; !ok {
		http.Error(w, fmt.Sprintf("unknown tissue %q", tissue), http.StatusBadRequest)
		return
	}
	// Saturated sheds non-essential work before it ever queues.
	state := gw.sys.AdmissionState()
	if state == gea.AdmissionSaturated && r.URL.Query().Get("priority") == "low" {
		w.Header().Set("Retry-After", retryAfterSeconds(gw.sys.AdmissionStats().AvgHold))
		http.Error(w, "saturated: low-priority request shed", http.StatusServiceUnavailable)
		return
	}
	// Re-mining a tissue reuses the dataset already in the session; any
	// other creation failure is the server's fault, not the caller's.
	if _, err := gw.sys.CreateTissueDataset(tissue); err != nil {
		var exists gea.ErrExists
		if !errors.As(err, &exists) {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	if err := gw.sys.GenerateMetadata(tissue, 10); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	ctx := r.Context()
	if gw.opts.requestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, gw.opts.requestTimeout)
		defer cancel()
	}
	ctx = gea.WithObsCollector(ctx, gw.trace)
	ctx = gea.WithExecHook(ctx, gw.faults.wrap(n, gw.trace.ExecHook()))

	// Budgets are shaped from the load state observed at entry so one
	// request sees one consistent policy: the fleet-wide queue state
	// first, then the tenant's own envelope — a heavy tenant degrades
	// itself before the fleet degrades everyone.
	tenant := tenantOf(r)
	lim, state, throttled := gw.sys.ShapeLimitsFor(tenant, gw.opts.limits)
	pure, tr, err := gw.sys.FindPureFascicleCtx(ctx, tissue, gea.PropCancer, 3, lim)
	gw.sys.ChargeTenant(tenant, tr.Units)
	resp := mineResponse{
		Tissue: tissue, Fascicle: pure, Units: tr.Units, Partial: tr.Partial,
		State: state.String(), Degraded: state != gea.AdmissionHealthy,
		Throttled: throttled,
	}
	var busy *gea.ErrBusy
	var overload *gea.ErrOverload
	var param *gea.FascicleParamError
	switch {
	case err == nil:
	case gea.IsBudget(err):
		// The work budget (possibly shrunk by degraded mode) ran out:
		// a flagged partial, not a failure.
		resp.Partial = true
		resp.Note = "stopped by the work budget"
	case errors.As(err, &busy):
		w.Header().Set("Retry-After", retryAfterSeconds(busy.RetryAfter))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.As(err, &overload):
		w.Header().Set("Retry-After", retryAfterSeconds(overload.RetryAfter))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, gea.ErrShuttingDown):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.As(err, &param):
		// A typed mining-parameter rejection is the caller's fault:
		// surfacing it as 500 would poison the server error rate and
		// invite pointless retries of a request that can never succeed.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case gea.IsCancellation(err):
		// The request deadline (or the client) cancelled mid-work.
		resp.Note = "cancelled"
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// ingestResponse is the JSON body of a /ingest reply: the append report
// plus the corpus generation the session serves after the commit.
type ingestResponse struct {
	*gea.IngestReport
	// Generation is the session's corpus-generation token after this
	// append (readers of /mine see exactly this corpus or a later one).
	Generation uint64 `json:"generation"`
	State      string `json:"state,omitempty"`
	Degraded   bool   `json:"degraded,omitempty"`
}

// handleIngest accepts one append batch (POST, JSON wire form). Status
// mapping mirrors /mine: 400 for a caller problem (bad method aside —
// that is 405 — a payload that does not decode, or a typed SchemaError
// the append surfaces for the batch as a whole), 429 for an
// admission-queue timeout, 503 for overload/draining/cancellation with
// Retry-After, 500 otherwise. Schema violations inside a well-formed
// batch are NOT errors: those libraries are quarantined and reported in
// the 200 body while the valid remainder commits.
func (gw *gateway) handleIngest(w http.ResponseWriter, r *http.Request) {
	if gw.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server is draining", http.StatusServiceUnavailable)
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a JSON batch", http.StatusMethodNotAllowed)
		return
	}
	batch, err := gea.DecodeIngestBatch(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	ctx := r.Context()
	if gw.opts.requestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, gw.opts.requestTimeout)
		defer cancel()
	}
	ctx = gea.WithObsCollector(ctx, gw.trace)

	lim, state := gw.sys.ShapeLimits(gw.opts.limits)
	rep, _, err := gw.sys.IngestAppendCtx(ctx, batch, lim)
	var busy *gea.ErrBusy
	var overload *gea.ErrOverload
	var schema *gea.IngestSchemaError
	switch {
	case err == nil:
	case errors.As(err, &busy):
		w.Header().Set("Retry-After", retryAfterSeconds(busy.RetryAfter))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.As(err, &overload):
		w.Header().Set("Retry-After", retryAfterSeconds(overload.RetryAfter))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, gea.ErrShuttingDown):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.As(err, &schema):
		// A schema rejection of the batch as a whole (per-library
		// violations quarantine instead) is the caller's fault: a 400,
		// never a 500 that would poison the server error rate.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case gea.IsCancellation(err), gea.IsBudget(err):
		// The request deadline died mid-append, or degraded-mode budget
		// shaping stopped the apply. Nothing was committed (the view swap
		// is all-or-nothing), so the client can simply retry.
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{
		IngestReport: rep,
		Generation:   gw.sys.Generation(),
		State:        state.String(),
		Degraded:     state != gea.AdmissionHealthy,
	})
}

// healthResponse is the JSON body of /healthz: overall status, the
// admission load state, and the full queue snapshot.
type healthResponse struct {
	Status   string `json:"status"`
	State    string `json:"state"`
	Draining bool   `json:"draining"`
	// Generation is the corpus generation the session serves; 0 when the
	// session was built without streaming ingestion.
	Generation uint64             `json:"generation,omitempty"`
	Admission  gea.AdmissionStats `json:"admission"`
	// Sessions is the live /session count; Cache and Tenants snapshot
	// the result cache and the tenant envelopes (zero when disabled).
	Sessions int                  `json:"sessions"`
	Cache    gea.ResultCacheStats `json:"cache,omitempty"`
	Tenants  gea.TenantsStats     `json:"tenants,omitempty"`
}

// handleHealthz reports load state: 200 while serving (healthy or
// degraded — degraded is still serving), 503 once draining.
func (gw *gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := gw.sys.AdmissionStats()
	resp := healthResponse{
		Status:     "ok",
		State:      st.State.String(),
		Draining:   gw.draining.Load() || st.ShuttingDown,
		Generation: gw.sys.Generation(),
		Admission:  st,
		Sessions:   gw.sessions.Active(),
		Cache:      gw.sys.ResultCacheStats(),
		Tenants:    gw.sys.TenantStats(),
	}
	code := http.StatusOK
	if resp.Draining {
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// handleSpans dumps the collector's retained root span records, oldest
// first — the run-record analogue of a goroutine dump.
func (gw *gateway) handleSpans(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, gw.trace.Roots())
}

// handleMetrics serves the deterministic metrics snapshot.
func (gw *gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, gw.trace.Metrics.Snapshot())
}

// writeJSON encodes to a buffer first so a mid-encode failure can still
// become a clean 500 instead of trailing garbage on a started 200.
func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

// retryAfterSeconds renders a duration as a Retry-After header value:
// whole seconds, rounded up, at least 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// serveFaults injects deterministic faults into the request path, in the
// spirit of internal/iofault's op-numbered scripts: /mine requests are
// numbered in arrival order, and the schedule decides which of them
// stall at their first exec checkpoint (holding their admission slot)
// or panic inside the handler. The zero schedule injects nothing, so
// production requests pay one mutex hit and a map lookup.
type serveFaults struct {
	mu      sync.Mutex
	stalls  map[int64]stallSpec
	panics  map[int64]bool
	stalled chan int64
}

// stallSpec is one scheduled stall: block on release when set,
// otherwise sleep for dur.
type stallSpec struct {
	release <-chan struct{}
	dur     time.Duration
}

func newServeFaults() *serveFaults {
	return &serveFaults{
		stalls:  map[int64]stallSpec{},
		panics:  map[int64]bool{},
		stalled: make(chan int64, 16),
	}
}

// StallAt schedules request n (1-based /mine arrival order) to block at
// its first exec checkpoint until release is closed.
func (f *serveFaults) StallAt(n int64, release <-chan struct{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stalls[n] = stallSpec{release: release}
}

// StallFor schedules a duration-bounded stall — the right shape for
// deadline tests, which must not deadlock if the request dies first.
func (f *serveFaults) StallFor(n int64, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stalls[n] = stallSpec{dur: d}
}

// PanicAt schedules request n to panic inside the handler.
func (f *serveFaults) PanicAt(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.panics[n] = true
}

// Stalled emits each request number as its stall begins, so tests can
// sequence arrivals against a held admission slot.
func (f *serveFaults) Stalled() <-chan int64 { return f.stalled }

func (f *serveFaults) maybePanic(n int64) {
	if f == nil {
		return
	}
	f.mu.Lock()
	injected := f.panics[n]
	f.mu.Unlock()
	if injected {
		panic(fmt.Sprintf("serveFaults: injected handler crash on request %d", n))
	}
}

// wrap composes the trace hook with request n's scheduled stall; the
// stall fires once, at the request's first checkpoint, even when shard
// workers poll checkpoints concurrently.
func (f *serveFaults) wrap(n int64, inner gea.ExecHook) gea.ExecHook {
	if f == nil {
		return inner
	}
	f.mu.Lock()
	spec, ok := f.stalls[n]
	f.mu.Unlock()
	if !ok {
		return inner
	}
	var once sync.Once
	return func(nth int64) {
		inner(nth)
		once.Do(func() {
			select {
			case f.stalled <- n:
			default:
			}
			if spec.release != nil {
				<-spec.release
			} else {
				time.Sleep(spec.dur)
			}
		})
	}
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	in := fs.String("in", "SageLibrary", "corpus directory")
	addr := fs.String("addr", "127.0.0.1:7333", "listen address")
	workers := fs.Int("workers", 1, "worker count for sharded evaluation (results are identical at any setting)")
	budget := fs.Int64("budget", 0, "work-unit budget per request (0 = unlimited; exceeded requests return partial results)")
	debug := fs.Bool("debug", false, "expose /debug/vars, /debug/spans and /debug/metrics")
	maxConcurrent := fs.Int("max-concurrent", gea.DefaultMaxConcurrent, "concurrent mining operations")
	maxQueue := fs.Int("max-queue", gea.DefaultMaxQueue, "admission queue depth; a full queue answers 503 immediately")
	admitTimeout := fs.Duration("admit-timeout", 2*time.Second, "longest a request waits for an admission slot before 429")
	requestTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request work deadline; expired requests answer 503")
	degradedBudget := fs.Int64("degraded-budget", 0, "budget cap applied to unlimited requests while degraded (0 = none)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown window before in-flight work is cancelled")
	ingest := fs.Bool("ingest", false, "expose POST /ingest: accept append batches, committing each as a crash-safe corpus generation in -in")
	sessionExpiry := fs.Duration("session-expiry", gea.DefaultSessionExpiry, "idle lifetime of a /session before it expires")
	maxSessions := fs.Int("max-sessions", gea.DefaultMaxSessions, "live /session bound; creation past it answers 503 with Retry-After")
	cacheEntries := fs.Int("cache-entries", gea.DefaultCacheMaxEntries, "result-cache entry bound (0 disables the cache)")
	cacheBytes := fs.Int64("cache-bytes", gea.DefaultCacheMaxBytes, "result-cache approximate byte bound")
	tenantEnvelope := fs.Int64("tenant-envelope", 0, "per-tenant work-unit envelope per window; a tenant past it has its budgets shaped down (0 disables tenant shaping)")
	tenantWindow := fs.Duration("tenant-window", gea.DefaultTenantWindow, "decay window for the tenant envelope")
	if err := fs.Parse(args); err != nil {
		return err
	}

	trace := gea.NewObsCollector()
	sysOpts := gea.SystemOptions{
		User:             "serve",
		Workers:          *workers,
		MaxConcurrent:    *maxConcurrent,
		MaxQueue:         *maxQueue,
		AdmitTimeout:     *admitTimeout,
		DegradedBudget:   *degradedBudget,
		AdmissionMetrics: trace.Metrics,
	}
	if *cacheEntries > 0 {
		sysOpts.ResultCache = &gea.ResultCacheOptions{
			MaxEntries: *cacheEntries,
			MaxBytes:   *cacheBytes,
			Metrics:    trace.Metrics,
		}
	}
	if *tenantEnvelope > 0 {
		sysOpts.TenantPolicy = &gea.TenantPolicy{
			Envelope: *tenantEnvelope,
			Window:   *tenantWindow,
			Metrics:  trace.Metrics,
		}
	}
	var corpus *gea.Corpus
	if *ingest {
		// The corpus directory doubles as the append store; a directory
		// written by "gea gen" upgrades for free, and a missing CURRENT
		// opens as an empty store that the first append initializes.
		st, loaded, problems, err := gea.OpenIngestStore(gea.OSFS, *in, gea.DefaultIngestRetry())
		if err != nil {
			return err
		}
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "gea serve: salvage: skipped %v\n", p)
		}
		corpus = loaded
		sysOpts.Ingest = &gea.SystemIngestOptions{Store: st, Metrics: trace.Metrics}
	} else {
		var err error
		corpus, err = gea.LoadCorpus(*in)
		if err != nil {
			return err
		}
	}
	sys, err := gea.NewSystem(corpus, sysOpts)
	if err != nil {
		return err
	}
	gw, mux := newServeMux(sys, trace, serveOptions{
		limits:         gea.ExecLimits{Budget: *budget, Workers: *workers},
		debug:          *debug,
		requestTimeout: *requestTimeout,
		ingest:         *ingest,
		sessionExpiry:  *sessionExpiry,
		maxSessions:    *maxSessions,
	})

	// baseCtx parents every request context; cancelling it is the hard
	// stop that unwinds in-flight operators at their next checkpoint.
	baseCtx, cancelOps := context.WithCancel(context.Background())
	defer cancelOps()
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      *requestTimeout + 5*time.Second,
		IdleTimeout:       60 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("gea serve listening on http://%s (debug endpoints: %v)\n", ln.Addr(), *debug)

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-sigCtx.Done():
	}

	// Graceful drain: stop accepting /mine work, kick queued waiters,
	// let in-flight operators finish inside the drain window; past it,
	// cancel them through the base context and wait for the unwind.
	fmt.Fprintf(os.Stderr, "gea serve: signal received, draining (window %v)\n", *drain)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drain)
	defer cancelDrain()
	if err := gw.shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "gea serve: drain window expired, cancelling in-flight operators")
		cancelOps()
		hardCtx, cancelHard := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancelHard()
		if err := gw.sys.Shutdown(hardCtx); err != nil {
			return fmt.Errorf("in-flight operators did not unwind after cancellation: %w", err)
		}
	}
	closeCtx, cancelClose := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelClose()
	if err := srv.Shutdown(closeCtx); err != nil {
		srv.Close()
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "gea serve: drained, exiting")
	return nil
}

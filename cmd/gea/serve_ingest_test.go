package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gea"
)

// ingestSystem builds a session over an empty append store, mirroring
// "gea serve -ingest" on a fresh directory.
func ingestSystem(t *testing.T) *gea.System {
	t.Helper()
	st, corpus, _, err := gea.OpenIngestStore(gea.OSFS, t.TempDir(), gea.DefaultIngestRetry())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := gea.NewSystem(corpus, gea.SystemOptions{User: "ingest-test",
		Ingest: &gea.SystemIngestOptions{Store: st}})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// post runs one POST through the mux without a network listener.
func post(t *testing.T, mux *http.ServeMux, url, body string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	mux.ServeHTTP(rr, req)
	return rr
}

const ingestBody = `{"libraries":[
	{"name":"ing01","tissue":"brain","counts":{"AAAAAAAAAC":120,"ACGTACGTAC":3}},
	{"name":"ing02","tissue":"brain","cancer":true,"counts":{"AAAAAAAAAC":80}},
	{"name":"broken","tissue":"","counts":{"AAAAAAAAAC":1}}]}`

// TestServeIngestRoundTrip drives POST /ingest end to end: the valid
// libraries commit a generation reported in the body, the schema reject
// is quarantined inside a 200 (a bad library never fails its batch), and
// /healthz advertises the new generation.
func TestServeIngestRoundTrip(t *testing.T) {
	_, mux := newServeMux(ingestSystem(t), gea.NewObsCollector(), serveOptions{ingest: true})

	rr := post(t, mux, "/ingest", ingestBody)
	if rr.Code != http.StatusOK {
		t.Fatalf("/ingest = %d: %s", rr.Code, rr.Body.String())
	}
	var resp ingestResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("ingest response: %v", err)
	}
	if resp.Generation != 2 {
		t.Errorf("generation after first append = %d, want 2", resp.Generation)
	}
	if len(resp.Appended) != 2 || resp.Gen == "" {
		t.Errorf("append incomplete: %+v", resp)
	}
	if len(resp.Rejected) != 1 || resp.QuarantineDir == "" {
		t.Errorf("schema reject not quarantined: %+v", resp)
	}

	rr = get(t, mux, "/healthz")
	if rr.Code != http.StatusOK {
		t.Fatalf("/healthz = %d", rr.Code)
	}
	// healthResponse's admission stats don't round-trip through JSON (the
	// state marshals as a string), so read just the generation.
	var health struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Generation != 2 {
		t.Errorf("/healthz generation = %d, want 2", health.Generation)
	}

	// Replaying the batch collides on every name: still a 200, fully
	// quarantined, generation unchanged.
	rr = post(t, mux, "/ingest", ingestBody)
	if rr.Code != http.StatusOK {
		t.Fatalf("replayed /ingest = %d: %s", rr.Code, rr.Body.String())
	}
	var resp2 ingestResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if len(resp2.Appended) != 0 || len(resp2.Rejected) != 3 || resp2.Generation != 2 {
		t.Errorf("replayed batch was not fully rejected: %+v", resp2)
	}
}

// TestServeIngestStatusMapping pins the endpoint's error contract: 405
// for the wrong method (with Allow), 400 for a payload that does not
// decode, 503 with Retry-After once draining, and 404 when the server
// was started without -ingest.
func TestServeIngestStatusMapping(t *testing.T) {
	gw, mux := newServeMux(ingestSystem(t), gea.NewObsCollector(), serveOptions{ingest: true})

	if rr := get(t, mux, "/ingest"); rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest = %d, want 405", rr.Code)
	} else if rr.Header().Get("Allow") != http.MethodPost {
		t.Errorf("405 without Allow: %q", rr.Header().Get("Allow"))
	}
	if rr := post(t, mux, "/ingest", "{not json"); rr.Code != http.StatusBadRequest {
		t.Errorf("bad payload = %d, want 400", rr.Code)
	}

	gw.draining.Store(true)
	rr := post(t, mux, "/ingest", ingestBody)
	if rr.Code != http.StatusServiceUnavailable {
		t.Errorf("draining /ingest = %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("draining 503 without Retry-After")
	}

	_, plain := newServeMux(serveSystem(t), gea.NewObsCollector(), serveOptions{})
	if rr := post(t, plain, "/ingest", ingestBody); rr.Code != http.StatusNotFound {
		t.Errorf("/ingest without -ingest = %d, want 404", rr.Code)
	}
}

// TestServeMineParamError400 pins the statusmap fix on /mine: a tissue
// whose dataset is too small for the scan's K sweep makes the miner
// return a typed *FascicleParamError, and the handler must classify it
// as the caller's 400, not a 500 that poisons the server error rate.
func TestServeMineParamError400(t *testing.T) {
	_, mux := newServeMux(ingestSystem(t), gea.NewObsCollector(), serveOptions{ingest: true})

	// One library with a single distinct tag: K = NumTags*75/100 = 0, so
	// parameter validation rejects the mining run before any work.
	body := `{"libraries":[{"name":"tiny01","tissue":"tiny","counts":{"AAAAAAAAAC":5}}]}`
	if rr := post(t, mux, "/ingest", body); rr.Code != http.StatusOK {
		t.Fatalf("/ingest = %d: %s", rr.Code, rr.Body.String())
	}

	rr := get(t, mux, "/mine?tissue=tiny")
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("/mine on a 1-tag tissue = %d, want 400; body: %s", rr.Code, rr.Body.String())
	}
	if !strings.Contains(rr.Body.String(), "fascicle: invalid") {
		t.Errorf("400 body %q does not carry the typed parameter error", rr.Body.String())
	}
}

// TestServeIngestSchemaError400 pins the statusmap fix on /ingest: a
// payload the batch decoder rejects surfaces its typed SchemaError in a
// 400 body, so the client sees the schema diagnosis instead of a bare
// server error.
func TestServeIngestSchemaError400(t *testing.T) {
	_, mux := newServeMux(ingestSystem(t), gea.NewObsCollector(), serveOptions{ingest: true})
	rr := post(t, mux, "/ingest", `{"libraries": "not an array"}`)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("undecodable batch = %d, want 400; body: %s", rr.Code, rr.Body.String())
	}
	if !strings.Contains(rr.Body.String(), "ingest: schema") {
		t.Errorf("400 body %q does not carry the typed schema error", rr.Body.String())
	}
}

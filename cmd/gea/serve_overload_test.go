package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"gea"
)

// overloadSystem builds a session with explicit admission settings for
// the overload suites.
func overloadSystem(t *testing.T, opts gea.SystemOptions) *gea.System {
	t.Helper()
	res, err := gea.Generate(gea.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	opts.User = "serve-test"
	sys, err := gea.NewSystem(res.Corpus, opts)
	if err != nil {
		t.Fatalf("new system: %v", err)
	}
	return sys
}

// goGet issues one request from a goroutine, delivering the recorder on
// the returned channel.
func goGet(mux *http.ServeMux, url string) <-chan *httptest.ResponseRecorder {
	ch := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, url, nil))
		ch <- rr
	}()
	return ch
}

// waitQueueDepth polls until the admission queue holds at least depth
// waiters, so tests can sequence arrivals deterministically.
func waitQueueDepth(t *testing.T, sys *gea.System, depth int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if sys.AdmissionStats().QueueDepth >= depth {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached depth %d: %+v", depth, sys.AdmissionStats())
}

// retryAfterValue parses and sanity-checks a Retry-After header.
func retryAfterValue(t *testing.T, rr *httptest.ResponseRecorder) int {
	t.Helper()
	h := rr.Header().Get("Retry-After")
	if h == "" {
		t.Fatalf("no Retry-After header on %d response: %v", rr.Code, rr.Header())
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After %q is not a positive whole-second count", h)
	}
	return secs
}

// TestServe429RetryAfter pins the queue-timeout path: with the only
// slot stalled and a short admit timeout, the second request gets 429
// with Retry-After instead of hanging for the old 10s default.
func TestServe429RetryAfter(t *testing.T) {
	sys := overloadSystem(t, gea.SystemOptions{MaxConcurrent: 1, AdmitTimeout: 30 * time.Millisecond})
	gw, mux := newServeMux(sys, gea.NewObsCollector(), serveOptions{})
	release := make(chan struct{})
	gw.faults.StallAt(1, release)

	first := goGet(mux, "/mine?tissue=brain")
	<-gw.faults.Stalled() // request 1 now holds the only slot

	start := time.Now()
	rr := get(t, mux, "/mine?tissue=brain")
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("stalled-out request = %d, want 429: %s", rr.Code, rr.Body.String())
	}
	retryAfterValue(t, rr)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("429 took %v; the old 10s semaphore hang is back", elapsed)
	}

	close(release)
	if rr := <-first; rr.Code != http.StatusOK {
		t.Fatalf("stalled request after release = %d: %s", rr.Code, rr.Body.String())
	}
}

// TestServe503QueueFull pins the backpressure edge: with the slot held
// and the queue full, the next request is rejected immediately with 503
// and Retry-After, while everyone already queued still completes.
func TestServe503QueueFull(t *testing.T) {
	sys := overloadSystem(t, gea.SystemOptions{
		MaxConcurrent: 1, MaxQueue: 1, AdmitTimeout: 10 * time.Second,
	})
	gw, mux := newServeMux(sys, gea.NewObsCollector(), serveOptions{})
	release := make(chan struct{})
	gw.faults.StallAt(1, release)

	first := goGet(mux, "/mine?tissue=brain")
	<-gw.faults.Stalled()
	second := goGet(mux, "/mine?tissue=brain")
	waitQueueDepth(t, sys, 1)

	start := time.Now()
	rr := get(t, mux, "/mine?tissue=brain")
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("overflow request = %d, want 503: %s", rr.Code, rr.Body.String())
	}
	retryAfterValue(t, rr)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("overload rejection took %v, want immediate", elapsed)
	}

	close(release)
	for i, ch := range []<-chan *httptest.ResponseRecorder{first, second} {
		if rr := <-ch; rr.Code != http.StatusOK {
			t.Fatalf("queued request %d = %d: %s", i+1, rr.Code, rr.Body.String())
		}
	}
}

// TestServeDegradedPartial pins graceful degradation: once the queue
// tips into degraded, an otherwise-unlimited request runs under the
// DegradedBudget cap and returns a flagged partial instead of holding
// its slot to completion.
func TestServeDegradedPartial(t *testing.T) {
	sys := overloadSystem(t, gea.SystemOptions{
		MaxConcurrent: 1, MaxQueue: 8, AdmitTimeout: 10 * time.Second,
		DegradeAtDepth: 1, DegradedBudget: 3,
	})
	gw, mux := newServeMux(sys, gea.NewObsCollector(), serveOptions{})
	release := make(chan struct{})
	gw.faults.StallAt(1, release)

	first := goGet(mux, "/mine?tissue=brain")
	<-gw.faults.Stalled()
	second := goGet(mux, "/mine?tissue=brain") // queues; tips state to degraded
	waitQueueDepth(t, sys, 1)
	if st := sys.AdmissionState(); st != gea.AdmissionDegraded {
		t.Fatalf("state at depth 1 = %v, want degraded", st)
	}
	// A fresh tissue, so the governed search does real mining instead
	// of hitting the session's found-pure cache.
	third := goGet(mux, "/mine?tissue=breast") // enters degraded: budget capped at 3
	waitQueueDepth(t, sys, 2)
	close(release)

	if rr := <-first; rr.Code != http.StatusOK {
		t.Fatalf("stalled request = %d: %s", rr.Code, rr.Body.String())
	}
	var resp mineResponse
	if rr := <-second; rr.Code != http.StatusOK {
		t.Fatalf("second request = %d: %s", rr.Code, rr.Body.String())
	} else if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	} else if resp.Degraded || resp.Fascicle == "" {
		// Second request shaped its budget while still healthy.
		t.Fatalf("second request unexpectedly degraded: %+v", resp)
	}
	rr := <-third
	if rr.Code != http.StatusOK {
		t.Fatalf("degraded request = %d, want 200 partial: %s", rr.Code, rr.Body.String())
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.State != "degraded" {
		t.Fatalf("degraded request not marked: %+v", resp)
	}
	if !resp.Partial || resp.Note != "stopped by the work budget" {
		t.Fatalf("degraded request did not budget-stop into a partial: %+v", resp)
	}
	if resp.Units > 3 {
		t.Fatalf("degraded request charged %d units past the cap of 3", resp.Units)
	}
}

// TestServeShutdownDrain pins graceful shutdown: queued waiters are
// kicked with 503, /healthz flips to draining, new work is refused, and
// the in-flight request still completes with its full 200.
func TestServeShutdownDrain(t *testing.T) {
	sys := overloadSystem(t, gea.SystemOptions{MaxConcurrent: 1, AdmitTimeout: 10 * time.Second})
	gw, mux := newServeMux(sys, gea.NewObsCollector(), serveOptions{})
	release := make(chan struct{})
	gw.faults.StallAt(1, release)

	inflight := goGet(mux, "/mine?tissue=brain")
	<-gw.faults.Stalled()
	queued := goGet(mux, "/mine?tissue=brain")
	waitQueueDepth(t, sys, 1)

	shutErr := make(chan error, 1)
	go func() { shutErr <- gw.shutdown(context.Background()) }()

	if rr := <-queued; rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("kicked waiter = %d, want 503: %s", rr.Code, rr.Body.String())
	}
	if rr := get(t, mux, "/healthz"); rr.Code != http.StatusServiceUnavailable ||
		!strings.Contains(rr.Body.String(), "draining") {
		t.Fatalf("/healthz during drain = %d: %s", rr.Code, rr.Body.String())
	}
	if rr := get(t, mux, "/mine?tissue=brain"); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("new work during drain = %d, want 503", rr.Code)
	}
	select {
	case err := <-shutErr:
		t.Fatalf("shutdown returned %v with a request still in flight", err)
	case <-time.After(20 * time.Millisecond):
	}

	close(release)
	rr := <-inflight
	if rr.Code != http.StatusOK {
		t.Fatalf("in-flight request during drain = %d, want 200: %s", rr.Code, rr.Body.String())
	}
	var resp mineResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Fascicle == "" {
		t.Fatalf("drained request lost its result: %+v", resp)
	}
	if err := <-shutErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServePanicIsolation pins per-request crash isolation: an injected
// handler panic answers 500 and the next request is served normally.
func TestServePanicIsolation(t *testing.T) {
	sys := overloadSystem(t, gea.SystemOptions{})
	gw, mux := newServeMux(sys, gea.NewObsCollector(), serveOptions{})
	gw.faults.PanicAt(1)

	rr := get(t, mux, "/mine?tissue=brain")
	if rr.Code != http.StatusInternalServerError || !strings.Contains(rr.Body.String(), "internal error") {
		t.Fatalf("crashed request = %d: %s", rr.Code, rr.Body.String())
	}
	if rr := get(t, mux, "/mine?tissue=brain"); rr.Code != http.StatusOK {
		t.Fatalf("request after crash = %d, want 200: %s", rr.Code, rr.Body.String())
	}
}

// TestServeRequestTimeout pins the per-request deadline: a request
// stalled past requestTimeout answers 503 with Retry-After instead of
// hanging, and the slot frees for the next caller.
func TestServeRequestTimeout(t *testing.T) {
	sys := overloadSystem(t, gea.SystemOptions{MaxConcurrent: 1})
	gw, mux := newServeMux(sys, gea.NewObsCollector(),
		serveOptions{requestTimeout: 25 * time.Millisecond})
	gw.faults.StallFor(1, 250*time.Millisecond)

	rr := get(t, mux, "/mine?tissue=brain")
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request = %d, want 503: %s", rr.Code, rr.Body.String())
	}
	retryAfterValue(t, rr)
	if !strings.Contains(rr.Body.String(), "cancelled") {
		t.Fatalf("timeout response body: %s", rr.Body.String())
	}
	if rr := get(t, mux, "/mine?tissue=brain"); rr.Code != http.StatusOK {
		t.Fatalf("request after timeout = %d, want 200: %s", rr.Code, rr.Body.String())
	}
}

// TestServeUnknownTissue400 pins the caller-error classification: an
// unknown tissue is the caller's mistake (400), never a 500.
func TestServeUnknownTissue400(t *testing.T) {
	sys := overloadSystem(t, gea.SystemOptions{})
	_, mux := newServeMux(sys, gea.NewObsCollector(), serveOptions{})
	rr := get(t, mux, "/mine?tissue=noSuchTissue")
	if rr.Code != http.StatusBadRequest || !strings.Contains(rr.Body.String(), "unknown tissue") {
		t.Fatalf("unknown tissue = %d: %s", rr.Code, rr.Body.String())
	}
}

// TestServeWriteJSONBufferedError pins the buffered writeJSON: an
// unencodable value becomes one clean 500, not trailing garbage after a
// started 200.
func TestServeWriteJSONBufferedError(t *testing.T) {
	rr := httptest.NewRecorder()
	writeJSON(rr, http.StatusOK, make(chan int))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("unencodable value = %d, want 500", rr.Code)
	}
	if strings.Contains(rr.Body.String(), "{") {
		t.Fatalf("response mixes JSON with the error report: %s", rr.Body.String())
	}
}

// TestServeFlagErrorsReturn pins the ContinueOnError flag set: a bad
// flag comes back as an error instead of exiting the process.
func TestServeFlagErrorsReturn(t *testing.T) {
	if err := cmdServe([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("cmdServe accepted an unknown flag")
	}
}

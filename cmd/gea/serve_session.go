package main

// Session routes for "gea serve": create a named session scoped to a
// tenant, run read-only algebra operators by name through the
// generation-keyed result cache, fetch the lineage the runs recorded,
// and close it. One classifier, writeSessionError, owns the whole
// error contract so every session handler maps faults identically:
// 400 for caller errors, 404 unknown vs 410 expired, 409 double
// create, 429 admission timeout and 503 overload/draining (both with
// Retry-After), 500 otherwise.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"gea"
)

// tenantOf extracts the request's tenant: the X-Tenant header wins,
// then ?tenant=; empty means the anonymous tenant, which is never
// shaped or tracked.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return r.URL.Query().Get("tenant")
}

// writeSessionError classifies a session-layer failure onto the wire.
// Central by design: the conformance suite pins each mapping once and
// every handler inherits it.
func writeSessionError(w http.ResponseWriter, r *http.Request, err error) {
	var busy *gea.ErrBusy
	var overload *gea.ErrOverload
	var param *gea.SessionParamError
	var exists *gea.ErrSessionExists
	switch {
	case errors.As(err, &busy):
		w.Header().Set("Retry-After", retryAfterSeconds(busy.RetryAfter))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.As(err, &overload):
		w.Header().Set("Retry-After", retryAfterSeconds(overload.RetryAfter))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, gea.ErrShuttingDown):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.As(err, &param):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.Is(err, gea.ErrSessionUnknown):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, gea.ErrSessionExpired):
		http.Error(w, err.Error(), http.StatusGone)
	case errors.As(err, &exists):
		http.Error(w, err.Error(), http.StatusConflict)
	case gea.IsCancellation(err):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// createSessionBody is the optional JSON body of POST /session.
type createSessionBody struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
}

// handleSessionCreate registers a session (POST /session). The ID may
// come from the JSON body or be generated; the tenant from the body,
// the X-Tenant header, or ?tenant=.
func (gw *gateway) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if gw.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server is draining", http.StatusServiceUnavailable)
		return
	}
	var body createSessionBody
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, fmt.Sprintf("bad session body: %v", err), http.StatusBadRequest)
			return
		}
	}
	tenant := body.Tenant
	if tenant == "" {
		tenant = tenantOf(r)
	}
	info, err := gw.sessions.Create(body.ID, tenant)
	if err != nil {
		writeSessionError(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// handleSessionGet reports a session's snapshot (GET /session/{id}),
// touching its idle timer.
func (gw *gateway) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	info, err := gw.sessions.Get(r.PathValue("id"))
	if err != nil {
		writeSessionError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleSessionDelete closes a session (DELETE /session/{id}),
// cascading its lineage subtree.
func (gw *gateway) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if err := gw.sessions.Close(r.PathValue("id")); err != nil {
		writeSessionError(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleSessionRun executes one operator (POST /session/{id}/run). A
// budget-stopped run is a 200 with the partial flagged — degraded mode
// working as designed, mirroring /mine.
func (gw *gateway) handleSessionRun(w http.ResponseWriter, r *http.Request) {
	if gw.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server is draining", http.StatusServiceUnavailable)
		return
	}
	id := r.PathValue("id")
	var req gea.SessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad run body: %v", err), http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	if gw.opts.requestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, gw.opts.requestTimeout)
		defer cancel()
	}
	ctx = gea.WithObsCollector(ctx, gw.trace)

	resp, err := gw.sessions.Run(ctx, id, req)
	if err != nil {
		if gea.IsBudget(err) {
			// The shaped work budget ran out before the operator could
			// return even a flagged partial: still the caller's 200, with
			// nothing cached (partials never are).
			writeJSON(w, http.StatusOK, gea.SessionResponse{
				Session: id, Op: req.Op, Partial: true, Source: "computed",
			})
			return
		}
		writeSessionError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionLineage lists the session's recorded runs
// (GET /session/{id}/lineage).
func (gw *gateway) handleSessionLineage(w http.ResponseWriter, r *http.Request) {
	nodes, err := gw.sessions.Lineage(r.PathValue("id"))
	if err != nil {
		writeSessionError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, nodes)
}

package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"gea"
)

// sessionMux builds a cached session-serving mux over the small
// synthetic corpus.
func sessionMux(t *testing.T, opts serveOptions) (*gateway, *http.ServeMux) {
	t.Helper()
	res, err := gea.Generate(gea.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	trace := gea.NewObsCollector()
	sys, err := gea.NewSystem(res.Corpus, gea.SystemOptions{
		User:        "serve-session-test",
		ResultCache: &gea.ResultCacheOptions{Metrics: trace.Metrics},
	})
	if err != nil {
		t.Fatalf("new system: %v", err)
	}
	return newServeMux(sys, trace, opts)
}

// do runs one request through the mux without a network listener.
func do(t *testing.T, mux *http.ServeMux, method, url, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, url, nil)
	} else {
		r = httptest.NewRequest(method, url, strings.NewReader(body))
	}
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, r)
	return rr
}

// TestServeSessionConformance walks the whole HTTP contract in one
// session lifetime: 201 create, 409 double create, 200 use (computed
// then hit, identical bodies), lineage listing, 400 caller faults, 404
// unknown, 204 close, 410 after close.
func TestServeSessionConformance(t *testing.T) {
	_, mux := sessionMux(t, serveOptions{})

	rr := do(t, mux, http.MethodPost, "/session", `{"id":"alpha","tenant":"acme"}`)
	if rr.Code != http.StatusCreated {
		t.Fatalf("create = %d: %s", rr.Code, rr.Body.String())
	}
	var info gea.SessionInfo
	if err := json.Unmarshal(rr.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.ID != "alpha" || info.Tenant != "acme" {
		t.Fatalf("created info = %+v", info)
	}

	if rr := do(t, mux, http.MethodPost, "/session", `{"id":"alpha"}`); rr.Code != http.StatusConflict {
		t.Errorf("double create = %d, want 409: %s", rr.Code, rr.Body.String())
	}
	if rr := do(t, mux, http.MethodGet, "/session/alpha", ""); rr.Code != http.StatusOK {
		t.Errorf("get = %d", rr.Code)
	}
	if rr := do(t, mux, http.MethodGet, "/session/ghost", ""); rr.Code != http.StatusNotFound {
		t.Errorf("unknown get = %d, want 404", rr.Code)
	}

	// Run the same operator twice: computed, then a cache hit with an
	// identical wire body.
	runBody := `{"op":"aggregate","params":{"tissue":"brain"}}`
	first := do(t, mux, http.MethodPost, "/session/alpha/run", runBody)
	if first.Code != http.StatusOK {
		t.Fatalf("first run = %d: %s", first.Code, first.Body.String())
	}
	second := do(t, mux, http.MethodPost, "/session/alpha/run", runBody)
	if second.Code != http.StatusOK {
		t.Fatalf("second run = %d: %s", second.Code, second.Body.String())
	}
	var r1, r2 map[string]any
	if err := json.Unmarshal(first.Body.Bytes(), &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second.Body.Bytes(), &r2); err != nil {
		t.Fatal(err)
	}
	if r1["source"] != "computed" || r2["source"] != "hit" {
		t.Errorf("sources = %v, %v; want computed then hit", r1["source"], r2["source"])
	}
	if r2["cached"] != true {
		t.Errorf("hit not flagged cached: %v", r2["cached"])
	}
	if !reflect.DeepEqual(r1["result"], r2["result"]) {
		t.Error("cached wire body diverges from the computed one")
	}
	if r1["units"] != r2["units"] {
		t.Errorf("hit units %v != computed units %v", r2["units"], r1["units"])
	}

	rr = do(t, mux, http.MethodGet, "/session/alpha/lineage", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("lineage = %d", rr.Code)
	}
	var nodes []gea.SessionLineageNode
	if err := json.Unmarshal(rr.Body.Bytes(), &nodes); err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Errorf("lineage lists %d nodes, want 2", len(nodes))
	}

	// Caller faults are 400s, not 500s.
	for _, body := range []string{
		`{"op":"transmogrify"}`,
		`{"op":"mine","params":{"k":"many"}}`,
		`{"op":"diff","params":{"a":"brain","b":"brain"}}`,
		`not json`,
	} {
		if rr := do(t, mux, http.MethodPost, "/session/alpha/run", body); rr.Code != http.StatusBadRequest {
			t.Errorf("run %s = %d, want 400", body, rr.Code)
		}
	}

	if rr := do(t, mux, http.MethodDelete, "/session/alpha", ""); rr.Code != http.StatusNoContent {
		t.Fatalf("delete = %d", rr.Code)
	}
	// Closed IDs answer 410 everywhere, never 404.
	if rr := do(t, mux, http.MethodGet, "/session/alpha", ""); rr.Code != http.StatusGone {
		t.Errorf("get after close = %d, want 410", rr.Code)
	}
	if rr := do(t, mux, http.MethodPost, "/session/alpha/run", runBody); rr.Code != http.StatusGone {
		t.Errorf("run after close = %d, want 410", rr.Code)
	}
	if rr := do(t, mux, http.MethodGet, "/session/alpha/lineage", ""); rr.Code != http.StatusGone {
		t.Errorf("lineage after close = %d, want 410", rr.Code)
	}
	if rr := do(t, mux, http.MethodDelete, "/session/ghost", ""); rr.Code != http.StatusNotFound {
		t.Errorf("delete unknown = %d, want 404", rr.Code)
	}
}

// TestServeSessionExpiry pins the 410 path for idle expiry and that the
// expired ID is re-creatable.
func TestServeSessionExpiry(t *testing.T) {
	_, mux := sessionMux(t, serveOptions{sessionExpiry: 10 * time.Millisecond})
	if rr := do(t, mux, http.MethodPost, "/session", `{"id":"idle"}`); rr.Code != http.StatusCreated {
		t.Fatalf("create = %d", rr.Code)
	}
	time.Sleep(30 * time.Millisecond)
	if rr := do(t, mux, http.MethodGet, "/session/idle", ""); rr.Code != http.StatusGone {
		t.Fatalf("expired get = %d, want 410", rr.Code)
	}
	if rr := do(t, mux, http.MethodPost, "/session", `{"id":"idle"}`); rr.Code != http.StatusCreated {
		t.Errorf("recreate expired = %d, want 201", rr.Code)
	}
}

// TestServeSessionTableFull pins the 503 + Retry-After path when the
// session table is at capacity.
func TestServeSessionTableFull(t *testing.T) {
	_, mux := sessionMux(t, serveOptions{maxSessions: 1})
	if rr := do(t, mux, http.MethodPost, "/session", `{"id":"a"}`); rr.Code != http.StatusCreated {
		t.Fatalf("create = %d", rr.Code)
	}
	rr := do(t, mux, http.MethodPost, "/session", `{"id":"b"}`)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("create past capacity = %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if rr := do(t, mux, http.MethodDelete, "/session/a", ""); rr.Code != http.StatusNoContent {
		t.Fatal("close")
	}
	if rr := do(t, mux, http.MethodPost, "/session", `{"id":"b"}`); rr.Code != http.StatusCreated {
		t.Errorf("create after close = %d, want 201", rr.Code)
	}
}

// TestServeSessionDrainRefuses pins that a draining server refuses new
// session work with 503 + Retry-After before touching the table.
func TestServeSessionDrainRefuses(t *testing.T) {
	gw, mux := sessionMux(t, serveOptions{})
	if rr := do(t, mux, http.MethodPost, "/session", `{"id":"a"}`); rr.Code != http.StatusCreated {
		t.Fatal("create")
	}
	gw.draining.Store(true)
	for _, probe := range []struct{ method, url, body string }{
		{http.MethodPost, "/session", `{"id":"b"}`},
		{http.MethodPost, "/session/a/run", `{"op":"aggregate"}`},
	} {
		rr := do(t, mux, probe.method, probe.url, probe.body)
		if rr.Code != http.StatusServiceUnavailable {
			t.Errorf("%s %s while draining = %d, want 503", probe.method, probe.url, rr.Code)
		}
		if rr.Header().Get("Retry-After") == "" {
			t.Errorf("%s %s: 503 without Retry-After", probe.method, probe.url)
		}
	}
}

// TestServeSessionBudgetPartial pins the degraded-mode contract at the
// HTTP layer: a budget-starved run is a 200 with the partial flagged,
// and the truncation is never served to the next caller.
func TestServeSessionBudgetPartial(t *testing.T) {
	_, mux := sessionMux(t, serveOptions{})
	if rr := do(t, mux, http.MethodPost, "/session", `{"id":"p"}`); rr.Code != http.StatusCreated {
		t.Fatal("create")
	}
	rr := do(t, mux, http.MethodPost, "/session/p/run",
		`{"op":"aggregate","params":{"tissue":"brain"},"budget":3}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("starved run = %d: %s", rr.Code, rr.Body.String())
	}
	var starved map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &starved); err != nil {
		t.Fatal(err)
	}
	if starved["partial"] != true {
		t.Fatalf("starved run not flagged partial: %s", rr.Body.String())
	}
	if starved["cached"] == true {
		t.Fatal("partial flagged cached")
	}
	// The next full-budget identical request must compute fresh — a hit
	// here would mean the cache served the truncation.
	rr = do(t, mux, http.MethodPost, "/session/p/run",
		`{"op":"aggregate","params":{"tissue":"brain"}}`)
	var full map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &full); err != nil {
		t.Fatal(err)
	}
	if full["source"] != "computed" || full["partial"] == true {
		t.Fatalf("full run after partial: source=%v partial=%v, want computed/false",
			full["source"], full["partial"])
	}
}

package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gea"
)

// serveSystem builds a small synthetic session for the HTTP tests.
func serveSystem(t *testing.T) *gea.System {
	t.Helper()
	res, err := gea.Generate(gea.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	sys, err := gea.NewSystem(res.Corpus, gea.SystemOptions{User: "serve-test"})
	if err != nil {
		t.Fatalf("new system: %v", err)
	}
	return sys
}

// get runs one request through the mux without a network listener.
func get(t *testing.T, mux *http.ServeMux, url string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, url, nil))
	return rr
}

// TestServeMineRecordsSpans drives /mine through the debug mux and checks
// the observability surfaces: the span dump holds the governed run's tree,
// the metrics endpoint its counters, and /debug/vars the published
// registry.
func TestServeMineRecordsSpans(t *testing.T) {
	_, mux := newServeMux(serveSystem(t), gea.NewObsCollector(), serveOptions{debug: true})

	if rr := get(t, mux, "/healthz"); rr.Code != http.StatusOK {
		t.Fatalf("/healthz = %d", rr.Code)
	}
	if rr := get(t, mux, "/mine"); rr.Code != http.StatusBadRequest {
		t.Errorf("/mine without tissue = %d, want 400", rr.Code)
	}

	rr := get(t, mux, "/mine?tissue=brain")
	if rr.Code != http.StatusOK {
		t.Fatalf("/mine?tissue=brain = %d: %s", rr.Code, rr.Body.String())
	}
	var resp mineResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("mine response: %v", err)
	}
	if resp.Fascicle == "" || resp.Units <= 0 {
		t.Errorf("mine found no fascicle or charged no work: %+v", resp)
	}

	rr = get(t, mux, "/debug/spans")
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/spans = %d", rr.Code)
	}
	var spans []*gea.ObsRecord
	if err := json.Unmarshal(rr.Body.Bytes(), &spans); err != nil {
		t.Fatalf("span dump: %v", err)
	}
	if len(spans) != 1 || spans[0].Op != "system.FindPureFascicle" {
		t.Fatalf("span dump does not hold the mine's root span: %s", rr.Body.String())
	}
	if spans[0].Find("core.Mine") == nil {
		t.Errorf("mine's span tree is missing the core.Mine child:\n%s", spans[0].Tree())
	}

	rr = get(t, mux, "/debug/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/metrics = %d", rr.Code)
	}
	for _, want := range []string{"ops.system.FindPureFascicle.count", "exec.checkpoints"} {
		if !strings.Contains(rr.Body.String(), want) {
			t.Errorf("/debug/metrics missing %q:\n%s", want, rr.Body.String())
		}
	}

	rr = get(t, mux, "/debug/vars")
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/vars = %d", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), `"gea.metrics"`) {
		t.Errorf("/debug/vars does not publish the registry:\n%s", rr.Body.String())
	}
}

// TestServeWithoutDebugHidesIntrospection checks a plain serve mux exposes
// analysis only.
func TestServeWithoutDebugHidesIntrospection(t *testing.T) {
	_, mux := newServeMux(serveSystem(t), gea.NewObsCollector(), serveOptions{})
	for _, url := range []string{"/debug/spans", "/debug/metrics", "/debug/vars"} {
		if rr := get(t, mux, url); rr.Code != http.StatusNotFound {
			t.Errorf("%s = %d, want 404 with -debug off", url, rr.Code)
		}
	}
	if rr := get(t, mux, "/healthz"); rr.Code != http.StatusOK {
		t.Errorf("/healthz = %d", rr.Code)
	}
}

// TestServeBudgetStop checks an impossible per-request budget surfaces as a
// friendly note, not a 500, and the span records the budget outcome.
func TestServeBudgetStop(t *testing.T) {
	srv, mux := newServeMux(serveSystem(t), gea.NewObsCollector(),
		serveOptions{limits: gea.ExecLimits{Budget: 3}, debug: true})
	rr := get(t, mux, "/mine?tissue=brain")
	if rr.Code != http.StatusOK {
		t.Fatalf("budget-stopped mine = %d: %s", rr.Code, rr.Body.String())
	}
	var resp mineResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Note != "stopped by the work budget" {
		t.Errorf("budget stop not reported: %+v", resp)
	}
	root := srv.trace.LastRoot()
	if root == nil || root.Outcome != gea.ObsOutcomeBudget {
		t.Errorf("budget outcome not recorded on the span: %+v", root)
	}
}

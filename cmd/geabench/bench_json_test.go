package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"gea"
)

// benchEnv builds the small-corpus environment the perf experiment runs
// under in tests, with JSON recording (and therefore tracing) enabled.
func benchEnv(t *testing.T) *env {
	t.Helper()
	cfg := gea.SmallConfig()
	cfg.Seed = 1
	res, err := gea.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return &env{cfg: cfg, res: res, seed: cfg.Seed, kpct: 55, topX: 10,
		workers: 2, jsonOut: true, trace: gea.NewObsCollector()}
}

// keysOf returns the sorted key set of a decoded JSON object.
func keysOf(t *testing.T, v any) []string {
	t.Helper()
	obj, ok := v.(map[string]any)
	if !ok {
		t.Fatalf("want a JSON object, got %T", v)
	}
	keys := make([]string, 0, len(obj))
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestBenchJSONSchema runs the perf experiment with tracing on, writes the
// document through -json-out, and pins the JSON schema: the top-level and
// per-record key sets are golden, and the span trees plus metrics snapshot
// recorded by the identity-check runs are present and well-formed.
func TestBenchJSONSchema(t *testing.T) {
	e := benchEnv(t)
	e.jsonPath = filepath.Join(t.TempDir(), "bench.json")
	if err := expPerf(e); err != nil {
		t.Fatalf("perf experiment: %v", err)
	}
	if err := writeBenchJSON(e); err != nil {
		t.Fatalf("writeBenchJSON: %v", err)
	}
	buf, err := os.ReadFile(e.jsonPath)
	if err != nil {
		t.Fatalf("read -json-out file: %v", err)
	}

	var doc map[string]any
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	wantTop := []string{"bench", "corpus", "go_max_procs", "metrics", "num_cpu", "records", "seed", "spans"}
	if got := keysOf(t, any(doc)); !equalStrings(got, wantTop) {
		t.Errorf("top-level keys = %v, want %v", got, wantTop)
	}

	records := doc["records"].([]any)
	// populate, populate-sel, diff, aggregate at workers {1, 2}.
	if len(records) != 8 {
		t.Fatalf("want 8 records, got %d", len(records))
	}
	// An env without an -engine flag value records the legacy key set:
	// engine and the block-traversal cells are all omitempty.
	wantRec := []string{"op", "reps", "units", "wall", "wall_ns", "workers"}
	for i, r := range records {
		if got := keysOf(t, r); !equalStrings(got, wantRec) {
			t.Errorf("record %d keys = %v, want %v", i, got, wantRec)
		}
	}

	// One root span per identity-check run, in execution order.
	spans := doc["spans"].([]any)
	if len(spans) != 8 {
		t.Fatalf("want 8 root spans, got %d", len(spans))
	}
	wantOps := []string{"core.Populate", "core.Populate", "core.Populate", "core.Populate",
		"core.Diff", "core.Diff", "core.Aggregate", "core.Aggregate"}
	for i, s := range spans {
		sp := s.(map[string]any)
		if sp["op"] != wantOps[i] {
			t.Errorf("span %d op = %v, want %s", i, sp["op"], wantOps[i])
		}
		if sp["outcome"] != "ok" {
			t.Errorf("span %d outcome = %v, want ok", i, sp["outcome"])
		}
		if sp["units"].(float64) <= 0 {
			t.Errorf("span %d charged no units", i)
		}
	}

	// The metrics snapshot carries the per-op counters the spans fed.
	metrics := doc["metrics"].(map[string]any)
	var counterNames []string
	for _, c := range metrics["counters"].([]any) {
		counterNames = append(counterNames, c.(map[string]any)["name"].(string))
	}
	for _, want := range []string{"ops.core.Populate.count", "ops.core.Diff.count",
		"ops.core.Aggregate.count", "exec.checkpoints", "spans.completed"} {
		if !contains(counterNames, want) {
			t.Errorf("metrics snapshot missing counter %q (have %v)", want, counterNames)
		}
	}
}

// TestBenchColumnarEngineRecords runs the perf experiment on the
// columnar engine and pins the engine-specific BENCH cells: every
// record carries the engine name, the selective populate's zone maps
// skip blocks, and the row/columnar unit charges are identical cell
// for cell (the identical-units rule at the document level).
func TestBenchColumnarEngineRecords(t *testing.T) {
	row := benchEnv(t)
	row.engine, row.engineName = gea.EngineRow, "row"
	if err := expPerf(row); err != nil {
		t.Fatalf("row perf experiment: %v", err)
	}
	col := benchEnv(t)
	col.engine, col.engineName = gea.EngineColumnar, "columnar"
	if err := expPerf(col); err != nil {
		t.Fatalf("columnar perf experiment: %v", err)
	}
	if len(row.bench) != len(col.bench) {
		t.Fatalf("row recorded %d cells, columnar %d", len(row.bench), len(col.bench))
	}
	var selSkipped, selTotal int64
	for i, rr := range row.bench {
		cr := col.bench[i]
		if rr.Op != cr.Op || rr.Workers != cr.Workers {
			t.Fatalf("cell %d mismatched: %s/%d vs %s/%d", i, rr.Op, rr.Workers, cr.Op, cr.Workers)
		}
		if rr.Engine != "row" || cr.Engine != "columnar" {
			t.Errorf("cell %d engines = %q/%q", i, rr.Engine, cr.Engine)
		}
		if rr.Units != cr.Units {
			t.Errorf("cell %s/%d: row charged %d units, columnar %d — engines must meter identically",
				rr.Op, rr.Workers, rr.Units, cr.Units)
		}
		if rr.BlocksScanned+rr.BlocksSkipped+rr.BytesScanned != 0 {
			t.Errorf("cell %s/%d: row engine reported block statistics", rr.Op, rr.Workers)
		}
		if cr.Op == "populate-sel" {
			selSkipped, selTotal = cr.BlocksSkipped, cr.BlocksScanned+cr.BlocksSkipped
		}
	}
	if selTotal == 0 || selSkipped == 0 {
		t.Fatalf("selective populate skipped %d of %d blocks; zone maps pruned nothing", selSkipped, selTotal)
	}
}

// TestBenchJSONSlotFallback checks that without -json-out the writer still
// scans the CWD for the first unused BENCH_<n>.json slot.
func TestBenchJSONSlotFallback(t *testing.T) {
	dir := t.TempDir()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(cwd); err != nil {
			t.Fatal(err)
		}
	}()
	// Occupy slot 1 so the scan must advance to slot 2.
	if err := os.WriteFile(benchName(1), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := &env{seed: 1, jsonOut: true,
		bench: []benchRecord{{Op: "populate", Workers: 1, WallNS: 1, Wall: "1ns", Units: 1, Reps: 1}}}
	if err := writeBenchJSON(e); err != nil {
		t.Fatalf("writeBenchJSON: %v", err)
	}
	buf, err := os.ReadFile(benchName(2))
	if err != nil {
		t.Fatalf("slot 2 not written: %v", err)
	}
	if !strings.Contains(string(buf), `"bench": 2`) {
		t.Errorf("slot number not recorded in the document:\n%s", buf)
	}
	// No trace collector: the optional observability fields stay absent.
	if strings.Contains(string(buf), `"spans"`) || strings.Contains(string(buf), `"metrics"`) {
		t.Errorf("untraced run must omit spans/metrics:\n%s", buf)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

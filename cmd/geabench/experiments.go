package main

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"gea"
)

// ---------------------------------------------------------------- table 2.2

// expTable22 reruns the Section 2.5.1 worked example: the Table 2.2 fragment
// with the printed tolerance vector yields a 3-library, 5-D fascicle.
func expTable22(*env) error {
	tags := []string{"AAAAAAAAAA", "AAAAAAAAAC", "AAAAAAAAAT", "AAAAAACTCC", "AAAAAGAAAA"}
	data := []struct {
		name string
		vals []float64
	}{
		{"SAGE_BB542_whitematter", []float64{1843, 3, 10, 15, 11}},
		{"SAGE_Duke_1273", []float64{1418, 7, 0, 30, 12}},
		{"SAGE_Duke_757", []float64{1251, 18, 0, 33, 20}},
		{"SAGE_Duke_cerebellum", []float64{1800, 0, 58, 40, 20}},
		{"SAGE_Duke_GBM_H1110", []float64{1050, 25, 1, 60, 15}},
		{"SAGE_Duke_H1020", []float64{1910, 1, 17, 74, 30}},
		{"SAGE_95_259", []float64{503, 8, 0, 0, 456}},
		{"SAGE_95_260", []float64{364, 7, 7, 7, 222}},
		{"SAGE_Br_N", []float64{65, 5, 79, 9, 300}},
		{"SAGE_DCIS", []float64{847, 4, 124, 0, 500}},
	}
	c := &gea.Corpus{}
	tagIDs := make([]gea.TagID, len(tags))
	for j, s := range tags {
		tagIDs[j] = gea.MustParseTag(s)
	}
	for i, row := range data {
		l := &gea.Library{Meta: gea.LibraryMeta{ID: i + 1, Name: row.name, Tissue: "brain"},
			Counts: map[gea.TagID]float64{}}
		for j, v := range row.vals {
			if v != 0 {
				l.Counts[tagIDs[j]] = v
			}
		}
		c.Libraries = append(c.Libraries, l)
	}
	d := gea.BuildDatasetWithTags(c, tagIDs)
	// The thesis prints tolerance 47 for AAAAAAAAAT, but its own example
	// libraries span width 48 on that tag; 48 realizes the intended result.
	tol := map[gea.TagID]float64{
		tagIDs[0]: 120, tagIDs[1]: 3, tagIDs[2]: 48, tagIDs[3]: 60, tagIDs[4]: 20,
	}
	fs, err := gea.MineFasciclesLattice(d, gea.FascicleParams{K: 5, Tolerance: tol, MinSize: 3})
	if err != nil {
		return err
	}
	fmt.Printf("paper: {BB542_whitematter, Duke_cerebellum, Duke_H1020} form a 5-D fascicle\n")
	rule()
	for _, f := range fs {
		fmt.Printf("measured: fascicle size=%d compact=%d members=%v\n",
			f.Size(), f.NumCompact(), f.LibraryNames(d))
		for i, col := range f.CompactCols {
			fmt.Printf("  %s range [%g, %g]\n", d.Tags[col], f.Min[i], f.Max[i])
		}
	}
	return nil
}

// ---------------------------------------------------------------- table 3.1

func expTable31(*env) error {
	paper := []int{17, 23, 27, 32, 36, 40, 44, 48, 51, 55}
	rows, err := gea.Table31(60000, 25000, 10, gea.DefaultConfidence)
	if err != nil {
		return err
	}
	fmt.Println("n=60000 total tags, p=25000 SUMY tags, confidence 99.9%")
	fmt.Println("w (at least) | m paper | m measured | match")
	rule()
	for i, r := range rows {
		match := "yes"
		if r.M != paper[i] {
			match = "NO"
		}
		fmt.Printf("%12d | %7d | %10d | %s\n", r.W, paper[i], r.M, match)
	}
	return nil
}

// ---------------------------------------------------------------- table 3.2

// expTable32 measures populate() time saving as a function of the number of
// index hits w, holding the query fixed: a SUMY over p tags evaluated
// against the cleaned dataset, with w indexed tags drawn from the SUMY (as
// the entropy heuristic would achieve with the Table 3.1 budget).
func expTable32(e *env) error {
	sys, err := e.sys()
	if err != nil {
		return err
	}
	d := sys.Data
	// SUMY over roughly p = 40% of tags: a cancer cluster's definition.
	rows := d.RowsWhere(func(m gea.LibraryMeta) bool { return m.State == gea.Cancer })
	if len(rows) > 6 {
		rows = rows[:6]
	}
	p := d.NumTags() * 2 / 5
	cols := make([]int, p)
	for j := range cols {
		cols[j] = j
	}
	enum, err := gea.NewEnum("cluster", d, rows, cols)
	if err != nil {
		return err
	}
	sumy, err := gea.Aggregate("clusterSumy", enum, gea.AggregateOptions{})
	if err != nil {
		return err
	}
	// Entropy-ranked tags *within the SUMY* simulate w hits exactly.
	ranked := gea.RankByEntropy(d)
	var inSumy []int
	for _, rt := range ranked {
		if _, ok := sumy.Row(rt.Tag); ok {
			inSumy = append(inSumy, rt.Col)
		}
		if len(inSumy) >= 10 {
			break
		}
	}
	// Calibrate reps so each timing sample runs for a meaningful duration,
	// warm up, then take the median of several samples per configuration.
	// The w=0 configuration is the sequential baseline.
	reps := 1
	for {
		if d := timePopulate(sumy, d, nil, reps); d > 60*time.Millisecond || reps >= 1<<20 {
			break
		}
		reps *= 4
	}
	timePopulate(sumy, d, nil, reps) // warm-up
	var baseline time.Duration
	paper := map[int]int{0: 0, 1: 45, 2: 76, 3: 78, 4: 85, 5: 85, 6: 85, 7: 85, 8: 90, 9: 90, 10: 90}
	fmt.Printf("p=%d SUMY tags over %d libraries x %d tags; %d reps per sample\n",
		sumy.Len(), d.NumLibraries(), d.NumTags(), reps)
	fmt.Println("w hit | paper saved% | time saved% | rows-examined saved% | candidate rows")
	rule()
	for w := 0; w <= 10 && w <= len(inSumy); w++ {
		var idx *gea.TagIndexes
		if w > 0 {
			var err error
			idx, err = gea.BuildTagIndexes(d, inSumy[:w])
			if err != nil {
				return err
			}
		}
		t := medianTime(func() time.Duration { return timePopulate(sumy, d, idx, reps) })
		if w == 0 {
			baseline = t
		}
		_, st, err := gea.Populate("probe", sumy, d, idx)
		if err != nil {
			return err
		}
		saved := 100 * (1 - float64(t)/float64(baseline))
		workSaved := 100 * (1 - float64(st.CandidateRows)/float64(d.NumLibraries()))
		fmt.Printf("%5d | %12d | %11.0f | %20.0f | %d\n",
			w, paper[w], saved, workSaved, st.CandidateRows)
	}
	return nil
}

// timePopulate times populate() with simulated row fetches — the
// disk-resident evaluation model of the thesis's Table 3.2 (see
// PopulateOptions.SimulateRowFetch).
func timePopulate(s *gea.Sumy, d *gea.Dataset, idx *gea.TagIndexes, reps int) time.Duration {
	opts := gea.PopulateOptions{SimulateRowFetch: true}
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, _, err := gea.PopulateWithOptions("bench", s, d, idx, opts); err != nil {
			panic(err)
		}
	}
	return time.Since(start)
}

// medianTime takes seven samples and returns the median.
func medianTime(sample func() time.Duration) time.Duration {
	ds := make([]time.Duration, 7)
	for i := range ds {
		ds[i] = sample()
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
	return ds[len(ds)/2]
}

// ---------------------------------------------------------------- table 4.1

// expTable41 prints Allen's thirteen basic interval relations (thesis Table
// 4.1) with a witness pair for each, verified by Classify.
func expTable41(*env) error {
	witnesses := []struct {
		rel  gea.Relation
		a, b gea.Interval
	}{
		{gea.Before, gea.NewInterval(0, 2), gea.NewInterval(5, 9)},
		{gea.After, gea.NewInterval(5, 9), gea.NewInterval(0, 2)},
		{gea.Meets, gea.NewInterval(0, 3), gea.NewInterval(3, 9)},
		{gea.MetBy, gea.NewInterval(3, 9), gea.NewInterval(0, 3)},
		{gea.Overlaps, gea.NewInterval(0, 5), gea.NewInterval(3, 9)},
		{gea.OverlappedBy, gea.NewInterval(3, 9), gea.NewInterval(0, 5)},
		{gea.During, gea.NewInterval(3, 5), gea.NewInterval(0, 9)},
		{gea.Includes, gea.NewInterval(0, 9), gea.NewInterval(3, 5)},
		{gea.Starts, gea.NewInterval(0, 4), gea.NewInterval(0, 9)},
		{gea.StartedBy, gea.NewInterval(0, 9), gea.NewInterval(0, 4)},
		{gea.Finishes, gea.NewInterval(5, 9), gea.NewInterval(0, 9)},
		{gea.FinishedBy, gea.NewInterval(0, 9), gea.NewInterval(5, 9)},
		{gea.Equals, gea.NewInterval(2, 7), gea.NewInterval(2, 7)},
	}
	fmt.Println("relation       sym  A          B          verified")
	rule()
	for _, w := range witnesses {
		ok := gea.ClassifyIntervals(w.a, w.b) == w.rel
		fmt.Printf("%-14s %-4s %-10s %-10s %v\n", w.rel, w.rel.Symbol(), w.a, w.b, ok)
		if !ok {
			return fmt.Errorf("relation %v not verified", w.rel)
		}
	}
	fmt.Println("composition example: o;o =", gea.ComposeRelations(gea.Overlaps, gea.Overlaps))
	return nil
}

// ----------------------------------------------------------------- cleaning

func expCleaning(e *env) error {
	corpus := e.res.Corpus
	fmt.Printf("raw unique tags: %d (paper: ~350,000 at full scale)\n", corpus.TotalUniqueTags())
	fmt.Printf("singleton fraction: %.2f (paper: >0.80 at full scale)\n", gea.SingletonFraction(corpus))
	cleaned, rep, err := gea.Clean(corpus, gea.DefaultCleanOptions())
	if err != nil {
		return err
	}
	fmt.Printf("cleaned unique tags: %d (%.1f%% removed; paper: ~83%% — 350k -> 60k)\n",
		rep.UniqueTagsAfter, 100*rep.RemovedTagFraction())
	lo, hi := 1.0, 0.0
	for _, lr := range rep.Libraries {
		if lr.RemovedFraction < lo {
			lo = lr.RemovedFraction
		}
		if lr.RemovedFraction > hi {
			hi = lr.RemovedFraction
		}
	}
	fmt.Printf("per-library total-count removal: %.1f%% .. %.1f%% (paper: 5%%-15%%)\n", 100*lo, 100*hi)
	fmt.Printf("normalized totals: every library at %.0f (paper: 300,000 mRNAs/cell)\n",
		cleaned.Libraries[0].Total())
	return nil
}

// ------------------------------------------------------------- fig 4.x

// brainPipeline mines brain and returns (system, dataset, in-fascicle set,
// case groups).
func brainPipeline(e *env) (*gea.System, *gea.Dataset, map[string]bool, gea.CaseGroups, error) {
	sys, err := e.sys()
	if err != nil {
		return nil, nil, nil, gea.CaseGroups{}, err
	}
	var groups gea.CaseGroups
	const dsName = "brain"
	brain, err := sys.Dataset(dsName)
	if err != nil {
		if brain, err = sys.CreateTissueDataset(dsName); err != nil {
			return nil, nil, nil, groups, err
		}
		if err := sys.GenerateMetadata(dsName, 10); err != nil {
			return nil, nil, nil, groups, err
		}
		alg := gea.LatticeAlgorithm
		if e.full {
			alg = gea.GreedyAlgorithm
		}
		ctx, cancel := e.opCtx()
		pure, tr, err := sys.FindPureFascicleWithCtx(ctx, dsName, gea.PropCancer, 3, alg, gea.ExecLimits{})
		cancel()
		if err != nil {
			return nil, nil, nil, groups, err
		}
		e.noteTrace(tr)
		if groups, err = sys.FormSUM(pure, dsName); err != nil {
			return nil, nil, nil, groups, err
		}
		e.brainPure, e.brainGroups = pure, groups
	} else {
		groups = e.brainGroups
	}
	fas, err := sys.Fascicle(e.brainPure)
	if err != nil {
		return nil, nil, nil, groups, err
	}
	inFas := map[string]bool{}
	for _, n := range fas.Fascicle.LibraryNames(brain) {
		inFas[n] = true
	}
	return sys, brain, inFas, groups, nil
}

func figMarker(gene string) func(*env) error {
	return func(e *env) error {
		sys, brain, inFas, _, err := brainPipeline(e)
		if err != nil {
			return err
		}
		g, ok := e.res.Catalog.ByName(gene)
		if !ok {
			return fmt.Errorf("marker %q missing from catalog", gene)
		}
		fr, names, err := gea.SingleTagSearch(brain, g.Tag, nil)
		if err != nil {
			return err
		}
		type group struct {
			label string
			sum   float64
			n     int
		}
		groups := []*group{
			{label: "cancer in fascicle"},
			{label: "cancer not in fascicle"},
			{label: "normal"},
		}
		for i, name := range names {
			m, err := sys.LibraryInfo(name)
			if err != nil {
				return err
			}
			var gidx int
			switch {
			case m.State == gea.Cancer && inFas[name]:
				gidx = 0
			case m.State == gea.Cancer:
				gidx = 1
			default:
				gidx = 2
			}
			groups[gidx].sum += fr.Values[i]
			groups[gidx].n++
		}
		switch gene {
		case gea.GeneRibosomalL12:
			fmt.Println("paper (Fig 4.2): fascicle avg ~275 vs normal ~100 (ratio 2.75, positive gap)")
		case gea.GeneAlphaTubulin:
			fmt.Println("paper (Fig 4.3): fascicle ~0 vs normal ~90 (negative gap)")
		default:
			fmt.Println("paper (Fig 4.11): inside-fascicle far below outside (avg ~11 inside)")
		}
		rule()
		var avgs [3]float64
		for i, grp := range groups {
			if grp.n > 0 {
				avgs[i] = grp.sum / float64(grp.n)
			}
			fmt.Printf("measured %-24s avg %10.1f over %d libraries\n", grp.label, avgs[i], grp.n)
		}
		switch gene {
		case gea.GeneRibosomalL12:
			fmt.Printf("shape: fascicle/normal ratio = %.2f (paper 2.75)\n", avgs[0]/avgs[2])
		case gea.GeneAlphaTubulin:
			fmt.Printf("shape: fascicle/normal ratio = %.2f (paper ~0)\n", avgs[0]/avgs[2])
		default:
			fmt.Printf("shape: inside/outside ratio = %.2f (paper << 1)\n", avgs[0]/avgs[1])
		}
		return nil
	}
}

// ------------------------------------------------------------- cases 3-5

// tissueGap builds a cancer-in-fascicle vs normal gap for a tissue,
// scanning k from strict to loose (the thesis's per-tissue CDInfo
// threshold).
func tissueGap(e *env, tissue string) (string, error) {
	sys, err := e.sys()
	if err != nil {
		return "", err
	}
	gapName := tissue + "_canvsnor_gap"
	if _, err := sys.Gap(gapName); err == nil {
		return gapName, nil
	}
	d, err := sys.Dataset(tissue)
	if err != nil {
		if d, err = sys.CreateTissueDataset(tissue); err != nil {
			return "", err
		}
		if err := sys.GenerateMetadata(tissue, 10); err != nil {
			return "", err
		}
	}
	_ = d
	alg := gea.LatticeAlgorithm
	if e.full {
		alg = gea.GreedyAlgorithm
	}
	ctx, cancel := e.opCtx()
	pure, tr, err := sys.FindPureFascicleWithCtx(ctx, tissue, gea.PropCancer, 3, alg, gea.ExecLimits{})
	cancel()
	if err != nil {
		return "", err
	}
	e.noteTrace(tr)
	groups, err := sys.FormSUM(pure, tissue)
	if err != nil {
		return "", err
	}
	if _, err := sys.CreateGap(gapName, groups.InFascicle, groups.Opposite); err != nil {
		return "", err
	}
	return gapName, nil
}

func expCase3(e *env) error {
	sys, err := e.sys()
	if err != nil {
		return err
	}
	g1, err := tissueGap(e, "brain")
	if err != nil {
		return err
	}
	g2, err := tissueGap(e, "breast")
	if err != nil {
		return err
	}
	inter, err := sys.CompareGaps("case3_intersect", g1, g2, gea.OpIntersect)
	if err != nil {
		return err
	}
	lower, err := gea.ApplyQuery("case3_lower", inter, gea.QLowerInABoth)
	if err != nil {
		return err
	}
	higher, err := gea.ApplyQuery("case3_higher", inter, gea.QHigherInABoth)
	if err != nil {
		return err
	}
	fmt.Println("paper: intersection of negative-gap tags across tissues yields shared")
	fmt.Println("       cancer-responsive genes (possible drug targets)")
	rule()
	fmt.Printf("measured: %d tags always LOWER in cancer in both tissues\n", lower.Len())
	printPlanted(e, lower, "  ")
	fmt.Printf("measured: %d tags always HIGHER in cancer in both tissues\n", higher.Len())
	printPlanted(e, higher, "  ")
	// Ground-truth recall: how many planted pan-cancer genes were recovered.
	pan := map[gea.TagID]bool{}
	for _, g := range e.res.Catalog.Genes {
		if g.Tissue == "" && (g.Role.String() == "cancer-up" || g.Role.String() == "cancer-down") {
			pan[g.Tag] = true
		}
	}
	hit := 0
	for _, r := range append(append([]gea.GapRow{}, lower.Rows...), higher.Rows...) {
		if pan[r.Tag] {
			hit++
		}
	}
	fmt.Printf("ground truth: %d of %d recovered tags are planted pan-cancer genes\n",
		hit, lower.Len()+higher.Len())
	return nil
}

func printPlanted(e *env, g *gea.Gap, indent string) {
	max := 8
	for i, r := range g.Rows {
		if i >= max {
			fmt.Printf("%s... and %d more\n", indent, g.Len()-max)
			return
		}
		gene := "(error tag)"
		if gg, ok := e.res.Catalog.ByTag(r.Tag); ok {
			gene = gg.Name
		}
		vals := ""
		for _, v := range r.Values {
			vals += "_" + v.String()
		}
		fmt.Printf("%s%s%s  %s\n", indent, r.Tag, vals, gene)
	}
}

func expCase4(e *env) error {
	sys, err := e.sys()
	if err != nil {
		return err
	}
	g1, err := tissueGap(e, "brain")
	if err != nil {
		return err
	}
	g2, err := tissueGap(e, "breast")
	if err != nil {
		return err
	}
	// Select the tags with a real (non-null) contrast in each tissue first,
	// then take the set minus: tags responsive in brain but not in breast.
	brainGap, err := sys.Gap(g1)
	if err != nil {
		return err
	}
	breastGap, err := sys.Gap(g2)
	if err != nil {
		return err
	}
	brainNN, err := gea.SelectGap("case4_brainNN", brainGap, gea.GapNonNull(0))
	if err != nil {
		return err
	}
	breastNN, err := gea.SelectGap("case4_breastNN", breastGap, gea.GapNonNull(0))
	if err != nil {
		return err
	}
	diff, err := gea.MinusGap("case4_diff", brainNN, breastNN)
	if err != nil {
		return err
	}
	fmt.Println("paper: selection (non-null) then set minus between tissue GAP tables")
	fmt.Println("       isolates genes unique to one cancer")
	rule()
	fmt.Printf("measured: %d tags with a cancer contrast ONLY in brain\n", diff.Len())
	brainOnly, pan, errTags := 0, 0, 0
	for _, r := range diff.Rows {
		g, ok := e.res.Catalog.ByTag(r.Tag)
		switch {
		case !ok:
			errTags++
		case g.Tissue == "brain":
			brainOnly++
		case g.Tissue == "":
			pan++
		}
	}
	fmt.Printf("ground truth: %d planted brain-specific genes, %d pan-cancer, %d error tags\n",
		brainOnly, pan, errTags)
	printPlanted(e, diff, "  ")
	return nil
}

func expCase5(e *env) error {
	sys, brain, _, groups, err := brainPipeline(e)
	if err != nil {
		return err
	}
	// Remove one library and verify the top gaps survive.
	var keep []string
	for i, m := range brain.Libs {
		if i != 0 {
			keep = append(keep, m.Name)
		}
	}
	nb, err := sys.Dataset("case5Brain")
	if err != nil {
		nb, err = sys.CreateCustomDataset("case5Brain", keep)
		if err != nil {
			return err
		}
	}
	full := gea.FullEnum("case5Enum", nb)
	cancer := full.SelectRows("case5Cancer", func(m gea.LibraryMeta) bool { return m.State == gea.Cancer })
	normal := full.SelectRows("case5Normal", func(m gea.LibraryMeta) bool { return m.State == gea.Normal })
	sc, err := gea.Aggregate("case5CancerSumy", cancer, gea.AggregateOptions{})
	if err != nil {
		return err
	}
	sn, err := gea.Aggregate("case5NormalSumy", normal, gea.AggregateOptions{})
	if err != nil {
		return err
	}
	redo, err := gea.Diff("case5Gap", sc, sn)
	if err != nil {
		return err
	}
	orig, err := sys.Gap(findGapOf(sys, groups))
	if err != nil {
		return err
	}
	origTop, err := gea.TopGaps("case5OrigTop", orig, 0, e.topX)
	if err != nil {
		return err
	}
	redoTop, err := gea.TopGaps("case5RedoTop", redo, 0, e.topX*3)
	if err != nil {
		return err
	}
	redoSet := map[gea.TagID]bool{}
	for _, r := range redoTop.Rows {
		redoSet[r.Tag] = true
	}
	kept := 0
	for _, r := range origTop.Rows {
		if redoSet[r.Tag] {
			kept++
		}
	}
	fmt.Println("paper: returning to the extensional world, removing libraries and redoing")
	fmt.Println("       the analysis verifies whether conclusions depend on single libraries")
	rule()
	fmt.Printf("measured: %d of the original top-%d candidate tags remain in the redone\n",
		kept, origTop.Len())
	fmt.Printf("top-%d after dropping one library and re-deriving in the extensional world\n", redoTop.Len())
	return nil
}

// findGapOf returns (creating if needed) the gap for the brain case groups.
func findGapOf(sys *gea.System, groups gea.CaseGroups) string {
	name := "brainFigGap"
	if _, err := sys.Gap(name); err == nil {
		return name
	}
	if _, err := sys.CreateGap(name, groups.InFascicle, groups.Opposite); err != nil {
		panic(err)
	}
	return name
}

// ------------------------------------------------------------- baselines

func expBaselines(e *env) error {
	sys, brain, inFas, _, err := brainPipeline(e)
	if err != nil {
		return err
	}
	_ = sys
	rows := brain.Expr
	labelsTrue := make([]int, brain.NumLibraries())
	for i, m := range brain.Libs {
		if m.State == gea.Cancer {
			labelsTrue[i] = 1
		}
	}
	fmt.Println("paper claim: one-step clusterers group tissues but yield no candidate genes;")
	fmt.Println("fascicles both cluster and emit compact-tag signatures")
	rule()

	agree := func(pred []int) float64 {
		// Best-of-two-mappings agreement with cancer/normal ground truth.
		var a, b int
		for i := range pred {
			if pred[i] == labelsTrue[i] {
				a++
			}
			if 1-pred[i] == labelsTrue[i] {
				b++
			}
		}
		if b > a {
			a = b
		}
		return float64(a) / float64(len(pred))
	}

	start := time.Now()
	dg, err := gea.Hierarchical(rows, gea.CorrelationDistance, gea.AverageLinkage)
	if err != nil {
		return err
	}
	hl, err := dg.Cut(2)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s agreement=%.2f  time=%v  candidate genes: none\n",
		"hierarchical (Eisen)", agree(binary(hl)), time.Since(start).Round(time.Microsecond))

	rng := rand.New(rand.NewSource(e.seed))
	start = time.Now()
	km, err := gea.KMeans(rows, 2, rng, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s agreement=%.2f  time=%v  candidate genes: none\n",
		"k-means", agree(binary(km.Labels)), time.Since(start).Round(time.Microsecond))

	start = time.Now()
	som, err := gea.SOM(rows, gea.SOMConfig{GridW: 2, GridH: 1, Epochs: 60}, rng)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s agreement=%.2f  time=%v  candidate genes: none\n",
		"SOM (Golub)", agree(binary(som.Labels)), time.Since(start).Round(time.Microsecond))

	start = time.Now()
	order, err := gea.OPTICS(rows, gea.OPTICSConfig{Eps: math.Inf(1), MinPts: 3})
	if err != nil {
		return err
	}
	ol := gea.ExtractDBSCAN(order, medianReach(order)*1.2)
	fmt.Printf("%-22s agreement=%.2f  time=%v  candidate genes: none\n",
		"OPTICS (Ng et al.)", agree(binary(ol)), time.Since(start).Round(time.Microsecond))

	start = time.Now()
	castLabels, err := gea.CAST(rows, gea.CASTConfig{T: 0.75})
	if err != nil {
		return err
	}
	fmt.Printf("%-22s agreement=%.2f  time=%v  clusters=%d (self-determined)  candidate genes: none\n",
		"CAST (Ben-Dor)", agree(binary(castLabels)), time.Since(start).Round(time.Microsecond),
		gea.NumClusters(castLabels))

	// Fascicles: purity of the mined pure-cancer fascicle plus its signature.
	fasLabels := make([]int, brain.NumLibraries())
	for i, m := range brain.Libs {
		if inFas[m.Name] {
			fasLabels[i] = 1
		}
	}
	correct := 0
	for i := range fasLabels {
		if fasLabels[i] == 1 && labelsTrue[i] == 1 {
			correct++
		}
	}
	f, err := sys.Fascicle(e.brainPure)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s pure-cancer fascicle of %d libraries; candidate genes: %d compact tags\n",
		"fascicles (GEA)", f.Fascicle.Size(), f.Fascicle.NumCompact())
	return nil
}

func binary(labels []int) []int {
	// Map arbitrary labels to {0,1} by majority split on the first label.
	out := make([]int, len(labels))
	for i, l := range labels {
		if l == labels[0] {
			out[i] = 0
		} else {
			out[i] = 1
		}
	}
	return out
}

func medianReach(order []gea.OPTICSPoint) float64 {
	var vals []float64
	for _, p := range order {
		if !math.IsInf(p.Reachability, 1) {
			vals = append(vals, p.Reachability)
		}
	}
	if len(vals) == 0 {
		return 1
	}
	sort.Float64s(vals)
	return vals[len(vals)/2]
}

// ----------------------------------------------------- cleaning ablation

func expCleaningAblation(e *env) error {
	fmt.Println("paper: 'for clustering analysis to achieve its potential, proper filtering")
	fmt.Println("of the data is necessary' (Ng et al. [NSS01], adopted in Section 4.2)")
	rule()
	for _, mode := range []struct {
		label string
		skip  bool
	}{
		{"cleaned", false},
		{"raw (no cleaning)", true},
	} {
		sys, err := gea.NewSystem(e.res.Corpus, gea.SystemOptions{
			User: "ablate", SkipCleaning: mode.skip,
		})
		if err != nil {
			return err
		}
		d, err := sys.CreateTissueDataset("brain")
		if err != nil {
			return err
		}
		if err := sys.GenerateMetadata("brain", 10); err != nil {
			return err
		}
		alg := gea.LatticeAlgorithm
		if e.full {
			alg = gea.GreedyAlgorithm
		}
		start := time.Now()
		ctx, cancel := e.opCtx()
		names, tr, err := sys.CalculateFasciclesCtx(ctx, "brain", gea.FascicleOptions{
			K: d.NumTags() * e.kpct / 100, MinSize: 3, Algorithm: alg,
		}, gea.ExecLimits{})
		cancel()
		if err != nil {
			return err
		}
		e.noteTrace(tr)
		elapsed := time.Since(start)
		pure := 0
		bestCompact := 0
		for _, n := range names {
			f, _ := sys.Fascicle(n)
			if f.Enum.IsPure(gea.PropCancer) || f.Enum.IsPure(gea.PropNormal) {
				pure++
				if f.Fascicle.NumCompact() > bestCompact {
					bestCompact = f.Fascicle.NumCompact()
				}
			}
		}
		fmt.Printf("%-18s dims=%dx%d fascicles=%d pure=%d best-compact=%d time=%v\n",
			mode.label, d.NumLibraries(), d.NumTags(), len(names), pure, bestCompact,
			elapsed.Round(time.Millisecond))
	}
	return nil
}

// --------------------------------------------------------------- scaling

func expScaling(e *env) error {
	sys, err := e.sys()
	if err != nil {
		return err
	}
	d := sys.Data
	fmt.Println("paper (Section 3.3.1): mine linear in libraries and compact tags;")
	fmt.Println("aggregate one pass (O(n log n) with median); diff linear in tags")
	rule()
	fmt.Println("operation            size                time")
	for _, frac := range []int{25, 50, 100} {
		nt := d.NumTags() * frac / 100
		cols := make([]int, nt)
		for j := range cols {
			cols[j] = j
		}
		rows := make([]int, d.NumLibraries())
		for i := range rows {
			rows[i] = i
		}
		enum, err := gea.NewEnum("scale", d, rows, cols)
		if err != nil {
			return err
		}
		start := time.Now()
		s, err := gea.Aggregate("scaleSumy", enum, gea.AggregateOptions{})
		if err != nil {
			return err
		}
		tAgg := time.Since(start)
		start = time.Now()
		if _, err := gea.Diff("scaleGap", s, s); err != nil {
			return err
		}
		tDiff := time.Since(start)
		start = time.Now()
		if _, _, err := gea.Populate("scalePop", s, d, nil); err != nil {
			return err
		}
		tPop := time.Since(start)
		fmt.Printf("aggregate/diff/pop   %6d tags        %v / %v / %v\n",
			nt, tAgg.Round(time.Microsecond), tDiff.Round(time.Microsecond), tPop.Round(time.Microsecond))
	}
	// Mining time vs library count.
	brain, err := sys.Dataset("brain")
	if err != nil {
		brain, err = sys.CreateTissueDataset("brain")
		if err != nil {
			return err
		}
		if err := sys.GenerateMetadata("brain", 10); err != nil {
			return err
		}
	}
	tol, err := gea.ToleranceVector(brain, 10)
	if err != nil {
		return err
	}
	for _, nl := range []int{4, 8, brain.NumLibraries()} {
		rows := make([]int, nl)
		for i := range rows {
			rows[i] = i
		}
		sub, err := brain.Subset(rows)
		if err != nil {
			return err
		}
		start := time.Now()
		if _, err := gea.MineFasciclesGreedy(sub, gea.FascicleParams{
			K: sub.NumTags() * e.kpct / 100, Tolerance: tol, MinSize: 2,
		}); err != nil {
			return err
		}
		fmt.Printf("mine (greedy)        %6d libraries   %v\n", nl, time.Since(start).Round(time.Microsecond))
	}
	return nil
}

// ------------------------------------------------------------- xprofiler

// expXProfiler contrasts the NCBI xProfiler approach (pool two groups the
// user guessed, run the Audic-Claverie test) with the GEA's fascicle+gap
// pipeline on recovering the planted brain signature.
func expXProfiler(e *env) error {
	sys, brain, _, groups, err := brainPipeline(e)
	if err != nil {
		return err
	}
	_ = brain

	// Ground truth: the planted brain and pan-cancer signature genes.
	truth := map[gea.TagID]bool{}
	for _, g := range e.res.Catalog.Genes {
		if (g.Tissue == "brain" || g.Tissue == "") &&
			(g.Role.String() == "cancer-up" || g.Role.String() == "cancer-down") {
			truth[g.Tag] = true
		}
	}

	prf := func(tags []gea.TagID) (prec, rec float64) {
		tp := 0
		for _, tg := range tags {
			if truth[tg] {
				tp++
			}
		}
		if len(tags) > 0 {
			prec = float64(tp) / float64(len(tags))
		}
		rec = float64(tp) / float64(len(truth))
		return prec, rec
	}

	// xProfiler: pool cancer vs normal brain on the RAW corpus (the tool
	// works on counts, not normalized data).
	cancer, err := gea.XPoolByState(e.res.Corpus, "brain", gea.Cancer)
	if err != nil {
		return err
	}
	normal, err := gea.XPoolByState(e.res.Corpus, "brain", gea.Normal)
	if err != nil {
		return err
	}
	xres, err := gea.XCompare(cancer, normal, gea.XOptions{Alpha: 1e-4})
	if err != nil {
		return err
	}
	var xtags []gea.TagID
	for _, r := range xres {
		xtags = append(xtags, r.Tag)
	}
	xp, xr := prf(xtags)

	// GEA: fascicle gap vs normal, non-null gaps are the candidates.
	gap, err := sys.Gap(findGapOf(sys, groups))
	if err != nil {
		return err
	}
	nn, err := gea.SelectGap("xpNN", gap, gea.GapNonNull(0))
	if err != nil {
		return err
	}
	var gtags []gea.TagID
	for _, r := range nn.Rows {
		gtags = append(gtags, r.Tag)
	}
	gp, gr := prf(gtags)

	fmt.Println("paper: the xProfiler 'can analyze only one library, or compare only two")
	fmt.Println("libraries at a time' and 'the user has to guess which SAGE libraries")
	fmt.Println("should form a group'; the GEA mines the group and contrasts it")
	rule()
	fmt.Printf("planted signature genes (brain + pan-cancer): %d\n", len(truth))
	fmt.Printf("%-28s candidates=%4d precision=%.2f recall=%.2f\n", "xProfiler (pooled A-C test)", len(xtags), xp, xr)
	fmt.Printf("%-28s candidates=%4d precision=%.2f recall=%.2f\n", "GEA (fascicle gap, non-null)", len(gtags), gp, gr)
	return nil
}

// --------------------------------------------------------------- seeds

// expSeeds reruns the case-study-1 pipeline across several generator seeds
// to show the reproduction is not tuned to one corpus: each run must find a
// pure cancerous fascicle dominated by the planted core and rank planted
// signature genes at the top of the gap.
func expSeeds(e *env) error {
	fmt.Println("seed | pure fascicle | size | core members | planted in top-10 gaps")
	rule()
	for seed := int64(1); seed <= 5; seed++ {
		cfg := gea.SmallConfig()
		cfg.Seed = seed
		res, err := gea.Generate(cfg)
		if err != nil {
			return err
		}
		sys, err := gea.NewSystem(res.Corpus, gea.SystemOptions{User: "seeds"})
		if err != nil {
			return err
		}
		brain, err := sys.CreateTissueDataset("brain")
		if err != nil {
			return err
		}
		_ = brain
		if err := sys.GenerateMetadata("brain", 10); err != nil {
			return err
		}
		ctx, cancel := e.opCtx()
		pure, tr, err := sys.FindPureFascicleCtx(ctx, "brain", gea.PropCancer, 3, gea.ExecLimits{})
		cancel()
		if err != nil {
			fmt.Printf("%4d | (none found: %v)\n", seed, err)
			continue
		}
		e.noteTrace(tr)
		f, err := sys.Fascicle(pure)
		if err != nil {
			return err
		}
		core := map[string]bool{}
		for _, n := range res.FascicleCore["brain"] {
			core[n] = true
		}
		hits := 0
		for _, n := range f.Enum.LibraryNames() {
			if core[n] {
				hits++
			}
		}
		groups, err := sys.FormSUM(pure, "brain")
		if err != nil {
			return err
		}
		if _, err := sys.CreateGap("seedGap", groups.InFascicle, groups.Opposite); err != nil {
			return err
		}
		top, err := sys.CalculateTopGap("seedGap", 10)
		if err != nil {
			return err
		}
		planted := 0
		for _, r := range top.Rows {
			if g, ok := res.Catalog.ByTag(r.Tag); ok {
				if g.Role.String() == "cancer-up" || g.Role.String() == "cancer-down" {
					planted++
				}
			}
		}
		fmt.Printf("%4d | %-13s | %4d | %12d | %d/10\n", seed, pure, f.Fascicle.Size(), hits, planted)
	}
	return nil
}

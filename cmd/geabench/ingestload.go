package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strconv"
	"time"

	"gea"
)

// This file holds the two ingestion BENCH series.
//
// "geabench -ingest URL" is the remote one: it streams a generated corpus
// into a running "gea serve -ingest" instance as POST /ingest batches,
// retrying 429/503 answers per the server's Retry-After advice exactly
// like the -serve load generator — the CI soak runs it concurrently with
// -serve query load to prove appends and reads coexist under drain.
//
// "geabench -exp ingest" is the local one: it measures incremental view
// maintenance (Rebuild once, then Apply per batch) against a from-scratch
// Rebuild of the final corpus at several batch splits, asserting the two
// end states are identical before reporting the walls.

// ingestReply is the subset of the server's /ingest body the loader reads.
type ingestReply struct {
	Gen        string   `json:"gen"`
	Appended   []string `json:"appended"`
	Rejected   []any    `json:"rejected"`
	Retries    int      `json:"retries"`
	Generation uint64   `json:"generation"`
}

// runIngestLoad streams the generated corpus into the server batch by
// batch. Batches go sequentially — the server serializes appends anyway —
// but each POST retries overload answers with capped Retry-After backoff,
// so a server busy with concurrent query load sheds us without data loss.
func runIngestLoad(e *env, baseURL string, batches int, prefix string) error {
	emitted, _, err := gea.EmitBatches(e.cfg, batches)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 60 * time.Second}
	health, err := fetchHealthz(client, baseURL)
	if err != nil {
		return fmt.Errorf("server unreachable: %w", err)
	}
	fmt.Printf("server at %s: status %q, state %q\n", baseURL, health.Status, health.State)
	fmt.Printf("streaming %d batches (name prefix %q)\n", len(emitted), prefix)

	var appended, rejected, retries, gaveUp int
	var lastGen uint64
	start := time.Now()
	for i, libs := range emitted {
		b := gea.IngestBatchFromLibraries(libs)
		// Generated names are position-deterministic, so a prefix keeps
		// repeated soaks against one server from colliding with the
		// corpus it was seeded with.
		for j := range b.Libraries {
			b.Libraries[j].Name = prefix + b.Libraries[j].Name
		}
		reply, nretries, err := postIngestBatch(client, baseURL, b)
		retries += nretries
		if err != nil {
			if reply == nil {
				// Retry budget exhausted on overload answers: count and
				// move on, like the -serve loader's gave-up bucket.
				gaveUp++
				fmt.Printf("  batch %d/%d: gave up: %v\n", i+1, len(emitted), err)
				continue
			}
			return err
		}
		appended += len(reply.Appended)
		rejected += len(reply.Rejected)
		lastGen = reply.Generation
		fmt.Printf("  batch %d/%d: appended %d -> %s (server generation %d)\n",
			i+1, len(emitted), len(reply.Appended), reply.Gen, reply.Generation)
	}
	wall := time.Since(start)

	libsPerSec := float64(appended) / wall.Seconds()
	fmt.Printf("streamed %d libraries in %v (%.1f libraries/s); %d quarantined, %d overload retries, %d batches given up\n",
		appended, wall.Round(time.Millisecond), libsPerSec, rejected, retries, gaveUp)
	if after, err := fetchHealthz(client, baseURL); err == nil {
		fmt.Printf("server state after load: %q\n", after.State)
	}
	e.bench = append(e.bench, benchRecord{
		Op: "serve.ingest", Workers: 1, WallNS: wall.Nanoseconds(),
		Wall: wall.Round(time.Microsecond).String(), Units: int64(appended),
		Reps: len(emitted), BatchSize: batchSizeOf(emitted), LibsPerSec: libsPerSec,
	})
	if appended == 0 && lastGen == 0 {
		return fmt.Errorf("no batch committed: %d given up, %d rejected", gaveUp, rejected)
	}
	return nil
}

// postIngestBatch POSTs one batch, honoring Retry-After on 429/503 (capped
// so a short soak cannot stall on one pessimistic estimate). A non-nil
// reply with a nil error is success; nil reply with an error means the
// retry budget ran out or the transport failed.
func postIngestBatch(client *http.Client, baseURL string, b gea.IngestBatch) (*ingestReply, int, error) {
	var body bytes.Buffer
	if err := gea.EncodeIngestBatch(&body, b); err != nil {
		return nil, 0, err
	}
	backoff := 50 * time.Millisecond
	retries := 0
	for attempt := 1; attempt <= serveLoadAttempts; attempt++ {
		resp, err := client.Post(baseURL+"/ingest", "application/json", bytes.NewReader(body.Bytes()))
		if err != nil {
			return nil, retries, err
		}
		replyBody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			var reply ingestReply
			if err := json.Unmarshal(replyBody, &reply); err != nil {
				return nil, retries, fmt.Errorf("parsing /ingest reply: %w", err)
			}
			return &reply, retries, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			retries++
			d := backoff
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
					d = time.Duration(secs) * time.Second
				}
			}
			if d > 2*time.Second {
				d = 2 * time.Second
			}
			time.Sleep(d)
			backoff *= 2
		default:
			return nil, retries, fmt.Errorf("/ingest: status %d: %s", resp.StatusCode, replyBody)
		}
	}
	return nil, retries, fmt.Errorf("retry budget of %d exhausted", serveLoadAttempts)
}

// batchSizeOf reports the dominant (first) batch size of an emission.
func batchSizeOf(batches [][]*gea.Library) int {
	if len(batches) == 0 {
		return 0
	}
	return len(batches[0])
}

// expIngest measures incremental view maintenance against from-scratch
// rebuilds. For each split n the final corpus is identical; the series
// contrasts one Rebuild of everything with Rebuild(first batch) followed
// by n-1 Applies. The end states are asserted identical first — a wall
// time for a wrong answer is worthless.
func expIngest(e *env) error {
	libs := e.res.Corpus.Libraries
	fmt.Printf("corpus: %d libraries; maintained aggregate + ranking + indexes per generation\n", len(libs))
	fmt.Println("batches | rebuild wall | incremental wall | libraries/s (incremental)")
	for _, n := range []int{1, 2, 4, 8} {
		if n > len(libs) {
			break
		}
		batches, _, err := gea.EmitBatches(e.cfg, n)
		if err != nil {
			return err
		}

		rebuildStart := time.Now()
		full, err := gea.RebuildIngestView(e.res.Corpus, gea.IngestViewOptions{})
		if err != nil {
			return err
		}
		rebuildWall := time.Since(rebuildStart)

		incStart := time.Now()
		view, err := gea.RebuildIngestView(&gea.Corpus{Libraries: batches[0]}, gea.IngestViewOptions{})
		if err != nil {
			return err
		}
		for _, b := range batches[1:] {
			if view, err = view.Apply(b); err != nil {
				return err
			}
		}
		incWall := time.Since(incStart)

		if !reflect.DeepEqual(view.Sumy, full.Sumy) || !reflect.DeepEqual(view.Ranked, full.Ranked) {
			return fmt.Errorf("split %d: incremental maintenance diverged from rebuild", n)
		}
		libsPerSec := float64(len(libs)) / incWall.Seconds()
		fmt.Printf("%7d | %12v | %16v | %.1f\n",
			n, rebuildWall.Round(time.Microsecond), incWall.Round(time.Microsecond), libsPerSec)
		if e.jsonOut {
			e.bench = append(e.bench, benchRecord{
				Op: "ingest.incremental", Workers: 1, WallNS: incWall.Nanoseconds(),
				Wall: incWall.Round(time.Microsecond).String(), Units: int64(len(libs)),
				Reps: n, BatchSize: len(batches[0]), LibsPerSec: libsPerSec,
			})
			e.bench = append(e.bench, benchRecord{
				Op: "ingest.rebuild", Workers: 1, WallNS: rebuildWall.Nanoseconds(),
				Wall: rebuildWall.Round(time.Microsecond).String(), Units: int64(len(libs)),
				Reps: n, BatchSize: len(batches[0]), LibsPerSec: float64(len(libs)) / rebuildWall.Seconds(),
			})
		}
	}
	return nil
}

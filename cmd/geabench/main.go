// Command geabench regenerates every table and figure of the thesis's
// evaluation on synthetic data. Each experiment prints rows in the paper's
// format so paper-vs-measured comparisons (EXPERIMENTS.md) are mechanical.
//
// Usage:
//
//	geabench -exp all                 run every experiment
//	geabench -exp table2.2            the Table 2.2 fascicle example
//	geabench -exp table3.1            indices required (exact reproduction)
//	geabench -exp table3.2            populate() time saving vs index hits
//	geabench -exp cleaning            Section 4.2 cleaning statistics
//	geabench -exp fig4.2|fig4.3|fig4.11   marker-gene figures
//	geabench -exp case3|case4|case5   the cross-tissue case studies
//	geabench -exp baselines           one-step clusterers vs fascicles
//	geabench -exp cleaning-ablation   mining raw vs cleaned data
//	geabench -exp scaling             operator complexity (Section 3.3.1)
//	geabench -exp perf -workers 8     sharded evaluation vs sequential
//	geabench -exp perf -engine columnar   the same cells on the columnar
//	                                  block engine (zone-map skip counts
//	                                  land in the BENCH records)
//	geabench -json                    record perf cells to BENCH_<n>.json
//	                                  (with span trees + metrics snapshot)
//	geabench -json-out PATH           same, but to an explicit path
//	geabench -full                    use the 100-library full-scale corpus
//	geabench -serve URL               load-test a running "gea serve" server
//	                                  (-clients N x -requests M /mine calls,
//	                                  retrying 429/503 per Retry-After)
//	geabench -serve URL -tenants 4    multi-tenant session load instead:
//	                                  N tenant sessions drive shared and
//	                                  tenant-distinct operator runs through
//	                                  /session, recording the cold-vs-cached
//	                                  serve.mine/serve.aggregate BENCH cells
//	geabench -ingest URL              stream a generated corpus into a
//	                                  running "gea serve -ingest" server as
//	                                  -batches POST /ingest appends
//	geabench -exp ingest              incremental view maintenance vs
//	                                  from-scratch rebuild walls
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gea"
)

type experiment struct {
	name string
	desc string
	run  func(*env) error
}

// env carries the shared corpus/session so experiments don't regenerate it.
type env struct {
	cfg      gea.GenConfig
	res      *gea.GenResult
	full     bool
	seed     int64
	kpct     int
	topX     int
	deadline time.Duration
	workers  int
	// engine is the execution-engine setting for the perf experiment's
	// operator calls; engineName is the flag value recorded into the
	// BENCH document (empty in tests that predate the flag). engines,
	// when non-empty, holds the full -engine comma list: the perf
	// experiment records one series per entry, cross-checking that
	// every engine produces the identical result.
	engine     gea.Engine
	engineName string
	engines    []engineSel
	jsonOut    bool
	jsonPath   string
	benchNum   int
	system     *gea.System // lazily built

	// trace collects spans and metrics from the perf experiment's
	// governed runs when -json is on, so the benchmark document carries
	// the full execution story, not just wall times.
	trace *gea.ObsCollector

	// bench collects the perf experiment's cells for -json.
	bench []benchRecord

	// Bounded-execution accounting for the -deadline flag.
	deadlineHits int
	partials     int

	// Cached brain pipeline outputs shared across experiments.
	brainPure   string
	brainGroups gea.CaseGroups
}

func (e *env) sys() (*gea.System, error) {
	if e.system != nil {
		return e.system, nil
	}
	sys, err := gea.NewSystem(e.res.Corpus, gea.SystemOptions{
		User: "geabench", Catalog: e.res.Catalog, GeneDBSeed: e.seed,
		Workers: e.workers,
	})
	if err != nil {
		return nil, err
	}
	e.system = sys
	return sys, nil
}

func main() {
	expName := flag.String("exp", "all", "experiment id (or 'all', or 'list')")
	full := flag.Bool("full", false, "full-scale corpus (100 libraries, 60k genes); slower")
	seed := flag.Int64("seed", 1, "generator seed")
	kpct := flag.Int("kpct", 55, "compact-attribute percentage for fascicle mining")
	topX := flag.Int("top", 10, "top gaps to display")
	deadline := flag.Duration("deadline", 0, "wall-time bound per governed operator (0 = unlimited); expired operators stop gracefully")
	workers := flag.Int("workers", 1, "worker count for sharded operator evaluation (results are identical at any setting)")
	engineName := flag.String("engine", "auto", "execution engine for the perf experiment's operators: auto|row|columnar, or a comma list (e.g. row,columnar) to record one series per engine (results are identical on either)")
	jsonOut := flag.Bool("json", false, "write the perf experiment's records to BENCH_<n>.json")
	jsonPath := flag.String("json-out", "", "write the perf experiment's records to this exact path (implies -json; empty = scan the CWD for the first unused BENCH_<n>.json)")
	benchNum := flag.Int("benchnum", 0, "pin the BENCH_<n>.json slot written by -json (0 = first unused)")
	serveURL := flag.String("serve", "", "load-test a running gea serve instance at this base URL instead of running experiments")
	clients := flag.Int("clients", 4, "concurrent clients for -serve")
	requests := flag.Int("requests", 10, "requests per client for -serve")
	tenants := flag.Int("tenants", 0, "with -serve: drive N tenant sessions through /session instead of raw /mine, recording the cold-vs-cached cache cells (0 = plain /mine load)")
	ingestURL := flag.String("ingest", "", "stream a generated corpus into a running gea serve -ingest instance at this base URL instead of running experiments")
	ingestBatches := flag.Int("batches", 4, "append batches for -ingest")
	ingestPrefix := flag.String("prefix", "ing", "library-name prefix for -ingest, keeping repeated soaks collision-free")
	flag.Parse()
	if *jsonPath != "" {
		*jsonOut = true
	}

	if *ingestURL != "" {
		// Remote ingestion soak: generate batches locally, stream them to
		// the server under test.
		cfg := gea.SmallConfig()
		if *full {
			cfg = gea.DefaultConfig()
		}
		cfg.Seed = *seed
		e := &env{cfg: cfg, full: *full, seed: *seed, jsonOut: *jsonOut, jsonPath: *jsonPath,
			benchNum: *benchNum}
		if err := runIngestLoad(e, strings.TrimRight(*ingestURL, "/"), *ingestBatches, *ingestPrefix); err != nil {
			fmt.Fprintln(os.Stderr, "geabench -ingest:", err)
			os.Exit(1)
		}
		if *jsonOut && len(e.bench) > 0 {
			if err := writeBenchJSON(e); err != nil {
				fmt.Fprintln(os.Stderr, "geabench: writing benchmark records:", err)
				os.Exit(1)
			}
		}
		return
	}

	if *serveURL != "" {
		// Server-side load generation needs no local corpus: the server
		// under test holds the data.
		e := &env{full: *full, seed: *seed, jsonOut: *jsonOut, jsonPath: *jsonPath,
			benchNum: *benchNum}
		load := func() error { return runServeLoad(e, strings.TrimRight(*serveURL, "/"), *clients, *requests) }
		if *tenants > 0 {
			load = func() error { return runTenantLoad(e, strings.TrimRight(*serveURL, "/"), *tenants, *requests) }
		}
		if err := load(); err != nil {
			fmt.Fprintln(os.Stderr, "geabench -serve:", err)
			os.Exit(1)
		}
		if *jsonOut && len(e.bench) > 0 {
			if err := writeBenchJSON(e); err != nil {
				fmt.Fprintln(os.Stderr, "geabench: writing benchmark records:", err)
				os.Exit(1)
			}
		}
		return
	}

	exps := []experiment{
		{"table2.2", "fascicle worked example on the Table 2.2 fragment", expTable22},
		{"table3.1", "indices required for w hits (exact)", expTable31},
		{"table3.2", "populate() time saving vs indices hit", expTable32},
		{"table4.1", "Allen's thirteen basic interval relations", expTable41},
		{"cleaning", "Section 4.2 cleaning statistics", expCleaning},
		{"fig4.2", "RIBOSOMAL PROTEIN L12: fascicle vs normal", figMarker(gea.GeneRibosomalL12)},
		{"fig4.3", "ALPHA TUBULIN: fascicle vs normal", figMarker(gea.GeneAlphaTubulin)},
		{"fig4.11", "ADP PROTEIN: inside vs outside fascicle", figMarker(gea.GeneADPProtein)},
		{"case3", "genes always lower/higher in cancer across tissues", expCase3},
		{"case4", "genes unique to one type of cancer", expCase4},
		{"case5", "verification with user-defined ENUM tables", expCase5},
		{"baselines", "one-step clusterers vs fascicle mining", expBaselines},
		{"xprofiler", "pooled Audic-Claverie test vs GEA gap analysis", expXProfiler},
		{"cleaning-ablation", "fascicle purity on raw vs cleaned data", expCleaningAblation},
		{"scaling", "operator complexity (Section 3.3.1)", expScaling},
		{"seeds", "robustness: pipeline outcome across generator seeds", expSeeds},
		{"perf", "sharded evaluation: sequential vs -workers N", expPerf},
		{"ingest", "incremental view maintenance vs from-scratch rebuild", expIngest},
	}

	if *expName == "list" {
		for _, e := range exps {
			fmt.Printf("%-18s %s\n", e.name, e.desc)
		}
		return
	}

	cfg := gea.SmallConfig()
	if *full {
		cfg = gea.DefaultConfig()
	}
	cfg.Seed = *seed
	res, err := gea.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "geabench:", err)
		os.Exit(1)
	}
	var engines []engineSel
	for _, name := range strings.Split(*engineName, ",") {
		name = strings.TrimSpace(name)
		eng, err := gea.ParseEngine(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "geabench:", err)
			os.Exit(2)
		}
		engines = append(engines, engineSel{eng, name})
	}
	e := &env{cfg: cfg, res: res, full: *full, seed: *seed, kpct: *kpct, topX: *topX,
		deadline: *deadline, workers: *workers,
		engine: engines[0].eng, engineName: engines[0].name, engines: engines,
		jsonOut: *jsonOut, jsonPath: *jsonPath, benchNum: *benchNum}
	if *jsonOut {
		e.trace = gea.NewObsCollector()
	}

	ran := 0
	for _, ex := range exps {
		if *expName != "all" && ex.name != *expName {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", ex.name, ex.desc)
		if err := ex.run(e); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				// A deadline stop is a bounded-execution outcome, not a
				// failure: report it and keep running the remaining
				// experiments.
				e.deadlineHits++
				fmt.Printf("(stopped at the %v deadline; continuing)\n", *deadline)
				fmt.Println()
				ran++
				continue
			}
			fmt.Fprintf(os.Stderr, "geabench %s: %v\n", ex.name, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "geabench: unknown experiment %q (use -exp list)\n", *expName)
		os.Exit(2)
	}
	if *deadline > 0 {
		fmt.Printf("deadline report: %d experiment(s) stopped at the %v deadline, %d partial result(s) accepted\n",
			e.deadlineHits, *deadline, e.partials)
	}
	if *jsonOut && len(e.bench) > 0 {
		if err := writeBenchJSON(e); err != nil {
			fmt.Fprintln(os.Stderr, "geabench: writing benchmark records:", err)
			os.Exit(1)
		}
	}
}

// opCtx returns a context bounded by the -deadline flag (background when
// unset). Callers must invoke the cancel function when the operator returns.
func (e *env) opCtx() (context.Context, context.CancelFunc) {
	if e.deadline <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), e.deadline)
}

// noteTrace folds one governed operator's trace into the run accounting.
func (e *env) noteTrace(tr gea.ExecTrace) {
	if tr.Partial {
		e.partials++
	}
}

// sectionRule prints a thin separator.
func rule() { fmt.Println(strings.Repeat("-", 64)) }

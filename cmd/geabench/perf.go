package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"gea"
)

// This file implements the "perf" experiment and the -json benchmark
// record: the first datapoints of the repo's performance trajectory, as
// sequential-vs-sharded measurements of the core operators (see
// internal/exec/shard). Each record is one (operator, worker count) cell;
// -json persists the run to BENCH_<n>.json so successive PRs can compare.

// engineSel pairs a parsed engine with the flag spelling recorded into
// the BENCH document.
type engineSel struct {
	eng  gea.Engine
	name string
}

// benchRecord is one measured cell of the perf experiment.
type benchRecord struct {
	// Op names the operator benchmarked (e.g. "populate", "diff").
	Op string `json:"op"`
	// Workers is the exec.Limits.Workers setting of this cell.
	Workers int `json:"workers"`
	// WallNS is the best-of-reps wall time in nanoseconds; Wall is the
	// same value rendered for humans.
	WallNS int64  `json:"wall_ns"`
	Wall   string `json:"wall"`
	// Units is the exec work charged by one run (identical at any worker
	// count — the shard substrate splits the budget, it does not change
	// what is charged).
	Units int64 `json:"units"`
	// Reps is how many timed repetitions the best was taken over.
	Reps int `json:"reps"`
	// Engine is the -engine flag value the cell ran under; absent in
	// documents recorded before the columnar engine existed.
	Engine string `json:"engine,omitempty"`
	// BlocksScanned/BlocksSkipped/BytesScanned are the columnar engine's
	// block-traversal cells for populate operators: blocks decoded,
	// blocks pruned whole by zone maps, and encoded bytes decompressed.
	// All zero (and omitted) on the row engine.
	BlocksScanned int64 `json:"blocks_scanned,omitempty"`
	BlocksSkipped int64 `json:"blocks_skipped,omitempty"`
	BytesScanned  int64 `json:"bytes_scanned,omitempty"`
	// BatchSize and LibsPerSec are the ingestion series' extra cells
	// (libraries per append batch, commit throughput); omitted from the
	// perf records so the BENCH schema stays stable.
	BatchSize  int     `json:"batch_size,omitempty"`
	LibsPerSec float64 `json:"libs_per_sec,omitempty"`
}

// benchFile is the BENCH_<n>.json document. NumCPU and GoMaxProcs pin the
// hardware context: a parallel cell can only beat its sequential baseline
// when the recording machine actually has spare cores, so the trajectory
// is meaningless without them.
type benchFile struct {
	Bench      int           `json:"bench"`
	Corpus     string        `json:"corpus"`
	Seed       int64         `json:"seed"`
	NumCPU     int           `json:"num_cpu"`
	GoMaxProcs int           `json:"go_max_procs"`
	Records    []benchRecord `json:"records"`
	// Spans holds the span trees of the perf experiment's identity-check
	// runs (the timed repetitions run untraced, so the collector never
	// perturbs the measurement) and Metrics the deterministic snapshot
	// they fed — the full execution story behind the wall times.
	Spans   []*gea.ObsRecord `json:"spans,omitempty"`
	Metrics *gea.ObsSnapshot `json:"metrics,omitempty"`
}

// writeBenchJSON persists the collected records. An explicit -json-out
// path wins; otherwise a positive -benchnum pins the BENCH_<n>.json slot,
// and failing that the first unused slot in the CWD is taken, so
// successive recorded runs accumulate a trajectory instead of overwriting.
func writeBenchJSON(e *env) error {
	n := e.benchNum
	path := e.jsonPath
	if path == "" {
		if n <= 0 {
			for n = 1; ; n++ {
				if _, err := os.Stat(benchName(n)); os.IsNotExist(err) {
					break
				}
			}
		}
		path = benchName(n)
	}
	corpus := "small"
	if e.full {
		corpus = "full"
	}
	doc := benchFile{Bench: n, Corpus: corpus, Seed: e.seed,
		NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0), Records: e.bench}
	if e.trace != nil {
		doc.Spans = e.trace.Roots()
		snap := e.trace.Metrics.Snapshot()
		doc.Metrics = &snap
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchmark records written to %s\n", path)
	return nil
}

func benchName(n int) string { return fmt.Sprintf("BENCH_%d.json", n) }

// timeBest runs f reps times and returns the smallest wall time: the
// measurement least disturbed by scheduling noise.
func timeBest(reps int, f func() error) (time.Duration, error) {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, nil
}

// expPerf measures populate(), diff() and aggregate() sequentially and at
// the -workers setting, asserts the outputs are identical, and records the
// cells for -json. The sequential baseline always runs so every recorded
// run carries its own reference point.
func expPerf(e *env) error {
	sys, err := e.sys()
	if err != nil {
		return err
	}
	d := sys.Data
	workers := e.workers
	if workers < 1 {
		workers = 1
	}
	counts := []int{1}
	if workers > 1 {
		counts = append(counts, workers)
	}
	reps := 5
	if e.full {
		reps = 3
	}

	// One SUMY over the whole corpus drives all three operators: populate
	// verifies every library against every tag range, diff walks every
	// tag, aggregate summarizes every tag.
	rows := make([]int, d.NumLibraries())
	for i := range rows {
		rows[i] = i
	}
	cols := make([]int, d.NumTags())
	for j := range cols {
		cols[j] = j
	}
	enum, err := gea.NewEnum("perf", d, rows, cols)
	if err != nil {
		return err
	}
	sumy, err := gea.Aggregate("perfSumy", enum, gea.AggregateOptions{})
	if err != nil {
		return err
	}
	// A second SUMY over half the libraries gives diff() two distinct
	// operands.
	halfEnum, err := gea.NewEnum("perfHalf", d, rows[:(len(rows)+1)/2], cols)
	if err != nil {
		return err
	}
	halfSumy, err := gea.Aggregate("perfHalfSumy", halfEnum, gea.AggregateOptions{})
	if err != nil {
		return err
	}
	// A selective SUMY — the aggregate profile of the first tissue's
	// libraries — drives the zone-skipping populate cell: the corpus is
	// generated tissue-by-tissue, so other tissues' blocks fall outside
	// the profile's ranges and the columnar engine prunes them whole.
	tissues := d.TissueTypes()
	selRows := d.RowsByTissue(tissues[0])
	selEnum, err := gea.NewEnum("perfSel", d, selRows, cols)
	if err != nil {
		return err
	}
	selSumy, err := gea.Aggregate("perfSelSumy", selEnum, gea.AggregateOptions{})
	if err != nil {
		return err
	}

	fmt.Printf("sharded evaluation, best of %d (workers from -workers):\n", reps)
	if workers > 1 && runtime.NumCPU() == 1 {
		fmt.Println("note: this machine exposes a single CPU; parallel cells measure")
		fmt.Println("the substrate's overhead, not a speedup")
	}
	rule()
	fmt.Println("operator     engine    workers   wall         units    vs seq")

	// The identity-check run records spans and metrics when -json is on;
	// the timed repetitions stay on the untraced background context so
	// the collector never disturbs the measurement.
	traced := context.Background()
	if e.trace != nil {
		traced = gea.WithObsCollector(traced, e.trace)
		traced = gea.WithExecHook(traced, e.trace.ExecHook())
	}

	type opSpec struct {
		name string
		run  func(ctx context.Context, eng gea.Engine, w int) (interface{}, gea.ExecTrace, error)
		// stats, when set, is filled by run with the populate statistics
		// of its last call — the block-traversal cells of the record.
		stats *gea.PopulateStats
	}
	var popStats, selStats gea.PopulateStats
	ops := []opSpec{
		{"populate", func(ctx context.Context, eng gea.Engine, w int) (interface{}, gea.ExecTrace, error) {
			en, st, tr, err := gea.PopulateCtx(ctx, "perfPop", sumy, d, nil,
				gea.PopulateOptions{SimulateRowFetch: true, Engine: eng}, gea.ExecLimits{Workers: w})
			popStats = st
			return en, tr, err
		}, &popStats},
		{"populate-sel", func(ctx context.Context, eng gea.Engine, w int) (interface{}, gea.ExecTrace, error) {
			en, st, tr, err := gea.PopulateCtx(ctx, "perfSelPop", selSumy, d, nil,
				gea.PopulateOptions{Engine: eng}, gea.ExecLimits{Workers: w})
			selStats = st
			return en, tr, err
		}, &selStats},
		{"diff", func(ctx context.Context, eng gea.Engine, w int) (interface{}, gea.ExecTrace, error) {
			g, tr, err := gea.DiffEngineCtx(ctx, "perfGap", sumy, halfSumy, eng, gea.ExecLimits{Workers: w})
			return g, tr, err
		}, nil},
		{"aggregate", func(ctx context.Context, eng gea.Engine, w int) (interface{}, gea.ExecTrace, error) {
			s, tr, err := gea.AggregateCtx(ctx, "perfAgg", enum,
				gea.AggregateOptions{Engine: eng}, gea.ExecLimits{Workers: w})
			return s, tr, err
		}, nil},
	}

	engines := e.engines
	if len(engines) == 0 {
		engines = []engineSel{{e.engine, e.engineName}}
	}
	for _, op := range ops {
		var seqNS int64
		var seqOut interface{}
		for ei, es := range engines {
			for _, w := range counts {
				out, tr, err := op.run(traced, es.eng, w)
				if err != nil {
					return fmt.Errorf("%s (%s) at %d workers: %v", op.name, es.name, w, err)
				}
				if ei == 0 && w == 1 {
					seqOut = out
				} else if !reflect.DeepEqual(stripName(seqOut), stripName(out)) {
					// Every engine x worker cell must reproduce the first
					// engine's sequential result bit for bit.
					return fmt.Errorf("%s (%s) at %d workers diverged from the sequential result", op.name, es.name, w)
				}
				best, err := timeBest(reps, func() error {
					_, _, err := op.run(context.Background(), es.eng, w)
					return err
				})
				if err != nil {
					return err
				}
				rec := benchRecord{Op: op.name, Workers: w, WallNS: best.Nanoseconds(),
					Wall: best.String(), Units: tr.Units, Reps: reps, Engine: es.name}
				if op.stats != nil {
					rec.BlocksScanned = op.stats.BlocksScanned
					rec.BlocksSkipped = op.stats.BlocksSkipped
					rec.BytesScanned = op.stats.BytesDecoded
				}
				e.bench = append(e.bench, rec)
				vs := "(baseline)"
				if ei == 0 && w == 1 {
					seqNS = rec.WallNS
				} else if rec.WallNS > 0 {
					vs = fmt.Sprintf("%.2fx", float64(seqNS)/float64(rec.WallNS))
				}
				fmt.Printf("%-12s %-9s %7d   %-12v %6d    %s\n",
					op.name, es.name, w, best.Round(time.Microsecond), rec.Units, vs)
				if total := rec.BlocksScanned + rec.BlocksSkipped; w == 1 && total > 0 {
					fmt.Printf("             zone maps: %d/%d blocks skipped (%.0f%%), %d encoded bytes decoded\n",
						rec.BlocksSkipped, total, 100*float64(rec.BlocksSkipped)/float64(total), rec.BytesScanned)
				}
			}
		}
	}
	if workers == 1 {
		fmt.Println("(sequential only; rerun with -workers N for the parallel cells)")
	}
	return nil
}

// stripName zeroes the result's Name field so the identity check compares
// the computed content, not the label both runs were created under.
func stripName(v interface{}) interface{} {
	switch t := v.(type) {
	case *gea.Enum:
		cp := *t
		cp.Name = ""
		return &cp
	case *gea.Gap:
		cp := *t
		cp.Name = ""
		return &cp
	case *gea.Sumy:
		cp := *t
		cp.Name = ""
		return &cp
	default:
		return v
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// This file is the server-side load generator behind "geabench -serve":
// the first BENCH series measured across the HTTP boundary rather than
// in-process. N concurrent clients hammer a running "gea serve" front
// door with /mine requests (about a quarter marked priority=low so a
// saturated server has something to shed) and retry 429/503 answers
// with backoff that honors the server's Retry-After advice — the
// well-behaved client the overload design assumes.

// serveLoadAttempts bounds retries per logical request; past it the
// request counts as given up, not failed transport.
const serveLoadAttempts = 6

// serveMineReply is the subset of the server's /mine body the load
// generator reads.
type serveMineReply struct {
	Fascicle string `json:"fascicle"`
	Units    int64  `json:"units"`
	Partial  bool   `json:"partial"`
	Degraded bool   `json:"degraded"`
	State    string `json:"state"`
}

// serveHealthz is the subset of /healthz the load generator reads.
type serveHealthz struct {
	Status string `json:"status"`
	State  string `json:"state"`
}

// serveLoadStats tallies outcomes across all clients.
type serveLoadStats struct {
	mu       sync.Mutex
	ok       int64 // 200 full results
	partial  int64 // 200 flagged partials (degraded mode working)
	degraded int64 // 200s that ran under a non-healthy state
	retries  int64 // 429/503 answers that were retried
	gaveUp   int64 // retry budget exhausted
	failures int64 // transport errors and unexpected statuses
	units    int64
	statuses map[int]int64
}

func (st *serveLoadStats) note(code int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.statuses[code]++
}

// runServeLoad drives the load and prints the series. It fails only
// when the server is unreachable or not a single request completed —
// 429/503 under pressure are expected outcomes, not errors.
func runServeLoad(e *env, baseURL string, clients, requests int) error {
	client := &http.Client{Timeout: 60 * time.Second}
	health, err := fetchHealthz(client, baseURL)
	if err != nil {
		return fmt.Errorf("server unreachable: %w", err)
	}
	fmt.Printf("server at %s: status %q, state %q\n", baseURL, health.Status, health.State)
	fmt.Printf("driving %d clients x %d requests\n", clients, requests)

	st := &serveLoadStats{statuses: map[int]int64{}}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				low := (c*requests+r)%4 == 0
				st.request(client, baseURL, low)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	st.mu.Lock()
	defer st.mu.Unlock()
	completed := st.ok + st.partial
	total := int64(clients * requests)
	fmt.Printf("completed %d/%d requests in %v (%.1f req/s)\n",
		completed, total, wall.Round(time.Millisecond),
		float64(completed)/wall.Seconds())
	fmt.Printf("  full results    %d\n", st.ok)
	fmt.Printf("  partials        %d (budget-shrunk under load)\n", st.partial)
	fmt.Printf("  degraded runs   %d\n", st.degraded)
	fmt.Printf("  retries         %d (after 429/503 with Retry-After)\n", st.retries)
	fmt.Printf("  gave up         %d (retry budget of %d exhausted)\n", st.gaveUp, serveLoadAttempts)
	fmt.Printf("  failures        %d\n", st.failures)
	codes := make([]int, 0, len(st.statuses))
	for c := range st.statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Printf("  status %d      x%d\n", c, st.statuses[c])
	}
	if after, err := fetchHealthz(client, baseURL); err == nil {
		fmt.Printf("server state after load: %q\n", after.State)
	}

	e.bench = append(e.bench, benchRecord{
		Op: "serve.mine", Workers: clients, WallNS: wall.Nanoseconds(),
		Wall: wall.Round(time.Microsecond).String(), Units: st.units, Reps: int(completed),
	})
	if completed == 0 {
		return fmt.Errorf("no request completed: %d retries exhausted, %d failures", st.gaveUp, st.failures)
	}
	return nil
}

// request issues one logical /mine request, retrying overload answers
// with Retry-After-honoring backoff.
func (st *serveLoadStats) request(client *http.Client, baseURL string, low bool) {
	url := baseURL + "/mine?tissue=brain"
	if low {
		url += "&priority=low"
	}
	backoff := 50 * time.Millisecond
	for attempt := 1; attempt <= serveLoadAttempts; attempt++ {
		resp, err := client.Get(url)
		if err != nil {
			st.mu.Lock()
			st.failures++
			st.mu.Unlock()
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		st.note(resp.StatusCode)
		switch resp.StatusCode {
		case http.StatusOK:
			var mr serveMineReply
			_ = json.Unmarshal(body, &mr)
			st.mu.Lock()
			st.units += mr.Units
			if mr.Partial {
				st.partial++
			} else {
				st.ok++
			}
			if mr.Degraded {
				st.degraded++
			}
			st.mu.Unlock()
			return
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			st.mu.Lock()
			st.retries++
			st.mu.Unlock()
			d := backoff
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
					d = time.Duration(secs) * time.Second
				}
			}
			// The advice is capped so a short soak can't stall on one
			// pessimistic estimate.
			if d > 2*time.Second {
				d = 2 * time.Second
			}
			time.Sleep(d)
			backoff *= 2
		default:
			st.mu.Lock()
			st.failures++
			st.mu.Unlock()
			return
		}
	}
	st.mu.Lock()
	st.gaveUp++
	st.mu.Unlock()
}

// fetchHealthz reads the server's health document; any status code is
// fine (a draining server answers 503 with a body).
func fetchHealthz(client *http.Client, baseURL string) (serveHealthz, error) {
	var h serveHealthz
	resp, err := client.Get(baseURL + "/healthz")
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return h, err
	}
	if err := json.Unmarshal(body, &h); err != nil {
		return h, fmt.Errorf("parsing /healthz: %w", err)
	}
	return h, nil
}

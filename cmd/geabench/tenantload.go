package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the multi-tenant session load generator behind
// "geabench -serve URL -tenants N": the BENCH series for the
// generation-keyed result cache measured across the HTTP boundary. It
// first measures the cold-vs-cached contrast on one fresh session (the
// serve.mine/serve.aggregate .cold/.cached cells), then drives N tenant
// sessions concurrently with a mix of shared and tenant-distinct
// requests — shared keys exercise cross-tenant cache hits and
// single-flight, distinct keys keep the cache honest — retrying 429/503
// answers per Retry-After exactly like the plain -serve loader.

// cachedReps is how many identical runs the cached cells take their
// best-of wall from; the first run of each pair is the cold cell.
const cachedReps = 3

// sessionRunReply is the subset of the server's /session/<id>/run body
// the load generator reads.
type sessionRunReply struct {
	Session    string `json:"session"`
	Op         string `json:"op"`
	Generation uint64 `json:"generation"`
	Units      int64  `json:"units"`
	Partial    bool   `json:"partial"`
	Source     string `json:"source"`
	Cached     bool   `json:"cached"`
	Throttled  bool   `json:"throttled"`
	WallNS     int64  `json:"wall_ns"`
}

// sessionCreateReply is the subset of the 201 body the loader reads.
type sessionCreateReply struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
}

// tenantLoadStats tallies outcomes across all tenant clients.
type tenantLoadStats struct {
	mu        sync.Mutex
	computed  int64
	hits      int64
	shared    int64
	partials  int64
	throttled int64
	retries   int64
	gaveUp    int64
	failures  int64
	units     int64
}

// runTenantLoad drives the session workload and records the cache BENCH
// cells. Like the plain loader it fails only when the server is
// unreachable or no request completed.
func runTenantLoad(e *env, baseURL string, tenants, requests int) error {
	client := &http.Client{Timeout: 120 * time.Second}
	health, err := fetchHealthz(client, baseURL)
	if err != nil {
		return fmt.Errorf("server unreachable: %w", err)
	}
	fmt.Printf("server at %s: status %q, state %q\n", baseURL, health.Status, health.State)

	// Phase 1: cold-vs-cached cells on one fresh session. Server-generated
	// IDs keep repeated soaks against one server collision-free.
	coldID, err := createSession(client, baseURL, "bench-cold")
	if err != nil {
		return fmt.Errorf("creating measurement session: %w", err)
	}
	// The timed cells use the server-reported dispatch wall (wall_ns):
	// response encoding and transfer cost the same on both paths, so
	// folding them in would only blur the compute-vs-lookup contrast the
	// cells exist to show. The client-observed walls are printed too.
	for _, probe := range []struct{ op, body string }{
		{"mine", `{"op":"mine","params":{"tissue":"brain"}}`},
		{"aggregate", `{"op":"aggregate","params":{"tissue":"brain","median":"true"}}`},
	} {
		coldClient, coldReply, err := timedRun(client, baseURL, coldID, probe.body)
		if err != nil {
			return fmt.Errorf("cold %s: %w", probe.op, err)
		}
		if coldReply.Source != "computed" {
			// A warm server (repeated soak) already holds the key; the
			// "cold" wall is then a hit wall and the contrast collapses.
			fmt.Printf("  note: cold %s answered from %s — server cache already warm\n",
				probe.op, coldReply.Source)
		}
		coldWall := serverWall(coldReply, coldClient)
		bestCached := time.Duration(0)
		bestClient := time.Duration(0)
		var cachedReply sessionRunReply
		for r := 0; r < cachedReps; r++ {
			clientWall, reply, err := timedRun(client, baseURL, coldID, probe.body)
			if err != nil {
				return fmt.Errorf("cached %s: %w", probe.op, err)
			}
			if wall := serverWall(reply, clientWall); bestCached == 0 || wall < bestCached {
				bestCached, bestClient, cachedReply = wall, clientWall, reply
			}
		}
		speedup := float64(coldWall) / float64(bestCached)
		fmt.Printf("  serve.%s: cold %v (%s) vs cached %v (%s) — %.1fx (client walls %v / %v)\n",
			probe.op, coldWall.Round(time.Microsecond), coldReply.Source,
			bestCached.Round(time.Microsecond), cachedReply.Source, speedup,
			coldClient.Round(time.Microsecond), bestClient.Round(time.Microsecond))
		e.bench = append(e.bench,
			benchRecord{
				Op: "serve." + probe.op + ".cold", Workers: 1,
				WallNS: coldWall.Nanoseconds(), Wall: coldWall.Round(time.Microsecond).String(),
				Units: coldReply.Units, Reps: 1,
			},
			benchRecord{
				Op: "serve." + probe.op + ".cached", Workers: 1,
				WallNS: bestCached.Nanoseconds(), Wall: bestCached.Round(time.Microsecond).String(),
				Units: cachedReply.Units, Reps: cachedReps,
			})
	}

	// Phase 2: N tenants in parallel, mixing one shared key (cross-tenant
	// hits and single-flight) with one tenant-distinct key (cache
	// honesty: distinct params must never share an entry).
	fmt.Printf("driving %d tenants x %d session runs\n", tenants, requests)
	ids := make([]string, tenants)
	for t := 0; t < tenants; t++ {
		id, err := createSession(client, baseURL, fmt.Sprintf("t%d", t))
		if err != nil {
			return fmt.Errorf("creating tenant session %d: %w", t, err)
		}
		ids[t] = id
	}
	st := &tenantLoadStats{}
	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < tenants; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			shared := `{"op":"aggregate","params":{"tissue":"brain"}}`
			distinct := fmt.Sprintf(`{"op":"select","params":{"tissue":"brain","minmean":"%d"}}`, 2+t)
			for r := 0; r < requests; r++ {
				body := shared
				if r%2 == 1 {
					body = distinct
				}
				st.request(client, baseURL, ids[t], body)
			}
		}(t)
	}
	wg.Wait()
	wall := time.Since(start)

	st.mu.Lock()
	completed := st.computed + st.hits + st.shared
	total := int64(tenants * requests)
	fmt.Printf("completed %d/%d runs in %v (%.1f req/s)\n",
		completed, total, wall.Round(time.Millisecond),
		float64(completed)/wall.Seconds())
	fmt.Printf("  computed        %d\n", st.computed)
	fmt.Printf("  cache hits      %d\n", st.hits)
	fmt.Printf("  single-flight   %d (joined an in-flight compute)\n", st.shared)
	fmt.Printf("  partials        %d (budget-shrunk, never cached)\n", st.partials)
	fmt.Printf("  throttled       %d (tenant envelope shaping)\n", st.throttled)
	fmt.Printf("  retries         %d (after 429/503 with Retry-After)\n", st.retries)
	fmt.Printf("  gave up         %d\n", st.gaveUp)
	fmt.Printf("  failures        %d\n", st.failures)
	st.mu.Unlock()

	e.bench = append(e.bench, benchRecord{
		Op: "serve.session", Workers: tenants, WallNS: wall.Nanoseconds(),
		Wall: wall.Round(time.Microsecond).String(), Units: st.units, Reps: int(completed),
	})

	// Drain: close every session (the cold one too) so a soak leaves the
	// server's table empty for the next round.
	for _, id := range append(ids, coldID) {
		req, _ := http.NewRequest(http.MethodDelete, baseURL+"/session/"+id, nil)
		if resp, err := client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	if after, err := fetchHealthz(client, baseURL); err == nil {
		fmt.Printf("server state after load: %q\n", after.State)
	}
	if completed == 0 {
		return fmt.Errorf("no session run completed: %d gave up, %d failures", st.gaveUp, st.failures)
	}
	return nil
}

// createSession POSTs /session with a tenant name and a server-chosen
// ID, retrying overload answers (a full table advertises Retry-After).
func createSession(client *http.Client, baseURL string, tenant string) (string, error) {
	body := fmt.Sprintf(`{"tenant":%q}`, tenant)
	backoff := 50 * time.Millisecond
	for attempt := 1; attempt <= serveLoadAttempts; attempt++ {
		resp, err := client.Post(baseURL+"/session", "application/json", strings.NewReader(body))
		if err != nil {
			return "", err
		}
		replyBody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusCreated:
			var reply sessionCreateReply
			if err := json.Unmarshal(replyBody, &reply); err != nil {
				return "", fmt.Errorf("parsing /session reply: %w", err)
			}
			return reply.ID, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			time.Sleep(retryDelay(resp, backoff))
			backoff *= 2
		default:
			return "", fmt.Errorf("/session: status %d: %s", resp.StatusCode, replyBody)
		}
	}
	return "", fmt.Errorf("retry budget of %d exhausted creating a session", serveLoadAttempts)
}

// serverWall prefers the server-reported dispatch wall, falling back to
// the client-observed one against servers that predate the field.
func serverWall(reply sessionRunReply, clientWall time.Duration) time.Duration {
	if reply.WallNS > 0 {
		return time.Duration(reply.WallNS)
	}
	return clientWall
}

// timedRun issues one session run and reports its client-observed wall.
func timedRun(client *http.Client, baseURL string, id, body string) (time.Duration, sessionRunReply, error) {
	start := time.Now()
	reply, code, err := postSessionRun(client, baseURL, id, body)
	wall := time.Since(start)
	if err != nil {
		return 0, reply.sessionRunReply, err
	}
	if code != http.StatusOK {
		return 0, reply.sessionRunReply, fmt.Errorf("status %d", code)
	}
	return wall, reply.sessionRunReply, nil
}

// request issues one logical session run for the concurrent phase,
// folding the outcome into the tally.
func (st *tenantLoadStats) request(client *http.Client, baseURL string, id, body string) {
	reply, code, err := postSessionRun(client, baseURL, id, body)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.retries += int64(reply.retriesTaken)
	switch {
	case err != nil && reply.retriesTaken >= serveLoadAttempts:
		st.gaveUp++
	case err != nil || code != http.StatusOK:
		st.failures++
	default:
		st.units += reply.Units
		switch reply.Source {
		case "hit":
			st.hits++
		case "shared":
			st.shared++
		default:
			st.computed++
		}
		if reply.Partial {
			st.partials++
		}
		if reply.Throttled {
			st.throttled++
		}
	}
}

// runReply wraps the wire reply with the retry count the POST consumed.
type runReply struct {
	sessionRunReply
	retriesTaken int
}

// postSessionRun POSTs one run, honoring Retry-After on 429/503 with the
// same capped backoff as the other loaders.
func postSessionRun(client *http.Client, baseURL string, id, body string) (runReply, int, error) {
	var out runReply
	backoff := 50 * time.Millisecond
	for attempt := 1; attempt <= serveLoadAttempts; attempt++ {
		resp, err := client.Post(baseURL+"/session/"+id+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			return out, 0, err
		}
		replyBody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			if err := json.Unmarshal(replyBody, &out.sessionRunReply); err != nil {
				return out, resp.StatusCode, fmt.Errorf("parsing run reply: %w", err)
			}
			return out, resp.StatusCode, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			out.retriesTaken++
			time.Sleep(retryDelay(resp, backoff))
			backoff *= 2
		default:
			return out, resp.StatusCode, fmt.Errorf("status %d: %s", resp.StatusCode, replyBody)
		}
	}
	return out, 0, fmt.Errorf("retry budget of %d exhausted", serveLoadAttempts)
}

// retryDelay reads the server's Retry-After advice, capped so a short
// soak cannot stall on one pessimistic estimate.
func retryDelay(resp *http.Response, backoff time.Duration) time.Duration {
	d := backoff
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			d = time.Duration(secs) * time.Second
		}
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// Command geacheck is GEA's own static-analysis suite: a multichecker
// that machine-enforces the operator-algebra and execution-governance
// invariants (checkpointed loops, With/Ctx/legacy triads, lock
// discipline, sentinel wrapping, flagged partial results, no naked
// panics) plus the //lint:gea suppression grammar.
//
// Usage, from the module root:
//
//	go run ./cmd/geacheck ./...
//	go run ./cmd/geacheck -list
//	go run ./cmd/geacheck -only ctlcharge,locksafe ./internal/...
//
// Exit status is 0 when clean, 1 when findings were printed, 2 on a
// usage or load error. ANALYSIS.md catalogues every analyzer, an
// example diagnostic, and how to suppress a false positive.
package main

import (
	"os"

	"gea/internal/analysis/geacheck"
)

func main() {
	os.Exit(geacheck.Main(os.Stdout, os.Stderr, os.Args[1:]))
}

package gea

import (
	"gea/internal/columnar"
	"gea/internal/core"
)

// Columnar block engine (internal/columnar). The algebra's operators run
// on either of two engines over the same Dataset: the row engine scans
// Expr directly, the columnar engine scans block-partitioned compressed
// columns behind per-block zone maps that let selective operators skip
// whole blocks. The two are bit-identical — same results, same unit
// charges, same partial prefixes — so the engine choice is purely a
// performance knob; see DESIGN.md's "Columnar storage engine" section.
type (
	// Engine selects the execution engine for an operator call.
	Engine = core.Engine
	// RangeSpec is a zone-prunable range selection over a SUMY table's
	// statistic column, the engine-dispatched form of SelectSumy.
	RangeSpec = core.RangeSpec
)

// Engine settings: EngineAuto uses the columnar view when the dataset
// already has one memoised (never building as a side effect), EngineRow
// forces the row scans, EngineColumnar builds the view on first use.
const (
	EngineAuto     = core.EngineAuto
	EngineRow      = core.EngineRow
	EngineColumnar = core.EngineColumnar
)

var (
	// ParseEngine parses "auto", "row" or "columnar".
	ParseEngine = core.ParseEngine
	// DiffEngineCtx is the governed engine-dispatched Diff.
	DiffEngineCtx = core.DiffEngineCtx
	// SelectSumyRangeCtx is the governed engine-dispatched range
	// selection over a SUMY table.
	SelectSumyRangeCtx = core.SelectSumyRangeCtx
)

// EnableColumnar builds and memoises the dataset's columnar view so
// subsequent EngineAuto calls pick it up. Building is idempotent: the
// view is constructed once and shared until the dataset is released.
func EnableColumnar(d *Dataset) {
	columnar.Of(d)
}

// PublishColumnarMetrics records the compression profile of the
// dataset's memoised columnar view — block count, encoded and raw
// bytes, the per-block encode-ratio histogram — into the registry
// under the "columnar." family. A dataset without a built view (or a
// nil registry) publishes nothing.
func PublishColumnarMetrics(reg *ObsRegistry, d *Dataset) {
	columnar.PublishMetrics(reg, columnar.Peek(d))
}

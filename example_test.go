package gea_test

import (
	"fmt"

	"gea"
)

// ExampleDiff reproduces the worked example of thesis Figure 3.5: the GAP
// table between two SUMY tables over their common tags, with the NULL
// overlap case.
func ExampleDiff() {
	tag := func(n int) gea.TagID { return gea.TagID(n) }
	s1 := gea.NewSumy("SUMY1", []gea.SumyRow{
		{Tag: tag(1), Range: gea.NewInterval(5, 5), Mean: 5, Std: 0},
		{Tag: tag(2), Range: gea.NewInterval(0, 7), Mean: 3, Std: 1},
		{Tag: tag(3), Range: gea.NewInterval(10, 120), Mean: 70, Std: 15},
		{Tag: tag(4), Range: gea.NewInterval(0, 20), Mean: 10, Std: 4},
	}, nil)
	s2 := gea.NewSumy("SUMY2", []gea.SumyRow{
		{Tag: tag(1), Range: gea.NewInterval(0, 14), Mean: 7, Std: 1},
		{Tag: tag(3), Range: gea.NewInterval(10, 130), Mean: 60, Std: 25},
		{Tag: tag(4), Range: gea.NewInterval(0, 12), Mean: 3, Std: 1},
		{Tag: tag(5), Range: gea.NewInterval(0, 50), Mean: 20, Std: 15},
	}, nil)
	g, err := gea.Diff("GAP", s1, s2)
	if err != nil {
		panic(err)
	}
	for _, r := range g.Rows {
		fmt.Printf("Tag%d gap=%s\n", int(r.Tag), r.Values[0])
	}
	// Output:
	// Tag1 gap=-1.00
	// Tag3 gap=NULL
	// Tag4 gap=2.00
}

// ExampleIndicesRequired reproduces the first row of thesis Table 3.1.
func ExampleIndicesRequired() {
	m, err := gea.IndicesRequired(60000, 25000, 1, gea.DefaultConfidence)
	if err != nil {
		panic(err)
	}
	fmt.Printf("indexes for a 99.9%% chance of 1 hit: %d\n", m)
	// Output:
	// indexes for a 99.9% chance of 1 hit: 17
}

// ExampleClassifyIntervals shows Allen's thirteen relations (Table 4.1) and
// their composition.
func ExampleClassifyIntervals() {
	a := gea.NewInterval(0, 5)
	b := gea.NewInterval(3, 9)
	fmt.Println(gea.ClassifyIntervals(a, b))
	fmt.Println(gea.ComposeRelations(gea.Overlaps, gea.Overlaps))
	// Output:
	// overlaps
	// {b,m,o}
}

// ExampleMinusGap reproduces Figure 3.6c: the tag-level set minus of two
// GAP tables.
func ExampleMinusGap() {
	tag := func(n int) gea.TagID { return gea.TagID(n) }
	g1, _ := gea.NewGap("GAP1", []string{"gap"}, []gea.GapRow{
		{Tag: tag(1), Values: []gea.GapValue{{V: -11}}},
		{Tag: tag(2), Values: []gea.GapValue{{V: 2}}},
		{Tag: tag(3), Values: []gea.GapValue{gea.NullGap}},
		{Tag: tag(4), Values: []gea.GapValue{{V: 5}}},
	})
	g2, _ := gea.NewGap("GAP2", []string{"gap"}, []gea.GapRow{
		{Tag: tag(1), Values: []gea.GapValue{{V: -8}}},
		{Tag: tag(3), Values: []gea.GapValue{{V: 9}}},
		{Tag: tag(4), Values: []gea.GapValue{{V: 10}}},
		{Tag: tag(5), Values: []gea.GapValue{{V: 11}}},
	})
	g3, err := gea.MinusGap("GAP3", g1, g2)
	if err != nil {
		panic(err)
	}
	for _, r := range g3.Rows {
		fmt.Printf("Tag%d gap=%s\n", int(r.Tag), r.Values[0])
	}
	// Output:
	// Tag2 gap=2.00
}

// ExampleParseTag shows the 10-bp SAGE tag codec.
func ExampleParseTag() {
	id, err := gea.ParseTag("CCTTGAGTAC")
	if err != nil {
		panic(err)
	}
	fmt.Println(id.String())
	// Output:
	// CCTTGAGTAC
}

// ExampleAudicClaverieP shows the xProfiler significance test on SAGE
// counts.
func ExampleAudicClaverieP() {
	// 30 counts in a pool of 10,000 vs 2 in a pool of 10,000.
	p := gea.AudicClaverieP(30, 2, 10000, 10000)
	fmt.Printf("significant: %v\n", p < 0.01)
	// Output:
	// significant: true
}

// Command brainstudy reproduces case studies 1 and 2 of the thesis on
// synthetic data: cancerous brain versus normal brain tissue (Figures 4.2
// and 4.3) and cancerous brain inside versus outside the fascicle
// (Figure 4.11). For each marker gene it prints the per-library expression
// levels in the three groups, as the thesis's bar charts do.
package main

import (
	"fmt"
	"log"
	"strings"

	"gea"
)

func main() {
	log.SetFlags(0)
	res, err := gea.Generate(gea.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	sys, err := gea.NewSystem(res.Corpus, gea.SystemOptions{
		User: "brainstudy", Catalog: res.Catalog, GeneDBSeed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Steps 1-5 of case study 1.
	brain, err := sys.CreateTissueDataset("brain")
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.GenerateMetadata("brain", 10); err != nil {
		log.Fatal(err)
	}
	pure, err := sys.FindPureFascicle("brain", gea.PropCancer, 3)
	if err != nil {
		log.Fatal(err)
	}
	groups, err := sys.FormSUM(pure, "brain")
	if err != nil {
		log.Fatal(err)
	}

	// Step 6: GAP1 = diff(SUMY1, SUMY3) — cancer-in-fascicle vs normal.
	gap1, err := sys.CreateGap("gap_canvsnor", groups.InFascicle, groups.Opposite)
	if err != nil {
		log.Fatal(err)
	}
	// Case 2: GAP2 = diff(SUMY1, SUMY2) — inside vs outside the fascicle.
	gap2, err := sys.CreateGap("gap_canvscnif", groups.InFascicle, groups.SameNotInFascicle)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 4.2 / 4.3 / 4.11: marker-gene distributions.
	fas, _ := sys.Fascicle(pure)
	inFas := map[string]bool{}
	for _, n := range fas.Fascicle.LibraryNames(brain) {
		inFas[n] = true
	}
	for _, marker := range []struct {
		gene, figure, contrast string
	}{
		{gea.GeneRibosomalL12, "Figure 4.2", "higher in cancerous-in-fascicle than normal"},
		{gea.GeneAlphaTubulin, "Figure 4.3", "near zero in cancerous-in-fascicle, high in normal"},
		{gea.GeneADPProtein, "Figure 4.11", "lower inside the fascicle than outside"},
	} {
		g, ok := res.Catalog.ByName(marker.gene)
		if !ok {
			log.Fatalf("marker %s missing", marker.gene)
		}
		fmt.Printf("\n%s — %s (%s): %s\n", marker.figure, marker.gene, g.Tag, marker.contrast)
		printDistribution(sys, brain, g.Tag, inFas)
	}

	// Step 7 outputs: the sorted non-overlapping gaps.
	fmt.Println("\ncase 1 — top gaps, cancer-in-fascicle vs normal (Figure 4.9 list):")
	printTop(sys, gap1.Name, 10)
	fmt.Println("\ncase 2 — top gaps, inside vs outside the fascicle (Figure 4.12 list):")
	printTop(sys, gap2.Name, 10)

	// The thesis's observation: gaps against normal are larger than gaps
	// against cancer-outside.
	sumAbs := func(g *gea.Gap) (s float64) {
		for _, r := range g.Rows {
			if !r.Values[0].Null {
				if r.Values[0].V < 0 {
					s -= r.Values[0].V
				} else {
					s += r.Values[0].V
				}
			}
		}
		return s
	}
	fmt.Printf("\ntotal |gap| vs normal: %.0f   vs cancer-outside: %.0f  (normal should dominate)\n",
		sumAbs(gap1), sumAbs(gap2))
}

// printDistribution plots a tag's expression values per library group, with
// a crude text bar per library (the Figure 4.10 visualization).
func printDistribution(sys *gea.System, brain *gea.Dataset, tag gea.TagID, inFas map[string]bool) {
	fr, names, err := gea.SingleTagSearch(brain, tag, nil)
	if err != nil {
		log.Fatal(err)
	}
	groups := []struct {
		label string
		match func(gea.LibraryMeta) bool
	}{
		{"cancer in fascicle", func(m gea.LibraryMeta) bool { return m.State == gea.Cancer && inFas[m.Name] }},
		{"cancer not in fascicle", func(m gea.LibraryMeta) bool { return m.State == gea.Cancer && !inFas[m.Name] }},
		{"normal", func(m gea.LibraryMeta) bool { return m.State == gea.Normal }},
	}
	var max float64
	for _, v := range fr.Values {
		if v > max {
			max = v
		}
	}
	for _, grp := range groups {
		var sum float64
		var n int
		for i, name := range names {
			m, err := sys.LibraryInfo(name)
			if err != nil || !grp.match(m) {
				continue
			}
			bar := 0
			if max > 0 {
				bar = int(40 * fr.Values[i] / max)
			}
			fmt.Printf("  %-28s %10.1f %s\n", name, fr.Values[i], strings.Repeat("*", bar))
			sum += fr.Values[i]
			n++
		}
		if n > 0 {
			fmt.Printf("  %-28s %10.1f  (average over %d)\n", "["+grp.label+"]", sum/float64(n), n)
		}
	}
}

func printTop(sys *gea.System, gapName string, x int) {
	top, err := sys.CalculateTopGap(gapName, x)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range top.Rows {
		gene := ""
		if sys.GeneDB != nil {
			if g, err := sys.GeneDB.GeneForTag(r.Tag); err == nil {
				gene = g
			}
		}
		fmt.Printf("  %s_%s  %s\n", r.Tag, r.Values[0], gene)
	}
}

// Command crosstissue reproduces case studies 3 and 4 of the thesis on
// synthetic data: genes that always have lower (or higher) expression in
// cancerous tissue across both brain and breast (Figure 4.13 — selection,
// projection and intersection of GAP tables, plus the thirteen comparison
// queries), and genes unique to one type of cancer (Figure 4.14 — set minus
// between GAP tables).
package main

import (
	"fmt"
	"log"

	"gea"
)

// buildTissueGap runs the case-study-1 pipeline for one tissue and returns
// the name of its cancer-in-fascicle vs normal GAP table. Cluster analysis
// is a multi-step process: the right compact-attribute count k differs per
// tissue (the thesis's CDInfo relation stores a per-tissue threshold), so we
// scan k from strict to loose until a pure cancerous fascicle appears.
func buildTissueGap(sys *gea.System, tissue string) (string, error) {
	d, err := sys.CreateTissueDataset(tissue)
	if err != nil {
		return "", err
	}
	if err := sys.GenerateMetadata(tissue, 10); err != nil {
		return "", err
	}
	_ = d
	pure, err := sys.FindPureFascicle(tissue, gea.PropCancer, 3)
	if err != nil {
		return "", err
	}
	groups, err := sys.FormSUM(pure, tissue)
	if err != nil {
		return "", err
	}
	gapName := tissue + "_canvsnor_gap"
	if _, err := sys.CreateGap(gapName, groups.InFascicle, groups.Opposite); err != nil {
		return "", err
	}
	return gapName, nil
}

func main() {
	log.SetFlags(0)
	res, err := gea.Generate(gea.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	sys, err := gea.NewSystem(res.Corpus, gea.SystemOptions{
		User: "crosstissue", Catalog: res.Catalog, GeneDBSeed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	brainGap, err := buildTissueGap(sys, "brain")
	if err != nil {
		log.Fatal(err)
	}
	breastGap, err := buildTissueGap(sys, "breast")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s and %s\n", brainGap, breastGap)

	// ----- Case 3: genes always lower in cancer in BOTH tissue types. -----
	// The thesis route: select negative gaps per tissue, project to tags,
	// intersect. The GEA's compare window does this in one step: intersect
	// the gaps and run query 2.
	inter, err := sys.CompareGaps("brainBreastIntersect1", brainGap, breastGap, gea.OpIntersect)
	if err != nil {
		log.Fatal(err)
	}
	lower, err := gea.ApplyQuery("alwaysLower", inter, gea.QLowerInABoth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncase 3 — tags always LOWER in cancer (both tissues): %d\n", lower.Len())
	printGapRows(sys, lower, 10)

	higher, err := gea.ApplyQuery("alwaysHigher", inter, gea.QHigherInABoth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncase 3 — tags always HIGHER in cancer (both tissues): %d (possible drug targets)\n",
		higher.Len())
	printGapRows(sys, higher, 10)

	// Housekeeping-style sanity: query 5 counts tags with a real contrast in
	// both tissues.
	both, err := gea.ApplyQuery("bothNonNull", inter, gea.QNonNullBoth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntags with non-null gaps in both tissues: %d of %d common tags\n",
		both.Len(), inter.Len())

	// ----- Case 4: genes unique to one type of cancer. -----
	// First select the tags with a real contrast in each tissue (non-null
	// gaps), then set-minus: responsive in brain, unresponsive in breast.
	bg, err := sys.Gap(brainGap)
	if err != nil {
		log.Fatal(err)
	}
	rg, err := sys.Gap(breastGap)
	if err != nil {
		log.Fatal(err)
	}
	brainNN, err := gea.SelectGap("brainNonNull", bg, gea.GapNonNull(0))
	if err != nil {
		log.Fatal(err)
	}
	breastNN, err := gea.SelectGap("breastNonNull", rg, gea.GapNonNull(0))
	if err != nil {
		log.Fatal(err)
	}
	diff, err := gea.MinusGap("brainBreastDiff1", brainNN, breastNN)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.RegisterGap(diff, "minus", brainGap, breastGap); err != nil {
		log.Fatal(err)
	}
	uniqueLower, err := gea.ApplyQuery("uniqueLower", diff, gea.QLowerInABoth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncase 4 — tags with a cancer contrast ONLY in brain, lower in cancer: %d\n",
		uniqueLower.Len())
	printGapRows(sys, uniqueLower, 10)

	uniqueHigher, err := gea.ApplyQuery("uniqueHigher", diff, gea.QHigherInABoth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncase 4 — tags with a cancer contrast ONLY in brain, higher in cancer: %d\n",
		uniqueHigher.Len())
	printGapRows(sys, uniqueHigher, 10)

	fmt.Println("\nlineage of this analysis:")
	fmt.Print(sys.Lineage.Tree())
}

func printGapRows(sys *gea.System, g *gea.Gap, max int) {
	for i, r := range g.Rows {
		if i >= max {
			fmt.Printf("  ... and %d more\n", g.Len()-max)
			return
		}
		gene := ""
		if sys.GeneDB != nil {
			if gn, err := sys.GeneDB.GeneForTag(r.Tag); err == nil {
				gene = gn
			}
		}
		line := "  " + r.Tag.String()
		for _, v := range r.Values {
			line += "_" + v.String()
		}
		fmt.Printf("%s  %s\n", line, gene)
	}
}

// Command eisen reproduces the Eisen-style one-step analysis the thesis
// reviews (Section 2.3.2) using the toolkit's baseline clusterers, then
// contrasts it with the GEA's fascicle pipeline: hierarchical clustering of
// libraries and of genes with correlation distance, the clustered heat map,
// an OPTICS reachability plot (Ng et al.'s view of the same data) — and,
// finally, the candidate genes that one-step clustering never surfaces.
package main

import (
	"fmt"
	"log"
	"math"

	"gea"
)

func main() {
	log.SetFlags(0)
	res, err := gea.Generate(gea.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	sys, err := gea.NewSystem(res.Corpus, gea.SystemOptions{User: "eisen", Catalog: res.Catalog, GeneDBSeed: 1})
	if err != nil {
		log.Fatal(err)
	}
	brain, err := sys.CreateTissueDataset("brain")
	if err != nil {
		log.Fatal(err)
	}

	// ---- Cluster the libraries (Eisen's columns). ----
	libLabels := make([]string, brain.NumLibraries())
	for i, m := range brain.Libs {
		tag := "N"
		if m.State == gea.Cancer {
			tag = "C"
		}
		libLabels[i] = fmt.Sprintf("%s_%02d", tag, m.ID)
	}
	dg, err := gea.Hierarchical(brain.Expr, gea.CorrelationDistance, gea.AverageLinkage)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := gea.RenderDendrogram(dg, libLabels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("library dendrogram (average linkage, correlation distance):")
	fmt.Print(tree)

	// ---- Cluster the genes (Eisen's rows): top-variable tags. ----
	top := gea.TopVariableTags(brain, 24)
	geneRows := make([][]float64, len(top))
	geneLabels := make([]string, len(top))
	for i, tg := range top {
		fr, _, err := gea.SingleTagSearch(brain, tg, nil)
		if err != nil {
			log.Fatal(err)
		}
		geneRows[i] = fr.Values
		geneLabels[i] = tg.String()
		if g, ok := res.Catalog.ByTag(tg); ok {
			geneLabels[i] = g.Name
		}
	}
	gdg, err := gea.Hierarchical(geneRows, gea.CorrelationDistance, gea.AverageLinkage)
	if err != nil {
		log.Fatal(err)
	}
	ordRows, ordLabels, err := gea.Reorder(geneRows, geneLabels, gdg.Leaves())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nclustered heat map (genes x libraries, per-gene scaling):")
	fmt.Printf("%24s %s\n", "", header(libLabels))
	hm, err := gea.TextHeatmap(ordRows, pad(ordLabels, 24))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(hm)

	// ---- OPTICS reachability (Ng, Sander, Sleumer on SAGE). ----
	order, err := gea.OPTICS(brain.Expr, gea.OPTICSConfig{Eps: math.Inf(1), MinPts: 3})
	if err != nil {
		log.Fatal(err)
	}
	plot, err := gea.ReachabilityPlot(order, libLabels, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nOPTICS reachability plot (valleys are clusters):")
	fmt.Print(plot)

	// ---- The thesis's point: none of the above names candidate genes. ----
	if err := sys.GenerateMetadata("brain", 10); err != nil {
		log.Fatal(err)
	}
	pure, err := sys.FindPureFascicle("brain", gea.PropCancer, 3)
	if err != nil {
		log.Fatal(err)
	}
	groups, err := sys.FormSUM(pure, "brain")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.CreateGap("eisenGap", groups.InFascicle, groups.Opposite); err != nil {
		log.Fatal(err)
	}
	topGap, err := sys.CalculateTopGap("eisenGap", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\none-step clustering groups libraries but names no genes; the GEA's")
	fmt.Println("fascicle + gap pipeline on the same data yields candidates:")
	for _, r := range topGap.Rows {
		gene := r.Tag.String()
		if g, ok := res.Catalog.ByTag(r.Tag); ok {
			gene = g.Name
		}
		fmt.Printf("  %-22s gap=%s\n", gene, r.Values[0])
	}
}

// header renders one-character column markers (C cancer / N normal).
func header(libLabels []string) string {
	b := make([]byte, len(libLabels))
	for i, l := range libLabels {
		b[i] = l[0]
	}
	return string(b)
}

func pad(labels []string, w int) []string {
	out := make([]string, len(labels))
	for i, l := range labels {
		if len(l) > w {
			l = l[:w]
		}
		out[i] = l
	}
	return out
}

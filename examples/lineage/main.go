// Command lineage demonstrates the GEA's workflow-management features: the
// lineage graph of Section 4.4.2 (history, comments, content dropping with
// metadata replay, cascading deletion), case study 5's verification via
// user-defined ENUM tables (Figure 4.15), range arithmetic over SUMY tables
// (Figures 4.16-4.17), the general database searches (Figures 4.23-4.26),
// the Expression Analysis Database searches (Figure 4.22), and the
// authentication features of Appendix III.
package main

import (
	"fmt"
	"log"

	"gea"
)

func main() {
	log.SetFlags(0)

	// ----- Appendix III: authentication. -----
	users, err := gea.NewUserDB("admin", "gea-admin")
	if err != nil {
		log.Fatal(err)
	}
	admin, err := users.Login("admin", "gea-admin", gea.RoleAdmin)
	if err != nil {
		log.Fatal(err)
	}
	if err := users.AddUser(admin, "jessica", "sage2001", gea.RoleUser); err != nil {
		log.Fatal(err)
	}
	jessica, err := users.Login("jessica", "sage2001", gea.RoleUser)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("logged in as %s (%s)\n", jessica.Name, jessica.Role)
	if _, err := users.Login("jessica", "wrong", gea.RoleUser); err != nil {
		fmt.Printf("bad login rejected: %v\n", err)
	}

	// ----- Build a session and run a short analysis. -----
	res, err := gea.Generate(gea.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	sys, err := gea.NewSystem(res.Corpus, gea.SystemOptions{
		User: jessica.Name, Catalog: res.Catalog, GeneDBSeed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	brain, err := sys.CreateTissueDataset("brain")
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.GenerateMetadata("brain", 10); err != nil {
		log.Fatal(err)
	}
	pure, err := sys.FindPureFascicle("brain", gea.PropCancer, 3)
	if err != nil {
		log.Fatal(err)
	}
	groups, err := sys.FormSUM(pure, "brain")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.CreateGap("canvsnor", groups.InFascicle, groups.Opposite); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.CalculateTopGap("canvsnor", 5); err != nil {
		log.Fatal(err)
	}

	// ----- Lineage: comments, drop, regenerate, cascade. -----
	if err := sys.Lineage.SetComment(pure, "the compact tags in this fascicle are very interesting"); err != nil {
		log.Fatal(err)
	}
	node, err := sys.Lineage.Get(pure)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfascicle %s: op=%s params=%v\ncomment: %s\n",
		node.Name, node.Operation, node.Params, node.Comment)

	// Drop the GAP table's contents (keeping its metadata), show the replay
	// plan, and rebuild it from the recorded operations.
	if err := sys.DropContents("canvsnor"); err != nil {
		log.Fatal(err)
	}
	plan, err := sys.Lineage.RegenerationPlan("canvsnor")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nregeneration plan for the dropped GAP table:")
	for _, step := range plan {
		fmt.Printf("  %s via %s(%v)\n", step.Name, step.Operation, step.Inputs)
	}
	regenerated, err := sys.Regenerate("canvsnor")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("regenerated %s: %d rows\n", regenerated.Name, regenerated.Len())

	// ----- Case 5: verification with user-defined ENUM tables. -----
	// "We might wonder whether the outcome ... would be affected by the
	// removal of certain libraries": rebuild the data set without the last
	// brain library and redo the aggregation.
	var keep []string
	for i, m := range brain.Libs {
		if i != brain.NumLibraries()-1 {
			keep = append(keep, m.Name)
		}
	}
	newBrain, err := sys.CreateCustomDataset("newBrain", keep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncase 5: user-defined tissue type newBrain has %d of %d brain libraries\n",
		newBrain.NumLibraries(), brain.NumLibraries())
	full := gea.FullEnum("newBrainEnum", newBrain)
	cancer := full.SelectRows("newBrainCancer", func(m gea.LibraryMeta) bool { return m.State == gea.Cancer })
	redo, err := gea.Aggregate("newBrainCancerSumy", cancer, gea.AggregateOptions{WithMedian: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-aggregated %d tags over the reduced cancer group (median included)\n", redo.Len())

	// ----- Range arithmetic (Figures 4.16-4.17). -----
	s1, err := sys.Sumy(groups.InFascicle)
	if err != nil {
		log.Fatal(err)
	}
	s3, err := sys.Sumy(groups.Opposite)
	if err != nil {
		log.Fatal(err)
	}
	first := gea.MustParseTag("AAAAAAAAAA")
	last := gea.MustParseTag("CAAAAAAAAA")
	rows, err := gea.RangeSearch([]*gea.Sumy{s1, s3}, first, last,
		gea.BroadOverlap(gea.NewInterval(10, 700)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrange search (overlap [10,700]) over %s..%s: %d tags\n", first, last, len(rows))
	shown := 0
	for _, r := range rows {
		if r.Cells[0].Outcome != gea.RangeSatisfied && r.Cells[1].Outcome != gea.RangeSatisfied {
			continue
		}
		fmt.Printf("  %s  inFascicle=%s  normal=%s\n", r.Tag, cell(r.Cells[0]), cell(r.Cells[1]))
		if shown++; shown >= 5 {
			break
		}
	}
	hits := gea.AnyTagSearch(s3, gea.StrictRelation(gea.Includes, gea.NewInterval(5, 700)))
	fmt.Printf("tags in %s whose range strictly includes [5,700]: %d\n", s3.Name, len(hits))

	// ----- General database searches (Figures 4.23-4.26). -----
	info, err := sys.LibraryInfo("1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlibrary 1: %s, %s, %s, %s, total=%.0f unique=%d\n",
		info.Name, info.Tissue, info.State, info.Source, info.TotalTags, info.UniqueTags)
	types := sys.TissueTypes()
	for _, t := range []string{"brain", "breast", "kidney"} {
		fmt.Printf("tissue %-7s %d libraries\n", t, len(types[t]))
	}

	// ----- EADB searches (Figure 4.22). -----
	g, _ := res.Catalog.ByName(gea.GeneRibosomalL12)
	gene, err := sys.GeneDB.GeneForTag(g.Tag)
	if err != nil {
		log.Fatal(err)
	}
	geneRel, err := sys.GeneDB.GenesForTags([]gea.TagID{g.Tag})
	if err != nil {
		log.Fatal(err)
	}
	prot, err := sys.GeneDB.ProteinsForGenes(geneRel)
	if err != nil {
		log.Fatal(err)
	}
	pubs, err := sys.GeneDB.PublicationsForGene(gene)
	if err != nil {
		log.Fatal(err)
	}
	seq := prot.Rows[0][1].Str()
	fmt.Printf("\nEADB: tag %s -> gene %q -> protein sequence %s... (%d aa), %d publications\n",
		g.Tag, gene, seq[:24], len(seq), pubs.Len())

	// ----- Cascade deletion frees the whole derivation. -----
	deleted, err := sys.DeleteCascade(pure)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeleting %s cascaded to %d tables: %v\n", pure, len(deleted), deleted)
}

func cell(c gea.RangeCell) string {
	if c.Outcome == gea.RangeSatisfied {
		return c.Range.String()
	}
	return c.Outcome.String()
}

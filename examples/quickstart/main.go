// Command quickstart is the smallest end-to-end GEA run: generate a
// synthetic SAGE corpus, clean it, mine fascicles on brain tissue, contrast
// the pure cancerous fascicle against normal tissue, and print the candidate
// genes with their annotations.
package main

import (
	"fmt"
	"log"

	"gea"
)

func main() {
	log.SetFlags(0)

	// 1. A synthetic SAGE corpus (substitute for the NCBI download).
	res, err := gea.Generate(gea.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d libraries over tissues %v\n",
		len(res.Corpus.Libraries), res.Corpus.TissueTypes())

	// 2. A GEA session: cleaning + catalog + gene databases.
	sys, err := gea.NewSystem(res.Corpus, gea.SystemOptions{
		User: "quickstart", Catalog: res.Catalog, GeneDBSeed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep := sys.CleanReport
	fmt.Printf("cleaning: %d -> %d unique tags (%.0f%% removed)\n",
		rep.UniqueTagsBefore, rep.UniqueTagsAfter, 100*rep.RemovedTagFraction())

	// 3. The brain tissue-type data set and its tolerance vector (10% of
	// each attribute's width).
	brain, err := sys.CreateTissueDataset("brain")
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.GenerateMetadata("brain", 10); err != nil {
		log.Fatal(err)
	}

	// 4-5. Mine fascicles, scanning the compact-attribute requirement from
	// strict to loose until a pure cancerous fascicle appears, and take the
	// tightest one.
	_ = brain
	pure, err := sys.FindPureFascicle("brain", gea.PropCancer, 3)
	if err != nil {
		log.Fatal(err)
	}
	f, _ := sys.Fascicle(pure)
	fmt.Printf("fascicle %s is PURE cancer: %d libraries, %d compact tags\n",
		pure, f.Fascicle.Size(), f.Fascicle.NumCompact())

	// 6. Control groups and the GAP against normal tissue.
	groups, err := sys.FormSUM(pure, "brain")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.CreateGap("canvsnor", groups.InFascicle, groups.Opposite); err != nil {
		log.Fatal(err)
	}
	top, err := sys.CalculateTopGap("canvsnor", 10)
	if err != nil {
		log.Fatal(err)
	}

	// 7. Candidate genes with integrated genomic annotations.
	fmt.Println("\ntop gaps (cancer-in-fascicle vs normal):")
	var tags []gea.TagID
	for _, r := range top.Rows {
		fmt.Printf("  %s  gap=%s\n", r.Tag, r.Values[0])
		tags = append(tags, r.Tag)
	}
	anns, err := sys.GeneDB.AnnotateTags(tags)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncandidate genes:")
	for _, a := range anns {
		fmt.Printf("  %-14s %-22s family=%-16s disease=%s\n",
			a.Tag, a.Gene, a.Family, a.Disease)
	}
}

package gea

import (
	"gea/internal/admission"
	"gea/internal/cluster"
	"gea/internal/core"
	"gea/internal/exec"
	"gea/internal/fascicle"
	"gea/internal/system"
	"gea/internal/xprofiler"
)

// Execution governance (internal/exec). Every long-running operator has a
// *Ctx variant taking a context.Context and ExecLimits: the computation
// polls cancellation and deadlines at checkpoints, a work budget degrades
// to an explicitly flagged partial result (ExecTrace.Partial), and panics
// are recovered into structured *ExecError values instead of crashing the
// session.
type (
	// ExecLimits bound a single operator call: Budget caps total work
	// units (0 = unlimited), CheckEvery sets the checkpoint cadence, and
	// Workers sets the intra-operator worker count for sharded scans
	// (<= 0 means 1; results are bit-identical at any setting, including
	// the partial prefix produced by a budget stop).
	ExecLimits = exec.Limits
	// ExecTrace reports what a governed call did: units charged,
	// checkpoints passed, and whether the result is partial.
	ExecTrace = exec.Trace
	// ExecError is a structured failure from a governed operator: the
	// operator name, the lineage node involved, and — for recovered
	// panics — the panic value and stack.
	ExecError = exec.ExecError
	// ExecHook observes checkpoints; install with WithExecHook for
	// deterministic fault injection (the execwalk test driver).
	ExecHook = exec.Hook
	// FascicleParamError is a typed mining-parameter rejection.
	FascicleParamError = fascicle.ParamError
	// ClusterParamError is a typed clustering-parameter rejection.
	ClusterParamError = cluster.ParamError
	// ErrBusy reports that a System operation gave up waiting for an
	// admission slot.
	ErrBusy = system.ErrBusy
	// ErrOverload reports that a System operation was rejected
	// immediately because the admission queue was full; it carries
	// retry-after advice.
	ErrOverload = admission.ErrOverload
	// AdmissionState is the session's load-shedding state (healthy,
	// degraded, saturated); see System.AdmissionState and ShapeLimits.
	AdmissionState = admission.State
	// AdmissionStats is the point-in-time admission queue snapshot
	// System.AdmissionStats returns, JSON-ready for health endpoints.
	AdmissionStats = admission.Stats
)

var (
	// ErrWorkBudget is the sentinel inside budget-exhaustion errors (a
	// budget stop on a collection-valued operator is NOT an error — the
	// partial result is returned flagged; this sentinel appears only
	// where no partial value exists, e.g. FindPureFascicleCtx).
	ErrWorkBudget = exec.ErrBudget
	// IsCancellation reports whether an error is a context cancellation
	// or deadline expiry; IsBudget reports budget exhaustion.
	IsCancellation = exec.IsCancellation
	IsBudget       = exec.IsBudget
	// WithExecHook returns a context whose governed operators call the
	// hook at every checkpoint.
	WithExecHook = exec.WithHook
	// ErrShuttingDown is returned by governed System operations — and
	// handed to kicked admission waiters — once System.Shutdown begins.
	ErrShuttingDown = admission.ErrShutdown
)

// Governed operator variants. Each takes a context and ExecLimits and
// returns the result plus an ExecTrace.
var (
	// MineCtx / PopulateCtx / AggregateCtx / DiffCtx / RangeSearchCtx are
	// the governed forms of the core algebra.
	MineCtx        = core.MineCtx
	PopulateCtx    = core.PopulateCtx
	AggregateCtx   = core.AggregateCtx
	DiffCtx        = core.DiffCtx
	RangeSearchCtx = core.RangeSearchCtx
	// MineFasciclesLatticeCtx / MineFasciclesGreedyCtx are the governed
	// miners.
	MineFasciclesLatticeCtx = fascicle.LatticeCtx
	MineFasciclesGreedyCtx  = fascicle.GreedyCtx
	// Governed clustering baselines.
	HierarchicalCtx = cluster.HierarchicalCtx
	KMeansCtx       = cluster.KMeansCtx
	SOMCtx          = cluster.SOMCtx
	OPTICSCtx       = cluster.OPTICSCtx
	CASTCtx         = cluster.CASTCtx
	// XCompareCtx is the governed pooled differential test.
	XCompareCtx = xprofiler.CompareCtx
)

// Admission-control defaults of a System session.
const (
	DefaultMaxConcurrent = system.DefaultMaxConcurrent
	DefaultMaxQueue      = system.DefaultMaxQueue
	DefaultAdmitTimeout  = system.DefaultAdmitTimeout
)

// Admission load states, re-exported for matching against
// System.AdmissionState and the state ShapeLimits reports.
const (
	AdmissionHealthy   = admission.Healthy
	AdmissionDegraded  = admission.Degraded
	AdmissionSaturated = admission.Saturated
)

// Package gea is the Gene Expression Analyzer: a toolkit for multi-step
// cluster analysis of gene-expression (SAGE) data, reproducing the system of
// Phan's UBC thesis "GEA: A Toolkit for Gene Expression Analysis" (2001,
// demonstrated at SIGMOD 2002).
//
// The GEA is not a clustering algorithm; it is an algebra in which clusters
// have a dual identity. In the extensional world a cluster is an Enum — an
// explicit enumeration of libraries. In the intensional world it is a Sumy —
// its definition as per-tag ranges and moments — and contrasts between
// clusters are Gap tables. Operators close over these structures:
//
//	mine       fascicle production: Dataset -> clusters (Sumy + Enum)
//	aggregate  Enum -> Sumy
//	populate   Sumy x Dataset -> Enum (optimized with entropy-chosen indexes)
//	diff       Sumy x Sumy -> Gap
//	select / project / union / intersect / minus on Sumy and Gap tables
//	top-gap extraction, range arithmetic (Allen relations), searches
//
// so the output of one operation can become the input of another — multi-step
// analysis, not a one-shot clustering.
//
// Quick start:
//
//	res, _ := gea.Generate(gea.SmallConfig())        // synthetic SAGE corpus
//	sys, _ := gea.NewSystem(res.Corpus, gea.SystemOptions{})
//	sys.CreateTissueDataset("brain")
//	sys.GenerateMetadata("brain", 10)                // tolerance vector
//	pure, _ := sys.FindPureFascicle("brain", gea.PropCancer, 3)
//	groups, _ := sys.FormSUM(pure, "brain")
//	gap, _ := sys.CreateGap("canvsnor", groups.InFascicle, groups.Opposite)
//	top, _ := sys.CalculateTopGap("canvsnor", 10)    // candidate genes
//	_, _ = gap, top
//
// The sub-systems are re-exported here: the SAGE data model and synthetic
// generator, the cleaning pipeline, the fascicle miner, the baseline
// clusterers (hierarchical, k-means, SOM, OPTICS), the index-selection
// analysis of thesis Section 3.3.2, the embedded relational engine, the
// lineage tracker, the auxiliary gene databases and the user store.
//
// Every long-running operator also has a governed *Ctx variant (MineCtx,
// PopulateCtx, KMeansCtx, System.CalculateFasciclesCtx, ...) that accepts
// a context.Context and an ExecLimits work budget: cancellation and
// deadlines are observed at cooperative checkpoints, an exhausted budget
// degrades to an explicitly flagged partial result (ExecTrace.Partial),
// panics are recovered into structured *ExecError values, and System
// sessions gate heavy operations through an admission semaphore (see
// execution.go and DESIGN.md's execution model).
package gea

import (
	"gea/internal/atomicio"
	"gea/internal/clean"
	"gea/internal/sage"
	"gea/internal/sagegen"
)

// SAGE data model.
type (
	// TagID is a 10-base SAGE tag, 2 bits per base.
	TagID = sage.TagID
	// Library is one sparse SAGE expression profile.
	Library = sage.Library
	// LibraryMeta is a library's auxiliary data (tissue, state, source).
	LibraryMeta = sage.LibraryMeta
	// Corpus is an ordered collection of libraries.
	Corpus = sage.Corpus
	// Dataset is the dense libraries-by-tags matrix the operators run on.
	Dataset = sage.Dataset
	// NeoplasticState is cancer or normal.
	NeoplasticState = sage.NeoplasticState
	// Source is bulk tissue or cell line.
	Source = sage.Source
	// Property is a purity-check property.
	Property = sage.Property
)

// Neoplastic states, sources and purity properties.
const (
	Normal         = sage.Normal
	Cancer         = sage.Cancer
	BulkTissue     = sage.BulkTissue
	CellLine       = sage.CellLine
	PropCancer     = sage.PropCancer
	PropNormal     = sage.PropNormal
	PropBulkTissue = sage.PropBulkTissue
	PropCellLine   = sage.PropCellLine
)

// Tag helpers.
var (
	// ParseTag converts a 10-character tag string to its TagID.
	ParseTag = sage.ParseTag
	// MustParseTag is ParseTag for known-good literals.
	MustParseTag = sage.MustParseTag
)

// Dataset construction and persistence.
var (
	// BuildDataset assembles a dense Dataset from a corpus.
	BuildDataset = sage.Build
	// BuildDatasetWithTags assembles a Dataset over an explicit tag universe.
	BuildDatasetWithTags = sage.BuildWithTags
	// SaveCorpus / LoadCorpus persist a corpus as sageName.txt plus one
	// plain-text file per library, under the crash-safe generation
	// protocol of internal/atomicio (checksummed files, atomic commit).
	SaveCorpus = sage.SaveCorpus
	LoadCorpus = sage.LoadCorpus
	// LoadCorpusSalvage loads what verifies and reports damaged library
	// files instead of failing the whole corpus.
	LoadCorpusSalvage = sage.LoadCorpusSalvage
	// WriteBinary / ReadBinary are the stream codecs for the dense ".b"
	// tissue format.
	WriteBinary = sage.WriteBinary
	ReadBinary  = sage.ReadBinary
	// SaveBinaryFile / LoadBinaryFile commit a ".b" file atomically with a
	// checksum footer.
	SaveBinaryFile = sage.SaveBinaryFile
	LoadBinaryFile = sage.LoadBinaryFile
	// WriteMeta / ReadMeta are the stream codecs for ".meta"
	// tolerance-vector files.
	WriteMeta = sage.WriteMeta
	ReadMeta  = sage.ReadMeta
	// SaveMetaFile / LoadMetaFile commit a ".meta" file atomically with a
	// checksum footer.
	SaveMetaFile = sage.SaveMetaFile
	LoadMetaFile = sage.LoadMetaFile
)

// Durability layer (internal/atomicio).
type (
	// FS is the injectable filesystem every persistence path runs on;
	// OSFS is the production implementation.
	FS = atomicio.FS
	// CorpusProblem records one damaged artifact a salvaging corpus load
	// skipped.
	CorpusProblem = sage.Problem
)

// OSFS is the real-disk FS used by default.
var OSFS = atomicio.OS{}

// Checksum-framing sentinel errors, for classifying load failures with
// errors.Is.
var (
	ErrTruncated = atomicio.ErrTruncated
	ErrChecksum  = atomicio.ErrChecksum
)

// Synthetic corpus generation (the substitute for the NCBI SAGE download).
type (
	// GenConfig controls synthetic corpus generation.
	GenConfig = sagegen.Config
	// TissueSpec lays out one tissue type of the panel.
	TissueSpec = sagegen.TissueSpec
	// GenResult bundles the corpus with its ground truth.
	GenResult = sagegen.Result
	// Gene is one synthetic gene-catalog entry.
	Gene = sagegen.Gene
	// GeneCatalog maps the synthetic gene universe.
	GeneCatalog = sagegen.Catalog
)

var (
	// Generate builds a synthetic SAGE corpus.
	Generate = sagegen.Generate
	// DefaultConfig mirrors the thesis corpus (100 libraries, ~60k genes).
	DefaultConfig = sagegen.DefaultConfig
	// SmallConfig is a fast configuration for tests and examples.
	SmallConfig = sagegen.SmallConfig
)

// Marker genes planted for the figure reproductions.
const (
	GeneRibosomalL12 = sagegen.GeneRibosomalL12
	GeneAlphaTubulin = sagegen.GeneAlphaTubulin
	GeneADPProtein   = sagegen.GeneADPProtein
)

// Cleaning pipeline (thesis Section 4.2).
type (
	// CleanOptions configures pre-processing.
	CleanOptions = clean.Options
	// CleanReport summarizes what cleaning did.
	CleanReport = clean.Report
)

var (
	// Clean runs error removal and normalization on a corpus.
	Clean = clean.Clean
	// DefaultCleanOptions are the thesis defaults (tolerance 1, scale to
	// 300,000 total tags).
	DefaultCleanOptions = clean.DefaultOptions
	// ToleranceVector builds the fascicle "metadata": per-tag tolerance as a
	// percentage of the tag's width.
	ToleranceVector = clean.ToleranceVector
	// SingletonFraction reports the fraction of corpus tags that never
	// exceed count 1 (the sequencing-error candidates).
	SingletonFraction = clean.SingletonFraction
	// TopVariableTags returns the n widest-ranging tags of a dataset.
	TopVariableTags = clean.TopVariableTags
)

// NormalTotal is the common total libraries are normalized to (300,000
// mRNAs per cell).
const NormalTotal = clean.NormalTotal

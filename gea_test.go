package gea

import (
	"testing"
)

// TestPublicAPIEndToEnd drives the full case-study-1 workflow through the
// facade only, proving the public API is self-sufficient.
func TestPublicAPIEndToEnd(t *testing.T) {
	res, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(res.Corpus, SystemOptions{
		User: "quickstart", Catalog: res.Catalog, GeneDBSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	brain, err := sys.CreateTissueDataset("brain")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.GenerateMetadata("brain", 10); err != nil {
		t.Fatal(err)
	}
	_ = brain
	pure, err := sys.FindPureFascicle("brain", PropCancer, 3)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := sys.FormSUM(pure, "brain")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateGap("canvsnor", groups.InFascicle, groups.Opposite); err != nil {
		t.Fatal(err)
	}
	top, err := sys.CalculateTopGap("canvsnor", 5)
	if err != nil {
		t.Fatal(err)
	}
	if top.Len() != 5 {
		t.Fatalf("top gaps = %d", top.Len())
	}
	// Candidate genes resolve through the auxiliary databases.
	var tags []TagID
	for _, r := range top.Rows {
		tags = append(tags, r.Tag)
	}
	anns, err := sys.GeneDB.AnnotateTags(tags)
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) == 0 {
		t.Fatal("no candidate gene annotations")
	}
	for _, a := range anns {
		if a.Gene == "" || a.Protein == "" {
			t.Errorf("incomplete annotation %+v", a)
		}
	}
}

// TestPublicAlgebraPieces exercises the re-exported operators directly.
func TestPublicAlgebraPieces(t *testing.T) {
	res, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cleaned, rep, err := Clean(res.Corpus, DefaultCleanOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.RemovedTagFraction() <= 0 {
		t.Error("cleaning removed nothing")
	}
	d := BuildDataset(cleaned)
	// Slice to one tissue first — pooling all tissues makes every per-group
	// deviation so wide that diff() reports NULL everywhere, which is
	// exactly why the case studies start from E_brain.
	brain, err := d.SubsetByTissue("brain")
	if err != nil {
		t.Fatal(err)
	}
	full := FullEnum("Ebrain", brain)
	cancer := full.SelectRows("cancer", func(m LibraryMeta) bool { return m.State == Cancer })
	normal := full.SelectRows("normal", func(m LibraryMeta) bool { return m.State == Normal })
	sc, err := Aggregate("sc", cancer, AggregateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sn, err := Aggregate("sn", normal, AggregateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Diff("g", sc, sn)
	if err != nil {
		t.Fatal(err)
	}
	neg, err := SelectGap("neg", g, GapNegative(0))
	if err != nil {
		t.Fatal(err)
	}
	pos, err := SelectGap("pos", g, GapPositive(0))
	if err != nil {
		t.Fatal(err)
	}
	if neg.Len()+pos.Len() == 0 {
		t.Error("no non-null gaps between cancer and normal")
	}
	// Index-selection math (Table 3.1 flagship row).
	m, err := IndicesRequired(60000, 25000, 1, DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	if m != 17 {
		t.Errorf("IndicesRequired = %d, want 17", m)
	}
	// Allen algebra.
	if ClassifyIntervals(NewInterval(0, 1), NewInterval(2, 3)) != Before {
		t.Error("interval algebra broken")
	}
	// Baselines are callable.
	rows := [][]float64{{1, 2}, {1.1, 2.1}, {9, 9}, {9.2, 9.1}}
	dg, err := Hierarchical(rows, EuclideanDistance, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := dg.Cut(2)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != labels[1] || labels[0] == labels[2] {
		t.Errorf("hierarchical labels = %v", labels)
	}
}

module gea

go 1.22

package gea

// Streaming ingestion (internal/ingest): the crash-safe append path. A
// session built with SystemOptions.Ingest maintains its cleaned corpus,
// SUMY aggregate, entropy ranking and sorted indexes incrementally as
// batches of new libraries arrive, committing each batch as a new corpus
// generation through the atomicio protocol — a crash at any write
// boundary rolls back to the previous generation, transient I/O faults
// are retried with backoff, and schema-violating submissions land in a
// quarantine directory with a salvage report.

import (
	"gea/internal/ingest"
	"gea/internal/sagegen"
	"gea/internal/system"
)

type (
	// IngestBatch is one append submission in its JSON wire form.
	IngestBatch = ingest.Batch
	// IngestBatchLibrary is one submitted library.
	IngestBatchLibrary = ingest.BatchLibrary
	// IngestStore is the durable generation-by-generation append store.
	IngestStore = ingest.Store
	// IngestReport summarizes one append: committed generation, appended
	// names, quarantined rejections, absorbed retries.
	IngestReport = ingest.Report
	// IngestRejection records one library diverted to quarantine.
	IngestRejection = ingest.Rejection
	// IngestRetryPolicy retries transient faults with exponential backoff
	// and fails fast on corruption and schema violations.
	IngestRetryPolicy = ingest.RetryPolicy
	// IngestView is one immutable derived-state generation (cleaned
	// corpus, dataset, SUMY, ranking, indexes) plus the running state
	// that lets the next generation fold in incrementally.
	IngestView = ingest.View
	// IngestViewOptions configure the maintained view.
	IngestViewOptions = ingest.ViewOptions
	// IngestSchemaError describes one invalid submission.
	IngestSchemaError = ingest.SchemaError
	// IngestClass sorts a failure into the retry taxonomy.
	IngestClass = ingest.Class
	// SystemIngestOptions enable the append path on a session
	// (SystemOptions.Ingest).
	SystemIngestOptions = system.IngestOptions
)

// Retry taxonomy classes.
const (
	IngestClassTransient = ingest.ClassTransient
	IngestClassCorrupt   = ingest.ClassCorrupt
	IngestClassSchema    = ingest.ClassSchema
)

var (
	// OpenIngestStore opens (or initializes) an append store; a plain
	// SaveCorpus directory upgrades to an append store for free.
	OpenIngestStore = ingest.Open
	// DefaultIngestRetry is the store's default transient-fault policy.
	DefaultIngestRetry = ingest.DefaultRetry
	// ClassifyIngestError maps an error onto the retry taxonomy.
	ClassifyIngestError = ingest.Classify
	// EncodeIngestBatch / DecodeIngestBatch are the JSON wire codecs the
	// POST /ingest endpoint and the gea ingest command speak.
	EncodeIngestBatch = ingest.EncodeBatch
	DecodeIngestBatch = ingest.DecodeBatch
	// IngestBatchFromLibraries converts generator output to the wire form.
	IngestBatchFromLibraries = ingest.BatchFromLibraries
	// ScreenIngestBatch validates a batch against existing library names.
	ScreenIngestBatch = ingest.Screen
	// RebuildIngestView builds a maintained view from scratch; the
	// incremental path (View.Apply) is bit-identical to it.
	RebuildIngestView = ingest.Rebuild
	// EmitBatches yields the same planted-signature synthetic corpus as
	// Generate, split into n append batches for streaming-ingestion runs.
	EmitBatches = sagegen.EmitBatches
)

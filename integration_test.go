package gea

import (
	"path/filepath"
	"testing"
)

// runPipeline executes the case-study-1 pipeline through the public API and
// returns the session plus the top-10 candidate tags.
func runPipeline(t *testing.T, user string) (*System, *GenResult, []TagID) {
	t.Helper()
	res, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(res.Corpus, SystemOptions{User: user, Catalog: res.Catalog, GeneDBSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateTissueDataset("brain"); err != nil {
		t.Fatal(err)
	}
	if err := sys.GenerateMetadata("brain", 10); err != nil {
		t.Fatal(err)
	}
	pure, err := sys.FindPureFascicle("brain", PropCancer, 3)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := sys.FormSUM(pure, "brain")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateGap("itGap", groups.InFascicle, groups.Opposite); err != nil {
		t.Fatal(err)
	}
	top, err := sys.CalculateTopGap("itGap", 10)
	if err != nil {
		t.Fatal(err)
	}
	tags := make([]TagID, 0, top.Len())
	for _, r := range top.Rows {
		tags = append(tags, r.Tag)
	}
	return sys, res, tags
}

// TestIntegrationDeterminism: the whole pipeline is reproducible for a fixed
// seed — identical candidate lists across independent runs.
func TestIntegrationDeterminism(t *testing.T) {
	_, _, tags1 := runPipeline(t, "run1")
	_, _, tags2 := runPipeline(t, "run2")
	if len(tags1) != len(tags2) {
		t.Fatalf("candidate counts differ: %d vs %d", len(tags1), len(tags2))
	}
	for i := range tags1 {
		if tags1[i] != tags2[i] {
			t.Fatalf("candidate %d differs: %v vs %v", i, tags1[i], tags2[i])
		}
	}
}

// TestIntegrationSessionRoundTrip: save the session, reload it through the
// facade, and confirm the analysis state and results are intact.
func TestIntegrationSessionRoundTrip(t *testing.T) {
	sys, res, tags := runPipeline(t, "persist")
	dir := filepath.Join(t.TempDir(), "session")
	if err := sys.SaveSession(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSession(dir, res.Catalog, 1)
	if err != nil {
		t.Fatal(err)
	}
	top, err := got.Gap("itGap_10")
	if err != nil {
		t.Fatal(err)
	}
	if top.Len() != len(tags) {
		t.Fatalf("restored top gap has %d rows, want %d", top.Len(), len(tags))
	}
	for i, r := range top.Rows {
		if r.Tag != tags[i] {
			t.Fatalf("restored candidate %d = %v, want %v", i, r.Tag, tags[i])
		}
	}
}

// TestIntegrationCandidatesArePlanted: the pipeline's top candidates must be
// planted signature genes, and the gene databases must resolve them.
func TestIntegrationCandidatesArePlanted(t *testing.T) {
	sys, res, tags := runPipeline(t, "truth")
	planted := 0
	for _, tg := range tags {
		if g, ok := res.Catalog.ByTag(tg); ok {
			switch g.Role.String() {
			case "cancer-up", "cancer-down":
				planted++
			}
		}
	}
	if planted < len(tags)*2/3 {
		t.Errorf("only %d of %d top candidates are planted signature genes", planted, len(tags))
	}
	anns, err := sys.GeneDB.AnnotateTags(tags)
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) < planted {
		t.Errorf("annotated %d candidates, expected at least %d", len(anns), planted)
	}
}

// TestIntegrationXProfilerComparison: the GEA's gap-based candidates beat
// the pooled xProfiler on precision against the planted ground truth (the
// thesis's qualitative claim, asserted quantitatively).
func TestIntegrationXProfilerComparison(t *testing.T) {
	sys, res, _ := runPipeline(t, "xp")
	truth := map[TagID]bool{}
	for _, g := range res.Catalog.Genes {
		if (g.Tissue == "brain" || g.Tissue == "") &&
			(g.Role.String() == "cancer-up" || g.Role.String() == "cancer-down") {
			truth[g.Tag] = true
		}
	}
	precision := func(tags []TagID) float64 {
		if len(tags) == 0 {
			return 0
		}
		tp := 0
		for _, tg := range tags {
			if truth[tg] {
				tp++
			}
		}
		return float64(tp) / float64(len(tags))
	}

	cancer, err := XPoolByState(res.Corpus, "brain", Cancer)
	if err != nil {
		t.Fatal(err)
	}
	normal, err := XPoolByState(res.Corpus, "brain", Normal)
	if err != nil {
		t.Fatal(err)
	}
	xres, err := XCompare(cancer, normal, XOptions{Alpha: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	var xtags []TagID
	for _, r := range xres {
		xtags = append(xtags, r.Tag)
	}

	gap, err := sys.Gap("itGap")
	if err != nil {
		t.Fatal(err)
	}
	nn, err := SelectGap("nn", gap, GapNonNull(0))
	if err != nil {
		t.Fatal(err)
	}
	var gtags []TagID
	for _, r := range nn.Rows {
		gtags = append(gtags, r.Tag)
	}

	xp, gp := precision(xtags), precision(gtags)
	if gp <= xp {
		t.Errorf("GEA precision %.2f not better than xProfiler %.2f", gp, xp)
	}
}

// Package admission is the bounded FIFO admission queue that fronts a
// session's heavy operations. It replaces a bare counting semaphore
// with three properties a server front door needs under overload:
//
//   - Backpressure with a hard edge: at most MaxActive operations run
//     and at most MaxQueue callers wait. The next caller is rejected
//     immediately with a typed *ErrOverload carrying retry-after
//     advice, instead of burning its own timeout in a blind queue.
//   - Observable waiting: an enqueued caller holds a Ticket that
//     reports its queue position and an expected wait estimated from
//     the recent hold-time average, and it leaves the queue the moment
//     its context dies.
//   - Load shedding: a small state machine (Healthy → Degraded →
//     Saturated) driven by queue depth and the recent admission-wait
//     average. Degraded shrinks per-request exec.Limits budgets via
//     Shape so requests return flagged partials instead of timing out;
//     Saturated is the signal to shed non-essential work entirely.
//
// Shutdown flips the queue into draining: queued waiters are kicked
// with ErrShutdown, new callers are refused, and the call blocks until
// every admitted operation has released its slot.
//
// All metrics are optional: pass Options.Metrics to record gauges,
// counters and a wait histogram into an obs.Registry; a nil registry
// makes every instrument a no-op.
package admission

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"gea/internal/exec"
	"gea/internal/obs"
)

// Defaults for Options fields left zero.
const (
	// DefaultMaxActive matches the session's historical MaxConcurrent
	// default.
	DefaultMaxActive = 4
	// DefaultMaxQueue bounds how many callers may wait behind the
	// active set before new arrivals are rejected outright.
	DefaultMaxQueue = 16
	// DefaultRetryAfter is the retry advice handed out before the
	// queue has observed any hold times to extrapolate from.
	DefaultRetryAfter = time.Second
)

// ewmaAlpha is the smoothing factor for the wait/hold averages: recent
// samples dominate within a handful of observations.
const ewmaAlpha = 0.3

// State is the queue's load-shedding state.
type State int

const (
	// Healthy: requests run with their full budgets.
	Healthy State = iota
	// Degraded: the queue is backing up; Shape shrinks budgets so
	// requests return flagged partials instead of timing out.
	Degraded
	// Saturated: the queue is nearly full; non-essential work should
	// be shed before it ever enqueues.
	Saturated
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Saturated:
		return "saturated"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// MarshalJSON renders the state as its string form, so /healthz and
// Stats read as "degraded" rather than a bare integer.
func (s State) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// Options configures a Queue; the zero value selects the defaults.
type Options struct {
	// MaxActive bounds concurrently admitted operations; zero means
	// DefaultMaxActive.
	MaxActive int
	// MaxQueue bounds waiting callers; zero means DefaultMaxQueue.
	MaxQueue int
	// AdmitTimeout bounds how long Ticket.Wait queues before giving up
	// with *ErrTimeout. Zero disables the timer: waiters leave only on
	// admission, context death or shutdown.
	AdmitTimeout time.Duration
	// DegradeAtDepth is the queue depth at which Healthy tips into
	// Degraded; zero means max(1, MaxQueue/2).
	DegradeAtDepth int
	// SaturateAtDepth is the queue depth at which the state tips into
	// Saturated; zero means 9*MaxQueue/10, at least DegradeAtDepth+1,
	// clamped to MaxQueue.
	SaturateAtDepth int
	// DegradeWait is the recent-average admission wait at which
	// Healthy tips into Degraded even with a shallow queue; zero means
	// AdmitTimeout/2 (or disabled when AdmitTimeout is zero too).
	DegradeWait time.Duration
	// DegradeFactor scales explicit request budgets while Degraded or
	// Saturated; zero means 0.25, values above 1 clamp to 1.
	DegradeFactor float64
	// DegradedBudget caps otherwise-unlimited request budgets while
	// Degraded or Saturated; zero leaves unlimited budgets unlimited.
	DegradedBudget int64
	// Metrics optionally records admission gauges, counters and the
	// wait histogram; nil disables instrumentation.
	Metrics *obs.Registry
}

// ErrOverload reports a full queue: the caller was rejected
// immediately, with retry advice extrapolated from recent hold times.
type ErrOverload struct {
	// QueueLen is the queue depth at rejection time.
	QueueLen int
	// RetryAfter estimates when a retry might find room.
	RetryAfter time.Duration
}

func (e *ErrOverload) Error() string {
	return fmt.Sprintf("admission: overloaded: queue full at %d waiters, retry after %v", e.QueueLen, e.RetryAfter)
}

// ErrTimeout reports a waiter that gave up after AdmitTimeout without
// being admitted.
type ErrTimeout struct {
	// Waited is how long the caller queued before giving up.
	Waited time.Duration
	// Position is the 1-based queue position it held at enqueue.
	Position int
	// RetryAfter estimates when a retry might be admitted promptly.
	RetryAfter time.Duration
}

func (e *ErrTimeout) Error() string {
	return fmt.Sprintf("admission: no slot after %v (queued at position %d)", e.Waited, e.Position)
}

// ErrShutdown is returned to new callers and kicked waiters once
// Shutdown has begun.
var ErrShutdown = errors.New("admission: shutting down")

// waiter is one queued caller. enqueued is set before the waiter is
// visible; admitTime and the kicked/done flags are written only under
// Queue.mu before ready is closed, so a reader that re-locks after
// <-ready observes them safely.
type waiter struct {
	ready     chan struct{}
	enqueued  time.Time
	admitTime time.Time
	kicked    bool
	done      bool
}

// meters bundles the queue's cached metric handles; every handle is
// nil (a no-op) when no registry was supplied.
type meters struct {
	active, depth, state                                       *obs.Gauge
	admitted, rejected, timedOut, canceled, kicked, transition *obs.Counter
	wait                                                       *obs.Histogram
}

// Queue is the admission queue. The zero value is not usable; build
// one with New.
type Queue struct {
	maxActive      int
	maxQueue       int
	admitTimeout   time.Duration
	degradeAt      int
	saturateAt     int
	degradeWait    time.Duration
	degradeFactor  float64
	degradedBudget int64
	m              meters

	mu            sync.Mutex
	active        int
	q             []*waiter
	shut          bool
	drained       chan struct{}
	drainedClosed bool
	state         State
	avgWaitNS     float64
	avgHoldNS     float64

	admitted    int64
	rejected    int64
	timedOut    int64
	canceled    int64
	kicked      int64
	transitions int64
}

// New builds a queue from opts; zero fields select the defaults.
func New(opts Options) *Queue {
	if opts.MaxActive <= 0 {
		opts.MaxActive = DefaultMaxActive
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = DefaultMaxQueue
	}
	degradeAt := opts.DegradeAtDepth
	if degradeAt <= 0 {
		degradeAt = opts.MaxQueue / 2
		if degradeAt < 1 {
			degradeAt = 1
		}
	}
	saturateAt := opts.SaturateAtDepth
	if saturateAt <= 0 {
		saturateAt = opts.MaxQueue * 9 / 10
		if saturateAt <= degradeAt {
			saturateAt = degradeAt + 1
		}
		if saturateAt > opts.MaxQueue {
			saturateAt = opts.MaxQueue
		}
	}
	degradeWait := opts.DegradeWait
	if degradeWait <= 0 {
		degradeWait = opts.AdmitTimeout / 2
	}
	factor := opts.DegradeFactor
	if factor <= 0 {
		factor = 0.25
	}
	if factor > 1 {
		factor = 1
	}
	q := &Queue{
		maxActive:      opts.MaxActive,
		maxQueue:       opts.MaxQueue,
		admitTimeout:   opts.AdmitTimeout,
		degradeAt:      degradeAt,
		saturateAt:     saturateAt,
		degradeWait:    degradeWait,
		degradeFactor:  factor,
		degradedBudget: opts.DegradedBudget,
		drained:        make(chan struct{}),
	}
	r := opts.Metrics
	q.m = meters{
		active:     r.Gauge("admission.active"),
		depth:      r.Gauge("admission.queue_depth"),
		state:      r.Gauge("admission.state"),
		admitted:   r.Counter("admission.admitted"),
		rejected:   r.Counter("admission.rejected_overload"),
		timedOut:   r.Counter("admission.timed_out"),
		canceled:   r.Counter("admission.canceled"),
		kicked:     r.Counter("admission.shutdown_kicked"),
		transition: r.Counter("admission.transitions"),
		wait:       r.Histogram("admission.wait_s", obs.LatencyBounds),
	}
	return q
}

// Ticket is one caller's place in the admission flow: either already
// admitted (Position 0) or queued until Wait resolves it.
type Ticket struct {
	q        *Queue
	w        *waiter // nil when admitted immediately at Enqueue
	admitted time.Time
	pos      int
	wait     time.Duration
	state    State
	start    time.Time
}

// Position is the 1-based queue position at enqueue; 0 means the
// caller was admitted immediately.
func (t *Ticket) Position() int { return t.pos }

// ExpectedWait estimates how long this ticket will queue, from the
// recent hold-time average; zero when admitted immediately or before
// any hold times have been observed.
func (t *Ticket) ExpectedWait() time.Duration { return t.wait }

// State is the load state observed at enqueue time. Callers shape
// their budgets from this one observation so a single request sees a
// consistent policy even while the state machine keeps moving.
func (t *Ticket) State() State { return t.state }

// Enqueue claims a slot or a queue position. It never blocks: the
// caller is admitted immediately, queued (resolve with Wait), or
// rejected with ErrShutdown, the context's own error (dead caller that
// would have had to wait), or *ErrOverload (queue full). A context
// that is already dead is still admitted when a free slot means no
// waiting — the governed operator sees the cancellation at its first
// checkpoint with full structured-error context, exactly as the old
// semaphore behaved.
func (q *Queue) Enqueue(ctx context.Context) (*Ticket, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.shut {
		return nil, ErrShutdown
	}
	now := time.Now()
	if q.active < q.maxActive && len(q.q) == 0 {
		q.active++
		q.admitted++
		q.m.admitted.Add(1)
		q.m.wait.Observe(0)
		t := &Ticket{q: q, admitted: now, state: q.state, start: now}
		q.noteLocked()
		return t, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(q.q) >= q.maxQueue {
		q.rejected++
		q.m.rejected.Add(1)
		return nil, &ErrOverload{QueueLen: len(q.q), RetryAfter: q.retryAfterLocked()}
	}
	w := &waiter{ready: make(chan struct{}), enqueued: now}
	q.q = append(q.q, w)
	pos := len(q.q)
	t := &Ticket{q: q, w: w, pos: pos, wait: q.expectedWaitLocked(pos), state: q.state, start: now}
	q.noteLocked()
	return t, nil
}

// Wait blocks until the ticket is admitted, the context dies, the
// queue's AdmitTimeout elapses, or shutdown kicks the waiter. On
// success it returns the release function; calling it more than once
// is safe. A waiter that loses the admission race to its own
// cancellation returns the slot before reporting the context error.
func (t *Ticket) Wait(ctx context.Context) (func(), error) {
	q := t.q
	if t.w == nil {
		return q.releaseFunc(t.admitted), nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var timeout <-chan time.Time
	if q.admitTimeout > 0 {
		timer := time.NewTimer(q.admitTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case <-t.w.ready:
	case <-ctx.Done():
		if q.abandon(t.w, &q.canceled, q.m.canceled) {
			return nil, ctx.Err()
		}
		// Lost the race: the waiter was admitted or kicked under the
		// lock before abandon got it, so ready is already closed.
		<-t.w.ready
	case <-timeout:
		if q.abandon(t.w, &q.timedOut, q.m.timedOut) {
			return nil, &ErrTimeout{Waited: time.Since(t.start), Position: t.pos, RetryAfter: q.retryAfter()}
		}
		<-t.w.ready
	}
	q.mu.Lock()
	kicked := t.w.kicked
	admitted := t.w.admitTime
	q.mu.Unlock()
	if kicked {
		return nil, ErrShutdown
	}
	if err := ctx.Err(); err != nil {
		// Admitted, but the caller is gone: give the slot back so a
		// dead request can never leak capacity.
		q.release(admitted)
		return nil, err
	}
	return q.releaseFunc(admitted), nil
}

// Acquire is Enqueue followed by Wait: the blocking one-call form the
// session's operator entry points use.
func (q *Queue) Acquire(ctx context.Context) (func(), error) {
	t, err := q.Enqueue(ctx)
	if err != nil {
		return nil, err
	}
	return t.Wait(ctx)
}

// releaseFunc wraps release in a Once so double-releasing a slot is
// harmless.
func (q *Queue) releaseFunc(admitted time.Time) func() {
	var once sync.Once
	return func() { once.Do(func() { q.release(admitted) }) }
}

// release frees one admitted slot, handing it to the queue head (FIFO)
// unless shutdown has begun.
func (q *Queue) release(admitted time.Time) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.avgHoldNS = ewma(q.avgHoldNS, float64(time.Since(admitted)))
	if !q.shut && len(q.q) > 0 {
		w := q.q[0]
		q.q = q.q[1:]
		w.done = true
		now := time.Now()
		w.admitTime = now
		wait := float64(now.Sub(w.enqueued))
		q.avgWaitNS = ewma(q.avgWaitNS, wait)
		q.admitted++
		q.m.admitted.Add(1)
		q.m.wait.Observe(wait / 1e9)
		close(w.ready)
	} else {
		q.active--
	}
	q.noteLocked()
}

// abandon removes a still-queued waiter (context death or timeout).
// It returns false when the waiter already left the queue — admitted
// or kicked — in which case ready is already closed.
func (q *Queue) abandon(w *waiter, slot *int64, c *obs.Counter) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if w.done {
		return false
	}
	for i, x := range q.q {
		if x == w {
			q.q = append(q.q[:i], q.q[i+1:]...)
			w.done = true
			*slot++
			c.Add(1)
			q.noteLocked()
			return true
		}
	}
	return false
}

// Shutdown begins draining: new callers get ErrShutdown, every queued
// waiter is kicked with ErrShutdown, and the call blocks until all
// admitted operations release (or ctx dies first). Idempotent; later
// calls just wait for the drain.
func (q *Queue) Shutdown(ctx context.Context) error {
	q.mu.Lock()
	if !q.shut {
		q.shut = true
		for _, w := range q.q {
			w.kicked = true
			w.done = true
			q.kicked++
			q.m.kicked.Add(1)
			close(w.ready)
		}
		q.q = nil
		q.noteLocked()
	}
	drained := q.drained
	q.mu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Shape applies the load-shedding policy to a request's limits and
// reports the state it applied: Degraded and Saturated shrink explicit
// budgets by DegradeFactor and cap unlimited budgets at
// DegradedBudget, so overloaded requests finish early with flagged
// partials instead of holding slots until they time out.
func (q *Queue) Shape(lim exec.Limits) (exec.Limits, State) {
	q.mu.Lock()
	st := q.state
	q.mu.Unlock()
	return q.shapeFor(lim, st), st
}

// shapeFor is Shape against an already-observed state, for callers
// that pinned the state at enqueue time.
func (q *Queue) shapeFor(lim exec.Limits, st State) exec.Limits {
	if st == Healthy {
		return lim
	}
	if lim.Budget > 0 {
		b := int64(float64(lim.Budget) * q.degradeFactor)
		if b < 1 {
			b = 1
		}
		lim.Budget = b
	} else if q.degradedBudget > 0 {
		lim.Budget = q.degradedBudget
	}
	return lim
}

// State reports the current load state.
func (q *Queue) State() State {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.state
}

// Stats is a point-in-time snapshot of the queue, JSON-ready for
// /healthz.
type Stats struct {
	State        State         `json:"state"`
	Active       int           `json:"active"`
	QueueDepth   int           `json:"queue_depth"`
	MaxActive    int           `json:"max_active"`
	MaxQueue     int           `json:"max_queue"`
	Admitted     int64         `json:"admitted"`
	Rejected     int64         `json:"rejected"`
	TimedOut     int64         `json:"timed_out"`
	Canceled     int64         `json:"canceled"`
	Kicked       int64         `json:"kicked"`
	Transitions  int64         `json:"transitions"`
	AvgWait      time.Duration `json:"avg_wait_ns"`
	AvgHold      time.Duration `json:"avg_hold_ns"`
	ShuttingDown bool          `json:"shutting_down"`
}

// Stats snapshots the queue's counters and state.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{
		State:        q.state,
		Active:       q.active,
		QueueDepth:   len(q.q),
		MaxActive:    q.maxActive,
		MaxQueue:     q.maxQueue,
		Admitted:     q.admitted,
		Rejected:     q.rejected,
		TimedOut:     q.timedOut,
		Canceled:     q.canceled,
		Kicked:       q.kicked,
		Transitions:  q.transitions,
		AvgWait:      time.Duration(q.avgWaitNS),
		AvgHold:      time.Duration(q.avgHoldNS),
		ShuttingDown: q.shut,
	}
}

// noteLocked refreshes gauges, advances the state machine, and closes
// the drain latch once shutdown has no admitted work left. An idle
// queue resets the wait average so stale latency history from a past
// burst cannot pin the state away from Healthy.
func (q *Queue) noteLocked() {
	depth := len(q.q)
	q.m.active.Set(int64(q.active))
	q.m.depth.Set(int64(depth))
	if q.shut && q.active == 0 && !q.drainedClosed {
		q.drainedClosed = true
		close(q.drained)
	}
	next := q.state
	if depth == 0 && q.active == 0 {
		q.avgWaitNS = 0
		next = Healthy
	} else {
		next = q.nextStateLocked(depth)
	}
	if next != q.state {
		q.state = next
		q.transitions++
		q.m.transition.Add(1)
	}
	q.m.state.Set(int64(q.state))
}

// nextStateLocked is the hysteresis rule: tipping into Degraded or
// Saturated is eager (depth or recent wait crosses its threshold);
// recovering requires clear headroom so the state doesn't flap at the
// boundary.
func (q *Queue) nextStateLocked(depth int) State {
	wait := time.Duration(q.avgWaitNS)
	switch q.state {
	case Degraded:
		if depth >= q.saturateAt {
			return Saturated
		}
		if depth <= q.degradeAt/2 && (q.degradeWait <= 0 || wait < q.degradeWait/2) {
			return Healthy
		}
		return Degraded
	case Saturated:
		if depth < q.degradeAt {
			return Degraded
		}
		return Saturated
	default:
		if depth >= q.saturateAt {
			return Saturated
		}
		if depth >= q.degradeAt || (q.degradeWait > 0 && wait >= q.degradeWait) {
			return Degraded
		}
		return Healthy
	}
}

// retryAfterLocked extrapolates retry advice for a rejected caller:
// roughly how long until the current queue plus one more wave of
// active holders has churned through.
func (q *Queue) retryAfterLocked() time.Duration {
	if q.avgHoldNS <= 0 {
		return DefaultRetryAfter
	}
	waves := (len(q.q)+q.maxActive-1)/q.maxActive + 1
	return time.Duration(q.avgHoldNS * float64(waves))
}

func (q *Queue) retryAfter() time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.retryAfterLocked()
}

// expectedWaitLocked estimates the wait at a 1-based queue position
// from the recent hold average; zero before any holds were observed.
func (q *Queue) expectedWaitLocked(pos int) time.Duration {
	if q.avgHoldNS <= 0 || pos <= 0 {
		return 0
	}
	waves := (pos + q.maxActive - 1) / q.maxActive
	return time.Duration(q.avgHoldNS * float64(waves))
}

// ewma folds one sample into a decaying average, seeding from the
// first sample.
func ewma(old, sample float64) float64 {
	if old <= 0 {
		return sample
	}
	return old*(1-ewmaAlpha) + sample*ewmaAlpha
}

package admission

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"gea/internal/exec"
	"gea/internal/obs"
)

// TestAdmissionImmediate proves callers under MaxActive are admitted
// without queueing and report Position 0.
func TestAdmissionImmediate(t *testing.T) {
	q := New(Options{MaxActive: 2, MaxQueue: 4})
	for i := 0; i < 2; i++ {
		tk, err := q.Enqueue(context.Background())
		if err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		if tk.Position() != 0 {
			t.Fatalf("enqueue %d: position %d, want 0 (immediate)", i, tk.Position())
		}
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
	}
	tk, err := q.Enqueue(context.Background())
	if err != nil {
		t.Fatalf("third enqueue: %v", err)
	}
	if tk.Position() != 1 {
		t.Fatalf("third caller: position %d, want 1", tk.Position())
	}
	st := q.Stats()
	if st.Active != 2 || st.QueueDepth != 1 {
		t.Fatalf("stats: %+v, want active 2 queue 1", st)
	}
}

// TestAdmissionFIFOOrder enqueues waiters in a known order behind a
// held slot and checks slots are handed out strictly in that order,
// even while releases race with the waiters' own scheduling.
func TestAdmissionFIFOOrder(t *testing.T) {
	q := New(Options{MaxActive: 1, MaxQueue: 16})
	release, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	order := make(chan int, n)
	waited := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		tk, err := q.Enqueue(context.Background())
		if err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		if tk.Position() != i+1 {
			t.Fatalf("waiter %d: position %d, want %d", i, tk.Position(), i+1)
		}
		go func(i int, tk *Ticket) {
			rel, err := tk.Wait(context.Background())
			if err != nil {
				order <- -1
				return
			}
			order <- i
			waited <- struct{}{}
			rel()
		}(i, tk)
	}

	release()
	for want := 0; want < n; want++ {
		got := <-order
		if got != want {
			t.Fatalf("admission order: got waiter %d, want %d", got, want)
		}
		<-waited
	}
	st := q.Stats()
	if st.Active != 0 || st.QueueDepth != 0 {
		t.Fatalf("after drain: %+v, want idle", st)
	}
}

// TestAdmissionOverloadReject fills the queue and checks the next
// caller is rejected immediately with retry advice, not blocked.
func TestAdmissionOverloadReject(t *testing.T) {
	q := New(Options{MaxActive: 1, MaxQueue: 2})
	release, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	for i := 0; i < 2; i++ {
		if _, err := q.Enqueue(context.Background()); err != nil {
			t.Fatalf("queueing caller %d: %v", i, err)
		}
	}
	start := time.Now()
	_, err = q.Enqueue(context.Background())
	var over *ErrOverload
	if !errors.As(err, &over) {
		t.Fatalf("full queue: got %v, want *ErrOverload", err)
	}
	if over.QueueLen != 2 || over.RetryAfter <= 0 {
		t.Fatalf("overload detail: %+v", over)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("rejection took %v, want immediate", elapsed)
	}
	if !strings.Contains(over.Error(), "retry after") {
		t.Fatalf("error text: %q", over.Error())
	}
	if got := q.Stats().Rejected; got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
}

// TestAdmissionTimeoutTicket checks a waiter gives up with *ErrTimeout
// after AdmitTimeout, and the queue forgets it.
func TestAdmissionTimeoutTicket(t *testing.T) {
	q := New(Options{MaxActive: 1, MaxQueue: 4, AdmitTimeout: 30 * time.Millisecond})
	release, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	_, err = q.Acquire(context.Background())
	var to *ErrTimeout
	if !errors.As(err, &to) {
		t.Fatalf("got %v, want *ErrTimeout", err)
	}
	if to.Waited < 30*time.Millisecond || to.Position != 1 || to.RetryAfter <= 0 {
		t.Fatalf("timeout detail: %+v (elapsed %v)", to, time.Since(start))
	}
	if st := q.Stats(); st.QueueDepth != 0 || st.TimedOut != 1 {
		t.Fatalf("after timeout: %+v, want empty queue, timed_out 1", st)
	}
}

// TestAdmissionContextCancelLeavesQueue checks a cancelled waiter
// leaves the queue and later waiters still get slots in order.
func TestAdmissionContextCancelLeavesQueue(t *testing.T) {
	q := New(Options{MaxActive: 1, MaxQueue: 4})
	release, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	doomed, err := q.Enqueue(ctx)
	if err != nil {
		t.Fatal(err)
	}
	survivor, err := q.Enqueue(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := doomed.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: got %v, want context.Canceled", err)
	}
	if st := q.Stats(); st.QueueDepth != 1 || st.Canceled != 1 {
		t.Fatalf("after cancel: %+v, want depth 1, canceled 1", st)
	}

	// A pre-cancelled caller that would have to wait never enqueues.
	// (With a free slot it WOULD be admitted, matching the old
	// semaphore: the operator itself reports the cancellation.)
	dead, deadCancel := context.WithCancel(context.Background())
	deadCancel()
	if _, err := q.Enqueue(dead); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled enqueue: got %v, want context.Canceled", err)
	}

	release()
	rel, err := survivor.Wait(context.Background())
	if err != nil {
		t.Fatalf("survivor: %v", err)
	}
	rel()
}

// TestAdmissionShutdown checks shutdown kicks queued waiters with
// ErrShutdown, refuses new callers, and unblocks only when every
// admitted operation has released.
func TestAdmissionShutdown(t *testing.T) {
	q := New(Options{MaxActive: 1, MaxQueue: 4})
	release, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tk, err := q.Enqueue(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	shutDone := make(chan error, 1)
	go func() { shutDone <- q.Shutdown(context.Background()) }()

	if _, err := tk.Wait(context.Background()); !errors.Is(err, ErrShutdown) {
		t.Fatalf("kicked waiter: got %v, want ErrShutdown", err)
	}
	if _, err := q.Enqueue(context.Background()); !errors.Is(err, ErrShutdown) {
		t.Fatalf("post-shutdown enqueue: got %v, want ErrShutdown", err)
	}

	select {
	case err := <-shutDone:
		t.Fatalf("shutdown returned %v with a slot still held", err)
	case <-time.After(20 * time.Millisecond):
	}
	release()
	if err := <-shutDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st := q.Stats(); st.Active != 0 || st.QueueDepth != 0 || !st.ShuttingDown || st.Kicked != 1 {
		t.Fatalf("after shutdown: %+v", st)
	}
	// Idempotent: a second shutdown of a drained queue returns at once.
	if err := q.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}

	// A shutdown bounded by a dead context reports the context error.
	q2 := New(Options{MaxActive: 1})
	rel2, err := q2.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := q2.Shutdown(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("bounded shutdown: got %v, want deadline exceeded", err)
	}
	rel2()
}

// TestAdmissionStateMachine drives the queue through
// healthy → degraded → saturated → healthy purely by queue depth and
// checks the hysteresis plus the idle reset.
func TestAdmissionStateMachine(t *testing.T) {
	q := New(Options{MaxActive: 1, MaxQueue: 8, DegradeAtDepth: 2, SaturateAtDepth: 4})
	if q.State() != Healthy {
		t.Fatalf("fresh queue state = %v", q.State())
	}
	release, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*Ticket
	for i := 0; i < 4; i++ {
		tk, err := q.Enqueue(context.Background())
		if err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	if q.State() != Saturated {
		t.Fatalf("depth 4: state %v, want saturated", q.State())
	}

	// Cancel three waiters: depth 1 < DegradeAtDepth recovers only to
	// degraded (saturated never skips straight to healthy).
	for _, tk := range tickets[1:] {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := tk.Wait(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel waiter: %v", err)
		}
	}
	if q.State() != Degraded {
		t.Fatalf("depth 1: state %v, want degraded (hysteresis)", q.State())
	}

	// Fully idle resets to healthy even though the wait EWMA is warm.
	release()
	rel, err := tickets[0].Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if q.State() != Healthy {
		t.Fatalf("idle queue: state %v, want healthy", q.State())
	}
	if q.Stats().Transitions == 0 {
		t.Fatal("no state transitions counted")
	}
}

// TestAdmissionShape checks budget shaping: healthy passes through,
// degraded shrinks explicit budgets and caps unlimited ones.
func TestAdmissionShape(t *testing.T) {
	q := New(Options{MaxActive: 1, DegradeFactor: 0.25, DegradedBudget: 7})
	lim, st := q.Shape(exec.Limits{Budget: 100, Workers: 3})
	if st != Healthy || lim.Budget != 100 || lim.Workers != 3 {
		t.Fatalf("healthy shape: %+v state %v", lim, st)
	}

	q.state = Degraded // forced: shaping policy is what's under test
	lim, st = q.Shape(exec.Limits{Budget: 100, Workers: 3})
	if st != Degraded || lim.Budget != 25 || lim.Workers != 3 {
		t.Fatalf("degraded shape of 100: %+v state %v", lim, st)
	}
	lim, _ = q.Shape(exec.Limits{Budget: 2})
	if lim.Budget != 1 {
		t.Fatalf("degraded shape of 2: budget %d, want floor 1", lim.Budget)
	}
	lim, _ = q.Shape(exec.Limits{})
	if lim.Budget != 7 {
		t.Fatalf("degraded shape of unlimited: budget %d, want DegradedBudget 7", lim.Budget)
	}

	q2 := New(Options{})
	q2.state = Saturated
	lim, _ = q2.Shape(exec.Limits{})
	if lim.Budget != 0 {
		t.Fatalf("no DegradedBudget configured: budget %d, want untouched 0", lim.Budget)
	}
}

// TestAdmissionDoubleRelease checks releasing a slot twice is
// harmless: the slot count never goes negative.
func TestAdmissionDoubleRelease(t *testing.T) {
	q := New(Options{MaxActive: 2})
	release, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
	release()
	if st := q.Stats(); st.Active != 0 {
		t.Fatalf("after double release: active %d, want 0", st.Active)
	}
}

// TestAdmissionMetrics checks the obs registry wiring: admissions,
// rejections and waits land in the named series.
func TestAdmissionMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	q := New(Options{MaxActive: 1, MaxQueue: 1, Metrics: reg})
	release, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue(context.Background()); err == nil {
		t.Fatal("second waiter admitted past MaxQueue=1")
	}
	if got := reg.Gauge("admission.queue_depth").Value(); got != 1 {
		t.Fatalf("queue_depth gauge = %d, want 1", got)
	}
	// Releasing hands the slot to the queued waiter: a second admission.
	release()
	if got := reg.Counter("admission.admitted").Value(); got != 2 {
		t.Fatalf("admitted counter = %d, want 2", got)
	}
	if got := reg.Counter("admission.rejected_overload").Value(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	if got := reg.Gauge("admission.queue_depth").Value(); got != 0 {
		t.Fatalf("queue_depth gauge after handoff = %d, want 0", got)
	}
	if got := reg.Histogram("admission.wait_s", obs.LatencyBounds).Count(); got != 2 {
		t.Fatalf("wait histogram count = %d, want 2", got)
	}
}

// TestAdmissionStateJSON pins the JSON form of the load state: strings
// not integers, because /healthz consumers read it.
func TestAdmissionStateJSON(t *testing.T) {
	for st, want := range map[State]string{
		Healthy: `"healthy"`, Degraded: `"degraded"`, Saturated: `"saturated"`,
	} {
		b, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != want {
			t.Fatalf("state %d marshals to %s, want %s", int(st), b, want)
		}
	}
	b, err := json.Marshal(New(Options{}).Stats())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"state": "healthy"`) && !strings.Contains(string(b), `"state":"healthy"`) {
		t.Fatalf("stats JSON missing readable state: %s", b)
	}
}

// TestAdmissionExpectedWait checks wait estimates appear once the
// queue has hold-time history.
func TestAdmissionExpectedWait(t *testing.T) {
	q := New(Options{MaxActive: 1, MaxQueue: 8})
	// Prime the hold average with one measured hold.
	release, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	release()

	release, err = q.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	tk, err := q.Enqueue(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tk.ExpectedWait() <= 0 {
		t.Fatalf("expected wait %v, want > 0 after hold history", tk.ExpectedWait())
	}
	if tk.State() != Healthy {
		t.Fatalf("ticket state %v", tk.State())
	}
}

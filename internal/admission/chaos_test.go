package admission

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// chaosOutcome tallies how the chaos workers' attempts resolved, so
// the final accounting can prove no slot was dropped on any path.
type chaosOutcome struct {
	admitted  atomic.Int64
	canceled  atomic.Int64
	timedOut  atomic.Int64
	rejected  atomic.Int64
	kicked    atomic.Int64
	preDead   atomic.Int64
	postShut  atomic.Int64
	lateAdmit atomic.Int64
}

// TestAdmissionChaos runs randomized arrival/cancel/crash schedules
// against one queue per seed, shuts it down mid-storm, and checks the
// invariants the tentpole promises: no admission-slot leak, no
// admission after the drain completes, every waiter resolves, and the
// drained queue is fully idle. The -race runs in CI make this the
// memory-safety proof as well.
func TestAdmissionChaos(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(time.Duration(seed).String(), func(t *testing.T) {
			chaosRound(t, seed)
		})
	}
}

func chaosRound(t *testing.T, seed int64) {
	q := New(Options{
		MaxActive:    3,
		MaxQueue:     5,
		AdmitTimeout: 40 * time.Millisecond,
	})
	var (
		out     chaosOutcome
		drained atomic.Bool
		wg      sync.WaitGroup
	)
	const workers = 12
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1000 + int64(w)))
			for i := 0; i < 10; i++ {
				chaosAttempt(q, rng, &out, &drained)
				time.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
			}
		}(w)
	}

	// Let the storm build, then shut down in the middle of it.
	time.Sleep(15 * time.Millisecond)
	if err := q.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	drained.Store(true)
	wg.Wait()

	if out.lateAdmit.Load() != 0 {
		t.Fatalf("%d admissions after shutdown drained", out.lateAdmit.Load())
	}
	st := q.Stats()
	if st.Active != 0 || st.QueueDepth != 0 {
		t.Fatalf("slot leak: %+v", st)
	}
	if !st.ShuttingDown {
		t.Fatal("queue not marked shutting down")
	}
	if _, err := q.Enqueue(context.Background()); !errors.Is(err, ErrShutdown) {
		t.Fatalf("post-drain enqueue: got %v, want ErrShutdown", err)
	}
	// Every attempt resolved exactly one way; the queue's own counters
	// agree with the workers' view of admissions and kicks. A waiter
	// whose cancellation lost the race to admission is an admission to
	// the queue but a context error to its worker, and its slot was
	// returned inside Wait — so the two views differ by exactly the
	// cancellations the queue did NOT see as abandoned waiters.
	lostRace := out.canceled.Load() - st.Canceled
	if lostRace < 0 || st.Admitted != out.admitted.Load()+lostRace {
		t.Fatalf("admission accounting: queue %+v, workers admitted %d canceled %d",
			st, out.admitted.Load(), out.canceled.Load())
	}
	if st.Kicked != out.kicked.Load() {
		t.Fatalf("queue kicked %d, workers saw %d", st.Kicked, out.kicked.Load())
	}
	if out.admitted.Load() == 0 {
		t.Fatal("chaos round admitted nothing; schedule too hostile to prove anything")
	}
	t.Logf("seed %d: %+v", seed, st)
}

// chaosAttempt is one randomized request: maybe pre-cancelled, maybe
// cancelled mid-wait, maybe "crashing" (panicking) while holding the
// slot with only a deferred release to clean up — the same shape
// exec.Guard produces in a real operator.
func chaosAttempt(q *Queue, rng *rand.Rand, out *chaosOutcome, drained *atomic.Bool) {
	ctx := context.Background()
	var cancel context.CancelFunc = func() {}
	switch rng.Intn(10) {
	case 0: // pre-cancelled arrival
		ctx, cancel = context.WithCancel(ctx)
		cancel()
	case 1, 2, 3: // cancels somewhere around the admission wait
		ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(2000))*time.Microsecond)
	}
	defer cancel()

	tk, err := q.Enqueue(ctx)
	switch {
	case err == nil:
	case errors.Is(err, ErrShutdown):
		out.postShut.Add(1)
		return
	case errors.As(err, new(*ErrOverload)):
		out.rejected.Add(1)
		return
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		out.preDead.Add(1)
		return
	default:
		out.postShut.Add(1) // unreachable; counted so the test can't hang
		return
	}

	release, err := tk.Wait(ctx)
	switch {
	case err == nil:
	case errors.Is(err, ErrShutdown):
		out.kicked.Add(1)
		return
	case errors.As(err, new(*ErrTimeout)):
		out.timedOut.Add(1)
		return
	default:
		out.canceled.Add(1)
		return
	}

	out.admitted.Add(1)
	if drained.Load() {
		// Shutdown only returns once active==0 and no waiter can be
		// admitted afterwards, so this must never fire.
		out.lateAdmit.Add(1)
	}
	crashed := func() (crashed bool) {
		defer release()
		defer func() {
			if recover() != nil {
				crashed = true
			}
		}()
		time.Sleep(time.Duration(rng.Intn(1500)) * time.Microsecond)
		if rng.Intn(5) == 0 {
			panic("chaos: operator crash while holding a slot")
		}
		return false
	}()
	_ = crashed
}

// TestAdmissionChaosCancelStorm aims every waiter's context at the
// window where admission hand-off races cancellation: the slot must
// always be returned (admit-then-cancel path) or the waiter must leave
// the queue, never both and never neither.
func TestAdmissionChaosCancelStorm(t *testing.T) {
	q := New(Options{MaxActive: 1, MaxQueue: 32})
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 40; round++ {
		release, err := q.Acquire(context.Background())
		if err != nil {
			t.Fatalf("round %d holder: %v", round, err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			ctx, cancel := context.WithTimeout(context.Background(),
				time.Duration(rng.Intn(800))*time.Microsecond)
			tk, err := q.Enqueue(ctx)
			if err != nil {
				cancel()
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer cancel()
				rel, err := tk.Wait(ctx)
				if err == nil {
					rel()
				}
			}()
		}
		// Release at a random point inside the cancellation window.
		time.Sleep(time.Duration(rng.Intn(600)) * time.Microsecond)
		release()
		wg.Wait()
		if st := q.Stats(); st.Active != 0 || st.QueueDepth != 0 {
			t.Fatalf("round %d leaked: %+v", round, st)
		}
	}
}

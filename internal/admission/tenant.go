package admission

import (
	"sort"
	"sync"
	"time"

	"gea/internal/exec"
	"gea/internal/obs"
)

// Tenant-level shaping defaults.
const (
	// DefaultTenantWindow is the decay horizon for a tenant's work
	// debt: an idle tenant sheds one full envelope of debt per window.
	DefaultTenantWindow = 10 * time.Second
	// DefaultTenantDegradeFactor scales a throttled tenant's explicit
	// budgets, mirroring the queue-wide DegradeFactor default.
	DefaultTenantDegradeFactor = 0.25
)

// TenantPolicy configures a Tenants governor; the zero value of every
// field selects its default.
type TenantPolicy struct {
	// Envelope is the work-budget envelope per tenant, in exec units
	// per Window. A tenant whose outstanding debt reaches the envelope
	// is shaped down until the debt decays. Zero disables tenant
	// shaping entirely (NewTenants returns nil).
	Envelope int64
	// Window is the decay horizon for debt; zero means
	// DefaultTenantWindow.
	Window time.Duration
	// DegradeFactor scales a throttled tenant's explicit budgets; zero
	// means DefaultTenantDegradeFactor, values above 1 clamp to 1.
	DegradeFactor float64
	// DegradedBudget caps a throttled tenant's otherwise-unlimited
	// budgets; zero means the envelope itself.
	DegradedBudget int64
	// Metrics optionally records the tenant.* series; nil disables
	// instrumentation.
	Metrics *obs.Registry
}

// tenantState is one tenant's leaky bucket: debt is the unexpired work
// charged against the envelope, decaying at Envelope per Window.
type tenantState struct {
	debt    float64
	lastAt  time.Time
	charged int64
}

// Tenants is the per-tenant admission governor layered on top of the
// shared Queue: the queue protects the process, the governor makes one
// heavy tenant degrade itself before it degrades the fleet. Each
// tenant carries a leaky-bucket work debt; while the debt is at or
// above the envelope, that tenant's requests are shaped exactly like
// queue-wide degradation — explicit budgets scaled down, unlimited
// budgets capped — so its operations finish early with flagged
// partials while everyone else runs at full budget.
//
// A nil *Tenants is a valid no-op governor: every method is
// nil-receiver safe, so callers never branch on whether tenant shaping
// is configured.
type Tenants struct {
	envelope       int64
	window         time.Duration
	degradeFactor  float64
	degradedBudget int64
	now            func() time.Time

	charge, throttled *obs.Counter
	known             *obs.Gauge

	mu sync.Mutex
	by map[string]*tenantState
}

// NewTenants builds a governor from pol; a zero Envelope returns nil —
// the valid "no tenant shaping" governor.
func NewTenants(pol TenantPolicy) *Tenants {
	if pol.Envelope <= 0 {
		return nil
	}
	if pol.Window <= 0 {
		pol.Window = DefaultTenantWindow
	}
	if pol.DegradeFactor <= 0 {
		pol.DegradeFactor = DefaultTenantDegradeFactor
	}
	if pol.DegradeFactor > 1 {
		pol.DegradeFactor = 1
	}
	if pol.DegradedBudget <= 0 {
		pol.DegradedBudget = pol.Envelope
	}
	r := pol.Metrics
	return &Tenants{
		envelope:       pol.Envelope,
		window:         pol.Window,
		degradeFactor:  pol.DegradeFactor,
		degradedBudget: pol.DegradedBudget,
		now:            time.Now,
		charge:         r.Counter("tenant.charged_units"),
		throttled:      r.Counter("tenant.throttled"),
		known:          r.Gauge("tenant.known"),
		by:             map[string]*tenantState{},
	}
}

// stateLocked returns tenant's bucket with its debt decayed to now.
func (t *Tenants) stateLocked(tenant string, now time.Time) *tenantState {
	ts, ok := t.by[tenant]
	if !ok {
		ts = &tenantState{lastAt: now}
		t.by[tenant] = ts
		t.known.Set(int64(len(t.by)))
		return ts
	}
	if dt := now.Sub(ts.lastAt); dt > 0 {
		ts.debt -= float64(t.envelope) * (float64(dt) / float64(t.window))
		if ts.debt < 0 {
			ts.debt = 0
		}
	}
	ts.lastAt = now
	return ts
}

// Charge records units of completed work against tenant's envelope.
// The empty tenant is the anonymous fleet and is never shaped, so its
// work is not tracked.
func (t *Tenants) Charge(tenant string, units int64) {
	if t == nil || tenant == "" || units <= 0 {
		return
	}
	t.mu.Lock()
	ts := t.stateLocked(tenant, t.now())
	ts.debt += float64(units)
	ts.charged += units
	t.mu.Unlock()
	t.charge.Add(units)
}

// Shape applies tenant-level shaping to a request's limits and reports
// whether the tenant was throttled. Limits pass through untouched for
// a nil governor, the anonymous tenant, or a tenant under its
// envelope.
func (t *Tenants) Shape(tenant string, lim exec.Limits) (exec.Limits, bool) {
	if t == nil || tenant == "" {
		return lim, false
	}
	t.mu.Lock()
	ts := t.stateLocked(tenant, t.now())
	over := ts.debt >= float64(t.envelope)
	t.mu.Unlock()
	if !over {
		return lim, false
	}
	t.throttled.Add(1)
	if lim.Budget > 0 {
		b := int64(float64(lim.Budget) * t.degradeFactor)
		if b < 1 {
			b = 1
		}
		lim.Budget = b
	} else {
		lim.Budget = t.degradedBudget
	}
	return lim, true
}

// TenantStat is one tenant's snapshot inside TenantsStats.
type TenantStat struct {
	Tenant string `json:"tenant"`
	// Debt is the unexpired work charged against the envelope, in
	// exec units.
	Debt int64 `json:"debt"`
	// Charged is the lifetime units this tenant has been charged.
	Charged int64 `json:"charged"`
	// Throttled reports whether the tenant is currently shaped down.
	Throttled bool `json:"throttled"`
}

// TenantsStats is a point-in-time snapshot of the governor, JSON-ready
// for /healthz.
type TenantsStats struct {
	Envelope int64        `json:"envelope"`
	Window   string       `json:"window"`
	Tenants  []TenantStat `json:"tenants,omitempty"`
}

// Stats snapshots every known tenant, sorted by name; a nil governor
// reports the zero value.
func (t *Tenants) Stats() TenantsStats {
	if t == nil {
		return TenantsStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	s := TenantsStats{Envelope: t.envelope, Window: t.window.String()}
	for name := range t.by {
		ts := t.stateLocked(name, now)
		s.Tenants = append(s.Tenants, TenantStat{
			Tenant:    name,
			Debt:      int64(ts.debt),
			Charged:   ts.charged,
			Throttled: ts.debt >= float64(t.envelope),
		})
	}
	sort.Slice(s.Tenants, func(i, j int) bool { return s.Tenants[i].Tenant < s.Tenants[j].Tenant })
	return s
}

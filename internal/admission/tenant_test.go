package admission

import (
	"testing"
	"time"

	"gea/internal/exec"
	"gea/internal/obs"
)

// fakeClock drives a Tenants governor deterministically.
type fakeClock struct{ at time.Time }

func (f *fakeClock) now() time.Time          { return f.at }
func (f *fakeClock) advance(d time.Duration) { f.at = f.at.Add(d) }

func newTestTenants(pol TenantPolicy) (*Tenants, *fakeClock) {
	t := NewTenants(pol)
	clk := &fakeClock{at: time.Unix(1000, 0)}
	t.now = clk.now
	return t, clk
}

func TestTenantsNilIsNoop(t *testing.T) {
	var g *Tenants
	lim := exec.Limits{Budget: 100}
	got, throttled := g.Shape("heavy", lim)
	if throttled || got != lim {
		t.Errorf("nil governor shaped: %+v throttled=%v", got, throttled)
	}
	g.Charge("heavy", 50) // must not panic
	if st := g.Stats(); len(st.Tenants) != 0 {
		t.Errorf("nil governor has tenants: %+v", st)
	}
	if NewTenants(TenantPolicy{}) != nil {
		t.Error("zero envelope should disable tenant shaping")
	}
}

func TestTenantsThrottleAtEnvelope(t *testing.T) {
	g, _ := newTestTenants(TenantPolicy{Envelope: 100})
	lim := exec.Limits{Budget: 80}

	if got, throttled := g.Shape("a", lim); throttled || got.Budget != 80 {
		t.Fatalf("fresh tenant shaped: %+v throttled=%v", got, throttled)
	}
	g.Charge("a", 60)
	if _, throttled := g.Shape("a", lim); throttled {
		t.Fatal("tenant under envelope throttled")
	}
	g.Charge("a", 60) // 120 ≥ 100
	got, throttled := g.Shape("a", lim)
	if !throttled {
		t.Fatal("tenant over envelope not throttled")
	}
	if got.Budget != 20 { // 80 × 0.25
		t.Errorf("shaped budget=%d, want 20", got.Budget)
	}

	// The heavy tenant degrades itself, not the fleet.
	if got, throttled := g.Shape("b", lim); throttled || got.Budget != 80 {
		t.Errorf("other tenant shaped: %+v throttled=%v", got, throttled)
	}
}

func TestTenantsUnlimitedBudgetCapped(t *testing.T) {
	g, _ := newTestTenants(TenantPolicy{Envelope: 100, DegradedBudget: 40})
	g.Charge("a", 200)
	got, throttled := g.Shape("a", exec.Limits{})
	if !throttled || got.Budget != 40 {
		t.Errorf("unlimited budget not capped: %+v throttled=%v", got, throttled)
	}
	// DegradedBudget defaults to the envelope itself.
	g2, _ := newTestTenants(TenantPolicy{Envelope: 100})
	g2.Charge("a", 200)
	if got, _ := g2.Shape("a", exec.Limits{}); got.Budget != 100 {
		t.Errorf("default degraded budget=%d, want envelope 100", got.Budget)
	}
}

func TestTenantsDebtDecays(t *testing.T) {
	g, clk := newTestTenants(TenantPolicy{Envelope: 100, Window: 10 * time.Second})
	g.Charge("a", 150)
	if _, throttled := g.Shape("a", exec.Limits{Budget: 10}); !throttled {
		t.Fatal("not throttled at debt 150")
	}
	// Debt leaks at envelope/window = 10 units/s: after 6s, 150-60=90.
	clk.advance(6 * time.Second)
	if _, throttled := g.Shape("a", exec.Limits{Budget: 10}); throttled {
		t.Fatal("still throttled after decay below envelope")
	}
	// Debt floors at zero rather than banking negative credit.
	clk.advance(time.Hour)
	g.Charge("a", 99)
	if _, throttled := g.Shape("a", exec.Limits{Budget: 10}); throttled {
		t.Fatal("throttled at 99 after full decay — debt went negative?")
	}
	g.Charge("a", 1)
	if _, throttled := g.Shape("a", exec.Limits{Budget: 10}); !throttled {
		t.Fatal("not throttled at exactly the envelope")
	}
}

func TestTenantsAnonymousNeverShaped(t *testing.T) {
	g, _ := newTestTenants(TenantPolicy{Envelope: 10})
	g.Charge("", 1_000_000)
	if _, throttled := g.Shape("", exec.Limits{Budget: 5}); throttled {
		t.Error("anonymous tenant throttled")
	}
	if st := g.Stats(); len(st.Tenants) != 0 {
		t.Errorf("anonymous tenant tracked: %+v", st.Tenants)
	}
}

func TestTenantsStatsAndMetrics(t *testing.T) {
	r := obs.NewRegistry()
	g := NewTenants(TenantPolicy{Envelope: 100, Metrics: r})
	clk := &fakeClock{at: time.Unix(1000, 0)}
	g.now = clk.now

	g.Charge("b", 150)
	g.Charge("a", 10)
	g.Shape("b", exec.Limits{Budget: 10}) // throttled
	g.Shape("a", exec.Limits{Budget: 10}) // not

	st := g.Stats()
	if st.Envelope != 100 || len(st.Tenants) != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Tenants[0].Tenant != "a" || st.Tenants[1].Tenant != "b" {
		t.Errorf("tenants not sorted: %+v", st.Tenants)
	}
	if st.Tenants[0].Throttled || !st.Tenants[1].Throttled {
		t.Errorf("throttle flags wrong: %+v", st.Tenants)
	}
	if st.Tenants[1].Charged != 150 {
		t.Errorf("charged=%d, want 150", st.Tenants[1].Charged)
	}

	snap := r.Snapshot()
	vals := map[string]int64{}
	for _, c := range snap.Counters {
		vals[c.Name] = c.Value
	}
	for _, gp := range snap.Gauges {
		vals[gp.Name] = gp.Value
	}
	if vals["tenant.charged_units"] != 160 {
		t.Errorf("tenant.charged_units=%d, want 160", vals["tenant.charged_units"])
	}
	if vals["tenant.throttled"] != 1 {
		t.Errorf("tenant.throttled=%d, want 1", vals["tenant.throttled"])
	}
	if vals["tenant.known"] != 2 {
		t.Errorf("tenant.known=%d, want 2", vals["tenant.known"])
	}
}

// Package analysis is a dependency-free mirror of the
// golang.org/x/tools/go/analysis framework, sized for GEA's own linter
// suite (cmd/geacheck). The toolchain image this repository builds in has
// no module proxy access, so rather than vendoring x/tools the toolkit
// carries the ~small subset it needs: an Analyzer/Pass/Diagnostic triple
// with the same field names and semantics, a package loader built on
// `go list -export` (internal/analysis/load), and an analysistest-style
// golden harness (internal/analysis/antest). Swapping a GEA analyzer onto
// the real x/tools framework is a mechanical import change.
//
// The suite exists to machine-enforce the execution-governance contract
// that PR 2 threaded through the operator algebra — checkpointed loops,
// With/Ctx/legacy triads, lock discipline, sentinel-wrapped errors,
// flagged partial results, and panic isolation. See ANALYSIS.md for the
// catalogue of analyzers and the invariant each one guards.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass: a name (also the key used
// by //lint:gea suppression directives), documentation, and a Run
// function applied once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// directives. By convention a short lowercase word ("ctlcharge").
	Name string
	// Doc is the first sentence summary followed by a longer
	// description, in the style of go/analysis.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through pass.Report / pass.Reportf. It returns an error only for
	// internal failures (not for findings).
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer's Run function, mirroring go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver owns ordering,
	// suppression filtering and formatting.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, positioned inside the package being
// analyzed.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic as the driver emits it: a Diagnostic
// plus the analyzer that produced it and its resolved file position.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// Run applies one analyzer to one package and returns the raw
// diagnostics (unfiltered: suppression is the driver's job, via Filter).
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
	}
	return diags, nil
}

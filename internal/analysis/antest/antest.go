// Package antest is the golden-file test harness for GEA's analyzers —
// an offline mirror of golang.org/x/tools/go/analysis/analysistest.
// Corpus packages live GOPATH-style under a shared testdata/src tree
// (import path == directory under src). Expected findings are declared
// inline with want comments:
//
//	for i := 0; i < n; i++ { // want `loop does not checkpoint`
//
// A line must produce exactly the diagnostics its want comment lists
// (each quoted string is a regexp matched against one diagnostic), and
// lines without a want comment must produce none — so a "good" corpus
// package is simply one with no want comments at all.
//
// The harness applies the framework's //lint:gea suppression filtering,
// so corpora can also assert end-to-end that a reasoned directive
// silences a finding.
//
// Imports inside corpus packages resolve first against testdata/src
// (stub packages such as gea/internal/exec), then against the standard
// library via the compiler export data that `go list -export` provides.
package antest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"gea/internal/analysis"
	"gea/internal/analysis/load"
	"gea/internal/analysis/stdimport"
)

// SharedTestData returns the suite-wide testdata directory,
// internal/analysis/testdata, resolved from the calling test's package
// directory (go test always runs a test binary in its package dir, so
// ../testdata is stable for every analyzer package in the suite).
func SharedTestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("../testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run loads each corpus package from testdata/src/<path>, applies the
// analyzer, filters suppressed findings, and compares the rest against
// the corpus's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	ld := newLoader(filepath.Join(testdata, "src"))
	for _, path := range pkgpaths {
		t.Run(strings.ReplaceAll(path, "/", "_"), func(t *testing.T) {
			pkg, err := ld.load(path)
			if err != nil {
				t.Fatalf("loading corpus %s: %v", path, err)
			}
			diags, err := analysis.Run(a, ld.fset, pkg.files, pkg.types, pkg.info)
			if err != nil {
				t.Fatalf("running %s on %s: %v", a.Name, path, err)
			}
			findings := make([]analysis.Finding, 0, len(diags))
			for _, d := range diags {
				findings = append(findings, analysis.Finding{
					Analyzer: a.Name,
					Position: ld.fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			dirs := make(map[string][]analysis.Directive)
			for _, f := range pkg.files {
				name := ld.fset.Position(f.Pos()).Filename
				dirs[name] = analysis.ParseDirectives(ld.fset, f)
			}
			findings = analysis.Filter(findings, dirs)
			check(t, ld.fset, pkg.files, findings)
		})
	}
}

// Reporter is the slice of testing.T the harness needs, split out so
// the harness can itself be tested: a fake reporter captures what a
// corpus mismatch reports instead of failing the real test.
type Reporter interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// want is one line's expectations.
type want struct {
	res []*regexp.Regexp
	hit []bool
}

type lineKey struct {
	file string
	line int
}

// check compares findings against the want comments of the corpus files.
// Every finding must land inside a corpus file — an analyzer that
// reports into a stub, another package, or token.NoPos has escaped the
// corpus and is rejected outright, because a position like that can
// never be asserted by a want comment.
func check(t Reporter, fset *token.FileSet, files []*ast.File, findings []analysis.Finding) {
	t.Helper()
	corpus := make(map[string]bool, len(files))
	for _, f := range files {
		corpus[fset.Position(f.Pos()).Filename] = true
	}
	wants := make(map[lineKey]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// A want expectation may follow other comment text on the
				// same line (e.g. after a //lint:gea directive under test),
				// so look for the "// want " marker anywhere in the comment.
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				w, err := parseWant(c.Text[idx+len("// want "):])
				if err != nil {
					t.Fatalf("%s: bad want comment: %v", pos, err)
				}
				wants[lineKey{pos.Filename, pos.Line}] = w
			}
		}
	}

	for _, f := range findings {
		if !corpus[f.Position.Filename] {
			t.Errorf("analyzer reported outside the corpus package: %s: %s", f.Position, f.Message)
			continue
		}
		k := lineKey{f.Position.Filename, f.Position.Line}
		w := wants[k]
		matched := false
		if w != nil {
			for i, re := range w.res {
				if !w.hit[i] && re.MatchString(f.Message) {
					w.hit[i] = true
					matched = true
					break
				}
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", f.Position, f.Message)
		}
	}
	for k, w := range wants {
		for i, re := range w.res {
			if !w.hit[i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

// parseWant splits a want comment body into its quoted regexps.
func parseWant(s string) (*want, error) {
	w := &want{}
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		s = s[len(q):]
		lit, err := strconv.Unquote(q)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, err
		}
		w.res = append(w.res, re)
		w.hit = append(w.hit, false)
	}
	if len(w.res) == 0 {
		return nil, fmt.Errorf("want comment lists no regexps")
	}
	return w, nil
}

// loadedPkg is one type-checked corpus (or stub) package.
type loadedPkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loader resolves corpus imports: testdata/src first, stdlib second.
type loader struct {
	srcDir string
	fset   *token.FileSet
	std    types.Importer
	pkgs   map[string]*loadedPkg
	// loading guards against import cycles in corpus packages.
	loading map[string]bool
}

func newLoader(srcDir string) *loader {
	l := &loader{
		srcDir:  srcDir,
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*loadedPkg),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.fset, "gc", stdimport.Lookup)
	return l
}

// Import implements types.Importer for the type-checker's benefit.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.types, nil
	}
	if st, err := os.Stat(filepath.Join(l.srcDir, filepath.FromSlash(path))); err == nil && st.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks testdata/src/<path>.
func (l *loader) load(path string) (*loadedPkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.srcDir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := load.NewInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &loadedPkg{files: files, types: tpkg, info: info}
	l.pkgs[path] = p
	return p, nil
}

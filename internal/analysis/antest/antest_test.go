// White-box tests for the harness itself: a golden-file harness that
// silently mis-reads its goldens poisons every corpus built on it, so
// its failure modes get pinned here with a fake reporter.
package antest

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gea/internal/analysis"
)

// fakeReporter captures harness verdicts instead of failing the test.
type fakeReporter struct {
	errors []string
	fatals []string
}

func (r *fakeReporter) Helper() {}

func (r *fakeReporter) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}

// Fatalf panics to emulate testing.T's abort-the-test semantics; tests
// recover it via expectFatal.
func (r *fakeReporter) Fatalf(format string, args ...any) {
	r.fatals = append(r.fatals, fmt.Sprintf(format, args...))
	panic(r)
}

// loadCorpus writes src as a one-file corpus package under a temp
// GOPATH-style tree and loads it through the real loader.
func loadCorpus(t *testing.T, src string) (*token.FileSet, []*ast.File, *loadedPkg) {
	t.Helper()
	dir := t.TempDir()
	pkgDir := filepath.Join(dir, "src", "corpus")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkgDir, "corpus.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	ld := newLoader(filepath.Join(dir, "src"))
	pkg, err := ld.load("corpus")
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	return ld.fset, pkg.files, pkg
}

// reportEveryFunc flags each function declaration with the given
// message — a deterministic diagnostic source for harness tests.
func reportEveryFunc(msgs ...string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "selftest",
		Doc:  "reports on every function declaration",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fn, ok := d.(*ast.FuncDecl); ok {
						for _, m := range msgs {
							pass.Reportf(fn.Pos(), "%s", m)
						}
					}
				}
			}
			return nil
		},
	}
}

func runAnalyzer(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, pkg *loadedPkg) []analysis.Finding {
	t.Helper()
	diags, err := analysis.Run(a, fset, pkg.files, pkg.types, pkg.info)
	if err != nil {
		t.Fatalf("running analyzer: %v", err)
	}
	findings := make([]analysis.Finding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, analysis.Finding{
			Analyzer: a.Name,
			Position: fset.Position(d.Pos),
			Message:  d.Message,
		})
	}
	return findings
}

func hasError(r *fakeReporter, substr string) bool {
	for _, e := range r.errors {
		if strings.Contains(e, substr) {
			return true
		}
	}
	return false
}

// TestWrongWantFailsLoudly pins the core harness guarantee: a want
// regexp that does not match the diagnostic fails twice over — the
// diagnostic is unexpected AND the expectation is unmet — so a typo'd
// golden can never pass silently.
func TestWrongWantFailsLoudly(t *testing.T) {
	fset, files, pkg := loadCorpus(t, `package corpus

func F() {} // want "completely different message"
`)
	findings := runAnalyzer(t, reportEveryFunc("func seen"), fset, pkg)
	r := &fakeReporter{}
	check(r, fset, files, findings)
	if !hasError(r, "unexpected diagnostic") {
		t.Errorf("mismatched want did not report the unexpected diagnostic; got %q", r.errors)
	}
	if !hasError(r, "expected diagnostic matching") {
		t.Errorf("mismatched want did not report the unmet expectation; got %q", r.errors)
	}
}

// TestMissingDiagnosticFails pins the other direction: a want with no
// diagnostic at all must fail.
func TestMissingDiagnosticFails(t *testing.T) {
	fset, files, _ := loadCorpus(t, `package corpus

var x = 1 // want "never produced"
`)
	r := &fakeReporter{}
	check(r, fset, files, nil)
	if len(r.errors) != 1 || !hasError(r, "expected diagnostic matching") {
		t.Errorf("unmet want not reported exactly once; got %q", r.errors)
	}
}

// TestOverlappingDiagnosticsAllMatch pins multi-diagnostic lines: every
// regexp in the want list must be consumed by a distinct diagnostic,
// and all diagnostics must be consumed by a distinct regexp.
func TestOverlappingDiagnosticsAllMatch(t *testing.T) {
	src := `package corpus

func F() {} // want "first issue" "second issue"
`
	fset, files, pkg := loadCorpus(t, src)
	findings := runAnalyzer(t, reportEveryFunc("first issue", "second issue"), fset, pkg)
	if len(findings) != 2 {
		t.Fatalf("expected 2 findings, got %d", len(findings))
	}

	r := &fakeReporter{}
	check(r, fset, files, findings)
	if len(r.errors) != 0 {
		t.Errorf("fully-matched overlapping diagnostics still failed: %q", r.errors)
	}

	// Dropping one regexp must surface the now-unmatched diagnostic.
	fset2, files2, pkg2 := loadCorpus(t, strings.Replace(src, ` "second issue"`, "", 1))
	findings2 := runAnalyzer(t, reportEveryFunc("first issue", "second issue"), fset2, pkg2)
	r2 := &fakeReporter{}
	check(r2, fset2, files2, findings2)
	if !hasError(r2, "unexpected diagnostic") {
		t.Errorf("extra overlapping diagnostic not reported; got %q", r2.errors)
	}
}

// TestOutsideCorpusRejected pins the escape hatch shut: an analyzer
// reporting at token.NoPos (or into any non-corpus file) is rejected
// even though no want comment could ever assert that position.
func TestOutsideCorpusRejected(t *testing.T) {
	fset, files, pkg := loadCorpus(t, `package corpus

func F() {}
`)
	escapee := &analysis.Analyzer{
		Name: "selftest",
		Doc:  "reports outside the corpus",
		Run: func(pass *analysis.Pass) error {
			pass.Reportf(token.NoPos, "finding from nowhere")
			return nil
		},
	}
	findings := runAnalyzer(t, escapee, fset, pkg)
	r := &fakeReporter{}
	check(r, fset, files, findings)
	if !hasError(r, "outside the corpus package") {
		t.Errorf("out-of-corpus report not rejected; got %q", r.errors)
	}
}

// TestBadWantCommentAborts pins the golden-parse guardrail: an
// unparsable want comment is a corpus bug and must abort the run, not
// degrade into "no expectations on this line".
func TestBadWantCommentAborts(t *testing.T) {
	fset, files, _ := loadCorpus(t, `package corpus

func F() {} // want unquoted-regexp
`)
	r := &fakeReporter{}
	func() {
		defer func() { recover() }()
		check(r, fset, files, nil)
	}()
	if len(r.fatals) != 1 || !strings.Contains(r.fatals[0], "bad want comment") {
		t.Errorf("malformed want comment did not abort; fatals=%q errors=%q", r.fatals, r.errors)
	}
}

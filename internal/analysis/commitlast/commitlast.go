// Package commitlast enforces the generation-commit protocol of
// internal/atomicio: a generation directory is written COMPLETELY,
// fsynced, and only then does atomicio.Commit flip the CURRENT pointer
// — the single atomic commit point. Any fallible filesystem mutation
// sequenced after the flip breaks crash-safety both ways: it can fail
// after readers were already told the new generation is live, and if it
// targets the committed generation dir it mutates state a concurrent
// reader may be walking. Only best-effort cleanup of OLD generations
// (CleanupGens, CleanupGensExcept, RemoveAll) is legitimate after the
// flip, and the protocol docs already demand its errors be ignored.
//
// The analyzer looks at every function that calls atomicio.Commit and
// flags, textually after the first commit point:
//
//   - further atomicio.WriteFile / WriteFileFunc / NextGen calls;
//   - a second atomicio.Commit (one commit point per sequence — a
//     retry of the same call site is fine, a second flip is not);
//   - FS mutations (Create, Rename, MkdirAll) on an atomicio.FS.
//
// "After" is positional within the function, which matches how commit
// sequences are written here (straight-line build → commit → adopt);
// a closure defined after the flip but invoked before it would be
// misflagged, and deserves the rewrite anyway.
//
// The atomicio package itself is exempt: Commit's own implementation
// is made of the primitives this analyzer polices.
package commitlast

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gea/internal/analysis"
)

// Analyzer flags fallible filesystem work sequenced after a CURRENT flip.
var Analyzer = &analysis.Analyzer{
	Name: "commitlast",
	Doc:  "the atomicio.Commit CURRENT flip must be the final fallible operation of a commit sequence",
	Run:  run,
}

// mutators are the atomicio package-level functions that build
// generation state and must precede the flip.
var mutators = map[string]bool{
	"WriteFile":     true,
	"WriteFileFunc": true,
	"NextGen":       true,
	"Commit":        true,
}

// fsMutators are the methods of atomicio.FS that mutate the tree.
var fsMutators = map[string]bool{
	"Create":   true,
	"Rename":   true,
	"MkdirAll": true,
}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/atomicio") {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// atomicioFunc returns the name of the atomicio package-level function
// call resolves to, or "".
func atomicioFunc(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/atomicio") {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return ""
	}
	return fn.Name()
}

// isFSMutation reports whether call is a mutating method on an
// atomicio.FS value.
func isFSMutation(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !fsMutators[sel.Sel.Name] {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "FS" && strings.HasSuffix(named.Obj().Pkg().Path(), "internal/atomicio")
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	// Find the first CURRENT flip in the function, if any.
	var commitEnd token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if commitEnd.IsValid() {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && atomicioFunc(pass, call) == "Commit" {
			commitEnd = call.End()
			return false
		}
		return true
	})
	if !commitEnd.IsValid() {
		return
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= commitEnd {
			return true
		}
		if name := atomicioFunc(pass, call); mutators[name] {
			if name == "Commit" {
				pass.Reportf(call.Pos(), "second atomicio.Commit after the CURRENT flip: a commit sequence has exactly one commit point")
			} else {
				pass.Reportf(call.Pos(), "atomicio.%s after the CURRENT flip: the commit must be the final fallible operation; only generation cleanup may follow", name)
			}
			return true
		}
		if isFSMutation(pass, call) {
			sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			pass.Reportf(call.Pos(), "FS.%s after the CURRENT flip: a committed generation is immutable and readers may already be walking it", sel.Sel.Name)
		}
		return true
	})
}

package commitlast_test

import (
	"testing"

	"gea/internal/analysis/antest"
	"gea/internal/analysis/commitlast"
)

func TestCommitlast(t *testing.T) {
	antest.Run(t, antest.SharedTestData(t), commitlast.Analyzer, "commitlastbad", "commitlastgood")
}

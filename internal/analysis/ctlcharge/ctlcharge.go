// Package ctlcharge enforces the checkpoint discipline of the metered
// operator implementations: inside a function that threads a *exec.Ctl,
// every outermost loop must charge work through the Ctl — either by
// calling its Point method directly or by delegating to another metered
// function that receives the Ctl. A loop that does neither is an
// unbounded hot loop: cancellation, deadlines and work budgets are all
// invisible to it, which is exactly the failure the governance layer of
// PR 2 exists to prevent.
//
// Only outermost loops are checked: an inner loop is covered by the
// charge its enclosing loop makes per iteration (charging at the finest
// granularity is a per-operator tuning decision, not a contract).
//
// Shard kernels — function literals that receive their own *exec.Ctl,
// the shape shard.For dispatches onto worker-sliced budgets — are
// independent metered scopes: their loops must charge their own Ctl,
// and they are checked wherever the literal appears, even inside a
// function that threads no Ctl itself. Conversely the enclosing scan
// never looks inside a kernel, so a kernel's internal charges cannot
// masquerade as the checkpoint of an outer loop that merely defines it.
package ctlcharge

import (
	"go/ast"
	"go/types"

	"gea/internal/analysis"
)

// Analyzer flags loops in Ctl-threaded functions that never checkpoint.
var Analyzer = &analysis.Analyzer{
	Name: "ctlcharge",
	Doc:  "flag loops in *exec.Ctl-carrying functions that neither call Point nor delegate to a metered helper",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			sig := analysis.FuncType(pass.TypesInfo, fn)
			if sig != nil && analysis.CtlParam(sig) != nil {
				checkLoops(pass, fn.Body, false)
			}
			// Every shard kernel in the function is its own metered
			// scope, whether or not the enclosing function threads a
			// Ctl. checkLoops and checkpoints skip kernel literals, so
			// this inspection is the one place each kernel is checked.
			ast.Inspect(fn.Body, func(node ast.Node) bool {
				if lit, ok := node.(*ast.FuncLit); ok && isKernel(pass, lit) {
					checkLoops(pass, lit.Body, false)
				}
				return true
			})
		}
	}
	return nil
}

// isKernel reports whether the function literal receives its own
// *exec.Ctl — the shard-kernel shape, making it an independent metered
// scope.
func isKernel(pass *analysis.Pass, lit *ast.FuncLit) bool {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return false
	}
	return analysis.CtlParam(sig) != nil
}

// checkLoops reports outermost loops without a checkpoint. enclosed is
// true once we are inside any loop (checkpointing or not): nested loops
// are never reported separately.
func checkLoops(pass *analysis.Pass, n ast.Node, enclosed bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		var body *ast.BlockStmt
		switch l := node.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		case *ast.FuncLit:
			// A shard kernel is its own scope, checked independently.
			return !isKernel(pass, l)
		default:
			return true
		}
		if !enclosed && !checkpoints(pass, body) {
			pass.Reportf(node.Pos(), "loop does not checkpoint: call the *exec.Ctl's Point method or pass the Ctl to a metered helper so cancellation and budgets reach this loop")
		}
		// Descend exactly once, marking everything below as enclosed.
		checkLoops(pass, body, true)
		return false
	})
}

// checkpoints reports whether the subtree charges the Ctl: a Point call
// on a *exec.Ctl value, or any call that passes a *exec.Ctl onward.
func checkpoints(pass *analysis.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		if found {
			return false
		}
		if lit, ok := node.(*ast.FuncLit); ok && isKernel(pass, lit) {
			// A kernel's internal charges belong to its own sliced Ctl;
			// defining one does not checkpoint the enclosing loop.
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Point" {
			if tv, ok := pass.TypesInfo.Types[sel.X]; ok && analysis.IsExecCtl(tv.Type) {
				found = true
				return false
			}
		}
		for _, arg := range call.Args {
			if tv, ok := pass.TypesInfo.Types[arg]; ok && analysis.IsExecCtl(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

package ctlcharge_test

import (
	"testing"

	"gea/internal/analysis/antest"
	"gea/internal/analysis/ctlcharge"
)

func TestCtlcharge(t *testing.T) {
	antest.Run(t, antest.SharedTestData(t), ctlcharge.Analyzer, "ctlchargebad", "ctlchargegood", "shardbad", "shardgood")
}

// Package errwrap enforces sentinel discipline on the
// cancellation/budget error paths of governed packages: callers must be
// able to dispatch on errors.Is(err, context.Canceled /
// context.DeadlineExceeded / exec.ErrBudget) no matter how many
// operator layers wrapped the error. Three anti-patterns are flagged:
//
//   - fmt.Errorf with a message about cancellation, deadlines or
//     budgets that has no %w verb: the sentinel is narrated instead of
//     wrapped, so errors.Is stops working;
//   - errors.New with such a message: a stringly-typed imitation of a
//     sentinel;
//   - direct == / != comparison against one of the sentinels: operators
//     wrap sentinels (e.g. in *exec.ExecError), so only errors.Is is a
//     reliable test.
//
// A package is governed when it is one of the operator packages or
// imports the internal/exec governance layer.
package errwrap

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"gea/internal/analysis"
)

// Analyzer flags stringly-typed cancellation/budget errors and direct
// sentinel comparisons.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "cancellation/budget errors must wrap their sentinels (%w + errors.Is), never restate them as strings",
	Run:  run,
}

// keywords mark an error message as being about a governance stop.
var keywords = []string{"cancel", "deadline", "budget"}

func run(pass *analysis.Pass) error {
	if !governed(pass.Pkg) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkErrorCtor(pass, x)
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, x)
			}
			return true
		})
	}
	return nil
}

// governed reports whether the package is bound by the governance
// contract.
func governed(pkg *types.Package) bool {
	if analysis.IsOperatorPkg(pkg.Path()) {
		return true
	}
	for _, imp := range pkg.Imports() {
		if analysis.IsExecPkg(imp.Path()) {
			return true
		}
	}
	return false
}

// checkErrorCtor flags fmt.Errorf / errors.New building a
// governance-keyword message without wrapping.
func checkErrorCtor(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return
	}
	msg, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if !hasKeyword(msg) {
		return
	}
	switch {
	case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
		if !strings.Contains(msg, "%w") {
			pass.Reportf(call.Pos(), "error about cancellation/deadline/budget does not wrap its sentinel: use %%w so errors.Is(err, context.Canceled / exec.ErrBudget) keeps working")
		}
	case fn.Pkg().Path() == "errors" && fn.Name() == "New":
		pass.Reportf(call.Pos(), "stringly-typed cancellation/deadline/budget error: wrap the governance sentinel with fmt.Errorf(\"...: %%w\", err) instead of errors.New")
	}
}

func hasKeyword(msg string) bool {
	lower := strings.ToLower(msg)
	for _, k := range keywords {
		if strings.Contains(lower, k) {
			return true
		}
	}
	return false
}

// checkSentinelCompare flags err == context.Canceled-style comparisons.
func checkSentinelCompare(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op.String() != "==" && be.Op.String() != "!=" {
		return
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if name, ok := sentinelName(pass.TypesInfo, side); ok {
			pass.Reportf(be.Pos(), "direct comparison against %s: operators wrap sentinels, use errors.Is instead", name)
			return
		}
	}
}

// sentinelName recognises the governance sentinels.
func sentinelName(info *types.Info, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return "", false
	}
	switch {
	case v.Pkg().Path() == "context" && (v.Name() == "Canceled" || v.Name() == "DeadlineExceeded"):
		return "context." + v.Name(), true
	case analysis.IsExecPkg(v.Pkg().Path()) && v.Name() == "ErrBudget":
		return "exec.ErrBudget", true
	}
	return "", false
}

package errwrap_test

import (
	"testing"

	"gea/internal/analysis/antest"
	"gea/internal/analysis/errwrap"
)

func TestErrwrap(t *testing.T) {
	antest.Run(t, antest.SharedTestData(t), errwrap.Analyzer, "errwrapbad", "errwrapgood")
}

// Package geacheck assembles GEA's analyzer suite into a runnable
// multichecker — the library behind cmd/geacheck. It loads packages with
// internal/analysis/load, applies every analyzer, filters //lint:gea
// suppressions, and prints findings in the familiar
// path:line:col: message (analyzer) shape. See ANALYSIS.md for the
// catalogue of analyzers and the invariants they enforce.
package geacheck

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"

	"gea/internal/analysis"
	"gea/internal/analysis/ctlcharge"
	"gea/internal/analysis/errwrap"
	"gea/internal/analysis/load"
	"gea/internal/analysis/locksafe"
	"gea/internal/analysis/nopanic"
	"gea/internal/analysis/partialflag"
	"gea/internal/analysis/triad"
)

// Analyzers returns the full suite: the six invariant analyzers plus
// the //lint:gea directive validator.
func Analyzers() []*analysis.Analyzer {
	core := []*analysis.Analyzer{
		ctlcharge.Analyzer,
		triad.Analyzer,
		locksafe.Analyzer,
		errwrap.Analyzer,
		partialflag.Analyzer,
		nopanic.Analyzer,
	}
	names := make([]string, len(core))
	for i, a := range core {
		names[i] = a.Name
	}
	return append(core, analysis.NewSuppressAnalyzer(names))
}

// Check loads patterns from dir, runs the given analyzers, and returns
// the unsuppressed findings sorted by position.
func Check(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]analysis.Finding, error) {
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []analysis.Finding
	for _, pkg := range pkgs {
		dirs := make(map[string][]analysis.Directive)
		for _, f := range pkg.Syntax {
			name := pkg.Fset.Position(f.Pos()).Filename
			dirs[name] = analysis.ParseDirectives(pkg.Fset, f)
		}
		var pkgFindings []analysis.Finding
		for _, a := range analyzers {
			diags, err := analysis.Run(a, pkg.Fset, pkg.Syntax, pkg.Types, pkg.Info)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", pkg.ImportPath, err)
			}
			for _, d := range diags {
				pkgFindings = append(pkgFindings, analysis.Finding{
					Analyzer: a.Name,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
		}
		findings = append(findings, analysis.Filter(pkgFindings, dirs)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// Main is the command-line entry point; it returns the process exit
// code: 0 clean, 1 findings, 2 usage or load failure.
func Main(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("geacheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	only := fs.String("only", "", "comma-separated subset of analyzers to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: geacheck [-list] [-only a,b] [packages]\n\nMachine-enforces GEA's operator-algebra and execution-governance\ninvariants; see ANALYSIS.md. With no package patterns, checks ./...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := Analyzers()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, n := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(n)]
			if !ok {
				fmt.Fprintf(stderr, "geacheck: unknown analyzer %q (try -list)\n", n)
				return 2
			}
			picked = append(picked, a)
		}
		suite = picked
	}
	findings, err := Check(".", suite, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "geacheck: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "geacheck: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

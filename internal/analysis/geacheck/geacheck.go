// Package geacheck assembles GEA's analyzer suite into a runnable
// multichecker — the library behind cmd/geacheck. It loads packages with
// internal/analysis/load, applies every analyzer, filters //lint:gea
// suppressions, and prints findings in the familiar
// path:line:col: message (analyzer) shape. See ANALYSIS.md for the
// catalogue of analyzers and the invariants they enforce.
//
// Beyond checking, the CLI carries two auditing modes: -json emits
// machine-readable findings for CI annotation tooling, and
// -suppressions lists every //lint:gea directive in the tree and
// diagnoses the stale ones — directives whose analyzer no longer fires
// on the suppressed line, which means the code moved and the reasoned
// exemption is now covering nothing.
package geacheck

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"

	"gea/internal/analysis"
	"gea/internal/analysis/commitlast"
	"gea/internal/analysis/ctlcharge"
	"gea/internal/analysis/errwrap"
	"gea/internal/analysis/load"
	"gea/internal/analysis/locksafe"
	"gea/internal/analysis/metricname"
	"gea/internal/analysis/nopanic"
	"gea/internal/analysis/partialflag"
	"gea/internal/analysis/shardpure"
	"gea/internal/analysis/spanpair"
	"gea/internal/analysis/statusmap"
	"gea/internal/analysis/triad"
)

// Analyzers returns the full suite: the eleven invariant analyzers plus
// the //lint:gea directive validator.
func Analyzers() []*analysis.Analyzer {
	core := []*analysis.Analyzer{
		ctlcharge.Analyzer,
		triad.Analyzer,
		locksafe.Analyzer,
		errwrap.Analyzer,
		partialflag.Analyzer,
		nopanic.Analyzer,
		spanpair.Analyzer,
		shardpure.Analyzer,
		commitlast.Analyzer,
		statusmap.Analyzer,
		metricname.Analyzer,
	}
	names := make([]string, len(core))
	for i, a := range core {
		names[i] = a.Name
	}
	return append(core, analysis.NewSuppressAnalyzer(names))
}

// suiteRun is one sweep of the suite over a load pattern: the raw
// (pre-suppression) findings and every //lint:gea directive seen,
// keyed by filename. Check and the suppression audit are both views
// over it.
type suiteRun struct {
	findings []analysis.Finding
	dirs     map[string][]analysis.Directive
}

func runSuite(dir string, analyzers []*analysis.Analyzer, patterns ...string) (*suiteRun, error) {
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	run := &suiteRun{dirs: make(map[string][]analysis.Directive)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			name := pkg.Fset.Position(f.Pos()).Filename
			run.dirs[name] = analysis.ParseDirectives(pkg.Fset, f)
		}
		for _, a := range analyzers {
			diags, err := analysis.Run(a, pkg.Fset, pkg.Syntax, pkg.Types, pkg.Info)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", pkg.ImportPath, err)
			}
			for _, d := range diags {
				run.findings = append(run.findings, analysis.Finding{
					Analyzer: a.Name,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
		}
	}
	return run, nil
}

// Check loads patterns from dir, runs the given analyzers, and returns
// the unsuppressed findings sorted by position.
func Check(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]analysis.Finding, error) {
	run, err := runSuite(dir, analyzers, patterns...)
	if err != nil {
		return nil, err
	}
	findings := analysis.Filter(run.findings, run.dirs)
	sortFindings(findings)
	return findings, nil
}

func sortFindings(findings []analysis.Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
}

// Suppression is one audited //lint:gea entry: a (directive, analyzer)
// pair, stale when that analyzer no longer fires on the directive's
// own line or the line below it — the two lines the directive covers.
// A malformed directive audits as a single entry with Malformed set.
type Suppression struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Analyzer  string `json:"analyzer,omitempty"`
	Reason    string `json:"reason,omitempty"`
	Stale     bool   `json:"stale,omitempty"`
	Malformed string `json:"malformed,omitempty"`
}

// AuditSuppressions runs the suite with suppression filtering DISABLED
// and cross-references every directive against the raw findings.
func AuditSuppressions(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]Suppression, error) {
	run, err := runSuite(dir, analyzers, patterns...)
	if err != nil {
		return nil, err
	}
	// Index raw findings by (file, analyzer) -> lines that fired.
	fired := make(map[string]map[int]bool)
	for _, f := range run.findings {
		key := f.Position.Filename + "\x00" + f.Analyzer
		if fired[key] == nil {
			fired[key] = make(map[int]bool)
		}
		fired[key][f.Position.Line] = true
	}
	var audit []Suppression
	for file, dirs := range run.dirs {
		for _, d := range dirs {
			if d.Malformed != "" {
				audit = append(audit, Suppression{File: file, Line: d.Line, Malformed: d.Malformed})
				continue
			}
			for _, name := range d.Names {
				lines := fired[file+"\x00"+name]
				audit = append(audit, Suppression{
					File:     file,
					Line:     d.Line,
					Analyzer: name,
					Reason:   d.Reason,
					Stale:    !lines[d.Line] && !lines[d.Line+1],
				})
			}
		}
	}
	sort.Slice(audit, func(i, j int) bool {
		if audit[i].File != audit[j].File {
			return audit[i].File < audit[j].File
		}
		if audit[i].Line != audit[j].Line {
			return audit[i].Line < audit[j].Line
		}
		return audit[i].Analyzer < audit[j].Analyzer
	})
	return audit, nil
}

// findingJSON is the -json wire shape of one finding.
type findingJSON struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Main is the command-line entry point; it returns the process exit
// code: 0 clean, 1 findings (or stale/malformed suppressions in
// -suppressions mode), 2 usage or load failure.
func Main(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("geacheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	only := fs.String("only", "", "comma-separated subset of analyzers to run (default: all)")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON instead of text")
	audit := fs.Bool("suppressions", false, "audit //lint:gea directives instead of reporting findings; stale ones fail the run")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: geacheck [-list] [-only a,b] [-json] [-suppressions] [packages]\n\nMachine-enforces GEA's operator-algebra and execution-governance\ninvariants; see ANALYSIS.md. With no package patterns, checks ./...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := Analyzers()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, n := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(n)]
			if !ok {
				fmt.Fprintf(stderr, "geacheck: unknown analyzer %q (try -list)\n", n)
				return 2
			}
			picked = append(picked, a)
		}
		suite = picked
	}
	if *audit {
		return runAudit(stdout, stderr, suite, *asJSON, fs.Args())
	}
	findings, err := Check(".", suite, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "geacheck: %v\n", err)
		return 2
	}
	if *asJSON {
		out := make([]findingJSON, 0, len(findings))
		for _, f := range findings {
			out = append(out, findingJSON{
				File:     f.Position.Filename,
				Line:     f.Position.Line,
				Column:   f.Position.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "geacheck: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "geacheck: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

func runAudit(stdout, stderr io.Writer, suite []*analysis.Analyzer, asJSON bool, patterns []string) int {
	audit, err := AuditSuppressions(".", suite, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "geacheck: %v\n", err)
		return 2
	}
	bad := 0
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(audit); err != nil {
			fmt.Fprintf(stderr, "geacheck: %v\n", err)
			return 2
		}
		for _, s := range audit {
			if s.Stale || s.Malformed != "" {
				bad++
			}
		}
	} else {
		for _, s := range audit {
			switch {
			case s.Malformed != "":
				fmt.Fprintf(stdout, "%s:%d: MALFORMED directive: %s\n", s.File, s.Line, s.Malformed)
				bad++
			case s.Stale:
				fmt.Fprintf(stdout, "%s:%d: STALE suppression of %s -- %s (the analyzer no longer fires here; delete the directive)\n", s.File, s.Line, s.Analyzer, s.Reason)
				bad++
			default:
				fmt.Fprintf(stdout, "%s:%d: suppresses %s -- %s\n", s.File, s.Line, s.Analyzer, s.Reason)
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "geacheck: %d stale or malformed suppression(s)\n", bad)
		return 1
	}
	return 0
}

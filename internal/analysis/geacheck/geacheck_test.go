package geacheck_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"gea/internal/analysis/geacheck"
)

// repoRoot walks up from the test's package directory to the module
// root (internal/analysis/geacheck is two packages below internal).
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestRepoIsClean pins the clean baseline: the whole tree must pass
// every analyzer. A violation introduced anywhere in gea/... fails
// this test, so `go test ./...` enforces the invariants even where CI
// does not run the standalone binary.
func TestRepoIsClean(t *testing.T) {
	findings, err := geacheck.Check(repoRoot(t), geacheck.Analyzers(), "gea/...")
	if err != nil {
		t.Fatalf("loading the repository: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("%d finding(s); fix them or add a reasoned //lint:gea suppression (see ANALYSIS.md)", len(findings))
	}
}

func TestMainList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := geacheck.Main(&stdout, &stderr, []string{"-list"}); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"ctlcharge", "triad", "locksafe", "errwrap", "partialflag", "nopanic", "suppress"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestMainUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := geacheck.Main(&stdout, &stderr, []string{"-only", "nosuch"}); code != 2 {
		t.Fatalf("-only nosuch exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want an unknown-analyzer message", stderr.String())
	}
}

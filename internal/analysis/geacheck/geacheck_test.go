package geacheck_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gea/internal/analysis/geacheck"
)

// repoRoot walks up from the test's package directory to the module
// root (internal/analysis/geacheck is two packages below internal).
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestRepoIsClean pins the clean baseline: the whole tree must pass
// every analyzer. A violation introduced anywhere in gea/... fails
// this test, so `go test ./...` enforces the invariants even where CI
// does not run the standalone binary.
func TestRepoIsClean(t *testing.T) {
	findings, err := geacheck.Check(repoRoot(t), geacheck.Analyzers(), "gea/...")
	if err != nil {
		t.Fatalf("loading the repository: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("%d finding(s); fix them or add a reasoned //lint:gea suppression (see ANALYSIS.md)", len(findings))
	}
}

func TestMainList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := geacheck.Main(&stdout, &stderr, []string{"-list"}); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"ctlcharge", "triad", "locksafe", "errwrap", "partialflag", "nopanic", "suppress"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestMainUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := geacheck.Main(&stdout, &stderr, []string{"-only", "nosuch"}); code != 2 {
		t.Fatalf("-only nosuch exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want an unknown-analyzer message", stderr.String())
	}
}

// TestSuiteCoversProtocolAnalyzers pins the registration of the five
// protocol-conformance analyzers into the default suite, which is what
// TestRepoIsClean (and therefore `go test ./...`) runs. CI's self-check
// step asserts this test executed; dropping an analyzer from
// Analyzers() fails here, not silently in coverage numbers.
func TestSuiteCoversProtocolAnalyzers(t *testing.T) {
	names := make(map[string]bool)
	for _, a := range geacheck.Analyzers() {
		names[a.Name] = true
	}
	for _, want := range []string{"spanpair", "shardpure", "commitlast", "statusmap", "metricname"} {
		if !names[want] {
			t.Errorf("analyzer %q is not registered in the geacheck suite", want)
		}
	}
}

// writeModule materialises a throwaway module in a temp dir and chdirs
// into it, so Main's "." working directory is the fixture.
func writeModule(t *testing.T, files map[string]string) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpmod\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
}

// shedSource is a minimal statusmap violation: a handler writing 503
// without Retry-After. No other analyzer in the suite fires on it.
const shedSource = `package tmpmod

import "net/http"

func Shed(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "shedding", http.StatusServiceUnavailable)
}
`

func TestMainJSONFindings(t *testing.T) {
	writeModule(t, map[string]string{"shed.go": shedSource})
	var stdout, stderr bytes.Buffer
	if code := geacheck.Main(&stdout, &stderr, []string{"-json", "./..."}); code != 1 {
		t.Fatalf("exited %d, want 1; stderr: %s", code, stderr.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a findings array: %v\n%s", err, stdout.String())
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %s", len(findings), stdout.String())
	}
	f := findings[0]
	if f.Analyzer != "statusmap" || !strings.Contains(f.Message, "503 written without Retry-After") {
		t.Errorf("finding = %+v, want a statusmap Retry-After diagnostic", f)
	}
	if filepath.Base(f.File) != "shed.go" || f.Line == 0 || f.Column == 0 {
		t.Errorf("finding position %s:%d:%d does not point into shed.go", f.File, f.Line, f.Column)
	}
}

func TestMainOnlySubset(t *testing.T) {
	writeModule(t, map[string]string{"shed.go": shedSource})

	// A subset that excludes statusmap must come back clean...
	var stdout, stderr bytes.Buffer
	if code := geacheck.Main(&stdout, &stderr, []string{"-only", "triad,ctlcharge", "./..."}); code != 0 {
		t.Fatalf("-only triad,ctlcharge exited %d, want 0; stderr: %s stdout: %s", code, stderr.String(), stdout.String())
	}

	// ...and the subset that includes it must report the violation.
	stdout.Reset()
	stderr.Reset()
	if code := geacheck.Main(&stdout, &stderr, []string{"-only", "statusmap", "./..."}); code != 1 {
		t.Fatalf("-only statusmap exited %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "503 written without Retry-After") {
		t.Errorf("-only statusmap output missing the violation:\n%s", stdout.String())
	}
}

func TestMainSuppressionAudit(t *testing.T) {
	writeModule(t, map[string]string{"shed.go": `package tmpmod

import "net/http"

func Shed(w http.ResponseWriter, r *http.Request) {
	//lint:gea statusmap -- load shedding; clients use their own backoff
	http.Error(w, "shedding", http.StatusServiceUnavailable)
}

//lint:gea triad -- kept from an old revision of this file
var Answer = 42

//lint:gea locksafe
var Other = 43
`})
	var stdout, stderr bytes.Buffer
	code := geacheck.Main(&stdout, &stderr, []string{"-suppressions", "./..."})
	if code != 1 {
		t.Fatalf("-suppressions exited %d, want 1 (one stale, one malformed); stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "suppresses statusmap -- load shedding") {
		t.Errorf("live suppression not listed:\n%s", out)
	}
	if !strings.Contains(out, "STALE suppression of triad") {
		t.Errorf("stale suppression not diagnosed:\n%s", out)
	}
	if !strings.Contains(out, "MALFORMED directive") {
		t.Errorf("malformed directive not diagnosed:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "stale or malformed suppression(s)") {
		t.Errorf("stderr = %q, want a stale/malformed summary", stderr.String())
	}
}

func TestMainSuppressionAuditJSON(t *testing.T) {
	writeModule(t, map[string]string{"lib.go": `package tmpmod

//lint:gea triad -- nothing fires here any more
var Answer = 42
`})
	var stdout, stderr bytes.Buffer
	if code := geacheck.Main(&stdout, &stderr, []string{"-suppressions", "-json", "./..."}); code != 1 {
		t.Fatalf("-suppressions -json exited %d, want 1; stderr: %s", code, stderr.String())
	}
	var audit []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Reason   string `json:"reason"`
		Stale    bool   `json:"stale"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &audit); err != nil {
		t.Fatalf("-suppressions -json output is not an audit array: %v\n%s", err, stdout.String())
	}
	if len(audit) != 1 || !audit[0].Stale || audit[0].Analyzer != "triad" {
		t.Errorf("audit = %+v, want one stale triad entry", audit)
	}
}

// TestMainCleanSuppressedModule pins the filtering path end to end: a
// reasoned live directive silences the only finding, so the check run
// is clean while the audit still lists the directive as live.
func TestMainCleanSuppressedModule(t *testing.T) {
	writeModule(t, map[string]string{"shed.go": `package tmpmod

import "net/http"

func Shed(w http.ResponseWriter, r *http.Request) {
	//lint:gea statusmap -- load shedding; clients use their own backoff
	http.Error(w, "shedding", http.StatusServiceUnavailable)
}
`})
	var stdout, stderr bytes.Buffer
	if code := geacheck.Main(&stdout, &stderr, []string{"./..."}); code != 0 {
		t.Fatalf("check exited %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	stdout.Reset()
	if code := geacheck.Main(&stdout, &stderr, []string{"-suppressions", "./..."}); code != 0 {
		t.Fatalf("audit exited %d, want 0; stdout: %s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "suppresses statusmap") {
		t.Errorf("audit did not list the live directive:\n%s", stdout.String())
	}
}

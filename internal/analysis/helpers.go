package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// GEA-specific type and package predicates shared by the analyzers.
// Matching is by import-path suffix rather than the literal module path
// so the analyzers keep working against the testdata stubs (whose fake
// packages sit under testdata/src/gea/...) and would survive a module
// rename.

// pathIs reports whether an import path is, or ends with, the given
// module-relative suffix (e.g. "internal/exec").
func pathIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// IsExecPkg reports whether path names the execution-governance package.
func IsExecPkg(path string) bool { return pathIs(path, "internal/exec") }

// operatorPkgs are the packages bound by the operator contract: they
// implement the algebra (or orchestrate it, in system's case) under
// execution governance.
var operatorPkgs = []string{
	"internal/core",
	"internal/cluster",
	"internal/fascicle",
	"internal/xprofiler",
	"internal/system",
}

// IsOperatorPkg reports whether path names one of the operator packages
// bound by the governance contract (no naked panics, sentinel-wrapped
// errors, ...).
func IsOperatorPkg(path string) bool {
	for _, p := range operatorPkgs {
		if pathIs(path, p) {
			return true
		}
	}
	return false
}

// heavyPkgs hold the compute kernels: calling into one of these (or
// into exec.Guard) while holding a registry mutex is the locksafe
// violation.
var heavyPkgs = []string{
	"internal/core",
	"internal/cluster",
	"internal/fascicle",
	"internal/xprofiler",
}

// IsHeavyPkg reports whether path names a compute-kernel package.
func IsHeavyPkg(path string) bool {
	for _, p := range heavyPkgs {
		if pathIs(path, p) {
			return true
		}
	}
	return false
}

// namedDecl returns the named type at the core of t, unwrapping one
// pointer indirection, or nil.
func namedDecl(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamedIn reports whether t (or *t) is the named type pkgSuffix.name.
func isNamedIn(t types.Type, pkgSuffix, name string) bool {
	n := namedDecl(t)
	if n == nil || n.Obj() == nil || n.Obj().Name() != name {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pathIs(pkg.Path(), pkgSuffix)
}

// IsExecCtl reports whether t is *exec.Ctl (or exec.Ctl).
func IsExecCtl(t types.Type) bool { return isNamedIn(t, "internal/exec", "Ctl") }

// IsExecLimits reports whether t is exec.Limits.
func IsExecLimits(t types.Type) bool { return isNamedIn(t, "internal/exec", "Limits") }

// IsExecTrace reports whether t is exec.Trace.
func IsExecTrace(t types.Type) bool { return isNamedIn(t, "internal/exec", "Trace") }

// IsContext reports whether t is context.Context.
func IsContext(t types.Type) bool { return isNamedIn(t, "context", "Context") }

// IsErrorType reports whether t is the built-in error interface.
func IsErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// Callee resolves the static callee of a call expression to a
// *types.Func (function or method), or nil for builtins, conversions,
// function-typed variables and other dynamic calls.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// CtlParam returns the *types.Var of the first parameter of fn's
// signature whose type is *exec.Ctl, or nil.
func CtlParam(sig *types.Signature) *types.Var {
	for i := 0; i < sig.Params().Len(); i++ {
		if p := sig.Params().At(i); IsExecCtl(p.Type()) {
			return p
		}
	}
	return nil
}

// FuncType returns the declared signature of a FuncDecl via the type
// info, or nil when unavailable.
func FuncType(info *types.Info, decl *ast.FuncDecl) *types.Signature {
	obj, _ := info.Defs[decl.Name].(*types.Func)
	if obj == nil {
		return nil
	}
	sig, _ := obj.Type().(*types.Signature)
	return sig
}

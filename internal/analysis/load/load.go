// Package load turns `go list -deps -export -json` output into
// type-checked packages for the analysis framework — the offline,
// dependency-free stand-in for golang.org/x/tools/go/packages. Target
// packages are parsed from source (the analyzers need syntax trees with
// comments); their dependencies are imported from the compiler export
// data the go command already produced, so a whole-repo load costs one
// `go list` invocation plus one parse+typecheck per target package.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists patterns (with dependencies and export data) in dir and
// returns the type-checked target packages, in `go list` order. Any
// package that fails to build fails the whole load: the analyzers
// require a compiling tree.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		exports[p.ImportPath] = p.Export
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e := exports[path]
		if e == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("package %s uses cgo; not supported", t.ImportPath)
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Syntax:     files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Package locksafe enforces the System lock discipline from PR 2:
//
//   - No heavy compute while holding a registry mutex. The compute
//     kernels (internal/core, cluster, fascicle, xprofiler) and
//     exec.Guard must never be called between a sync.Mutex Lock and its
//     Unlock: the pattern is lock → look up → unlock → compute → lock →
//     register. Holding the registry lock across a miner would serialise
//     every concurrent session behind one CPU-bound call.
//
//   - No admission-slot leaks. A `release, err := s.acquire(ctx)` must
//     be paired with `defer release()`; a function that acquires a slot
//     and can return without releasing it permanently shrinks the
//     semaphore, and after MaxConcurrent leaks every heavy operation
//     times out with ErrBusy.
//
// The lock tracking is lexical and per-function: Lock/Unlock calls are
// interpreted in statement order, branches that terminate (return) are
// assumed not taken for the code that follows, and function literals are
// scanned with a fresh (unlocked) state since their execution point is
// unknown. This is deliberately the same approximation a human reviewer
// applies to the straight-line locking style used throughout System.
package locksafe

import (
	"go/ast"
	"go/types"

	"gea/internal/analysis"
)

// Analyzer flags heavy compute under a held mutex and leaked admission
// slots.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "no operator/exec.Guard calls while holding a mutex; acquire'd admission slots must be defer-released",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			s := &scan{pass: pass, held: make(map[string]bool)}
			s.block(fn.Body.List)
			checkAcquire(pass, fn)
		}
	}
	return nil
}

// scan tracks which mutexes are held, keyed by the source text of the
// receiver expression ("s.mu").
type scan struct {
	pass *analysis.Pass
	held map[string]bool
}

func (s *scan) clone() *scan {
	c := &scan{pass: s.pass, held: make(map[string]bool, len(s.held))}
	for k, v := range s.held {
		c.held[k] = v
	}
	return c
}

func (s *scan) anyHeld() (string, bool) {
	for k, h := range s.held {
		if h {
			return k, true
		}
	}
	return "", false
}

// block scans a statement list in order.
func (s *scan) stmt(stmt ast.Stmt) {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if recv, op, ok := mutexOp(s.pass.TypesInfo, st.X); ok {
			s.held[recv] = op == "Lock" || op == "RLock"
			return
		}
		s.exprs(st.X)
	case *ast.DeferStmt:
		if recv, op, ok := mutexOp(s.pass.TypesInfo, st.Call); ok && (op == "Unlock" || op == "RUnlock") {
			// defer mu.Unlock(): the lock stays held for the rest of
			// the function, so heavy calls below are still violations —
			// leave held as-is.
			_ = recv
			return
		}
		s.exprs(st.Call)
	case *ast.BlockStmt:
		s.block(st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.exprs(st.Cond)
		body := s.clone()
		body.block(st.Body.List)
		var elseExit *scan
		if st.Else != nil {
			elseExit = s.clone()
			elseExit.stmt(st.Else)
		}
		// If a branch terminates, the code after the if runs with the
		// pre-branch state; otherwise adopt the branch's exit state
		// (straight-line reading).
		if !terminates(st.Body) {
			s.held = body.held
		} else if st.Else != nil && !terminatesStmt(st.Else) {
			s.held = elseExit.held
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Cond != nil {
			s.exprs(st.Cond)
		}
		body := s.clone()
		body.block(st.Body.List)
	case *ast.RangeStmt:
		s.exprs(st.X)
		body := s.clone()
		body.block(st.Body.List)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Tag != nil {
			s.exprs(st.Tag)
		}
		for _, c := range st.Body.List {
			cc := s.clone()
			cc.block(c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Rare in locking code; scan conservatively for heavy calls
		// with the current state.
		ast.Inspect(st, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				s.checkCall(call)
			}
			return !isFuncLit(n)
		})
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.exprs(e)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.exprs(e)
		}
	case *ast.GoStmt:
		s.exprs(st.Call.Fun)
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.BranchStmt, *ast.LabeledStmt, *ast.EmptyStmt:
		ast.Inspect(stmt, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				s.checkCall(call)
			}
			return !isFuncLit(n)
		})
	}
}

func (s *scan) block(list []ast.Stmt) {
	for _, stmt := range list {
		s.stmt(stmt)
	}
}

// exprs flags heavy calls inside an expression tree, scanning nested
// function literals with a fresh state.
func (s *scan) exprs(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			fresh := &scan{pass: s.pass, held: make(map[string]bool)}
			fresh.block(lit.Body.List)
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			s.checkCall(call)
		}
		return true
	})
}

func isFuncLit(n ast.Node) bool { _, ok := n.(*ast.FuncLit); return ok }

// checkCall reports call if it is heavy while a mutex is held. Heavy
// means a governed operator entry point of a compute-kernel package — a
// function whose signature threads a *exec.Ctl or a context.Context —
// or exec.Guard itself. Plain accessors of kernel packages (Enum.IsPure,
// Algorithm.String, ...) are cheap and fine under the lock.
func (s *scan) checkCall(call *ast.CallExpr) {
	mu, held := s.anyHeld()
	if !held {
		return
	}
	fn := analysis.Callee(s.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	switch {
	case analysis.IsHeavyPkg(path) && isGoverned(fn):
		s.pass.Reportf(call.Pos(), "call to governed operator %s.%s while holding %s: run compute outside the lock (lock → look up → unlock → compute → lock → register)", fn.Pkg().Name(), fn.Name(), mu)
	case analysis.IsExecPkg(path) && fn.Name() == "Guard":
		s.pass.Reportf(call.Pos(), "exec.Guard call while holding %s: guarded operator work must not run under a registry lock", mu)
	}
}

// isGoverned reports whether fn's signature carries a *exec.Ctl or
// context.Context parameter — the shape of every metered operator
// entry point.
func isGoverned(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if analysis.CtlParam(sig) != nil {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if analysis.IsContext(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// mutexOp recognises <expr>.Lock/Unlock/RLock/RUnlock() on a
// sync.Mutex/RWMutex and returns the receiver's source key.
func mutexOp(info *types.Info, e ast.Expr) (recv, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	tv, found := info.Types[sel.X]
	if !found || !isSyncLocker(tv.Type) {
		return "", "", false
	}
	key, exact := exprKey(sel.X)
	if !exact {
		return "", "", false
	}
	return key, sel.Sel.Name, true
}

func isSyncLocker(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}

// exprKey renders simple ident/selector chains ("s.mu") as a stable
// key; anything more dynamic is not tracked.
func exprKey(e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := exprKey(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	default:
		return "", false
	}
}

// terminates reports whether a block's last statement definitely leaves
// the function (return or panic).
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	return terminatesStmt(b.List[len(b.List)-1])
}

func terminatesStmt(stmt ast.Stmt) bool {
	switch st := stmt.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.BlockStmt:
		return terminates(st)
	case *ast.IfStmt:
		return terminates(st.Body) && st.Else != nil && terminatesStmt(st.Else)
	}
	return false
}

// --- admission-semaphore pairing ---

// checkAcquire enforces `release, err := x.acquire(ctx)` / `defer
// release()` pairing inside fn.
func checkAcquire(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			rel, errObj, ok := acquireAssign(pass.TypesInfo, stmt)
			if !ok {
				continue
			}
			deferIdx := -1
			for j := i + 1; j < len(block.List); j++ {
				if d, ok := block.List[j].(*ast.DeferStmt); ok && callsObj(pass.TypesInfo, d.Call, rel) {
					deferIdx = j
					break
				}
			}
			if deferIdx < 0 {
				if !deferredAnywhere(pass.TypesInfo, fn.Body, rel) {
					pass.Reportf(stmt.Pos(), "admission slot from acquire is never released with `defer %s()`: a leaked slot permanently shrinks the semaphore", rel.Name())
				}
				continue
			}
			// Between the acquire and its defer, the only return allowed
			// is the acquire-error guard itself.
			for j := i + 1; j < deferIdx; j++ {
				mid := block.List[j]
				if ifGuardsErr(pass.TypesInfo, mid, errObj) {
					continue
				}
				ast.Inspect(mid, func(m ast.Node) bool {
					if ret, ok := m.(*ast.ReturnStmt); ok {
						pass.Reportf(ret.Pos(), "return between acquire and `defer %s()` leaks the admission slot on this path", rel.Name())
					}
					return !isFuncLit(m)
				})
			}
		}
		return true
	})
}

// acquireAssign matches `rel, err := <recv>.acquire(...)` where the
// callee returns (func(), error).
func acquireAssign(info *types.Info, stmt ast.Stmt) (rel, errObj types.Object, ok bool) {
	as, isAssign := stmt.(*ast.AssignStmt)
	if !isAssign || len(as.Lhs) != 2 || len(as.Rhs) != 1 {
		return nil, nil, false
	}
	call, isCall := as.Rhs[0].(*ast.CallExpr)
	if !isCall {
		return nil, nil, false
	}
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Name() != "acquire" {
		return nil, nil, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Results().Len() != 2 || !analysis.IsErrorType(sig.Results().At(1).Type()) {
		return nil, nil, false
	}
	if _, isFunc := sig.Results().At(0).Type().Underlying().(*types.Signature); !isFunc {
		return nil, nil, false
	}
	relID, okRel := as.Lhs[0].(*ast.Ident)
	errID, okErr := as.Lhs[1].(*ast.Ident)
	if !okRel || !okErr {
		return nil, nil, false
	}
	return obj(info, relID), obj(info, errID), true
}

func obj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// callsObj reports whether call invokes the identifier bound to o.
func callsObj(info *types.Info, call *ast.CallExpr, o types.Object) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && o != nil && info.Uses[id] == o
}

// deferredAnywhere looks for `defer rel()` anywhere in the body.
func deferredAnywhere(info *types.Info, body *ast.BlockStmt, rel types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && callsObj(info, d.Call, rel) {
			found = true
		}
		return !found
	})
	return found
}

// ifGuardsErr matches `if err != nil { ... }`-style guards on the
// acquire error (including `if err := ...; err != nil` shapes whose
// condition mentions the error object).
func ifGuardsErr(info *types.Info, stmt ast.Stmt, errObj types.Object) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || errObj == nil {
		return false
	}
	uses := false
	ast.Inspect(ifs.Cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && (info.Uses[id] == errObj || info.Defs[id] == errObj) {
			uses = true
		}
		return !uses
	})
	return uses
}

package locksafe_test

import (
	"testing"

	"gea/internal/analysis/antest"
	"gea/internal/analysis/locksafe"
)

func TestLocksafe(t *testing.T) {
	antest.Run(t, antest.SharedTestData(t), locksafe.Analyzer, "locksafebad", "locksafegood")
}

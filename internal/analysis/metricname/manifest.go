package metricname

// Manifest is the checked-in catalogue of metric names the obs
// Registry may be asked for. It is the machine-readable twin of the
// metric tables in OBSERVABILITY.md: the analyzer pins code ⊆ manifest,
// and TestManifestMatchesDocs pins manifest ⊆ docs, so neither can
// drift from the other silently. A trailing ".*" entry is a wildcard
// covering a dynamically-built family; dynamic names must start with a
// constant prefix that a wildcard covers.
//
// Adding a metric is therefore a three-line change: the registration
// site, an entry here, and a row in OBSERVABILITY.md — and forgetting
// any one of the three fails geacheck or the tests.
var Manifest = []string{
	// exec substrate (internal/obs/metrics.go CheckpointHook)
	"exec.checkpoints",

	// per-operator family, built as "ops." + span op name + suffix
	// (internal/obs/obs.go Collector.finish)
	"ops.*",

	// span lifecycle (internal/obs/obs.go)
	"spans.active",
	"spans.completed",
	"spans.roots",

	// admission gate (internal/admission/admission.go)
	"admission.active",
	"admission.queue_depth",
	"admission.state",
	"admission.admitted",
	"admission.rejected_overload",
	"admission.timed_out",
	"admission.canceled",
	"admission.shutdown_kicked",
	"admission.transitions",
	"admission.wait_s",

	// columnar block engine: span-folded scan counters plus the static
	// compression profile (internal/obs/obs.go Collector.finish,
	// internal/columnar/scan.go PublishMetrics)
	"columnar.*",

	// ingestion pipeline (internal/system/ingest.go, system.go)
	"ingest.generation",
	"ingest.appends",
	"ingest.libraries",
	"ingest.quarantined",
	"ingest.retries",
	"ingest.apply_s",
	"ingest.commit_s",

	// generation-keyed result cache (internal/rescache/cache.go)
	"cache.hits",
	"cache.misses",
	"cache.singleflight_shared",
	"cache.evicted",
	"cache.swept",
	"cache.uncacheable_partial",
	"cache.entries",
	"cache.bytes",

	// per-tenant admission governor (internal/admission/tenant.go)
	"tenant.charged_units",
	"tenant.throttled",
	"tenant.known",

	// session manager (internal/session/session.go)
	"session.created",
	"session.expired",
	"session.closed",
	"session.runs",
	"session.active",
}

// Package metricname enforces the metric-naming contract of the obs
// Registry: every name handed to Counter/Gauge/Histogram follows the
// dotted lower_snake `subsystem.metric` scheme and appears in the
// checked-in Manifest, whose entries a companion test pins against the
// OBSERVABILITY.md catalogue. Together the two directions mean an
// operator reading the docs sees exactly the names /metrics serves,
// and a grep for a documented name always lands on a registration
// site.
//
// Dynamically-built families (the per-operator "ops." + op + suffix
// names) are admitted through wildcard manifest entries: the
// concatenation must start with a constant prefix some "family.*"
// entry covers, so even dynamic names cannot leave the documented
// namespace.
//
// Violations flagged:
//
//   - a constant name that is not dotted lower_snake
//     (subsystem.metric);
//   - a constant name missing from the manifest;
//   - a dynamic name whose leading constant prefix no wildcard entry
//     covers (or with no constant prefix at all).
package metricname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"gea/internal/analysis"
)

// Analyzer flags Registry names outside the documented namespace.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "obs Registry metric names must be dotted subsystem.metric and listed in the metricname manifest",
	Run:  run,
}

// namePat is the house scheme: lower_snake atoms joined by dots, at
// least two atoms deep.
var namePat = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`)

// registrars are the Registry methods that intern a name.
var registrars = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

func run(pass *analysis.Pass) error {
	exact, wildcards := manifestSets()
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRegistryCall(pass, call) || len(call.Args) == 0 {
				return true
			}
			checkName(pass, call.Args[0], exact, wildcards)
			return true
		})
	}
	return nil
}

func manifestSets() (exact map[string]bool, wildcards []string) {
	exact = make(map[string]bool, len(Manifest))
	for _, m := range Manifest {
		if fam, ok := strings.CutSuffix(m, ".*"); ok {
			wildcards = append(wildcards, fam+".")
			continue
		}
		exact[m] = true
	}
	return exact, wildcards
}

// isRegistryCall reports whether call is Counter/Gauge/Histogram on the
// obs Registry.
func isRegistryCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !registrars[sel.Sel.Name] {
		return false
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/obs") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

func checkName(pass *analysis.Pass, arg ast.Expr, exact map[string]bool, wildcards []string) {
	tv, ok := pass.TypesInfo.Types[arg]
	if ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		name := constant.StringVal(tv.Value)
		if !namePat.MatchString(name) {
			pass.Reportf(arg.Pos(), "metric name %q is not dotted lower_snake subsystem.metric", name)
			return
		}
		if !covered(name, exact, wildcards) {
			pass.Reportf(arg.Pos(), "metric name %q is not in the metricname manifest: add it there and to the OBSERVABILITY.md catalogue", name)
		}
		return
	}
	// Dynamic name: the leftmost constant prefix must land in a
	// documented wildcard family.
	prefix := constPrefix(pass, arg)
	for _, w := range wildcards {
		if strings.HasPrefix(prefix, w) {
			return
		}
	}
	if prefix == "" {
		pass.Reportf(arg.Pos(), "dynamically built metric name has no constant prefix: start it with a documented \"family.\" literal covered by a manifest wildcard")
		return
	}
	pass.Reportf(arg.Pos(), "dynamic metric name prefix %q is not covered by any manifest wildcard: document the family in the manifest and OBSERVABILITY.md", prefix)
}

// constPrefix extracts the leftmost constant string of a + concat.
func constPrefix(pass *analysis.Pass, e ast.Expr) string {
	for {
		bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok || bin.Op != token.ADD {
			break
		}
		e = bin.X
	}
	if tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value)
	}
	return ""
}

func covered(name string, exact map[string]bool, wildcards []string) bool {
	if exact[name] {
		return true
	}
	for _, w := range wildcards {
		if strings.HasPrefix(name, w) {
			return true
		}
	}
	return false
}

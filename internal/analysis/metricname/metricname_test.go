package metricname_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gea/internal/analysis/antest"
	"gea/internal/analysis/metricname"
)

func TestMetricname(t *testing.T) {
	antest.Run(t, antest.SharedTestData(t), metricname.Analyzer, "metricnamebad", "metricnamegood")
}

// TestManifestMatchesDocs pins the other half of the no-drift contract:
// the analyzer guarantees code ⊆ manifest, this test guarantees
// manifest ⊆ OBSERVABILITY.md, so every registrable name is documented.
func TestManifestMatchesDocs(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "..", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatalf("reading OBSERVABILITY.md: %v", err)
	}
	docs := string(raw)
	for _, name := range metricname.Manifest {
		needle := name
		if fam, ok := strings.CutSuffix(name, ".*"); ok {
			// A wildcard family is documented by its "family." prefix
			// appearing somewhere in the catalogue tables.
			needle = fam + "."
		}
		if !strings.Contains(docs, needle) {
			t.Errorf("manifest entry %q does not appear in OBSERVABILITY.md: document it in the metric catalogue", name)
		}
	}
}

// TestManifestShape keeps the manifest itself inside the naming scheme
// it exists to enforce.
func TestManifestShape(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range metricname.Manifest {
		if seen[name] {
			t.Errorf("duplicate manifest entry %q", name)
		}
		seen[name] = true
		base, _ := strings.CutSuffix(name, ".*")
		for _, atom := range strings.Split(base, ".") {
			if atom == "" || strings.ToLower(atom) != atom {
				t.Errorf("manifest entry %q is not dotted lower_snake", name)
				break
			}
		}
	}
}

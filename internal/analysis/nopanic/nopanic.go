// Package nopanic bans naked panics from governed packages. The
// execution-governance contract routes every fault through error
// returns; exec.Guard exists precisely so that a *real* programming
// error (an out-of-range index, a nil map write) is recovered into a
// structured *exec.ExecError instead of taking the session down.
// Deliberate panics in operator code defeat that design twice over:
// they turn recoverable conditions into crashes for every caller that
// didn't run under Guard, and under Guard they masquerade as internal
// faults. Return an error instead; genuinely unreachable states can
// carry a //lint:gea nopanic suppression with the reason spelled out.
//
// A package is governed when it is one of the operator packages or
// imports the internal/exec governance layer.
package nopanic

import (
	"go/ast"
	"go/types"

	"gea/internal/analysis"
)

// Analyzer flags naked panic calls in governed packages.
var Analyzer = &analysis.Analyzer{
	Name: "nopanic",
	Doc:  "no naked panic in governed packages: return errors and let exec.Guard isolate real faults",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !governed(pass.Pkg) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			pass.Reportf(call.Pos(), "naked panic in a governed package: return an error (exec.Guard recovers real faults into *exec.ExecError)")
			return true
		})
	}
	return nil
}

func governed(pkg *types.Package) bool {
	if analysis.IsOperatorPkg(pkg.Path()) {
		return true
	}
	for _, imp := range pkg.Imports() {
		if analysis.IsExecPkg(imp.Path()) {
			return true
		}
	}
	return false
}

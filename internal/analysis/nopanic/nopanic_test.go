package nopanic_test

import (
	"testing"

	"gea/internal/analysis/antest"
	"gea/internal/analysis/nopanic"
)

func TestNopanic(t *testing.T) {
	antest.Run(t, antest.SharedTestData(t), nopanic.Analyzer,
		"nopanicbad", "nopanicgood", "nopanicungoverned")
}

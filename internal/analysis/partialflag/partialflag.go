// Package partialflag guards the "flagged, never silent" truncation
// contract: when a metered operator stops on budget exhaustion
// (exec.IsBudget / errors.Is(err, exec.ErrBudget)), the early return
// must either flag the result as partial (the bool of the
// (results..., bool, error) shape set to true) or propagate an error
// that wraps exec.ErrBudget. A budget branch that returns an unflagged
// result with a nil error silently truncates — the caller has no way to
// learn the result is a prefix.
package partialflag

import (
	"go/ast"
	"go/constant"
	"go/types"

	"gea/internal/analysis"
)

// Analyzer flags budget-stop returns that neither set the partial flag
// nor propagate an error.
var Analyzer = &analysis.Analyzer{
	Name: "partialflag",
	Doc:  "a budget-stop return must flag the partial result or propagate an error wrapping exec.ErrBudget",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			sig := analysis.FuncType(pass.TypesInfo, fn)
			if sig == nil || analysis.CtlParam(sig) == nil {
				continue
			}
			boolIdx, errIdx := resultShape(sig)
			if boolIdx < 0 || errIdx < 0 {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				ifs, ok := n.(*ast.IfStmt)
				if !ok || !condTestsBudget(pass.TypesInfo, ifs.Cond) {
					return true
				}
				checkBudgetBranch(pass, ifs.Body, boolIdx, errIdx)
				return true
			})
		}
	}
	return nil
}

// resultShape finds the partial-flag bool and trailing error in the
// function's results; -1 when absent.
func resultShape(sig *types.Signature) (boolIdx, errIdx int) {
	boolIdx, errIdx = -1, -1
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		t := res.At(i).Type()
		if types.Identical(t, types.Typ[types.Bool]) {
			boolIdx = i
		}
		if analysis.IsErrorType(t) {
			errIdx = i
		}
	}
	return boolIdx, errIdx
}

// condTestsBudget reports whether the condition checks for the budget
// sentinel: exec.IsBudget(err) or errors.Is(err, exec.ErrBudget).
func condTestsBudget(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case analysis.IsExecPkg(fn.Pkg().Path()) && fn.Name() == "IsBudget":
			found = true
		case fn.Pkg().Path() == "errors" && fn.Name() == "Is" && len(call.Args) == 2:
			if sel, ok := ast.Unparen(call.Args[1]).(*ast.SelectorExpr); ok {
				if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.Name() == "ErrBudget" &&
					v.Pkg() != nil && analysis.IsExecPkg(v.Pkg().Path()) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// checkBudgetBranch flags returns inside a budget-stop branch that
// return (partial=false, err=nil).
func checkBudgetBranch(pass *analysis.Pass, body *ast.BlockStmt, boolIdx, errIdx int) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) <= boolIdx || len(ret.Results) <= errIdx {
			return true // naked return or different arity; cannot judge
		}
		if isFalse(pass.TypesInfo, ret.Results[boolIdx]) && isNil(pass.TypesInfo, ret.Results[errIdx]) {
			pass.Reportf(ret.Pos(), "budget stop returns an unflagged result with a nil error: set the partial flag to true or return an error wrapping exec.ErrBudget — truncation must never be silent")
		}
		return true
	})
}

func isFalse(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil && tv.Value.Kind() == constant.Bool && !constant.BoolVal(tv.Value)
}

func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

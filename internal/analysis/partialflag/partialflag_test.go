package partialflag_test

import (
	"testing"

	"gea/internal/analysis/antest"
	"gea/internal/analysis/partialflag"
)

func TestPartialflag(t *testing.T) {
	antest.Run(t, antest.SharedTestData(t), partialflag.Analyzer, "partialflagbad", "partialflaggood")
}

// Package shardpure enforces the purity contract of shard.Kernel: the
// bit-identical-at-any-worker-count guarantee documented in
// internal/exec/shard. A kernel owns exactly its [lo, hi) output slots;
// any other write to captured state is either a data race or an
// ordering dependence on which worker ran which shard, and any value
// derived from the worker/shard index changes when the worker count
// does. ShardEquiv walks pin this dynamically for the inputs CI happens
// to run; this analyzer pins the shape for every kernel in the tree.
//
// A kernel is recognised by its signature — func(*exec.Ctl, int, int,
// int) (int, error) — whether it is a literal passed to shard.For/ForN,
// assigned to a shard.Kernel variable, or a named declaration of the
// same shape.
//
// Violations flagged:
//
//   - a write (assign, ++/--, range-assign) to a captured plain
//     variable: shards race on it, and even under a lock the result
//     depends on shard completion order;
//   - a write to a field of a captured variable, or through a captured
//     pointer — the same race one level down;
//   - a write into a captured map: concurrent map writes fault, and
//     insertion order leaks into iteration;
//   - a write into a captured slice at a constant index, at an index
//     that mentions only captured state, or at the shard index: slots
//     outside [lo, hi) are another shard's property;
//   - the shard/worker index read inside a returned value or stored
//     into captured state: results become a function of the worker
//     count.
//
// Kernel-local state (declared inside the literal) is exempt — scratch
// buffers are the idiomatic way to keep kernels pure.
package shardpure

import (
	"go/ast"
	"go/token"
	"go/types"

	"gea/internal/analysis"
)

// Analyzer flags shard kernels whose writes escape their own shard.
var Analyzer = &analysis.Analyzer{
	Name: "shardpure",
	Doc:  "a shard.Kernel must write only its own [lo,hi) slots and never read the worker index into results",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncLit:
				if sig := kernelSig(pass, fn); sig != nil {
					checkKernel(pass, sig, fn.Type, fn.Body, fn.Pos(), fn.End())
				}
			case *ast.FuncDecl:
				if fn.Body == nil {
					return true
				}
				if sig := kernelSigOf(analysis.FuncType(pass.TypesInfo, fn)); sig != nil {
					checkKernel(pass, sig, fn.Type, fn.Body, fn.Pos(), fn.End())
				}
			}
			return true
		})
	}
	return nil
}

// kernelSig returns the signature if lit has the shard.Kernel shape.
func kernelSig(pass *analysis.Pass, lit *ast.FuncLit) *types.Signature {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return kernelSigOf(sig)
}

// kernelSigOf filters for func(*exec.Ctl, int, int, int) (int, error).
func kernelSigOf(sig *types.Signature) *types.Signature {
	if sig == nil || sig.Params().Len() != 4 || sig.Results().Len() != 2 {
		return nil
	}
	if !analysis.IsExecCtl(sig.Params().At(0).Type()) {
		return nil
	}
	for i := 1; i < 4; i++ {
		if !isInt(sig.Params().At(i).Type()) {
			return nil
		}
	}
	if !isInt(sig.Results().At(0).Type()) || !analysis.IsErrorType(sig.Results().At(1).Type()) {
		return nil
	}
	return sig
}

func isInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}

// kernel carries the per-kernel context the write classifier needs.
type kernel struct {
	pass     *analysis.Pass
	pos, end token.Pos  // the full literal/decl extent; captured = declared outside
	shardVar *types.Var // the shard/worker index param, nil when blank
	loVar    *types.Var // the lo bound param, nil when blank
}

func checkKernel(pass *analysis.Pass, sig *types.Signature, ft *ast.FuncType, body *ast.BlockStmt, pos, end token.Pos) {
	k := &kernel{pass: pass, pos: pos, end: end}
	if v := sig.Params().At(1); v.Name() != "" && v.Name() != "_" {
		k.shardVar = v
	}
	if v := sig.Params().At(2); v.Name() != "" && v.Name() != "_" {
		k.loVar = v
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if s.Tok == token.DEFINE {
					// := defines new locals unless the ident was already
					// in scope; skip pure definitions.
					if id, ok := lhs.(*ast.Ident); ok {
						if _, defined := pass.TypesInfo.Defs[id]; defined || id.Name == "_" {
							continue
						}
					}
				}
				k.checkWrite(lhs, rhsFor(s, i))
			}
		case *ast.IncDecStmt:
			k.checkWrite(s.X, nil)
		case *ast.RangeStmt:
			if s.Tok == token.ASSIGN {
				if s.Key != nil {
					k.checkWrite(s.Key, nil)
				}
				if s.Value != nil {
					k.checkWrite(s.Value, nil)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if id := k.mentions(res, k.shardVar); id != nil {
					pass.Reportf(id.Pos(), "kernel returns a value derived from the shard index %s: results become a function of the worker count", id.Name)
				}
			}
		}
		return true
	})
}

// rhsFor returns the RHS expression feeding LHS i, when it exists.
func rhsFor(s *ast.AssignStmt, i int) ast.Expr {
	if len(s.Rhs) == len(s.Lhs) {
		return s.Rhs[i]
	}
	if len(s.Rhs) == 1 {
		return s.Rhs[0]
	}
	return nil
}

// checkWrite classifies one write target. Ownership of a chained
// target like out[i].Field or s.buf[j] is decided by the index step
// nearest the root: a write into an own [lo,hi) slot may touch that
// slot's fields freely, while everything reached without such an
// anchored index escapes the shard.
func (k *kernel) checkWrite(lhs, rhs ast.Expr) {
	pass := k.pass
	target := ast.Unparen(lhs)
	if id, ok := target.(*ast.Ident); ok {
		if v := k.capturedVar(id); v != nil {
			pass.Reportf(id.Pos(), "kernel writes captured variable %s: shards race on it and the result depends on shard completion order", v.Name())
		}
	} else if root, rootIdx := k.chainRoot(target); root != nil {
		switch {
		case rootIdx == nil:
			pass.Reportf(target.Pos(), "kernel writes through captured %s without an own-slot index: the write escapes the kernel's shard", root.Name())
		default:
			if tv, ok := pass.TypesInfo.Types[rootIdx.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(rootIdx.Pos(), "kernel writes into captured map %s: concurrent map writes fault and insertion order leaks into iteration", root.Name())
					return
				}
			}
			k.checkSliceIndex(rootIdx, root)
		}
	}
	if rhs != nil {
		if id := k.mentions(rhs, k.shardVar); id != nil && k.writesCaptured(lhs) {
			pass.Reportf(id.Pos(), "kernel stores the shard index %s into captured state: results become a function of the worker count", id.Name)
		}
	}
}

// chainRoot walks a selector/index/deref chain to its base identifier.
// It returns the captured root variable (nil if the root is local) and
// the IndexExpr step nearest the root, if the chain has one.
func (k *kernel) chainRoot(e ast.Expr) (*types.Var, *ast.IndexExpr) {
	var nearest *ast.IndexExpr
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return k.capturedVar(x), nearest
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			nearest = x
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, nil
		}
	}
}

// checkSliceIndex allows only indexes anchored to the kernel's own
// range: an index mentioning a kernel-local variable or the lo bound is
// the idiomatic [lo, hi) loop; everything else addresses another
// shard's slots.
func (k *kernel) checkSliceIndex(e *ast.IndexExpr, root *types.Var) {
	pass := k.pass
	if id := k.mentions(e.Index, k.shardVar); id != nil {
		pass.Reportf(e.Index.Pos(), "kernel indexes captured %s by the shard index %s: slot ownership must follow [lo,hi), not worker identity", root.Name(), id.Name)
		return
	}
	if tv, ok := pass.TypesInfo.Types[e.Index]; ok && tv.Value != nil {
		pass.Reportf(e.Index.Pos(), "kernel writes captured %s at a constant index: that slot is shared with every other shard", root.Name())
		return
	}
	// Anchored if the index mentions any kernel-local variable or lo.
	anchored := false
	ast.Inspect(e.Index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
			if v == k.loVar || (v.Pos() >= k.pos && v.Pos() < k.end) {
				anchored = true
			}
		}
		return true
	})
	if !anchored {
		pass.Reportf(e.Index.Pos(), "kernel writes captured %s at an index not derived from its own [lo,hi) range", root.Name())
	}
}

// writesCaptured reports whether lhs targets captured state (any shape).
func (k *kernel) writesCaptured(lhs ast.Expr) bool {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return k.capturedVar(e) != nil
	case *ast.SelectorExpr:
		return k.capturedRoot(e.X) != nil
	case *ast.StarExpr:
		return k.capturedRoot(e.X) != nil
	case *ast.IndexExpr:
		return k.capturedRoot(e.X) != nil
	}
	return false
}

// capturedVar resolves id to a variable declared outside the kernel.
func (k *kernel) capturedVar(id *ast.Ident) *types.Var {
	v, ok := k.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Pos() >= k.pos && v.Pos() < k.end {
		return nil // kernel-local (params included: they sit in the literal's type)
	}
	return v
}

// capturedRoot walks to the base identifier of a selector/index/deref
// chain and resolves it if captured.
func (k *kernel) capturedRoot(e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return k.capturedVar(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// mentions returns the first identifier in e resolving to v (nil-safe).
func (k *kernel) mentions(e ast.Expr, v *types.Var) *ast.Ident {
	if v == nil {
		return nil
	}
	var found *ast.Ident
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && k.pass.TypesInfo.Uses[id] == v {
			found = id
			return false
		}
		return true
	})
	return found
}

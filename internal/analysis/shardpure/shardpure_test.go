package shardpure_test

import (
	"testing"

	"gea/internal/analysis/antest"
	"gea/internal/analysis/shardpure"
)

func TestShardpure(t *testing.T) {
	antest.Run(t, antest.SharedTestData(t), shardpure.Analyzer, "shardpurebad", "shardpuregood")
}

// Package spanpair enforces the span-closure protocol of the
// observability layer: every span opened with Ctl.StartSpan must be
// closed by a Ctl.EndSpan that is deferred in the same block,
// immediately enough that no return can slip between them — that is the
// only shape reaching EndSpan on every return AND panic path, and the
// only one that gives EndSpan the recover authority it needs to close
// the span as OutcomePanic while a panic unwinds.
//
// The contract (see internal/exec.EndSpan's doc comment):
//
//	func XWith(c *exec.Ctl, ...) (_ R, partial bool, err error) {
//		sp := c.StartSpan("pkg.X")
//		sp.SetInput(...)                    // optional
//		defer c.EndSpan(sp, &partial, &err)
//		...
//
// Violations flagged:
//
//   - a StartSpan whose result is discarded (the span can never end);
//   - a StartSpan with no matching `defer c.EndSpan(sp, ...)` in the
//     same statement list — a defer inside a nested block is
//     conditional, so some paths leak the span;
//   - a return statement between StartSpan and the deferred EndSpan
//     (the span leaks on that path);
//   - EndSpan called outside a defer, or wrapped in a deferred function
//     literal (recover only works in the deferred function itself, so a
//     wrapper silently downgrades panic closure);
//   - a second StartSpan in one function scope (one operator, one span;
//     helpers open their own);
//   - an EndSpan whose outcome arguments bypass the function's results:
//     when the enclosing function has a named bool (partial) or error
//     result, EndSpan must receive pointers to exactly those results,
//     otherwise the recorded outcome diverges from what the caller
//     observes.
package spanpair

import (
	"go/ast"
	"go/types"

	"gea/internal/analysis"
)

// Analyzer flags spans that can leak, close late, or misreport outcome.
var Analyzer = &analysis.Analyzer{
	Name: "spanpair",
	Doc:  "every Ctl.StartSpan needs a same-block deferred Ctl.EndSpan over the named results, on all return and panic paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkScope(pass, analysis.FuncType(pass.TypesInfo, fn), fn.Body)
		}
	}
	return nil
}

// isSpanCall reports whether call is <ctl>.<name>(...) on a *exec.Ctl.
func isSpanCall(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	return ok && analysis.IsExecCtl(tv.Type)
}

// checkScope enforces the protocol over one function scope. Nested
// function literals are their own scopes: each gets its own recursive
// check with its own signature, and its statements never count toward
// the enclosing scope.
func checkScope(pass *analysis.Pass, sig *types.Signature, body *ast.BlockStmt) {
	opened := 0
	checkList(pass, sig, body.List, &opened)
	// Recurse into nested literal scopes wherever they appear.
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		var litSig *types.Signature
		if tv, ok := pass.TypesInfo.Types[lit]; ok {
			litSig, _ = tv.Type.(*types.Signature)
		}
		litOpened := 0
		checkList(pass, litSig, lit.Body.List, &litOpened)
		return true
	})
}

// checkList walks one statement list, pairing StartSpans with their
// deferred EndSpans and recursing into nested (non-literal) blocks.
// opened counts StartSpans seen so far in the scope.
func checkList(pass *analysis.Pass, sig *types.Signature, list []ast.Stmt, opened *int) {
	handledStart := map[*ast.CallExpr]bool{}
	handledEnd := map[*ast.CallExpr]bool{}

	for i, stmt := range list {
		if as, ok := stmt.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && isSpanCall(pass, call, "StartSpan") {
				handledStart[call] = true
				*opened++
				if *opened > 1 {
					pass.Reportf(call.Pos(), "second StartSpan in one scope: one operator opens one span; let helpers open their own")
				}
				spanVar := assignTarget(pass, as)
				if spanVar == nil {
					pass.Reportf(call.Pos(), "StartSpan result is discarded: capture it and close it with a deferred EndSpan")
					continue
				}
				matchDeferredEnd(pass, sig, list[i+1:], call, spanVar, handledEnd)
			}
		}
	}

	// Everything not consumed above is a protocol violation of its own
	// shape: discarded StartSpans, non-deferred EndSpans, wrapped defers.
	for _, stmt := range list {
		stmt := stmt
		switch s := stmt.(type) {
		case *ast.DeferStmt:
			if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(n ast.Node) bool {
					if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
						return false
					}
					if call, ok := n.(*ast.CallExpr); ok && isSpanCall(pass, call, "EndSpan") {
						handledEnd[call] = true
						pass.Reportf(call.Pos(), "EndSpan wrapped in a deferred function literal: defer c.EndSpan(...) directly so it keeps recover authority over panics")
					}
					return true
				})
			}
			if isSpanCall(pass, s.Call, "EndSpan") && !handledEnd[s.Call] {
				handledEnd[s.Call] = true
				pass.Reportf(s.Call.Pos(), "deferred EndSpan closes a span this block never opened: defer it in the block that called StartSpan")
			}
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // separate scope, checked by checkScope
			}
			if blk, ok := nestedList(n, stmt); ok {
				checkList(pass, sig, blk, opened)
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case isSpanCall(pass, call, "StartSpan") && !handledStart[call]:
				handledStart[call] = true
				*opened++
				pass.Reportf(call.Pos(), "StartSpan result is discarded: capture it as `sp := c.StartSpan(...)` in its own statement and close it with a deferred EndSpan")
			case isSpanCall(pass, call, "EndSpan") && !handledEnd[call]:
				handledEnd[call] = true
				pass.Reportf(call.Pos(), "EndSpan outside a defer: only `defer c.EndSpan(...)` reaches every return and panic path")
			}
			return true
		})
	}
}

// nestedList returns the statement list of a nested block construct
// rooted at n (but not stmt itself when it IS the construct's body —
// the caller already iterates the outer list).
func nestedList(n ast.Node, parent ast.Stmt) ([]ast.Stmt, bool) {
	switch b := n.(type) {
	case *ast.BlockStmt:
		return b.List, true
	case *ast.CaseClause:
		return b.Body, true
	case *ast.CommClause:
		return b.Body, true
	}
	return nil, false
}

// assignTarget returns the variable the span was assigned to, or nil
// for blank/multi assignments.
func assignTarget(pass *analysis.Pass, as *ast.AssignStmt) *types.Var {
	if len(as.Lhs) != 1 {
		return nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// matchDeferredEnd scans the statements after a StartSpan for the
// matching `defer c.EndSpan(spanVar, ...)` in the same list, flags any
// return reachable before it, and validates the outcome arguments.
func matchDeferredEnd(pass *analysis.Pass, sig *types.Signature, rest []ast.Stmt, start *ast.CallExpr, spanVar *types.Var, handledEnd map[*ast.CallExpr]bool) {
	for j, stmt := range rest {
		def, ok := stmt.(*ast.DeferStmt)
		if !ok || !isSpanCall(pass, def.Call, "EndSpan") {
			continue
		}
		if len(def.Call.Args) == 0 || !identIs(pass, def.Call.Args[0], spanVar) {
			continue
		}
		handledEnd[def.Call] = true
		for _, between := range rest[:j] {
			if ret := firstReturn(between); ret != nil {
				pass.Reportf(ret.Pos(), "return between StartSpan and its deferred EndSpan: the span leaks on this path — defer EndSpan immediately after StartSpan")
			}
		}
		checkOutcomeArgs(pass, sig, def.Call)
		return
	}
	pass.Reportf(start.Pos(), "StartSpan without a same-block `defer c.EndSpan(sp, ...)`: a defer in a nested block is conditional, so some return or panic path leaks the span")
}

// firstReturn finds a return statement nested anywhere in stmt, not
// counting function literals (their returns do not leave this scope).
func firstReturn(stmt ast.Stmt) (ret *ast.ReturnStmt) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if ret != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if r, ok := n.(*ast.ReturnStmt); ok {
			ret = r
			return false
		}
		return true
	})
	return ret
}

// identIs reports whether e is an identifier resolving to v.
func identIs(pass *analysis.Pass, e ast.Expr, v *types.Var) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	return pass.TypesInfo.Uses[id] == v || pass.TypesInfo.Defs[id] == v
}

// checkOutcomeArgs pins EndSpan's partial/err pointers to the enclosing
// function's named results, so the span outcome cannot diverge from
// what the caller observes.
func checkOutcomeArgs(pass *analysis.Pass, sig *types.Signature, call *ast.CallExpr) {
	if sig == nil || len(call.Args) != 3 {
		return
	}
	if pv := resultVar(sig, func(t types.Type) bool { b, ok := t.Underlying().(*types.Basic); return ok && b.Kind() == types.Bool }); pv != nil {
		checkAddrOf(pass, call.Args[1], pv, "partial")
	}
	if ev := resultVar(sig, analysis.IsErrorType); ev != nil {
		checkAddrOf(pass, call.Args[2], ev, "error")
	}
}

// resultVar returns the last result of sig matching pred, or nil.
func resultVar(sig *types.Signature, pred func(types.Type) bool) *types.Var {
	var found *types.Var
	for i := 0; i < sig.Results().Len(); i++ {
		if r := sig.Results().At(i); pred(r.Type()) {
			found = r
		}
	}
	return found
}

// checkAddrOf requires arg to be &result for the given named result.
// An unnamed result cannot be observed by the defer at all, which is
// its own diagnostic.
func checkAddrOf(pass *analysis.Pass, arg ast.Expr, result *types.Var, what string) {
	if result.Name() == "" || result.Name() == "_" {
		pass.Reportf(arg.Pos(), "enclosing function's %s result is unnamed: name it so the deferred EndSpan can observe the final value", what)
		return
	}
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if ok && un.Op.String() == "&" && identIs(pass, un.X, result) {
		return
	}
	pass.Reportf(arg.Pos(), "EndSpan bypasses the %s result: pass &%s so the span outcome matches what the caller observes", what, result.Name())
}

package spanpair_test

import (
	"testing"

	"gea/internal/analysis/antest"
	"gea/internal/analysis/spanpair"
)

func TestSpanpair(t *testing.T) {
	antest.Run(t, antest.SharedTestData(t), spanpair.Analyzer, "spanpairbad", "spanpairgood")
}

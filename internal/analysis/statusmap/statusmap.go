// Package statusmap enforces the typed-error→HTTP-status contract of
// the serve layer: a handler that can see the substrate's typed errors
// must classify them — via errors.Is / errors.As, never by direct
// comparison or type assertion — before anything falls through to a
// blanket 500, and every retryable status must carry Retry-After.
//
// The contract, as cmd/gea/serve.go writes it:
//
//	var busy *gea.ErrBusy
//	var overload *gea.ErrOverload
//	switch {
//	case err == nil:
//	case errors.As(err, &busy):        // 429 + Retry-After
//	case errors.As(err, &overload):    // 503 + Retry-After
//	case errors.Is(err, gea.ErrShuttingDown): // 503 + Retry-After
//	case errors.As(err, &schema):      // 400: caller fault, not ours
//	default:                            // only now a 500
//	}
//
// Violations flagged, in any function shaped like an http.Handler:
//
//   - a 429 or 503 written without a Retry-After header set earlier in
//     the same block: the client is told to go away but not when to
//     come back, which turns backpressure into a retry storm;
//   - an error compared to a sentinel with == or != (wrapping breaks
//     it; use errors.Is);
//   - a type assertion or type switch on an error value (wrapping
//     breaks it; use errors.As);
//   - a classification switch that falls through to 500 without
//     testing ErrBusy, ErrOverload and ErrShuttingDown, or without
//     classifying at least one caller-fault type (SchemaError /
//     ParamError) as a 4xx — an unclassified caller fault poisons the
//     5xx error rate and gets retried forever;
//   - a classification switch that tests any of the session-family
//     errors (ErrSessionUnknown, ErrSessionExpired, ErrSessionExists)
//     without testing all three with the right helper: a session
//     handler that answers 404 for an expired ID (or vice versa) sends
//     clients into recreate loops. Handlers that never touch the
//     session family are exempt — /mine and /ingest stay as they are.
//
// Matching is by type/sentinel name, because the serve layer sees these
// types through the public gea facade's aliases.
package statusmap

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"gea/internal/analysis"
)

// Analyzer flags serve handlers that misclassify typed substrate errors.
var Analyzer = &analysis.Analyzer{
	Name: "statusmap",
	Doc:  "serve handlers must classify typed errors via errors.Is/As before 500 and set Retry-After on retryable statuses",
	Run:  run,
}

// required is what a 500-defaulting classification switch must test,
// keyed by name with the matching errors helper.
var required = []struct {
	names  []string // any one of these names satisfies the slot
	how    string   // "As" or "Is"
	status string   // what the branch should map to, for the message
}{
	{[]string{"ErrBusy"}, "As", "429"},
	{[]string{"ErrOverload"}, "As", "503"},
	{[]string{"ErrShuttingDown", "ErrShutdown"}, "Is", "503"},
	{[]string{"SchemaError", "ParamError"}, "As", "400"},
}

// sessionRequired is the session handlers' extension of the contract,
// enforced only on switches that already classify some session-family
// name — touching one of the three means the handler serves /session
// routes and must distinguish all of them.
var sessionRequired = []struct {
	names  []string
	how    string
	status string
}{
	{[]string{"ErrSessionUnknown"}, "Is", "404"},
	{[]string{"ErrSessionExpired"}, "Is", "410"},
	{[]string{"ErrSessionExists"}, "As", "409"},
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !isHandlerShaped(analysis.FuncType(pass.TypesInfo, fn)) {
				continue
			}
			checkHandler(pass, fn.Body)
		}
	}
	return nil
}

// isHandlerShaped reports whether sig takes (http.ResponseWriter,
// *http.Request) somewhere in its parameters.
func isHandlerShaped(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	var hasW, hasR bool
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if isNetHTTP(t, "ResponseWriter") {
			hasW = true
		}
		if p, ok := t.(*types.Pointer); ok && isNetHTTP(p.Elem(), "Request") {
			hasR = true
		}
	}
	return hasW && hasR
}

func isNetHTTP(t types.Type, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == name && named.Obj().Pkg().Path() == "net/http"
}

func checkHandler(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BlockStmt:
			checkRetryAfter(pass, s.List)
		case *ast.CaseClause:
			checkRetryAfter(pass, s.Body)
		case *ast.BinaryExpr:
			if s.Op == token.EQL || s.Op == token.NEQ {
				if name := sentinelSide(pass, s.X, s.Y); name != "" {
					pass.Reportf(s.Pos(), "error compared to sentinel %s with %s: wrapped errors slip past — use errors.Is", name, s.Op)
				}
			}
		case *ast.TypeAssertExpr:
			if s.Type != nil && exprIsError(pass, s.X) {
				pass.Reportf(s.Pos(), "type assertion on an error value: wrapped errors slip past — use errors.As")
			}
		case *ast.TypeSwitchStmt:
			if x := typeSwitchSubject(s); x != nil && exprIsError(pass, x) {
				pass.Reportf(s.Pos(), "type switch on an error value: wrapped errors slip past — use errors.As")
			}
		case *ast.SwitchStmt:
			checkClassification(pass, s)
		}
		return true
	})
}

// checkRetryAfter flags 429/503 writes in one statement list that no
// earlier statement of the list prepared with a Retry-After header.
func checkRetryAfter(pass *analysis.Pass, list []ast.Stmt) {
	prepared := false
	for _, stmt := range list {
		if setsRetryAfter(stmt) {
			prepared = true
			continue
		}
		if _, ok := stmt.(*ast.BlockStmt); ok {
			continue // a bare block gets its own pass
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			switch n.(type) {
			case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
				return false // nested list gets its own pass
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				if code, ok := constantStatus(pass, arg); ok && (code == 429 || code == 503) && !prepared {
					pass.Reportf(arg.Pos(), "%d written without Retry-After: set the header first or backpressure becomes a retry storm", code)
				}
			}
			return true
		})
	}
}

// setsRetryAfter recognises `<w>.Header().Set("Retry-After", ...)`.
func setsRetryAfter(stmt ast.Stmt) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) < 1 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Set" && sel.Sel.Name != "Add") {
		return false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	return ok && lit.Value == `"Retry-After"`
}

// constantStatus extracts a constant int HTTP status from an argument.
func constantStatus(pass *analysis.Pass, arg ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	code, ok := constant.Int64Val(tv.Value)
	if !ok || code < 100 || code > 599 {
		return 0, false
	}
	return code, true
}

// sentinelSide returns the name of a package-level error variable on
// either side of a comparison, ignoring the nil-check idiom.
func sentinelSide(pass *analysis.Pass, x, y ast.Expr) string {
	for _, side := range []ast.Expr{x, y} {
		var id *ast.Ident
		switch e := ast.Unparen(side).(type) {
		case *ast.Ident:
			id = e
		case *ast.SelectorExpr:
			id = e.Sel
		default:
			continue
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || !analysis.IsErrorType(v.Type()) {
			continue
		}
		// Package-level: declared in package scope.
		if v.Pkg() != nil && v.Pkg().Scope() == v.Parent() {
			return v.Name()
		}
	}
	return ""
}

func exprIsError(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Type != nil && analysis.IsErrorType(tv.Type)
}

func typeSwitchSubject(s *ast.TypeSwitchStmt) ast.Expr {
	switch a := s.Assign.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
				return ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
			return ta.X
		}
	}
	return nil
}

// checkClassification audits a tagless error-classification switch: one
// that tests errors.Is/As in its cases and whose default writes a 500.
func checkClassification(pass *analysis.Pass, s *ast.SwitchStmt) {
	if s.Tag != nil {
		return
	}
	classified := map[string]string{} // name -> "Is" or "As"
	sawErrorsCall := false
	defaultWrites500 := false
	for _, stmt := range s.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil { // default:
			for _, b := range cc.Body {
				ast.Inspect(b, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						for _, arg := range call.Args {
							if code, ok := constantStatus(pass, arg); ok && code == 500 {
								defaultWrites500 = true
							}
						}
					}
					return true
				})
			}
			continue
		}
		for _, cond := range cc.List {
			ast.Inspect(cond, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				how, name := errorsCall(pass, call)
				if how != "" {
					sawErrorsCall = true
					if name != "" {
						classified[name] = how
					}
				}
				return true
			})
		}
	}
	if !sawErrorsCall || !defaultWrites500 {
		return
	}
	enforce(pass, s, required, classified)
	// The session slots are conditional: only a switch already in the
	// session family must cover the whole family.
	for _, req := range sessionRequired {
		for _, name := range req.names {
			if _, ok := classified[name]; ok {
				enforce(pass, s, sessionRequired, classified)
				return
			}
		}
	}
}

// enforce reports every slot of a required table the switch leaves
// unclassified (or classified with the wrong errors helper).
func enforce(pass *analysis.Pass, s *ast.SwitchStmt, table []struct {
	names  []string
	how    string
	status string
}, classified map[string]string) {
	for _, req := range table {
		satisfied := false
		for _, name := range req.names {
			if how, ok := classified[name]; ok && how == req.how {
				satisfied = true
				break
			}
		}
		if !satisfied {
			pass.Reportf(s.Pos(), "error switch falls through to 500 without classifying %s via errors.%s (should map to %s)", orList(req.names), req.how, req.status)
		}
	}
}

// errorsCall decodes errors.Is(err, X) / errors.As(err, &x) into the
// helper used and the name of the sentinel or target type.
func errorsCall(pass *analysis.Pass, call *ast.CallExpr) (how, name string) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "errors" {
		return "", ""
	}
	switch fn.Name() {
	case "Is":
		if len(call.Args) == 2 {
			switch e := ast.Unparen(call.Args[1]).(type) {
			case *ast.SelectorExpr:
				return "Is", e.Sel.Name
			case *ast.Ident:
				return "Is", e.Name
			}
		}
		return "Is", ""
	case "As":
		if len(call.Args) == 2 {
			if tv, ok := pass.TypesInfo.Types[call.Args[1]]; ok {
				return "As", targetTypeName(tv.Type)
			}
		}
		return "As", ""
	}
	return "", ""
}

// targetTypeName digs the named type out of an errors.As target
// (**T, *T or *I).
func targetTypeName(t types.Type) string {
	for {
		if p, ok := types.Unalias(t).(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func orList(names []string) string {
	out := names[0]
	for _, n := range names[1:] {
		out += " or " + n
	}
	return out
}

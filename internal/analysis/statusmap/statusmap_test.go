package statusmap_test

import (
	"testing"

	"gea/internal/analysis/antest"
	"gea/internal/analysis/statusmap"
)

func TestStatusmap(t *testing.T) {
	antest.Run(t, antest.SharedTestData(t), statusmap.Analyzer, "statusmapbad", "statusmapgood")
}

// Package stdimport serves standard-library compiler export data to the
// analysis test harness. The first miss for an import path shells out to
// `go list -deps -export -json <path>`, which (re)uses the go build
// cache to produce export files for the package and its entire
// transitive closure; every result is memoised process-wide, so a test
// binary pays at most a handful of go invocations.
package stdimport

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
)

var (
	mu      sync.Mutex
	exports = make(map[string]string)
)

// Lookup returns a reader of the compiler export data for the standard
// library package at path. It has the signature go/importer's gc lookup
// expects.
func Lookup(path string) (io.ReadCloser, error) {
	mu.Lock()
	defer mu.Unlock()
	if e, ok := exports[path]; ok {
		return os.Open(e)
	}
	cmd := exec.Command("go", "list", "-deps", "-export", "-json", "--", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %s: %w\n%s", path, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct {
			ImportPath string
			Export     string
		}
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	e, ok := exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(e)
}

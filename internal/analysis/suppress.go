package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives.
//
// A finding can be silenced in source with a scoped, reason-required
// comment shared by every analyzer in the suite:
//
//	//lint:gea <analyzer>[,<analyzer>...] -- <reason>
//
// The directive silences diagnostics from the named analyzers on the
// line it occupies and on the line immediately below it, so it works
// both as a trailing comment and as a standalone comment above the
// flagged statement. The reason is mandatory: a directive without the
// " -- reason" tail, with an empty analyzer list, or naming an unknown
// analyzer is itself reported as a diagnostic (by the "suppress"
// analyzer), so suppressions stay auditable. Directives cannot silence
// the suppress analyzer.

// DirectivePrefix is the comment marker that introduces a suppression.
const DirectivePrefix = "lint:gea"

// reasonSep separates the analyzer list from the mandatory reason.
const reasonSep = " -- "

// Directive is one parsed //lint:gea comment.
type Directive struct {
	Pos    token.Pos
	Line   int      // line the comment starts on
	Names  []string // analyzers being suppressed
	Reason string
	// Malformed is a non-empty description when the directive does not
	// follow the grammar; malformed directives never suppress anything.
	Malformed string
}

// ParseDirectives extracts every //lint:gea directive from a file.
func ParseDirectives(fset *token.FileSet, file *ast.File) []Directive {
	var dirs []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, DirectivePrefix) {
				continue
			}
			d := Directive{Pos: c.Pos(), Line: fset.Position(c.Pos()).Line}
			rest := text[len(DirectivePrefix):]
			if rest != "" && !strings.HasPrefix(rest, " ") {
				// e.g. //lint:geaxyz — some other tool's namespace.
				continue
			}
			body, reason, ok := strings.Cut(rest, reasonSep)
			switch {
			case !ok || strings.TrimSpace(reason) == "":
				d.Malformed = "missing reason: write //lint:gea <analyzer> -- <reason>"
			case strings.TrimSpace(body) == "":
				d.Malformed = "missing analyzer list: write //lint:gea <analyzer> -- <reason>"
			default:
				for _, n := range strings.Split(strings.TrimSpace(body), ",") {
					n = strings.TrimSpace(n)
					if n == "" {
						d.Malformed = "empty analyzer name in list"
						break
					}
					d.Names = append(d.Names, n)
				}
				d.Reason = strings.TrimSpace(reason)
			}
			dirs = append(dirs, d)
		}
	}
	return dirs
}

// Suppresses reports whether d silences a diagnostic from the named
// analyzer on the given line. Malformed directives suppress nothing, and
// the suppress analyzer itself cannot be silenced.
func (d Directive) Suppresses(analyzer string, line int) bool {
	if d.Malformed != "" || analyzer == SuppressName {
		return false
	}
	if line != d.Line && line != d.Line+1 {
		return false
	}
	for _, n := range d.Names {
		if n == analyzer {
			return true
		}
	}
	return false
}

// Filter drops the findings silenced by the directives and returns the
// rest, preserving order. Directives are grouped per file by the caller
// giving all of them; matching is by filename+line.
func Filter(findings []Finding, dirs map[string][]Directive) []Finding {
	var kept []Finding
	for _, f := range findings {
		silenced := false
		for _, d := range dirs[f.Position.Filename] {
			if d.Suppresses(f.Analyzer, f.Position.Line) {
				silenced = true
				break
			}
		}
		if !silenced {
			kept = append(kept, f)
		}
	}
	return kept
}

// SuppressName is the name of the directive-validating analyzer.
const SuppressName = "suppress"

// NewSuppressAnalyzer builds the analyzer that validates //lint:gea
// directives: a directive with no reason, an empty analyzer list, or an
// analyzer name outside known is itself a diagnostic. known is the set
// of valid analyzer names (the suite being run).
func NewSuppressAnalyzer(known []string) *Analyzer {
	knownSet := make(map[string]bool, len(known))
	for _, n := range known {
		knownSet[n] = true
	}
	return &Analyzer{
		Name: SuppressName,
		Doc:  "validate //lint:gea suppression directives: reasons are mandatory and analyzer names must exist",
		Run: func(pass *Pass) error {
			for _, file := range pass.Files {
				for _, d := range ParseDirectives(pass.Fset, file) {
					if d.Malformed != "" {
						pass.Reportf(d.Pos, "malformed //lint:gea directive: %s", d.Malformed)
						continue
					}
					for _, n := range d.Names {
						if n == SuppressName {
							pass.Reportf(d.Pos, "//lint:gea cannot suppress the %q analyzer", SuppressName)
						} else if !knownSet[n] {
							pass.Reportf(d.Pos, "//lint:gea names unknown analyzer %q", n)
						}
					}
				}
			}
			return nil
		},
	}
}

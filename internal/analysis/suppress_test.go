package analysis_test

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"testing"

	"gea/internal/analysis"
	"gea/internal/analysis/antest"
)

// TestSuppressAnalyzer runs the directive validator over its golden
// corpora with the real analyzer-name set the multichecker would use.
func TestSuppressAnalyzer(t *testing.T) {
	a := analysis.NewSuppressAnalyzer([]string{
		"ctlcharge", "triad", "locksafe", "errwrap", "partialflag", "nopanic",
	})
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	antest.Run(t, testdata, a, "suppressbad", "suppressgood")
}

func parseOne(t *testing.T, src string) (*token.FileSet, []analysis.Directive) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "dir_test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, analysis.ParseDirectives(fset, f)
}

func TestParseDirectives(t *testing.T) {
	tests := []struct {
		name      string
		comment   string
		names     []string
		reason    string
		malformed bool
	}{
		{"single", "//lint:gea nopanic -- fault injection", []string{"nopanic"}, "fault injection", false},
		{"multi", "//lint:gea ctlcharge, locksafe -- bounded loop", []string{"ctlcharge", "locksafe"}, "bounded loop", false},
		{"no reason", "//lint:gea nopanic", nil, "", true},
		{"blank reason", "//lint:gea nopanic -- ", nil, "", true},
		{"no names", "//lint:gea -- some reason", nil, "", true},
		{"empty name in list", "//lint:gea a,,b -- reason", nil, "", true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			src := "package p\n\n" + tt.comment + "\nvar X = 1\n"
			_, dirs := parseOne(t, src)
			if len(dirs) != 1 {
				t.Fatalf("got %d directives, want 1", len(dirs))
			}
			d := dirs[0]
			if (d.Malformed != "") != tt.malformed {
				t.Fatalf("Malformed = %q, want malformed=%v", d.Malformed, tt.malformed)
			}
			if tt.malformed {
				return
			}
			if len(d.Names) != len(tt.names) {
				t.Fatalf("Names = %v, want %v", d.Names, tt.names)
			}
			for i := range tt.names {
				if d.Names[i] != tt.names[i] {
					t.Errorf("Names[%d] = %q, want %q", i, d.Names[i], tt.names[i])
				}
			}
			if d.Reason != tt.reason {
				t.Errorf("Reason = %q, want %q", d.Reason, tt.reason)
			}
		})
	}
}

func TestParseDirectivesIgnoresOtherNamespaces(t *testing.T) {
	_, dirs := parseOne(t, "package p\n\n//lint:file-ignored reasons\n//lint:geaxyz not ours\nvar X = 1\n")
	if len(dirs) != 0 {
		t.Fatalf("got %d directives from foreign namespaces, want 0", len(dirs))
	}
}

func TestSuppressesScope(t *testing.T) {
	_, dirs := parseOne(t, "package p\n\n//lint:gea nopanic -- deliberate\nvar X = 1\n")
	if len(dirs) != 1 {
		t.Fatalf("got %d directives, want 1", len(dirs))
	}
	d := dirs[0] // on line 3
	if !d.Suppresses("nopanic", 3) || !d.Suppresses("nopanic", 4) {
		t.Error("directive should cover its own line and the next")
	}
	if d.Suppresses("nopanic", 2) || d.Suppresses("nopanic", 5) {
		t.Error("directive must not cover lines outside its two-line scope")
	}
	if d.Suppresses("ctlcharge", 4) {
		t.Error("directive must only cover the analyzers it names")
	}
	if d.Suppresses(analysis.SuppressName, 4) {
		t.Error("the suppress analyzer must not be suppressible")
	}
}

func TestMalformedSuppressesNothing(t *testing.T) {
	_, dirs := parseOne(t, "package p\n\n//lint:gea nopanic\nvar X = 1\n")
	if len(dirs) != 1 || dirs[0].Malformed == "" {
		t.Fatalf("want one malformed directive, got %+v", dirs)
	}
	if dirs[0].Suppresses("nopanic", 4) {
		t.Error("malformed directive must suppress nothing")
	}
}

func TestFilter(t *testing.T) {
	mk := func(file string, line int, an string) analysis.Finding {
		f := analysis.Finding{Analyzer: an, Message: "m"}
		f.Position.Filename = file
		f.Position.Line = line
		return f
	}
	dirs := map[string][]analysis.Directive{
		"a.go": {{Line: 10, Names: []string{"nopanic"}, Reason: "r"}},
	}
	findings := []analysis.Finding{
		mk("a.go", 11, "nopanic"), // silenced (line+1)
		mk("a.go", 11, "errwrap"), // different analyzer
		mk("a.go", 12, "nopanic"), // out of scope
		mk("b.go", 11, "nopanic"), // different file
	}
	kept := analysis.Filter(findings, dirs)
	if len(kept) != 3 {
		t.Fatalf("kept %d findings, want 3: %v", len(kept), kept)
	}
	for _, f := range kept {
		if f.Position.Filename == "a.go" && f.Position.Line == 11 && f.Analyzer == "nopanic" {
			t.Error("suppressed finding survived the filter")
		}
	}
}

// Bad corpus for commitlast: commit sequences that keep mutating the
// filesystem after the CURRENT pointer has flipped.
package commitlastbad

import "gea/internal/atomicio"

// WriteAfterFlip finishes writing the generation it just published:
// readers may already be walking it, and a failure here strands a
// half-written committed generation.
func WriteAfterFlip(fsys atomicio.FS, root string) error {
	gen, err := atomicio.NextGen(fsys, root)
	if err != nil {
		return err
	}
	if err := atomicio.WriteFile(fsys, root+"/"+gen+"/data.json", nil); err != nil {
		return err
	}
	if err := atomicio.Commit(fsys, root, gen); err != nil {
		return err
	}
	return atomicio.WriteFile(fsys, root+"/"+gen+"/index.json", nil) // want `atomicio.WriteFile after the CURRENT flip`
}

// DoubleCommit flips CURRENT twice in one sequence: between the flips
// readers observe a generation the function is about to abandon.
func DoubleCommit(fsys atomicio.FS, root, gen, gen2 string) error {
	if err := atomicio.Commit(fsys, root, gen); err != nil {
		return err
	}
	return atomicio.Commit(fsys, root, gen2) // want `second atomicio.Commit`
}

// RenameAfterFlip rearranges the committed tree under readers' feet.
func RenameAfterFlip(fsys atomicio.FS, root, gen string) error {
	if err := atomicio.Commit(fsys, root, gen); err != nil {
		return err
	}
	return fsys.Rename(root+"/"+gen+"/tmp", root+"/"+gen+"/final") // want `FS.Rename after the CURRENT flip`
}

// BuildAfterFlip starts the NEXT generation inside the same sequence,
// fusing two commit cycles into one fallible tail.
func BuildAfterFlip(fsys atomicio.FS, root, gen string) error {
	if err := atomicio.Commit(fsys, root, gen); err != nil {
		return err
	}
	next, err := atomicio.NextGen(fsys, root) // want `atomicio.NextGen after the CURRENT flip`
	if err != nil {
		return err
	}
	return fsys.MkdirAll(root+"/"+next, 0o755) // want `FS.MkdirAll after the CURRENT flip`
}

// Good corpus for commitlast: conformant commit sequences. No line
// here may produce a diagnostic.
package commitlastgood

import "gea/internal/atomicio"

// BuildThenCommit is the canonical sequence: write the full generation,
// flip CURRENT as the final fallible operation, then best-effort
// cleanup of the old generations only.
func BuildThenCommit(fsys atomicio.FS, root string, payload []byte) error {
	gen, err := atomicio.NextGen(fsys, root)
	if err != nil {
		return err
	}
	if err := fsys.MkdirAll(root+"/"+gen, 0o755); err != nil {
		return err
	}
	if err := atomicio.WriteFile(fsys, root+"/"+gen+"/data.json", payload); err != nil {
		return err
	}
	if err := atomicio.Commit(fsys, root, gen); err != nil {
		return err
	}
	atomicio.CleanupGens(fsys, root, gen)
	return nil
}

// CommitWithRetry retries the same flip call site: still one commit
// point, exercised until it sticks.
func CommitWithRetry(fsys atomicio.FS, root, gen string) error {
	var err error
	for i := 0; i < 3; i++ {
		if err = atomicio.Commit(fsys, root, gen); err == nil {
			break
		}
	}
	atomicio.CleanupGensExcept(fsys, root, map[string]bool{gen: true})
	return err
}

// ReadBackAfterCommit may verify what it published — reads are not
// mutations — and may remove superseded state.
func ReadBackAfterCommit(fsys atomicio.FS, root, gen, old string) ([]byte, error) {
	if err := atomicio.Commit(fsys, root, gen); err != nil {
		return nil, err
	}
	cur, err := atomicio.CurrentGen(fsys, root)
	if err != nil {
		return nil, err
	}
	if err := fsys.RemoveAll(root + "/" + old); err != nil {
		return nil, err
	}
	return atomicio.ReadFile(fsys, root+"/"+cur+"/data.json")
}

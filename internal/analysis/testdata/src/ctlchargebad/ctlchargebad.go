// Bad corpus for the ctlcharge analyzer: Ctl-threaded functions whose
// loops never charge work, so cancellation and budgets cannot reach
// them.
package ctlchargebad

import "gea/internal/exec"

// SumWith loops over its input without a single checkpoint.
func SumWith(c *exec.Ctl, rows []int) (int, bool, error) {
	total := 0
	for _, r := range rows { // want `loop does not checkpoint`
		total += r
	}
	return total, false, nil
}

// Nested reports only the outermost loop; the inner one is its
// responsibility.
func Nested(c *exec.Ctl, rows [][]int) int {
	t := 0
	for _, row := range rows { // want `loop does not checkpoint`
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Classic three-clause for loops are covered too.
func CountWith(c *exec.Ctl, n int) (int, bool, error) {
	total := 0
	for i := 0; i < n; i++ { // want `loop does not checkpoint`
		total += i
	}
	return total, false, nil
}

// ErrOnly consults the Ctl's sticky error but never charges: budgets
// and cancellation polls still cannot fire inside the loop.
func ErrOnly(c *exec.Ctl, rows []int) error {
	for _, r := range rows { // want `loop does not checkpoint`
		if c.Err() != nil {
			return c.Err()
		}
		_ = r
	}
	return nil
}

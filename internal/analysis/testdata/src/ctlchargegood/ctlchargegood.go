// Good corpus for the ctlcharge analyzer: every loop either charges the
// Ctl, delegates to a metered helper, sits inside a charging loop, or
// carries a reasoned suppression.
package ctlchargegood

import "gea/internal/exec"

// SumWith charges one unit per row — the canonical metered loop.
func SumWith(c *exec.Ctl, rows []int) (int, bool, error) {
	total := 0
	for _, r := range rows {
		if err := c.Point(1); err != nil {
			if exec.IsBudget(err) {
				return total, true, nil
			}
			return 0, false, err
		}
		total += r
	}
	return total, false, nil
}

// PipelineWith delegates: passing the Ctl into the helper hands the
// loop's metering to it.
func PipelineWith(c *exec.Ctl, batches [][]int) (int, bool, error) {
	total := 0
	for _, b := range batches {
		n, partial, err := SumWith(c, b)
		if partial || err != nil {
			return total, partial, err
		}
		total += n
	}
	return total, false, nil
}

// OuterCharges needs no charge in the inner loop: the enclosing loop
// checkpoints once per row.
func OuterCharges(c *exec.Ctl, rows [][]int) error {
	for _, row := range rows {
		if err := c.Point(int64(len(row))); err != nil {
			return err
		}
		for _, v := range row {
			_ = v
		}
	}
	return nil
}

// PlainLoop threads no Ctl, so it is outside the contract.
func PlainLoop(rows []int) int {
	total := 0
	for _, r := range rows {
		total += r
	}
	return total
}

// RegisterWith shows the reasoned escape hatch for a bounded
// post-processing loop.
func RegisterWith(c *exec.Ctl, names []string) {
	//lint:gea ctlcharge -- registration is bounded by already-metered mining results
	for _, n := range names {
		_ = n
	}
}

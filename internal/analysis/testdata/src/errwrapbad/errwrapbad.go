// Bad corpus for the errwrap analyzer: cancellation/budget errors that
// narrate their sentinel instead of wrapping it, and direct sentinel
// comparisons that break once an operator layer wraps the error.
package errwrapbad

import (
	"context"
	"errors"
	"fmt"

	"gea/internal/exec"
)

// Stop narrates the cancellation instead of wrapping it: errors.Is on
// context.Canceled fails for every caller.
func Stop(err error) error {
	if err != nil {
		return fmt.Errorf("operator canceled: %v", err) // want `does not wrap its sentinel`
	}
	return nil
}

// Deadline messages are governance messages too.
func Expire() error {
	return fmt.Errorf("deadline passed while mining") // want `does not wrap its sentinel`
}

// errStopped is a stringly-typed imitation of exec.ErrBudget.
var errStopped = errors.New("work budget exhausted") // want `stringly-typed`

// CheckCancel compares a sentinel directly; operators wrap sentinels in
// *exec.ExecError, so this is false for any wrapped error.
func CheckCancel(err error) bool {
	return err == context.Canceled // want `direct comparison against context.Canceled`
}

func CheckDeadline(err error) bool {
	return err == context.DeadlineExceeded // want `direct comparison against context.DeadlineExceeded`
}

func CheckBudget(err error) bool {
	return err != exec.ErrBudget // want `direct comparison against exec.ErrBudget`
}

// Good corpus for the errwrap analyzer: wrapped sentinels, errors.Is
// dispatch, and error text that merely mentions none of the governance
// keywords.
package errwrapgood

import (
	"context"
	"errors"
	"fmt"

	"gea/internal/exec"
)

// Stop wraps, so errors.Is keeps working through any operator layer.
func Stop(err error) error {
	if err != nil {
		return fmt.Errorf("operator canceled: %w", err)
	}
	return nil
}

// Budget stops that must be errors wrap the sentinel.
func Exhaust() error {
	return fmt.Errorf("work budget exhausted before a result: %w", exec.ErrBudget)
}

// Dispatch uses errors.Is / the exec helpers.
func Dispatch(err error) bool {
	return errors.Is(err, context.Canceled) || exec.IsBudget(err)
}

// Non-governance errors may be plain.
var errNoRows = errors.New("no rows selected")

// Comparing arbitrary errors is not a sentinel comparison.
func Same(a, b error) bool { return a == b }

// Package atomicio is the testdata stub of GEA's durability layer: just
// enough surface (FS, the framed writers and the generation-commit
// protocol) for the commitlast corpora to typecheck. As with the exec
// stub, the analyzers match by import-path suffix, so this stub is
// indistinguishable from the real package to them.
package atomicio

import "io"

type FileInfoLike interface{ Name() string }

type File interface {
	io.Writer
	Sync() error
	Close() error
}

type FS interface {
	Create(path string) (File, error)
	Open(path string) (io.ReadCloser, error)
	Rename(oldpath, newpath string) error
	MkdirAll(path string, perm uint32) error
	RemoveAll(path string) error
	ReadDir(path string) ([]FileInfoLike, error)
	SyncDir(path string) error
}

func WriteFile(fsys FS, path string, payload []byte) error { return nil }

func WriteFileFunc(fsys FS, path string, write func(io.Writer) error) error { return nil }

func ReadFile(fsys FS, path string) ([]byte, error) { return nil, nil }

func NextGen(fsys FS, root string) (string, error) { return "gen-000001", nil }

func Commit(fsys FS, root, gen string) error { return nil }

func CurrentGen(fsys FS, root string) (string, error) { return "gen-000001", nil }

func CleanupGens(fsys FS, root, keep string) {}

func CleanupGensExcept(fsys FS, root string, keep map[string]bool) {}

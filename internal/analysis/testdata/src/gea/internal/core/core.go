// Package core is the testdata stub of a compute-kernel package: one
// governed operator triad (MineWith/MineCtx/Mine) and some cheap
// ungoverned helpers, so the locksafe corpora can exercise the
// heavy-call-under-lock distinction.
package core

import (
	"context"

	"gea/internal/exec"
)

type Algorithm int

func (a Algorithm) String() string { return "lattice" }

func MineWith(c *exec.Ctl, prefix string) ([]int, bool, error) {
	if err := c.Point(1); err != nil {
		if exec.IsBudget(err) {
			return nil, true, nil
		}
		return nil, false, err
	}
	return []int{1}, false, nil
}

func MineCtx(ctx context.Context, prefix string, lim exec.Limits) ([]int, exec.Trace, error) {
	c := exec.New(ctx, lim)
	r, partial, err := MineWith(c, prefix)
	return r, c.Snapshot(partial), err
}

func Mine(prefix string) ([]int, error) {
	r, _, err := MineWith(exec.Background(), prefix)
	return r, err
}

// Describe is a cheap package-level helper: no Ctl, no context — fine
// to call under a registry lock.
func Describe(n int) string { return "stub" }

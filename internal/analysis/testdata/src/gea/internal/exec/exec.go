// Package exec is the testdata stub of GEA's execution-governance
// layer: just enough surface (Ctl, Limits, Trace, the sentinels, Guard)
// for the analyzer corpora to typecheck. The analyzers match these
// types by import-path suffix, so the stub living under
// testdata/src/gea/internal/exec is indistinguishable from the real
// package as far as they are concerned.
package exec

import (
	"context"
	"errors"

	"gea/internal/obs"
)

var ErrBudget = errors.New("exec: work budget exhausted")

type Limits struct {
	Budget     int64
	CheckEvery int64
	Workers    int
}

type Trace struct {
	Partial bool
	Reason  string
	Units   int64
}

type Ctl struct{ stopped error }

func New(ctx context.Context, lim Limits) *Ctl { return &Ctl{} }

func Background() *Ctl { return &Ctl{} }

func (c *Ctl) Point(n int64) error { return c.stopped }

func (c *Ctl) Err() error { return c.stopped }

func (c *Ctl) Exhausted() bool { return errors.Is(c.stopped, ErrBudget) }

func (c *Ctl) Snapshot(partial bool) Trace { return Trace{Partial: partial} }

func Guard(op, node string, fn func() error) error { return fn() }

func IsBudget(err error) bool { return errors.Is(err, ErrBudget) }

func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (c *Ctl) Workers() int { return 1 }

func (c *Ctl) Split(n int) []*Ctl { return make([]*Ctl, n) }

func (c *Ctl) SplitWork(counts []int64) []*Ctl { return make([]*Ctl, len(counts)) }

func (c *Ctl) Merge(kids ...*Ctl) {}

func (c *Ctl) StartSpan(op string) *obs.Span { return nil }

func (c *Ctl) EndSpan(sp *obs.Span, partial *bool, err *error) {}

// Package shard is the testdata stub of GEA's parallel evaluation
// substrate: just enough surface (Kernel, For, ForN) for the analyzer
// corpora to typecheck kernel-shaped function literals. As with the
// exec stub, the analyzers match by import-path suffix, so this stub is
// indistinguishable from the real package to them.
package shard

import "gea/internal/exec"

type Kernel func(c *exec.Ctl, shard, lo, hi int) (done int, err error)

func For(c *exec.Ctl, work, grain int, kernel Kernel) (int, bool, error) {
	return ForN(c, 0, work, grain, kernel)
}

func ForN(c *exec.Ctl, workers, work, grain int, kernel Kernel) (int, bool, error) {
	done, err := kernel(c, 0, 0, work)
	if err != nil {
		if exec.IsBudget(err) {
			return done, true, nil
		}
		return 0, false, err
	}
	return done, false, nil
}

// Package obs is the testdata stub of GEA's observability layer: just
// enough surface (Span, Registry and its metric constructors) for the
// spanpair and metricname corpora to typecheck. As with the exec stub,
// the analyzers match by import-path suffix, so this stub is
// indistinguishable from the real package to them.
package obs

type Span struct{}

func (sp *Span) SetInput(format string, args ...any) {}

func (sp *Span) End(outcome string, errMsg string, units, checkpoints int64, workers int) {}

type Counter struct{}

func (c *Counter) Add(n int64) {}

type Gauge struct{}

func (g *Gauge) Add(n int64) {}

func (g *Gauge) Set(n int64) {}

type Histogram struct{}

func (h *Histogram) Observe(v float64) {}

var LatencyBounds = []float64{1e-4, 1e-3}

type Registry struct{}

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) Counter(name string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name string, bounds []float64) *Histogram { return &Histogram{} }

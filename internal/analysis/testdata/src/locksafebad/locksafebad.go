// Bad corpus for the locksafe analyzer: governed compute under a held
// mutex, and admission slots that can leak.
package locksafebad

import (
	"context"
	"sync"

	"gea/internal/core"
	"gea/internal/exec"
)

type System struct {
	mu    sync.Mutex
	count int
}

func (s *System) acquire(ctx context.Context) (func(), error) { return func() {}, nil }

// MineLocked holds the registry lock across the miner.
func (s *System) MineLocked(prefix string) ([]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, _, err := core.MineWith(exec.Background(), prefix) // want `call to governed operator core.MineWith while holding s.mu`
	return r, err
}

// CtxLocked: the Ctx operator forms are just as heavy.
func (s *System) CtxLocked(ctx context.Context, prefix string) ([]int, error) {
	s.mu.Lock()
	r, _, err := core.MineCtx(ctx, prefix, exec.Limits{}) // want `call to governed operator core.MineCtx while holding s.mu`
	s.mu.Unlock()
	return r, err
}

// GuardLocked runs guarded operator work under the lock.
func (s *System) GuardLocked() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return exec.Guard("op", "node", func() error { return nil }) // want `exec.Guard call while holding s.mu`
}

// RWLocked: read locks serialise against writers just the same.
type RWSystem struct {
	mu sync.RWMutex
}

func (s *RWSystem) MineRLocked(prefix string) ([]int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, _, err := core.MineWith(exec.Background(), prefix) // want `call to governed operator core.MineWith while holding s.mu`
	return r, err
}

// Leak acquires a slot but never defers the release: a panic (or a
// forgotten path) between acquire and the manual release leaks it.
func (s *System) Leak(ctx context.Context) error {
	release, err := s.acquire(ctx) // want `admission slot from acquire is never released`
	if err != nil {
		return err
	}
	release()
	return nil
}

// EarlyReturn slips a return between the acquire and its defer.
func (s *System) EarlyReturn(ctx context.Context, bad bool) error {
	release, err := s.acquire(ctx)
	if err != nil {
		return err
	}
	if bad {
		return nil // want `return between acquire and .defer release\(\). leaks the admission slot`
	}
	defer release()
	return nil
}

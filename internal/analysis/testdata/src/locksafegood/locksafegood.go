// Good corpus for the locksafe analyzer: the lock → look up → unlock →
// compute → lock → register pattern, cheap accessors under the lock,
// and correctly paired admission slots.
package locksafegood

import (
	"context"
	"sync"

	"gea/internal/core"
	"gea/internal/exec"
)

type System struct {
	mu    sync.Mutex
	count int
}

func (s *System) acquire(ctx context.Context) (func(), error) { return func() {}, nil }

// Calculate computes between the two critical sections.
func (s *System) Calculate(prefix string) ([]int, error) {
	s.mu.Lock()
	n := s.count
	s.mu.Unlock()
	_ = n
	r, _, err := core.MineWith(exec.Background(), prefix)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
	return r, nil
}

// Lookup's early-exit branches unlock before returning; the compute
// below runs unlocked.
func (s *System) Lookup(prefix string) ([]int, error) {
	s.mu.Lock()
	if s.count == 0 {
		s.mu.Unlock()
		return nil, nil
	}
	s.mu.Unlock()
	r, _, err := core.MineWith(exec.Background(), prefix)
	return r, err
}

// Cheap kernel-package accessors are fine under the lock.
func (s *System) Name(a core.Algorithm) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return a.String() + core.Describe(s.count)
}

// Admit pairs the acquire with an immediate defer after the error
// guard.
func (s *System) Admit(ctx context.Context) ([]int, error) {
	release, err := s.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	r, _, err := core.MineWith(exec.Background(), "x")
	return r, err
}

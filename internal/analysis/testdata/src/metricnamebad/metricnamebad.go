// Bad corpus for metricname: names outside the dotted scheme or the
// checked-in manifest.
package metricnamebad

import "gea/internal/obs"

func Register(r *obs.Registry, op string) {
	r.Counter("bogusNoDot")                        // want `not dotted lower_snake`
	r.Gauge("Caps.Bad")                            // want `not dotted lower_snake`
	r.Counter("unknown.metric")                    // want `not in the metricname manifest`
	r.Histogram("also.unknown", obs.LatencyBounds) // want `not in the metricname manifest`
	r.Counter(op + ".count")                       // want `no constant prefix`
	r.Counter("nope." + op)                        // want `not covered by any manifest wildcard`
}

// Good corpus for metricname: catalogued names and documented dynamic
// families. No line here may produce a diagnostic.
package metricnamegood

import "gea/internal/obs"

func Register(r *obs.Registry, op string) {
	r.Counter("ingest.appends")
	r.Gauge("spans.active")
	r.Histogram("admission.wait_s", obs.LatencyBounds)
	r.Counter("ops." + op + ".count")
	r.Histogram("ops."+op+".latency_s", obs.LatencyBounds)
}

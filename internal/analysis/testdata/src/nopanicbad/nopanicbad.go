// Bad corpus for the nopanic analyzer: naked panics in a governed
// package (it imports the exec governance layer).
package nopanicbad

import "gea/internal/exec"

// Mine panics on bad input instead of returning an error.
func Mine(c *exec.Ctl, rows []int) (int, error) {
	if rows == nil {
		panic("nil rows") // want `naked panic in a governed package`
	}
	total := 0
	for _, r := range rows {
		if err := c.Point(1); err != nil {
			return 0, err
		}
		total += r
	}
	return total, nil
}

// mustIndex hides the panic in a helper — still flagged.
func mustIndex(rows []int, i int) int {
	if i >= len(rows) {
		panic(i) // want `naked panic in a governed package`
	}
	return rows[i]
}

// Good corpus for the nopanic analyzer: faults are returned as errors,
// and the one deliberate panic carries a reasoned suppression.
package nopanicgood

import (
	"errors"

	"gea/internal/exec"
)

var errNilRows = errors.New("nil rows")

// Mine returns its fault instead of panicking.
func Mine(c *exec.Ctl, rows []int) (int, error) {
	if rows == nil {
		return 0, errNilRows
	}
	total := 0
	for _, r := range rows {
		if err := c.Point(1); err != nil {
			return 0, err
		}
		total += r
	}
	return total, nil
}

// Crash exists to exercise exec.Guard's recovery path in tests; the
// panic is the whole point, so it is suppressed with the reason.
func Crash() error {
	return exec.Guard("crash", "", func() error {
		//lint:gea nopanic -- deliberate fault injection to exercise Guard's recover path
		panic("injected fault")
	})
}

// Shadowed panic identifiers are not the builtin and are never flagged.
func Shadow() {
	panic := func(v any) {}
	panic("not the builtin")
}

// Ungoverned corpus for the nopanic analyzer: this package neither is
// an operator package nor imports the exec governance layer, so its
// panics are out of scope and produce no diagnostics.
package nopanicungoverned

// Must panics freely — this package never runs under the governance
// contract.
func Must(v int, err error) int {
	if err != nil {
		panic(err)
	}
	return v
}

// Bad corpus for the partialflag analyzer: budget-stop branches that
// return an unflagged result with a nil error — silent truncation.
package partialflagbad

import (
	"errors"

	"gea/internal/exec"
)

// SumWith silently truncates: the budget branch returns the prefix with
// partial=false and no error.
func SumWith(c *exec.Ctl, rows []int) (int, bool, error) {
	total := 0
	for _, r := range rows {
		if err := c.Point(1); err != nil {
			if exec.IsBudget(err) {
				return total, false, nil // want `budget stop returns an unflagged result`
			}
			return 0, false, err
		}
		total += r
	}
	return total, false, nil
}

// ScanWith tests for the sentinel via errors.Is — same contract.
func ScanWith(c *exec.Ctl, rows []int) ([]int, bool, error) {
	var out []int
	for range rows {
		if err := c.Point(1); err != nil {
			if errors.Is(err, exec.ErrBudget) {
				return out, false, nil // want `budget stop returns an unflagged result`
			}
			return nil, false, err
		}
		out = append(out, 1)
	}
	return out, false, nil
}

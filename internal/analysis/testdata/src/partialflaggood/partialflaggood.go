// Good corpus for the partialflag analyzer: budget stops either flag
// the partial result or propagate an error wrapping the sentinel.
package partialflaggood

import (
	"fmt"

	"gea/internal/exec"
)

// SumWith flags the truncated prefix.
func SumWith(c *exec.Ctl, rows []int) (int, bool, error) {
	total := 0
	for _, r := range rows {
		if err := c.Point(1); err != nil {
			if exec.IsBudget(err) {
				return total, true, nil
			}
			return 0, false, err
		}
		total += r
	}
	return total, false, nil
}

// FindWith yields a single value, so budget exhaustion before success
// is an error — wrapping the sentinel keeps errors.Is working.
func FindWith(c *exec.Ctl, rows []int) (int, bool, error) {
	for _, r := range rows {
		if err := c.Point(1); err != nil {
			if exec.IsBudget(err) {
				return 0, false, fmt.Errorf("work budget exhausted before a match: %w", err)
			}
			return 0, false, err
		}
		if r > 0 {
			return r, false, nil
		}
	}
	return 0, false, nil
}

// PassErrWith may propagate the raw sentinel too: errors.Is still
// holds.
func PassErrWith(c *exec.Ctl, rows []int) (int, bool, error) {
	for range rows {
		if err := c.Point(1); err != nil {
			if exec.IsBudget(err) {
				return 0, false, err
			}
			return 0, false, err
		}
	}
	return len(rows), false, nil
}

// Bad corpus for the ctlcharge shard-kernel rule: kernels whose loops
// never charge their sliced Ctl, and outer loops that try to borrow a
// kernel's internal charge.
package shardbad

import (
	"gea/internal/exec"
	"gea/internal/exec/shard"
)

// UnchargedKernel receives a sliced Ctl but scans without a single
// checkpoint: a budget can never stop this shard mid-range.
func UnchargedKernel(rows []int) shard.Kernel {
	return func(c *exec.Ctl, _, lo, hi int) (int, error) {
		for i := lo; i < hi; i++ { // want `loop does not checkpoint`
			_ = rows[i]
		}
		return hi - lo, nil
	}
}

// UnchargedInline is the same defect at a dispatch site: the enclosing
// function passes the Ctl onward, but the kernel itself never charges.
func UnchargedInline(c *exec.Ctl, rows []int) error {
	_, _, err := shard.For(c, len(rows), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		for i := lo; i < hi; i++ { // want `loop does not checkpoint`
			_ = rows[i]
		}
		return hi - lo, nil
	})
	return err
}

// BorrowedCharge defines a (correctly charging) kernel inside its loop
// but never dispatches it with the Ctl: the kernel's internal Point
// belongs to the kernel's own scope, so the outer loop is uncharged.
func BorrowedCharge(c *exec.Ctl, rows []int) []shard.Kernel {
	var kernels []shard.Kernel
	for range rows { // want `loop does not checkpoint`
		kernels = append(kernels, func(c *exec.Ctl, _, lo, hi int) (int, error) {
			for i := lo; i < hi; i++ {
				if err := c.Point(1); err != nil {
					return i - lo, err
				}
			}
			return hi - lo, nil
		})
	}
	return kernels
}

// Good corpus for the ctlcharge shard-kernel rule: kernels charge
// their own sliced Ctl, enclosing loops charge through the call that
// passes the Ctl onward, and none of it needs a suppression.
package shardgood

import (
	"gea/internal/exec"
	"gea/internal/exec/shard"
)

// ScanWith evaluates through the shard substrate: the enclosing
// function charges nothing itself — passing the Ctl to shard.For hands
// the metering to the kernel, whose loop charges one unit per item on
// its own sliced Ctl.
func ScanWith(c *exec.Ctl, rows []int) ([]int, bool, error) {
	out := make([]int, len(rows))
	prefix, partial, err := shard.For(c, len(rows), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		for i := lo; i < hi; i++ {
			if err := c.Point(1); err != nil {
				return i - lo, err
			}
			out[i] = rows[i] * rows[i]
		}
		return hi - lo, nil
	})
	if err != nil {
		return nil, false, err
	}
	return out[:prefix], partial, nil
}

// KernelInPlainFunc builds a kernel inside a function that threads no
// Ctl at all; the kernel is still a metered scope and passes because
// its loop charges.
func KernelInPlainFunc(rows []int) shard.Kernel {
	return func(c *exec.Ctl, _, lo, hi int) (int, error) {
		for i := lo; i < hi; i++ {
			if err := c.Point(1); err != nil {
				return i - lo, err
			}
			_ = rows[i]
		}
		return hi - lo, nil
	}
}

// RoundsWith dispatches a shard scan per round: the outer loop
// checkpoints by passing the Ctl into shard.For each iteration.
func RoundsWith(c *exec.Ctl, rows []int, rounds int) (bool, error) {
	for r := 0; r < rounds; r++ {
		_, partial, err := shard.For(c, len(rows), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
			for i := lo; i < hi; i++ {
				if err := c.Point(1); err != nil {
					return i - lo, err
				}
			}
			return hi - lo, nil
		})
		if partial || err != nil {
			return partial, err
		}
	}
	return false, nil
}

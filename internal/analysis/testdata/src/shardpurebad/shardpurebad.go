// Bad corpus for shardpure: kernels whose writes escape their own
// [lo, hi) slots or whose results depend on worker identity.
package shardpurebad

import (
	"gea/internal/exec"
	"gea/internal/exec/shard"
)

type acc struct{ total int }

// CapturedScalar accumulates into a captured variable: shards race on
// it and the sum depends on completion order.
func CapturedScalar(c *exec.Ctl, rows []float64) float64 {
	sum := 0.0
	shard.For(c, len(rows), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		for i := lo; i < hi; i++ {
			sum += rows[i] // want `writes captured variable sum`
		}
		return hi - lo, nil
	})
	return sum
}

// CapturedMap inserts into a shared map: concurrent writes fault.
func CapturedMap(c *exec.Ctl, rows []int) map[int]int {
	counts := map[int]int{}
	shard.For(c, len(rows), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		for i := lo; i < hi; i++ {
			counts[rows[i]]++ // want `captured map`
		}
		return hi - lo, nil
	})
	return counts
}

// FixedSlot writes a constant index shared with every other shard.
func FixedSlot(c *exec.Ctl, rows []int) int {
	out := make([]int, 1)
	shard.For(c, len(rows), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		out[0] = hi // want `constant index`
		return hi - lo, nil
	})
	return out[0]
}

// WorkerSlot partitions output by worker identity instead of [lo, hi):
// the layout changes with the worker count.
func WorkerSlot(c *exec.Ctl, rows []int) []int {
	out := make([]int, len(rows))
	shard.For(c, len(rows), 0, func(c *exec.Ctl, w, lo, hi int) (int, error) {
		out[w] = hi - lo // want `by the shard index`
		return hi - lo, nil
	})
	return out
}

// WorkerValue stores the worker index into captured state.
func WorkerValue(c *exec.Ctl, rows []int) []int {
	owner := make([]int, len(rows))
	shard.For(c, len(rows), 0, func(c *exec.Ctl, w, lo, hi int) (int, error) {
		for i := lo; i < hi; i++ {
			owner[i] = w // want `stores the shard index`
		}
		return hi - lo, nil
	})
	return owner
}

// WorkerReturn folds the worker index into the kernel's result.
func WorkerReturn(c *exec.Ctl, rows []int) {
	shard.For(c, len(rows), 0, func(c *exec.Ctl, w, lo, hi int) (int, error) {
		return hi - lo + w, nil // want `derived from the shard index`
	})
}

// CapturedField mutates shared struct state from inside the kernel.
func CapturedField(c *exec.Ctl, rows []int) int {
	var a acc
	shard.For(c, len(rows), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		a.total += hi - lo // want `without an own-slot index`
		return hi - lo, nil
	})
	return a.total
}

// CapturedPointer is the same escape one indirection away.
func CapturedPointer(c *exec.Ctl, rows []int, p *int) {
	shard.For(c, len(rows), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		*p = hi // want `without an own-slot index`
		return hi - lo, nil
	})
}

// DriftingIndex writes through an index with no anchor in the kernel's
// own range: whatever it means, it is not this shard's slot.
func DriftingIndex(c *exec.Ctl, rows []int, k int) []int {
	out := make([]int, len(rows))
	shard.For(c, len(rows), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		out[k] = hi // want `not derived from its own`
		return hi - lo, nil
	})
	return out
}

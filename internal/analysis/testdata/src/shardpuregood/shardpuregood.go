// Good corpus for shardpure: the canonical pure-kernel idioms. No line
// here may produce a diagnostic.
package shardpuregood

import (
	"gea/internal/exec"
	"gea/internal/exec/shard"
)

type row struct {
	Val  float64
	Done bool
}

// OwnSlots is the house pattern: per-item results land in the kernel's
// own [lo, hi) slots, scratch state stays kernel-local.
func OwnSlots(c *exec.Ctl, rows []float64) ([]float64, bool, error) {
	out := make([]float64, len(rows))
	prefix, partial, err := shard.For(c, len(rows), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		scratch := 0.0
		for i := lo; i < hi; i++ {
			if err := c.Point(1); err != nil {
				return i - lo, err
			}
			scratch += rows[i]
			out[i] = rows[i] + scratch
		}
		return hi - lo, nil
	})
	if err != nil {
		return nil, false, err
	}
	_ = partial
	return out[:prefix], partial, nil
}

// SlotFields may freely mutate the interior of an own slot.
func SlotFields(c *exec.Ctl, rows []row) ([]row, error) {
	out := make([]row, len(rows))
	_, _, err := shard.For(c, len(rows), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		for i := lo; i < hi; i++ {
			if err := c.Point(1); err != nil {
				return i - lo, err
			}
			out[i].Val = rows[i].Val * 2
			out[i].Done = true
		}
		return hi - lo, nil
	})
	return out, err
}

// OffsetSlots shows an index derived from the range bounds themselves.
func OffsetSlots(c *exec.Ctl, rows []float64) []float64 {
	out := make([]float64, 2*len(rows))
	shard.For(c, len(rows), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		for i := lo; i < hi; i++ {
			if err := c.Point(1); err != nil {
				return i - lo, err
			}
			out[lo+(i-lo)*2] = rows[i]
		}
		return hi - lo, nil
	})
	return out
}

// NamedKernel is a declaration-shaped kernel: same contract, no
// captures beyond its own parameters.
func NamedKernel(c *exec.Ctl, _, lo, hi int) (int, error) {
	local := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		if err := c.Point(1); err != nil {
			return i - lo, err
		}
		local = append(local, i)
	}
	return hi - lo, nil
}

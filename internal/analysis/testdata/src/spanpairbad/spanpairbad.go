// Bad corpus for spanpair: spans that leak, close conditionally, close
// without recover authority, or misreport their outcome.
package spanpairbad

import (
	"gea/internal/exec"
	"gea/internal/obs"
)

// Discarded drops the span handle on the floor: nothing can ever end it.
func Discarded(c *exec.Ctl) {
	c.StartSpan("bad.Discarded") // want `result is discarded`
}

// Blanked is the same leak spelled with a blank assignment.
func Blanked(c *exec.Ctl) {
	_ = c.StartSpan("bad.Blanked") // want `result is discarded`
}

// NeverEnded captures the span but has no deferred EndSpan anywhere.
func NeverEnded(c *exec.Ctl, rows []int) (partial bool, err error) {
	sp := c.StartSpan("bad.NeverEnded") // want `without a same-block`
	sp.SetInput("rows=%d", len(rows))
	return false, nil
}

// ConditionalClose defers the EndSpan inside a nested block, so the
// quiet path leaks the span. The nested defer is flagged from both
// sides: the StartSpan has no same-block closure, and the defer closes
// a span its own block never opened.
func ConditionalClose(c *exec.Ctl, verbose bool) (partial bool, err error) {
	sp := c.StartSpan("bad.ConditionalClose") // want `without a same-block`
	if verbose {
		defer c.EndSpan(sp, &partial, &err) // want `never opened`
	}
	return false, nil
}

// EarlyReturn lets an outcome-bearing return bypass the closure: the
// span is still open when the function exits through it.
func EarlyReturn(c *exec.Ctl, n int) (partial bool, err error) {
	sp := c.StartSpan("bad.EarlyReturn")
	if n < 0 {
		return false, nil // want `return between StartSpan`
	}
	defer c.EndSpan(sp, &partial, &err)
	return false, nil
}

// SyncClose calls EndSpan inline: an early return or panic above it
// leaves the span open.
func SyncClose(c *exec.Ctl) (partial bool, err error) {
	sp := c.StartSpan("bad.SyncClose") // want `without a same-block`
	c.EndSpan(sp, &partial, &err)      // want `outside a defer`
	return false, nil
}

// WrappedClose hides EndSpan inside a deferred literal, which strips
// its recover authority: a panic unwinds through the wrapper without
// the span recording OutcomePanic. The wrapped call is flagged both as
// a wrapper and as a non-deferred EndSpan in its literal's own scope.
func WrappedClose(c *exec.Ctl) (partial bool, err error) {
	sp := c.StartSpan("bad.WrappedClose")            // want `without a same-block`
	defer func() { c.EndSpan(sp, &partial, &err) }() // want `wrapped in a deferred function literal` `outside a defer`
	return false, nil
}

// DoubleOpen opens two spans in one scope: one operator, one span.
func DoubleOpen(c *exec.Ctl) (partial bool, err error) {
	sp := c.StartSpan("bad.DoubleOpen")
	defer c.EndSpan(sp, &partial, &err)
	sp2 := c.StartSpan("bad.DoubleOpen2") // want `second StartSpan in one scope`
	defer c.EndSpan(sp2, &partial, &err)
	return false, nil
}

// BypassedOutcome closes over locals instead of the named results, so
// the recorded outcome diverges from what the caller observes.
func BypassedOutcome(c *exec.Ctl) (partial bool, err error) {
	var p2 bool
	var e2 error
	sp := c.StartSpan("bad.BypassedOutcome")
	defer c.EndSpan(sp, &p2, &e2) // want `bypasses the partial result` `bypasses the error result`
	_ = p2
	_ = e2
	return partial, err
}

// UnnamedResults cannot wire the defer to the outcome at all.
func UnnamedResults(c *exec.Ctl) (bool, error) {
	sp := c.StartSpan("bad.UnnamedResults")
	defer c.EndSpan(sp, nil, nil) // want `partial result is unnamed` `error result is unnamed`
	return false, nil
}

// Orphan closes a span handed in from elsewhere: pairing is per scope.
func Orphan(c *exec.Ctl, sp *obs.Span) {
	defer c.EndSpan(sp, nil, nil) // want `never opened`
}

// Good corpus for spanpair: the canonical span idiom in its legitimate
// variations. No line here may produce a diagnostic.
package spanpairgood

import (
	"errors"

	"gea/internal/exec"
)

// Canonical is the house shape: capture, optional SetInput, deferred
// EndSpan over the named results, immediately after StartSpan.
func Canonical(c *exec.Ctl, rows []int) (_ int, partial bool, err error) {
	sp := c.StartSpan("good.Canonical")
	sp.SetInput("rows=%d", len(rows))
	defer c.EndSpan(sp, &partial, &err)
	for range rows {
		if err = c.Point(1); err != nil {
			return 0, partial, err
		}
	}
	return len(rows), partial, err
}

// NoBoolResult mirrors the ingest facade: a function with no partial
// result may close over a local flag, but the error pointer must still
// be the named result.
func NoBoolResult(c *exec.Ctl) (err error) {
	var partial bool
	sp := c.StartSpan("good.NoBoolResult")
	defer c.EndSpan(sp, &partial, &err)
	if c.Exhausted() {
		partial = true
	}
	return err
}

// NoResults is a fire-and-forget operator: nothing to wire up.
func NoResults(c *exec.Ctl) {
	sp := c.StartSpan("good.NoResults")
	defer c.EndSpan(sp, nil, nil)
}

// HelperSpans shows nested scopes each owning one span: the literal is
// its own scope with its own pairing, not a second open in the parent.
func HelperSpans(c *exec.Ctl) (partial bool, err error) {
	sp := c.StartSpan("good.HelperSpans")
	defer c.EndSpan(sp, &partial, &err)
	run := func(c *exec.Ctl) (partial bool, err error) {
		sp := c.StartSpan("good.HelperSpans.inner")
		defer c.EndSpan(sp, &partial, &err)
		return false, nil
	}
	return run(c)
}

// ErrorsAfterwards may do anything it likes once the pair is in place.
func ErrorsAfterwards(c *exec.Ctl, fail bool) (partial bool, err error) {
	sp := c.StartSpan("good.ErrorsAfterwards")
	defer c.EndSpan(sp, &partial, &err)
	if fail {
		return false, errors.New("operator failure")
	}
	if c.Exhausted() {
		return true, nil
	}
	return false, nil
}

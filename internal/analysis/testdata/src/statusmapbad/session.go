// Session-handler corpus for statusmap: switches that enter the
// session family without covering it.
package statusmapbad

import (
	"errors"
	"net/http"
)

var ErrSessionUnknown = errors.New("unknown session")

var ErrSessionExpired = errors.New("session expired")

type ErrSessionExists struct{ ID string }

func (e *ErrSessionExists) Error() string { return "session exists: " + e.ID }

type ParamError struct{ Param string }

func (e *ParamError) Error() string { return "bad parameter: " + e.Param }

// SessionHalfCovered tests unknown but not expired or double-create:
// an expired ID surfaces as a 500 and a recreate loop begins.
func SessionHalfCovered(w http.ResponseWriter, r *http.Request) {
	err := work()
	var busy *ErrBusy
	var overload *ErrOverload
	var param *ParamError
	switch { // want `classifying ErrSessionExpired` `classifying ErrSessionExists`
	case err == nil:
	case errors.As(err, &busy):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.As(err, &overload):
		w.Header().Set("Retry-After", "2")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrShuttingDown):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.As(err, &param):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.Is(err, ErrSessionUnknown):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// SessionWrongHelper tests the exists conflict with errors.Is: the
// typed pointer never matches a wrapped instance, so every double
// create falls through to 500.
func SessionWrongHelper(w http.ResponseWriter, r *http.Request) {
	err := work()
	var busy *ErrBusy
	var overload *ErrOverload
	var param *ParamError
	switch { // want `classifying ErrSessionExists via errors.As`
	case err == nil:
	case errors.As(err, &busy):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.As(err, &overload):
		w.Header().Set("Retry-After", "2")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrShuttingDown):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.As(err, &param):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.Is(err, ErrSessionUnknown):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrSessionExpired):
		http.Error(w, err.Error(), http.StatusGone)
	case errors.Is(err, errSessionExistsSentinel):
		http.Error(w, err.Error(), http.StatusConflict)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

var errSessionExistsSentinel = errors.New("session exists")

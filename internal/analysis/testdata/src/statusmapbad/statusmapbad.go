// Bad corpus for statusmap: handlers that misclassify typed errors or
// push back without telling the client when to return.
package statusmapbad

import (
	"errors"
	"net/http"
	"time"
)

// Local twins of the substrate's typed errors: the analyzer matches by
// name, exactly as it does through the gea facade's aliases.

type ErrBusy struct{ RetryAfter time.Duration }

func (e *ErrBusy) Error() string { return "busy" }

type ErrOverload struct{ RetryAfter time.Duration }

func (e *ErrOverload) Error() string { return "overload" }

var ErrShuttingDown = errors.New("shutting down")

type SchemaError struct{ Field string }

func (e *SchemaError) Error() string { return "schema: " + e.Field }

func work() error { return nil }

// NoRetryAfter sheds load without a Retry-After: clients hammer right
// back and the backpressure becomes a retry storm.
func NoRetryAfter(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "shedding", http.StatusServiceUnavailable) // want `503 written without Retry-After`
}

// NoRetryAfter429 is the same defect on the busy path.
func NoRetryAfter429(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "busy", http.StatusTooManyRequests) // want `429 written without Retry-After`
}

// SentinelCompare breaks on the first wrapped error.
func SentinelCompare(w http.ResponseWriter, r *http.Request) {
	err := work()
	if err == ErrShuttingDown { // want `use errors.Is`
		http.Error(w, err.Error(), http.StatusGone)
	}
}

// AssertedType breaks the same way one level up.
func AssertedType(w http.ResponseWriter, r *http.Request) {
	err := work()
	if se, ok := err.(*SchemaError); ok { // want `use errors.As`
		http.Error(w, se.Error(), http.StatusBadRequest)
	}
}

// SwitchedType is the type-switch spelling of the same defect.
func SwitchedType(w http.ResponseWriter, r *http.Request) {
	err := work()
	switch err.(type) { // want `type switch on an error value`
	case *SchemaError:
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Incomplete classifies only the busy path before the 500 fallthrough:
// overload and shutdown surface as server faults without Retry-After,
// and caller faults poison the 5xx error rate.
func Incomplete(w http.ResponseWriter, r *http.Request) {
	err := work()
	var busy *ErrBusy
	switch { // want `classifying ErrOverload` `classifying ErrShuttingDown or ErrShutdown` `classifying SchemaError or ParamError`
	case err == nil:
	case errors.As(err, &busy):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

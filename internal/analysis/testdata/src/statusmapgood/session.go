// Session-handler corpus: the extended contract as
// cmd/gea/serve_session.go writes it. Touching any session-family
// error obliges the switch to distinguish all three; handlers outside
// the family (Classified in statusmapgood.go) owe nothing extra.
package statusmapgood

import (
	"errors"
	"net/http"
)

var ErrSessionUnknown = errors.New("unknown session")

var ErrSessionExpired = errors.New("session expired")

type ErrSessionExists struct{ ID string }

func (e *ErrSessionExists) Error() string { return "session exists: " + e.ID }

type ParamError struct{ Param string }

func (e *ParamError) Error() string { return "bad parameter: " + e.Param }

// SessionClassified is the canonical session error classifier: the
// base slots plus the full session family, unknown and expired kept
// distinct so clients never recreate a live session or retry a dead ID.
func SessionClassified(w http.ResponseWriter, r *http.Request) {
	err := work()
	var busy *ErrBusy
	var overload *ErrOverload
	var param *ParamError
	var exists *ErrSessionExists
	switch {
	case err == nil:
	case errors.As(err, &busy):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.As(err, &overload):
		w.Header().Set("Retry-After", "2")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrShuttingDown):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.As(err, &param):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.Is(err, ErrSessionUnknown):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrSessionExpired):
		http.Error(w, err.Error(), http.StatusGone)
	case errors.As(err, &exists):
		http.Error(w, err.Error(), http.StatusConflict)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Good corpus for statusmap: the full classification contract as
// cmd/gea/serve.go writes it. No line here may produce a diagnostic.
package statusmapgood

import (
	"errors"
	"net/http"
	"time"
)

type ErrBusy struct{ RetryAfter time.Duration }

func (e *ErrBusy) Error() string { return "busy" }

type ErrOverload struct{ RetryAfter time.Duration }

func (e *ErrOverload) Error() string { return "overload" }

var ErrShuttingDown = errors.New("shutting down")

type SchemaError struct{ Field string }

func (e *SchemaError) Error() string { return "schema: " + e.Field }

func work() error { return nil }

// Classified is the canonical shape: every typed error is tested with
// errors.Is/As, every retryable status carries Retry-After, and only
// the truly unknown remainder becomes a 500.
func Classified(w http.ResponseWriter, r *http.Request) {
	err := work()
	var busy *ErrBusy
	var overload *ErrOverload
	var schema *SchemaError
	switch {
	case err == nil:
	case errors.As(err, &busy):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.As(err, &overload):
		w.Header().Set("Retry-After", "2")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, ErrShuttingDown):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.As(err, &schema):
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// EarlyShed pushes back before doing any work — with the header set
// first in the same block.
func EarlyShed(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Retry-After", "1")
	http.Error(w, "draining", http.StatusServiceUnavailable)
}

// NotAHandler compares sentinels outside the serve surface: that is
// errwrap's jurisdiction, not this analyzer's.
func NotAHandler(err error) bool {
	return err == ErrShuttingDown
}

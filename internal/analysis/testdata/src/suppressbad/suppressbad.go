// Bad corpus for the suppress analyzer: directives that are malformed,
// name analyzers that do not exist, or try to silence the validator
// itself.
package suppressbad

import "gea/internal/exec"

// Reasonless directives never suppress and are themselves diagnostics.
func Reasonless(c *exec.Ctl, rows []int) int {
	total := 0
	//lint:gea ctlcharge // want `malformed //lint:gea directive: missing reason`
	for _, r := range rows {
		total += r
	}
	return total
}

// A reason without an analyzer list is equally unauditable.
func Nameless(c *exec.Ctl, rows []int) int {
	total := 0
	//lint:gea -- the loop is bounded // want `malformed //lint:gea directive: missing analyzer list`
	for _, r := range rows {
		total += r
	}
	return total
}

// Unknown analyzer names are typos waiting to hide a real finding.
func Typo(c *exec.Ctl, rows []int) int {
	total := 0
	//lint:gea ctlchrge -- bounded registration loop // want `unknown analyzer "ctlchrge"`
	for _, r := range rows {
		total += r
	}
	return total
}

// The validator cannot be silenced, or suppressions stop being audited.
func Meta(c *exec.Ctl, rows []int) int {
	total := 0
	//lint:gea suppress -- quiet the auditor // want `cannot suppress the "suppress" analyzer`
	for _, r := range rows {
		total += r
	}
	return total
}

// An empty name inside an otherwise plausible list is malformed too.
func Gappy(c *exec.Ctl, rows []int) int {
	total := 0
	//lint:gea ctlcharge,, locksafe -- bounded loop // want `malformed //lint:gea directive: empty analyzer name`
	for _, r := range rows {
		total += r
	}
	return total
}

// Good corpus for the suppress analyzer: well-formed, reasoned
// directives naming real analyzers produce no diagnostics.
package suppressgood

import "gea/internal/exec"

// Bounded registration-style loop with a standalone directive above it.
func Register(c *exec.Ctl, rows []int) int {
	total := 0
	//lint:gea ctlcharge -- registration loop is bounded by the metered mining pass above
	for _, r := range rows {
		total += r
	}
	return total
}

// A directive may silence several analyzers at once, trailing the line.
func Mixed(c *exec.Ctl, rows []int) int {
	total := 0
	for _, r := range rows { //lint:gea ctlcharge, nopanic -- loop is O(len(rows)) over an admission-bounded slice
		total += r
	}
	return total
}

// Comments in some other tool's namespace are not ours to validate.
func Foreign() {
	//lint:file-ignored some other linter's grammar entirely
	_ = 0
}

// Bad corpus for the triad analyzer: With forms missing their Ctx or
// legacy siblings, and triads whose shapes drifted apart.
package triadbad

import (
	"context"

	"gea/internal/exec"
)

// OrphanWith has neither an OrphanCtx nor a legacy Orphan.
func OrphanWith(c *exec.Ctl, n int) (int, bool, error) { // want `has no OrphanCtx form` `has no legacy Orphan form`
	return n, false, nil
}

// ShapelessWith lacks the partial-flag bool before the error.
func ShapelessWith(c *exec.Ctl, n int) (int, error) { // want `must return \(results\.\.\., bool, error\)`
	return n, nil
}

// DriftCtx lost the scale parameter its With form carries.
func DriftWith(c *exec.Ctl, n int, scale float64) (int, bool, error) {
	return n, false, nil
}

func DriftCtx(ctx context.Context, n int, lim exec.Limits) (int, exec.Trace, error) { // want `DriftCtx parameters are inconsistent with DriftWith`
	return n, exec.Trace{}, nil
}

func Drift(n int, scale float64) (int, error) { return n, nil }

// Skew's legacy form returns a different result type.
func SkewWith(c *exec.Ctl, n int) (int, bool, error) { return n, false, nil }

func SkewCtx(ctx context.Context, n int, lim exec.Limits) (int, exec.Trace, error) {
	return n, exec.Trace{}, nil
}

func Skew(n int) (float64, error) { // want `Skew results are inconsistent with SkewWith`
	return 0, nil
}

// WarpCtx forgot the trailing exec.Limits.
func WarpWith(c *exec.Ctl, n int) (int, bool, error) { return n, false, nil }

func WarpCtx(ctx context.Context, n int) (int, exec.Trace, error) { // want `WarpCtx parameters are inconsistent with WarpWith`
	return n, exec.Trace{}, nil
}

func Warp(n int) (int, error) { return n, nil }

// Good corpus for the triad analyzer: complete, shape-consistent
// triads, a defaulted-options legacy prefix, a method triad, and names
// whose "With" does not mean "metered".
package triadgood

import (
	"context"

	"gea/internal/exec"
)

type Options struct{ Depth int }

// The canonical function triad; the legacy form defaults the trailing
// options away (a prefix of the With parameters).
func ScanWith(c *exec.Ctl, name string, opts Options) ([]string, bool, error) {
	return nil, false, nil
}

func ScanCtx(ctx context.Context, name string, opts Options, lim exec.Limits) ([]string, exec.Trace, error) {
	return nil, exec.Trace{}, nil
}

func Scan(name string) ([]string, error) { return nil, nil }

// A method triad on a receiver.
type Store struct{}

func (s *Store) GapWith(c *exec.Ctl, a, b string) (string, bool, error) { return "", false, nil }

func (s *Store) GapCtx(ctx context.Context, a, b string, lim exec.Limits) (string, exec.Trace, error) {
	return "", exec.Trace{}, nil
}

func (s *Store) Gap(a, b string) (string, error) { return "", nil }

// "With" meaning "with algorithm", not "metered": no Ctl first
// parameter, so no triad is demanded.
func FindWith(name string, alg int) (string, error) { return name, nil }

// Unexported cores are implementation detail, not API triads.
func scanWith(c *exec.Ctl, name string) (int, bool, error) { return 0, false, nil }

// Package triad enforces the three-entry-point shape of every governed
// operator. PR 2 established the convention:
//
//	XWith(c *exec.Ctl, P...) (R..., bool, error)          // metered core
//	XCtx(ctx context.Context, P..., lim exec.Limits)
//	     (R..., exec.Trace, error)                        // governed API
//	X(P...) (R..., error)                                 // legacy API
//
// The analyzer triggers on every exported function (or method) whose
// name ends in "With" and whose first parameter is a *exec.Ctl, and
// then demands that the Ctx and legacy forms exist with consistent
// parameter and return shapes. The legacy form may omit trailing
// parameters of the With form (a defaulted-options convenience, e.g.
// core.Populate versus core.PopulateWithOptions), but the shared prefix
// and the result shape must align exactly.
//
// Functions that merely end in "With" without threading a Ctl (e.g.
// System.FindPureFascicleWith, where "With" reads as "with algorithm")
// are not operator cores and are ignored.
package triad

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"gea/internal/analysis"
)

// Analyzer checks With/Ctx/legacy operator triads for presence and
// shape consistency.
var Analyzer = &analysis.Analyzer{
	Name: "triad",
	Doc:  "every exported XWith(*exec.Ctl, ...) operator must expose a consistent XCtx and legacy X form",
	Run:  run,
}

// declared is one function or method declaration of the package.
type declared struct {
	decl *ast.FuncDecl
	sig  *types.Signature
}

func run(pass *analysis.Pass) error {
	// Group declarations by receiver type name ("" for functions) so
	// method triads are matched within their receiver.
	groups := make(map[string]map[string]declared)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			sig := analysis.FuncType(pass.TypesInfo, fn)
			if sig == nil {
				continue
			}
			key := receiverKey(sig)
			if groups[key] == nil {
				groups[key] = make(map[string]declared)
			}
			groups[key][fn.Name.Name] = declared{decl: fn, sig: sig}
		}
	}

	for _, group := range groups {
		for name, with := range group {
			if !strings.HasSuffix(name, "With") || !ast.IsExported(name) {
				continue
			}
			params := with.sig.Params()
			if params.Len() == 0 || !analysis.IsExecCtl(params.At(0).Type()) {
				continue // "With" suffix without a Ctl: not an operator core
			}
			base := strings.TrimSuffix(name, "With")
			if base == "" {
				continue
			}
			checkTriad(pass, group, base, with)
		}
	}
	return nil
}

func receiverKey(sig *types.Signature) string {
	recv := sig.Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return types.TypeString(t, nil)
}

func checkTriad(pass *analysis.Pass, group map[string]declared, base string, with declared) {
	name := with.decl.Name.Name
	// The With form itself must return (R..., bool, error).
	res := with.sig.Results()
	if res.Len() < 2 || res.At(res.Len()-2).Type().String() != "bool" || !analysis.IsErrorType(res.At(res.Len()-1).Type()) {
		pass.Reportf(with.decl.Pos(), "%s must return (results..., bool, error): the bool is the partial flag of a budget-stopped run", name)
		return
	}
	core := tupleTypes(res)[:res.Len()-2]        // R...
	carried := tupleTypes(with.sig.Params())[1:] // P... (Ctl dropped)

	// Ctx form: XCtx(ctx, P..., lim) (R..., exec.Trace, error).
	ctxName := base + "Ctx"
	ctxd, ok := group[ctxName]
	if !ok {
		pass.Reportf(with.decl.Pos(), "exported operator %s has no %s form: the With/Ctx/legacy triad is incomplete", name, ctxName)
	} else {
		wantParams := fmt.Sprintf("(context.Context, %s, exec.Limits)", typesList(carried))
		cp := tupleTypes(ctxd.sig.Params())
		ok := len(cp) == len(carried)+2 &&
			analysis.IsContext(cp[0]) &&
			analysis.IsExecLimits(cp[len(cp)-1]) &&
			identicalList(cp[1:len(cp)-1], carried)
		if !ok {
			pass.Reportf(ctxd.decl.Pos(), "%s parameters are inconsistent with %s: want %s", ctxName, name, wantParams)
		}
		cr := tupleTypes(ctxd.sig.Results())
		ok = len(cr) == len(core)+2 &&
			identicalList(cr[:len(core)], core) &&
			analysis.IsExecTrace(cr[len(cr)-2]) &&
			analysis.IsErrorType(cr[len(cr)-1])
		if !ok {
			pass.Reportf(ctxd.decl.Pos(), "%s results are inconsistent with %s: want (%s, exec.Trace, error)", ctxName, name, typesList(core))
		}
	}

	// Legacy form: X(P-prefix...) (R..., error). Trailing parameters of
	// the With form may be defaulted away.
	legacy, ok := group[base]
	if !ok {
		pass.Reportf(with.decl.Pos(), "exported operator %s has no legacy %s form: the With/Ctx/legacy triad is incomplete", name, base)
	} else {
		lp := tupleTypes(legacy.sig.Params())
		if len(lp) > len(carried) || !identicalList(lp, carried[:min(len(lp), len(carried))]) {
			pass.Reportf(legacy.decl.Pos(), "%s parameters are inconsistent with %s: want a prefix of (%s)", base, name, typesList(carried))
		}
		lr := tupleTypes(legacy.sig.Results())
		ok := len(lr) == len(core)+1 &&
			identicalList(lr[:len(core)], core) &&
			analysis.IsErrorType(lr[len(lr)-1])
		if !ok {
			pass.Reportf(legacy.decl.Pos(), "%s results are inconsistent with %s: want (%s, error)", base, name, typesList(core))
		}
	}
}

func tupleTypes(t *types.Tuple) []types.Type {
	out := make([]types.Type, t.Len())
	for i := range out {
		out[i] = t.At(i).Type()
	}
	return out
}

func identicalList(a, b []types.Type) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !types.Identical(a[i], b[i]) {
			return false
		}
	}
	return true
}

func typesList(ts []types.Type) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = types.TypeString(t, func(p *types.Package) string { return p.Name() })
	}
	return strings.Join(parts, ", ")
}

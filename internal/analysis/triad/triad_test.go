package triad_test

import (
	"testing"

	"gea/internal/analysis/antest"
	"gea/internal/analysis/triad"
)

func TestTriad(t *testing.T) {
	antest.Run(t, antest.SharedTestData(t), triad.Analyzer, "triadbad", "triadgood")
}

// Package atomicio is GEA's durability layer: every artifact the toolkit
// persists (corpus indexes, library files, binary ".b" tissue files, the
// relational catalog, the lineage graph, the session manifest) goes to disk
// through this package.
//
// It provides three things:
//
//  1. An injectable FS interface so the save paths can be exercised under
//     fault injection (package iofault) without touching the real disk API.
//
//  2. Checksummed framing: a fixed-size footer carrying a format version,
//     the payload length and a CRC-32C of the payload. Truncation (payload
//     shorter than the footer says, or footer missing entirely) is
//     distinguishable from corruption (checksum mismatch) via the sentinel
//     errors ErrTruncated and ErrChecksum.
//
//  3. Atomic commits: WriteFile stages the framed payload in a temporary
//     file, fsyncs it, renames it over the destination and fsyncs the
//     parent directory, so a crash at any point leaves either the old file
//     or the new file, never a torn one. For multi-file artifacts the
//     generation-directory protocol (NextGen/Commit/CurrentGen) writes a
//     whole new directory and flips a single CURRENT pointer as the commit
//     point.
package atomicio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Framing errors. Callers classify load failures with errors.Is.
var (
	// ErrTruncated reports a file that is shorter than its footer claims,
	// or that carries no footer at all — the signature a crash mid-write
	// (or a file from a pre-durability version of GEA) leaves behind.
	ErrTruncated = errors.New("atomicio: truncated file or missing footer")
	// ErrChecksum reports a complete file whose payload does not match its
	// recorded CRC — bit rot or external modification.
	ErrChecksum = errors.New("atomicio: checksum mismatch")
)

// Footer layout (little endian), appended after the payload:
//
//	offset 0  magic   "GEAF" (4 bytes)
//	offset 4  version uint32 — frame format version
//	offset 8  length  uint64 — payload length in bytes
//	offset 16 crc     uint32 — CRC-32C (Castagnoli) of the payload
const (
	frameMagic = "GEAF"
	// FrameVersion is the current frame format version recorded in every
	// footer. Readers reject newer versions rather than misparse them.
	FrameVersion = 1
	// FooterSize is the fixed size of the frame footer in bytes.
	FooterSize = 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFooter returns payload with its frame footer appended.
func AppendFooter(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+FooterSize)
	out = append(out, payload...)
	out = append(out, frameMagic...)
	out = binary.LittleEndian.AppendUint32(out, FrameVersion)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	return out
}

// SplitFrame verifies the footer of a framed file and returns the payload.
// It reports ErrTruncated when the footer is absent or the payload is the
// wrong length, and ErrChecksum when the payload fails its CRC.
func SplitFrame(data []byte) ([]byte, error) {
	if len(data) < FooterSize {
		return nil, fmt.Errorf("%w (%d bytes, footer needs %d)", ErrTruncated, len(data), FooterSize)
	}
	foot := data[len(data)-FooterSize:]
	if string(foot[:4]) != frameMagic {
		return nil, fmt.Errorf("%w (no %q footer)", ErrTruncated, frameMagic)
	}
	version := binary.LittleEndian.Uint32(foot[4:8])
	if version > FrameVersion {
		return nil, fmt.Errorf("atomicio: frame version %d is newer than supported %d", version, FrameVersion)
	}
	length := binary.LittleEndian.Uint64(foot[8:16])
	payload := data[:len(data)-FooterSize]
	if length != uint64(len(payload)) {
		return nil, fmt.Errorf("%w (footer records %d payload bytes, file holds %d)", ErrTruncated, length, len(payload))
	}
	if crc := crc32.Checksum(payload, castagnoli); crc != binary.LittleEndian.Uint32(foot[16:20]) {
		return nil, fmt.Errorf("%w (payload CRC %08x, footer records %08x)",
			ErrChecksum, crc, binary.LittleEndian.Uint32(foot[16:20]))
	}
	return payload, nil
}

// tempName returns the staging name for path. It is deterministic so fault
// scripts replay identically; a leftover temp from a crashed commit is
// simply truncated by the next attempt and never read by loaders.
func tempName(path string) string {
	dir, base := filepath.Split(path)
	return dir + ".tmp." + base
}

// IsTempName reports whether base names a staging file left by an
// interrupted commit. Loaders and directory scans skip such files.
func IsTempName(base string) bool { return strings.HasPrefix(base, ".tmp.") }

// WriteFile atomically commits payload (plus frame footer) to path:
// stage in a temp file, write, fsync, close, rename over path, fsync the
// parent directory. A crash at any step leaves the previous contents of
// path intact.
func WriteFile(fsys FS, path string, payload []byte) error {
	tmp := tempName(path)
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(AppendFooter(payload)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// WriteFileFunc buffers the output of write and atomically commits it to
// path with WriteFile. It adapts GEA's stream codecs (WriteIndex,
// WriteLibrary, WriteBinary, gob encoders…) to the framed atomic protocol.
func WriteFileFunc(fsys FS, path string, write func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return err
	}
	return WriteFile(fsys, path, buf.Bytes())
}

// ReadFile reads a framed file and returns its verified payload.
func ReadFile(fsys FS, path string) ([]byte, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	payload, err := SplitFrame(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return payload, nil
}

// Generation-directory protocol. A multi-file artifact (a corpus, a
// session) lives under a root directory as
//
//	root/CURRENT      framed file naming the live generation
//	root/gen-NNNNNN/  the generation's files
//
// A save writes a complete new generation directory — never touching the
// live one — and then commits by atomically rewriting CURRENT. Stale
// generations are removed only after the commit, so a crash anywhere
// yields either the old or the new complete state.
const (
	// CurrentFile is the name of the commit-pointer file.
	CurrentFile = "CURRENT"
	genPrefix   = "gen-"
)

// NextGen scans root (creating it if needed) and returns the name of the
// next unused generation directory, e.g. "gen-000003".
func NextGen(fsys FS, root string) (string, error) {
	if err := fsys.MkdirAll(root, 0o755); err != nil {
		return "", err
	}
	entries, err := fsys.ReadDir(root)
	if err != nil {
		return "", err
	}
	max := 0
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), genPrefix+"%06d", &n); err == nil && n > max {
			max = n
		}
	}
	return fmt.Sprintf(genPrefix+"%06d", max+1), nil
}

// Commit atomically points root/CURRENT at gen. This is the commit point
// of a multi-file save: before it, loaders see the previous state; after
// it, the new one.
func Commit(fsys FS, root, gen string) error {
	return WriteFile(fsys, filepath.Join(root, CurrentFile), []byte(gen))
}

// CurrentGen reads root/CURRENT and returns the live generation name.
func CurrentGen(fsys FS, root string) (string, error) {
	payload, err := ReadFile(fsys, filepath.Join(root, CurrentFile))
	if err != nil {
		return "", err
	}
	gen := string(payload)
	if !strings.HasPrefix(gen, genPrefix) || strings.ContainsAny(gen, "/\\") {
		return "", fmt.Errorf("atomicio: %s/CURRENT names invalid generation %q", root, gen)
	}
	return gen, nil
}

// CleanupGens removes every generation directory under root except keep,
// plus any stale staging files. Failures are ignored: orphan generations
// are invisible to loaders and the next save retries the cleanup.
func CleanupGens(fsys FS, root, keep string) {
	CleanupGensExcept(fsys, root, map[string]bool{keep: true})
}

// CleanupGensExcept removes every generation directory under root whose
// name is not in keep, plus any stale staging files. Multi-generation
// stores (an append log whose index references library files across
// several committed generations) pass the full referenced set; a plain
// save passes just the live one via CleanupGens. Failures are ignored for
// the same reason as CleanupGens.
func CleanupGensExcept(fsys FS, root string, keep map[string]bool) {
	entries, err := fsys.ReadDir(root)
	if err != nil {
		return
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		stale := (strings.HasPrefix(name, genPrefix) && !keep[name]) || IsTempName(name)
		if stale {
			fsys.RemoveAll(filepath.Join(root, name))
		}
	}
}

package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), []byte("hello frame"), make([]byte, 4096)} {
		framed := AppendFooter(payload)
		got, err := SplitFrame(framed)
		if err != nil {
			t.Fatalf("SplitFrame(%d bytes): %v", len(payload), err)
		}
		if string(got) != string(payload) {
			t.Fatalf("payload changed: %d vs %d bytes", len(got), len(payload))
		}
	}
}

func TestSplitFrameTruncation(t *testing.T) {
	framed := AppendFooter([]byte("some payload worth keeping"))
	// Every proper prefix must read as truncated or corrupt, never succeed.
	for n := 0; n < len(framed); n++ {
		_, err := SplitFrame(framed[:n])
		if err == nil {
			t.Fatalf("SplitFrame of %d/%d-byte prefix succeeded", n, len(framed))
		}
	}
	// A cut that removes footer bytes is truncation, not a checksum error.
	if _, err := SplitFrame(framed[:len(framed)-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("cut footer: got %v, want ErrTruncated", err)
	}
	if _, err := SplitFrame(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty file: got %v, want ErrTruncated", err)
	}
}

func TestSplitFrameCorruption(t *testing.T) {
	framed := AppendFooter([]byte("some payload worth keeping"))
	payloadLen := len(framed) - FooterSize
	for i := range framed {
		mutated := append([]byte(nil), framed...)
		mutated[i] ^= 0x40
		_, err := SplitFrame(mutated)
		if err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
		if i < payloadLen && !errors.Is(err, ErrChecksum) {
			t.Errorf("payload flip at %d: got %v, want ErrChecksum", i, err)
		}
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.bin")
	if err := WriteFile(OS{}, path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1" {
		t.Fatalf("payload = %q", got)
	}
	// Overwrite is atomic and leaves no staging file behind.
	if err := WriteFile(OS{}, path, []byte("v2 longer payload")); err != nil {
		t.Fatal(err)
	}
	got, err = ReadFile(OS{}, path)
	if err != nil || string(got) != "v2 longer payload" {
		t.Fatalf("after overwrite: %q, %v", got, err)
	}
	if _, err := os.Stat(tempName(path)); !os.IsNotExist(err) {
		t.Errorf("staging file survived commit: %v", err)
	}
}

func TestWriteFileFunc(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	err := WriteFileFunc(OS{}, path, func(w io.Writer) error {
		_, err := w.Write([]byte("streamed"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(OS{}, path)
	if err != nil || string(got) != "streamed" {
		t.Fatalf("got %q, %v", got, err)
	}
	// An error from the codec aborts before anything is committed.
	boom := errors.New("boom")
	err = WriteFileFunc(OS{}, filepath.Join(dir, "g"), func(io.Writer) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("codec error not propagated: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "g")); !os.IsNotExist(err) {
		t.Error("failed write left a file behind")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(OS{}, filepath.Join(t.TempDir(), "nope")); !os.IsNotExist(err) {
		t.Errorf("got %v, want not-exist", err)
	}
}

func TestGenerationProtocol(t *testing.T) {
	root := filepath.Join(t.TempDir(), "store")
	gen, err := NextGen(OS{}, root)
	if err != nil {
		t.Fatal(err)
	}
	if gen != "gen-000001" {
		t.Fatalf("first generation = %q", gen)
	}
	// CURRENT does not exist before the first commit.
	if _, err := CurrentGen(OS{}, root); err == nil {
		t.Fatal("CurrentGen before any commit: expected error")
	}
	if err := os.MkdirAll(filepath.Join(root, gen), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(OS{}, filepath.Join(root, gen, "data"), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := Commit(OS{}, root, gen); err != nil {
		t.Fatal(err)
	}
	cur, err := CurrentGen(OS{}, root)
	if err != nil || cur != gen {
		t.Fatalf("CurrentGen = %q, %v", cur, err)
	}

	// Second generation: NextGen skips the live one, cleanup removes it
	// only after the new commit.
	gen2, err := NextGen(OS{}, root)
	if err != nil || gen2 != "gen-000002" {
		t.Fatalf("second generation = %q, %v", gen2, err)
	}
	if err := os.MkdirAll(filepath.Join(root, gen2), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := Commit(OS{}, root, gen2); err != nil {
		t.Fatal(err)
	}
	CleanupGens(OS{}, root, gen2)
	if _, err := os.Stat(filepath.Join(root, gen)); !os.IsNotExist(err) {
		t.Error("stale generation survived cleanup")
	}
	if _, err := os.Stat(filepath.Join(root, gen2)); err != nil {
		t.Errorf("live generation removed: %v", err)
	}
}

func TestCurrentGenRejectsEscapes(t *testing.T) {
	root := t.TempDir()
	if err := WriteFile(OS{}, filepath.Join(root, CurrentFile), []byte("../evil")); err != nil {
		t.Fatal(err)
	}
	if _, err := CurrentGen(OS{}, root); err == nil {
		t.Fatal("path-escaping CURRENT accepted")
	}
}

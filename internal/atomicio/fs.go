package atomicio

import (
	"io"
	"io/fs"
	"os"
)

// File is the writable handle an FS hands out: the minimal surface the
// atomic-commit protocol needs (write, fsync, close).
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations of every GEA save and load path.
// Production code uses OS; the fault-injection harness (package iofault)
// wraps one to script failures at exact operation counts.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	Create(name string) (File, error)
	Open(name string) (io.ReadCloser, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	RemoveAll(path string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	// SyncDir fsyncs a directory so a preceding rename survives power loss.
	SyncDir(name string) error
}

// OS is the production FS backed by package os.
type OS struct{}

func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) Create(name string) (File, error) { return os.Create(name) }

func (OS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (OS) Remove(name string) error { return os.Remove(name) }

func (OS) RemoveAll(path string) error { return os.RemoveAll(path) }

func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (OS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	// Some filesystems refuse fsync on directories; that only weakens
	// durability timing, not atomicity, so it is not an error.
	_ = d.Sync()
	return d.Close()
}

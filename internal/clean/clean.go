// Package clean implements the pre-processing and data-cleaning pipeline of
// thesis Section 4.2. SAGE libraries carry sequencing errors — an estimated
// 10% of each library's total tag count — that inflate dimensionality and
// add noise. The pipeline:
//
//  1. takes the union of all tags across the libraries;
//  2. removes every tag whose expression level is at or below a minimum
//     tolerance (1 in the thesis) in *all* libraries — a tag legitimately at
//     1 in one library is kept if any library expresses it more strongly;
//  3. normalizes every library to the same total tag count (300,000, the
//     estimated number of mRNAs per cell), leaving absent genes at zero.
//
// On the real corpus step 2 reduced ~350,000 unique tags to ~60,000 and
// removed 5-15% of each library's total count.
package clean

import (
	"fmt"
	"sort"

	"gea/internal/sage"
)

// NormalTotal is the common total every library is scaled to: the estimated
// 300,000 mRNAs per cell.
const NormalTotal = 300000

// Options configures the pipeline.
type Options struct {
	// MinTolerance: a tag is removed when its count is <= MinTolerance in
	// every library. The thesis default is 1.
	MinTolerance float64
	// ScaleTo is the common total to normalize to; 0 means NormalTotal.
	// Negative disables normalization.
	ScaleTo float64
}

// DefaultOptions returns the thesis's settings.
func DefaultOptions() Options {
	return Options{MinTolerance: 1, ScaleTo: NormalTotal}
}

// LibraryReport records what cleaning did to one library.
type LibraryReport struct {
	Name            string
	TotalBefore     float64
	TotalAfter      float64 // before normalization
	UniqueBefore    int
	UniqueAfter     int
	RemovedFraction float64 // fraction of total count removed
	ScaleFactor     float64 // normalization factor applied (1 if disabled)
}

// Report summarizes a cleaning run — the numbers Section 4.2 quotes.
type Report struct {
	UniqueTagsBefore int
	UniqueTagsAfter  int
	Libraries        []LibraryReport
}

// RemovedTagFraction returns the fraction of unique tags removed corpus-wide.
func (r *Report) RemovedTagFraction() float64 {
	if r.UniqueTagsBefore == 0 {
		return 0
	}
	return 1 - float64(r.UniqueTagsAfter)/float64(r.UniqueTagsBefore)
}

// Clean runs the pipeline on a copy of the corpus and returns the cleaned
// corpus plus the report. The input corpus is not modified.
func Clean(c *sage.Corpus, opts Options) (*sage.Corpus, *Report, error) {
	if opts.MinTolerance < 0 {
		return nil, nil, fmt.Errorf("clean: negative MinTolerance %v", opts.MinTolerance)
	}
	if len(c.Libraries) == 0 {
		return nil, nil, fmt.Errorf("clean: empty corpus")
	}
	scaleTo := opts.ScaleTo
	if scaleTo == 0 {
		scaleTo = NormalTotal
	}

	// Pass 1: per-tag maximum across libraries.
	maxCount := make(map[sage.TagID]float64)
	for _, l := range c.Libraries {
		for t, cnt := range l.Counts {
			if cnt > maxCount[t] {
				maxCount[t] = cnt
			}
		}
	}
	keep := make(map[sage.TagID]bool, len(maxCount))
	for t, m := range maxCount {
		if m > opts.MinTolerance {
			keep[t] = true
		}
	}

	rep := &Report{
		UniqueTagsBefore: len(maxCount),
		UniqueTagsAfter:  len(keep),
	}

	// Pass 2: rebuild libraries with surviving tags, then normalize.
	out := &sage.Corpus{}
	for _, l := range c.Libraries {
		nl := sage.NewLibrary(l.Meta)
		before := l.Total()
		for t, cnt := range l.Counts {
			if keep[t] {
				nl.Counts[t] = cnt
			}
		}
		after := nl.Total()
		lr := LibraryReport{
			Name:         l.Meta.Name,
			TotalBefore:  before,
			TotalAfter:   after,
			UniqueBefore: l.Unique(),
			UniqueAfter:  nl.Unique(),
			ScaleFactor:  1,
		}
		if before > 0 {
			lr.RemovedFraction = 1 - after/before
		}
		if scaleTo > 0 && after > 0 {
			lr.ScaleFactor = scaleTo / after
			nl.Scale(lr.ScaleFactor)
		}
		nl.RefreshMeta()
		rep.Libraries = append(rep.Libraries, lr)
		out.Libraries = append(out.Libraries, nl)
	}
	return out, rep, nil
}

// SingletonFraction reports, for diagnostic display, the fraction of a
// corpus's unique tags whose count is exactly 1 in every library — the error
// candidates ("more than 80% of the unique tags have a frequency of 1").
func SingletonFraction(c *sage.Corpus) float64 {
	maxCount := make(map[sage.TagID]float64)
	for _, l := range c.Libraries {
		for t, cnt := range l.Counts {
			if cnt > maxCount[t] {
				maxCount[t] = cnt
			}
		}
	}
	if len(maxCount) == 0 {
		return 0
	}
	singles := 0
	for _, m := range maxCount {
		if m <= 1 {
			singles++
		}
	}
	return float64(singles) / float64(len(maxCount))
}

// ToleranceVector builds the fascicle tolerance vector ("metadata") of
// Section 4.3.1.2: for each tag, percent/100 of the width of the tag's value
// range across the dataset. A percent of 10 reproduces the case studies.
func ToleranceVector(d *sage.Dataset, percent float64) (map[sage.TagID]float64, error) {
	if percent < 0 || percent > 100 {
		return nil, fmt.Errorf("clean: tolerance percent %v out of [0, 100]", percent)
	}
	tol := make(map[sage.TagID]float64, len(d.Tags))
	for j, t := range d.Tags {
		lo, hi := d.Expr[0][j], d.Expr[0][j]
		for i := 1; i < len(d.Expr); i++ {
			v := d.Expr[i][j]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		tol[t] = (hi - lo) * percent / 100
	}
	return tol, nil
}

// TopVariableTags returns the n tags with the widest value ranges, for
// quick inspection of what drives the clustering. Ties break by tag order.
func TopVariableTags(d *sage.Dataset, n int) []sage.TagID {
	type tw struct {
		tag   sage.TagID
		width float64
	}
	tws := make([]tw, len(d.Tags))
	for j, t := range d.Tags {
		lo, hi := d.Expr[0][j], d.Expr[0][j]
		for i := 1; i < len(d.Expr); i++ {
			v := d.Expr[i][j]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		tws[j] = tw{tag: t, width: hi - lo}
	}
	sort.SliceStable(tws, func(a, b int) bool { return tws[a].width > tws[b].width })
	if n > len(tws) {
		n = len(tws)
	}
	out := make([]sage.TagID, n)
	for i := 0; i < n; i++ {
		out[i] = tws[i].tag
	}
	return out
}

package clean

import (
	"math"
	"testing"

	"gea/internal/sage"
	"gea/internal/sagegen"
)

func mkLib(name, tissue string, counts map[string]float64) *sage.Library {
	l := sage.NewLibrary(sage.LibraryMeta{Name: name, Tissue: tissue})
	for s, v := range counts {
		l.Add(sage.MustParseTag(s), v)
	}
	l.RefreshMeta()
	return l
}

func TestCleanRemovesUbiquitousSingletons(t *testing.T) {
	c := &sage.Corpus{Libraries: []*sage.Library{
		mkLib("L1", "brain", map[string]float64{
			"AAAAAAAAAA": 100, // kept: abundant
			"CCCCCCCCCC": 1,   // removed: <=1 everywhere
			"GGGGGGGGGG": 1,   // kept: 1 here but 5 in L2
		}),
		mkLib("L2", "brain", map[string]float64{
			"AAAAAAAAAA": 80,
			"CCCCCCCCCC": 1,
			"GGGGGGGGGG": 5,
		}),
	}}
	out, rep, err := Clean(c, Options{MinTolerance: 1, ScaleTo: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UniqueTagsBefore != 3 || rep.UniqueTagsAfter != 2 {
		t.Errorf("unique tags %d -> %d, want 3 -> 2", rep.UniqueTagsBefore, rep.UniqueTagsAfter)
	}
	l1 := out.Libraries[0]
	if l1.Count(sage.MustParseTag("CCCCCCCCCC")) != 0 {
		t.Error("ubiquitous singleton survived")
	}
	if l1.Count(sage.MustParseTag("GGGGGGGGGG")) != 1 {
		t.Error("legitimately low tag was removed")
	}
	// Input corpus untouched.
	if c.Libraries[0].Count(sage.MustParseTag("CCCCCCCCCC")) != 1 {
		t.Error("Clean mutated its input")
	}
}

func TestCleanNormalization(t *testing.T) {
	c := &sage.Corpus{Libraries: []*sage.Library{
		mkLib("L1", "brain", map[string]float64{"AAAAAAAAAA": 30, "CCCCCCCCCC": 70}),
		mkLib("L2", "brain", map[string]float64{"AAAAAAAAAA": 10}),
	}}
	out, rep, err := Clean(c, Options{MinTolerance: 0, ScaleTo: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range out.Libraries {
		if got := l.Total(); math.Abs(got-1000) > 1e-9 {
			t.Errorf("library %d total = %v, want 1000", i, got)
		}
	}
	// Relative abundances preserved.
	if got := out.Libraries[0].Count(sage.MustParseTag("AAAAAAAAAA")); math.Abs(got-300) > 1e-9 {
		t.Errorf("scaled count = %v, want 300", got)
	}
	if rep.Libraries[0].ScaleFactor != 10 {
		t.Errorf("scale factor = %v, want 10", rep.Libraries[0].ScaleFactor)
	}
	// MinTolerance 0 removes nothing with positive counts.
	if rep.UniqueTagsAfter != rep.UniqueTagsBefore {
		t.Error("MinTolerance 0 removed tags")
	}
}

func TestCleanDefaultsAndErrors(t *testing.T) {
	opts := DefaultOptions()
	if opts.MinTolerance != 1 || opts.ScaleTo != NormalTotal {
		t.Errorf("DefaultOptions = %+v", opts)
	}
	if _, _, err := Clean(&sage.Corpus{}, opts); err == nil {
		t.Error("Clean(empty): expected error")
	}
	c := &sage.Corpus{Libraries: []*sage.Library{mkLib("L", "t", map[string]float64{"AAAAAAAAAA": 2})}}
	if _, _, err := Clean(c, Options{MinTolerance: -1}); err == nil {
		t.Error("Clean(negative tolerance): expected error")
	}
	// ScaleTo 0 means the thesis default of 300,000.
	out, _, err := Clean(c, Options{MinTolerance: 1, ScaleTo: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Libraries[0].Total(); math.Abs(got-NormalTotal) > 1e-6 {
		t.Errorf("default scale total = %v", got)
	}
}

// TestCleaningStatistics reproduces the Section 4.2 shape on synthetic data:
// the tag union shrinks drastically (350k -> 60k in the paper), most removed
// tags are error singletons, and each library loses a modest share (5-15%)
// of its total count.
func TestCleaningStatistics(t *testing.T) {
	res, err := sagegen.Generate(sagegen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sf := SingletonFraction(res.Corpus); sf < 0.5 {
		t.Errorf("singleton fraction %.2f; expected a majority of raw tags to be singletons", sf)
	}
	out, rep, err := Clean(res.Corpus, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.RemovedTagFraction() < 0.5 {
		t.Errorf("cleaning removed only %.1f%% of unique tags; the paper removes ~83%%",
			100*rep.RemovedTagFraction())
	}
	for _, lr := range rep.Libraries {
		if lr.RemovedFraction < 0.01 || lr.RemovedFraction > 0.25 {
			t.Errorf("%s: removed %.1f%% of total count, outside the plausible band",
				lr.Name, 100*lr.RemovedFraction)
		}
	}
	// Real genes overwhelmingly survive.
	survivors := map[sage.TagID]bool{}
	for _, tag := range out.Libraries[0].Tags() {
		survivors[tag] = true
	}
	for _, l := range out.Libraries {
		total := l.Total()
		if math.Abs(total-NormalTotal) > 1e-6 {
			t.Errorf("%s: normalized total %v", l.Meta.Name, total)
		}
	}
}

func TestSingletonFractionEmpty(t *testing.T) {
	if got := SingletonFraction(&sage.Corpus{}); got != 0 {
		t.Errorf("SingletonFraction(empty) = %v", got)
	}
}

func TestToleranceVector(t *testing.T) {
	c := &sage.Corpus{Libraries: []*sage.Library{
		mkLib("L1", "brain", map[string]float64{"AAAAAAAAAA": 0, "CCCCCCCCCC": 100}),
		mkLib("L2", "brain", map[string]float64{"AAAAAAAAAA": 200, "CCCCCCCCCC": 100}),
	}}
	ds := sage.Build(c)
	tol, err := ToleranceVector(ds, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := tol[sage.MustParseTag("AAAAAAAAAA")]; got != 20 {
		t.Errorf("tolerance = %v, want 20 (10%% of width 200)", got)
	}
	if got := tol[sage.MustParseTag("CCCCCCCCCC")]; got != 0 {
		t.Errorf("constant tag tolerance = %v, want 0", got)
	}
	if _, err := ToleranceVector(ds, -1); err == nil {
		t.Error("negative percent: expected error")
	}
	if _, err := ToleranceVector(ds, 101); err == nil {
		t.Error("percent > 100: expected error")
	}
}

func TestTopVariableTags(t *testing.T) {
	c := &sage.Corpus{Libraries: []*sage.Library{
		mkLib("L1", "brain", map[string]float64{"AAAAAAAAAA": 0, "CCCCCCCCCC": 5, "GGGGGGGGGG": 50}),
		mkLib("L2", "brain", map[string]float64{"AAAAAAAAAA": 100, "CCCCCCCCCC": 5, "GGGGGGGGGG": 60}),
	}}
	ds := sage.Build(c)
	top := TopVariableTags(ds, 2)
	if len(top) != 2 {
		t.Fatalf("got %d tags", len(top))
	}
	if top[0] != sage.MustParseTag("AAAAAAAAAA") { // width 100
		t.Errorf("top[0] = %v", top[0])
	}
	if top[1] != sage.MustParseTag("GGGGGGGGGG") { // width 10
		t.Errorf("top[1] = %v", top[1])
	}
	if got := TopVariableTags(ds, 99); len(got) != 3 {
		t.Errorf("n beyond tag count: %d", len(got))
	}
}

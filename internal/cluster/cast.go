package cluster

import (
	"context"
	"fmt"

	"gea/internal/exec"
	"gea/internal/exec/shard"
)

// CASTConfig configures the Cluster Affinity Search Technique of Ben-Dor,
// Shamir and Yakhini [DSY99] (thesis Section 2.3.2) — the baseline the
// thesis highlights for determining cluster boundaries "without human
// intervention": the number of clusters is an output, not a parameter.
type CASTConfig struct {
	// T is the affinity threshold in [0, 1]: a point belongs to the open
	// cluster while its average affinity to the cluster is at least T.
	T float64
	// Affinity measures similarity in [0, 1]; nil means the correlation
	// affinity (1 + Pearson)/2.
	Affinity func(a, b []float64) float64
	// MaxIters bounds the add/remove stabilization loop per cluster
	// (default 100).
	MaxIters int
}

// CorrelationAffinity maps Pearson correlation to [0, 1].
func CorrelationAffinity(a, b []float64) float64 {
	d := CorrelationDistance(a, b) // 1 - r, in [0, 2]
	return 1 - d/2
}

// CAST clusters the rows and returns per-row labels 0..k-1; k is determined
// by the algorithm. The classic formulation alternates adding the
// highest-affinity outside element and removing the lowest-affinity inside
// element until the open cluster stabilizes, then closes it and starts the
// next with the unassigned elements.
func CAST(rows [][]float64, cfg CASTConfig) ([]int, error) {
	labels, _, err := CASTWith(exec.Background(), rows, cfg)
	return labels, err
}

// CASTCtx is CAST under execution governance: cancellation is observed
// per affinity pair and per stabilization iteration, a budget stop
// returns the labels assigned so far (unassigned rows stay -1, result
// flagged partial), and panics are recovered into a structured
// *exec.ExecError.
func CASTCtx(ctx context.Context, rows [][]float64, cfg CASTConfig, lim exec.Limits) ([]int, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var labels []int
	var partial bool
	err := exec.Guard("cluster.CAST", "", func() error {
		var err error
		labels, partial, err = CASTWith(c, rows, cfg)
		return err
	})
	if err != nil {
		labels = nil
	}
	return labels, c.Snapshot(partial), err
}

// CASTWith is the metered implementation; one work unit is one affinity
// pair computed or one add/remove stabilization iteration.
func CASTWith(c *exec.Ctl, rows [][]float64, cfg CASTConfig) (_ []int, partial bool, err error) {
	sp := c.StartSpan("cluster.CAST")
	sp.SetInput("%d rows, T=%v", len(rows), cfg.T)
	defer c.EndSpan(sp, &partial, &err)
	n := len(rows)
	if _, err := validateRows("CAST", rows); err != nil {
		return nil, false, err
	}
	if cfg.T < 0 || cfg.T > 1 || badNumber(cfg.T) {
		return nil, false, &ParamError{Op: "CAST", Param: "T",
			Msg: fmt.Sprintf("threshold %v out of [0, 1]", cfg.T)}
	}
	aff := cfg.Affinity
	if aff == nil {
		aff = CorrelationAffinity
	}
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = 100
	}

	// Precompute the affinity matrix.
	am := make([][]float64, n)
	//lint:gea ctlcharge -- matrix allocation; every affinity pair is charged in the computation loop below
	for i := range am {
		am[i] = make([]float64, n)
		am[i][i] = 1
	}
	// The affinity pairs are independent, so the matrix fills through
	// the shard substrate over a flattened pair index; each pair writes
	// only its own two mirrored cells. The affinity function must be a
	// pure function of its two vectors.
	pi, pj := trianglePairs(n)
	_, affPartial, err := shard.For(c, len(pi), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		for p := lo; p < hi; p++ {
			if err := c.Point(1); err != nil {
				return p - lo, err
			}
			i, j := pi[p], pj[p]
			a := aff(rows[i], rows[j])
			am[i][j] = a
			am[j][i] = a
		}
		return hi - lo, nil
	})
	if err != nil {
		return nil, false, err
	}
	if affPartial {
		// No labels can be assigned from a half-computed matrix.
		all := make([]int, n)
		//lint:gea ctlcharge -- constant fill of the flagged partial result after the budget already stopped the run
		for i := range all {
			all[i] = -1
		}
		return all, true, nil
	}

	labels := make([]int, n)
	//lint:gea ctlcharge -- label initialization; stabilization iterations are metered below
	for i := range labels {
		labels[i] = -1
	}
	unassigned := n
	cluster := 0
	for unassigned > 0 {
		if err := c.Point(1); err != nil {
			if exec.IsBudget(err) {
				return labels, true, nil
			}
			return nil, false, err
		}
		// Open a cluster with the unassigned element of maximum total
		// affinity to the other unassigned elements.
		seed, best := -1, -1.0
		for i := 0; i < n; i++ {
			if labels[i] != -1 {
				continue
			}
			var sum float64
			for j := 0; j < n; j++ {
				if labels[j] == -1 && j != i {
					sum += am[i][j]
				}
			}
			if sum > best {
				best = sum
				seed = i
			}
		}
		open := map[int]bool{seed: true}
		// a[i] = total affinity of i to the open cluster.
		a := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = am[i][seed]
		}

		for iter := 0; iter < maxIters; iter++ {
			if err := c.Point(1); err != nil {
				if exec.IsBudget(err) {
					// The open cluster is abandoned; committed labels stand.
					return labels, true, nil
				}
				return nil, false, err
			}
			changed := false
			// ADD: the unassigned outside element with maximum affinity, if
			// it meets the threshold.
			addIdx, addAff := -1, -1.0
			for i := 0; i < n; i++ {
				if labels[i] != -1 || open[i] {
					continue
				}
				if avg := a[i] / float64(len(open)); avg >= cfg.T && avg > addAff {
					addAff = avg
					addIdx = i
				}
			}
			if addIdx >= 0 {
				open[addIdx] = true
				for i := 0; i < n; i++ {
					a[i] += am[i][addIdx]
				}
				changed = true
			}
			// REMOVE: the inside element with minimum affinity, if it falls
			// below the threshold (never empty the cluster).
			if len(open) > 1 {
				rmIdx, rmAff := -1, 2.0
				for i := range open {
					avg := (a[i] - am[i][i]) / float64(len(open)-1)
					if avg < cfg.T && avg < rmAff {
						rmAff = avg
						rmIdx = i
					}
				}
				if rmIdx >= 0 {
					delete(open, rmIdx)
					for i := 0; i < n; i++ {
						a[i] -= am[i][rmIdx]
					}
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		for i := range open {
			labels[i] = cluster
			unassigned--
		}
		cluster++
	}
	return labels, false, nil
}

// NumClusters returns the number of distinct non-negative labels.
func NumClusters(labels []int) int {
	seen := map[int]bool{}
	for _, l := range labels {
		if l >= 0 {
			seen[l] = true
		}
	}
	return len(seen)
}

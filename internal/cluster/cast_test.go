package cluster

import (
	"math/rand"
	"testing"
)

func TestCASTSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	// Correlated shapes: group 1 rising, group 2 falling.
	rows := make([][]float64, 10)
	for i := range rows {
		r := make([]float64, 8)
		for j := range r {
			base := float64(j)
			if i >= 5 {
				base = float64(len(r) - j)
			}
			r[j] = base + 0.05*rng.NormFloat64()
		}
		rows[i] = r
	}
	labels, err := CAST(rows, CASTConfig{T: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if NumClusters(labels) != 2 {
		t.Fatalf("CAST found %d clusters, want 2: %v", NumClusters(labels), labels)
	}
	together, apart := sameGroupLabels(labels)
	if !together || !apart {
		t.Errorf("CAST labels %v do not separate the shape groups", labels)
	}
}

func TestCASTDeterminesClusterCount(t *testing.T) {
	// Three distinct shapes; CAST must discover k=3 without being told.
	rng := rand.New(rand.NewSource(22))
	shapes := [][]float64{
		{1, 2, 3, 4, 5, 6},
		{6, 5, 4, 3, 2, 1},
		{1, 6, 1, 6, 1, 6},
	}
	var rows [][]float64
	for s := range shapes {
		for k := 0; k < 4; k++ {
			r := make([]float64, len(shapes[s]))
			for j := range r {
				r[j] = shapes[s][j] + 0.05*rng.NormFloat64()
			}
			rows = append(rows, r)
		}
	}
	labels, err := CAST(rows, CASTConfig{T: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if NumClusters(labels) != 3 {
		t.Errorf("CAST found %d clusters, want 3: %v", NumClusters(labels), labels)
	}
	// Members of each shape share a label.
	for s := 0; s < 3; s++ {
		for k := 1; k < 4; k++ {
			if labels[4*s+k] != labels[4*s] {
				t.Errorf("shape %d split: %v", s, labels)
			}
		}
	}
}

func TestCASTThresholdExtremes(t *testing.T) {
	rows := [][]float64{{1, 2, 3}, {2, 4, 6}, {3, 2, 1}}
	// T=0: everything joins one cluster.
	labels, err := CAST(rows, CASTConfig{T: 0})
	if err != nil {
		t.Fatal(err)
	}
	if NumClusters(labels) != 1 {
		t.Errorf("T=0 clusters = %d, want 1", NumClusters(labels))
	}
	// T=1: only perfectly-affine points merge; anticorrelated point splits.
	labels, err = CAST(rows, CASTConfig{T: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != labels[1] {
		t.Errorf("parallel rows split at high T: %v", labels)
	}
	if labels[2] == labels[0] {
		t.Errorf("anticorrelated row merged at high T: %v", labels)
	}
}

func TestCASTErrors(t *testing.T) {
	if _, err := CAST(nil, CASTConfig{T: 0.5}); err == nil {
		t.Error("empty rows: expected error")
	}
	if _, err := CAST([][]float64{{1}}, CASTConfig{T: -0.1}); err == nil {
		t.Error("negative T: expected error")
	}
	if _, err := CAST([][]float64{{1}}, CASTConfig{T: 1.1}); err == nil {
		t.Error("T > 1: expected error")
	}
}

func TestCASTAllAssigned(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rows := make([][]float64, 17)
	for i := range rows {
		r := make([]float64, 5)
		for j := range r {
			r[j] = rng.Float64() * 10
		}
		rows[i] = r
	}
	labels, err := CAST(rows, CASTConfig{T: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range labels {
		if l < 0 {
			t.Errorf("row %d unassigned", i)
		}
	}
}

func TestCorrelationAffinityRange(t *testing.T) {
	a := []float64{1, 2, 3}
	if got := CorrelationAffinity(a, a); got != 1 {
		t.Errorf("self affinity = %v, want 1", got)
	}
	b := []float64{3, 2, 1}
	if got := CorrelationAffinity(a, b); got > 1e-9 {
		t.Errorf("anticorrelated affinity = %v, want 0", got)
	}
}

func TestNumClusters(t *testing.T) {
	if NumClusters([]int{0, 1, 1, 2, -1}) != 3 {
		t.Error("NumClusters wrong")
	}
	if NumClusters(nil) != 0 {
		t.Error("NumClusters(nil) wrong")
	}
}

package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// twoBlobs returns two well-separated groups of points: rows 0..4 near the
// origin and rows 5..9 near (100, 100, ...).
func twoBlobs(rng *rand.Rand, dim int) [][]float64 {
	rows := make([][]float64, 10)
	for i := range rows {
		base := 0.0
		if i >= 5 {
			base = 100
		}
		r := make([]float64, dim)
		for j := range r {
			r[j] = base + rng.NormFloat64()
		}
		rows[i] = r
	}
	return rows
}

func sameGroupLabels(labels []int) (bool, bool) {
	firstOK := true
	for i := 1; i < 5; i++ {
		if labels[i] != labels[0] {
			firstOK = false
		}
	}
	secondOK := true
	for i := 6; i < 10; i++ {
		if labels[i] != labels[5] {
			secondOK = false
		}
	}
	return firstOK && secondOK, labels[0] != labels[5]
}

func TestHierarchicalSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := twoBlobs(rng, 6)
	for _, linkage := range []Linkage{AverageLinkage, SingleLinkage, CompleteLinkage} {
		dg, err := Hierarchical(rows, EuclideanDistance, linkage)
		if err != nil {
			t.Fatal(err)
		}
		if len(dg.Merges) != 9 {
			t.Fatalf("%v: %d merges, want 9", linkage, len(dg.Merges))
		}
		labels, err := dg.Cut(2)
		if err != nil {
			t.Fatal(err)
		}
		together, apart := sameGroupLabels(labels)
		if !together || !apart {
			t.Errorf("%v linkage: labels %v do not separate the blobs", linkage, labels)
		}
	}
}

func TestHierarchicalHeightsMonotoneForSingleLinkage(t *testing.T) {
	// Single-linkage merge heights are provably non-decreasing.
	rng := rand.New(rand.NewSource(2))
	rows := make([][]float64, 15)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	dg, err := Hierarchical(rows, EuclideanDistance, SingleLinkage)
	if err != nil {
		t.Fatal(err)
	}
	h := dg.Heights()
	for i := 1; i < len(h); i++ {
		if h[i] < h[i-1]-1e-12 {
			t.Fatalf("single-linkage heights not monotone: %v", h)
		}
	}
}

func TestHierarchicalEdgeCases(t *testing.T) {
	if _, err := Hierarchical(nil, EuclideanDistance, AverageLinkage); err == nil {
		t.Error("empty rows: expected error")
	}
	dg, err := Hierarchical([][]float64{{1, 2}}, EuclideanDistance, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if dg.N != 1 || len(dg.Merges) != 0 {
		t.Errorf("single row dendrogram = %+v", dg)
	}
	if got := dg.Leaves(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Leaves(single) = %v", got)
	}
}

func TestCut(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := twoBlobs(rng, 3)
	dg, err := Hierarchical(rows, EuclideanDistance, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	// k = n gives all-singleton labels.
	labels, err := dg.Cut(10)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range labels {
		if seen[l] {
			t.Fatalf("Cut(n) labels not unique: %v", labels)
		}
		seen[l] = true
	}
	// k = 1 gives one cluster.
	labels, err = dg.Cut(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range labels {
		if l != 0 {
			t.Fatalf("Cut(1) labels = %v", labels)
		}
	}
	if _, err := dg.Cut(0); err == nil {
		t.Error("Cut(0): expected error")
	}
	if _, err := dg.Cut(11); err == nil {
		t.Error("Cut(n+1): expected error")
	}
}

func TestLeavesIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows := twoBlobs(rng, 4)
	dg, err := Hierarchical(rows, CorrelationDistance, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	leaves := dg.Leaves()
	if len(leaves) != 10 {
		t.Fatalf("Leaves = %v", leaves)
	}
	seen := map[int]bool{}
	for _, l := range leaves {
		if l < 0 || l >= 10 || seen[l] {
			t.Fatalf("Leaves not a permutation: %v", leaves)
		}
		seen[l] = true
	}
}

func TestLinkageString(t *testing.T) {
	if AverageLinkage.String() != "average" || Linkage(9).String() != "Linkage(9)" {
		t.Error("Linkage strings wrong")
	}
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := twoBlobs(rng, 5)
	res, err := KMeans(rows, 2, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	together, apart := sameGroupLabels(res.Labels)
	if !together || !apart {
		t.Errorf("k-means labels %v do not separate the blobs", res.Labels)
	}
	if res.Inertia <= 0 {
		t.Errorf("inertia = %v", res.Inertia)
	}
	if res.Iters < 1 {
		t.Errorf("iters = %d", res.Iters)
	}
	// Centroids near 0 and 100.
	c0 := res.Centroids[res.Labels[0]][0]
	c1 := res.Centroids[res.Labels[5]][0]
	if math.Abs(c0) > 5 || math.Abs(c1-100) > 5 {
		t.Errorf("centroids = %v, %v", c0, c1)
	}
}

func TestKMeansErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := KMeans(nil, 2, rng, 0); err == nil {
		t.Error("empty rows: expected error")
	}
	rows := [][]float64{{1}, {2}}
	if _, err := KMeans(rows, 0, rng, 0); err == nil {
		t.Error("k=0: expected error")
	}
	if _, err := KMeans(rows, 3, rng, 0); err == nil {
		t.Error("k>n: expected error")
	}
	if _, err := KMeans([][]float64{{1}, {2, 3}}, 1, rng, 0); err == nil {
		t.Error("ragged rows: expected error")
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := [][]float64{{0}, {10}, {20}}
	res, err := KMeans(rows, 3, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Errorf("k=n inertia = %v, want 0", res.Inertia)
	}
}

func TestKMeansDuplicatePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rows := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	res, err := KMeans(rows, 2, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Errorf("duplicate-point inertia = %v", res.Inertia)
	}
}

func TestSOMSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rows := twoBlobs(rng, 4)
	res, err := SOM(rows, SOMConfig{GridW: 2, GridH: 1, Epochs: 100}, rng)
	if err != nil {
		t.Fatal(err)
	}
	together, apart := sameGroupLabels(res.Labels)
	if !together || !apart {
		t.Errorf("SOM labels %v do not separate the blobs (the Golub ALL/AML setup)", res.Labels)
	}
	if len(res.Weights) != 2 {
		t.Errorf("weights = %d units", len(res.Weights))
	}
}

func TestSOMErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	if _, err := SOM(nil, SOMConfig{GridW: 1, GridH: 1}, rng); err == nil {
		t.Error("empty rows: expected error")
	}
	rows := [][]float64{{1}, {2}}
	if _, err := SOM(rows, SOMConfig{GridW: 0, GridH: 1}, rng); err == nil {
		t.Error("bad grid: expected error")
	}
	if _, err := SOM([][]float64{{1}, {2, 3}}, SOMConfig{GridW: 1, GridH: 1}, rng); err == nil {
		t.Error("ragged rows: expected error")
	}
}

func TestOPTICSOrderingCoversAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows := twoBlobs(rng, 4)
	order, err := OPTICS(rows, OPTICSConfig{Eps: math.Inf(1), MinPts: 3, Dist: EuclideanDistance})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(rows) {
		t.Fatalf("ordering has %d points, want %d", len(order), len(rows))
	}
	seen := map[int]bool{}
	for _, p := range order {
		if seen[p.Index] {
			t.Fatalf("point %d appears twice", p.Index)
		}
		seen[p.Index] = true
	}
	if !math.IsInf(order[0].Reachability, 1) {
		t.Error("first point must have infinite reachability")
	}
}

func TestOPTICSSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rows := twoBlobs(rng, 4)
	order, err := OPTICS(rows, OPTICSConfig{Eps: math.Inf(1), MinPts: 3, Dist: EuclideanDistance})
	if err != nil {
		t.Fatal(err)
	}
	labels := ExtractDBSCAN(order, 10)
	together, apart := sameGroupLabels(labels)
	if !together || !apart {
		t.Errorf("OPTICS labels %v do not separate the blobs", labels)
	}
	// There should be exactly one big reachability jump (between the blobs).
	jumps := 0
	for _, p := range order[1:] {
		if p.Reachability > 10 {
			jumps++
		}
	}
	if jumps != 1 {
		t.Errorf("reachability plot has %d jumps > 10, want 1", jumps)
	}
}

func TestOPTICSDefaultDistanceIsCorrelation(t *testing.T) {
	// Two rows with identical shape but different scale have correlation
	// distance 0, so with the default distance they are one dense cluster.
	rows := [][]float64{
		{1, 2, 3, 4},
		{10, 20, 30, 40},
		{2, 4, 6, 8},
	}
	order, err := OPTICS(rows, OPTICSConfig{Eps: math.Inf(1), MinPts: 2})
	if err != nil {
		t.Fatal(err)
	}
	labels := ExtractDBSCAN(order, 0.1)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("correlated rows not clustered together: %v", labels)
	}
}

func TestOPTICSErrors(t *testing.T) {
	rows := [][]float64{{1}, {2}}
	if _, err := OPTICS(nil, OPTICSConfig{Eps: 1, MinPts: 1}); err == nil {
		t.Error("empty rows: expected error")
	}
	if _, err := OPTICS(rows, OPTICSConfig{Eps: 1, MinPts: 0}); err == nil {
		t.Error("MinPts=0: expected error")
	}
	if _, err := OPTICS(rows, OPTICSConfig{Eps: 0, MinPts: 1}); err == nil {
		t.Error("Eps=0: expected error")
	}
}

func TestOPTICSNoisePoint(t *testing.T) {
	// One far-away point with restrictive eps becomes noise.
	rows := [][]float64{{0}, {1}, {2}, {1000}}
	order, err := OPTICS(rows, OPTICSConfig{Eps: 5, MinPts: 2, Dist: EuclideanDistance})
	if err != nil {
		t.Fatal(err)
	}
	labels := ExtractDBSCAN(order, 5)
	if labels[3] != -1 {
		t.Errorf("outlier label = %d, want -1 (noise)", labels[3])
	}
	if labels[0] == -1 || labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("dense cluster labels = %v", labels)
	}
}

func TestDistanceFuncs(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if d := EuclideanDistance(a, b); d != 5 {
		t.Errorf("Euclidean = %v", d)
	}
	x := []float64{1, 2, 3}
	y := []float64{2, 4, 6}
	if d := CorrelationDistance(x, y); math.Abs(d) > 1e-12 {
		t.Errorf("CorrelationDistance(parallel) = %v", d)
	}
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"gea/internal/exec"
	"gea/internal/exec/execwalk"
)

// walkRows builds a small deterministic dataset; each Run closure must
// reconstruct its rand source so every walk replay is identical.
func walkRows() [][]float64 {
	rng := rand.New(rand.NewSource(7))
	return twoBlobs(rng, 4)
}

func TestHierarchicalCheckpointWalk(t *testing.T) {
	rows := walkRows()
	execwalk.Walk(t, execwalk.Target{
		Name: "Hierarchical",
		Run: func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := HierarchicalCtx(ctx, rows, EuclideanDistance, AverageLinkage, lim)
			return tr, err
		},
		MaxUnitStep: 1,
	})
}

func TestKMeansCheckpointWalk(t *testing.T) {
	rows := walkRows()
	execwalk.Walk(t, execwalk.Target{
		Name: "KMeans",
		Run: func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := KMeansCtx(ctx, rows, 2, rand.New(rand.NewSource(3)), 20, lim)
			return tr, err
		},
		MaxUnitStep: 1,
	})
}

func TestSOMCheckpointWalk(t *testing.T) {
	rows := walkRows()
	cfg := SOMConfig{GridW: 2, GridH: 1, Epochs: 5}
	execwalk.Walk(t, execwalk.Target{
		Name: "SOM",
		Run: func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := SOMCtx(ctx, rows, cfg, rand.New(rand.NewSource(3)), lim)
			return tr, err
		},
		MaxUnitStep: 1,
	})
}

func TestOPTICSCheckpointWalk(t *testing.T) {
	rows := walkRows()
	cfg := OPTICSConfig{Eps: math.Inf(1), MinPts: 2, Dist: EuclideanDistance}
	execwalk.Walk(t, execwalk.Target{
		Name: "OPTICS",
		Run: func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := OPTICSCtx(ctx, rows, cfg, lim)
			return tr, err
		},
		MaxUnitStep: 1,
	})
}

func TestCASTCheckpointWalk(t *testing.T) {
	rows := walkRows()
	cfg := CASTConfig{T: 0.5}
	execwalk.Walk(t, execwalk.Target{
		Name: "CAST",
		Run: func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := CASTCtx(ctx, rows, cfg, lim)
			return tr, err
		},
		MaxUnitStep: 1,
	})
}

// TestClusterParamErrors covers the typed up-front validation: the
// nonsensical k/eps/grid/threshold values — including the NaNs that used
// to sail through range comparisons — are rejected before any loop runs.
func TestClusterParamErrors(t *testing.T) {
	rows := walkRows()
	rng := rand.New(rand.NewSource(1))
	nan := math.NaN()
	cases := map[string]func() error{
		"kmeans k=0": func() error {
			_, err := KMeans(rows, 0, rng, 10)
			return err
		},
		"kmeans k>n": func() error {
			_, err := KMeans(rows, len(rows)+1, rng, 10)
			return err
		},
		"kmeans nil rng": func() error {
			_, err := KMeans(rows, 2, nil, 10)
			return err
		},
		"kmeans ragged rows": func() error {
			_, err := KMeans([][]float64{{1, 2}, {1}}, 1, rng, 10)
			return err
		},
		"som zero grid": func() error {
			_, err := SOM(rows, SOMConfig{GridW: 0, GridH: 2}, rng)
			return err
		},
		"som nan learning rate": func() error {
			_, err := SOM(rows, SOMConfig{GridW: 2, GridH: 1, LearningRate: nan}, rng)
			return err
		},
		"som nan radius": func() error {
			_, err := SOM(rows, SOMConfig{GridW: 2, GridH: 1, Radius: nan}, rng)
			return err
		},
		"optics minpts=0": func() error {
			_, err := OPTICS(rows, OPTICSConfig{Eps: 1, MinPts: 0})
			return err
		},
		"optics eps=0": func() error {
			_, err := OPTICS(rows, OPTICSConfig{Eps: 0, MinPts: 1})
			return err
		},
		"optics nan eps": func() error {
			_, err := OPTICS(rows, OPTICSConfig{Eps: nan, MinPts: 1})
			return err
		},
		"cast t>1": func() error {
			_, err := CAST(rows, CASTConfig{T: 1.5})
			return err
		},
		"cast nan t": func() error {
			_, err := CAST(rows, CASTConfig{T: nan})
			return err
		},
		"hierarchical nil dist": func() error {
			_, err := Hierarchical(rows, nil, AverageLinkage)
			return err
		},
		"hierarchical bad linkage": func() error {
			_, err := Hierarchical(rows, EuclideanDistance, Linkage(99))
			return err
		},
		"hierarchical no rows": func() error {
			_, err := Hierarchical(nil, EuclideanDistance, AverageLinkage)
			return err
		},
	}
	for name, run := range cases {
		err := run()
		var pe *ParamError
		if !errors.As(err, &pe) {
			t.Errorf("%s: got %v, want *ParamError", name, err)
		} else if pe.Op == "" || pe.Param == "" {
			t.Errorf("%s: ParamError missing detail: %+v", name, pe)
		}
	}
}

// TestCASTPartialNeverLies asserts a budget-stopped CAST leaves
// uncommitted rows at -1 instead of inventing cluster labels.
func TestCASTPartialNeverLies(t *testing.T) {
	rows := walkRows()
	full, err := CAST(rows, CASTConfig{T: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for budget := int64(1); budget < 60; budget += 5 {
		labels, tr, err := CASTCtx(context.Background(), rows, CASTConfig{T: 0.5}, exec.Limits{Budget: budget})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if !tr.Partial {
			if NumClusters(labels) != NumClusters(full) {
				t.Fatalf("budget %d: silent truncation", budget)
			}
			continue
		}
		for i, l := range labels {
			if l < -1 || l >= len(rows) {
				t.Fatalf("budget %d: row %d has fabricated label %d", budget, i, l)
			}
		}
	}
}

// TestShardEquivHierarchical drives the agglomeration through the full
// sharded-equivalence suite: merges are appended only after a round's
// candidate scan completes, so the flagged partial dendrogram is always
// a strict prefix of the full merge list.
func TestShardEquivHierarchical(t *testing.T) {
	rows := walkRows()
	execwalk.WalkSharded(t, execwalk.ShardedTarget{
		Name: "Hierarchical",
		Run: func(ctx context.Context, workers int, lim exec.Limits) ([]string, exec.Trace, error) {
			lim.Workers = workers
			dg, tr, err := HierarchicalCtx(ctx, rows, EuclideanDistance, AverageLinkage, lim)
			if err != nil {
				return nil, tr, err
			}
			out := make([]string, len(dg.Merges))
			for i, m := range dg.Merges {
				out[i] = fmt.Sprintf("%d+%d@%x", m.A, m.B, m.Distance)
			}
			return out, tr, nil
		},
	})
}

// TestShardEquivOPTICS drives the ordering through the full suite: a
// budget stop in the matrix phase yields an empty ordering, one in the
// (sequential, deterministic) ordering phase a strict prefix of it.
func TestShardEquivOPTICS(t *testing.T) {
	rows := walkRows()
	cfg := OPTICSConfig{Eps: math.Inf(1), MinPts: 2, Dist: EuclideanDistance}
	execwalk.WalkSharded(t, execwalk.ShardedTarget{
		Name: "OPTICS",
		Run: func(ctx context.Context, workers int, lim exec.Limits) ([]string, exec.Trace, error) {
			lim.Workers = workers
			order, tr, err := OPTICSCtx(ctx, rows, cfg, lim)
			if err != nil {
				return nil, tr, err
			}
			out := make([]string, len(order))
			for i, p := range order {
				out[i] = fmt.Sprintf("%d r=%x c=%x", p.Index, p.Reachability, p.CoreDistance)
			}
			return out, tr, nil
		},
	})
}

// assertShardEquivalence asserts the substrate's promise for clusterers
// whose partial results are not row prefixes (a label exists for every
// row wherever the budget lands, reflecting the last applied update):
// bit-identical output and identical charges at every worker count on a
// full run, and bit-identical flagged output under any fixed budget.
func assertShardEquivalence(t *testing.T, run func(workers int, lim exec.Limits) ([]string, exec.Trace, error)) {
	t.Helper()
	base, baseTr, err := run(1, exec.Limits{})
	if err != nil {
		t.Fatalf("baseline run failed: %v", err)
	}
	if baseTr.Partial {
		t.Fatal("baseline run flagged partial without any budget")
	}
	if baseTr.Units <= 0 {
		t.Fatal("operator charged no work units")
	}
	for _, w := range []int{2, 8} {
		rows, tr, err := run(w, exec.Limits{})
		if err != nil {
			t.Fatalf("workers %d: %v", w, err)
		}
		if tr.Partial {
			t.Fatalf("workers %d: unbudgeted run flagged partial", w)
		}
		if tr.Units != baseTr.Units {
			t.Fatalf("workers %d: charged %d units, workers 1 charged %d", w, tr.Units, baseTr.Units)
		}
		if !slicesEqual(base, rows) {
			t.Fatalf("workers %d: result differs from workers 1:\n%v\nvs\n%v", w, rows, base)
		}
	}
	for _, b := range []int64{1, baseTr.Units / 3, baseTr.Units / 2, baseTr.Units - 1} {
		if b < 1 {
			continue
		}
		var want []string
		for i, w := range []int{1, 2, 8} {
			rows, tr, err := run(w, exec.Limits{Budget: b})
			if err != nil {
				t.Fatalf("budget %d workers %d: %v", b, w, err)
			}
			if !tr.Partial {
				t.Fatalf("budget %d workers %d: truncated run not flagged partial", b, w)
			}
			if tr.Units > b {
				t.Fatalf("budget %d workers %d: charged %d units", b, w, tr.Units)
			}
			if i == 0 {
				want = rows
			} else if !slicesEqual(want, rows) {
				t.Fatalf("budget %d: workers %d result differs from workers 1:\n%v\nvs\n%v", b, w, rows, want)
			}
		}
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestShardEquivKMeans(t *testing.T) {
	rows := walkRows()
	assertShardEquivalence(t, func(workers int, lim exec.Limits) ([]string, exec.Trace, error) {
		lim.Workers = workers
		res, tr, err := KMeansCtx(context.Background(), rows, 2, rand.New(rand.NewSource(3)), 20, lim)
		if err != nil {
			return nil, tr, err
		}
		out := []string{fmt.Sprintf("labels=%v iters=%d inertia=%x", res.Labels, res.Iters, res.Inertia)}
		for _, cent := range res.Centroids {
			line := "cent"
			for _, v := range cent {
				line += fmt.Sprintf(" %x", v)
			}
			out = append(out, line)
		}
		return out, tr, nil
	})
}

func TestShardEquivSOM(t *testing.T) {
	rows := walkRows()
	cfg := SOMConfig{GridW: 2, GridH: 1, Epochs: 5}
	assertShardEquivalence(t, func(workers int, lim exec.Limits) ([]string, exec.Trace, error) {
		lim.Workers = workers
		res, tr, err := SOMCtx(context.Background(), rows, cfg, rand.New(rand.NewSource(3)), lim)
		if err != nil {
			return nil, tr, err
		}
		out := []string{fmt.Sprintf("labels=%v", res.Labels)}
		for _, w := range res.Weights {
			line := "unit"
			for _, v := range w {
				line += fmt.Sprintf(" %x", v)
			}
			out = append(out, line)
		}
		return out, tr, nil
	})
}

func TestShardEquivCAST(t *testing.T) {
	rows := walkRows()
	cfg := CASTConfig{T: 0.5}
	assertShardEquivalence(t, func(workers int, lim exec.Limits) ([]string, exec.Trace, error) {
		lim.Workers = workers
		labels, tr, err := CASTCtx(context.Background(), rows, cfg, lim)
		if err != nil {
			return nil, tr, err
		}
		return []string{fmt.Sprintf("labels=%v", labels)}, tr, nil
	})
}

// Package cluster implements the one-step clustering baselines the thesis
// positions the GEA against (Sections 2.3.1-2.3.3): agglomerative
// hierarchical clustering with Pearson-correlation distance (Eisen et al.),
// k-means (Bradley/Fayyad/Reina), self-organizing maps (Golub et al., Tamayo
// et al.), and OPTICS (Ankerst et al.; applied to SAGE by Ng, Sander and
// Sleumer). These algorithms group libraries by expression similarity but —
// the thesis's point — do not by themselves surface candidate genes; the
// benchmark harness contrasts them with fascicle mining on that task.
package cluster

import (
	"context"
	"fmt"
	"math"

	"gea/internal/exec"
	"gea/internal/exec/shard"
	"gea/internal/stats"
)

// DistanceFunc measures dissimilarity between two expression vectors.
type DistanceFunc func(a, b []float64) float64

// EuclideanDistance is the plain L2 metric.
func EuclideanDistance(a, b []float64) float64 {
	d, _ := stats.Euclidean(a, b)
	return d
}

// CorrelationDistance is 1 - Pearson correlation, the "standard correlation
// coefficient" distance of Eisen et al. and Ng et al.
func CorrelationDistance(a, b []float64) float64 {
	d, _ := stats.CorrelationDistance(a, b)
	return d
}

// Linkage selects how inter-cluster distance is computed during
// agglomeration.
type Linkage int

// Linkage methods.
const (
	AverageLinkage Linkage = iota // Eisen et al.'s pairwise average linkage
	SingleLinkage
	CompleteLinkage
)

// String names the linkage.
func (l Linkage) String() string {
	switch l {
	case AverageLinkage:
		return "average"
	case SingleLinkage:
		return "single"
	case CompleteLinkage:
		return "complete"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Dendrogram is the result of hierarchical clustering: a binary merge tree.
type Dendrogram struct {
	// Merges lists the n-1 merges in order; cluster IDs 0..n-1 are leaves,
	// n+i is the cluster created by Merges[i].
	Merges []Merge
	// N is the number of leaves.
	N int
}

// Merge records one agglomeration step.
type Merge struct {
	A, B     int     // cluster IDs merged
	Distance float64 // linkage distance at which they merged
}

// Hierarchical clusters the given row vectors bottom-up. It is O(n^3) in the
// number of rows with O(n^2) memory — fine for the ~100 libraries of the
// SAGE corpus (the thesis clusters libraries, not the 60k tags).
func Hierarchical(rows [][]float64, dist DistanceFunc, linkage Linkage) (*Dendrogram, error) {
	dg, _, err := HierarchicalWith(exec.Background(), rows, dist, linkage)
	return dg, err
}

// HierarchicalCtx is Hierarchical under execution governance: the O(n^3)
// merge search polls cancellation at every candidate pair, a budget stop
// returns the merges completed so far as a flagged partial dendrogram,
// and panics become structured *exec.ExecErrors.
func HierarchicalCtx(ctx context.Context, rows [][]float64, dist DistanceFunc, linkage Linkage, lim exec.Limits) (*Dendrogram, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var dg *Dendrogram
	var partial bool
	err := exec.Guard("cluster.Hierarchical", "", func() error {
		var err error
		dg, partial, err = HierarchicalWith(c, rows, dist, linkage)
		return err
	})
	if err != nil {
		dg = nil
	}
	return dg, c.Snapshot(partial), err
}

// HierarchicalWith is the metered implementation; one work unit is one
// leaf-pair distance or one candidate cluster pair scanned.
func HierarchicalWith(c *exec.Ctl, rows [][]float64, dist DistanceFunc, linkage Linkage) (_ *Dendrogram, partial bool, err error) {
	sp := c.StartSpan("cluster.Hierarchical")
	sp.SetInput("%d rows, linkage=%d", len(rows), int(linkage))
	defer c.EndSpan(sp, &partial, &err)
	n := len(rows)
	if _, err := validateRows("Hierarchical", rows); err != nil {
		return nil, false, err
	}
	if dist == nil {
		return nil, false, &ParamError{Op: "Hierarchical", Param: "dist", Msg: "distance function required"}
	}
	switch linkage {
	case AverageLinkage, SingleLinkage, CompleteLinkage:
	default:
		return nil, false, &ParamError{Op: "Hierarchical", Param: "linkage",
			Msg: fmt.Sprintf("unknown linkage %d", int(linkage))}
	}
	if n == 1 {
		return &Dendrogram{N: 1}, false, nil
	}

	// Active clusters: ID -> member leaf indices.
	members := map[int][]int{}
	//lint:gea ctlcharge -- singleton-cluster setup; leaf-pair distances are metered below
	for i := 0; i < n; i++ {
		members[i] = []int{i}
	}
	// Pairwise leaf distances, computed once.
	leafDist := make([][]float64, n)
	//lint:gea ctlcharge -- matrix allocation; every leaf pair is charged in the computation loop below
	for i := range leafDist {
		leafDist[i] = make([]float64, n)
	}
	// The leaf-pair distances are independent, so the triangular matrix
	// fills through the shard substrate over a flattened pair index;
	// each pair writes only its own two mirrored cells. The distance
	// function must be a pure function of its two vectors.
	pi, pj := trianglePairs(n)
	_, leafPartial, err := shard.For(c, len(pi), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		for p := lo; p < hi; p++ {
			if err := c.Point(1); err != nil {
				return p - lo, err
			}
			i, j := pi[p], pj[p]
			d := dist(rows[i], rows[j])
			leafDist[i][j] = d
			leafDist[j][i] = d
		}
		return hi - lo, nil
	})
	if err != nil {
		return nil, false, err
	}
	if leafPartial {
		// A half-computed distance matrix supports no merges at all.
		return &Dendrogram{N: n}, true, nil
	}

	clusterDist := func(a, b []int) float64 {
		switch linkage {
		case SingleLinkage:
			best := math.Inf(1)
			//lint:gea ctlcharge -- lookups over the precomputed leaf-distance matrix; the enclosing scan charges one unit per candidate pair
			for _, x := range a {
				for _, y := range b {
					if leafDist[x][y] < best {
						best = leafDist[x][y]
					}
				}
			}
			return best
		case CompleteLinkage:
			worst := math.Inf(-1)
			//lint:gea ctlcharge -- lookups over the precomputed leaf-distance matrix; the enclosing scan charges one unit per candidate pair
			for _, x := range a {
				for _, y := range b {
					if leafDist[x][y] > worst {
						worst = leafDist[x][y]
					}
				}
			}
			return worst
		default: // AverageLinkage
			var sum float64
			//lint:gea ctlcharge -- lookups over the precomputed leaf-distance matrix; the enclosing scan charges one unit per candidate pair
			for _, x := range a {
				for _, y := range b {
					sum += leafDist[x][y]
				}
			}
			return sum / float64(len(a)*len(b))
		}
	}

	dg := &Dendrogram{N: n}
	nextID := n
	ids := make([]int, 0, n)
	//lint:gea ctlcharge -- id-list seed; cluster-pair scans are metered below
	for i := 0; i < n; i++ {
		ids = append(ids, i)
	}
	dall := make([]float64, n*(n-1)/2)
	for len(ids) > 1 {
		// Candidate-pair scan: linkage distances fill per-pair slots in
		// parallel, then a sequential strict-< argmin keeps the old
		// loop's first-minimum tie-breaking at any worker count.
		qi, qj := trianglePairs(len(ids))
		_, scanPartial, err := shard.For(c, len(qi), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
			for p := lo; p < hi; p++ {
				if err := c.Point(1); err != nil {
					return p - lo, err
				}
				dall[p] = clusterDist(members[ids[qi[p]]], members[ids[qj[p]]])
			}
			return hi - lo, nil
		})
		if err != nil {
			return nil, false, err
		}
		if scanPartial {
			// The round's scan was cut short: the merges completed so
			// far are the flagged partial dendrogram.
			return dg, true, nil
		}
		bi, bj, best := 0, 1, math.Inf(1)
		for p := range qi {
			if dall[p] < best {
				best = dall[p]
				bi, bj = qi[p], qj[p]
			}
		}
		a, b := ids[bi], ids[bj]
		dg.Merges = append(dg.Merges, Merge{A: a, B: b, Distance: best})
		merged := append(append([]int{}, members[a]...), members[b]...)
		members[nextID] = merged
		delete(members, a)
		delete(members, b)
		// Remove bj first (bj > bi).
		ids = append(ids[:bj], ids[bj+1:]...)
		ids = append(ids[:bi], ids[bi+1:]...)
		ids = append(ids, nextID)
		nextID++
	}
	return dg, false, nil
}

// trianglePairs flattens the strict upper triangle of an m×m matrix
// into parallel (i, j) index slices, in the row-major order the old
// sequential double loops visited, so sharded scans keep their
// tie-breaking and budget-stop positions.
func trianglePairs(m int) ([]int, []int) {
	np := m * (m - 1) / 2
	pi := make([]int, 0, np)
	pj := make([]int, 0, np)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			pi = append(pi, i)
			pj = append(pj, j)
		}
	}
	return pi, pj
}

// Cut flattens the dendrogram into k clusters by undoing the last k-1
// merges. It returns, for each leaf, its cluster label in 0..k-1.
func (d *Dendrogram) Cut(k int) ([]int, error) {
	if k < 1 || k > d.N {
		return nil, fmt.Errorf("cluster: cannot cut %d leaves into %d clusters", d.N, k)
	}
	// Apply the first n-k merges.
	parent := map[int]int{}
	find := func(x int) int {
		for {
			p, ok := parent[x]
			if !ok {
				return x
			}
			x = p
		}
	}
	apply := d.N - k
	for i := 0; i < apply; i++ {
		m := d.Merges[i]
		root := d.N + i
		parent[find(m.A)] = root
		parent[find(m.B)] = root
	}
	labels := make([]int, d.N)
	rootLabel := map[int]int{}
	next := 0
	for i := 0; i < d.N; i++ {
		r := find(i)
		l, ok := rootLabel[r]
		if !ok {
			l = next
			next++
			rootLabel[r] = l
		}
		labels[i] = l
	}
	return labels, nil
}

// Heights returns the merge distances in order, useful for picking a cut.
func (d *Dendrogram) Heights() []float64 {
	h := make([]float64, len(d.Merges))
	for i, m := range d.Merges {
		h[i] = m.Distance
	}
	return h
}

// Leaves returns the leaf order produced by a depth-first walk of the final
// tree — the display order of an Eisen-style heat map.
func (d *Dendrogram) Leaves() []int {
	if d.N == 1 {
		return []int{0}
	}
	children := map[int][2]int{}
	for i, m := range d.Merges {
		children[d.N+i] = [2]int{m.A, m.B}
	}
	root := d.N + len(d.Merges) - 1
	var out []int
	var walk func(int)
	walk = func(id int) {
		if id < d.N {
			out = append(out, id)
			return
		}
		c := children[id]
		walk(c[0])
		walk(c[1])
	}
	walk(root)
	return out
}

package cluster

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"gea/internal/exec"
	"gea/internal/exec/shard"
)

// KMeansResult holds a k-means clustering.
type KMeansResult struct {
	Labels    []int       // cluster of each row
	Centroids [][]float64 // k centroids
	Inertia   float64     // sum of squared distances to assigned centroids
	Iters     int         // iterations until convergence
}

// KMeans clusters rows into k groups with Lloyd's algorithm, seeded by
// k-means++ from the given source. It is the "top-down" method of
// Section 2.3.1 where "the user pre-defines the number of clusters ... the
// clusters are initially assigned randomly and the genes are regrouped
// iteratively until they are optimally clustered".
func KMeans(rows [][]float64, k int, rng *rand.Rand, maxIters int) (*KMeansResult, error) {
	res, _, err := KMeansWith(exec.Background(), rows, k, rng, maxIters)
	return res, err
}

// KMeansCtx is KMeans under execution governance: cancellation and
// deadlines are observed once per Lloyd's-iteration row, a budget stop
// returns the current labels/centroids flagged partial, and panics are
// recovered into a structured *exec.ExecError.
func KMeansCtx(ctx context.Context, rows [][]float64, k int, rng *rand.Rand, maxIters int, lim exec.Limits) (*KMeansResult, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var res *KMeansResult
	var partial bool
	err := exec.Guard("cluster.KMeans", "", func() error {
		var err error
		res, partial, err = KMeansWith(c, rows, k, rng, maxIters)
		return err
	})
	if err != nil {
		res = nil
	}
	return res, c.Snapshot(partial), err
}

// KMeansWith is the metered implementation; one work unit is one row
// visited during seeding or assignment.
func KMeansWith(c *exec.Ctl, rows [][]float64, k int, rng *rand.Rand, maxIters int) (_ *KMeansResult, partial bool, err error) {
	sp := c.StartSpan("cluster.KMeans")
	sp.SetInput("%d rows, k=%d", len(rows), k)
	defer c.EndSpan(sp, &partial, &err)
	n := len(rows)
	dim, err := validateRows("KMeans", rows)
	if err != nil {
		return nil, false, err
	}
	if k < 1 || k > n {
		return nil, false, &ParamError{Op: "KMeans", Param: "k",
			Msg: fmt.Sprintf("k=%d out of range [1, %d]", k, n)}
	}
	if rng == nil {
		return nil, false, &ParamError{Op: "KMeans", Param: "rng", Msg: "random source required"}
	}
	if maxIters <= 0 {
		maxIters = 100
	}

	centroids, stop := kmeansPlusPlusInit(c, rows, k, rng)
	labels := make([]int, n)
	res := &KMeansResult{Labels: labels, Centroids: centroids}
	finish := func(partial bool) (*KMeansResult, bool, error) {
		var inertia float64
		//lint:gea ctlcharge -- single closing pass; it also runs after a budget stop, where a charge would re-trip the exhausted budget
		for i, r := range rows {
			inertia += sqDist(r, res.Centroids[labels[i]])
		}
		res.Inertia = inertia
		return res, partial, nil
	}
	if stop != nil {
		if exec.IsBudget(stop) {
			// Seeding was cut short: pad with copies of the first seed so
			// the flagged partial result still has k centroids.
			//lint:gea ctlcharge -- bounded by k; pads the partial result after the budget already stopped the run
			for len(res.Centroids) < k {
				res.Centroids = append(res.Centroids, append([]float64{}, res.Centroids[0]...))
			}
			return finish(true)
		}
		return nil, false, stop
	}

	next := make([]int, n)
	for iter := 0; iter < maxIters; iter++ {
		// Assignment: each row's nearest centroid is independent of every
		// other row's, so the scan evaluates through the shard substrate
		// into per-row slots; the argmin keeps the sequential loop's
		// first-minimum tie-breaking.
		prefix, asgPartial, err := shard.For(c, n, 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
			for i := lo; i < hi; i++ {
				if err := c.Point(1); err != nil {
					return i - lo, err
				}
				best, bestD := 0, math.Inf(1)
				for ci := range centroids {
					d := sqDist(rows[i], centroids[ci])
					if d < bestD {
						bestD = d
						best = ci
					}
				}
				next[i] = best
			}
			return hi - lo, nil
		})
		if err != nil {
			return nil, false, err
		}
		changed := false
		for i := 0; i < prefix; i++ {
			if labels[i] != next[i] {
				labels[i] = next[i]
				changed = true
			}
		}
		if asgPartial {
			return finish(true)
		}
		res.Iters = iter + 1
		// Recompute centroids.
		counts := make([]int, k)
		next := make([][]float64, k)
		for c := range next {
			next[c] = make([]float64, dim)
		}
		for i, r := range rows {
			c := labels[i]
			counts[c]++
			for j, v := range r {
				next[c][j] += v
			}
		}
		for c := range next {
			if counts[c] == 0 {
				// Empty cluster: reseed at the farthest point, a standard
				// Lloyd's repair.
				far, farD := 0, -1.0
				for i, r := range rows {
					d := sqDist(r, centroids[labels[i]])
					if d > farD {
						farD = d
						far = i
					}
				}
				copy(next[c], rows[far])
				continue
			}
			for j := range next[c] {
				next[c][j] /= float64(counts[c])
			}
		}
		centroids = next
		res.Centroids = centroids
		if !changed && iter > 0 {
			break
		}
	}
	return finish(false)
}

// kmeansPlusPlusInit seeds centroids with the k-means++ strategy. The
// returned error, if any, is the Ctl's stop condition; at least one
// centroid is always produced.
func kmeansPlusPlusInit(ctl *exec.Ctl, rows [][]float64, k int, rng *rand.Rand) ([][]float64, error) {
	n := len(rows)
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, append([]float64{}, rows[first]...))
	d2 := make([]float64, n)
	for len(centroids) < k {
		// The per-row distances are embarrassingly parallel; the weighted
		// sum that seeds the next pick stays sequential so its floating-
		// point rounding — and therefore the chosen seed — is identical
		// at any worker count.
		_, partial, err := shard.For(ctl, n, 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
			for i := lo; i < hi; i++ {
				if err := c.Point(1); err != nil {
					return i - lo, err
				}
				best := math.Inf(1)
				for _, cent := range centroids {
					if d := sqDist(rows[i], cent); d < best {
						best = d
					}
				}
				d2[i] = best
			}
			return hi - lo, nil
		})
		if err != nil {
			return centroids, err
		}
		if partial {
			// The round was cut short; the caller pads the seeds already
			// chosen into a flagged partial result.
			return centroids, ctl.Err()
		}
		var sum float64
		for _, d := range d2 {
			sum += d
		}
		var pick int
		if sum == 0 {
			pick = rng.Intn(n)
		} else {
			target := rng.Float64() * sum
			for i, d := range d2 {
				target -= d
				if target <= 0 {
					pick = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float64{}, rows[pick]...))
	}
	return centroids, nil
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

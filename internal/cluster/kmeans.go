package cluster

import (
	"fmt"
	"math"
	"math/rand"
)

// KMeansResult holds a k-means clustering.
type KMeansResult struct {
	Labels    []int       // cluster of each row
	Centroids [][]float64 // k centroids
	Inertia   float64     // sum of squared distances to assigned centroids
	Iters     int         // iterations until convergence
}

// KMeans clusters rows into k groups with Lloyd's algorithm, seeded by
// k-means++ from the given source. It is the "top-down" method of
// Section 2.3.1 where "the user pre-defines the number of clusters ... the
// clusters are initially assigned randomly and the genes are regrouped
// iteratively until they are optimally clustered".
func KMeans(rows [][]float64, k int, rng *rand.Rand, maxIters int) (*KMeansResult, error) {
	n := len(rows)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no rows")
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("cluster: k=%d out of range [1, %d]", k, n)
	}
	dim := len(rows[0])
	for i, r := range rows {
		if len(r) != dim {
			return nil, fmt.Errorf("cluster: row %d has dimension %d, want %d", i, len(r), dim)
		}
	}
	if maxIters <= 0 {
		maxIters = 100
	}

	centroids := kmeansPlusPlusInit(rows, k, rng)
	labels := make([]int, n)
	res := &KMeansResult{Labels: labels, Centroids: centroids}

	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i, r := range rows {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				d := sqDist(r, centroids[c])
				if d < bestD {
					bestD = d
					best = c
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		res.Iters = iter + 1
		// Recompute centroids.
		counts := make([]int, k)
		next := make([][]float64, k)
		for c := range next {
			next[c] = make([]float64, dim)
		}
		for i, r := range rows {
			c := labels[i]
			counts[c]++
			for j, v := range r {
				next[c][j] += v
			}
		}
		for c := range next {
			if counts[c] == 0 {
				// Empty cluster: reseed at the farthest point, a standard
				// Lloyd's repair.
				far, farD := 0, -1.0
				for i, r := range rows {
					d := sqDist(r, centroids[labels[i]])
					if d > farD {
						farD = d
						far = i
					}
				}
				copy(next[c], rows[far])
				continue
			}
			for j := range next[c] {
				next[c][j] /= float64(counts[c])
			}
		}
		centroids = next
		res.Centroids = centroids
		if !changed && iter > 0 {
			break
		}
	}
	var inertia float64
	for i, r := range rows {
		inertia += sqDist(r, centroids[labels[i]])
	}
	res.Inertia = inertia
	return res, nil
}

// kmeansPlusPlusInit seeds centroids with the k-means++ strategy.
func kmeansPlusPlusInit(rows [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(rows)
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, append([]float64{}, rows[first]...))
	d2 := make([]float64, n)
	for len(centroids) < k {
		var sum float64
		for i, r := range rows {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(r, c); d < best {
					best = d
				}
			}
			d2[i] = best
			sum += best
		}
		var pick int
		if sum == 0 {
			pick = rng.Intn(n)
		} else {
			target := rng.Float64() * sum
			for i, d := range d2 {
				target -= d
				if target <= 0 {
					pick = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float64{}, rows[pick]...))
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

package cluster

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"gea/internal/exec"
	"gea/internal/exec/execwalk"
)

// TestSpanInvariantClusterers drives all five clusterers through the
// span-verified checkpoint walk: every probe (cancel, budget, panic,
// coarse cadence) must leave exactly one completed root span whose unit
// total matches the Ctl's charge total and whose outcome matches what the
// caller saw. Matched by the CI -race walk step.
func TestSpanInvariantClusterers(t *testing.T) {
	rows := walkRows()
	for _, tc := range []struct {
		name string
		op   string
		run  func(ctx context.Context, lim exec.Limits) (exec.Trace, error)
	}{
		{"Hierarchical", "cluster.Hierarchical", func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := HierarchicalCtx(ctx, rows, EuclideanDistance, AverageLinkage, lim)
			return tr, err
		}},
		{"KMeans", "cluster.KMeans", func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := KMeansCtx(ctx, rows, 2, rand.New(rand.NewSource(3)), 20, lim)
			return tr, err
		}},
		{"SOM", "cluster.SOM", func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := SOMCtx(ctx, rows, SOMConfig{GridW: 2, GridH: 1, Epochs: 5}, rand.New(rand.NewSource(3)), lim)
			return tr, err
		}},
		{"OPTICS", "cluster.OPTICS", func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := OPTICSCtx(ctx, rows, OPTICSConfig{Eps: math.Inf(1), MinPts: 2, Dist: EuclideanDistance}, lim)
			return tr, err
		}},
		{"CAST", "cluster.CAST", func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := CASTCtx(ctx, rows, CASTConfig{T: 0.5}, lim)
			return tr, err
		}},
	} {
		verified := execwalk.SpanVerified(t, tc.op, tc.run)
		execwalk.Walk(t, execwalk.Target{Name: tc.name, Run: verified, MaxUnitStep: 1, MaxProbes: 8})
		// Worker sweep re-pins the unit-total identity on sharded paths.
		for _, w := range []int{1, 4} {
			if _, err := verified(context.Background(), exec.Limits{Workers: w}); err != nil {
				t.Fatalf("%s workers %d: %v", tc.name, w, err)
			}
		}
	}
}

package cluster

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"

	"gea/internal/exec"
	"gea/internal/exec/shard"
)

// OPTICSConfig configures an OPTICS run (Ankerst, Breunig, Kriegel, Sander;
// the algorithm Ng, Sander and Sleumer applied to the SAGE data [NSS01]).
type OPTICSConfig struct {
	// Eps is the generating distance; math.Inf(1) considers all neighbours.
	Eps float64
	// MinPts is the core-point density threshold.
	MinPts int
	// Dist is the distance function; nil means CorrelationDistance, as in
	// the SAGE study.
	Dist DistanceFunc
}

// OPTICSPoint is one entry of the cluster-ordering output.
type OPTICSPoint struct {
	Index        int     // row index
	Reachability float64 // +Inf for the first point of each component
	CoreDistance float64 // +Inf if not a core point
}

// OPTICS computes the augmented cluster ordering of the rows. Valleys in the
// reachability plot are clusters; ExtractDBSCAN flattens the ordering at a
// fixed eps'.
func OPTICS(rows [][]float64, cfg OPTICSConfig) ([]OPTICSPoint, error) {
	order, _, err := OPTICSWith(exec.Background(), rows, cfg)
	return order, err
}

// OPTICSCtx is OPTICS under execution governance: cancellation is
// observed per distance-matrix pair and per processed point, a budget
// stop returns the ordering produced so far flagged partial, and panics
// are recovered into a structured *exec.ExecError.
func OPTICSCtx(ctx context.Context, rows [][]float64, cfg OPTICSConfig, lim exec.Limits) ([]OPTICSPoint, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var order []OPTICSPoint
	var partial bool
	err := exec.Guard("cluster.OPTICS", "", func() error {
		var err error
		order, partial, err = OPTICSWith(c, rows, cfg)
		return err
	})
	if err != nil {
		order = nil
	}
	return order, c.Snapshot(partial), err
}

// OPTICSWith is the metered implementation; one work unit is one
// distance-matrix pair computed or one point added to the ordering.
func OPTICSWith(c *exec.Ctl, rows [][]float64, cfg OPTICSConfig) (_ []OPTICSPoint, partial bool, err error) {
	sp := c.StartSpan("cluster.OPTICS")
	sp.SetInput("%d rows, minPts=%d eps=%v", len(rows), cfg.MinPts, cfg.Eps)
	defer c.EndSpan(sp, &partial, &err)
	n := len(rows)
	if _, err := validateRows("OPTICS", rows); err != nil {
		return nil, false, err
	}
	if cfg.MinPts < 1 {
		return nil, false, &ParamError{Op: "OPTICS", Param: "MinPts", Msg: "must be at least 1"}
	}
	if cfg.Eps <= 0 || badNumber(cfg.Eps) {
		return nil, false, &ParamError{Op: "OPTICS", Param: "Eps",
			Msg: fmt.Sprintf("%v; must be a positive number", cfg.Eps)}
	}
	dist := cfg.Dist
	if dist == nil {
		dist = CorrelationDistance
	}

	// Precompute the distance matrix; the SAGE corpus is small.
	dm := make([][]float64, n)
	//lint:gea ctlcharge -- matrix allocation; every pair is charged in the computation loop below
	for i := range dm {
		dm[i] = make([]float64, n)
	}
	// The distance pairs are independent, so the matrix fills through
	// the shard substrate over a flattened pair index; each pair writes
	// only its own two mirrored cells. The distance function must be a
	// pure function of its two vectors.
	pi, pj := trianglePairs(n)
	_, dmPartial, err := shard.For(c, len(pi), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		for p := lo; p < hi; p++ {
			if err := c.Point(1); err != nil {
				return p - lo, err
			}
			i, j := pi[p], pj[p]
			d := dist(rows[i], rows[j])
			dm[i][j] = d
			dm[j][i] = d
		}
		return hi - lo, nil
	})
	if err != nil {
		return nil, false, err
	}
	if dmPartial {
		// No ordering can be produced from a half-computed matrix.
		return nil, true, nil
	}

	coreDist := func(i int) float64 {
		// Distance to the MinPts-th neighbour within Eps (point itself
		// counts, as in the original paper's neighbourhood definition).
		ds := make([]float64, 0, n)
		ds = append(ds, 0) // self
		//lint:gea ctlcharge -- neighbourhood scan over the precomputed matrix; one unit is charged per point ordered
		for j := 0; j < n; j++ {
			if j != i && dm[i][j] <= cfg.Eps {
				ds = append(ds, dm[i][j])
			}
		}
		if len(ds) < cfg.MinPts {
			return math.Inf(1)
		}
		// k-th smallest.
		kth := quickSelect(ds, cfg.MinPts-1)
		return kth
	}

	processed := make([]bool, n)
	reach := make([]float64, n)
	//lint:gea ctlcharge -- reachability initialization; ordering work is metered below
	for i := range reach {
		reach[i] = math.Inf(1)
	}
	var order []OPTICSPoint

	for start := 0; start < n; start++ {
		if processed[start] {
			continue
		}
		if err := c.Point(1); err != nil {
			if exec.IsBudget(err) {
				return order, true, nil
			}
			return nil, false, err
		}
		processed[start] = true
		cd := coreDist(start)
		order = append(order, OPTICSPoint{Index: start, Reachability: math.Inf(1), CoreDistance: cd})

		seeds := &reachHeap{}
		heap.Init(seeds)
		update := func(center int, centerCore float64) {
			if math.IsInf(centerCore, 1) {
				return
			}
			for j := 0; j < n; j++ {
				if processed[j] || dm[center][j] > cfg.Eps {
					continue
				}
				newReach := math.Max(centerCore, dm[center][j])
				if newReach < reach[j] {
					reach[j] = newReach
					heap.Push(seeds, reachItem{idx: j, reach: newReach})
				}
			}
		}
		update(start, cd)
		for seeds.Len() > 0 {
			item := heap.Pop(seeds).(reachItem)
			if processed[item.idx] || item.reach > reach[item.idx] {
				continue // stale heap entry
			}
			if err := c.Point(1); err != nil {
				if exec.IsBudget(err) {
					return order, true, nil
				}
				return nil, false, err
			}
			processed[item.idx] = true
			cd := coreDist(item.idx)
			order = append(order, OPTICSPoint{Index: item.idx, Reachability: reach[item.idx], CoreDistance: cd})
			update(item.idx, cd)
		}
	}
	return order, false, nil
}

// ExtractDBSCAN flattens an OPTICS ordering into DBSCAN-style clusters at
// eps'. It returns per-row labels; -1 is noise.
func ExtractDBSCAN(order []OPTICSPoint, eps float64) []int {
	maxIdx := -1
	for _, p := range order {
		if p.Index > maxIdx {
			maxIdx = p.Index
		}
	}
	labels := make([]int, maxIdx+1)
	for i := range labels {
		labels[i] = -1
	}
	cluster := -1
	for _, p := range order {
		if p.Reachability > eps {
			if p.CoreDistance <= eps {
				cluster++
				labels[p.Index] = cluster
			} // else noise
		} else {
			if cluster < 0 {
				cluster = 0
			}
			labels[p.Index] = cluster
		}
	}
	return labels
}

type reachItem struct {
	idx   int
	reach float64
}

type reachHeap []reachItem

func (h reachHeap) Len() int            { return len(h) }
func (h reachHeap) Less(i, j int) bool  { return h[i].reach < h[j].reach }
func (h reachHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *reachHeap) Push(x interface{}) { *h = append(*h, x.(reachItem)) }
func (h *reachHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// quickSelect returns the k-th smallest element (0-based) of xs, modifying
// xs. Neighbour lists here are at most the corpus size (~100), so a sort is
// simplest and plenty fast.
func quickSelect(xs []float64, k int) float64 {
	sort.Float64s(xs)
	return xs[k]
}

package cluster

import (
	"fmt"
	"math"
)

// ParamError is a typed clustering-parameter validation failure; Op
// names the clusterer and Param the offending field, so callers can
// report (or fix) the exact input instead of pattern-matching strings.
// All parameter validation happens up front — nonsensical k/eps/grid
// values are rejected before any loop runs.
type ParamError struct {
	Op    string
	Param string
	Msg   string
}

func (e *ParamError) Error() string {
	return fmt.Sprintf("cluster: %s: invalid %s: %s", e.Op, e.Param, e.Msg)
}

// validateRows checks the row matrix is non-empty, rectangular, and
// returns its dimension.
func validateRows(op string, rows [][]float64) (int, error) {
	if len(rows) == 0 {
		return 0, &ParamError{Op: op, Param: "rows", Msg: "no rows"}
	}
	dim := len(rows[0])
	for i, r := range rows {
		if len(r) != dim {
			return 0, &ParamError{Op: op, Param: "rows",
				Msg: fmt.Sprintf("row %d has dimension %d, want %d", i, len(r), dim)}
		}
	}
	return dim, nil
}

// badNumber reports values that silently poison a whole run: NaN passes
// every range comparison, so it must be rejected explicitly.
func badNumber(v float64) bool { return math.IsNaN(v) }

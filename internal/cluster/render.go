package cluster

import (
	"fmt"
	"math"
	"strings"
)

// This file renders clustering results as text: the dendrogram tree, the
// Eisen-style clustered heat map (the thesis reviews Eisen et al.'s colored
// images and notes they become unreadable as data grows — a text rendering
// at least scales predictably), and the OPTICS reachability plot whose
// valleys are clusters.

// RenderDendrogram draws the merge tree with one leaf per line, labelled.
// Merge heights are shown on the internal nodes.
func RenderDendrogram(d *Dendrogram, labels []string) (string, error) {
	if len(labels) != d.N {
		return "", fmt.Errorf("cluster: %d labels for %d leaves", len(labels), d.N)
	}
	if d.N == 1 {
		return labels[0] + "\n", nil
	}
	var b strings.Builder
	children := map[int][2]int{}
	heights := map[int]float64{}
	for i, m := range d.Merges {
		children[d.N+i] = [2]int{m.A, m.B}
		heights[d.N+i] = m.Distance
	}
	root := d.N + len(d.Merges) - 1
	var walk func(id int, prefix string, last bool)
	walk = func(id int, prefix string, last bool) {
		connector := "├─"
		childPrefix := prefix + "│ "
		if last {
			connector = "└─"
			childPrefix = prefix + "  "
		}
		if id < d.N {
			fmt.Fprintf(&b, "%s%s %s\n", prefix, connector, labels[id])
			return
		}
		fmt.Fprintf(&b, "%s%s (d=%.3f)\n", prefix, connector, heights[id])
		c := children[id]
		walk(c[0], childPrefix, false)
		walk(c[1], childPrefix, true)
	}
	fmt.Fprintf(&b, "(d=%.3f)\n", heights[root])
	c := children[root]
	walk(c[0], "", false)
	walk(c[1], "", true)
	return b.String(), nil
}

// heatShades maps normalized intensity to characters, low to high.
const heatShades = " .:-=+*#%@"

// TextHeatmap renders a matrix as shaded characters, one row per line with
// its label. Values are normalized per-row to [0, 1] (expression heat maps
// compare a gene against itself across conditions, as Eisen's red/green
// scaling does).
func TextHeatmap(rows [][]float64, rowLabels []string) (string, error) {
	if len(rows) != len(rowLabels) {
		return "", fmt.Errorf("cluster: %d labels for %d rows", len(rowLabels), len(rows))
	}
	width := 0
	for _, l := range rowLabels {
		if len(l) > width {
			width = len(l)
		}
	}
	var b strings.Builder
	for i, row := range rows {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		fmt.Fprintf(&b, "%-*s ", width, rowLabels[i])
		for _, v := range row {
			shade := 0
			if hi > lo {
				shade = int(float64(len(heatShades)-1) * (v - lo) / (hi - lo))
			}
			b.WriteByte(heatShades[shade])
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// Reorder returns the rows (and labels) permuted by order — typically a
// dendrogram's leaf order, giving the clustered display.
func Reorder(rows [][]float64, labels []string, order []int) ([][]float64, []string, error) {
	if len(order) != len(rows) || len(labels) != len(rows) {
		return nil, nil, fmt.Errorf("cluster: reorder size mismatch (%d rows, %d labels, %d order)",
			len(rows), len(labels), len(order))
	}
	outR := make([][]float64, len(rows))
	outL := make([]string, len(rows))
	seen := make([]bool, len(rows))
	for i, o := range order {
		if o < 0 || o >= len(rows) || seen[o] {
			return nil, nil, fmt.Errorf("cluster: order is not a permutation")
		}
		seen[o] = true
		outR[i] = rows[o]
		outL[i] = labels[o]
	}
	return outR, outL, nil
}

// ReachabilityPlot renders an OPTICS ordering as horizontal bars; valleys
// separated by tall bars are the clusters.
func ReachabilityPlot(order []OPTICSPoint, labels []string, width int) (string, error) {
	if width < 1 {
		width = 40
	}
	maxReach := 0.0
	for _, p := range order {
		if !math.IsInf(p.Reachability, 1) && p.Reachability > maxReach {
			maxReach = p.Reachability
		}
	}
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	var b strings.Builder
	for _, p := range order {
		label := fmt.Sprintf("#%d", p.Index)
		if p.Index < len(labels) {
			label = labels[p.Index]
		}
		var bar string
		switch {
		case math.IsInf(p.Reachability, 1):
			bar = "∞"
		case maxReach == 0:
			bar = ""
		default:
			bar = strings.Repeat("█", int(float64(width)*p.Reachability/maxReach))
		}
		fmt.Fprintf(&b, "%-*s %s\n", labelWidth, label, bar)
	}
	return b.String(), nil
}

package cluster

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestRenderDendrogram(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rows := twoBlobs(rng, 3)
	dg, err := Hierarchical(rows, EuclideanDistance, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]string, 10)
	for i := range labels {
		labels[i] = string(rune('A' + i))
	}
	out, err := RenderDendrogram(dg, labels)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range labels {
		if !strings.Contains(out, l) {
			t.Errorf("rendering misses leaf %s:\n%s", l, out)
		}
	}
	if strings.Count(out, "(d=") != len(dg.Merges) {
		t.Errorf("rendering shows %d merges, want %d:\n%s",
			strings.Count(out, "(d="), len(dg.Merges), out)
	}
	if _, err := RenderDendrogram(dg, labels[:3]); err == nil {
		t.Error("label mismatch: expected error")
	}
	single, err := Hierarchical(rows[:1], EuclideanDistance, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := RenderDendrogram(single, []string{"only"}); err != nil || out != "only\n" {
		t.Errorf("single-leaf render = %q, %v", out, err)
	}
}

func TestTextHeatmap(t *testing.T) {
	rows := [][]float64{
		{0, 5, 10},
		{7, 7, 7},
	}
	out, err := TextHeatmap(rows, []string{"up", "flat"})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("heatmap lines = %d", len(lines))
	}
	// Row 1 ends at the hottest shade; row 2 (constant) is all-cold.
	if !strings.HasSuffix(lines[0], "@") {
		t.Errorf("row 0 should end hot: %q", lines[0])
	}
	if strings.ContainsAny(strings.TrimPrefix(lines[1], "flat"), "@#%") {
		t.Errorf("constant row should stay cold: %q", lines[1])
	}
	if _, err := TextHeatmap(rows, []string{"one"}); err == nil {
		t.Error("label mismatch: expected error")
	}
}

func TestReorder(t *testing.T) {
	rows := [][]float64{{1}, {2}, {3}}
	labels := []string{"a", "b", "c"}
	outR, outL, err := Reorder(rows, labels, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if outL[0] != "c" || outR[0][0] != 3 || outL[2] != "b" {
		t.Errorf("reorder = %v / %v", outR, outL)
	}
	if _, _, err := Reorder(rows, labels, []int{0, 0, 1}); err == nil {
		t.Error("non-permutation: expected error")
	}
	if _, _, err := Reorder(rows, labels, []int{0}); err == nil {
		t.Error("short order: expected error")
	}
	if _, _, err := Reorder(rows, labels, []int{0, 1, 9}); err == nil {
		t.Error("out-of-range order: expected error")
	}
}

func TestReachabilityPlot(t *testing.T) {
	order := []OPTICSPoint{
		{Index: 0, Reachability: math.Inf(1)},
		{Index: 1, Reachability: 0.1},
		{Index: 2, Reachability: 0.9},
	}
	out, err := ReachabilityPlot(order, []string{"x", "y", "z"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("plot lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "∞") {
		t.Errorf("first point should be infinite: %q", lines[0])
	}
	if strings.Count(lines[2], "█") <= strings.Count(lines[1], "█") {
		t.Error("larger reachability should draw a longer bar")
	}
	// Missing labels fall back to indexes; zero width defaults.
	out2, err := ReachabilityPlot(order, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "#2") {
		t.Errorf("fallback labels missing: %q", out2)
	}
}

// TestEisenWorkflow: cluster genes (tags) by their cross-library profiles
// and render the clustered heat map in leaf order — the Eisen et al.
// analysis of Section 2.3.2 built from the toolkit's parts. Up- and
// down-regulated shapes must separate.
func TestEisenWorkflow(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	// 6 genes over 8 libraries: 3 rising, 3 falling.
	genes := make([][]float64, 6)
	labels := make([]string, 6)
	for g := range genes {
		row := make([]float64, 8)
		for j := range row {
			base := float64(j)
			if g >= 3 {
				base = float64(len(row) - j)
			}
			row[j] = base*10 + rng.NormFloat64()
		}
		genes[g] = row
		labels[g] = string(rune('U'+0)) + string(rune('0'+g))
		if g >= 3 {
			labels[g] = "D" + string(rune('0'+g))
		}
	}
	dg, err := Hierarchical(genes, CorrelationDistance, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	leaves := dg.Leaves()
	ordRows, ordLabels, err := Reorder(genes, labels, leaves)
	if err != nil {
		t.Fatal(err)
	}
	// All U genes contiguous, all D genes contiguous in leaf order.
	var kinds []byte
	for _, l := range ordLabels {
		kinds = append(kinds, l[0])
	}
	switches := 0
	for i := 1; i < len(kinds); i++ {
		if kinds[i] != kinds[i-1] {
			switches++
		}
	}
	if switches != 1 {
		t.Errorf("leaf order mixes gene groups: %s", string(kinds))
	}
	if _, err := TextHeatmap(ordRows, ordLabels); err != nil {
		t.Fatal(err)
	}
}

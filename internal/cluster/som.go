package cluster

import (
	"fmt"
	"math"
	"math/rand"
)

// SOMConfig configures a self-organizing map run.
type SOMConfig struct {
	// GridW, GridH give the map dimensions. Golub et al. used small maps
	// (e.g. 2x1 for the ALL/AML split); Tamayo et al. larger grids.
	GridW, GridH int
	// Epochs is the number of passes over the data.
	Epochs int
	// LearningRate is the initial learning rate (decays linearly to ~0).
	LearningRate float64
	// Radius is the initial neighbourhood radius (decays to 0); zero means
	// max(GridW, GridH)/2.
	Radius float64
}

// SOMResult holds a trained map and the assignment of rows to map units.
type SOMResult struct {
	Config  SOMConfig
	Weights [][]float64 // GridW*GridH unit weight vectors
	Labels  []int       // best-matching unit (y*GridW+x) per row
}

// SOM trains a self-organizing map on the row vectors, the method "well
// suited to identifying a small number of prominent classes in a small data
// set" that Golub et al. used to separate ALL from AML (Section 2.3.2).
func SOM(rows [][]float64, cfg SOMConfig, rng *rand.Rand) (*SOMResult, error) {
	n := len(rows)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no rows")
	}
	if cfg.GridW < 1 || cfg.GridH < 1 {
		return nil, fmt.Errorf("cluster: SOM grid %dx%d invalid", cfg.GridW, cfg.GridH)
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 50
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.5
	}
	if cfg.Radius <= 0 {
		cfg.Radius = math.Max(float64(cfg.GridW), float64(cfg.GridH)) / 2
	}
	dim := len(rows[0])
	for i, r := range rows {
		if len(r) != dim {
			return nil, fmt.Errorf("cluster: row %d has dimension %d, want %d", i, len(r), dim)
		}
	}

	units := cfg.GridW * cfg.GridH
	weights := make([][]float64, units)
	for u := range weights {
		// Initialize each unit at a random input row plus noise.
		src := rows[rng.Intn(n)]
		w := make([]float64, dim)
		for j := range w {
			w[j] = src[j] * (1 + 0.01*rng.NormFloat64())
		}
		weights[u] = w
	}

	order := rng.Perm(n)
	totalSteps := cfg.Epochs * n
	step := 0
	for e := 0; e < cfg.Epochs; e++ {
		// Reshuffle each epoch.
		for i := n - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, ri := range order {
			frac := float64(step) / float64(totalSteps)
			lr := cfg.LearningRate * (1 - frac)
			radius := cfg.Radius * (1 - frac)
			bmu := bestMatchingUnit(rows[ri], weights)
			bx, by := bmu%cfg.GridW, bmu/cfg.GridW
			for u := range weights {
				ux, uy := u%cfg.GridW, u/cfg.GridW
				gd := math.Hypot(float64(ux-bx), float64(uy-by))
				if gd > radius {
					continue
				}
				infl := lr
				if radius > 0 {
					infl *= math.Exp(-gd * gd / (2 * (radius/2 + 1e-9) * (radius/2 + 1e-9)))
				}
				w := weights[u]
				for j := range w {
					w[j] += infl * (rows[ri][j] - w[j])
				}
			}
			step++
		}
	}

	labels := make([]int, n)
	for i, r := range rows {
		labels[i] = bestMatchingUnit(r, weights)
	}
	return &SOMResult{Config: cfg, Weights: weights, Labels: labels}, nil
}

func bestMatchingUnit(r []float64, weights [][]float64) int {
	best, bestD := 0, math.Inf(1)
	for u, w := range weights {
		if d := sqDist(r, w); d < bestD {
			bestD = d
			best = u
		}
	}
	return best
}

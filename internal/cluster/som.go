package cluster

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"gea/internal/exec"
	"gea/internal/exec/shard"
)

// SOMConfig configures a self-organizing map run.
type SOMConfig struct {
	// GridW, GridH give the map dimensions. Golub et al. used small maps
	// (e.g. 2x1 for the ALL/AML split); Tamayo et al. larger grids.
	GridW, GridH int
	// Epochs is the number of passes over the data.
	Epochs int
	// LearningRate is the initial learning rate (decays linearly to ~0).
	LearningRate float64
	// Radius is the initial neighbourhood radius (decays to 0); zero means
	// max(GridW, GridH)/2.
	Radius float64
}

// SOMResult holds a trained map and the assignment of rows to map units.
type SOMResult struct {
	Config  SOMConfig
	Weights [][]float64 // GridW*GridH unit weight vectors
	Labels  []int       // best-matching unit (y*GridW+x) per row
}

// SOM trains a self-organizing map on the row vectors, the method "well
// suited to identifying a small number of prominent classes in a small data
// set" that Golub et al. used to separate ALL from AML (Section 2.3.2).
func SOM(rows [][]float64, cfg SOMConfig, rng *rand.Rand) (*SOMResult, error) {
	res, _, err := SOMWith(exec.Background(), rows, cfg, rng)
	return res, err
}

// SOMCtx is SOM under execution governance: cancellation is observed
// once per training step, a budget stop labels the rows against the
// partially trained map (flagged partial), and panics are recovered
// into a structured *exec.ExecError.
func SOMCtx(ctx context.Context, rows [][]float64, cfg SOMConfig, rng *rand.Rand, lim exec.Limits) (*SOMResult, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var res *SOMResult
	var partial bool
	err := exec.Guard("cluster.SOM", "", func() error {
		var err error
		res, partial, err = SOMWith(c, rows, cfg, rng)
		return err
	})
	if err != nil {
		res = nil
	}
	return res, c.Snapshot(partial), err
}

// SOMWith is the metered implementation; one work unit is one training
// step (one sample folded into the map).
func SOMWith(c *exec.Ctl, rows [][]float64, cfg SOMConfig, rng *rand.Rand) (_ *SOMResult, partial bool, err error) {
	sp := c.StartSpan("cluster.SOM")
	sp.SetInput("%d rows, grid %dx%d", len(rows), cfg.GridW, cfg.GridH)
	defer c.EndSpan(sp, &partial, &err)
	n := len(rows)
	dim, err := validateRows("SOM", rows)
	if err != nil {
		return nil, false, err
	}
	if cfg.GridW < 1 || cfg.GridH < 1 {
		return nil, false, &ParamError{Op: "SOM", Param: "grid",
			Msg: fmt.Sprintf("grid %dx%d invalid", cfg.GridW, cfg.GridH)}
	}
	if badNumber(cfg.LearningRate) {
		return nil, false, &ParamError{Op: "SOM", Param: "LearningRate", Msg: "must not be NaN"}
	}
	if badNumber(cfg.Radius) {
		return nil, false, &ParamError{Op: "SOM", Param: "Radius", Msg: "must not be NaN"}
	}
	if rng == nil {
		return nil, false, &ParamError{Op: "SOM", Param: "rng", Msg: "random source required"}
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 50
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.5
	}
	if cfg.Radius <= 0 {
		cfg.Radius = math.Max(float64(cfg.GridW), float64(cfg.GridH)) / 2
	}

	units := cfg.GridW * cfg.GridH
	weights := make([][]float64, units)
	//lint:gea ctlcharge -- weight initialization at random input rows; training steps are metered below
	for u := range weights {
		// Initialize each unit at a random input row plus noise.
		src := rows[rng.Intn(n)]
		w := make([]float64, dim)
		for j := range w {
			w[j] = src[j] * (1 + 0.01*rng.NormFloat64())
		}
		weights[u] = w
	}

	finish := func(partial bool) (*SOMResult, bool, error) {
		// The closing labeling pass runs on a fresh unbudgeted Ctl that
		// inherits only the worker count: it must complete even after a
		// budget stop (a charge on c would re-trip the exhausted budget),
		// and each row's best-matching unit is independent, so it shards.
		lc := exec.New(context.Background(), exec.Limits{Workers: c.Workers()})
		labels := make([]int, n)
		_, _, err := shard.For(lc, n, 0, func(lc *exec.Ctl, _, lo, hi int) (int, error) {
			for i := lo; i < hi; i++ {
				if err := lc.Point(1); err != nil {
					return i - lo, err
				}
				labels[i] = bestMatchingUnit(rows[i], weights)
			}
			return hi - lo, nil
		})
		if err != nil {
			return nil, false, err
		}
		return &SOMResult{Config: cfg, Weights: weights, Labels: labels}, partial, nil
	}

	order := rng.Perm(n)
	totalSteps := cfg.Epochs * n
	step := 0
	for e := 0; e < cfg.Epochs; e++ {
		// Reshuffle each epoch.
		for i := n - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, ri := range order {
			if err := c.Point(1); err != nil {
				if exec.IsBudget(err) {
					// Labels against the partially trained map, flagged.
					return finish(true)
				}
				return nil, false, err
			}
			frac := float64(step) / float64(totalSteps)
			lr := cfg.LearningRate * (1 - frac)
			radius := cfg.Radius * (1 - frac)
			bmu := bestMatchingUnit(rows[ri], weights)
			bx, by := bmu%cfg.GridW, bmu/cfg.GridW
			for u := range weights {
				ux, uy := u%cfg.GridW, u/cfg.GridW
				gd := math.Hypot(float64(ux-bx), float64(uy-by))
				if gd > radius {
					continue
				}
				infl := lr
				if radius > 0 {
					infl *= math.Exp(-gd * gd / (2 * (radius/2 + 1e-9) * (radius/2 + 1e-9)))
				}
				w := weights[u]
				for j := range w {
					w[j] += infl * (rows[ri][j] - w[j])
				}
			}
			step++
		}
	}

	return finish(false)
}

func bestMatchingUnit(r []float64, weights [][]float64) int {
	best, bestD := 0, math.Inf(1)
	for u, w := range weights {
		if d := sqDist(r, w); d < bestD {
			bestD = d
			best = u
		}
	}
	return best
}

// Package columnar is the block-partitioned column store under GEA's
// operator algebra — the physical-design counterpart of the rotated
// TAGS relation (thesis §4.6.1) for the in-memory engine. A Store
// slices a sage.Dataset's library axis into fixed-size blocks; inside
// each block every tag's counts are one compressed column (run-length,
// sparse or raw, whichever is smallest), and a zone map summarises the
// block (per-column min/max, presence and NaN bitmaps, global count
// bounds) so selective scans skip blocks wholesale.
//
// The tag "dictionary" is the store's Tags slice: columns are
// addressed by ordinal, and ordinal↔TagID is exactly the dataset's
// sorted tag universe, so a tag column costs one int per reference
// rather than a repeated string.
//
// Everything here sits behind an equivalence wall: decode restores the
// exact bit patterns encode saw (NaNs and signed zeros included), zone
// pruning is conservative (a pruned block provably contains no
// qualifying row, see PruneBlock), and block edges are a pure function
// of the row count — never of construction history — so the
// incremental ingestion path (Advance) and a from-scratch Build over
// the same data produce reflect.DeepEqual-identical stores.
package columnar

import (
	"math"

	"gea/internal/sage"
)

// DefaultBlockRows is the default block height, in libraries. SAGE
// corpora are short and wide (tens to hundreds of libraries over tens
// of thousands of tags), so blocks partition the library axis finely
// enough that tissue-grouped corpora put each tissue in its own few
// blocks — the shape zone maps prune best.
const DefaultBlockRows = 8

// Config parameterises Build.
type Config struct {
	// BlockRows is the block height; <= 0 selects DefaultBlockRows.
	BlockRows int
}

func (cfg Config) blockRows() int {
	if cfg.BlockRows <= 0 {
		return DefaultBlockRows
	}
	return cfg.BlockRows
}

// ZoneMap summarises one block for pruning. All float bounds exclude
// NaNs (a column whose values are all NaN keeps the +Inf/-Inf
// sentinels); the HasNaN bitmap records where NaNs hide so PruneBlock
// never prunes past them.
type ZoneMap struct {
	// MinCount/MaxCount bound every non-NaN value in the block, the
	// fold of ColMin/ColMax.
	MinCount float64
	MaxCount float64
	// ColMin/ColMax bound each column's non-NaN values.
	ColMin []float64
	ColMax []float64
	// Present is a column bitset: bit j set iff column j holds any
	// value whose bits are not +0 (the tag "presence bitmap").
	Present []uint64
	// HasNaN is a column bitset: bit j set iff column j holds a NaN.
	HasNaN []uint64
}

// Block is one sealed horizontal slice of the store: rows [Lo, Hi) of
// the dataset, one encoded column per tag.
type Block struct {
	Lo, Hi int
	Cols   []Column
	Zone   ZoneMap
}

// NumRows returns the block height.
func (b *Block) NumRows() int { return b.Hi - b.Lo }

// Store is the columnar view of one dataset.
type Store struct {
	// BlockRows is the block height the store was built with.
	BlockRows int
	// NumRows/NumCols mirror the source dataset's dimensions.
	NumRows int
	NumCols int
	// Tags is the column dictionary: Tags[j] is the tag of column j,
	// identical to the source dataset's sorted tag universe.
	Tags []sage.TagID
	// Blocks partition rows [0, NumRows): block k covers
	// [k*BlockRows, min((k+1)*BlockRows, NumRows)).
	Blocks []Block
}

// NumBlocks returns the block count.
func (st *Store) NumBlocks() int { return len(st.Blocks) }

// Edges returns the block boundary positions — len(Blocks)+1 ascending
// values from 0 to NumRows — the shape shard.ForBlocks consumes.
func (st *Store) Edges() []int {
	edges := make([]int, len(st.Blocks)+1)
	for i := range st.Blocks {
		edges[i] = st.Blocks[i].Lo
	}
	edges[len(st.Blocks)] = st.NumRows
	return edges
}

// bitset helpers: one uint64 word per 64 columns.

func bitsetWords(n int) int { return (n + 63) / 64 }

func bitSet(bs []uint64, i int) { bs[i/64] |= 1 << (uint(i) % 64) }

// BitGet reports whether bit i of the bitset is set.
func BitGet(bs []uint64, i int) bool { return bs[i/64]&(1<<(uint(i)%64)) != 0 }

// Build constructs the columnar view of d. The result depends only on
// d's contents and cfg, never on how d was assembled.
func Build(d *sage.Dataset, cfg Config) *Store {
	br := cfg.blockRows()
	n := d.NumLibraries()
	st := &Store{
		BlockRows: br,
		NumRows:   n,
		NumCols:   d.NumTags(),
		Tags:      d.Tags,
	}
	nblocks := (n + br - 1) / br
	st.Blocks = make([]Block, 0, nblocks)
	scratch := make([]float64, br)
	for lo := 0; lo < n; lo += br {
		hi := lo + br
		if hi > n {
			hi = n
		}
		st.Blocks = append(st.Blocks, buildBlock(d, lo, hi, scratch))
	}
	return st
}

// buildBlock encodes rows [lo, hi) of d. scratch must hold hi-lo
// values and is reused across columns.
func buildBlock(d *sage.Dataset, lo, hi int, scratch []float64) Block {
	ncols := d.NumTags()
	b := Block{
		Lo:   lo,
		Hi:   hi,
		Cols: make([]Column, ncols),
		Zone: newZone(ncols),
	}
	vals := scratch[:hi-lo]
	for j := 0; j < ncols; j++ {
		for i := lo; i < hi; i++ {
			vals[i-lo] = d.Expr[i][j]
		}
		b.Cols[j] = Encode(vals)
		zoneColumn(&b.Zone, j, vals)
	}
	b.Zone.fold()
	return b
}

func newZone(ncols int) ZoneMap {
	z := ZoneMap{
		ColMin:  make([]float64, ncols),
		ColMax:  make([]float64, ncols),
		Present: make([]uint64, bitsetWords(ncols)),
		HasNaN:  make([]uint64, bitsetWords(ncols)),
	}
	for j := range z.ColMin {
		z.ColMin[j] = math.Inf(1)
		z.ColMax[j] = math.Inf(-1)
	}
	return z
}

// zoneColumn folds one column's values into the zone map.
func zoneColumn(z *ZoneMap, j int, vals []float64) {
	for _, v := range vals {
		if math.IsNaN(v) {
			bitSet(z.HasNaN, j)
			bitSet(z.Present, j)
			continue
		}
		if math.Float64bits(v) != 0 {
			bitSet(z.Present, j)
		}
		if v < z.ColMin[j] {
			z.ColMin[j] = v
		}
		if v > z.ColMax[j] {
			z.ColMax[j] = v
		}
	}
}

// fold derives the block-global count bounds from the per-column ones.
func (z *ZoneMap) fold() {
	z.MinCount = math.Inf(1)
	z.MaxCount = math.Inf(-1)
	for j := range z.ColMin {
		if z.ColMin[j] < z.MinCount {
			z.MinCount = z.ColMin[j]
		}
		if z.ColMax[j] > z.MaxCount {
			z.MaxCount = z.ColMax[j]
		}
	}
}

// Advance derives the columnar view of next from the view of its
// predecessor: blocks of next that are provably identical to a sealed
// prev block — fully below prev's row count, not clipped by prev's
// tail, and free of rewritten rows — are reused column-by-column
// (remapped through the tag dictionaries) instead of re-encoded; the
// rest are rebuilt from next. affected reports rows of next whose
// contents may differ from the same row of prev; rows at or past
// prev's row count are implicitly new.
//
// Reuse is sound for tags absent from prev only because of ingestion's
// invariant: a library untouched by an append has raw count zero for
// every tag newly admitted to the universe, so those columns are
// all-zero in reused blocks and are synthesised by encoding zeros —
// exactly what Build would produce. The result is DeepEqual-identical
// to Build(next, cfg).
func Advance(prev *Store, next *sage.Dataset, affected func(row int) bool, cfg Config) *Store {
	br := cfg.blockRows()
	if prev == nil || prev.BlockRows != br {
		return Build(next, cfg)
	}
	n := next.NumLibraries()
	st := &Store{
		BlockRows: br,
		NumRows:   n,
		NumCols:   next.NumTags(),
		Tags:      next.Tags,
	}
	oldCol := make(map[sage.TagID]int, len(prev.Tags))
	for j, t := range prev.Tags {
		oldCol[t] = j
	}
	scratch := make([]float64, br)
	var zeroCol *Column // shared all-zero column for full-height blocks
	for k, lo := 0, 0; lo < n; k, lo = k+1, lo+br {
		hi := lo + br
		if hi > n {
			hi = n
		}
		if ok := k < len(prev.Blocks) && prev.Blocks[k].Hi == hi; ok {
			dirty := false
			for i := lo; i < hi; i++ {
				if affected(i) {
					dirty = true
					break
				}
			}
			if !dirty {
				st.Blocks = append(st.Blocks, remapBlock(&prev.Blocks[k], next, oldCol, &zeroCol))
				continue
			}
		}
		st.Blocks = append(st.Blocks, buildBlock(next, lo, hi, scratch))
	}
	return st
}

// remapBlock rebuilds a sealed block's columns in next's tag order,
// copying columns of tags prev knew and synthesising all-zero columns
// for tags it did not.
func remapBlock(pb *Block, next *sage.Dataset, oldCol map[sage.TagID]int, zeroCol **Column) Block {
	ncols := next.NumTags()
	b := Block{
		Lo:   pb.Lo,
		Hi:   pb.Hi,
		Cols: make([]Column, ncols),
		Zone: newZone(ncols),
	}
	for j, t := range next.Tags {
		if oj, ok := oldCol[t]; ok {
			b.Cols[j] = pb.Cols[oj]
			b.Zone.ColMin[j] = pb.Zone.ColMin[oj]
			b.Zone.ColMax[j] = pb.Zone.ColMax[oj]
			if BitGet(pb.Zone.Present, oj) {
				bitSet(b.Zone.Present, j)
			}
			if BitGet(pb.Zone.HasNaN, oj) {
				bitSet(b.Zone.HasNaN, j)
			}
			continue
		}
		if *zeroCol == nil {
			z := Encode(make([]float64, pb.Hi-pb.Lo))
			*zeroCol = &z
		}
		b.Cols[j] = **zeroCol
		b.Zone.ColMin[j] = 0
		b.Zone.ColMax[j] = 0
	}
	b.Zone.fold()
	return b
}

// Of returns the columnar view of d, building and memoising it on
// first use — the single row→columnar conversion point. Operators
// that want opportunistic columnar execution use Peek instead, so a
// dataset only pays the build cost once someone opts in.
func Of(d *sage.Dataset) *Store {
	if st := Peek(d); st != nil {
		return st
	}
	st := Build(d, Config{})
	sage.AttachView(d, st)
	return st
}

// Peek returns d's memoised columnar view, or nil if none was built.
func Peek(d *sage.Dataset) *Store {
	st, _ := sage.ViewOf(d).(*Store)
	return st
}

// Adopt memoises an externally built store (e.g. ingestion's
// incrementally advanced one) as d's columnar view.
func Adopt(d *sage.Dataset, st *Store) {
	if d != nil && st != nil {
		sage.AttachView(d, st)
	}
}

// Info summarises a store for observability.
type Info struct {
	Blocks       int
	EncodedBytes int64
	RawBytes     int64
	// ColsByEnc counts columns per encoding, indexed by Encoding.
	ColsByEnc [3]int64
}

// Stat computes the store's compression summary.
func Stat(st *Store) Info {
	var inf Info
	inf.Blocks = len(st.Blocks)
	for i := range st.Blocks {
		b := &st.Blocks[i]
		for j := range b.Cols {
			c := &b.Cols[j]
			inf.EncodedBytes += c.EncodedBytes()
			inf.RawBytes += c.RawBytes()
			inf.ColsByEnc[c.Enc]++
		}
	}
	return inf
}

package columnar

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"gea/internal/interval"
	"gea/internal/obs"
	"gea/internal/sage"
)

// testTags is a pool of valid tag IDs for fixture datasets.
var testTags = []sage.TagID{
	sage.MustParseTag("AAAAAAAAAA"),
	sage.MustParseTag("CCCCCCCCCC"),
	sage.MustParseTag("GGGGGGGGGG"),
	sage.MustParseTag("TTTTTTTTTT"),
	sage.MustParseTag("ACGTACGTAC"),
}

// fixtureDataset builds an nlibs x ntags dataset whose counts come from
// fill(row, col); ntags must be <= len(testTags).
func fixtureDataset(nlibs, ntags int, fill func(i, j int) float64) *sage.Dataset {
	c := &sage.Corpus{}
	for i := 0; i < nlibs; i++ {
		l := sage.NewLibrary(sage.LibraryMeta{
			ID: i + 1, Name: fmt.Sprintf("L%03d", i), Tissue: "brain",
			State: sage.Cancer, Source: sage.BulkTissue,
		})
		for j := 0; j < ntags; j++ {
			if v := fill(i, j); v != 0 {
				l.Add(testTags[j], v)
			}
		}
		c.Libraries = append(c.Libraries, l)
	}
	return sage.BuildWithTags(c, testTags[:ntags])
}

func TestBuildShape(t *testing.T) {
	d := fixtureDataset(19, 3, func(i, j int) float64 { return float64(i*10 + j) })
	st := Build(d, Config{})
	if st.BlockRows != DefaultBlockRows || st.NumRows != 19 || st.NumCols != 3 {
		t.Fatalf("store shape: %+v", st)
	}
	if st.NumBlocks() != 3 {
		t.Fatalf("19 rows in 8-row blocks: %d blocks, want 3", st.NumBlocks())
	}
	wantEdges := []int{0, 8, 16, 19}
	if got := st.Edges(); !reflect.DeepEqual(got, wantEdges) {
		t.Fatalf("edges %v, want %v", got, wantEdges)
	}
	// Every block decodes back to the dataset slice, column by column.
	dst := make([]float64, DefaultBlockRows)
	for k := range st.Blocks {
		b := &st.Blocks[k]
		for j := 0; j < st.NumCols; j++ {
			b.Decode(j, dst)
			for i := b.Lo; i < b.Hi; i++ {
				if dst[i-b.Lo] != d.Expr[i][j] {
					t.Fatalf("block %d col %d row %d: decoded %v, want %v",
						k, j, i, dst[i-b.Lo], d.Expr[i][j])
				}
			}
		}
	}
}

// TestZonePruneSoundness is the central safety property: whenever
// PruneBlock says a block cannot match, brute force over the block's
// actual values must find no row that passes every conjunct — under
// hostile values (NaN, -0, infinities) and hostile bounds (inverted,
// NaN) alike.
func TestZonePruneSoundness(t *testing.T) {
	hostile := []float64{0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1), 1, 5, 100, -3}
	pruned, scanned := 0, 0
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nrows, ncols := 1+rng.Intn(12), 1+rng.Intn(4)
		vals := make([][]float64, ncols) // column-major
		z := newZone(ncols)
		for j := 0; j < ncols; j++ {
			col := make([]float64, nrows)
			for i := range col {
				col[i] = hostile[rng.Intn(len(hostile))]
			}
			vals[j] = col
			zoneColumn(&z, j, col)
		}
		z.fold()

		conds := make([]RangeCond, 1+rng.Intn(3))
		for ci := range conds {
			lo, hi := hostile[rng.Intn(len(hostile))], hostile[rng.Intn(len(hostile))]
			conds[ci] = RangeCond{Col: rng.Intn(ncols+1) - 1, Lo: lo, Hi: hi}
		}
		if !PruneBlock(&z, conds) {
			scanned++
			continue
		}
		pruned++
		for i := 0; i < nrows; i++ {
			ok := true
			for _, cd := range conds {
				v := 0.0
				if cd.Col >= 0 {
					v = vals[cd.Col][i]
				}
				if !cd.Matches(v) {
					ok = false
					break
				}
			}
			if ok {
				t.Fatalf("seed %d: block pruned but row %d qualifies (conds %+v, zone %+v)",
					seed, i, conds, z)
			}
		}
	}
	if pruned == 0 || scanned == 0 {
		t.Fatalf("degenerate walk: %d pruned, %d scanned — property never exercised both arms", pruned, scanned)
	}
}

// TestIntervalZoneSoundness is the same property for the intensional
// zone maps: a pruned zone must contain no row whose range satisfies
// the relation, for all thirteen Allen relations and the broad overlap,
// including NaN-endpoint rows and queries.
func TestIntervalZoneSoundness(t *testing.T) {
	endpoints := []float64{-10, -1, 0, 1, 2, 5, 10, 100, math.NaN(), math.Inf(1), math.Inf(-1)}
	pruned, scanned := 0, 0
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ivs := make([]interval.Interval, 1+rng.Intn(40))
		for i := range ivs {
			a, b := endpoints[rng.Intn(len(endpoints))], endpoints[rng.Intn(len(endpoints))]
			if a > b {
				a, b = b, a
			}
			ivs[i] = interval.Interval{Min: a, Max: b}
		}
		zones := IntervalZones(ivs, 16)
		q := interval.Interval{Min: endpoints[rng.Intn(len(endpoints))], Max: endpoints[rng.Intn(len(endpoints))]}
		if q.Min > q.Max {
			q.Min, q.Max = q.Max, q.Min
		}
		for zi := range zones {
			z := &zones[zi]
			for _, rel := range interval.Relations {
				if !z.CanPrune(rel, false, q) {
					scanned++
					continue
				}
				pruned++
				for i := z.Lo; i < z.Hi; i++ {
					if interval.Holds(rel, ivs[i], q) {
						t.Fatalf("seed %d zone %d: pruned %v but row %d (%v vs %v) holds",
							seed, zi, rel, i, ivs[i], q)
					}
				}
			}
			if z.CanPrune(0, true, q) {
				pruned++
				for i := z.Lo; i < z.Hi; i++ {
					if interval.AnyOverlap(ivs[i], q) {
						t.Fatalf("seed %d zone %d: broad-pruned but row %d (%v vs %v) overlaps",
							seed, zi, i, ivs[i], q)
					}
				}
			} else {
				scanned++
			}
		}
	}
	if pruned == 0 || scanned == 0 {
		t.Fatalf("degenerate walk: %d pruned, %d scanned", pruned, scanned)
	}
}

// TestAdvanceMatchesBuild pins the incremental ingestion contract:
// advancing a store over an append (new rows, new tags, a rewritten old
// row) is DeepEqual-identical to building from scratch.
func TestAdvanceMatchesBuild(t *testing.T) {
	baseFill := func(i, j int) float64 {
		if j == 0 {
			return float64(100 + i)
		}
		return float64((i * j) % 4)
	}
	base := fixtureDataset(11, 3, baseFill)
	prev := Build(base, Config{})

	// Pure append: 8 new libraries carrying two new tags; old rows
	// untouched (new tags are zero there, ingestion's invariant).
	next := fixtureDataset(19, 5, func(i, j int) float64 {
		if i < 11 {
			if j < 3 {
				return baseFill(i, j)
			}
			return 0
		}
		return float64(i + j*7)
	})
	got := Advance(prev, next, func(row int) bool { return row >= 11 }, Config{})
	want := Build(next, Config{})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("append: Advance differs from Build:\ngot:  %+v\nwant: %+v", got, want)
	}
	// Block 0 must have been reused, not rebuilt: its columns share
	// backing arrays with prev's, whatever the encoding.
	shared := false
	pc, gc := &prev.Blocks[0].Cols[0], &got.Blocks[0].Cols[0]
	switch {
	case len(pc.Raw) > 0:
		shared = len(gc.Raw) > 0 && &gc.Raw[0] == &pc.Raw[0]
	case len(pc.Vals) > 0:
		shared = len(gc.Vals) > 0 && &gc.Vals[0] == &pc.Vals[0]
	default:
		t.Fatalf("fixture column 0 encoded to nothing: %+v", pc)
	}
	if !shared {
		t.Fatal("append: clean sealed block was re-encoded instead of reused")
	}

	// A rewritten old row dirties exactly its block.
	dirty := fixtureDataset(19, 5, func(i, j int) float64 {
		if i == 2 && j == 1 {
			return 999
		}
		if i < 11 {
			if j < 3 {
				return baseFill(i, j)
			}
			return 0
		}
		return float64(i + j*7)
	})
	got = Advance(prev, dirty, func(row int) bool { return row == 2 || row >= 11 }, Config{})
	want = Build(dirty, Config{})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("dirty row: Advance differs from Build")
	}

	// A block-height change forces a full rebuild.
	got = Advance(prev, next, func(int) bool { return false }, Config{BlockRows: 4})
	want = Build(next, Config{BlockRows: 4})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("blockrows change: Advance differs from Build")
	}
	// And a nil predecessor.
	if !reflect.DeepEqual(Advance(nil, next, nil, Config{}), Build(next, Config{})) {
		t.Fatal("nil prev: Advance differs from Build")
	}
}

// TestScanBlocksAndFilterAggregate drives the batch kernels over a
// bimodal layout and checks both the skip accounting and the fused
// aggregate against a brute-force fold.
func TestScanBlocksAndFilterAggregate(t *testing.T) {
	d := fixtureDataset(32, 3, func(i, j int) float64 {
		switch j {
		case 0:
			if i < 16 {
				return float64(100 + i)
			}
			return float64(i % 3)
		default:
			return float64(10 + i%5)
		}
	})
	st := Build(d, Config{})
	conds := []RangeCond{{Col: 0, Lo: 90, Hi: 130}}

	visited := 0
	stats, err := ScanBlocks(st, 0, st.NumBlocks(), conds, func(b *Block) error {
		visited++
		if b.Lo >= 16 {
			t.Fatalf("visited block [%d,%d): its zone provably fails the condition", b.Lo, b.Hi)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != 2 || stats.BlocksScanned != 2 || stats.BlocksSkipped != 2 {
		t.Fatalf("scan: visited %d, stats %+v; want 2 scanned, 2 skipped", visited, stats)
	}

	agg, fstats := FilterAggregate(st, conds, 1)
	var want FilterAgg
	first := true
	for i := 0; i < 32; i++ {
		if !conds[0].Matches(d.Expr[i][0]) {
			continue
		}
		v := d.Expr[i][1]
		want.Count++
		want.Sum += v
		if first || v < want.Min {
			want.Min = v
		}
		if first || v > want.Max {
			want.Max = v
		}
		first = false
	}
	if agg != want {
		t.Fatalf("fused aggregate %+v, brute force %+v", agg, want)
	}
	if fstats.BlocksSkipped != 2 || fstats.BytesDecoded <= 0 {
		t.Fatalf("fused stats %+v", fstats)
	}

	// An error from visit aborts the scan.
	bad := fmt.Errorf("boom")
	if _, err := ScanBlocks(st, 0, st.NumBlocks(), nil, func(*Block) error { return bad }); err != bad {
		t.Fatalf("visit error not propagated: %v", err)
	}
}

func TestViewMemoisation(t *testing.T) {
	d := fixtureDataset(10, 2, func(i, j int) float64 { return float64(i + j) })
	if Peek(d) != nil {
		t.Fatal("fresh dataset has a view")
	}
	st := Of(d)
	if st == nil || Peek(d) != st || Of(d) != st {
		t.Fatal("Of did not memoise the store")
	}
	st2 := Build(d, Config{BlockRows: 4})
	Adopt(d, st2)
	if Peek(d) != st2 {
		t.Fatal("Adopt did not replace the view")
	}
	sage.DropView(d)
	if Peek(d) != nil {
		t.Fatal("DropView left the view behind")
	}
}

func TestStatAndPublishMetrics(t *testing.T) {
	d := fixtureDataset(20, 3, func(i, j int) float64 {
		if j == 2 {
			return 0 // all-zero column: sparse
		}
		return float64(j) // constant columns: rle
	})
	st := Build(d, Config{})
	inf := Stat(st)
	if inf.Blocks != 3 {
		t.Fatalf("Stat blocks = %d", inf.Blocks)
	}
	if total := inf.ColsByEnc[EncRLE] + inf.ColsByEnc[EncSparse] + inf.ColsByEnc[EncRaw]; total != int64(3*st.NumCols) {
		t.Fatalf("ColsByEnc %v does not cover %d columns", inf.ColsByEnc, 3*st.NumCols)
	}
	if inf.EncodedBytes >= inf.RawBytes {
		t.Fatalf("constant columns did not compress: %d encoded vs %d raw", inf.EncodedBytes, inf.RawBytes)
	}

	reg := obs.NewRegistry()
	PublishMetrics(reg, st)
	snap := reg.Snapshot()
	gauges := map[string]int64{}
	for _, g := range snap.Gauges {
		gauges[g.Name] = g.Value
	}
	if gauges["columnar.blocks"] != int64(inf.Blocks) ||
		gauges["columnar.encoded_bytes"] != inf.EncodedBytes ||
		gauges["columnar.raw_bytes"] != inf.RawBytes {
		t.Fatalf("published gauges %v, want Stat values %+v", gauges, inf)
	}
	found := false
	for _, h := range snap.Histograms {
		if h.Name == "columnar.encode_ratio" {
			found = true
			if h.Count != int64(inf.Blocks) {
				t.Fatalf("encode_ratio observed %d blocks, want %d", h.Count, inf.Blocks)
			}
		}
	}
	if !found {
		t.Fatal("encode_ratio histogram missing")
	}
	// Nil registry and store are no-ops, not panics.
	PublishMetrics(nil, st)
	PublishMetrics(reg, nil)
}

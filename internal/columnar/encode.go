package columnar

import "math"

// Encoding identifies the physical layout of one block column. The
// encoder picks whichever of the three is smallest for the column's
// actual values; every choice is a deterministic pure function of the
// value sequence, so two stores built over bit-identical data — e.g.
// the incremental and from-scratch ingestion paths — are themselves
// bit-identical (reflect.DeepEqual).
type Encoding uint8

// The three physical layouts.
const (
	// EncRLE is run-length encoding: (value, run) pairs. Run equality
	// is decided on the value's bit pattern (math.Float64bits), so NaN
	// runs coalesce and -0 never merges with +0 — decode restores the
	// exact input bits.
	EncRLE Encoding = iota
	// EncSparse is the delta-encoded sparse layout: row gaps between
	// non-zero entries plus their values; everything else decodes to +0.
	// Only values whose bit pattern is exactly +0 count as zero, so a
	// stored -0 (or NaN) survives the round trip bit-for-bit.
	EncSparse
	// EncRaw stores the values verbatim — the fallback when neither
	// compressed form wins.
	EncRaw
)

// String names the encoding for stats output.
func (e Encoding) String() string {
	switch e {
	case EncRLE:
		return "rle"
	case EncSparse:
		return "sparse"
	default:
		return "raw"
	}
}

// Column is one encoded count column of a block. Exactly the fields of
// the active encoding are populated; N is always the decoded length.
type Column struct {
	Enc Encoding
	N   int
	// Raw holds the verbatim values (EncRaw).
	Raw []float64
	// Vals holds the run values (EncRLE) or the non-zero values
	// (EncSparse).
	Vals []float64
	// Runs holds the run lengths, parallel to Vals (EncRLE).
	Runs []uint32
	// Gaps holds the delta-encoded row positions of Vals (EncSparse):
	// Gaps[0] is the first non-zero row, Gaps[k] the distance from the
	// previous non-zero row.
	Gaps []uint32
}

// rleEntryBytes and sparseEntryBytes cost one (float64, uint32) pair.
const (
	rleEntryBytes    = 12
	sparseEntryBytes = 12
	rawEntryBytes    = 8
)

// Encode compresses one column of values, choosing the smallest of the
// three layouts (ties prefer RLE, then sparse — the compressed forms
// decode sequentially and deserve the benefit of a draw).
func Encode(values []float64) Column {
	n := len(values)
	runs := 0
	nonzero := 0
	var prev uint64
	for i, v := range values {
		bits := math.Float64bits(v)
		if i == 0 || bits != prev {
			runs++
		}
		prev = bits
		if bits != 0 {
			nonzero++
		}
	}
	rleSize := runs * rleEntryBytes
	sparseSize := nonzero * sparseEntryBytes
	rawSize := n * rawEntryBytes
	switch {
	case rleSize <= sparseSize && rleSize <= rawSize:
		return encodeRLE(values, runs)
	case sparseSize <= rawSize:
		return encodeSparse(values, nonzero)
	default:
		return Column{Enc: EncRaw, N: n, Raw: append([]float64(nil), values...)}
	}
}

func encodeRLE(values []float64, runs int) Column {
	c := Column{Enc: EncRLE, N: len(values),
		Vals: make([]float64, 0, runs), Runs: make([]uint32, 0, runs)}
	for i := 0; i < len(values); {
		j := i + 1
		bits := math.Float64bits(values[i])
		for j < len(values) && math.Float64bits(values[j]) == bits {
			j++
		}
		c.Vals = append(c.Vals, values[i])
		c.Runs = append(c.Runs, uint32(j-i))
		i = j
	}
	return c
}

func encodeSparse(values []float64, nonzero int) Column {
	c := Column{Enc: EncSparse, N: len(values),
		Vals: make([]float64, 0, nonzero), Gaps: make([]uint32, 0, nonzero)}
	last := -1
	for i, v := range values {
		if math.Float64bits(v) == 0 {
			continue
		}
		c.Vals = append(c.Vals, v)
		c.Gaps = append(c.Gaps, uint32(i-last))
		last = i
	}
	return c
}

// AppendTo decodes the column into dst, which must hold at least N
// values; exactly dst[:N] is overwritten. Decoding restores the exact
// bit pattern Encode saw, including NaNs and signed zeros.
func (c *Column) AppendTo(dst []float64) {
	switch c.Enc {
	case EncRaw:
		copy(dst, c.Raw)
	case EncRLE:
		pos := 0
		for k, v := range c.Vals {
			run := int(c.Runs[k])
			for i := 0; i < run; i++ {
				dst[pos+i] = v
			}
			pos += run
		}
	default: // EncSparse
		for i := 0; i < c.N; i++ {
			dst[i] = 0
		}
		pos := -1
		for k, v := range c.Vals {
			pos += int(c.Gaps[k])
			dst[pos] = v
		}
	}
}

// EncodedBytes is the column's compressed footprint, the quantity the
// columnar.* byte counters and the encode-ratio histogram are built
// from.
func (c *Column) EncodedBytes() int64 {
	switch c.Enc {
	case EncRaw:
		return int64(len(c.Raw)) * rawEntryBytes
	case EncRLE:
		return int64(len(c.Vals)) * rleEntryBytes
	default:
		return int64(len(c.Vals)) * sparseEntryBytes
	}
}

// RawBytes is the column's uncompressed footprint (8 bytes per value).
func (c *Column) RawBytes() int64 { return int64(c.N) * rawEntryBytes }

package columnar

import (
	"math"
	"math/rand"
	"testing"
)

// hostileValues are the encoder's adversarial alphabet: every value
// whose bit pattern a sloppy codec would normalise away — NaNs with
// distinct payloads, both signed zeros, infinities and denormals —
// plus ordinary counts. Property runs draw from this set so round-trip
// fidelity is tested where it actually breaks.
var hostileValues = []float64{
	0, math.Copysign(0, -1),
	math.NaN(), math.Float64frombits(0x7ff8_0000_0000_0001),
	math.Inf(1), math.Inf(-1),
	math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	math.MaxFloat64, -math.MaxFloat64,
	1, -1, 42.5, 1e-300, 3,
}

// bitsEqual compares slices on bit patterns, the only equality that
// distinguishes -0 from +0 and survives NaN.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func roundTrip(t *testing.T, label string, values []float64) Column {
	t.Helper()
	c := Encode(values)
	if c.N != len(values) {
		t.Fatalf("%s: N = %d, want %d", label, c.N, len(values))
	}
	dst := make([]float64, len(values))
	c.AppendTo(dst)
	if !bitsEqual(values, dst) {
		t.Fatalf("%s (%v): decode is not bit-identical:\n in: %v\nout: %v", label, c.Enc, values, dst)
	}
	return c
}

// TestEncodeRoundTripHostile pins decode fidelity on handpicked worst
// cases and checks the encoder picks the layout its own cost model says
// is smallest.
func TestEncodeRoundTripHostile(t *testing.T) {
	cases := map[string]struct {
		values []float64
		want   Encoding
	}{
		"empty":          {nil, EncRLE}, // all layouts cost 0; ties prefer RLE
		"all-zero":       {make([]float64, 64), EncSparse},
		"one-long-run":   {[]float64{7, 7, 7, 7, 7, 7, 7, 7}, EncRLE},
		"alternating":    {[]float64{1, 2, 1, 2, 1, 2, 1, 2}, EncRaw},
		"single-spike":   {[]float64{0, 0, 0, 0, 0, 9, 0, 0}, EncSparse},
		"nan-run":        {[]float64{math.NaN(), math.NaN(), math.NaN(), math.NaN()}, EncRLE},
		"negzero-run":    {[]float64{math.Copysign(0, -1), math.Copysign(0, -1), math.Copysign(0, -1), math.Copysign(0, -1)}, EncRLE},
		"negzero-sparse": {[]float64{0, 0, 0, 0, 0, math.Copysign(0, -1), 0, 0}, EncSparse},
		"inf-pair":       {[]float64{math.Inf(1), math.Inf(-1)}, EncRaw},
		"denormals":      {[]float64{math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64, 0, 0, 0, 0, 0, 0}, EncSparse},
	}
	for label, tc := range cases {
		c := roundTrip(t, label, tc.values)
		if c.Enc != tc.want {
			t.Errorf("%s: encoded as %v, want %v", label, c.Enc, tc.want)
		}
	}

	// -0 runs must not merge with +0 runs: bit-pattern equality keeps
	// them separate, so this column has exactly three runs.
	neg := math.Copysign(0, -1)
	c := roundTrip(t, "mixed-zeros", []float64{0, 0, 0, neg, neg, neg, 1, 1, 1})
	if c.Enc != EncRLE || len(c.Vals) != 3 {
		t.Errorf("mixed-zeros: got %v with %d runs, want rle with 3 runs", c.Enc, len(c.Vals))
	}
}

// TestEncodeRoundTripProperty fuzzes the codec over seeded random
// columns drawn from the hostile alphabet with run-heavy, sparse-heavy
// and uniform mixes, asserting bit-exact round trips and that the
// chosen layout is never larger than the alternatives.
func TestEncodeRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		values := make([]float64, n)
		mode := seed % 3
		for i := 0; i < n; {
			v := hostileValues[rng.Intn(len(hostileValues))]
			run := 1
			switch mode {
			case 0: // run-heavy
				run = 1 + rng.Intn(20)
			case 1: // sparse-heavy: mostly +0
				if rng.Float64() < 0.85 {
					v = 0
				}
			}
			for k := 0; k < run && i < n; k++ {
				values[i] = v
				i++
			}
		}
		c := roundTrip(t, "property", values)

		// The cost model must have picked the minimum.
		runs, nonzero := 0, 0
		var prev uint64
		for i, v := range values {
			bits := math.Float64bits(v)
			if i == 0 || bits != prev {
				runs++
			}
			prev = bits
			if bits != 0 {
				nonzero++
			}
		}
		min := int64(runs) * rleEntryBytes
		if s := int64(nonzero) * sparseEntryBytes; s < min {
			min = s
		}
		if r := int64(n) * rawEntryBytes; r < min {
			min = r
		}
		if got := c.EncodedBytes(); got != min {
			t.Fatalf("seed %d: encoded %d bytes, the minimum layout costs %d", seed, got, min)
		}
		if c.RawBytes() != int64(n)*rawEntryBytes {
			t.Fatalf("seed %d: RawBytes = %d", seed, c.RawBytes())
		}
	}
}

// TestEncodeDeterministic pins that encoding is a pure function of the
// value bit patterns — the property store equality (DeepEqual between
// incremental and rebuilt stores) leans on.
func TestEncodeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	values := make([]float64, 100)
	for i := range values {
		values[i] = hostileValues[rng.Intn(len(hostileValues))]
	}
	a, b := Encode(values), Encode(append([]float64(nil), values...))
	if a.Enc != b.Enc || a.N != b.N ||
		!bitsEqual(a.Raw, b.Raw) || !bitsEqual(a.Vals, b.Vals) ||
		len(a.Runs) != len(b.Runs) || len(a.Gaps) != len(b.Gaps) {
		t.Fatalf("same values encoded differently: %+v vs %+v", a, b)
	}
}

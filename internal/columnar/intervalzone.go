package columnar

import (
	"math"

	"gea/internal/interval"
)

// Interval zone maps: the zone-map idea applied to the intensional
// world. A SUMY table is a sorted run of per-tag ranges; an Allen
// relation selection ("every tag whose range is before [10, 700]")
// scans all of them. IntervalZones summarises consecutive row groups
// by the extrema of their endpoints so the selection can skip whole
// groups when the zone proves the relation cannot hold inside.
//
// All folds use strict < / > comparisons, so rows with NaN endpoints
// drop out of the zone bounds. That is sound for every relation this
// file prunes: each prune rule below is justified by a necessary
// endpoint comparison that held TRUE for a matching row (Classify
// reaches a relation only through true comparisons, which NaN never
// satisfies), so any matching row's endpoints are non-NaN and inside
// the folded bounds. Relations a NaN-endpoint row CAN classify as
// (interval.Classify's default arm is OverlappedBy) are never pruned.

// DefaultZoneRows is how many consecutive SUMY rows one interval zone
// summarises.
const DefaultZoneRows = 64

// IntervalZone bounds the endpoints of rows [Lo, Hi) of the scanned
// run: MinMin/MaxMin bound the ranges' Min endpoints, MinMax/MaxMax
// the Max endpoints, NaNs excluded (+Inf/-Inf when every endpoint in
// the group is NaN).
type IntervalZone struct {
	Lo, Hi int
	MinMin float64
	MaxMin float64
	MinMax float64
	MaxMax float64
}

// IntervalZones builds the zone run over ivs in groups of zoneRows
// (<= 0 selects DefaultZoneRows).
func IntervalZones(ivs []interval.Interval, zoneRows int) []IntervalZone {
	if zoneRows <= 0 {
		zoneRows = DefaultZoneRows
	}
	var zones []IntervalZone
	for lo := 0; lo < len(ivs); lo += zoneRows {
		hi := lo + zoneRows
		if hi > len(ivs) {
			hi = len(ivs)
		}
		z := IntervalZone{Lo: lo, Hi: hi,
			MinMin: math.Inf(1), MaxMin: math.Inf(-1),
			MinMax: math.Inf(1), MaxMax: math.Inf(-1)}
		for _, iv := range ivs[lo:hi] {
			if iv.Min < z.MinMin {
				z.MinMin = iv.Min
			}
			if iv.Min > z.MaxMin {
				z.MaxMin = iv.Min
			}
			if iv.Max < z.MinMax {
				z.MinMax = iv.Max
			}
			if iv.Max > z.MaxMax {
				z.MaxMax = iv.Max
			}
		}
		zones = append(zones, z)
	}
	return zones
}

// CanPrune reports whether the zone proves no row range r in the group
// satisfies relation rel against query q (broad selects the inclusive
// AnyOverlap predicate instead of the strict relation). Each rule
// negates a condition the relation makes necessary:
//
//	before       r.Max < q.Min        needs MinMax < q.Min
//	after        q.Max < r.Min        needs MaxMin > q.Max
//	meets        r.Max == q.Min       needs MinMax <= q.Min <= MaxMax
//	met-by       r.Min == q.Max       needs MinMin <= q.Max <= MaxMin
//	during       q.Min<r.Min, r.Max<q.Max  needs MaxMin > q.Min and MinMax < q.Max
//	includes     r.Min<q.Min, q.Max<r.Max  needs MinMin < q.Min and MaxMax > q.Max
//	equals       endpoints coincide   needs q.Min in [MinMin, MaxMin], q.Max in [MinMax, MaxMax]
//	broad        AnyOverlap           needs MinMin <= q.Max and MaxMax >= q.Min
//
// The remaining relations (overlaps, overlapped-by, starts, started-by,
// finishes, finished-by) are never pruned; notably overlapped-by is
// what Classify assigns to NaN-endpoint rows, so skipping it keeps NaN
// handling exact. A NaN-endpoint query makes every comparison below
// false — nothing prunes, the scan runs, and no row matches anyway.
func (z *IntervalZone) CanPrune(rel interval.Relation, broad bool, q interval.Interval) bool {
	if broad {
		return z.MinMin > q.Max || z.MaxMax < q.Min
	}
	switch rel {
	case interval.Before:
		return z.MinMax >= q.Min
	case interval.After:
		return z.MaxMin <= q.Max
	case interval.Meets:
		return q.Min < z.MinMax || q.Min > z.MaxMax
	case interval.MetBy:
		return q.Max < z.MinMin || q.Max > z.MaxMin
	case interval.During:
		return z.MaxMin <= q.Min || z.MinMax >= q.Max
	case interval.Includes:
		return z.MinMin >= q.Min || z.MaxMax <= q.Max
	case interval.Equals:
		return q.Min < z.MinMin || q.Min > z.MaxMin ||
			q.Max < z.MinMax || q.Max > z.MaxMax
	default:
		return false
	}
}

package columnar

import "gea/internal/obs"

// RangeCond is one conjunct of a populate()-style range filter over
// the store's columns: qualifying rows have Lo <= value <= Hi in
// column Col. Col == -1 stands for a tag outside the dataset's
// universe, whose value is 0 everywhere by the normalization rule.
type RangeCond struct {
	Col    int
	Lo, Hi float64
}

// Matches reports whether v passes the conjunct exactly the way the
// row engine's verification loop checks it — `v < Lo || v > Hi` fails
// — so a NaN value passes (both comparisons are false). Zone pruning
// must stay consistent with this, which is why PruneBlock refuses to
// prune on NaN-bearing columns.
func (rc RangeCond) Matches(v float64) bool {
	return !(v < rc.Lo || v > rc.Hi)
}

// PruneBlock reports whether the zone map proves no row of the block
// satisfies the conjunction. The rules, each conservative:
//
//   - Col == -1: every row's value is 0, so prune iff 0 fails the range.
//   - the column's HasNaN bit is set: never prune on this conjunct —
//     NaN rows pass any range check (see RangeCond.Matches), and the
//     min/max bounds exclude NaNs.
//   - otherwise prune iff ColMax < Lo or ColMin > Hi: every value lies
//     in [ColMin, ColMax], so the range cannot intersect it. An
//     all-zero column has ColMin = ColMax = 0 (presence bit clear) and
//     falls out of the same comparison.
//
// One excluding conjunct suffices: the filter is a conjunction.
func PruneBlock(z *ZoneMap, conds []RangeCond) bool {
	for _, cd := range conds {
		if cd.Col < 0 {
			if 0 < cd.Lo || 0 > cd.Hi {
				return true
			}
			continue
		}
		if BitGet(z.HasNaN, cd.Col) {
			continue
		}
		if z.ColMax[cd.Col] < cd.Lo || z.ColMin[cd.Col] > cd.Hi {
			return true
		}
	}
	return false
}

// ScanStats counts what a block scan touched versus skipped.
// BytesDecoded is the encoded footprint of the columns actually
// materialised — the bytes a disk-resident layout would have read.
type ScanStats struct {
	BlocksScanned int64
	BlocksSkipped int64
	BytesDecoded  int64
}

// Add accumulates other into s.
func (s *ScanStats) Add(other ScanStats) {
	s.BlocksScanned += other.BlocksScanned
	s.BlocksSkipped += other.BlocksSkipped
	s.BytesDecoded += other.BytesDecoded
}

// Decode materialises column j of the block into dst, which must hold
// at least NumRows values.
func (b *Block) Decode(j int, dst []float64) {
	b.Cols[j].AppendTo(dst[:b.Hi-b.Lo])
}

// DecodedBytes is the encoded footprint of the given columns — what a
// scan that decodes exactly those columns reads.
func (b *Block) DecodedBytes(cols []int) int64 {
	var n int64
	for _, j := range cols {
		if j >= 0 {
			n += b.Cols[j].EncodedBytes()
		}
	}
	return n
}

// ScanBlocks drives visit over the store's blocks with indices in
// [blo, bhi), consulting each zone map first: blocks the conjunction
// provably cannot match are skipped without decoding anything. This is
// the sequential batch-scan shape; the sharded operators run the same
// prune-then-visit body per shard through shard.ForBlocks.
func ScanBlocks(st *Store, blo, bhi int, conds []RangeCond, visit func(b *Block) error) (ScanStats, error) {
	var stats ScanStats
	for k := blo; k < bhi && k < len(st.Blocks); k++ {
		b := &st.Blocks[k]
		if PruneBlock(&b.Zone, conds) {
			stats.BlocksSkipped++
			continue
		}
		stats.BlocksScanned++
		if err := visit(b); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// FilterAgg is the fold of a fused filter-then-aggregate pass.
type FilterAgg struct {
	Count    int64
	Sum      float64
	Min, Max float64
}

// FilterAggregate is the fused filter-then-aggregate kernel: one pass
// over the store that zone-prunes blocks, decodes only the columns the
// conjunction and the aggregate need, and folds column aggCol over the
// qualifying rows. Min/Max are meaningful only when Count > 0.
func FilterAggregate(st *Store, conds []RangeCond, aggCol int) (FilterAgg, ScanStats) {
	agg := FilterAgg{}
	first := true
	need := make([]int, 0, len(conds)+1)
	for _, cd := range conds {
		if cd.Col >= 0 {
			need = append(need, cd.Col)
		}
	}
	need = append(need, aggCol)
	dec := make([][]float64, len(need))
	for i := range dec {
		dec[i] = make([]float64, st.BlockRows)
	}
	stats, _ := ScanBlocks(st, 0, len(st.Blocks), conds, func(b *Block) error {
		for i, j := range need {
			b.Decode(j, dec[i])
		}
		for r := 0; r < b.NumRows(); r++ {
			ok := true
			di := 0
			for _, cd := range conds {
				v := 0.0
				if cd.Col >= 0 {
					v = dec[di][r]
					di++
				}
				if !cd.Matches(v) {
					ok = false
					break
				}
			}
			di = len(need) - 1
			if !ok {
				continue
			}
			v := dec[di][r]
			agg.Count++
			agg.Sum += v
			if first || v < agg.Min {
				agg.Min = v
			}
			if first || v > agg.Max {
				agg.Max = v
			}
			first = false
		}
		return nil
	})
	for k := range st.Blocks {
		b := &st.Blocks[k]
		if !PruneBlock(&b.Zone, conds) {
			stats.BytesDecoded += b.DecodedBytes(need)
		}
	}
	return agg, stats
}

// MetricPrefix is the metric family every columnar series lives under;
// the metricname manifest covers it with the "columnar.*" wildcard.
const MetricPrefix = "columnar."

// Span-level block statistic keys. Operators report per-span counts
// under these keys (obs.Span.AddBlocks); the obs collector folds them
// into "columnar.<key>" counters.
const (
	StatBlocksScanned = "blocks_scanned"
	StatBlocksSkipped = "blocks_skipped"
	StatBytesDecoded  = "bytes_decoded"
)

// PublishMetrics records a store's static compression profile into the
// registry: block/byte gauges plus the per-block encode-ratio
// histogram (encoded bytes over raw bytes, so smaller is tighter).
func PublishMetrics(reg *obs.Registry, st *Store) {
	if reg == nil || st == nil {
		return
	}
	inf := Stat(st)
	reg.Gauge(MetricPrefix + "blocks").Set(int64(inf.Blocks))
	reg.Gauge(MetricPrefix + "encoded_bytes").Set(inf.EncodedBytes)
	reg.Gauge(MetricPrefix + "raw_bytes").Set(inf.RawBytes)
	h := reg.Histogram(MetricPrefix+"encode_ratio", obs.RatioBounds)
	for k := range st.Blocks {
		b := &st.Blocks[k]
		var enc, raw int64
		for j := range b.Cols {
			enc += b.Cols[j].EncodedBytes()
			raw += b.Cols[j].RawBytes()
		}
		if raw > 0 {
			h.Observe(float64(enc) / float64(raw))
		}
	}
}

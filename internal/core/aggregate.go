package core

import (
	"context"
	"fmt"

	"gea/internal/exec"
	"gea/internal/interval"
	"gea/internal/stats"
)

// AggregateOptions extends the basic SUMY aggregates.
type AggregateOptions struct {
	// WithMedian adds a "median" extra column. The thesis calls this out as
	// the aggregate that raises the cost from one pass to O(n log n).
	WithMedian bool
}

// Aggregate converts a cluster from its extensional form to its intensional
// form: for each tag of the Enum, the range, mean and standard deviation of
// its expression levels across the member libraries (the aggregate()
// operator of Figure 3.1, the inverse of populate).
func Aggregate(name string, e *Enum, opts AggregateOptions) (*Sumy, error) {
	s, _, err := AggregateWith(exec.Background(), name, e, opts)
	return s, err
}

// AggregateCtx is Aggregate under execution governance; on budget
// exhaustion the tags aggregated so far form a flagged partial SUMY.
func AggregateCtx(ctx context.Context, name string, e *Enum, opts AggregateOptions, lim exec.Limits) (*Sumy, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var s *Sumy
	var partial bool
	err := exec.Guard("core.Aggregate", name, func() error {
		var err error
		s, partial, err = AggregateWith(c, name, e, opts)
		return err
	})
	if err != nil {
		s = nil
	}
	return s, c.Snapshot(partial), err
}

// AggregateWith is the metered implementation; one work unit is one tag
// column aggregated.
func AggregateWith(c *exec.Ctl, name string, e *Enum, opts AggregateOptions) (*Sumy, bool, error) {
	if e.Size() == 0 {
		return nil, false, fmt.Errorf("core: aggregate %s: enum %s has no libraries", name, e.Name)
	}
	var extraCols []string
	if opts.WithMedian {
		extraCols = []string{"median"}
	}
	rows := make([]SumyRow, 0, e.NumTags())
	vals := make([]float64, e.Size())
	for j := 0; j < e.NumTags(); j++ {
		if err := c.Point(1); err != nil {
			if exec.IsBudget(err) {
				return NewSumy(name, rows, extraCols), true, nil
			}
			return nil, false, err
		}
		col := e.Cols[j]
		lo := e.Data.Expr[e.Rows[0]][col]
		hi := lo
		for i, r := range e.Rows {
			v := e.Data.Expr[r][col]
			vals[i] = v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		mean, std := stats.MeanStd(vals)
		row := SumyRow{
			Tag:   e.Data.Tags[col],
			Range: interval.Interval{Min: lo, Max: hi},
			Mean:  mean,
			Std:   std,
		}
		if opts.WithMedian {
			med, err := stats.Median(vals)
			if err != nil {
				return nil, false, err
			}
			row.Extra = map[string]float64{"median": med}
		}
		rows = append(rows, row)
	}
	return NewSumy(name, rows, extraCols), false, nil
}

// SumyPredicate decides whether a SUMY row qualifies for selection.
type SumyPredicate func(SumyRow) bool

// SelectSumy applies relational selection to a SUMY table, producing another
// SUMY table (Section 3.2.3).
func SelectSumy(name string, s *Sumy, pred SumyPredicate) *Sumy {
	var rows []SumyRow
	for _, r := range s.Rows {
		if pred(r) {
			rows = append(rows, r)
		}
	}
	return NewSumy(name, rows, s.ExtraCols)
}

// RangeRelation returns a predicate that holds when the row's range stands
// in Allen relation rel to query — the range arithmetic of Section 4.4.1.
func RangeRelation(rel interval.Relation, query interval.Interval) SumyPredicate {
	return func(r SumyRow) bool { return interval.Holds(rel, r.Range, query) }
}

// RangeAnyOverlap returns a predicate that holds when the row's range shares
// at least one point with query — the broad "overlaps" of the range-search
// GUI (Figure 4.17).
func RangeAnyOverlap(query interval.Interval) SumyPredicate {
	return func(r SumyRow) bool { return interval.AnyOverlap(r.Range, query) }
}

// ProjectSumy drops extra aggregate columns, keeping only the named ones
// (the standard projection operator on SUMY tables).
func ProjectSumy(name string, s *Sumy, keep ...string) *Sumy {
	keepSet := make(map[string]bool, len(keep))
	for _, k := range keep {
		keepSet[k] = true
	}
	var cols []string
	for _, c := range s.ExtraCols {
		if keepSet[c] {
			cols = append(cols, c)
		}
	}
	rows := make([]SumyRow, len(s.Rows))
	for i, r := range s.Rows {
		nr := r
		if len(cols) == 0 {
			nr.Extra = nil
		} else {
			nr.Extra = make(map[string]float64, len(cols))
			for _, c := range cols {
				if v, ok := r.Extra[c]; ok {
					nr.Extra[c] = v
				}
			}
		}
		rows[i] = nr
	}
	return NewSumy(name, rows, cols)
}

// MinusSumy extracts the tags appearing in a but missing in b (tag-level set
// minus, Section 3.2.3).
func MinusSumy(name string, a, b *Sumy) *Sumy {
	var rows []SumyRow
	for _, r := range a.Rows {
		if _, ok := b.Row(r.Tag); !ok {
			rows = append(rows, r)
		}
	}
	return NewSumy(name, rows, a.ExtraCols)
}

// IntersectSumy keeps the tags of a that also appear in b, with a's
// aggregates.
func IntersectSumy(name string, a, b *Sumy) *Sumy {
	var rows []SumyRow
	for _, r := range a.Rows {
		if _, ok := b.Row(r.Tag); ok {
			rows = append(rows, r)
		}
	}
	return NewSumy(name, rows, a.ExtraCols)
}

// UnionSumy concatenates a with the b-only tags (a's values win on common
// tags; extra columns from a).
func UnionSumy(name string, a, b *Sumy) *Sumy {
	rows := make([]SumyRow, 0, a.Len()+b.Len())
	rows = append(rows, a.Rows...)
	for _, r := range b.Rows {
		if _, ok := a.Row(r.Tag); !ok {
			rows = append(rows, r)
		}
	}
	return NewSumy(name, rows, a.ExtraCols)
}

package core

import (
	"context"
	"fmt"

	"gea/internal/columnar"
	"gea/internal/exec"
	"gea/internal/exec/shard"
	"gea/internal/interval"
	"gea/internal/stats"
)

// AggregateOptions extends the basic SUMY aggregates.
type AggregateOptions struct {
	// WithMedian adds a "median" extra column. The thesis calls this out as
	// the aggregate that raises the cost from one pass to O(n log n).
	WithMedian bool
	// Engine selects the evaluation engine for the per-tag column scans
	// (see Engine). The columnar engine decodes each tag's compressed
	// column block-at-a-time instead of striding the row-major Expr
	// matrix; the resulting SUMY is bit-identical.
	Engine Engine
}

// Aggregate converts a cluster from its extensional form to its intensional
// form: for each tag of the Enum, the range, mean and standard deviation of
// its expression levels across the member libraries (the aggregate()
// operator of Figure 3.1, the inverse of populate).
func Aggregate(name string, e *Enum, opts AggregateOptions) (*Sumy, error) {
	s, _, err := AggregateWith(exec.Background(), name, e, opts)
	return s, err
}

// AggregateCtx is Aggregate under execution governance; on budget
// exhaustion the tags aggregated so far form a flagged partial SUMY.
func AggregateCtx(ctx context.Context, name string, e *Enum, opts AggregateOptions, lim exec.Limits) (*Sumy, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var s *Sumy
	var partial bool
	err := exec.Guard("core.Aggregate", name, func() error {
		var err error
		s, partial, err = AggregateWith(c, name, e, opts)
		return err
	})
	if err != nil {
		s = nil
	}
	return s, c.Snapshot(partial), err
}

// AggregateWith is the metered implementation; one work unit is one tag
// column aggregated. Columns evaluate through the shard substrate —
// each worker aggregates a contiguous column range into its own slots
// with its own scratch buffer, so the SUMY is bit-identical at any
// worker count.
func AggregateWith(c *exec.Ctl, name string, e *Enum, opts AggregateOptions) (_ *Sumy, partial bool, err error) {
	sp := c.StartSpan("core.Aggregate")
	sp.SetInput("enum %s: %d libraries x %d tags", e.Name, e.Size(), e.NumTags())
	defer c.EndSpan(sp, &partial, &err)
	if e.Size() == 0 {
		return nil, false, fmt.Errorf("core: aggregate %s: enum %s has no libraries", name, e.Name)
	}
	var extraCols []string
	if opts.WithMedian {
		extraCols = []string{"median"}
	}
	store := columnarStore(opts.Engine, e.Data)
	out := make([]SumyRow, e.NumTags())
	prefix, partial, err := shard.For(c, e.NumTags(), 0, func(c *exec.Ctl, _, klo, khi int) (int, error) {
		vals := make([]float64, e.Size())
		var colbuf []float64
		if store != nil {
			colbuf = make([]float64, e.Data.NumLibraries())
		}
		for j := klo; j < khi; j++ {
			if err := c.Point(1); err != nil {
				return j - klo, err
			}
			col := e.Cols[j]
			if store != nil {
				// Vectorized gather: decode the tag's compressed column
				// block-at-a-time into worker-local scratch, then pick
				// the member libraries' slots. Decoding restores exact
				// float64 bits, so the fold below sees the same values
				// as the row-major gather.
				for bi := range store.Blocks {
					b := &store.Blocks[bi]
					b.Decode(col, colbuf[b.Lo:b.Hi])
				}
				for i, r := range e.Rows {
					vals[i] = colbuf[r]
				}
			} else {
				for i, r := range e.Rows {
					vals[i] = e.Data.Expr[r][col]
				}
			}
			lo := vals[0]
			hi := lo
			for _, v := range vals {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			mean, std := stats.MeanStd(vals)
			row := SumyRow{
				Tag:   e.Data.Tags[col],
				Range: interval.Interval{Min: lo, Max: hi},
				Mean:  mean,
				Std:   std,
			}
			if opts.WithMedian {
				med, err := stats.Median(vals)
				if err != nil {
					return j - klo, err
				}
				row.Extra = map[string]float64{"median": med}
			}
			out[j] = row
		}
		return khi - klo, nil
	})
	if err != nil {
		return nil, false, err
	}
	if store != nil {
		var decoded int64
		//lint:gea ctlcharge -- O(tags x blocks) statistics replay over the already-metered prefix; no new row work
		for j := 0; j < prefix; j++ {
			col := e.Cols[j]
			for bi := range store.Blocks {
				decoded += store.Blocks[bi].Cols[col].EncodedBytes()
			}
		}
		sp.AddBlocks(columnar.StatBlocksScanned, int64(prefix)*int64(len(store.Blocks)))
		sp.AddBlocks(columnar.StatBytesDecoded, decoded)
	}
	return NewSumy(name, out[:prefix], extraCols), partial, nil
}

// SumyPredicate decides whether a SUMY row qualifies for selection.
type SumyPredicate func(SumyRow) bool

// SelectSumy applies relational selection to a SUMY table, producing another
// SUMY table (Section 3.2.3).
func SelectSumy(name string, s *Sumy, pred SumyPredicate) (*Sumy, error) {
	out, _, err := SelectSumyWith(exec.Background(), name, s, pred)
	return out, err
}

// SelectSumyCtx is SelectSumy under execution governance; on budget
// exhaustion the rows tested so far form a flagged partial SUMY.
func SelectSumyCtx(ctx context.Context, name string, s *Sumy, pred SumyPredicate, lim exec.Limits) (*Sumy, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var out *Sumy
	var partial bool
	err := exec.Guard("core.SelectSumy", name, func() error {
		var err error
		out, partial, err = SelectSumyWith(c, name, s, pred)
		return err
	})
	if err != nil {
		out = nil
	}
	return out, c.Snapshot(partial), err
}

// SelectSumyWith is the metered implementation; one work unit is one
// row tested. The predicate must be a pure function of its row: the
// scan evaluates through the shard substrate, which may call it from
// several goroutines.
func SelectSumyWith(c *exec.Ctl, name string, s *Sumy, pred SumyPredicate) (_ *Sumy, partial bool, err error) {
	sp := c.StartSpan("core.SelectSumy")
	sp.SetInput("sumy %s: %d rows", s.Name, len(s.Rows))
	defer c.EndSpan(sp, &partial, &err)
	keep := make([]bool, len(s.Rows))
	prefix, partial, err := shard.For(c, len(s.Rows), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		for i := lo; i < hi; i++ {
			if err := c.Point(1); err != nil {
				return i - lo, err
			}
			keep[i] = pred(s.Rows[i])
		}
		return hi - lo, nil
	})
	if err != nil {
		return nil, false, err
	}
	var rows []SumyRow
	//lint:gea ctlcharge -- compaction of the already-metered shard prefix; every row was charged inside the kernel above
	for i := 0; i < prefix; i++ {
		if keep[i] {
			rows = append(rows, s.Rows[i])
		}
	}
	return NewSumy(name, rows, s.ExtraCols), partial, nil
}

// RangeRelation returns a predicate that holds when the row's range stands
// in Allen relation rel to query — the range arithmetic of Section 4.4.1.
func RangeRelation(rel interval.Relation, query interval.Interval) SumyPredicate {
	return func(r SumyRow) bool { return interval.Holds(rel, r.Range, query) }
}

// RangeAnyOverlap returns a predicate that holds when the row's range shares
// at least one point with query — the broad "overlaps" of the range-search
// GUI (Figure 4.17).
func RangeAnyOverlap(query interval.Interval) SumyPredicate {
	return func(r SumyRow) bool { return interval.AnyOverlap(r.Range, query) }
}

// ProjectSumy drops extra aggregate columns, keeping only the named ones
// (the standard projection operator on SUMY tables).
func ProjectSumy(name string, s *Sumy, keep ...string) (*Sumy, error) {
	out, _, err := ProjectSumyWith(exec.Background(), name, s, keep)
	return out, err
}

// ProjectSumyCtx is ProjectSumy under execution governance; on budget
// exhaustion the rows projected so far form a flagged partial SUMY.
func ProjectSumyCtx(ctx context.Context, name string, s *Sumy, keep []string, lim exec.Limits) (*Sumy, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var out *Sumy
	var partial bool
	err := exec.Guard("core.ProjectSumy", name, func() error {
		var err error
		out, partial, err = ProjectSumyWith(c, name, s, keep)
		return err
	})
	if err != nil {
		out = nil
	}
	return out, c.Snapshot(partial), err
}

// ProjectSumyWith is the metered implementation; one work unit is one
// row projected.
func ProjectSumyWith(c *exec.Ctl, name string, s *Sumy, keep []string) (_ *Sumy, partial bool, err error) {
	sp := c.StartSpan("core.ProjectSumy")
	sp.SetInput("sumy %s: %d rows, keep %d cols", s.Name, len(s.Rows), len(keep))
	defer c.EndSpan(sp, &partial, &err)
	keepSet := make(map[string]bool, len(keep))
	//lint:gea ctlcharge -- O(|keep|) setup over the caller's column list; the per-row projection is metered below
	for _, k := range keep {
		keepSet[k] = true
	}
	var cols []string
	//lint:gea ctlcharge -- O(|extra columns|) setup; the per-row projection is metered below
	for _, col := range s.ExtraCols {
		if keepSet[col] {
			cols = append(cols, col)
		}
	}
	out := make([]SumyRow, len(s.Rows))
	prefix, partial, err := shard.For(c, len(s.Rows), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		for i := lo; i < hi; i++ {
			if err := c.Point(1); err != nil {
				return i - lo, err
			}
			nr := s.Rows[i]
			if len(cols) == 0 {
				nr.Extra = nil
			} else {
				nr.Extra = make(map[string]float64, len(cols))
				for _, col := range cols {
					if v, ok := s.Rows[i].Extra[col]; ok {
						nr.Extra[col] = v
					}
				}
			}
			out[i] = nr
		}
		return hi - lo, nil
	})
	if err != nil {
		return nil, false, err
	}
	return NewSumy(name, out[:prefix], cols), partial, nil
}

// MinusSumy extracts the tags appearing in a but missing in b (tag-level set
// minus, Section 3.2.3).
func MinusSumy(name string, a, b *Sumy) (*Sumy, error) {
	out, _, err := MinusSumyWith(exec.Background(), name, a, b)
	return out, err
}

// MinusSumyCtx is MinusSumy under execution governance; on budget
// exhaustion the tags examined so far form a flagged partial SUMY.
func MinusSumyCtx(ctx context.Context, name string, a, b *Sumy, lim exec.Limits) (*Sumy, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var out *Sumy
	var partial bool
	err := exec.Guard("core.MinusSumy", name, func() error {
		var err error
		out, partial, err = MinusSumyWith(c, name, a, b)
		return err
	})
	if err != nil {
		out = nil
	}
	return out, c.Snapshot(partial), err
}

// MinusSumyWith is the metered implementation; one work unit is one tag
// of a probed against b.
func MinusSumyWith(c *exec.Ctl, name string, a, b *Sumy) (_ *Sumy, partial bool, err error) {
	sp := c.StartSpan("core.MinusSumy")
	sp.SetInput("%s (%d rows) minus %s (%d rows)", a.Name, len(a.Rows), b.Name, len(b.Rows))
	defer c.EndSpan(sp, &partial, &err)
	return sumySetScan(c, name, a, func(r SumyRow) bool {
		_, ok := b.Row(r.Tag)
		return !ok
	})
}

// IntersectSumy keeps the tags of a that also appear in b, with a's
// aggregates.
func IntersectSumy(name string, a, b *Sumy) (*Sumy, error) {
	out, _, err := IntersectSumyWith(exec.Background(), name, a, b)
	return out, err
}

// IntersectSumyCtx is IntersectSumy under execution governance; on
// budget exhaustion the tags examined so far form a flagged partial
// SUMY.
func IntersectSumyCtx(ctx context.Context, name string, a, b *Sumy, lim exec.Limits) (*Sumy, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var out *Sumy
	var partial bool
	err := exec.Guard("core.IntersectSumy", name, func() error {
		var err error
		out, partial, err = IntersectSumyWith(c, name, a, b)
		return err
	})
	if err != nil {
		out = nil
	}
	return out, c.Snapshot(partial), err
}

// IntersectSumyWith is the metered implementation; one work unit is one
// tag of a probed against b.
func IntersectSumyWith(c *exec.Ctl, name string, a, b *Sumy) (_ *Sumy, partial bool, err error) {
	sp := c.StartSpan("core.IntersectSumy")
	sp.SetInput("%s (%d rows) intersect %s (%d rows)", a.Name, len(a.Rows), b.Name, len(b.Rows))
	defer c.EndSpan(sp, &partial, &err)
	return sumySetScan(c, name, a, func(r SumyRow) bool {
		_, ok := b.Row(r.Tag)
		return ok
	})
}

// UnionSumy concatenates a with the b-only tags (a's values win on common
// tags; extra columns from a).
func UnionSumy(name string, a, b *Sumy) (*Sumy, error) {
	out, _, err := UnionSumyWith(exec.Background(), name, a, b)
	return out, err
}

// UnionSumyCtx is UnionSumy under execution governance; on budget
// exhaustion the tags merged so far form a flagged partial SUMY.
func UnionSumyCtx(ctx context.Context, name string, a, b *Sumy, lim exec.Limits) (*Sumy, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var out *Sumy
	var partial bool
	err := exec.Guard("core.UnionSumy", name, func() error {
		var err error
		out, partial, err = UnionSumyWith(c, name, a, b)
		return err
	})
	if err != nil {
		out = nil
	}
	return out, c.Snapshot(partial), err
}

// UnionSumyWith is the metered implementation; one work unit is one tag
// of a copied or one tag of b probed against a.
func UnionSumyWith(c *exec.Ctl, name string, a, b *Sumy) (_ *Sumy, partial bool, err error) {
	sp := c.StartSpan("core.UnionSumy")
	sp.SetInput("%s (%d rows) union %s (%d rows)", a.Name, len(a.Rows), b.Name, len(b.Rows))
	defer c.EndSpan(sp, &partial, &err)
	na := len(a.Rows)
	out := make([]SumyRow, na+len(b.Rows))
	keep := make([]bool, na+len(b.Rows))
	prefix, partial, err := shard.For(c, na+len(b.Rows), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		for i := lo; i < hi; i++ {
			if err := c.Point(1); err != nil {
				return i - lo, err
			}
			if i < na {
				out[i] = a.Rows[i]
				keep[i] = true
				continue
			}
			r := b.Rows[i-na]
			if _, ok := a.Row(r.Tag); !ok {
				out[i] = r
				keep[i] = true
			}
		}
		return hi - lo, nil
	})
	if err != nil {
		return nil, false, err
	}
	var rows []SumyRow
	//lint:gea ctlcharge -- compaction of the already-metered shard prefix; every tag was charged inside the kernel above
	for i := 0; i < prefix; i++ {
		if keep[i] {
			rows = append(rows, out[i])
		}
	}
	return NewSumy(name, rows, a.ExtraCols), partial, nil
}

// sumySetScan is the shared kernel of the tag-level set operations: it
// keeps the rows of a satisfying keep, evaluated through the shard
// substrate with one unit charged per tag.
func sumySetScan(c *exec.Ctl, name string, a *Sumy, keepRow func(SumyRow) bool) (*Sumy, bool, error) {
	keep := make([]bool, len(a.Rows))
	prefix, partial, err := shard.For(c, len(a.Rows), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		for i := lo; i < hi; i++ {
			if err := c.Point(1); err != nil {
				return i - lo, err
			}
			keep[i] = keepRow(a.Rows[i])
		}
		return hi - lo, nil
	})
	if err != nil {
		return nil, false, err
	}
	var rows []SumyRow
	//lint:gea ctlcharge -- compaction of the already-metered shard prefix; every tag was charged inside the kernel above
	for i := 0; i < prefix; i++ {
		if keep[i] {
			rows = append(rows, a.Rows[i])
		}
	}
	return NewSumy(name, rows, a.ExtraCols), partial, nil
}

package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"gea/internal/clean"
	"gea/internal/exec"
	"gea/internal/fascicle"
	"gea/internal/interval"
	"gea/internal/sage"
	"gea/internal/sagegen"
)

// This file is the property side of the algebra's test pyramid: randomized
// sagegen corpora drive metamorphic identities that must hold for *any*
// input, not just the hand-built fixtures — tag-set laws for the SUMY set
// operators, the populate/mine round trip, the zero self-gap, and the
// always-true selection identity. Every identity is additionally asserted
// bit-identical at workers=1 vs workers=4, re-pinning shard determinism
// from the property side.

// propSeeds picks the random corpora. Three seeds keep the suite fast while
// still exercising structurally different datasets (library counts, tag
// universes and totals all vary with the seed).
var propSeeds = []int64{3, 17, 42}

// propConfig is a deliberately small corpus layout so each law can run at
// two worker counts across several seeds without dominating the package's
// test time.
func propConfig(seed int64) sagegen.Config {
	return sagegen.Config{
		Seed:           seed,
		Genes:          220,
		Housekeeping:   6,
		TissueSpecific: 12,
		PanCancerTags:  10,
		Tissues: []sagegen.TissueSpec{
			{Name: "brain", CancerLibs: 6, NormalLibs: 3, FascicleCore: 3, SignatureTags: 40},
			{Name: "kidney", CancerLibs: 4, NormalLibs: 2, FascicleCore: 2, SignatureTags: 30},
		},
		MinTotal:         2000,
		MaxTotal:         5000,
		ErrorRate:        0.05,
		CellLineFraction: 0.3,
	}
}

func propCorpus(t *testing.T, seed int64) *sagegen.Result {
	t.Helper()
	res, err := sagegen.Generate(propConfig(seed))
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return res
}

func propDataset(t *testing.T, seed int64) *sage.Dataset {
	t.Helper()
	return sage.Build(propCorpus(t, seed).Corpus)
}

// bothWorkers runs a governed operator at workers 1 and 4, asserts the
// rendered results are bit-identical, and returns the sequential result.
// Every law below routes its operator calls through here, so each identity
// doubles as a shard-determinism check.
func bothWorkers[T any](t *testing.T, label string, render func(T) []string, op func(lim exec.Limits) (T, error)) T {
	t.Helper()
	r1, err := op(exec.Limits{Workers: 1})
	if err != nil {
		t.Fatalf("%s (workers 1): %v", label, err)
	}
	r4, err := op(exec.Limits{Workers: 4})
	if err != nil {
		t.Fatalf("%s (workers 4): %v", label, err)
	}
	if a, b := strings.Join(render(r1), "\n"), strings.Join(render(r4), "\n"); a != b {
		t.Fatalf("%s: workers 1 and 4 disagree:\n--- workers 1 ---\n%s\n--- workers 4 ---\n%s", label, a, b)
	}
	return r1
}

// randIndices picks a random subset of [0, n) with at least lo elements,
// ascending.
func randIndices(rng *rand.Rand, n, lo int) []int {
	if lo > n {
		lo = n
	}
	perm := rng.Perm(n)
	out := append([]int(nil), perm[:lo+rng.Intn(n-lo+1)]...)
	sort.Ints(out)
	return out
}

// randSumy aggregates a random sub-cluster of d into a SUMY; the
// aggregation itself runs through bothWorkers.
func randSumy(t *testing.T, rng *rand.Rand, d *sage.Dataset, name string) *Sumy {
	t.Helper()
	e, err := NewEnum(name+"_members", d, randIndices(rng, d.NumLibraries(), 2), randIndices(rng, d.NumTags(), 8))
	if err != nil {
		t.Fatal(err)
	}
	return bothWorkers(t, "aggregate "+name, renderSumy, func(lim exec.Limits) (*Sumy, error) {
		s, _, err := AggregateCtx(context.Background(), name, e, AggregateOptions{}, lim)
		return s, err
	})
}

func tagsOf(s *Sumy) string {
	tags := make([]string, len(s.Rows))
	for i, r := range s.Rows {
		tags[i] = fmt.Sprintf("%v", r.Tag)
	}
	return strings.Join(tags, " ") // rows are ascending by tag already
}

// TestAlgebraPropSumySetLaws checks the Boolean identities of the tag-level
// set operators over random SUMY triples: idempotence (row-for-row, since
// the left side's aggregates win), annihilation of self-minus,
// commutativity at the tag-set level, and both De Morgan duals expressed
// through minus (relative complement against a).
func TestAlgebraPropSumySetLaws(t *testing.T) {
	for _, seed := range propSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			d := propDataset(t, seed)
			rng := rand.New(rand.NewSource(seed * 7919))
			a := randSumy(t, rng, d, "a")
			b := randSumy(t, rng, d, "b")
			c := randSumy(t, rng, d, "c")

			op := func(kind string, f func(ctx context.Context, name string, x, y *Sumy, lim exec.Limits) (*Sumy, exec.Trace, error)) func(name string, x, y *Sumy) *Sumy {
				return func(name string, x, y *Sumy) *Sumy {
					return bothWorkers(t, kind+" "+name, renderSumy, func(lim exec.Limits) (*Sumy, error) {
						s, _, err := f(context.Background(), name, x, y, lim)
						return s, err
					})
				}
			}
			union := op("union", UnionSumyCtx)
			inter := op("intersect", IntersectSumyCtx)
			minus := op("minus", MinusSumyCtx)

			// Idempotence. Both operators keep a's rows verbatim, so the
			// whole rendering must match, not just the tag set.
			for name, got := range map[string]*Sumy{
				"union(a,a)":     union("u_aa", a, a),
				"intersect(a,a)": inter("i_aa", a, a),
			} {
				if ra, rg := strings.Join(renderSumy(a), "\n"), strings.Join(renderSumy(got), "\n"); ra != rg {
					t.Errorf("%s is not a:\n got:\n%s\nwant:\n%s", name, rg, ra)
				}
			}
			if got := minus("m_aa", a, a); len(got.Rows) != 0 {
				t.Errorf("minus(a,a) kept %d tags, want none", len(got.Rows))
			}

			// Commutativity holds at the tag-set level (aggregates come from
			// the left operand, so full rows may differ).
			if l, r := tagsOf(union("u_ab", a, b)), tagsOf(union("u_ba", b, a)); l != r {
				t.Errorf("union does not commute on tags:\n a∪b: %s\n b∪a: %s", l, r)
			}
			if l, r := tagsOf(inter("i_ab", a, b)), tagsOf(inter("i_ba", b, a)); l != r {
				t.Errorf("intersect does not commute on tags:\n a∩b: %s\n b∩a: %s", l, r)
			}

			// De Morgan duals, complementing relative to a via minus.
			if l, r := tagsOf(minus("dm1l", a, union("u_bc", b, c))),
				tagsOf(inter("dm1r", minus("m_ab", a, b), minus("m_ac", a, c))); l != r {
				t.Errorf("a−(b∪c) ≠ (a−b)∩(a−c):\n left: %s\nright: %s", l, r)
			}
			if l, r := tagsOf(minus("dm2l", a, inter("i_bc", b, c))),
				tagsOf(union("dm2r", minus("m_ab2", a, b), minus("m_ac2", a, c))); l != r {
				t.Errorf("a−(b∩c) ≠ (a−b)∪(a−c):\n left: %s\nright: %s", l, r)
			}
		})
	}
}

// TestAlgebraPropMinePopulate checks the populate/mine round trip on the
// brain slice of each random corpus (where sagegen plants a fascicle, so
// mining is non-vacuous by construction): every mined fascicle's members
// appear in its own enumeration — populate(mine(...)) results always
// contain their candidate sets, because aggregation takes [min, max] over
// exactly those members — re-populating a mined SUMY reproduces the stored
// ENUM, and the entropy-indexed populate path agrees with the sequential
// scan.
func TestAlgebraPropMinePopulate(t *testing.T) {
	for _, seed := range propSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			res := propCorpus(t, seed)
			d := sage.Build(&sage.Corpus{Libraries: res.Corpus.ByTissue("brain")})
			tol, err := clean.ToleranceVector(d, 10)
			if err != nil {
				t.Fatal(err)
			}
			p := fascicle.Params{K: d.NumTags() * 60 / 100, Tolerance: tol, MinSize: 3}

			renderResults := func(rs []MineResult) []string {
				var out []string
				for _, r := range rs {
					out = append(out, fmt.Sprintf("fascicle rows=%v compact=%v", r.Fascicle.Rows, r.Fascicle.CompactCols))
					out = append(out, renderSumy(r.Sumy)...)
					out = append(out, fmt.Sprintf("enum rows=%v", r.Enum.Rows))
				}
				return out
			}
			rs := bothWorkers(t, "mine", renderResults, func(lim exec.Limits) ([]MineResult, error) {
				rs, _, err := MineCtx(context.Background(), "prop", d, p, GreedyAlgorithm, lim)
				return rs, err
			})
			if len(rs) == 0 {
				t.Fatal("mining found no fascicles; the planted brain core should be discoverable")
			}

			idx, err := BuildTagIndexes(d, randIndices(rand.New(rand.NewSource(seed)), d.NumTags(), 4))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rs {
				inEnum := map[int]bool{}
				for _, row := range r.Enum.Rows {
					inEnum[row] = true
				}
				for _, row := range r.Fascicle.Rows {
					if !inEnum[row] {
						t.Errorf("%s: mined member %d does not satisfy its own definition", r.Sumy.Name, row)
					}
				}
				for name, tagIdx := range map[string]*TagIndexes{"sequential": nil, "indexed": idx} {
					e2 := bothWorkers(t, "re-populate "+r.Sumy.Name+" "+name,
						func(e *Enum) []string { return []string{fmt.Sprint(e.Rows)} },
						func(lim exec.Limits) (*Enum, error) {
							e, _, _, err := PopulateCtx(context.Background(), r.Sumy.Name+"_re", r.Sumy, d, tagIdx, PopulateOptions{}, lim)
							return e, err
						})
					if fmt.Sprint(e2.Rows) != fmt.Sprint(r.Enum.Rows) {
						t.Errorf("%s (%s): re-populating the definition gives %v, mined enumeration was %v",
							r.Sumy.Name, name, e2.Rows, r.Enum.Rows)
					}
				}
			}
		})
	}
}

// TestAlgebraPropDiffSelfIsNull checks that aggregating a random cluster
// and diffing it against itself yields the zero gap: the join keeps every
// tag and every gap level is NULL, since a range can never clear its own
// spread.
func TestAlgebraPropDiffSelfIsNull(t *testing.T) {
	renderGap := func(g *Gap) []string {
		out := make([]string, len(g.Rows))
		for i, r := range g.Rows {
			out[i] = fmt.Sprintf("%v %v", r.Tag, r.Values[0])
		}
		return out
	}
	for _, seed := range propSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			d := propDataset(t, seed)
			s := randSumy(t, rand.New(rand.NewSource(seed*31)), d, "self")
			g := bothWorkers(t, "diff(s,s)", renderGap, func(lim exec.Limits) (*Gap, error) {
				g, _, err := DiffCtx(context.Background(), "selfGap", s, s, lim)
				return g, err
			})
			if len(g.Rows) != len(s.Rows) {
				t.Errorf("diff(s,s) joined %d of %d tags, want all", len(g.Rows), len(s.Rows))
			}
			for _, r := range g.Rows {
				if !r.Values[0].Null {
					t.Errorf("tag %v: self-gap is %v, want NULL", r.Tag, r.Values[0])
				}
			}
		})
	}
}

// TestAlgebraPropSelectionIdentity checks that selection under an
// always-true predicate is the identity, in both selection forms: a SUMY
// row filter that accepts everything returns the table verbatim, and a
// range-arithmetic search whose Allen condition always holds reports every
// tag as satisfied with its own range.
func TestAlgebraPropSelectionIdentity(t *testing.T) {
	renderRows := func(rows []RangeSearchRow) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = fmt.Sprintf("%v %v [%x,%x]", r.Tag, r.Cells[0].Outcome, r.Cells[0].Range.Min, r.Cells[0].Range.Max)
		}
		return out
	}
	for _, seed := range propSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			d := propDataset(t, seed)
			s := randSumy(t, rand.New(rand.NewSource(seed*131)), d, "sel")

			kept := bothWorkers(t, "select always-true", renderSumy, func(lim exec.Limits) (*Sumy, error) {
				out, _, err := SelectSumyCtx(context.Background(), "selAll", s, func(SumyRow) bool { return true }, lim)
				return out, err
			})
			if a, b := strings.Join(renderSumy(s), "\n"), strings.Join(renderSumy(kept), "\n"); a != b {
				t.Errorf("always-true selection is not the identity:\n got:\n%s\nwant:\n%s", b, a)
			}

			first, last := s.Rows[0].Tag, s.Rows[len(s.Rows)-1].Tag
			rows := bothWorkers(t, "range search always-true", renderRows, func(lim exec.Limits) ([]RangeSearchRow, error) {
				rows, _, err := RangeSearchCtx(context.Background(), []*Sumy{s}, first, last,
					func(interval.Interval) bool { return true }, lim)
				return rows, err
			})
			if len(rows) != len(s.Rows) {
				t.Fatalf("always-true range search reported %d of %d tags", len(rows), len(s.Rows))
			}
			for _, r := range rows {
				sr, ok := s.Row(r.Tag)
				if !ok {
					t.Errorf("range search invented tag %v", r.Tag)
					continue
				}
				if len(r.Cells) != 1 || r.Cells[0].Outcome != RangeSatisfied || r.Cells[0].Range != sr.Range {
					t.Errorf("tag %v: cell %+v, want OK with the row's own range %v", r.Tag, r.Cells[0], sr.Range)
				}
			}
		})
	}
}

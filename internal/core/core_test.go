package core

import (
	"math"
	"testing"

	"gea/internal/clean"
	"gea/internal/fascicle"
	"gea/internal/interval"
	"gea/internal/sage"
	"gea/internal/sagegen"
)

// smallDataset builds a 6-library, 4-tag dataset with obvious structure:
// rows 0-2 cancerous brain with a high signature tag, rows 3-4 normal brain,
// row 5 kidney.
func smallDataset() *sage.Dataset {
	tags := []sage.TagID{
		sage.MustParseTag("AAAAAAAAAA"), // signature: ~200 cancer, ~50 normal
		sage.MustParseTag("CCCCCCCCCC"), // flat
		sage.MustParseTag("GGGGGGGGGG"), // low in cancer
		sage.MustParseTag("TTTTTTTTTT"), // kidney only
	}
	type libSpec struct {
		name   string
		tissue string
		state  sage.NeoplasticState
		vals   [4]float64
	}
	specs := []libSpec{
		{"BC1", "brain", sage.Cancer, [4]float64{200, 10, 1, 0}},
		{"BC2", "brain", sage.Cancer, [4]float64{205, 11, 2, 0}},
		{"BC3", "brain", sage.Cancer, [4]float64{195, 9, 0, 0}},
		{"BN1", "brain", sage.Normal, [4]float64{50, 10, 90, 0}},
		{"BN2", "brain", sage.Normal, [4]float64{55, 11, 85, 0}},
		{"K1", "kidney", sage.Cancer, [4]float64{0, 10, 0, 400}},
	}
	c := &sage.Corpus{}
	for i, s := range specs {
		l := sage.NewLibrary(sage.LibraryMeta{
			ID: i + 1, Name: s.name, Tissue: s.tissue, State: s.state, Source: sage.BulkTissue,
		})
		for j, v := range s.vals {
			if v != 0 {
				l.Add(tags[j], v)
			}
		}
		c.Libraries = append(c.Libraries, l)
	}
	return sage.BuildWithTags(c, tags)
}

func TestEnumBasics(t *testing.T) {
	d := smallDataset()
	full := FullEnum("SAGE", d)
	if full.Size() != 6 || full.NumTags() != 4 {
		t.Fatalf("full enum = %d x %d", full.Size(), full.NumTags())
	}
	if full.Value(0, 0) != 200 {
		t.Errorf("Value = %v", full.Value(0, 0))
	}
	if full.Meta(5).Tissue != "kidney" {
		t.Errorf("Meta = %+v", full.Meta(5))
	}
	names := full.LibraryNames()
	if names[0] != "BC1" || names[5] != "K1" {
		t.Errorf("names = %v", names)
	}
	tagList := full.Tags()
	if len(tagList) != 4 || tagList[0] != d.Tags[0] {
		t.Errorf("tags = %v", tagList)
	}
}

func TestNewEnumValidation(t *testing.T) {
	d := smallDataset()
	if _, err := NewEnum("e", d, []int{99}, nil); err == nil {
		t.Error("row out of range: expected error")
	}
	if _, err := NewEnum("e", d, nil, []int{-1}); err == nil {
		t.Error("col out of range: expected error")
	}
	// Duplicates and disorder normalize.
	e, err := NewEnum("e", d, []int{3, 1, 3}, []int{2, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.Size() != 2 || e.Rows[0] != 1 || e.Rows[1] != 3 {
		t.Errorf("rows = %v", e.Rows)
	}
	if e.NumTags() != 2 || e.Cols[0] != 0 || e.Cols[1] != 2 {
		t.Errorf("cols = %v", e.Cols)
	}
}

func TestEnumSelectAndSetOps(t *testing.T) {
	d := smallDataset()
	full := FullEnum("SAGE", d)
	brain := full.SelectRows("Ebrain", func(m sage.LibraryMeta) bool { return m.Tissue == "brain" })
	if brain.Size() != 5 {
		t.Fatalf("brain = %d rows", brain.Size())
	}
	cancer := brain.SelectRows("cancer", func(m sage.LibraryMeta) bool { return m.State == sage.Cancer })
	if cancer.Size() != 3 {
		t.Fatalf("cancer = %d rows", cancer.Size())
	}
	rest, err := brain.MinusRows("rest", cancer)
	if err != nil {
		t.Fatal(err)
	}
	if rest.Size() != 2 {
		t.Errorf("minus = %d rows", rest.Size())
	}
	both, err := brain.IntersectRows("both", cancer)
	if err != nil {
		t.Fatal(err)
	}
	if both.Size() != 3 {
		t.Errorf("intersect = %d rows", both.Size())
	}
	all, err := cancer.UnionRows("all", rest)
	if err != nil {
		t.Fatal(err)
	}
	if all.Size() != 5 {
		t.Errorf("union = %d rows", all.Size())
	}
	if !cancer.IsPure(sage.PropCancer) || cancer.IsPure(sage.PropNormal) {
		t.Error("purity check wrong")
	}
	// Different base datasets refuse to combine.
	other := FullEnum("other", smallDataset())
	if _, err := brain.MinusRows("x", other); err == nil {
		t.Error("cross-base minus: expected error")
	}
	if _, err := brain.IntersectRows("x", other); err == nil {
		t.Error("cross-base intersect: expected error")
	}
	if _, err := brain.UnionRows("x", other); err == nil {
		t.Error("cross-base union: expected error")
	}
}

func TestAggregate(t *testing.T) {
	d := smallDataset()
	cancer := FullEnum("SAGE", d).SelectRows("cancer",
		func(m sage.LibraryMeta) bool { return m.Tissue == "brain" && m.State == sage.Cancer })
	s, err := Aggregate("s", cancer, AggregateOptions{WithMedian: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("sumy = %d rows", s.Len())
	}
	r, ok := s.Row(sage.MustParseTag("AAAAAAAAAA"))
	if !ok {
		t.Fatal("signature tag missing")
	}
	if r.Range.Min != 195 || r.Range.Max != 205 {
		t.Errorf("range = %v", r.Range)
	}
	if math.Abs(r.Mean-200) > 1e-9 {
		t.Errorf("mean = %v", r.Mean)
	}
	wantStd := math.Sqrt((25 + 0 + 25) / 3.0)
	if math.Abs(r.Std-wantStd) > 1e-9 {
		t.Errorf("std = %v, want %v", r.Std, wantStd)
	}
	if med := r.Extra["median"]; med != 200 {
		t.Errorf("median = %v", med)
	}

	empty := cancer.SelectRows("none", func(sage.LibraryMeta) bool { return false })
	if _, err := Aggregate("s", empty, AggregateOptions{}); err == nil {
		t.Error("aggregate of empty enum: expected error")
	}
}

func TestSelectSumyRangeArithmetic(t *testing.T) {
	d := smallDataset()
	s, err := Aggregate("s", FullEnum("SAGE", d), AggregateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Tags whose range overlaps (broadly) [80, 500]: signature (0..205),
	// GGGG (0..90), TTTT (0..400).
	hits, err := SelectSumy("hits", s, RangeAnyOverlap(interval.New(80, 500)))
	if err != nil {
		t.Fatal(err)
	}
	if hits.Len() != 3 {
		t.Errorf("broad overlap = %d tags", hits.Len())
	}
	// Strict Allen relation: tags whose range includes [1, 2]. Three tags
	// have ranges [0, hi] with hi > 2; the flat tag's range is [9, 11].
	inc, err := SelectSumy("inc", s, RangeRelation(interval.Includes, interval.New(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if inc.Len() != 3 {
		t.Errorf("includes = %d tags", inc.Len())
	}
}

func TestProjectSumyAndSetOps(t *testing.T) {
	d := smallDataset()
	e := FullEnum("SAGE", d)
	s, err := Aggregate("s", e, AggregateOptions{WithMedian: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProjectSumy("p", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.ExtraCols) != 0 || p.Rows[0].Extra != nil {
		t.Error("projection kept extra columns")
	}
	pm, err := ProjectSumy("pm", s, "median")
	if err != nil {
		t.Fatal(err)
	}
	if len(pm.ExtraCols) != 1 || pm.Rows[0].Extra["median"] == 0 && pm.Rows[0].Tag == s.Rows[0].Tag && s.Rows[0].Extra["median"] != 0 {
		t.Error("projection dropped requested column")
	}

	s2 := NewSumy("s2", []SumyRow{
		{Tag: d.Tags[0], Range: interval.New(0, 1), Mean: 0.5, Std: 0.1},
	}, nil)
	minus, err := MinusSumy("m", s, s2)
	if err != nil {
		t.Fatal(err)
	}
	if minus.Len() != 3 {
		t.Errorf("sumy minus = %d", minus.Len())
	}
	inter, err := IntersectSumy("i", s, s2)
	if err != nil {
		t.Fatal(err)
	}
	if inter.Len() != 1 || inter.Rows[0].Mean == 0.5 {
		t.Errorf("sumy intersect = %+v (must keep a's aggregates)", inter.Rows)
	}
	un, err := UnionSumy("u", minus, s2)
	if err != nil {
		t.Fatal(err)
	}
	if un.Len() != 4 {
		t.Errorf("sumy union = %d", un.Len())
	}
}

func TestPopulateSequential(t *testing.T) {
	d := smallDataset()
	cancer := FullEnum("SAGE", d).SelectRows("cancer",
		func(m sage.LibraryMeta) bool { return m.Tissue == "brain" && m.State == sage.Cancer })
	s, err := Aggregate("s", cancer, AggregateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e, st, err := Populate("e", s, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.IndexesHit != 0 || st.CandidateRows != 6 {
		t.Errorf("stats = %+v", st)
	}
	// The three cancer libraries satisfy their own ranges; normals and
	// kidney do not (signature out of range).
	if e.Size() != 3 {
		t.Fatalf("populate = %d rows: %v", e.Size(), e.LibraryNames())
	}
	for _, n := range e.LibraryNames() {
		if n[0] != 'B' || n[1] != 'C' {
			t.Errorf("unexpected member %s", n)
		}
	}
}

func TestPopulateIndexedMatchesSequential(t *testing.T) {
	res, err := sagegen.Generate(sagegen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cleaned, _, err := clean.Clean(res.Corpus, clean.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	d := sage.Build(cleaned)
	brainRows := d.RowsByTissue("brain")
	cancerRows := brainRows[:4]
	e, err := NewEnum("core", d, cancerRows, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Summarize over every tag.
	cols := make([]int, d.NumTags())
	for j := range cols {
		cols[j] = j
	}
	e.Cols = cols
	s, err := Aggregate("s", e, AggregateOptions{})
	if err != nil {
		t.Fatal(err)
	}

	seq, seqSt, err := Populate("seq", s, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildTagIndexes(d, []int{0, 1, 2, 3, 4, 50, 100})
	if err != nil {
		t.Fatal(err)
	}
	ind, indSt, err := Populate("ind", s, d, idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Rows) != len(ind.Rows) {
		t.Fatalf("sequential %d rows vs indexed %d rows", len(seq.Rows), len(ind.Rows))
	}
	for i := range seq.Rows {
		if seq.Rows[i] != ind.Rows[i] {
			t.Fatalf("row %d differs", i)
		}
	}
	if indSt.IndexesHit != 7 {
		t.Errorf("indexes hit = %d, want 7", indSt.IndexesHit)
	}
	if indSt.CandidateRows > seqSt.CandidateRows {
		t.Errorf("indexed candidates %d > sequential %d", indSt.CandidateRows, seqSt.CandidateRows)
	}
}

func TestPopulateErrors(t *testing.T) {
	d := smallDataset()
	empty := NewSumy("empty", nil, nil)
	if _, _, err := Populate("e", empty, d, nil); err == nil {
		t.Error("empty sumy: expected error")
	}
	s := NewSumy("s", []SumyRow{{Tag: d.Tags[0], Range: interval.New(0, 1)}}, nil)
	otherIdx, err := BuildTagIndexes(smallDataset(), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Populate("e", s, d, otherIdx); err == nil {
		t.Error("foreign indexes: expected error")
	}
	if _, err := BuildTagIndexes(d, []int{99}); err == nil {
		t.Error("bad index column: expected error")
	}
}

func TestPopulateMissingTagTreatedAsZero(t *testing.T) {
	d := smallDataset()
	foreign := sage.MustParseTag("ACACACACAC")
	// Range includes 0: all rows match.
	s := NewSumy("s", []SumyRow{{Tag: foreign, Range: interval.New(0, 5)}}, nil)
	e, _, err := Populate("e", s, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Size() != 6 {
		t.Errorf("zero-in-range populate = %d rows", e.Size())
	}
	// Range excludes 0: no rows match.
	s2 := NewSumy("s2", []SumyRow{{Tag: foreign, Range: interval.New(1, 5)}}, nil)
	e2, _, err := Populate("e2", s2, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Size() != 0 {
		t.Errorf("zero-out-of-range populate = %d rows", e2.Size())
	}
}

// TestMineLatticePopulateClosure checks the closure property: for the exact
// lattice miner, populate(aggregate(fascicle)) returns exactly the fascicle
// members (any extra member would contradict maximality).
func TestMineLatticePopulateClosure(t *testing.T) {
	res, err := sagegen.Generate(sagegen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cleaned, _, err := clean.Clean(res.Corpus, clean.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	d := sage.Build(cleaned)
	brain, err := d.SubsetByTissue("brain")
	if err != nil {
		t.Fatal(err)
	}
	tol, err := clean.ToleranceVector(brain, 10)
	if err != nil {
		t.Fatal(err)
	}
	results, err := Mine("brain", brain, fascicle.Params{
		K: brain.NumTags() * 55 / 100, Tolerance: tol, MinSize: 3,
	}, LatticeAlgorithm)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no fascicles mined")
	}
	for i, r := range results {
		if len(r.Enum.Rows) != len(r.Fascicle.Rows) {
			t.Errorf("fascicle %d: populate returned %d rows, members %d",
				i, len(r.Enum.Rows), len(r.Fascicle.Rows))
			continue
		}
		for k := range r.Enum.Rows {
			if r.Enum.Rows[k] != r.Fascicle.Rows[k] {
				t.Errorf("fascicle %d row %d: %d vs %d", i, k, r.Enum.Rows[k], r.Fascicle.Rows[k])
			}
		}
		if r.Sumy.Len() != r.Fascicle.NumCompact() {
			t.Errorf("fascicle %d: sumy %d tags, compact %d", i, r.Sumy.Len(), r.Fascicle.NumCompact())
		}
	}
}

func TestMineGreedy(t *testing.T) {
	d := smallDataset()
	tol := map[sage.TagID]float64{}
	for j, tg := range d.Tags {
		lo, hi := d.Expr[0][j], d.Expr[0][j]
		for i := range d.Expr {
			v := d.Expr[i][j]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		tol[tg] = (hi - lo) * 0.2
	}
	results, err := Mine("small", d, fascicle.Params{K: 3, Tolerance: tol, MinSize: 2}, GreedyAlgorithm)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("greedy mined nothing")
	}
	for _, r := range results {
		if r.Sumy == nil || r.Enum == nil || r.Fascicle == nil {
			t.Fatal("incomplete mine result")
		}
	}
}

func TestMineInvalidParams(t *testing.T) {
	d := smallDataset()
	if _, err := Mine("x", d, fascicle.Params{K: 0, MinSize: 1}, LatticeAlgorithm); err == nil {
		t.Error("invalid params: expected error")
	}
}

package core

import (
	"context"
	"fmt"
	"sort"

	"gea/internal/columnar"
	"gea/internal/exec"
	"gea/internal/exec/shard"
	"gea/internal/interval"
	"gea/internal/sage"
)

// Engine selects the physical evaluation path of an operator. Both
// engines sit behind the same equivalence wall: for any input they
// produce reflect.DeepEqual-identical results and charge identical
// unit sequences, so traces, budgets and partial prefixes agree; the
// columnar engine saves computation (decoded bytes, skipped blocks),
// never work units.
type Engine int

// The engines.
const (
	// EngineAuto picks columnar when the dataset already has a
	// memoised columnar view (see columnar.Of) and falls back to the
	// row engine otherwise — datasets never pay a conversion they did
	// not opt into. Operators without a dataset (SUMY-level scans)
	// resolve Auto to the row engine.
	EngineAuto Engine = iota
	// EngineRow is the classic row-at-a-time evaluation over
	// sage.Dataset.Expr.
	EngineRow
	// EngineColumnar evaluates block-at-a-time over the compressed
	// column store, building it on first use.
	EngineColumnar
)

// String names the engine as the -engine flag spells it.
func (e Engine) String() string {
	switch e {
	case EngineRow:
		return "row"
	case EngineColumnar:
		return "columnar"
	default:
		return "auto"
	}
}

// ParseEngine parses an -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "auto", "":
		return EngineAuto, nil
	case "row":
		return EngineRow, nil
	case "columnar":
		return EngineColumnar, nil
	}
	return 0, fmt.Errorf("core: unknown engine %q (want auto, row or columnar)", s)
}

// columnarStore resolves the engine choice for a dataset-backed
// operator: the store to scan, or nil for the row engine.
func columnarStore(e Engine, d *sage.Dataset) *columnar.Store {
	switch e {
	case EngineColumnar:
		return columnar.Of(d)
	case EngineAuto:
		return columnar.Peek(d)
	default:
		return nil
	}
}

// sumyColumnar resolves the engine choice for SUMY-level operators,
// whose columnar path needs no store (the sorted row run is the
// column): Auto stays on the row engine.
func sumyColumnar(e Engine) bool { return e == EngineColumnar }

// DiffEngine is DiffWith with an explicit engine. The columnar path
// replaces the per-tag hash probe with a sort-merge join over the two
// tables' tag-sorted runs; match values still come from the index
// probe, so tables with duplicate tags (last wins) diff identically.
func DiffEngine(c *exec.Ctl, name string, a, b *Sumy, eng Engine) (*Gap, bool, error) {
	if sumyColumnar(eng) {
		return diffMerge(c, name, a, b)
	}
	return DiffWith(c, name, a, b)
}

// DiffEngineCtx is DiffEngine under execution governance.
func DiffEngineCtx(ctx context.Context, name string, a, b *Sumy, eng Engine, lim exec.Limits) (*Gap, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var g *Gap
	var partial bool
	err := exec.Guard("core.Diff", name, func() error {
		var err error
		g, partial, err = DiffEngine(c, name, a, b, eng)
		return err
	})
	if err != nil {
		g = nil
	}
	return g, c.Snapshot(partial), err
}

// diffMerge is the columnar diff kernel: each shard binary-searches
// its start in b once and then advances both sorted runs in lockstep.
func diffMerge(c *exec.Ctl, name string, a, b *Sumy) (_ *Gap, partial bool, err error) {
	sp := c.StartSpan("core.Diff")
	sp.SetInput("%s (%d rows) vs %s (%d rows)", a.Name, len(a.Rows), b.Name, len(b.Rows))
	defer c.EndSpan(sp, &partial, &err)
	out := make([]GapRow, len(a.Rows))
	has := make([]bool, len(a.Rows))
	prefix, partial, err := shard.For(c, len(a.Rows), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		j := sort.Search(len(b.Rows), func(j int) bool { return b.Rows[j].Tag >= a.Rows[lo].Tag })
		for i := lo; i < hi; i++ {
			if err := c.Point(1); err != nil {
				return i - lo, err
			}
			ra := a.Rows[i]
			for j < len(b.Rows) && b.Rows[j].Tag < ra.Tag {
				j++
			}
			if j < len(b.Rows) && b.Rows[j].Tag == ra.Tag {
				// The merge decides existence; the value comes from the
				// same probe the row engine makes, so duplicate-tag
				// tables (Row is last-wins) produce identical gaps.
				rb, _ := b.Row(ra.Tag)
				out[i] = GapRow{Tag: ra.Tag, Values: []GapValue{gapOf(ra, rb)}}
				has[i] = true
			}
		}
		return hi - lo, nil
	})
	if err != nil {
		return nil, false, err
	}
	var rows []GapRow
	//lint:gea ctlcharge -- compaction of the already-metered shard prefix; every row was charged inside the kernel above
	for i := 0; i < prefix; i++ {
		if has[i] {
			rows = append(rows, out[i])
		}
	}
	g, err := NewGap(name, []string{"gap"}, rows)
	if err != nil {
		return nil, false, err
	}
	return g, partial, nil
}

// MinusSumyEngine is MinusSumyWith with an explicit engine; the
// columnar path decides membership by sort-merge instead of hash
// probes.
func MinusSumyEngine(c *exec.Ctl, name string, a, b *Sumy, eng Engine) (_ *Sumy, partial bool, err error) {
	if !sumyColumnar(eng) {
		return MinusSumyWith(c, name, a, b)
	}
	sp := c.StartSpan("core.MinusSumy")
	sp.SetInput("%s (%d rows) minus %s (%d rows)", a.Name, len(a.Rows), b.Name, len(b.Rows))
	defer c.EndSpan(sp, &partial, &err)
	return sumyMergeScan(c, name, a, b, false)
}

// IntersectSumyEngine is IntersectSumyWith with an explicit engine.
func IntersectSumyEngine(c *exec.Ctl, name string, a, b *Sumy, eng Engine) (_ *Sumy, partial bool, err error) {
	if !sumyColumnar(eng) {
		return IntersectSumyWith(c, name, a, b)
	}
	sp := c.StartSpan("core.IntersectSumy")
	sp.SetInput("%s (%d rows) intersect %s (%d rows)", a.Name, len(a.Rows), b.Name, len(b.Rows))
	defer c.EndSpan(sp, &partial, &err)
	return sumyMergeScan(c, name, a, b, true)
}

// sumyMergeScan keeps the rows of a whose tag does (want=true) or does
// not (want=false) appear in b, membership decided by merging the two
// sorted runs. Charging and compaction mirror sumySetScan exactly.
func sumyMergeScan(c *exec.Ctl, name string, a, b *Sumy, want bool) (*Sumy, bool, error) {
	keep := make([]bool, len(a.Rows))
	prefix, partial, err := shard.For(c, len(a.Rows), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		j := sort.Search(len(b.Rows), func(j int) bool { return b.Rows[j].Tag >= a.Rows[lo].Tag })
		for i := lo; i < hi; i++ {
			if err := c.Point(1); err != nil {
				return i - lo, err
			}
			t := a.Rows[i].Tag
			for j < len(b.Rows) && b.Rows[j].Tag < t {
				j++
			}
			keep[i] = (j < len(b.Rows) && b.Rows[j].Tag == t) == want
		}
		return hi - lo, nil
	})
	if err != nil {
		return nil, false, err
	}
	var rows []SumyRow
	//lint:gea ctlcharge -- compaction of the already-metered shard prefix; every tag was charged inside the kernel above
	for i := 0; i < prefix; i++ {
		if keep[i] {
			rows = append(rows, a.Rows[i])
		}
	}
	return NewSumy(name, rows, a.ExtraCols), partial, nil
}

// UnionSumyEngine is UnionSumyWith with an explicit engine; the
// columnar path probes b's tags against a's sorted run by merge.
func UnionSumyEngine(c *exec.Ctl, name string, a, b *Sumy, eng Engine) (_ *Sumy, partial bool, err error) {
	if !sumyColumnar(eng) {
		return UnionSumyWith(c, name, a, b)
	}
	sp := c.StartSpan("core.UnionSumy")
	sp.SetInput("%s (%d rows) union %s (%d rows)", a.Name, len(a.Rows), b.Name, len(b.Rows))
	defer c.EndSpan(sp, &partial, &err)
	na := len(a.Rows)
	out := make([]SumyRow, na+len(b.Rows))
	keep := make([]bool, na+len(b.Rows))
	prefix, partial, err := shard.For(c, na+len(b.Rows), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		j := -1 // lazily positioned in a's run at the first b item
		for i := lo; i < hi; i++ {
			if err := c.Point(1); err != nil {
				return i - lo, err
			}
			if i < na {
				out[i] = a.Rows[i]
				keep[i] = true
				continue
			}
			r := b.Rows[i-na]
			if j < 0 {
				j = sort.Search(len(a.Rows), func(j int) bool { return a.Rows[j].Tag >= r.Tag })
			}
			for j < len(a.Rows) && a.Rows[j].Tag < r.Tag {
				j++
			}
			if !(j < len(a.Rows) && a.Rows[j].Tag == r.Tag) {
				out[i] = r
				keep[i] = true
			}
		}
		return hi - lo, nil
	})
	if err != nil {
		return nil, false, err
	}
	var rows []SumyRow
	//lint:gea ctlcharge -- compaction of the already-metered shard prefix; every tag was charged inside the kernel above
	for i := 0; i < prefix; i++ {
		if keep[i] {
			rows = append(rows, out[i])
		}
	}
	return NewSumy(name, rows, a.ExtraCols), partial, nil
}

// RangeSpec is an Allen-relation (or broad-overlap) selection over a
// SUMY table's ranges — the declarative form SelectSumyRange can
// zone-prune, unlike an opaque SumyPredicate.
type RangeSpec struct {
	// Broad selects the GUI's inclusive overlap (interval.AnyOverlap)
	// instead of the strict relation Rel.
	Broad bool
	// Rel is the Allen relation tested when Broad is false.
	Rel interval.Relation
	// Query is the query range.
	Query interval.Interval
}

// Predicate returns the equivalent SumyPredicate — what the row engine
// evaluates per row.
func (spec RangeSpec) Predicate() SumyPredicate {
	if spec.Broad {
		return RangeAnyOverlap(spec.Query)
	}
	return RangeRelation(spec.Rel, spec.Query)
}

// SelectSumyRange is relational selection on a SUMY table by range
// arithmetic, with an explicit engine. The row engine tests every row;
// the columnar engine builds interval zone maps over the sorted run
// and skips whole row groups the relation provably cannot hold in
// (columnar.IntervalZone.CanPrune), still charging one unit per row so
// both engines trace identically.
func SelectSumyRange(c *exec.Ctl, name string, s *Sumy, spec RangeSpec, eng Engine) (*Sumy, bool, error) {
	if !sumyColumnar(eng) {
		return SelectSumyWith(c, name, s, spec.Predicate())
	}
	return selectSumyZones(c, name, s, spec)
}

// SelectSumyRangeCtx is SelectSumyRange under execution governance.
func SelectSumyRangeCtx(ctx context.Context, name string, s *Sumy, spec RangeSpec, eng Engine, lim exec.Limits) (*Sumy, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var out *Sumy
	var partial bool
	err := exec.Guard("core.SelectSumy", name, func() error {
		var err error
		out, partial, err = SelectSumyRange(c, name, s, spec, eng)
		return err
	})
	if err != nil {
		out = nil
	}
	return out, c.Snapshot(partial), err
}

// selectSumyZones is the zone-pruned selection kernel.
func selectSumyZones(c *exec.Ctl, name string, s *Sumy, spec RangeSpec) (_ *Sumy, partial bool, err error) {
	sp := c.StartSpan("core.SelectSumy")
	sp.SetInput("sumy %s: %d rows", s.Name, len(s.Rows))
	defer c.EndSpan(sp, &partial, &err)
	ivs := make([]interval.Interval, len(s.Rows))
	//lint:gea ctlcharge -- O(rows) zone-map construction feeding the metered scan below; the scan charges every row
	for i, r := range s.Rows {
		ivs[i] = r.Range
	}
	zones := columnar.IntervalZones(ivs, 0)
	edges := make([]int, len(zones)+1)
	//lint:gea ctlcharge -- O(zones) dispatch bookkeeping; the scan kernel meters the rows
	for zi := range zones {
		edges[zi] = zones[zi].Lo
	}
	edges[len(zones)] = len(s.Rows)
	pred := spec.Predicate()
	keep := make([]bool, len(s.Rows))
	prefix, partial, err := shard.ForBlocks(c, 0, edges, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		for i := lo; i < hi; {
			z := &zones[i/columnar.DefaultZoneRows]
			end := z.Hi
			if end > hi {
				end = hi
			}
			if z.CanPrune(spec.Rel, spec.Broad, spec.Query) {
				for k := i; k < end; k++ {
					if err := c.Point(1); err != nil {
						return k - lo, err
					}
					keep[k] = false
				}
			} else {
				for k := i; k < end; k++ {
					if err := c.Point(1); err != nil {
						return k - lo, err
					}
					keep[k] = pred(s.Rows[k])
				}
			}
			i = end
		}
		return hi - lo, nil
	})
	if err != nil {
		return nil, false, err
	}
	var scanned, skipped int64
	//lint:gea ctlcharge -- O(zones) post-hoc statistics replay over the already-metered prefix
	for zi := range zones {
		if zones[zi].Lo >= prefix {
			break
		}
		if zones[zi].CanPrune(spec.Rel, spec.Broad, spec.Query) {
			skipped++
		} else {
			scanned++
		}
	}
	sp.AddBlocks(columnar.StatBlocksScanned, scanned)
	sp.AddBlocks(columnar.StatBlocksSkipped, skipped)
	var rows []SumyRow
	//lint:gea ctlcharge -- compaction of the already-metered shard prefix; every row was charged inside the kernel above
	for i := 0; i < prefix; i++ {
		if keep[i] {
			rows = append(rows, s.Rows[i])
		}
	}
	return NewSumy(name, rows, s.ExtraCols), partial, nil
}

// RangeSearchEngine is RangeSearchWith with an explicit engine; see
// rangeSearch for the columnar collection strategy.
func RangeSearchEngine(c *exec.Ctl, sumys []*Sumy, firstTag, lastTag sage.TagID, cond RangeCondition, eng Engine) ([]RangeSearchRow, bool, error) {
	return rangeSearch(c, sumys, firstTag, lastTag, cond, sumyColumnar(eng))
}

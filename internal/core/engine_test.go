package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"gea/internal/columnar"
	"gea/internal/exec"
	"gea/internal/exec/execwalk"
	"gea/internal/interval"
	"gea/internal/sage"
)

// This file pins the equivalence wall between the row and columnar
// engines: for every operator family with a columnar path, WalkEngines
// asserts bit-identical full results, identical unit totals, and
// flagged budget prefixes at workers 1 and 4 — plus a handcrafted
// block-layout dataset proving the zone maps actually skip blocks and
// that skipping never changes the answer.

func testEngine(t *testing.T, s string) Engine {
	t.Helper()
	eng, err := ParseEngine(s)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// blockyDataset lays out 32 libraries over 4 tags so that the default
// 8-row blocks are cleanly bimodal: the first 16 rows carry high counts
// of tag 0 (and only they carry tag 3), the last 16 rows carry tag 0
// near zero. Blocks 2 and 3 are therefore provably prunable for any
// tag-0 range above ~10.
func blockyDataset() *sage.Dataset {
	tags := []sage.TagID{
		sage.MustParseTag("AAAAAAAAAA"),
		sage.MustParseTag("CCCCCCCCCC"),
		sage.MustParseTag("GGGGGGGGGG"),
		sage.MustParseTag("TTTTTTTTTT"),
	}
	c := &sage.Corpus{}
	for i := 0; i < 32; i++ {
		tissue := "brain"
		if i >= 16 {
			tissue = "kidney"
		}
		l := sage.NewLibrary(sage.LibraryMeta{
			ID: i + 1, Name: fmt.Sprintf("L%02d", i), Tissue: tissue,
			State: sage.Cancer, Source: sage.BulkTissue,
		})
		if i < 16 {
			l.Add(tags[0], float64(100+i))
			l.Add(tags[3], 7)
		} else {
			l.Add(tags[0], float64(i%3)) // 0..2, including true zeros
		}
		l.Add(tags[1], float64(10+i%4))
		c.Libraries = append(c.Libraries, l)
	}
	return sage.BuildWithTags(c, tags)
}

// TestCrossEnginePopulate walks populate's candidate verification
// across both engines on a random corpus, using a brain-aggregated
// SUMY so the residual conditions are genuinely selective.
func TestCrossEnginePopulate(t *testing.T) {
	d := propDataset(t, 3)
	s := randSumy(t, rand.New(rand.NewSource(99)), d, "popdef")
	execwalk.WalkEngines(t, execwalk.EngineTarget{
		Name: "Populate",
		Run: func(ctx context.Context, engine string, workers int, lim exec.Limits) ([]string, exec.Trace, error) {
			lim.Workers = workers
			e, _, tr, err := PopulateCtx(ctx, "xe", s, d, nil, PopulateOptions{Engine: testEngine(t, engine)}, lim)
			if err != nil {
				return nil, tr, err
			}
			out := make([]string, len(e.Rows))
			for i, r := range e.Rows {
				out[i] = fmt.Sprintf("lib%d", r)
			}
			return out, tr, nil
		},
	})
}

// TestCrossEngineAggregate walks the per-tag aggregation across both
// engines; the columnar gather decodes compressed blocks, so this also
// pins encode/decode bit-fidelity end to end.
func TestCrossEngineAggregate(t *testing.T) {
	d := propDataset(t, 17)
	rng := rand.New(rand.NewSource(101))
	e, err := NewEnum("xeagg", d, randIndices(rng, d.NumLibraries(), 3), randIndices(rng, d.NumTags(), 16))
	if err != nil {
		t.Fatal(err)
	}
	execwalk.WalkEngines(t, execwalk.EngineTarget{
		Name: "Aggregate",
		Run: func(ctx context.Context, engine string, workers int, lim exec.Limits) ([]string, exec.Trace, error) {
			lim.Workers = workers
			s, tr, err := AggregateCtx(ctx, "xe", e, AggregateOptions{WithMedian: true, Engine: testEngine(t, engine)}, lim)
			if err != nil {
				return nil, tr, err
			}
			return renderSumy(s), tr, nil
		},
	})
}

// TestCrossEngineDiff walks the gap join: hash probes on the row
// engine, sort-merge on the columnar engine.
func TestCrossEngineDiff(t *testing.T) {
	d := propDataset(t, 42)
	rng := rand.New(rand.NewSource(7))
	a := randSumy(t, rng, d, "xdiffa")
	b := randSumy(t, rng, d, "xdiffb")
	execwalk.WalkEngines(t, execwalk.EngineTarget{
		Name: "Diff",
		Run: func(ctx context.Context, engine string, workers int, lim exec.Limits) ([]string, exec.Trace, error) {
			lim.Workers = workers
			g, tr, err := DiffEngineCtx(ctx, "xe", a, b, testEngine(t, engine), lim)
			if err != nil {
				return nil, tr, err
			}
			out := make([]string, len(g.Rows))
			for i, r := range g.Rows {
				out[i] = fmt.Sprintf("%v %v", r.Tag, r.Values[0])
			}
			return out, tr, nil
		},
	})
}

// TestCrossEngineRangeSearch walks the multi-SUMY range search: full
// scans on the row engine, binary-searched tag spans on the columnar
// engine.
func TestCrossEngineRangeSearch(t *testing.T) {
	d := propDataset(t, 3)
	rng := rand.New(rand.NewSource(13))
	a := randSumy(t, rng, d, "xrsa")
	b := randSumy(t, rng, d, "xrsb")
	first, last := a.Rows[1].Tag, a.Rows[len(a.Rows)-2].Tag
	query := interval.Interval{Min: 0, Max: 1e6}
	execwalk.WalkEngines(t, execwalk.EngineTarget{
		Name: "RangeSearch",
		Run: func(ctx context.Context, engine string, workers int, lim exec.Limits) ([]string, exec.Trace, error) {
			eng := testEngine(t, engine)
			lim.Workers = workers
			c := exec.New(ctx, lim)
			var rows []RangeSearchRow
			var partial bool
			err := exec.Guard("core.RangeSearch", "", func() error {
				var err error
				rows, partial, err = RangeSearchEngine(c, []*Sumy{a, b}, first, last, BroadOverlap(query), eng)
				return err
			})
			tr := c.Snapshot(partial)
			if err != nil {
				return nil, tr, err
			}
			out := make([]string, len(rows))
			for i, r := range rows {
				line := fmt.Sprintf("%v", r.Tag)
				for _, cell := range r.Cells {
					line += fmt.Sprintf(" %v[%x,%x]", cell.Outcome, cell.Range.Min, cell.Range.Max)
				}
				out[i] = line
			}
			return out, tr, nil
		},
	})
}

// TestCrossEngineSelectAndSetOps walks the SUMY-level scans — range
// selection (zone-pruned on the columnar engine) and the three set
// operators (sort-merge on the columnar engine).
func TestCrossEngineSelectAndSetOps(t *testing.T) {
	d := propDataset(t, 17)
	rng := rand.New(rand.NewSource(29))
	a := randSumy(t, rng, d, "xseta")
	b := randSumy(t, rng, d, "xsetb")

	specs := map[string]RangeSpec{
		"broad":  {Broad: true, Query: interval.Interval{Min: 5, Max: 500}},
		"before": {Rel: interval.Before, Query: interval.Interval{Min: 1000, Max: 2000}},
		"during": {Rel: interval.During, Query: interval.Interval{Min: 0, Max: 1e9}},
	}
	for label, spec := range specs {
		spec := spec
		execwalk.WalkEngines(t, execwalk.EngineTarget{
			Name: "SelectRange/" + label,
			Run: func(ctx context.Context, engine string, workers int, lim exec.Limits) ([]string, exec.Trace, error) {
				lim.Workers = workers
				out, tr, err := SelectSumyRangeCtx(ctx, "xe", a, spec, testEngine(t, engine), lim)
				if err != nil {
					return nil, tr, err
				}
				return renderSumy(out), tr, nil
			},
		})
	}

	setOps := map[string]func(c *exec.Ctl, name string, x, y *Sumy, eng Engine) (*Sumy, bool, error){
		"minus":     MinusSumyEngine,
		"intersect": IntersectSumyEngine,
	}
	for label, op := range setOps {
		op := op
		execwalk.WalkEngines(t, execwalk.EngineTarget{
			Name: "SetOp/" + label,
			Run: func(ctx context.Context, engine string, workers int, lim exec.Limits) ([]string, exec.Trace, error) {
				eng := testEngine(t, engine)
				lim.Workers = workers
				c := exec.New(ctx, lim)
				var out *Sumy
				var partial bool
				err := exec.Guard("core."+label, "xe", func() error {
					var err error
					out, partial, err = op(c, "xe", a, b, eng)
					return err
				})
				tr := c.Snapshot(partial)
				if err != nil {
					return nil, tr, err
				}
				return renderSumy(out), tr, nil
			},
		})
	}

	// Union's budget-truncated result is not a prefix of its sorted full
	// output (b-only tags interleave after sorting), so the generic
	// prefix walk does not apply; instead pin that both engines agree
	// at every budget and worker count — both split the same na+nb item
	// space with the same grain, so even the truncation point must
	// match. Unit totals are pinned only for full runs and at one
	// worker: under a budget stop at workers > 1 shards already in
	// flight past the first stop still charge their slices, so the
	// charged total is scheduling-dependent (the same reason the shard
	// budget walks assert Units <= budget, never cross-worker equality).
	t.Run("SetOp/union", func(t *testing.T) {
		runUnion := func(eng Engine, workers int, lim exec.Limits) ([]string, exec.Trace, error) {
			lim.Workers = workers
			c := exec.New(context.Background(), lim)
			var out *Sumy
			var partial bool
			err := exec.Guard("core.UnionSumy", "xe", func() error {
				var err error
				out, partial, err = UnionSumyEngine(c, "xe", a, b, eng)
				return err
			})
			tr := c.Snapshot(partial)
			if err != nil {
				return nil, tr, err
			}
			return renderSumy(out), tr, nil
		}
		base, baseTr, err := runUnion(EngineRow, 1, exec.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		budgets := append([]int64{0}, baseTr.Units/3, baseTr.Units-1)
		for _, w := range []int{1, 4} {
			for _, bgt := range budgets {
				lim := exec.Limits{}
				if bgt > 0 {
					lim.Budget = bgt
				}
				rows, rowTr, err := runUnion(EngineRow, w, lim)
				if err != nil {
					t.Fatalf("row budget %d workers %d: %v", bgt, w, err)
				}
				cols, colTr, err := runUnion(EngineColumnar, w, lim)
				if err != nil {
					t.Fatalf("columnar budget %d workers %d: %v", bgt, w, err)
				}
				if fmt.Sprint(rows) != fmt.Sprint(cols) {
					t.Fatalf("budget %d workers %d: engines disagree:\nrow: %v\ncolumnar: %v", bgt, w, rows, cols)
				}
				if rowTr.Partial != colTr.Partial {
					t.Fatalf("budget %d workers %d: partial flags disagree: row %v columnar %v",
						bgt, w, rowTr.Partial, colTr.Partial)
				}
				if bgt > 0 && (rowTr.Units > bgt || colTr.Units > bgt) {
					t.Fatalf("budget %d workers %d: overcharged: row %d columnar %d",
						bgt, w, rowTr.Units, colTr.Units)
				}
				if (bgt == 0 || w == 1) && rowTr.Units != colTr.Units {
					t.Fatalf("budget %d workers %d: units disagree: row %d columnar %d",
						bgt, w, rowTr.Units, colTr.Units)
				}
				if bgt == 0 && fmt.Sprint(rows) != fmt.Sprint(base) {
					t.Fatalf("workers %d: full union differs from baseline", w)
				}
			}
		}
	})
}

// TestCrossEngineZoneSkipping proves the zone maps earn their keep on
// the handcrafted bimodal layout: the columnar populate skips exactly
// the two blocks whose tag-0 counts provably fail the condition,
// evaluates no conditions inside them, and still returns an ENUM
// DeepEqual-identical to the row engine's.
func TestCrossEngineZoneSkipping(t *testing.T) {
	d := blockyDataset()
	s := NewSumy("cond", []SumyRow{
		{Tag: d.Tags[0], Range: interval.Interval{Min: 90, Max: 130}},
	}, nil)

	rowEnum, rowStats, err := PopulateWithOptions("row", s, d, nil, PopulateOptions{Engine: EngineRow})
	if err != nil {
		t.Fatal(err)
	}
	colEnum, colStats, err := PopulateWithOptions("row", s, d, nil, PopulateOptions{Engine: EngineColumnar})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rowEnum, colEnum) {
		t.Fatalf("engines disagree:\nrow: %v\ncolumnar: %v", rowEnum.Rows, colEnum.Rows)
	}
	if len(rowEnum.Rows) != 16 || rowEnum.Rows[0] != 0 || rowEnum.Rows[15] != 15 {
		t.Fatalf("populate kept %v, want libraries 0..15", rowEnum.Rows)
	}
	if colStats.BlocksSkipped != 2 || colStats.BlocksScanned != 2 {
		t.Fatalf("columnar stats: scanned %d skipped %d, want 2 and 2",
			colStats.BlocksScanned, colStats.BlocksSkipped)
	}
	if colStats.BytesDecoded <= 0 {
		t.Fatalf("columnar engine decoded %d bytes", colStats.BytesDecoded)
	}
	// Skipped blocks contribute zero condition evaluations: 16 surviving
	// candidates check 1 condition each; the row engine checks all 32.
	if colStats.ConditionsChecked != 16 || rowStats.ConditionsChecked != 32 {
		t.Fatalf("conditions checked: columnar %d row %d, want 16 and 32",
			colStats.ConditionsChecked, rowStats.ConditionsChecked)
	}

	// The store the run built is memoised on the dataset, so Auto now
	// resolves to it.
	if columnar.Peek(d) == nil {
		t.Fatal("columnar run did not memoise its store")
	}
	autoEnum, autoStats, err := PopulateWithOptions("row", s, d, nil, PopulateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rowEnum, autoEnum) || autoStats.BlocksSkipped != 2 {
		t.Fatalf("auto engine did not pick up the memoised store (skipped %d)", autoStats.BlocksSkipped)
	}
}

// TestCrossEngineNaNNeverPruned pins the soundness edge the row engine
// dictates: a NaN count passes every range condition (both comparisons
// are false), so a block containing NaN must never be zone-pruned.
func TestCrossEngineNaNNeverPruned(t *testing.T) {
	d := blockyDataset()
	d.Expr[20][0] = nanValue() // inside an otherwise prunable block
	s := NewSumy("cond", []SumyRow{
		{Tag: d.Tags[0], Range: interval.Interval{Min: 90, Max: 130}},
	}, nil)
	rowEnum, _, err := PopulateWithOptions("row", s, d, nil, PopulateOptions{Engine: EngineRow})
	if err != nil {
		t.Fatal(err)
	}
	colEnum, colStats, err := PopulateWithOptions("row", s, d, nil, PopulateOptions{Engine: EngineColumnar})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rowEnum, colEnum) {
		t.Fatalf("engines disagree under NaN:\nrow: %v\ncolumnar: %v", rowEnum.Rows, colEnum.Rows)
	}
	found := false
	for _, r := range rowEnum.Rows {
		if r == 20 {
			found = true
		}
	}
	if !found {
		t.Fatal("row engine did not keep the NaN library; the fixture is wrong")
	}
	// Only the NaN block loses its pruning; the other cold block stays
	// skipped.
	if colStats.BlocksSkipped != 1 {
		t.Fatalf("columnar skipped %d blocks, want 1 (the NaN block must scan)", colStats.BlocksSkipped)
	}
}

func nanValue() float64 {
	z := 0.0
	return z / z
}

package core

import (
	"context"
	"fmt"
	"testing"

	"gea/internal/exec"
	"gea/internal/exec/execwalk"
	"gea/internal/fascicle"
	"gea/internal/interval"
	"gea/internal/sage"
)

// execFixture builds the SUMY/ENUM inputs the governed operators run
// over: the full dataset, a SUMY per tissue signature, and tag indexes.
func execFixture(t *testing.T) (d *sage.Dataset, cancer, normal *Sumy, idx *TagIndexes) {
	t.Helper()
	d = smallDataset()
	mk := func(name string, rows []int) *Sumy {
		e, err := NewEnum(name+"_members", d, rows, []int{0, 1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		s, err := Aggregate(name, e, AggregateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cancer = mk("cancerSumy", []int{0, 1, 2})
	normal = mk("normalSumy", []int{3, 4})
	var err error
	idx, err = BuildTagIndexes(d, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	return d, cancer, normal, idx
}

func TestPopulateCheckpointWalk(t *testing.T) {
	d, cancer, _, idx := execFixture(t)
	for _, tc := range []struct {
		name string
		idx  *TagIndexes
	}{
		{"Populate/sequential", nil},
		{"Populate/indexed", idx},
	} {
		execwalk.Walk(t, execwalk.Target{
			Name: tc.name,
			Run: func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
				_, _, tr, err := PopulateCtx(ctx, "walkEnum", cancer, d, tc.idx, PopulateOptions{}, lim)
				return tr, err
			},
			MaxUnitStep: 1,
		})
	}
}

func TestAggregateCheckpointWalk(t *testing.T) {
	d := smallDataset()
	e := FullEnum("SAGE", d)
	execwalk.Walk(t, execwalk.Target{
		Name: "Aggregate",
		Run: func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := AggregateCtx(ctx, "walkSumy", e, AggregateOptions{WithMedian: true}, lim)
			return tr, err
		},
		MaxUnitStep: 1,
	})
}

func TestDiffCheckpointWalk(t *testing.T) {
	_, cancer, normal, _ := execFixture(t)
	execwalk.Walk(t, execwalk.Target{
		Name: "Diff",
		Run: func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := DiffCtx(ctx, "walkGap", cancer, normal, lim)
			return tr, err
		},
		MaxUnitStep: 1,
	})
}

func TestRangeSearchCheckpointWalk(t *testing.T) {
	_, cancer, normal, _ := execFixture(t)
	first := sage.MustParseTag("AAAAAAAAAA")
	last := sage.MustParseTag("TTTTTTTTTT")
	execwalk.Walk(t, execwalk.Target{
		Name: "RangeSearch",
		Run: func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := RangeSearchCtx(ctx, []*Sumy{cancer, normal}, first, last,
				BroadOverlap(interval.Interval{Min: 0, Max: 1000}), lim)
			return tr, err
		},
		MaxUnitStep: 1,
	})
}

func mineParams(d *sage.Dataset) fascicle.Params {
	tol := make(map[sage.TagID]float64, d.NumTags())
	for _, tg := range d.Tags {
		tol[tg] = 25
	}
	return fascicle.Params{K: 2, Tolerance: tol, MinSize: 2}
}

func TestMineCheckpointWalk(t *testing.T) {
	d := smallDataset()
	p := mineParams(d)
	for _, tc := range []struct {
		name string
		alg  Algorithm
	}{
		{"Mine/lattice", LatticeAlgorithm},
		{"Mine/greedy", GreedyAlgorithm},
	} {
		execwalk.Walk(t, execwalk.Target{
			Name: tc.name,
			Run: func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
				_, tr, err := MineCtx(ctx, "walk", d, p, tc.alg, lim)
				return tr, err
			},
			MaxUnitStep: 1,
		})
	}
}

// TestMinePartialResultsAreComplete asserts the composite operator's
// contract: any MineResult returned under a budget is fully converted
// (fascicle + SUMY + ENUM all present) and the truncation is flagged.
func TestMinePartialResultsAreComplete(t *testing.T) {
	d := smallDataset()
	p := mineParams(d)
	full, err := Mine("walk", d, p, LatticeAlgorithm)
	if err != nil {
		t.Fatal(err)
	}
	for budget := int64(1); budget < 200; budget += 13 {
		rs, tr, err := MineCtx(context.Background(), "walk", d, p, LatticeAlgorithm, exec.Limits{Budget: budget})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		for _, r := range rs {
			if r.Fascicle == nil || r.Sumy == nil || r.Enum == nil {
				t.Fatalf("budget %d: half-converted MineResult emitted: %+v", budget, r)
			}
		}
		if !tr.Partial && len(rs) != len(full) {
			t.Fatalf("budget %d: silent truncation: %d of %d results, no partial flag",
				budget, len(rs), len(full))
		}
	}
}

// renderSumy gives one canonical line per SUMY row; %x renders each
// float losslessly, so "bit-identical at any worker count" really is a
// string comparison.
func renderSumy(s *Sumy) []string {
	out := make([]string, len(s.Rows))
	for i, r := range s.Rows {
		line := fmt.Sprintf("%v [%x,%x] mean=%x std=%x", r.Tag, r.Range.Min, r.Range.Max, r.Mean, r.Std)
		for _, col := range s.ExtraCols {
			line += fmt.Sprintf(" %s=%x", col, r.Extra[col])
		}
		out[i] = line
	}
	return out
}

// TestShardEquivPopulate drives populate's candidate-verification scan
// through the sharded-equivalence suite. The SUMY admits every library,
// so each charged candidate keeps exactly one ENUM row and the prefix
// left by a budget stop is visible in the result itself.
func TestShardEquivPopulate(t *testing.T) {
	d := smallDataset()
	rows := make([]SumyRow, 0, d.NumTags())
	for _, tg := range d.Tags {
		rows = append(rows, SumyRow{Tag: tg, Range: interval.Interval{Min: 0, Max: 1e9}})
	}
	allPass := NewSumy("allPass", rows, nil)
	execwalk.WalkSharded(t, execwalk.ShardedTarget{
		Name: "Populate",
		Run: func(ctx context.Context, workers int, lim exec.Limits) ([]string, exec.Trace, error) {
			lim.Workers = workers
			e, _, tr, err := PopulateCtx(ctx, "shardEnum", allPass, d, nil, PopulateOptions{}, lim)
			if err != nil {
				return nil, tr, err
			}
			out := make([]string, len(e.Rows))
			for i, r := range e.Rows {
				out[i] = fmt.Sprintf("lib%d", r)
			}
			return out, tr, nil
		},
	})
}

func TestShardEquivAggregate(t *testing.T) {
	d := smallDataset()
	e := FullEnum("SAGE", d)
	execwalk.WalkSharded(t, execwalk.ShardedTarget{
		Name: "Aggregate",
		Run: func(ctx context.Context, workers int, lim exec.Limits) ([]string, exec.Trace, error) {
			lim.Workers = workers
			s, tr, err := AggregateCtx(ctx, "shardSumy", e, AggregateOptions{WithMedian: true}, lim)
			if err != nil {
				return nil, tr, err
			}
			return renderSumy(s), tr, nil
		},
	})
}

// TestShardEquivDiff joins two SUMY tables that share every tag, so
// each charged tag emits exactly one GAP row.
func TestShardEquivDiff(t *testing.T) {
	_, cancer, normal, _ := execFixture(t)
	execwalk.WalkSharded(t, execwalk.ShardedTarget{
		Name: "Diff",
		Run: func(ctx context.Context, workers int, lim exec.Limits) ([]string, exec.Trace, error) {
			lim.Workers = workers
			g, tr, err := DiffCtx(ctx, "shardGap", cancer, normal, lim)
			if err != nil {
				return nil, tr, err
			}
			out := make([]string, len(g.Rows))
			for i, r := range g.Rows {
				out[i] = fmt.Sprintf("%v null=%v v=%x", r.Tag, r.Values[0].Null, r.Values[0].V)
			}
			return out, tr, nil
		},
	})
}

func TestShardEquivRangeSearch(t *testing.T) {
	_, cancer, normal, _ := execFixture(t)
	first := sage.MustParseTag("AAAAAAAAAA")
	last := sage.MustParseTag("TTTTTTTTTT")
	cond := BroadOverlap(interval.Interval{Min: 0, Max: 1000})
	execwalk.WalkSharded(t, execwalk.ShardedTarget{
		Name: "RangeSearch",
		Run: func(ctx context.Context, workers int, lim exec.Limits) ([]string, exec.Trace, error) {
			lim.Workers = workers
			rows, tr, err := RangeSearchCtx(ctx, []*Sumy{cancer, normal}, first, last, cond, lim)
			if err != nil {
				return nil, tr, err
			}
			out := make([]string, len(rows))
			for i, r := range rows {
				line := fmt.Sprintf("%v", r.Tag)
				for _, cell := range r.Cells {
					line += fmt.Sprintf(" %v[%x,%x]", cell.Outcome, cell.Range.Min, cell.Range.Max)
				}
				out[i] = line
			}
			return out, tr, nil
		},
	})
}

// TestShardEquivSelectSumy covers sumySetScan, the kernel shared by
// selection, minus and intersection. The keep-all predicate makes every
// charged tag emit one row, as the prefix contract requires.
func TestShardEquivSelectSumy(t *testing.T) {
	_, cancer, _, _ := execFixture(t)
	keepAll := func(SumyRow) bool { return true }
	execwalk.WalkSharded(t, execwalk.ShardedTarget{
		Name: "SelectSumy",
		Run: func(ctx context.Context, workers int, lim exec.Limits) ([]string, exec.Trace, error) {
			lim.Workers = workers
			s, tr, err := SelectSumyCtx(ctx, "shardSel", cancer, keepAll, lim)
			if err != nil {
				return nil, tr, err
			}
			return renderSumy(s), tr, nil
		},
	})
}

// TestShardEquivUnionSumy covers the union kernel. The operands are
// disjoint and a's tags all sort before b's, so the sorted output order
// equals the charge order and every unit keeps one row.
func TestShardEquivUnionSumy(t *testing.T) {
	mk := func(tag string, lo, hi float64) SumyRow {
		return SumyRow{Tag: sage.MustParseTag(tag), Range: interval.Interval{Min: lo, Max: hi}}
	}
	a := NewSumy("ua", []SumyRow{mk("AAAAAAAAAA", 1, 2), mk("AAAACCCCGG", 3, 4), mk("CCCCAAAAAA", 5, 6)}, nil)
	b := NewSumy("ub", []SumyRow{mk("GGGGAAAAAA", 7, 8), mk("TTTTAAAAAA", 9, 10)}, nil)
	execwalk.WalkSharded(t, execwalk.ShardedTarget{
		Name: "UnionSumy",
		Run: func(ctx context.Context, workers int, lim exec.Limits) ([]string, exec.Trace, error) {
			lim.Workers = workers
			s, tr, err := UnionSumyCtx(ctx, "shardUnion", a, b, lim)
			if err != nil {
				return nil, tr, err
			}
			return renderSumy(s), tr, nil
		},
	})
}

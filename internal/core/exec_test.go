package core

import (
	"context"
	"testing"

	"gea/internal/exec"
	"gea/internal/exec/execwalk"
	"gea/internal/fascicle"
	"gea/internal/interval"
	"gea/internal/sage"
)

// execFixture builds the SUMY/ENUM inputs the governed operators run
// over: the full dataset, a SUMY per tissue signature, and tag indexes.
func execFixture(t *testing.T) (d *sage.Dataset, cancer, normal *Sumy, idx *TagIndexes) {
	t.Helper()
	d = smallDataset()
	mk := func(name string, rows []int) *Sumy {
		e, err := NewEnum(name+"_members", d, rows, []int{0, 1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		s, err := Aggregate(name, e, AggregateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cancer = mk("cancerSumy", []int{0, 1, 2})
	normal = mk("normalSumy", []int{3, 4})
	var err error
	idx, err = BuildTagIndexes(d, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	return d, cancer, normal, idx
}

func TestPopulateCheckpointWalk(t *testing.T) {
	d, cancer, _, idx := execFixture(t)
	for _, tc := range []struct {
		name string
		idx  *TagIndexes
	}{
		{"Populate/sequential", nil},
		{"Populate/indexed", idx},
	} {
		execwalk.Walk(t, execwalk.Target{
			Name: tc.name,
			Run: func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
				_, _, tr, err := PopulateCtx(ctx, "walkEnum", cancer, d, tc.idx, PopulateOptions{}, lim)
				return tr, err
			},
			MaxUnitStep: 1,
		})
	}
}

func TestAggregateCheckpointWalk(t *testing.T) {
	d := smallDataset()
	e := FullEnum("SAGE", d)
	execwalk.Walk(t, execwalk.Target{
		Name: "Aggregate",
		Run: func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := AggregateCtx(ctx, "walkSumy", e, AggregateOptions{WithMedian: true}, lim)
			return tr, err
		},
		MaxUnitStep: 1,
	})
}

func TestDiffCheckpointWalk(t *testing.T) {
	_, cancer, normal, _ := execFixture(t)
	execwalk.Walk(t, execwalk.Target{
		Name: "Diff",
		Run: func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := DiffCtx(ctx, "walkGap", cancer, normal, lim)
			return tr, err
		},
		MaxUnitStep: 1,
	})
}

func TestRangeSearchCheckpointWalk(t *testing.T) {
	_, cancer, normal, _ := execFixture(t)
	first := sage.MustParseTag("AAAAAAAAAA")
	last := sage.MustParseTag("TTTTTTTTTT")
	execwalk.Walk(t, execwalk.Target{
		Name: "RangeSearch",
		Run: func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := RangeSearchCtx(ctx, []*Sumy{cancer, normal}, first, last,
				BroadOverlap(interval.Interval{Min: 0, Max: 1000}), lim)
			return tr, err
		},
		MaxUnitStep: 1,
	})
}

func mineParams(d *sage.Dataset) fascicle.Params {
	tol := make(map[sage.TagID]float64, d.NumTags())
	for _, tg := range d.Tags {
		tol[tg] = 25
	}
	return fascicle.Params{K: 2, Tolerance: tol, MinSize: 2}
}

func TestMineCheckpointWalk(t *testing.T) {
	d := smallDataset()
	p := mineParams(d)
	for _, tc := range []struct {
		name string
		alg  Algorithm
	}{
		{"Mine/lattice", LatticeAlgorithm},
		{"Mine/greedy", GreedyAlgorithm},
	} {
		execwalk.Walk(t, execwalk.Target{
			Name: tc.name,
			Run: func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
				_, tr, err := MineCtx(ctx, "walk", d, p, tc.alg, lim)
				return tr, err
			},
			MaxUnitStep: 1,
		})
	}
}

// TestMinePartialResultsAreComplete asserts the composite operator's
// contract: any MineResult returned under a budget is fully converted
// (fascicle + SUMY + ENUM all present) and the truncation is flagged.
func TestMinePartialResultsAreComplete(t *testing.T) {
	d := smallDataset()
	p := mineParams(d)
	full, err := Mine("walk", d, p, LatticeAlgorithm)
	if err != nil {
		t.Fatal(err)
	}
	for budget := int64(1); budget < 200; budget += 13 {
		rs, tr, err := MineCtx(context.Background(), "walk", d, p, LatticeAlgorithm, exec.Limits{Budget: budget})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		for _, r := range rs {
			if r.Fascicle == nil || r.Sumy == nil || r.Enum == nil {
				t.Fatalf("budget %d: half-converted MineResult emitted: %+v", budget, r)
			}
		}
		if !tr.Partial && len(rs) != len(full) {
			t.Fatalf("budget %d: silent truncation: %d of %d results, no partial flag",
				budget, len(rs), len(full))
		}
	}
}

package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"gea/internal/exec"
	"gea/internal/exec/shard"
)

// Diff takes two SUMY tables and produces a GAP table over their common tags
// (the diff() operator of Section 3.2.2). For each common tag,
//
//	gap = (mu_hi - sigma_hi) - (mu_lo + sigma_lo)
//
// where "hi" is the SUMY table with the higher mean. If the (mu-sigma,
// mu+sigma) bands overlap — the quantity is not positive — the gap level is
// NULL (Figure 3.4). Otherwise the sign is positive when the *first* table
// has the higher mean and negative when it has the lower (Figure 3.5).
func Diff(name string, a, b *Sumy) (*Gap, error) {
	g, _, err := DiffWith(exec.Background(), name, a, b)
	return g, err
}

// DiffCtx is Diff under execution governance; on budget exhaustion the
// tags differenced so far form a flagged partial GAP.
func DiffCtx(ctx context.Context, name string, a, b *Sumy, lim exec.Limits) (*Gap, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var g *Gap
	var partial bool
	err := exec.Guard("core.Diff", name, func() error {
		var err error
		g, partial, err = DiffWith(c, name, a, b)
		return err
	})
	if err != nil {
		g = nil
	}
	return g, c.Snapshot(partial), err
}

// DiffWith is the metered implementation; one work unit is one tag of
// the first SUMY table examined. The per-tag joins evaluate through
// the shard substrate, so the result is bit-identical at any worker
// count.
func DiffWith(c *exec.Ctl, name string, a, b *Sumy) (_ *Gap, partial bool, err error) {
	sp := c.StartSpan("core.Diff")
	sp.SetInput("%s (%d rows) vs %s (%d rows)", a.Name, len(a.Rows), b.Name, len(b.Rows))
	defer c.EndSpan(sp, &partial, &err)
	out := make([]GapRow, len(a.Rows))
	has := make([]bool, len(a.Rows))
	prefix, partial, err := shard.For(c, len(a.Rows), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		for i := lo; i < hi; i++ {
			if err := c.Point(1); err != nil {
				return i - lo, err
			}
			ra := a.Rows[i]
			if rb, ok := b.Row(ra.Tag); ok {
				out[i] = GapRow{Tag: ra.Tag, Values: []GapValue{gapOf(ra, rb)}}
				has[i] = true
			}
		}
		return hi - lo, nil
	})
	if err != nil {
		return nil, false, err
	}
	var rows []GapRow
	//lint:gea ctlcharge -- compaction of the already-metered shard prefix; every row was charged inside the kernel above
	for i := 0; i < prefix; i++ {
		if has[i] {
			rows = append(rows, out[i])
		}
	}
	g, err := NewGap(name, []string{"gap"}, rows)
	if err != nil {
		return nil, false, err
	}
	return g, partial, nil
}

// gapOf computes the gap level between a (first table) and b (second).
func gapOf(a, b SumyRow) GapValue {
	hi, lo := a, b
	sign := 1.0
	if b.Mean > a.Mean {
		hi, lo = b, a
		sign = -1.0
	}
	mag := (hi.Mean - hi.Std) - (lo.Mean + lo.Std)
	if mag <= 0 {
		return NullGap
	}
	return GapValue{V: sign * mag}
}

// GapPredicate decides whether a GAP row qualifies for selection.
type GapPredicate func(GapRow) bool

// SelectGap applies relational selection to a GAP table, producing another
// GAP table.
func SelectGap(name string, g *Gap, pred GapPredicate) (*Gap, error) {
	var rows []GapRow
	for _, r := range g.Rows {
		if pred(r) {
			rows = append(rows, r)
		}
	}
	return NewGap(name, g.Cols, rows)
}

// Negative holds when the gap value in column col is non-NULL and < 0 — the
// "keep only the tags with negative gap values" selection of case study 3.
func Negative(col int) GapPredicate {
	return func(r GapRow) bool { return !r.Values[col].Null && r.Values[col].V < 0 }
}

// Positive holds when the gap value in column col is non-NULL and > 0.
func Positive(col int) GapPredicate {
	return func(r GapRow) bool { return !r.Values[col].Null && r.Values[col].V > 0 }
}

// NonNull holds when the gap value in column col is non-NULL.
func NonNull(col int) GapPredicate {
	return func(r GapRow) bool { return !r.Values[col].Null }
}

// MagnitudeAtLeast holds when |gap| >= x in column col (NULLs excluded).
func MagnitudeAtLeast(col int, x float64) GapPredicate {
	return func(r GapRow) bool { return !r.Values[col].Null && math.Abs(r.Values[col].V) >= x }
}

// ProjectGap keeps only the named gap columns, in the given order (the
// projection operator on GAP tables).
func ProjectGap(name string, g *Gap, cols ...string) (*Gap, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := g.Col(c)
		if j < 0 {
			return nil, fmt.Errorf("core: gap %s has no column %q", g.Name, c)
		}
		idx[i] = j
	}
	rows := make([]GapRow, len(g.Rows))
	for i, r := range g.Rows {
		vals := make([]GapValue, len(idx))
		for k, j := range idx {
			vals[k] = r.Values[j]
		}
		rows[i] = GapRow{Tag: r.Tag, Values: vals}
	}
	return NewGap(name, cols, rows)
}

// MinusGap extracts the tags appearing in a but missing in b, keeping a's
// columns (Figure 3.6c; the unique-genes analysis of case study 4).
func MinusGap(name string, a, b *Gap) (*Gap, error) {
	var rows []GapRow
	for _, r := range a.Rows {
		if _, ok := b.Row(r.Tag); !ok {
			rows = append(rows, r)
		}
	}
	return NewGap(name, a.Cols, rows)
}

// IntersectGap extracts the common tags of a and b with the gap columns of
// both, a's first (Figure 3.6d).
func IntersectGap(name string, a, b *Gap) (*Gap, error) {
	cols := combineCols(a, b)
	var rows []GapRow
	for _, ra := range a.Rows {
		rb, ok := b.Row(ra.Tag)
		if !ok {
			continue
		}
		vals := make([]GapValue, 0, len(cols))
		vals = append(vals, ra.Values...)
		vals = append(vals, rb.Values...)
		rows = append(rows, GapRow{Tag: ra.Tag, Values: vals})
	}
	return NewGap(name, cols, rows)
}

// UnionGap combines all tags of a and b with the gap columns of both;
// values missing on one side are NULL.
func UnionGap(name string, a, b *Gap) (*Gap, error) {
	cols := combineCols(a, b)
	nullsA := make([]GapValue, len(a.Cols))
	nullsB := make([]GapValue, len(b.Cols))
	for i := range nullsA {
		nullsA[i] = NullGap
	}
	for i := range nullsB {
		nullsB[i] = NullGap
	}
	var rows []GapRow
	for _, ra := range a.Rows {
		vals := make([]GapValue, 0, len(cols))
		vals = append(vals, ra.Values...)
		if rb, ok := b.Row(ra.Tag); ok {
			vals = append(vals, rb.Values...)
		} else {
			vals = append(vals, nullsB...)
		}
		rows = append(rows, GapRow{Tag: ra.Tag, Values: vals})
	}
	for _, rb := range b.Rows {
		if _, ok := a.Row(rb.Tag); ok {
			continue
		}
		vals := make([]GapValue, 0, len(cols))
		vals = append(vals, nullsA...)
		vals = append(vals, rb.Values...)
		rows = append(rows, GapRow{Tag: rb.Tag, Values: vals})
	}
	return NewGap(name, cols, rows)
}

// combineCols builds the merged column list, disambiguating collisions with
// a "2_" prefix on b's side (the GUI labels them Gap1/Gap2).
func combineCols(a, b *Gap) []string {
	cols := make([]string, 0, len(a.Cols)+len(b.Cols))
	cols = append(cols, a.Cols...)
	used := make(map[string]bool, len(cols))
	for _, c := range cols {
		used[c] = true
	}
	for _, c := range b.Cols {
		name := c
		for used[name] {
			name = "2_" + name
		}
		used[name] = true
		cols = append(cols, name)
	}
	return cols
}

// TopGaps returns the x rows with the largest |gap| in column col, sorted by
// magnitude descending (ties by tag). NULL gaps are excluded. This is the
// "top gap table" of Section 4.4.3; the GUI's top-10 list in Figure 4.9 is
// ordered the same way.
func TopGaps(name string, g *Gap, col, x int) (*Gap, error) {
	if col < 0 || col >= len(g.Cols) {
		return nil, fmt.Errorf("core: gap %s has no column %d", g.Name, col)
	}
	if x < 0 {
		return nil, fmt.Errorf("core: negative top count %d", x)
	}
	var rows []GapRow
	for _, r := range g.Rows {
		if !r.Values[col].Null {
			rows = append(rows, r)
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		ai, aj := math.Abs(rows[i].Values[col].V), math.Abs(rows[j].Values[col].V)
		if ai != aj {
			return ai > aj
		}
		return rows[i].Tag < rows[j].Tag
	})
	if x > len(rows) {
		x = len(rows)
	}
	top := make([]GapRow, x)
	copy(top, rows[:x])
	out, err := NewGap(name, g.Cols, top)
	if err != nil {
		return nil, err
	}
	// Preserve the magnitude order for display: NewGap sorts by tag, so
	// re-sort the rows in place (byTag lookups remain valid because the
	// index maps tags to positions we now rewrite).
	sort.SliceStable(out.Rows, func(i, j int) bool {
		ai, aj := math.Abs(out.Rows[i].Values[col].V), math.Abs(out.Rows[j].Values[col].V)
		if ai != aj {
			return ai > aj
		}
		return out.Rows[i].Tag < out.Rows[j].Tag
	})
	for i, r := range out.Rows {
		out.byTag[r.Tag] = i
	}
	return out, nil
}

// CompareOp selects the set operation of a GAP comparison (Figure 4.13).
type CompareOp int

// Comparison operations.
const (
	OpUnion CompareOp = iota
	OpIntersect
	OpDifference
)

// String names the operation.
func (o CompareOp) String() string {
	switch o {
	case OpUnion:
		return "union"
	case OpIntersect:
		return "intersect"
	default:
		return "difference"
	}
}

// Compare combines two single-column GAP tables with the chosen set
// operation, producing the "compare gap table" the thirteen queries of
// Section 4.3.3 run against. Union and intersection yield two gap columns
// ("gap1" from a, "gap2" from b); difference keeps a's single column.
func Compare(name string, a, b *Gap, op CompareOp) (*Gap, error) {
	if len(a.Cols) != 1 || len(b.Cols) != 1 {
		return nil, fmt.Errorf("core: compare needs single-column gaps, got %d and %d columns",
			len(a.Cols), len(b.Cols))
	}
	a2, err := ProjectGap(a.Name, a, a.Cols[0])
	if err != nil {
		return nil, err
	}
	a2.Cols = []string{"gap1"}
	b2, err := ProjectGap(b.Name, b, b.Cols[0])
	if err != nil {
		return nil, err
	}
	b2.Cols = []string{"gap2"}
	switch op {
	case OpUnion:
		return UnionGap(name, a2, b2)
	case OpIntersect:
		return IntersectGap(name, a2, b2)
	default:
		g, err := MinusGap(name, a2, b2)
		if err != nil {
			return nil, err
		}
		return g, nil
	}
}

// CompareQuery is one of the thirteen follow-up queries the GEA offers on a
// compare gap table (Section 4.3.3). Positive gap values mean higher
// expression in SUMYa (the first summary of each diff); negative mean higher
// in SUMYb. Queries 1-5 apply to every comparison; 6-13 need both gap
// columns, so they apply to union and intersection only.
type CompareQuery int

// The thirteen queries, numbered as in the thesis.
const (
	QHigherInABoth  CompareQuery = 1  // higher in SUMYa in both GAPs
	QLowerInABoth   CompareQuery = 2  // lower in SUMYa in both GAPs
	QHigherInBBoth  CompareQuery = 3  // higher in SUMYb in both GAPs
	QLowerInBBoth   CompareQuery = 4  // lower in SUMYb in both GAPs
	QNonNullBoth    CompareQuery = 5  // non-null gap in both GAPs
	QHigherInAOnlyA CompareQuery = 6  // higher in SUMYa of GAPa, not of GAPb
	QLowerInAOnlyA  CompareQuery = 7  // lower in SUMYa of GAPa, not of GAPb
	QHigherInBOnlyA CompareQuery = 8  // higher in SUMYb of GAPa, not of GAPb
	QLowerInBOnlyA  CompareQuery = 9  // lower in SUMYb of GAPa, not of GAPb
	QHigherInAOnlyB CompareQuery = 10 // higher in SUMYa of GAPb, not of GAPa
	QLowerInAOnlyB  CompareQuery = 11 // lower in SUMYa of GAPb, not of GAPa
	QHigherInBOnlyB CompareQuery = 12 // higher in SUMYb of GAPb, not of GAPa
	QLowerInBOnlyB  CompareQuery = 13 // lower in SUMYb of GAPb, not of GAPa
)

// ApplyQuery filters a compare gap table with one of the thirteen queries.
func ApplyQuery(name string, g *Gap, q CompareQuery) (*Gap, error) {
	if q < 1 || q > 13 {
		return nil, fmt.Errorf("core: unknown query %d", q)
	}
	twoCol := len(g.Cols) >= 2
	if q >= 6 && !twoCol {
		return nil, fmt.Errorf("core: query %d needs both gap columns (union or intersection)", q)
	}
	pos := func(v GapValue) bool { return !v.Null && v.V > 0 }
	neg := func(v GapValue) bool { return !v.Null && v.V < 0 }
	pred := func(r GapRow) bool {
		v1 := r.Values[0]
		var v2 GapValue = NullGap
		if twoCol {
			v2 = r.Values[1]
		}
		switch q {
		case QHigherInABoth:
			if !twoCol {
				return pos(v1)
			}
			return pos(v1) && pos(v2)
		case QLowerInABoth, QHigherInBBoth:
			// Lower in SUMYa and higher in SUMYb are the same condition
			// (the gap sign encodes which summary is higher); the GUI lists
			// both phrasings.
			if !twoCol {
				return neg(v1)
			}
			return neg(v1) && neg(v2)
		case QLowerInBBoth:
			if !twoCol {
				return pos(v1)
			}
			return pos(v1) && pos(v2)
		case QNonNullBoth:
			if !twoCol {
				return !v1.Null
			}
			return !v1.Null && !v2.Null
		case QHigherInAOnlyA, QLowerInBOnlyA:
			return pos(v1) && !pos(v2)
		case QLowerInAOnlyA, QHigherInBOnlyA:
			return neg(v1) && !neg(v2)
		case QHigherInAOnlyB, QLowerInBOnlyB:
			return pos(v2) && !pos(v1)
		default: // QLowerInAOnlyB, QHigherInBOnlyB
			return neg(v2) && !neg(v1)
		}
	}
	return SelectGap(name, g, pred)
}

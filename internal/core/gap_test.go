package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gea/internal/interval"
	"gea/internal/sage"
)

func tag(n int) sage.TagID { return sage.TagID(n) }

// figure35Sumys builds the two SUMY tables of Figure 3.5.
func figure35Sumys() (*Sumy, *Sumy) {
	s1 := NewSumy("SUMY1", []SumyRow{
		{Tag: tag(1), Range: interval.New(5, 5), Mean: 5, Std: 0},
		{Tag: tag(2), Range: interval.New(0, 7), Mean: 3, Std: 1},
		{Tag: tag(3), Range: interval.New(10, 120), Mean: 70, Std: 15},
		{Tag: tag(4), Range: interval.New(0, 20), Mean: 10, Std: 4},
	}, nil)
	s2 := NewSumy("SUMY2", []SumyRow{
		{Tag: tag(1), Range: interval.New(0, 14), Mean: 7, Std: 1},
		{Tag: tag(3), Range: interval.New(10, 130), Mean: 60, Std: 25},
		{Tag: tag(4), Range: interval.New(0, 12), Mean: 3, Std: 1},
		{Tag: tag(5), Range: interval.New(0, 50), Mean: 20, Std: 15},
	}, nil)
	return s1, s2
}

// TestDiffFigure35 reproduces the worked example of Figure 3.5 exactly:
// GAP = diff(SUMY1, SUMY2) has rows Tag1 = -1, Tag3 = NULL, Tag4 = +2.
func TestDiffFigure35(t *testing.T) {
	s1, s2 := figure35Sumys()
	g, err := Diff("GAP", s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("GAP has %d rows, want 3 (common tags only)", g.Len())
	}
	wantVals := map[sage.TagID]GapValue{
		tag(1): {V: -1},
		tag(3): NullGap,
		tag(4): {V: 2},
	}
	for tg, want := range wantVals {
		r, ok := g.Row(tg)
		if !ok {
			t.Fatalf("tag %v missing from GAP", tg)
		}
		got := r.Values[0]
		if got.Null != want.Null || (!got.Null && math.Abs(got.V-want.V) > 1e-12) {
			t.Errorf("tag %v: gap = %v, want %v", tg, got, want)
		}
	}
	// Tag2 and Tag5 are not common, so they must be absent.
	if _, ok := g.Row(tag(2)); ok {
		t.Error("tag2 should not appear")
	}
	if _, ok := g.Row(tag(5)); ok {
		t.Error("tag5 should not appear")
	}
}

// TestDiffAntisymmetric: diff(a,b) = -diff(b,a) with NULLs preserved.
func TestDiffAntisymmetric(t *testing.T) {
	s1, s2 := figure35Sumys()
	g1, err := Diff("g1", s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Diff("g2", s2, s1)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Len() != g2.Len() {
		t.Fatal("lengths differ")
	}
	for _, r1 := range g1.Rows {
		r2, ok := g2.Row(r1.Tag)
		if !ok {
			t.Fatalf("tag %v missing from reversed diff", r1.Tag)
		}
		v1, v2 := r1.Values[0], r2.Values[0]
		if v1.Null != v2.Null {
			t.Errorf("tag %v: null mismatch", r1.Tag)
		}
		if !v1.Null && math.Abs(v1.V+v2.V) > 1e-12 {
			t.Errorf("tag %v: %v vs %v not antisymmetric", r1.Tag, v1.V, v2.V)
		}
	}
}

// Property-based: gap is NULL iff the mu±sigma bands overlap, and a non-null
// gap magnitude equals the band separation.
func TestDiffGapDefinitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mkRow := func() SumyRow {
			m := rng.Float64() * 100
			s := rng.Float64() * 20
			return SumyRow{Tag: tag(1), Range: interval.New(m-s, m+s), Mean: m, Std: s}
		}
		ra, rb := mkRow(), mkRow()
		got := gapOf(ra, rb)
		hi, lo := ra, rb
		if rb.Mean > ra.Mean {
			hi, lo = rb, ra
		}
		sep := (hi.Mean - hi.Std) - (lo.Mean + lo.Std)
		if sep <= 0 {
			return got.Null
		}
		if got.Null {
			return false
		}
		if math.Abs(math.Abs(got.V)-sep) > 1e-9 {
			return false
		}
		// Sign follows which table is higher.
		return (got.V > 0) == (ra.Mean > rb.Mean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func mustGap(t *testing.T, name string, vals map[int]GapValue) *Gap {
	t.Helper()
	var rows []GapRow
	for tg, v := range vals {
		rows = append(rows, GapRow{Tag: tag(tg), Values: []GapValue{v}})
	}
	g, err := NewGap(name, []string{"gap"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSetOpsFigure36 reproduces Figure 3.6: GAP3 = minus(GAP1, GAP2) keeps
// only Tag2; GAP4 = intersect(GAP1, GAP2) keeps Tag1/Tag3/Tag4 with two gap
// columns.
func TestSetOpsFigure36(t *testing.T) {
	g1 := mustGap(t, "GAP1", map[int]GapValue{
		1: {V: -11}, 2: {V: 2}, 3: NullGap, 4: {V: 5},
	})
	g2 := mustGap(t, "GAP2", map[int]GapValue{
		1: {V: -8}, 3: {V: 9}, 4: {V: 10}, 5: {V: 11},
	})

	g3, err := MinusGap("GAP3", g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if g3.Len() != 1 {
		t.Fatalf("GAP3 has %d rows, want 1", g3.Len())
	}
	if r, _ := g3.Row(tag(2)); r.Values[0].V != 2 {
		t.Errorf("GAP3 row = %+v", g3.Rows[0])
	}

	g4, err := IntersectGap("GAP4", g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if g4.Len() != 3 || len(g4.Cols) != 2 {
		t.Fatalf("GAP4 = %d rows x %d cols, want 3 x 2", g4.Len(), len(g4.Cols))
	}
	r, ok := g4.Row(tag(3))
	if !ok || !r.Values[0].Null || r.Values[1].V != 9 {
		t.Errorf("GAP4 tag3 = %+v", r)
	}
	r, _ = g4.Row(tag(1))
	if r.Values[0].V != -11 || r.Values[1].V != -8 {
		t.Errorf("GAP4 tag1 = %+v", r)
	}
}

func TestUnionGap(t *testing.T) {
	g1 := mustGap(t, "a", map[int]GapValue{1: {V: 1}, 2: {V: 2}})
	g2 := mustGap(t, "b", map[int]GapValue{2: {V: -2}, 3: {V: 3}})
	u, err := UnionGap("u", g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 3 || len(u.Cols) != 2 {
		t.Fatalf("union = %d rows x %d cols", u.Len(), len(u.Cols))
	}
	r, _ := u.Row(tag(1))
	if r.Values[0].V != 1 || !r.Values[1].Null {
		t.Errorf("tag1 = %+v", r)
	}
	r, _ = u.Row(tag(3))
	if !r.Values[0].Null || r.Values[1].V != 3 {
		t.Errorf("tag3 = %+v", r)
	}
	// Column names disambiguated.
	if u.Cols[0] == u.Cols[1] {
		t.Errorf("columns collide: %v", u.Cols)
	}
}

func TestSelectAndProjectGap(t *testing.T) {
	g := mustGap(t, "g", map[int]GapValue{
		1: {V: -5}, 2: {V: 3}, 3: NullGap, 4: {V: -0.5},
	})
	neg, err := SelectGap("neg", g, Negative(0))
	if err != nil {
		t.Fatal(err)
	}
	if neg.Len() != 2 {
		t.Errorf("negative selection = %d rows", neg.Len())
	}
	pos, err := SelectGap("pos", g, Positive(0))
	if err != nil {
		t.Fatal(err)
	}
	if pos.Len() != 1 {
		t.Errorf("positive selection = %d rows", pos.Len())
	}
	nn, err := SelectGap("nn", g, NonNull(0))
	if err != nil {
		t.Fatal(err)
	}
	if nn.Len() != 3 {
		t.Errorf("non-null selection = %d rows", nn.Len())
	}
	big, err := SelectGap("big", g, MagnitudeAtLeast(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if big.Len() != 2 {
		t.Errorf("magnitude selection = %d rows", big.Len())
	}

	p, err := ProjectGap("p", g, "gap")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 || len(p.Cols) != 1 {
		t.Errorf("projection = %d x %d", p.Len(), len(p.Cols))
	}
	if _, err := ProjectGap("bad", g, "nope"); err == nil {
		t.Error("ProjectGap(missing): expected error")
	}
}

func TestNewGapValidation(t *testing.T) {
	if _, err := NewGap("g", nil, nil); err == nil {
		t.Error("no columns: expected error")
	}
	rows := []GapRow{{Tag: tag(1), Values: []GapValue{{V: 1}, {V: 2}}}}
	if _, err := NewGap("g", []string{"gap"}, rows); err == nil {
		t.Error("arity mismatch: expected error")
	}
}

func TestTopGaps(t *testing.T) {
	g := mustGap(t, "g", map[int]GapValue{
		1: {V: -357.24}, 2: {V: 182.94}, 3: {V: -141.95}, 4: {V: -123.02}, 5: NullGap, 6: {V: 1},
	})
	top, err := TopGaps("top3", g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if top.Len() != 3 {
		t.Fatalf("top = %d rows", top.Len())
	}
	// Ordered by |gap| descending, as the GUI's Top Gap Values list.
	if top.Rows[0].Values[0].V != -357.24 || top.Rows[1].Values[0].V != 182.94 ||
		top.Rows[2].Values[0].V != -141.95 {
		t.Errorf("top order = %v, %v, %v",
			top.Rows[0].Values[0], top.Rows[1].Values[0], top.Rows[2].Values[0])
	}
	// Row lookups still work after the display re-sort.
	if r, ok := top.Row(tag(2)); !ok || r.Values[0].V != 182.94 {
		t.Errorf("Row lookup after TopGaps = %+v, %v", r, ok)
	}
	// x beyond the non-null rows clamps.
	all, err := TopGaps("all", g, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 5 {
		t.Errorf("top-99 = %d rows, want 5 non-null", all.Len())
	}
	if _, err := TopGaps("bad", g, 7, 3); err == nil {
		t.Error("bad column: expected error")
	}
	if _, err := TopGaps("bad", g, 0, -1); err == nil {
		t.Error("negative x: expected error")
	}
}

func TestCompareAndQueries(t *testing.T) {
	// gapA: tissue 1 contrast; gapB: tissue 2 contrast.
	gapA := mustGap(t, "brainGap", map[int]GapValue{
		1: {V: 5},  // higher in cancer both (see gapB)
		2: {V: -4}, // lower in cancer both
		3: {V: 6},  // higher in A only
		4: NullGap, // null in A
		5: {V: -2}, // lower in A only (missing from B)
	})
	gapB := mustGap(t, "breastGap", map[int]GapValue{
		1: {V: 9},
		2: {V: -1},
		3: {V: -3},
		4: {V: 2},
		6: {V: -8},
	})

	inter, err := Compare("cmp", gapA, gapB, OpIntersect)
	if err != nil {
		t.Fatal(err)
	}
	if inter.Len() != 4 || len(inter.Cols) != 2 {
		t.Fatalf("intersect = %d rows x %d cols", inter.Len(), len(inter.Cols))
	}

	q1, err := ApplyQuery("q1", inter, QHigherInABoth)
	if err != nil {
		t.Fatal(err)
	}
	if q1.Len() != 1 || q1.Rows[0].Tag != tag(1) {
		t.Errorf("query 1 = %v", q1.Rows)
	}
	q2, err := ApplyQuery("q2", inter, QLowerInABoth)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Len() != 1 || q2.Rows[0].Tag != tag(2) {
		t.Errorf("query 2 = %v", q2.Rows)
	}
	// Query 3 is the same condition as query 2 by the gap-sign encoding.
	q3, err := ApplyQuery("q3", inter, QHigherInBBoth)
	if err != nil {
		t.Fatal(err)
	}
	if q3.Len() != q2.Len() {
		t.Errorf("query 3 = %d rows, want %d", q3.Len(), q2.Len())
	}
	q5, err := ApplyQuery("q5", inter, QNonNullBoth)
	if err != nil {
		t.Fatal(err)
	}
	if q5.Len() != 3 { // tags 1, 2, 3 (tag 4 null in A)
		t.Errorf("query 5 = %d rows", q5.Len())
	}
	q6, err := ApplyQuery("q6", inter, QHigherInAOnlyA)
	if err != nil {
		t.Fatal(err)
	}
	if q6.Len() != 1 || q6.Rows[0].Tag != tag(3) {
		t.Errorf("query 6 = %v", q6.Rows)
	}
	q10, err := ApplyQuery("q10", inter, QHigherInAOnlyB)
	if err != nil {
		t.Fatal(err)
	}
	if q10.Len() != 1 || q10.Rows[0].Tag != tag(4) {
		t.Errorf("query 10 = %v", q10.Rows)
	}
	q11, err := ApplyQuery("q11", inter, QLowerInAOnlyB)
	if err != nil {
		t.Fatal(err)
	}
	if q11.Len() != 1 || q11.Rows[0].Tag != tag(3) {
		t.Errorf("query 11 = %v", q11.Rows)
	}

	// Union keeps everything with NULL padding; query 6 picks up tag 5 too
	// (positive-in-A is false there, negative: no...). Check count shift.
	union, err := Compare("u", gapA, gapB, OpUnion)
	if err != nil {
		t.Fatal(err)
	}
	if union.Len() != 6 {
		t.Errorf("union = %d rows", union.Len())
	}
	q7u, err := ApplyQuery("q7u", union, QLowerInAOnlyA)
	if err != nil {
		t.Fatal(err)
	}
	// Lower in A of gapA but not gapB: tag5 (B missing -> not lower in B).
	found := false
	for _, r := range q7u.Rows {
		if r.Tag == tag(5) {
			found = true
		}
	}
	if !found {
		t.Errorf("query 7 on union should include tag5: %v", q7u.Rows)
	}

	// Difference: single column; queries 1-5 apply, 6-13 are errors.
	diff, err := Compare("d", gapA, gapB, OpDifference)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Len() != 1 || diff.Rows[0].Tag != tag(5) {
		t.Errorf("difference = %v", diff.Rows)
	}
	if _, err := ApplyQuery("bad", diff, QHigherInAOnlyA); err == nil {
		t.Error("query 6 on difference: expected error")
	}
	q2d, err := ApplyQuery("q2d", diff, QLowerInABoth)
	if err != nil {
		t.Fatal(err)
	}
	if q2d.Len() != 1 {
		t.Errorf("query 2 on difference = %d rows", q2d.Len())
	}
}

func TestCompareErrors(t *testing.T) {
	g1 := mustGap(t, "a", map[int]GapValue{1: {V: 1}})
	g2 := mustGap(t, "b", map[int]GapValue{1: {V: 1}})
	two, err := IntersectGap("two", g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compare("bad", two, g1, OpUnion); err == nil {
		t.Error("multi-column input: expected error")
	}
	if _, err := ApplyQuery("bad", g1, CompareQuery(0)); err == nil {
		t.Error("query 0: expected error")
	}
	if _, err := ApplyQuery("bad", g1, CompareQuery(14)); err == nil {
		t.Error("query 14: expected error")
	}
}

func TestCompareOpAndAlgorithmStrings(t *testing.T) {
	if OpUnion.String() != "union" || OpIntersect.String() != "intersect" || OpDifference.String() != "difference" {
		t.Error("CompareOp strings wrong")
	}
	if LatticeAlgorithm.String() != "lattice" || GreedyAlgorithm.String() != "greedy" {
		t.Error("Algorithm strings wrong")
	}
	if NullGap.String() != "NULL" || (GapValue{V: 1.5}).String() != "1.50" {
		t.Error("GapValue strings wrong")
	}
}

func TestReorderRows(t *testing.T) {
	g := mustGap(t, "g", map[int]GapValue{1: {V: 1}, 2: {V: 2}, 3: {V: 3}})
	if err := g.ReorderRows([]sage.TagID{tag(3), tag(1), tag(2)}); err != nil {
		t.Fatal(err)
	}
	if g.Rows[0].Tag != tag(3) || g.Rows[2].Tag != tag(2) {
		t.Errorf("order = %v", g.Rows)
	}
	// Lookups still work.
	if r, ok := g.Row(tag(1)); !ok || r.Values[0].V != 1 {
		t.Errorf("Row after reorder = %+v, %v", r, ok)
	}
	// Error paths.
	if err := g.ReorderRows([]sage.TagID{tag(1)}); err == nil {
		t.Error("short permutation: expected error")
	}
	if err := g.ReorderRows([]sage.TagID{tag(1), tag(1), tag(2)}); err == nil {
		t.Error("repeated tag: expected error")
	}
	if err := g.ReorderRows([]sage.TagID{tag(1), tag(2), tag(9)}); err == nil {
		t.Error("missing tag: expected error")
	}
}

package core

import (
	"context"
	"fmt"

	"gea/internal/exec"
	"gea/internal/fascicle"
	"gea/internal/sage"
)

// Algorithm selects the fascicle miner backing Mine().
type Algorithm int

// Mining algorithms.
const (
	// LatticeAlgorithm is the exact level-wise miner (maximal fascicles).
	LatticeAlgorithm Algorithm = iota
	// GreedyAlgorithm is the single-pass batched heuristic.
	GreedyAlgorithm
)

// String names the algorithm.
func (a Algorithm) String() string {
	if a == GreedyAlgorithm {
		return "greedy"
	}
	return "lattice"
}

// MineResult bundles one mined cluster in both worlds, as the GEA's macro
// operation does: "immediately after the mining operation, both the SUMY
// table and the corresponding ENUM table are created with an automatic
// invocation of the populate operation" (Section 4.1).
type MineResult struct {
	Fascicle *fascicle.Fascicle
	Sumy     *Sumy
	Enum     *Enum
}

// Mine runs fascicle production over the dataset — the mine() operator of
// Figure 3.1 — and converts each fascicle to its SUMY (definition) and ENUM
// (enumeration via populate) forms. Result names are prefix_1, prefix_2, ...
// in the miner's report order, mirroring the brain35k_1... naming of the
// case studies.
func Mine(prefix string, d *sage.Dataset, p fascicle.Params, alg Algorithm) ([]MineResult, error) {
	rs, _, err := MineWith(exec.Background(), prefix, d, p, alg)
	return rs, err
}

// MineCtx is Mine under execution governance. The whole macro operation
// — mining plus the per-fascicle aggregate and populate conversions —
// shares one budget; when it expires, the fully converted results so
// far are returned with Trace.Partial set (half-converted fascicles are
// dropped, never emitted).
func MineCtx(ctx context.Context, prefix string, d *sage.Dataset, p fascicle.Params, alg Algorithm, lim exec.Limits) ([]MineResult, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var rs []MineResult
	var partial bool
	err := exec.Guard("core.Mine", prefix, func() error {
		var err error
		rs, partial, err = MineWith(c, prefix, d, p, alg)
		return err
	})
	if err != nil {
		rs = nil
	}
	return rs, c.Snapshot(partial), err
}

// MineWith is the metered implementation, sharing c across the miner
// and each fascicle's SUMY/ENUM conversion.
func MineWith(c *exec.Ctl, prefix string, d *sage.Dataset, p fascicle.Params, alg Algorithm) (_ []MineResult, partial bool, err error) {
	sp := c.StartSpan("core.Mine")
	sp.SetInput("dataset: %d libraries x %d tags, alg=%v", d.NumLibraries(), d.NumTags(), alg)
	defer c.EndSpan(sp, &partial, &err)
	var fs []*fascicle.Fascicle
	switch alg {
	case GreedyAlgorithm:
		fs, partial, err = fascicle.GreedyWith(c, d, p)
	default:
		fs, partial, err = fascicle.LatticeWith(c, d, p)
	}
	if err != nil {
		return nil, false, err
	}

	results := make([]MineResult, 0, len(fs))
	for i, f := range fs {
		if err := c.Point(1); err != nil {
			if exec.IsBudget(err) {
				return results, true, nil
			}
			return nil, false, err
		}
		name := fmt.Sprintf("%s_%d", prefix, i+1)
		enumMembers, err := NewEnum(name+"_members", d, f.Rows, f.CompactCols)
		if err != nil {
			return nil, false, err
		}
		sumy, sp, err := AggregateWith(c, name+"Sumy", enumMembers, AggregateOptions{})
		if err != nil {
			return nil, false, err
		}
		if sp {
			// Budget died mid-conversion: drop the incomplete result.
			return results, true, nil
		}
		// populate() may admit libraries beyond the fascicle when the miner
		// is not maximal; for the exact lattice it returns the members.
		enum, _, ep, err := PopulateWith(c, name+"Enum", sumy, d, nil, PopulateOptions{})
		if err != nil {
			return nil, false, err
		}
		if ep {
			return results, true, nil
		}
		results = append(results, MineResult{Fascicle: f, Sumy: sumy, Enum: enum})
	}
	return results, partial, nil
}

package core

import (
	"fmt"

	"gea/internal/fascicle"
	"gea/internal/sage"
)

// Algorithm selects the fascicle miner backing Mine().
type Algorithm int

// Mining algorithms.
const (
	// LatticeAlgorithm is the exact level-wise miner (maximal fascicles).
	LatticeAlgorithm Algorithm = iota
	// GreedyAlgorithm is the single-pass batched heuristic.
	GreedyAlgorithm
)

// String names the algorithm.
func (a Algorithm) String() string {
	if a == GreedyAlgorithm {
		return "greedy"
	}
	return "lattice"
}

// MineResult bundles one mined cluster in both worlds, as the GEA's macro
// operation does: "immediately after the mining operation, both the SUMY
// table and the corresponding ENUM table are created with an automatic
// invocation of the populate operation" (Section 4.1).
type MineResult struct {
	Fascicle *fascicle.Fascicle
	Sumy     *Sumy
	Enum     *Enum
}

// Mine runs fascicle production over the dataset — the mine() operator of
// Figure 3.1 — and converts each fascicle to its SUMY (definition) and ENUM
// (enumeration via populate) forms. Result names are prefix_1, prefix_2, ...
// in the miner's report order, mirroring the brain35k_1... naming of the
// case studies.
func Mine(prefix string, d *sage.Dataset, p fascicle.Params, alg Algorithm) ([]MineResult, error) {
	var fs []*fascicle.Fascicle
	var err error
	switch alg {
	case GreedyAlgorithm:
		fs, err = fascicle.Greedy(d, p)
	default:
		fs, err = fascicle.Lattice(d, p)
	}
	if err != nil {
		return nil, err
	}

	results := make([]MineResult, 0, len(fs))
	for i, f := range fs {
		name := fmt.Sprintf("%s_%d", prefix, i+1)
		enumMembers, err := NewEnum(name+"_members", d, f.Rows, f.CompactCols)
		if err != nil {
			return nil, err
		}
		sumy, err := Aggregate(name+"Sumy", enumMembers, AggregateOptions{})
		if err != nil {
			return nil, err
		}
		// populate() may admit libraries beyond the fascicle when the miner
		// is not maximal; for the exact lattice it returns the members.
		enum, _, err := Populate(name+"Enum", sumy, d, nil)
		if err != nil {
			return nil, err
		}
		results = append(results, MineResult{Fascicle: f, Sumy: sumy, Enum: enum})
	}
	return results, nil
}

package core

import (
	"context"
	"testing"

	"gea/internal/exec"
	"gea/internal/obs"
	"gea/internal/sage"
	"gea/internal/sagegen"
)

// BenchmarkAggregate pins the observability layer's suppression-free
// overhead guarantee on a real operator: without a collector on the
// context the instrumented hot path must cost what the uninstrumented
// one did (StartSpan returns nil before touching any state), and the
// traced variant quantifies what opting in costs.
func BenchmarkAggregate(b *testing.B) {
	res, err := sagegen.Generate(sagegen.SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	d := sage.Build(res.Corpus)
	e := FullEnum("bench", d)
	run := func(b *testing.B, ctx context.Context) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := AggregateCtx(ctx, "benchSumy", e, AggregateOptions{}, exec.Limits{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("untraced", func(b *testing.B) {
		run(b, context.Background())
	})
	b.Run("traced", func(b *testing.B) {
		col := obs.NewCollector()
		run(b, obs.WithCollector(context.Background(), col))
	})
}

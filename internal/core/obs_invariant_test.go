package core

import (
	"context"
	"testing"

	"gea/internal/exec"
	"gea/internal/exec/execwalk"
	"gea/internal/interval"
	"gea/internal/sage"
)

// This file pins the observability invariants of the core operator
// families through the execwalk driver: every probe of a checkpoint walk
// (baseline, cancel, budget, panic, coarse cadence) runs span-verified —
// exactly one completed root span whose unit total equals the Ctl's
// charge total, with the outcome the caller observed — and an explicit
// worker sweep re-checks the unit-total identity on the sharded paths.
// The TestSpanInvariant* names are matched by the CI -race walk step.

// spanWalk runs the full checkpoint walk span-verified, then sweeps
// worker counts over the complete and a budget-stopped run.
func spanWalk(t *testing.T, name, op string, run func(ctx context.Context, lim exec.Limits) (exec.Trace, error)) {
	t.Helper()
	verified := execwalk.SpanVerified(t, op, run)
	execwalk.Walk(t, execwalk.Target{Name: name, Run: verified, MaxUnitStep: 1})
	for _, w := range []int{1, 2, 4} {
		tr, err := verified(context.Background(), exec.Limits{Workers: w})
		if err != nil {
			t.Fatalf("workers %d: %v", w, err)
		}
		// A budget below the full total forces a flagged stop; SpanVerified
		// asserts the span comes back partial with matching units.
		if tr.Units >= 2 {
			if _, err := verified(context.Background(), exec.Limits{Workers: w, Budget: tr.Units / 2}); err != nil {
				t.Fatalf("workers %d budget-stop: %v", w, err)
			}
		}
	}
}

func TestSpanInvariantPopulate(t *testing.T) {
	d, cancer, _, idx := execFixture(t)
	for _, tc := range []struct {
		name string
		idx  *TagIndexes
	}{
		{"Populate/sequential", nil},
		{"Populate/indexed", idx},
	} {
		spanWalk(t, tc.name, "core.Populate", func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, _, tr, err := PopulateCtx(ctx, "spanEnum", cancer, d, tc.idx, PopulateOptions{}, lim)
			return tr, err
		})
	}
}

func TestSpanInvariantAggregate(t *testing.T) {
	d := smallDataset()
	e := FullEnum("SAGE", d)
	spanWalk(t, "Aggregate", "core.Aggregate", func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
		_, tr, err := AggregateCtx(ctx, "spanSumy", e, AggregateOptions{WithMedian: true}, lim)
		return tr, err
	})
}

func TestSpanInvariantDiff(t *testing.T) {
	_, cancer, normal, _ := execFixture(t)
	spanWalk(t, "Diff", "core.Diff", func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
		_, tr, err := DiffCtx(ctx, "spanGap", cancer, normal, lim)
		return tr, err
	})
}

func TestSpanInvariantRangeSearch(t *testing.T) {
	_, cancer, normal, _ := execFixture(t)
	first := sage.MustParseTag("AAAAAAAAAA")
	last := sage.MustParseTag("TTTTTTTTTT")
	spanWalk(t, "RangeSearch", "core.RangeSearch", func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
		_, tr, err := RangeSearchCtx(ctx, []*Sumy{cancer, normal}, first, last,
			BroadOverlap(interval.Interval{Min: 0, Max: 1000}), lim)
		return tr, err
	})
}

// TestSpanInvariantMine covers the composite operator: the root span must
// absorb the children (fascicle mining, per-result aggregate and populate)
// while still reconciling with the single Ctl's totals.
func TestSpanInvariantMine(t *testing.T) {
	d := smallDataset()
	p := mineParams(d)
	spanWalk(t, "Mine", "core.Mine", func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
		_, tr, err := MineCtx(ctx, "span", d, p, LatticeAlgorithm, lim)
		return tr, err
	})
}

// TestSpanInvariantSumySetOps covers selection and the three set
// operators sharing the sumySetScan kernel.
func TestSpanInvariantSumySetOps(t *testing.T) {
	_, cancer, normal, _ := execFixture(t)
	keepAll := func(SumyRow) bool { return true }
	for _, tc := range []struct {
		name string
		op   string
		run  func(ctx context.Context, lim exec.Limits) (exec.Trace, error)
	}{
		{"SelectSumy", "core.SelectSumy", func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := SelectSumyCtx(ctx, "spanSel", cancer, keepAll, lim)
			return tr, err
		}},
		{"UnionSumy", "core.UnionSumy", func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := UnionSumyCtx(ctx, "spanUnion", cancer, normal, lim)
			return tr, err
		}},
		{"IntersectSumy", "core.IntersectSumy", func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := IntersectSumyCtx(ctx, "spanIntersect", cancer, normal, lim)
			return tr, err
		}},
		{"MinusSumy", "core.MinusSumy", func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := MinusSumyCtx(ctx, "spanMinus", cancer, normal, lim)
			return tr, err
		}},
	} {
		spanWalk(t, tc.name, tc.op, tc.run)
	}
}

// TestSpanInvariantNoCollector pins the opt-in contract from the caller's
// side: without a collector on the context, a governed run must complete
// identically and leave no run record behind.
func TestSpanInvariantNoCollector(t *testing.T) {
	d, cancer, _, _ := execFixture(t)
	_, _, tr1, err := PopulateCtx(context.Background(), "plain", cancer, d, nil, PopulateOptions{}, exec.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	verified := execwalk.SpanVerified(t, "core.Populate", func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
		_, _, tr, err := PopulateCtx(ctx, "traced", cancer, d, nil, PopulateOptions{}, lim)
		return tr, err
	})
	tr2, err := verified(context.Background(), exec.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Units != tr2.Units || tr1.Checkpoints != tr2.Checkpoints {
		t.Errorf("tracing changed the work accounting: %+v vs %+v", tr1, tr2)
	}
}

package core

import (
	"context"
	"fmt"
	"sort"

	"gea/internal/columnar"
	"gea/internal/exec"
	"gea/internal/exec/shard"
	"gea/internal/obs"
	"gea/internal/sage"
)

// TagIndexes is a set of sorted per-tag column indexes over a dataset — the
// structure behind the optimized populate() of Section 3.3.2. Build it once
// on the top-entropy tags (see internal/indexsel) and share it across
// populate calls.
type TagIndexes struct {
	data    *sage.Dataset
	byCol   map[int][]IndexEntry // sorted by value
	colList []int
}

// IndexEntry is one (value, row) pair of a sorted column index. Entries
// are ordered by value, ties by row (BuildTagIndexes sorts stably over
// row-ascending input), which is the order incremental maintenance in
// internal/ingest must reproduce.
type IndexEntry struct {
	V   float64
	Row int
}

// BuildTagIndexes creates sorted indexes on the given dataset columns.
func BuildTagIndexes(d *sage.Dataset, cols []int) (*TagIndexes, error) {
	ti := &TagIndexes{data: d, byCol: make(map[int][]IndexEntry, len(cols))}
	for _, c := range cols {
		if c < 0 || c >= d.NumTags() {
			return nil, fmt.Errorf("core: index column %d out of range [0, %d)", c, d.NumTags())
		}
		if _, dup := ti.byCol[c]; dup {
			continue
		}
		entries := make([]IndexEntry, d.NumLibraries())
		for i := range d.Expr {
			entries[i] = IndexEntry{V: d.Expr[i][c], Row: i}
		}
		sort.SliceStable(entries, func(a, b int) bool { return entries[a].V < entries[b].V })
		ti.byCol[c] = entries
		ti.colList = append(ti.colList, c)
	}
	sort.Ints(ti.colList)
	return ti, nil
}

// TagIndexesFromSorted assembles TagIndexes from externally maintained
// sorted runs (the incremental path in internal/ingest). Each run must be
// in the exact (value, row)-lexicographic order BuildTagIndexes produces
// and cover every row of d once; that invariant is checked cheaply (length
// and ordering), not by re-sorting.
func TagIndexesFromSorted(d *sage.Dataset, byCol map[int][]IndexEntry) (*TagIndexes, error) {
	ti := &TagIndexes{data: d, byCol: make(map[int][]IndexEntry, len(byCol))}
	for c, entries := range byCol {
		if c < 0 || c >= d.NumTags() {
			return nil, fmt.Errorf("core: index column %d out of range [0, %d)", c, d.NumTags())
		}
		if len(entries) != d.NumLibraries() {
			return nil, fmt.Errorf("core: index column %d has %d entries, want %d",
				c, len(entries), d.NumLibraries())
		}
		for i := 1; i < len(entries); i++ {
			a, b := entries[i-1], entries[i]
			if b.V < a.V || (b.V == a.V && b.Row < a.Row) {
				return nil, fmt.Errorf("core: index column %d not in (value, row) order at %d", c, i)
			}
		}
		ti.byCol[c] = entries
		ti.colList = append(ti.colList, c)
	}
	sort.Ints(ti.colList)
	return ti, nil
}

// Entries exposes the sorted run of column c (nil if the column carries no
// index). Callers must not mutate it; the incremental maintainer copies.
func (ti *TagIndexes) Entries(c int) []IndexEntry { return ti.byCol[c] }

// NumIndexes returns how many columns carry indexes.
func (ti *TagIndexes) NumIndexes() int { return len(ti.byCol) }

// Columns returns the indexed column positions, ascending.
func (ti *TagIndexes) Columns() []int { return ti.colList }

// rangeRows returns the rows whose value in column c lies in [lo, hi].
func (ti *TagIndexes) rangeRows(c int, lo, hi float64) []int {
	entries := ti.byCol[c]
	start := sort.Search(len(entries), func(i int) bool { return entries[i].V >= lo })
	var rows []int
	for i := start; i < len(entries); i++ {
		if entries[i].V > hi {
			break
		}
		rows = append(rows, entries[i].Row)
	}
	return rows
}

// PopulateStats reports how much work a populate() call did, so the Table
// 3.2 experiment can relate index hits to saved effort.
type PopulateStats struct {
	// IndexesHit is the number of SUMY tags that had indexes (w in the
	// thesis's analysis).
	IndexesHit int
	// CandidateRows is how many rows survived the index intersection and
	// were verified against the remaining conditions (equals the total row
	// count when no index was hit).
	CandidateRows int
	// ConditionsChecked counts individual range-condition evaluations
	// actually performed. The columnar engine reports fewer than the row
	// engine when zone maps skip blocks: candidates inside a pruned block
	// are rejected with zero evaluations. The resulting ENUM is identical.
	ConditionsChecked int
	// BlocksScanned/BlocksSkipped/BytesDecoded describe the columnar
	// engine's block traversal (zero on the row engine): blocks whose
	// zone map excluded every candidate versus blocks decoded, and the
	// encoded bytes materialised for the decoded ones.
	BlocksScanned int64
	BlocksSkipped int64
	BytesDecoded  int64
}

// PopulateOptions tune the populate() evaluation.
type PopulateOptions struct {
	// SimulateRowFetch charges the cost of materializing each examined row
	// (a full pass over its expression vector), modeling the storage read a
	// disk-resident DBMS performs per candidate row. The thesis's Table 3.2
	// measures populate() against DB2, where the sequential scan's dominant
	// cost is exactly that fetch; in-memory early-exit verification is
	// otherwise so cheap that index savings would be invisible in wall
	// time. The columnar engine ignores the flag: decoding the residual
	// columns IS its materialisation cost.
	SimulateRowFetch bool
	// Workers overrides the Ctl's worker count for the candidate
	// verification scan (<= 0 defers to it). Results are bit-identical
	// at any setting; see internal/exec/shard.
	Workers int
	// Engine selects the verification path; see Engine. Both engines
	// return identical ENUMs and charge identical units.
	Engine Engine
}

// popCond is one range conjunct of a populate() verification: column
// col of the dataset (or -1 for a tag outside the universe, which
// reads as 0) must lie in [lo, hi].
type popCond struct {
	col    int
	lo, hi float64
}

// Populate finds all libraries of the dataset satisfying every tag range of
// the SUMY table — the populate() operator of Figure 3.1, converting a
// cluster from intensional to extensional form. Tags of the SUMY table
// absent from the dataset are treated as expression level 0.
//
// When idx is non-nil, the conjunction is evaluated index-first: each SUMY
// tag with an index contributes a candidate row set by range scan; the sets
// are intersected (smallest first) and only the surviving candidates are
// verified against the remaining conditions. With no index (or no hits) the
// operator degrades to the sequential scan.
func Populate(name string, s *Sumy, d *sage.Dataset, idx *TagIndexes) (*Enum, PopulateStats, error) {
	return PopulateWithOptions(name, s, d, idx, PopulateOptions{})
}

// PopulateWithOptions is Populate with evaluation options.
func PopulateWithOptions(name string, s *Sumy, d *sage.Dataset, idx *TagIndexes, opts PopulateOptions) (*Enum, PopulateStats, error) {
	e, st, _, err := PopulateWith(exec.Background(), name, s, d, idx, opts)
	return e, st, err
}

// PopulateCtx is Populate under execution governance: cancellation and
// deadlines are observed at every checkpoint; on budget exhaustion the
// rows verified so far become an explicitly flagged partial ENUM; a
// panic is recovered into a structured *exec.ExecError.
func PopulateCtx(ctx context.Context, name string, s *Sumy, d *sage.Dataset, idx *TagIndexes, opts PopulateOptions, lim exec.Limits) (*Enum, PopulateStats, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var e *Enum
	var st PopulateStats
	var partial bool
	err := exec.Guard("core.Populate", name, func() error {
		var err error
		e, st, partial, err = PopulateWith(c, name, s, d, idx, opts)
		return err
	})
	if err != nil {
		e = nil
	}
	return e, st, c.Snapshot(partial), err
}

// PopulateWith is the metered implementation, exported so composite
// operators share one Ctl. One work unit is one index range scan, one
// candidate set intersected, or one candidate row verified.
func PopulateWith(c *exec.Ctl, name string, s *Sumy, d *sage.Dataset, idx *TagIndexes, opts PopulateOptions) (_ *Enum, st PopulateStats, partial bool, err error) {
	sp := c.StartSpan("core.Populate")
	sp.SetInput("sumy %s: %d conditions over %d libraries, indexed=%v", s.Name, s.Len(), d.NumLibraries(), idx != nil)
	defer c.EndSpan(sp, &partial, &err)
	if s.Len() == 0 {
		return nil, st, false, fmt.Errorf("core: populate %s: SUMY %s is empty", name, s.Name)
	}
	if idx != nil && idx.data != d {
		return nil, st, false, fmt.Errorf("core: populate %s: indexes were built on a different dataset", name)
	}

	// Split conditions into indexed and residual.
	var indexed, residual []popCond
	var cols []int
	//lint:gea ctlcharge -- condition split is O(|SUMY|) setup; the range scans and row checks it feeds are metered below
	for _, r := range s.Rows {
		cc := popCond{col: -1, lo: r.Range.Min, hi: r.Range.Max}
		if j, ok := d.TagColumn(r.Tag); ok {
			cc.col = j
			cols = append(cols, j)
		}
		if cc.col >= 0 && idx != nil {
			if _, ok := idx.byCol[cc.col]; ok {
				indexed = append(indexed, cc)
				continue
			}
		}
		residual = append(residual, cc)
	}
	st.IndexesHit = len(indexed)

	partialEnum := func(rows []int, cols []int) (*Enum, PopulateStats, bool, error) {
		e, err := NewEnum(name, d, rows, cols)
		if err != nil {
			return nil, st, false, err
		}
		return e, st, true, nil
	}

	var candidates []int
	if len(indexed) > 0 {
		// Gather candidate sets (sorted by row), intersect smallest-first
		// with a sorted merge.
		sets := make([][]int, len(indexed))
		for i, cd := range indexed {
			if err := c.Point(1); err != nil {
				if exec.IsBudget(err) {
					return partialEnum(nil, cols)
				}
				return nil, st, false, err
			}
			rows := idx.rangeRows(cd.col, cd.lo, cd.hi)
			sort.Ints(rows)
			sets[i] = rows
		}
		sort.Slice(sets, func(a, b int) bool { return len(sets[a]) < len(sets[b]) })
		candidates = append([]int(nil), sets[0]...)
		for _, set := range sets[1:] {
			if err := c.Point(1); err != nil {
				if exec.IsBudget(err) {
					return partialEnum(nil, cols)
				}
				return nil, st, false, err
			}
			if len(candidates) == 0 {
				break
			}
			kept := candidates[:0]
			i, j := 0, 0
			for i < len(candidates) && j < len(set) {
				switch {
				case candidates[i] < set[j]:
					i++
				case candidates[i] > set[j]:
					j++
				default:
					kept = append(kept, candidates[i])
					i++
					j++
				}
			}
			candidates = kept
		}
	} else {
		candidates = make([]int, d.NumLibraries())
		//lint:gea ctlcharge -- identity initialization; the verification loop below meters every candidate it produces
		for i := range candidates {
			candidates[i] = i
		}
	}
	st.CandidateRows = len(candidates)

	// Verify the surviving candidates through the shard substrate: each
	// kernel writes only its own per-candidate slots, so the kept rows
	// and per-row condition counts are bit-identical at any worker
	// count, and a budget stop yields the same flagged prefix the
	// sequential scan would have produced. With a columnar store the
	// verification runs block-at-a-time instead (see verifyBlocks),
	// keeping the kept set and unit charges identical while zone maps
	// skip blocks no candidate can qualify in.
	keep := make([]bool, len(candidates))
	nchecked := make([]int, len(candidates))
	var prefix int
	if store := columnarStore(opts.Engine, d); store != nil {
		prefix, partial, err = verifyBlocks(c, sp, store, opts.Workers, candidates, residual, keep, nchecked, &st)
	} else {
		prefix, partial, err = shard.ForN(c, opts.Workers, len(candidates), 0,
			func(c *exec.Ctl, _, lo, hi int) (int, error) {
				var fetchSink float64
				for i := lo; i < hi; i++ {
					if err := c.Point(1); err != nil {
						_ = fetchSink
						return i - lo, err
					}
					r := candidates[i]
					if opts.SimulateRowFetch {
						for _, v := range d.Expr[r] {
							fetchSink += v
						}
					}
					ok := true
					for _, cd := range residual {
						nchecked[i]++
						v := 0.0
						if cd.col >= 0 {
							v = d.Expr[r][cd.col]
						}
						if v < cd.lo || v > cd.hi {
							ok = false
							break
						}
					}
					keep[i] = ok
				}
				_ = fetchSink
				return hi - lo, nil
			})
	}
	if err != nil {
		return nil, st, false, err
	}
	var rows []int
	//lint:gea ctlcharge -- compaction of the already-metered shard prefix; every candidate was charged inside the kernel above
	for i := 0; i < prefix; i++ {
		st.ConditionsChecked += nchecked[i]
		if keep[i] {
			rows = append(rows, candidates[i])
		}
	}
	if partial {
		return partialEnum(rows, cols)
	}
	e, err := NewEnum(name, d, rows, cols)
	if err != nil {
		return nil, st, false, err
	}
	return e, st, false, nil
}

// verifyBlocks is the columnar candidate-verification path: the shard
// substrate iterates block-at-a-time (shard.ForBlocks over candidate
// spans aligned to block edges), each block's zone map is consulted
// before any decode, and only the residual columns of surviving blocks
// are materialised. The kept set and the unit charge sequence are
// identical to the row path; only condition evaluations and decoded
// bytes shrink.
func verifyBlocks(c *exec.Ctl, sp *obs.Span, store *columnar.Store, workers int, candidates []int, residual []popCond, keep []bool, nchecked []int, st *PopulateStats) (int, bool, error) {
	br := store.BlockRows
	rconds := make([]columnar.RangeCond, len(residual))
	slot := make([]int, len(residual))
	var need []int
	seen := map[int]int{}
	//lint:gea ctlcharge -- O(|conditions|) setup translating residual conds for the zone maps; the verification kernel below meters the rows
	for ci, cd := range residual {
		rconds[ci] = columnar.RangeCond{Col: cd.col, Lo: cd.lo, Hi: cd.hi}
		slot[ci] = -1
		if cd.col >= 0 {
			s, ok := seen[cd.col]
			if !ok {
				s = len(need)
				seen[cd.col] = s
				need = append(need, cd.col)
			}
			slot[ci] = s
		}
	}
	// Candidate-space block edges: candidates ascend, so block
	// membership is monotone and the edge list is a pure function of
	// the candidate set — never of the worker count.
	edges := []int{0}
	//lint:gea ctlcharge -- O(|candidates|) dispatch bookkeeping; the kernel meters every candidate it verifies
	for i := 1; i < len(candidates); i++ {
		if candidates[i]/br != candidates[i-1]/br {
			edges = append(edges, i)
		}
	}
	edges = append(edges, len(candidates))
	prefix, partial, err := shard.ForBlocks(c, workers, edges, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		dec := make([][]float64, len(need))
		//lint:gea ctlcharge -- O(|conditions|) kernel-local scratch allocation; the verify loops below meter every candidate
		for s := range dec {
			dec[s] = make([]float64, br)
		}
		for i := lo; i < hi; {
			bk := candidates[i] / br
			j := i + 1
			for j < hi && candidates[j]/br == bk {
				j++
			}
			b := &store.Blocks[bk]
			if columnar.PruneBlock(&b.Zone, rconds) {
				// The zone map proves no row of the block satisfies the
				// conjunction: reject the whole candidate span with zero
				// condition evaluations, still charging one unit each.
				for k := i; k < j; k++ {
					if err := c.Point(1); err != nil {
						return k - lo, err
					}
					keep[k] = false
				}
				i = j
				continue
			}
			for s, col := range need {
				b.Decode(col, dec[s])
			}
			for k := i; k < j; k++ {
				if err := c.Point(1); err != nil {
					return k - lo, err
				}
				r := candidates[k]
				ok := true
				for ci, cd := range residual {
					nchecked[k]++
					v := 0.0
					if cd.col >= 0 {
						v = dec[slot[ci]][r-b.Lo]
					}
					if v < cd.lo || v > cd.hi {
						ok = false
						break
					}
				}
				keep[k] = ok
			}
			i = j
		}
		return hi - lo, nil
	})
	if err != nil {
		return 0, false, err
	}
	// Post-hoc block statistics over the valid prefix: replaying the
	// deterministic zone decisions keeps the kernels pure (no shared
	// counters) and the numbers exact for the prefix actually returned.
	//lint:gea ctlcharge -- O(blocks) statistics replay over the already-metered prefix; no new row work
	for i := 0; i < prefix; {
		bk := candidates[i] / br
		j := i + 1
		for j < prefix && candidates[j]/br == bk {
			j++
		}
		b := &store.Blocks[bk]
		if columnar.PruneBlock(&b.Zone, rconds) {
			st.BlocksSkipped++
		} else {
			st.BlocksScanned++
			st.BytesDecoded += b.DecodedBytes(need)
		}
		i = j
	}
	sp.AddBlocks(columnar.StatBlocksScanned, st.BlocksScanned)
	sp.AddBlocks(columnar.StatBlocksSkipped, st.BlocksSkipped)
	sp.AddBlocks(columnar.StatBytesDecoded, st.BytesDecoded)
	return prefix, partial, nil
}

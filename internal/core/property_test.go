package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gea/internal/interval"
	"gea/internal/sage"
)

// randGap builds a random single-column GAP table over tags 0..40.
func randGap(rng *rand.Rand, name string) *Gap {
	n := rng.Intn(20)
	seen := map[sage.TagID]bool{}
	var rows []GapRow
	for i := 0; i < n; i++ {
		tg := sage.TagID(rng.Intn(40))
		if seen[tg] {
			continue
		}
		seen[tg] = true
		v := NullGap
		if rng.Float64() < 0.8 {
			v = GapValue{V: rng.NormFloat64() * 50}
		}
		rows = append(rows, GapRow{Tag: tg, Values: []GapValue{v}})
	}
	g, err := NewGap(name, []string{"gap"}, rows)
	if err != nil {
		panic(err)
	}
	return g
}

func tagSet(g *Gap) map[sage.TagID]bool {
	s := map[sage.TagID]bool{}
	for _, r := range g.Rows {
		s[r.Tag] = true
	}
	return s
}

// Gap set operations obey the set-algebra laws at the tag level.
func TestGapSetAlgebraLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randGap(rng, "a")
		b := randGap(rng, "b")

		minus, err := MinusGap("m", a, b)
		if err != nil {
			return false
		}
		inter, err := IntersectGap("i", a, b)
		if err != nil {
			return false
		}
		union, err := UnionGap("u", a, b)
		if err != nil {
			return false
		}

		sa, sb := tagSet(a), tagSet(b)
		sm, si, su := tagSet(minus), tagSet(inter), tagSet(union)

		// minus(a,b) ∩ b = ∅ and minus ⊆ a.
		for tg := range sm {
			if sb[tg] || !sa[tg] {
				return false
			}
		}
		// intersect ⊆ a and ⊆ b.
		for tg := range si {
			if !sa[tg] || !sb[tg] {
				return false
			}
		}
		// union ⊇ a and ⊇ b, and |union| = |a| + |b| - |intersect|.
		for tg := range sa {
			if !su[tg] {
				return false
			}
		}
		for tg := range sb {
			if !su[tg] {
				return false
			}
		}
		if len(su) != len(sa)+len(sb)-len(si) {
			return false
		}
		// a = minus(a,b) ∪ intersect(a,b) at the tag level.
		if len(sa) != len(sm)+len(si) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TopGaps(x) returns the x largest |gap| values: every returned value
// dominates every excluded one.
func TestTopGapsDominanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randGap(rng, "g")
		x := rng.Intn(10)
		top, err := TopGaps("t", g, 0, x)
		if err != nil {
			return false
		}
		if top.Len() > x {
			return false
		}
		if x == 0 {
			return top.Len() == 0
		}
		minTop := 0.0
		inTop := map[sage.TagID]bool{}
		for i, r := range top.Rows {
			v := r.Values[0].V
			if v < 0 {
				v = -v
			}
			if i == 0 || v < minTop {
				minTop = v
			}
			inTop[r.Tag] = true
		}
		if top.Len() < x {
			// Fewer than x rows means every non-null row was returned.
			nonNull := 0
			for _, r := range g.Rows {
				if !r.Values[0].Null {
					nonNull++
				}
			}
			return top.Len() == nonNull
		}
		for _, r := range g.Rows {
			if r.Values[0].Null || inTop[r.Tag] {
				continue
			}
			v := r.Values[0].V
			if v < 0 {
				v = -v
			}
			if v > minTop {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randEnumDataset builds a random dataset for closure properties.
func randEnumDataset(rng *rand.Rand) *sage.Dataset {
	libs := 3 + rng.Intn(8)
	tags := 3 + rng.Intn(15)
	tagIDs := make([]sage.TagID, tags)
	for j := range tagIDs {
		tagIDs[j] = sage.TagID(j * 3)
	}
	c := &sage.Corpus{}
	for i := 0; i < libs; i++ {
		l := sage.NewLibrary(sage.LibraryMeta{ID: i + 1, Name: string(rune('a' + i)), Tissue: "t"})
		for _, tg := range tagIDs {
			if rng.Float64() < 0.8 {
				l.Add(tg, float64(rng.Intn(50)))
			}
		}
		c.Libraries = append(c.Libraries, l)
	}
	return sage.BuildWithTags(c, tagIDs)
}

// Populate-Aggregate closure: populate(aggregate(E), D) over the same base
// dataset always contains E's rows (every member satisfies its own cluster's
// ranges).
func TestPopulateAggregateClosure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randEnumDataset(rng)
		// Random non-empty row subset.
		var rows []int
		for i := 0; i < d.NumLibraries(); i++ {
			if rng.Float64() < 0.5 {
				rows = append(rows, i)
			}
		}
		if len(rows) == 0 {
			rows = []int{0}
		}
		e, err := NewEnum("e", d, rows, nil)
		if err != nil {
			return false
		}
		cols := make([]int, d.NumTags())
		for j := range cols {
			cols[j] = j
		}
		e.Cols = cols
		s, err := Aggregate("s", e, AggregateOptions{})
		if err != nil {
			return false
		}
		pop, _, err := Populate("p", s, d, nil)
		if err != nil {
			return false
		}
		member := map[int]bool{}
		for _, r := range pop.Rows {
			member[r] = true
		}
		for _, r := range rows {
			if !member[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Aggregate invariants: for every tag, min <= mean <= max and std >= 0, and
// the range actually covers all member values.
func TestAggregateMomentInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randEnumDataset(rng)
		e := FullEnum("e", d)
		s, err := Aggregate("s", e, AggregateOptions{WithMedian: true})
		if err != nil {
			return false
		}
		for _, r := range s.Rows {
			if r.Range.Min > r.Mean+1e-9 || r.Mean > r.Range.Max+1e-9 {
				return false
			}
			if r.Std < 0 {
				return false
			}
			med := r.Extra["median"]
			if med < r.Range.Min-1e-9 || med > r.Range.Max+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Selection is idempotent and commutes with projection on GAP tables.
func TestGapSelectionLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randGap(rng, "g")
		neg1, err := SelectGap("n1", g, Negative(0))
		if err != nil {
			return false
		}
		neg2, err := SelectGap("n2", neg1, Negative(0))
		if err != nil {
			return false
		}
		if neg1.Len() != neg2.Len() {
			return false
		}
		// Complement partition: positives + negatives + nulls = all.
		pos, err := SelectGap("p", g, Positive(0))
		if err != nil {
			return false
		}
		nn, err := SelectGap("nn", g, NonNull(0))
		if err != nil {
			return false
		}
		return pos.Len()+neg1.Len() == nn.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Indexed and sequential populate always agree, with random index choices.
func TestPopulateIndexedAgreesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randEnumDataset(rng)
		e := FullEnum("e", d)
		sub := e.SelectRows("sub", func(m sage.LibraryMeta) bool { return rng.Float64() < 0.6 })
		if sub.Size() == 0 {
			return true
		}
		s, err := Aggregate("s", sub, AggregateOptions{})
		if err != nil {
			return false
		}
		// Shrink some ranges randomly to make matching non-trivial.
		for i := range s.Rows {
			if rng.Float64() < 0.3 {
				mid := (s.Rows[i].Range.Min + s.Rows[i].Range.Max) / 2
				s.Rows[i].Range = interval.Interval{Min: s.Rows[i].Range.Min, Max: mid}
			}
		}
		var idxCols []int
		for j := 0; j < d.NumTags(); j++ {
			if rng.Float64() < 0.4 {
				idxCols = append(idxCols, j)
			}
		}
		idx, err := BuildTagIndexes(d, idxCols)
		if err != nil {
			return false
		}
		seq, _, err := Populate("seq", s, d, nil)
		if err != nil {
			return false
		}
		ind, _, err := Populate("ind", s, d, idx)
		if err != nil {
			return false
		}
		if len(seq.Rows) != len(ind.Rows) {
			return false
		}
		for i := range seq.Rows {
			if seq.Rows[i] != ind.Rows[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

package core

import (
	"context"
	"fmt"
	"sort"

	"gea/internal/exec"
	"gea/internal/exec/shard"
	"gea/internal/interval"
	"gea/internal/sage"
)

// This file implements the search operations of Section 4.4: range
// arithmetic over multiple SUMY tables (Figures 4.16-4.17) and the general
// expression-value lookups of the SAGE database (Figures 4.23-4.26).

// RangeOutcome is one cell of a range-arithmetic search result.
type RangeOutcome int

// Outcomes, matching the GUI's display codes.
const (
	// RangeSatisfied: the relation holds; the actual range is reported.
	RangeSatisfied RangeOutcome = iota
	// RangeNo ("NO"): the tag exists but the relation does not hold.
	RangeNo
	// RangeNotExist ("NE"): the tag does not exist in the SUMY table.
	RangeNotExist
)

// String renders the outcome code as the GUI does.
func (o RangeOutcome) String() string {
	switch o {
	case RangeSatisfied:
		return "OK"
	case RangeNo:
		return "NO"
	default:
		return "NE"
	}
}

// RangeCell is the outcome for one (tag, SUMY) pair.
type RangeCell struct {
	Outcome RangeOutcome
	Range   interval.Interval // valid when Outcome == RangeSatisfied
}

// RangeSearchRow is one row of a multi-SUMY range search.
type RangeSearchRow struct {
	Tag   sage.TagID
	Cells []RangeCell // parallel to the searched SUMY tables
}

// RangeCondition decides whether a tag's range satisfies a range-arithmetic
// search. Use StrictRelation for one of Allen's thirteen relations or
// BroadOverlap for the GUI's inclusive "overlaps" (any shared point).
type RangeCondition func(interval.Interval) bool

// StrictRelation holds when the range stands in exactly relation rel to
// query.
func StrictRelation(rel interval.Relation, query interval.Interval) RangeCondition {
	return func(r interval.Interval) bool { return interval.Holds(rel, r, query) }
}

// BroadOverlap holds when the range shares at least one point with query —
// the semantics of the Figure 4.16 "Overlaps" search, where the tag range
// [20, 616] satisfies the query [10, 700] even though Allen classifies the
// pair as "during".
func BroadOverlap(query interval.Interval) RangeCondition {
	return func(r interval.Interval) bool { return interval.AnyOverlap(r, query) }
}

// RangeSearch checks, for each tag in [firstTag, lastTag], whether its range
// in each SUMY table satisfies the condition — the Figure 4.16 search. Tags
// outside every table are omitted.
func RangeSearch(sumys []*Sumy, firstTag, lastTag sage.TagID, cond RangeCondition) ([]RangeSearchRow, error) {
	rows, _, err := RangeSearchWith(exec.Background(), sumys, firstTag, lastTag, cond)
	return rows, err
}

// RangeSearchCtx is RangeSearch under execution governance; on budget
// exhaustion the tags examined so far form a flagged partial report.
func RangeSearchCtx(ctx context.Context, sumys []*Sumy, firstTag, lastTag sage.TagID, cond RangeCondition, lim exec.Limits) ([]RangeSearchRow, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var rows []RangeSearchRow
	var partial bool
	err := exec.Guard("core.RangeSearch", "", func() error {
		var err error
		rows, partial, err = RangeSearchWith(c, sumys, firstTag, lastTag, cond)
		return err
	})
	if err != nil {
		rows = nil
	}
	return rows, c.Snapshot(partial), err
}

// RangeSearchWith is the metered implementation; one work unit is one
// SUMY row scanned during tag collection or one candidate tag checked.
// Both phases evaluate through the shard substrate: collection marks
// per-row hits and checking fills per-tag rows, each worker touching
// only its own slots, so the report is bit-identical at any worker
// count. The condition must be a pure function of its interval.
func RangeSearchWith(c *exec.Ctl, sumys []*Sumy, firstTag, lastTag sage.TagID, cond RangeCondition) ([]RangeSearchRow, bool, error) {
	return rangeSearch(c, sumys, firstTag, lastTag, cond, false)
}

// rangeSearch is the shared implementation behind RangeSearchWith and
// RangeSearchEngine. The engines differ only in how collection marks
// hits: the row engine compares every row's tag against the bounds,
// the columnar engine binary-searches the tag-sorted run once per
// table and tests span membership. Both charge one unit per row, so
// traces and budget prefixes are identical.
func rangeSearch(c *exec.Ctl, sumys []*Sumy, firstTag, lastTag sage.TagID, cond RangeCondition, columnarScan bool) (_ []RangeSearchRow, partial bool, err error) {
	sp := c.StartSpan("core.RangeSearch")
	sp.SetInput("%d sumy tables, tag range %v-%v", len(sumys), firstTag, lastTag)
	defer c.EndSpan(sp, &partial, &err)
	if len(sumys) == 0 {
		return nil, false, fmt.Errorf("core: range search needs at least one SUMY table")
	}
	if firstTag > lastTag {
		return nil, false, fmt.Errorf("core: tag range %v-%v is inverted", firstTag, lastTag)
	}
	// Collect candidate tags in range from all tables. A budget stop
	// during collection discards the incomplete candidate set: a report
	// built from half-collected tags would not be a prefix of the full
	// report.
	tagSet := map[sage.TagID]bool{}
	for _, s := range sumys {
		spanLo, spanHi := 0, len(s.Rows)
		if columnarScan {
			spanLo = sort.Search(len(s.Rows), func(i int) bool { return s.Rows[i].Tag >= firstTag })
			spanHi = sort.Search(len(s.Rows), func(i int) bool { return s.Rows[i].Tag > lastTag })
		}
		hit := make([]bool, len(s.Rows))
		_, partial, err := shard.For(c, len(s.Rows), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
			for i := lo; i < hi; i++ {
				if err := c.Point(1); err != nil {
					return i - lo, err
				}
				if columnarScan {
					hit[i] = i >= spanLo && i < spanHi
				} else {
					hit[i] = s.Rows[i].Tag >= firstTag && s.Rows[i].Tag <= lastTag
				}
			}
			return hi - lo, nil
		})
		if err != nil {
			return nil, false, err
		}
		if partial {
			return nil, true, nil
		}
		for i, r := range s.Rows {
			if hit[i] {
				tagSet[r.Tag] = true
			}
		}
	}
	tags := make([]sage.TagID, 0, len(tagSet))
	//lint:gea ctlcharge -- set-to-slice materialization; every tag was charged on collection and is charged again when checked
	for t := range tagSet {
		tags = append(tags, t)
	}
	sortTags(tags)

	out := make([]RangeSearchRow, len(tags))
	prefix, partial, err := shard.For(c, len(tags), 0, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		for j := lo; j < hi; j++ {
			if err := c.Point(1); err != nil {
				return j - lo, err
			}
			t := tags[j]
			row := RangeSearchRow{Tag: t, Cells: make([]RangeCell, len(sumys))}
			for i, s := range sumys {
				sr, ok := s.Row(t)
				switch {
				case !ok:
					row.Cells[i] = RangeCell{Outcome: RangeNotExist}
				case cond(sr.Range):
					row.Cells[i] = RangeCell{Outcome: RangeSatisfied, Range: sr.Range}
				default:
					row.Cells[i] = RangeCell{Outcome: RangeNo}
				}
			}
			out[j] = row
		}
		return hi - lo, nil
	})
	if err != nil {
		return nil, false, err
	}
	return out[:prefix], partial, nil
}

// AnyTagSearch returns every tag of the SUMY table whose range satisfies the
// condition — the "Any" mode of Figure 4.17. Non-satisfying tags are
// omitted.
func AnyTagSearch(s *Sumy, cond RangeCondition) []SumyRow {
	var out []SumyRow
	for _, r := range s.Rows {
		if cond(r.Range) {
			out = append(out, r)
		}
	}
	return out
}

func sortTags(tags []sage.TagID) {
	for i := 1; i < len(tags); i++ {
		for j := i; j > 0 && tags[j-1] > tags[j]; j-- {
			tags[j-1], tags[j] = tags[j], tags[j-1]
		}
	}
}

// FrequencyResult is one row of an expression-value search: a tag's levels
// across the selected libraries (Figure 4.25).
type FrequencyResult struct {
	Tag    sage.TagID
	Values []float64 // parallel to the library selection
}

// FrequencySearch extracts expression values for every tag in
// [firstTag, lastTag] across the named libraries; nil names means all
// libraries. Tags absent from the dataset's universe are omitted; absent
// counts are 0.
func FrequencySearch(d *sage.Dataset, firstTag, lastTag sage.TagID, libNames []string) ([]FrequencyResult, []string, error) {
	if firstTag > lastTag {
		return nil, nil, fmt.Errorf("core: tag range %v-%v is inverted", firstTag, lastTag)
	}
	var rows []int
	var names []string
	if libNames == nil {
		for i, m := range d.Libs {
			rows = append(rows, i)
			names = append(names, m.Name)
		}
	} else {
		for _, n := range libNames {
			i, ok := d.LibraryRow(n)
			if !ok {
				return nil, nil, fmt.Errorf("core: unknown library %q", n)
			}
			rows = append(rows, i)
			names = append(names, n)
		}
	}
	var out []FrequencyResult
	for j, t := range d.Tags {
		if t < firstTag || t > lastTag {
			continue
		}
		vals := make([]float64, len(rows))
		for k, r := range rows {
			vals[k] = d.Expr[r][j]
		}
		out = append(out, FrequencyResult{Tag: t, Values: vals})
	}
	return out, names, nil
}

// SingleTagSearch extracts one tag's expression values across the named
// libraries (Figure 4.26).
func SingleTagSearch(d *sage.Dataset, tag sage.TagID, libNames []string) (FrequencyResult, []string, error) {
	res, names, err := FrequencySearch(d, tag, tag, libNames)
	if err != nil {
		return FrequencyResult{}, nil, err
	}
	if len(res) == 0 {
		return FrequencyResult{}, nil, fmt.Errorf("core: tag %v not in the dataset", tag)
	}
	return res[0], names, nil
}

package core

import (
	"testing"

	"gea/internal/interval"
	"gea/internal/sage"
)

func TestRangeSearchFigure416(t *testing.T) {
	// Two SUMY tables; tag A exists in both, tag C only in the first. The
	// search asks which tag ranges (broadly) overlap [10, 700], reported as
	// OK/NO/NE cells as in Figure 4.16.
	a := sage.MustParseTag("AAACATATTA")
	c := sage.MustParseTag("AAACATCCTA")
	s1 := NewSumy("brain25k_3NormalTable", []SumyRow{
		{Tag: a, Range: interval.New(0, 5), Mean: 2, Std: 1},
		{Tag: c, Range: interval.New(20, 616), Mean: 100, Std: 50},
	}, nil)
	s2 := NewSumy("brain25k_3CancerFasTbl", []SumyRow{
		{Tag: a, Range: interval.New(15, 900), Mean: 200, Std: 80},
	}, nil)

	rows, err := RangeSearch([]*Sumy{s1, s2}, a, c, BroadOverlap(interval.New(10, 700)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Row for tag a: NO in s1 (range [0,5] is before [10,700]), OK in s2
	// ([15,900] strictly overlaps... [15,900] vs [10,700]: 15>10, so it's
	// overlapped-by, not overlaps). Checking with the relation that holds.
	byTag := map[sage.TagID]RangeSearchRow{}
	for _, r := range rows {
		byTag[r.Tag] = r
	}
	ra := byTag[a]
	if ra.Cells[0].Outcome != RangeNo {
		t.Errorf("tag a in s1 = %v, want NO ([0,5] is before [10,700])", ra.Cells[0].Outcome)
	}
	if ra.Cells[1].Outcome != RangeSatisfied {
		t.Errorf("tag a in s2 = %v, want OK", ra.Cells[1].Outcome)
	}
	rc := byTag[c]
	if rc.Cells[0].Outcome != RangeSatisfied {
		t.Errorf("tag c in s1 = %v, want OK ([20,616] broadly overlaps [10,700])", rc.Cells[0].Outcome)
	}
	if rc.Cells[1].Outcome != RangeNotExist {
		t.Errorf("tag c in s2 = %v, want NE", rc.Cells[1].Outcome)
	}
	if rc.Cells[0].Range != interval.New(20, 616) {
		t.Errorf("satisfied range = %v", rc.Cells[0].Range)
	}
}

func TestRangeSearchErrors(t *testing.T) {
	s := NewSumy("s", nil, nil)
	if _, err := RangeSearch(nil, 0, 1, BroadOverlap(interval.New(0, 1))); err == nil {
		t.Error("no sumys: expected error")
	}
	if _, err := RangeSearch([]*Sumy{s}, 5, 1, BroadOverlap(interval.New(0, 1))); err == nil {
		t.Error("inverted tag range: expected error")
	}
}

func TestAnyTagSearch(t *testing.T) {
	d := smallDataset()
	s, err := Aggregate("s", FullEnum("SAGE", d), AggregateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4.17: all tags whose range includes [5, 60].
	hits := AnyTagSearch(s, StrictRelation(interval.Includes, interval.New(5, 60)))
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	for _, r := range hits {
		if !(r.Range.Min < 5 && r.Range.Max > 60) {
			t.Errorf("tag %v range %v does not include [5,60]", r.Tag, r.Range)
		}
	}
}

func TestFrequencySearch(t *testing.T) {
	d := smallDataset()
	first := sage.MustParseTag("AAAAAAAAAA")
	last := sage.MustParseTag("GGGGGGGGGG")
	res, names, err := FrequencySearch(d, first, last, []string{"BC1", "BN1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "BC1" {
		t.Errorf("names = %v", names)
	}
	if len(res) != 3 { // A, C, G tags within range; T outside
		t.Fatalf("got %d tags", len(res))
	}
	if res[0].Tag != first || res[0].Values[0] != 200 || res[0].Values[1] != 50 {
		t.Errorf("row 0 = %+v", res[0])
	}
	// All libraries when names nil.
	all, names, err := FrequencySearch(d, first, first, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 6 || len(all) != 1 || len(all[0].Values) != 6 {
		t.Errorf("all-library search = %v, %v", all, names)
	}
	if _, _, err := FrequencySearch(d, last, first, nil); err == nil {
		t.Error("inverted range: expected error")
	}
	if _, _, err := FrequencySearch(d, first, last, []string{"nope"}); err == nil {
		t.Error("unknown library: expected error")
	}
}

func TestSingleTagSearch(t *testing.T) {
	d := smallDataset()
	res, names, err := SingleTagSearch(d, sage.MustParseTag("TTTTTTTTTT"), []string{"K1", "BC1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || res.Values[0] != 400 || res.Values[1] != 0 {
		t.Errorf("single tag = %+v / %v", res, names)
	}
	if _, _, err := SingleTagSearch(d, sage.MustParseTag("ACACACACAC"), nil); err == nil {
		t.Error("absent tag: expected error")
	}
}

func TestRangeOutcomeString(t *testing.T) {
	if RangeSatisfied.String() != "OK" || RangeNo.String() != "NO" || RangeNotExist.String() != "NE" {
		t.Error("outcome strings wrong")
	}
}

// Package core implements the GEA's two-world algebraic model (thesis
// Chapter 3), the system's primary contribution. Gene-expression clusters
// take on a dual identity:
//
//   - in the *extensional* world a cluster is an explicit enumeration of the
//     libraries it contains (an Enum, Figure 3.2);
//   - in the *intensional* world a cluster is its definition — the compact
//     tags and their ranges (a Sumy, Figure 3.3a) — and contrasts between
//     clusters are Gap tables (Figure 3.3b).
//
// Operators move between and within the worlds: Mine (fascicle production),
// Aggregate, Populate (with the entropy-indexed optimization of Section
// 3.3.2), Diff, selection (including Allen-relation range arithmetic),
// projection, and tag-level set operations. The output of every operator can
// be the input of another: that closure is what makes multi-step cluster
// analysis expressible.
package core

import (
	"fmt"
	"sort"

	"gea/internal/interval"
	"gea/internal/sage"
)

// Enum is a cluster in the extensional world: an explicit enumeration of
// libraries (rows) over a set of tags (columns), both referencing a shared
// base dataset. The original SAGE data set itself is a "degenerate" Enum
// covering every row and column.
type Enum struct {
	Name string
	// Data is the shared base dataset; Enums derived from the same base can
	// be combined with row-level set operations.
	Data *sage.Dataset
	// Rows are base-dataset row indices, ascending.
	Rows []int
	// Cols are base-dataset column indices, ascending (the cluster's tags).
	Cols []int
}

// FullEnum wraps an entire dataset as a degenerate cluster.
func FullEnum(name string, d *sage.Dataset) *Enum {
	rows := make([]int, d.NumLibraries())
	for i := range rows {
		rows[i] = i
	}
	cols := make([]int, d.NumTags())
	for j := range cols {
		cols[j] = j
	}
	return &Enum{Name: name, Data: d, Rows: rows, Cols: cols}
}

// NewEnum builds an Enum over explicit rows and columns of d, validating and
// normalizing (sorting, deduplicating) both.
func NewEnum(name string, d *sage.Dataset, rows, cols []int) (*Enum, error) {
	r, err := normalizeIndices(rows, d.NumLibraries(), "row")
	if err != nil {
		return nil, fmt.Errorf("core: enum %s: %v", name, err)
	}
	c, err := normalizeIndices(cols, d.NumTags(), "column")
	if err != nil {
		return nil, fmt.Errorf("core: enum %s: %v", name, err)
	}
	return &Enum{Name: name, Data: d, Rows: r, Cols: c}, nil
}

func normalizeIndices(xs []int, n int, what string) ([]int, error) {
	// Fast path: already strictly ascending and in range (the common case —
	// populate() and the mining pipeline produce sorted index sets).
	sortedUnique := true
	for i, x := range xs {
		if x < 0 || x >= n {
			return nil, fmt.Errorf("%s %d out of range [0, %d)", what, x, n)
		}
		if i > 0 && xs[i-1] >= x {
			sortedUnique = false
		}
	}
	out := make([]int, len(xs))
	copy(out, xs)
	if sortedUnique {
		return out, nil
	}
	sort.Ints(out)
	// Deduplicate in place.
	k := 0
	for i, x := range out {
		if i == 0 || out[k-1] != x {
			out[k] = x
			k++
		}
	}
	return out[:k], nil
}

// Size returns the number of libraries.
func (e *Enum) Size() int { return len(e.Rows) }

// NumTags returns the number of tag columns.
func (e *Enum) NumTags() int { return len(e.Cols) }

// LibraryNames lists the member libraries in row order.
func (e *Enum) LibraryNames() []string {
	out := make([]string, len(e.Rows))
	for i, r := range e.Rows {
		out[i] = e.Data.Libs[r].Name
	}
	return out
}

// Tags lists the Enum's tags in column order.
func (e *Enum) Tags() []sage.TagID {
	out := make([]sage.TagID, len(e.Cols))
	for i, c := range e.Cols {
		out[i] = e.Data.Tags[c]
	}
	return out
}

// Value returns the expression level at (member i, tag column j), both
// indices local to the Enum.
func (e *Enum) Value(i, j int) float64 { return e.Data.Expr[e.Rows[i]][e.Cols[j]] }

// Meta returns the metadata of member i.
func (e *Enum) Meta(i int) sage.LibraryMeta { return e.Data.Libs[e.Rows[i]] }

// SelectRows returns a new Enum keeping the rows whose metadata satisfies
// pred — relational selection on the auxiliary columns, e.g.
// σ tissueStatus='cancerous'.
func (e *Enum) SelectRows(name string, pred func(sage.LibraryMeta) bool) *Enum {
	var rows []int
	for _, r := range e.Rows {
		if pred(e.Data.Libs[r]) {
			rows = append(rows, r)
		}
	}
	return &Enum{Name: name, Data: e.Data, Rows: rows, Cols: e.Cols}
}

// sameBase guards row-level set operations.
func sameBase(a, b *Enum) error {
	if a.Data != b.Data {
		return fmt.Errorf("core: enums %s and %s have different base datasets", a.Name, b.Name)
	}
	return nil
}

// MinusRows returns the libraries of e not in f (columns from e). This is
// the control-group construction of case study 1:
// ENUM2 = σ cancerous(E_brain) - ENUM1.
func (e *Enum) MinusRows(name string, f *Enum) (*Enum, error) {
	if err := sameBase(e, f); err != nil {
		return nil, err
	}
	in := make(map[int]bool, len(f.Rows))
	for _, r := range f.Rows {
		in[r] = true
	}
	var rows []int
	for _, r := range e.Rows {
		if !in[r] {
			rows = append(rows, r)
		}
	}
	return &Enum{Name: name, Data: e.Data, Rows: rows, Cols: e.Cols}, nil
}

// IntersectRows returns the libraries present in both Enums (columns from e).
func (e *Enum) IntersectRows(name string, f *Enum) (*Enum, error) {
	if err := sameBase(e, f); err != nil {
		return nil, err
	}
	in := make(map[int]bool, len(f.Rows))
	for _, r := range f.Rows {
		in[r] = true
	}
	var rows []int
	for _, r := range e.Rows {
		if in[r] {
			rows = append(rows, r)
		}
	}
	return &Enum{Name: name, Data: e.Data, Rows: rows, Cols: e.Cols}, nil
}

// UnionRows returns the libraries present in either Enum (columns from e).
func (e *Enum) UnionRows(name string, f *Enum) (*Enum, error) {
	if err := sameBase(e, f); err != nil {
		return nil, err
	}
	seen := make(map[int]bool, len(e.Rows)+len(f.Rows))
	var rows []int
	for _, r := range e.Rows {
		if !seen[r] {
			seen[r] = true
			rows = append(rows, r)
		}
	}
	for _, r := range f.Rows {
		if !seen[r] {
			seen[r] = true
			rows = append(rows, r)
		}
	}
	sort.Ints(rows)
	return &Enum{Name: name, Data: e.Data, Rows: rows, Cols: e.Cols}, nil
}

// IsPure reports whether every member library has property p (Figure 4.8).
func (e *Enum) IsPure(p sage.Property) bool {
	for _, r := range e.Rows {
		if !e.Data.Libs[r].HasProperty(p) {
			return false
		}
	}
	return true
}

// SumyRow is one row of a SUMY table: a tag with the range, mean and
// standard deviation of its expression levels across the cluster, plus any
// additional aggregate columns.
type SumyRow struct {
	Tag   sage.TagID
	Range interval.Interval
	Mean  float64
	Std   float64
	// Extra holds optional additional aggregates ("median", ...).
	Extra map[string]float64
}

// Sumy is a cluster in the intensional world: its definition as per-tag
// ranges and moments.
type Sumy struct {
	Name string
	Rows []SumyRow // ascending by Tag
	// ExtraCols names the extra aggregate columns present on every row.
	ExtraCols []string

	byTag map[sage.TagID]int
}

// NewSumy builds a Sumy from rows, sorting them by tag and indexing them.
func NewSumy(name string, rows []SumyRow, extraCols []string) *Sumy {
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Tag < rows[j].Tag })
	s := &Sumy{Name: name, Rows: rows, ExtraCols: extraCols, byTag: make(map[sage.TagID]int, len(rows))}
	for i, r := range rows {
		s.byTag[r.Tag] = i
	}
	return s
}

// Len returns the number of tags summarized.
func (s *Sumy) Len() int { return len(s.Rows) }

// Row returns the row for tag and whether it exists.
func (s *Sumy) Row(tag sage.TagID) (SumyRow, bool) {
	i, ok := s.byTag[tag]
	if !ok {
		return SumyRow{}, false
	}
	return s.Rows[i], true
}

// Tags lists the summarized tags, ascending.
func (s *Sumy) Tags() []sage.TagID {
	out := make([]sage.TagID, len(s.Rows))
	for i, r := range s.Rows {
		out[i] = r.Tag
	}
	return out
}

// GapValue is one gap level; Null marks the overlap case of Figure 3.4.
type GapValue struct {
	V    float64
	Null bool
}

// NullGap is the NULL gap level.
var NullGap = GapValue{Null: true}

// String renders the value as the GUI does.
func (g GapValue) String() string {
	if g.Null {
		return "NULL"
	}
	return fmt.Sprintf("%.2f", g.V)
}

// GapRow is one row of a GAP table. A basic GAP table has a single value per
// tag; comparison results (Figure 3.6d) carry one per source GAP table.
type GapRow struct {
	Tag    sage.TagID
	Values []GapValue
}

// Gap summarizes the difference between SUMY tables (Section 3.2.2): "a GAP
// table must have one column on tag name and at least one column on gap
// levels".
type Gap struct {
	Name string
	// Cols names the gap-level columns (e.g. "gap", or "gap1"/"gap2" after
	// an intersection).
	Cols []string
	Rows []GapRow // ascending by Tag

	byTag map[sage.TagID]int
}

// NewGap builds a Gap from rows, sorting by tag and validating arity.
func NewGap(name string, cols []string, rows []GapRow) (*Gap, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("core: gap %s needs at least one gap column", name)
	}
	for _, r := range rows {
		if len(r.Values) != len(cols) {
			return nil, fmt.Errorf("core: gap %s: row %v has %d values, want %d",
				name, r.Tag, len(r.Values), len(cols))
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Tag < rows[j].Tag })
	g := &Gap{Name: name, Cols: cols, Rows: rows, byTag: make(map[sage.TagID]int, len(rows))}
	for i, r := range rows {
		g.byTag[r.Tag] = i
	}
	return g, nil
}

// Len returns the number of tags.
func (g *Gap) Len() int { return len(g.Rows) }

// Row returns the row for tag and whether it exists.
func (g *Gap) Row(tag sage.TagID) (GapRow, bool) {
	i, ok := g.byTag[tag]
	if !ok {
		return GapRow{}, false
	}
	return g.Rows[i], true
}

// ReorderRows rearranges the rows into the given tag order, which must be a
// permutation of the table's tags. Top-gap tables use display order
// (magnitude descending) rather than tag order; this restores it after
// operations that normalize to tag order.
func (g *Gap) ReorderRows(tags []sage.TagID) error {
	if len(tags) != len(g.Rows) {
		return fmt.Errorf("core: reorder of %s needs %d tags, got %d", g.Name, len(g.Rows), len(tags))
	}
	rows := make([]GapRow, 0, len(tags))
	seen := make(map[sage.TagID]bool, len(tags))
	for _, tg := range tags {
		if seen[tg] {
			return fmt.Errorf("core: reorder of %s repeats tag %v", g.Name, tg)
		}
		seen[tg] = true
		i, ok := g.byTag[tg]
		if !ok {
			return fmt.Errorf("core: reorder of %s references missing tag %v", g.Name, tg)
		}
		rows = append(rows, g.Rows[i])
	}
	g.Rows = rows
	for i, r := range rows {
		g.byTag[r.Tag] = i
	}
	return nil
}

// Col returns the index of the named gap column, or -1.
func (g *Gap) Col(name string) int {
	for i, c := range g.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Package exec is the execution-governance layer for GEA's operator
// algebra. Every long-running operator (the fascicle miners, populate,
// aggregate, diff, the clustering baselines, the expression profiler)
// threads a *Ctl through its inner loops and charges work units at
// checkpoints. A Ctl carries three independent bounds:
//
//   - cooperative cancellation: the context's Done channel is polled at
//     every checkpoint, so Ctrl-C or a deadline stops an operator within
//     one checkpoint interval;
//   - a deadline: expressed through the context (context.WithTimeout /
//     WithDeadline) — no separate machinery;
//   - a work budget: a cap on total work units (candidates joined, rows
//     verified, iterations run). Budget exhaustion is NOT an error — the
//     operator stops early and returns what it has, with Trace.Partial
//     set so the truncation is explicit, never silent.
//
// Operators additionally run panic-isolated: Guard converts a panic into
// a structured *ExecError carrying the operator name and lineage node,
// so one crashing operator cannot take a session down.
//
// The charge-then-check discipline matters: an operator calls Point(n)
// BEFORE performing the n units of work, so a budget stop always means
// at least one unit was left undone — Partial is never a false alarm.
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrBudget is the sentinel returned by Ctl.Point once the work budget
// is exhausted. Operators translate it into a flagged partial result
// rather than propagating it as a failure.
var ErrBudget = errors.New("exec: work budget exhausted")

// Limits bounds one operator invocation. The zero value means
// unlimited work with a checkpoint at every unit.
type Limits struct {
	// Budget caps the total work units the operator may charge.
	// <= 0 means unlimited.
	Budget int64
	// CheckEvery is the number of units between cancellation polls.
	// <= 0 means every unit. Raising it amortises the poll cost on
	// very hot loops at the price of a coarser cancellation interval.
	CheckEvery int64
}

// Trace reports how an operator invocation used its bounds.
type Trace struct {
	// Partial is true when the work budget expired and the result is
	// an explicitly flagged prefix of the full computation.
	Partial bool
	// Reason says why the run stopped early ("budget exhausted",
	// "context canceled", ...); empty for a clean, complete run.
	Reason string
	// Units is the total work charged.
	Units int64
	// Checkpoints is how many cancellation polls ran.
	Checkpoints int64
}

// Hook observes checkpoints as they happen; nth is 1-based. Hooks are
// test instrumentation: the checkpoint-walk driver uses them to cancel
// at the Nth checkpoint or inject a panic deterministically. A hook
// runs on the operator goroutine before the cancellation poll.
type Hook func(nth int64)

type hookKey struct{}

// WithHook attaches a checkpoint hook to ctx; New extracts it.
func WithHook(ctx context.Context, h Hook) context.Context {
	return context.WithValue(ctx, hookKey{}, h)
}

func hookFrom(ctx context.Context) Hook {
	if ctx == nil {
		return nil
	}
	h, _ := ctx.Value(hookKey{}).(Hook)
	return h
}

// Ctl meters one operator invocation (or one composite pipeline — e.g.
// Mine shares a single Ctl across the miner, aggregate and populate so
// the budget spans the whole job). Not safe for concurrent use; each
// concurrent operator gets its own Ctl.
type Ctl struct {
	ctx        context.Context
	done       <-chan struct{}
	hook       Hook
	budget     int64
	checkEvery int64

	units       int64
	sinceCheck  int64
	checkpoints int64
	stopped     error // first budget/cancellation stop; sticky
}

// New builds a Ctl from a context and limits. A nil ctx behaves like
// context.Background().
func New(ctx context.Context, lim Limits) *Ctl {
	c := &Ctl{ctx: ctx, budget: lim.Budget, checkEvery: lim.CheckEvery}
	if c.checkEvery <= 0 {
		c.checkEvery = 1
	}
	if ctx != nil {
		c.done = ctx.Done()
		c.hook = hookFrom(ctx)
	}
	return c
}

// Background returns an unbounded Ctl — what the legacy, non-context
// operator entry points use so there is a single metered implementation.
func Background() *Ctl {
	return New(context.Background(), Limits{})
}

// Point charges n units of upcoming work and, at checkpoint cadence,
// polls for cancellation and budget exhaustion. It returns nil to
// proceed, the context error on cancellation/deadline, or ErrBudget
// when the budget is spent. Once stopped, every later call returns the
// same error, so composite operators cannot accidentally resume.
func (c *Ctl) Point(n int64) error {
	if c == nil {
		return nil
	}
	c.units += n
	c.sinceCheck += n
	if c.sinceCheck < c.checkEvery {
		return nil
	}
	c.sinceCheck = 0
	return c.check()
}

func (c *Ctl) check() error {
	c.checkpoints++
	if c.hook != nil {
		c.hook(c.checkpoints)
	}
	if c.stopped != nil {
		return c.stopped
	}
	if c.done != nil {
		select {
		case <-c.done:
			c.stopped = c.ctx.Err()
			return c.stopped
		default:
		}
	}
	if c.budget > 0 && c.units >= c.budget {
		c.stopped = ErrBudget
		return c.stopped
	}
	return nil
}

// Exhausted reports whether this Ctl has already stopped on budget
// exhaustion; composite operators use it to skip follow-on stages.
func (c *Ctl) Exhausted() bool {
	return c != nil && errors.Is(c.stopped, ErrBudget)
}

// Err returns the sticky stop error, if any.
func (c *Ctl) Err() error {
	if c == nil {
		return nil
	}
	return c.stopped
}

// Units returns the work charged so far.
func (c *Ctl) Units() int64 {
	if c == nil {
		return 0
	}
	return c.units
}

// Snapshot captures the invocation's Trace. partial is supplied by the
// operator (only it knows whether it assembled a truncated result).
func (c *Ctl) Snapshot(partial bool) Trace {
	if c == nil {
		return Trace{Partial: partial}
	}
	t := Trace{Partial: partial, Units: c.units, Checkpoints: c.checkpoints}
	if c.stopped != nil {
		t.Reason = c.stopped.Error()
	}
	return t
}

// ExecError is the structured failure produced when an operator panics
// (or stops on cancellation inside Guard): it carries the operator
// name, the lineage node being computed, and — for panics — the
// recovered value and stack.
type ExecError struct {
	Op         string // operator, e.g. "fascicle.Lattice"
	Node       string // lineage node / result name, when known
	Err        error  // underlying cause; nil for bare panics
	PanicValue any    // non-nil when the operator panicked
	Stack      []byte // goroutine stack at recovery, for panics
}

func (e *ExecError) Error() string {
	where := e.Op
	if e.Node != "" {
		where += " (" + e.Node + ")"
	}
	if e.PanicValue != nil {
		return fmt.Sprintf("exec: %s: panic: %v", where, e.PanicValue)
	}
	return fmt.Sprintf("exec: %s: %v", where, e.Err)
}

func (e *ExecError) Unwrap() error { return e.Err }

// Guard runs fn panic-isolated. A panic is recovered into an
// *ExecError; a cancellation/deadline error is wrapped into one too
// (so callers learn which operator was cut short) while still
// satisfying errors.Is(err, context.Canceled / DeadlineExceeded).
// All other errors pass through untouched.
func Guard(op, node string, fn func() error) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &ExecError{
				Op:         op,
				Node:       node,
				PanicValue: rec,
				Stack:      debug.Stack(),
			}
		}
	}()
	err = fn()
	if err != nil && IsCancellation(err) {
		var ee *ExecError
		if !errors.As(err, &ee) { // don't double-wrap nested operators
			err = &ExecError{Op: op, Node: node, Err: err}
		}
	}
	return err
}

// IsCancellation reports whether err stems from context cancellation
// or a deadline expiry.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// IsBudget reports whether err is the budget-exhausted sentinel.
func IsBudget(err error) bool { return errors.Is(err, ErrBudget) }

// Package exec is the execution-governance layer for GEA's operator
// algebra. Every long-running operator (the fascicle miners, populate,
// aggregate, diff, the clustering baselines, the expression profiler)
// threads a *Ctl through its inner loops and charges work units at
// checkpoints. A Ctl carries three independent bounds:
//
//   - cooperative cancellation: the context's Done channel is polled at
//     every checkpoint, so Ctrl-C or a deadline stops an operator within
//     one checkpoint interval;
//   - a deadline: expressed through the context (context.WithTimeout /
//     WithDeadline) — no separate machinery;
//   - a work budget: a cap on total work units (candidates joined, rows
//     verified, iterations run). Budget exhaustion is NOT an error — the
//     operator stops early and returns what it has, with Trace.Partial
//     set so the truncation is explicit, never silent.
//
// Operators additionally run panic-isolated: Guard converts a panic into
// a structured *ExecError carrying the operator name and lineage node,
// so one crashing operator cannot take a session down.
//
// The charge-then-check discipline matters: an operator calls Point(n)
// BEFORE performing the n units of work, so a budget stop always means
// at least one unit was left undone — Partial is never a false alarm.
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"

	"gea/internal/obs"
)

// ErrBudget is the sentinel returned by Ctl.Point once the work budget
// is exhausted. Operators translate it into a flagged partial result
// rather than propagating it as a failure.
var ErrBudget = errors.New("exec: work budget exhausted")

// Limits bounds one operator invocation. The zero value means
// unlimited work with a checkpoint at every unit.
type Limits struct {
	// Budget caps the total work units the operator may charge.
	// <= 0 means unlimited.
	Budget int64
	// CheckEvery is the number of units between cancellation polls.
	// <= 0 means every unit. Raising it amortises the poll cost on
	// very hot loops at the price of a coarser cancellation interval.
	CheckEvery int64
	// Workers is the number of goroutines sharded operator loops may
	// use (see internal/exec/shard). <= 0 means 1 — parallelism is
	// strictly opt-in, and results are bit-identical at any setting.
	Workers int
}

// Trace reports how an operator invocation used its bounds.
type Trace struct {
	// Partial is true when the work budget expired and the result is
	// an explicitly flagged prefix of the full computation.
	Partial bool
	// Reason says why the run stopped early ("budget exhausted",
	// "context canceled", ...); empty for a clean, complete run.
	Reason string
	// Units is the total work charged.
	Units int64
	// Checkpoints is how many cancellation polls ran.
	Checkpoints int64
}

// Hook observes checkpoints as they happen; nth is 1-based. Hooks are
// test instrumentation: the checkpoint-walk driver uses them to cancel
// at the Nth checkpoint or inject a panic deterministically. A hook
// runs on the operator goroutine before the cancellation poll.
type Hook func(nth int64)

type hookKey struct{}

// WithHook attaches a checkpoint hook to ctx; New extracts it.
func WithHook(ctx context.Context, h Hook) context.Context {
	return context.WithValue(ctx, hookKey{}, h)
}

func hookFrom(ctx context.Context) Hook {
	if ctx == nil {
		return nil
	}
	h, _ := ctx.Value(hookKey{}).(Hook)
	return h
}

// Ctl meters one operator invocation (or one composite pipeline — e.g.
// Mine shares a single Ctl across the miner, aggregate and populate so
// the budget spans the whole job). Not safe for concurrent use; each
// concurrent operator gets its own Ctl. Sharded loops obtain per-worker
// child Ctls through Split/SplitWork and fold them back with Merge.
type Ctl struct {
	ctx        context.Context
	done       <-chan struct{}
	hook       Hook
	budget     int64
	checkEvery int64
	workers    int

	units       int64
	sinceCheck  int64
	checkpoints int64
	stopped     error // first budget/cancellation stop; sticky

	// seq is the shared checkpoint numbering across a shard family:
	// every child of one Split draws hook sequence numbers from the
	// same counter, so hooks observe one global 1-based stream exactly
	// as they would against the unsharded sequential loop.
	seq *atomic.Int64

	// scope is this invocation's span stack, forked per New so
	// concurrent operators sharing a context never interleave their
	// span trees; nil — the common case — disables spans entirely.
	// Shard children deliberately do not inherit it: kernels meter
	// units, operators own spans.
	scope *obs.Scope
}

// New builds a Ctl from a context and limits. A nil ctx behaves like
// context.Background().
func New(ctx context.Context, lim Limits) *Ctl {
	c := &Ctl{ctx: ctx, budget: lim.Budget, checkEvery: lim.CheckEvery, workers: lim.Workers}
	if c.checkEvery <= 0 {
		c.checkEvery = 1
	}
	if c.workers <= 0 {
		c.workers = 1
	}
	if ctx != nil {
		c.done = ctx.Done()
		c.hook = hookFrom(ctx)
		c.scope = obs.NewScope(ctx)
	}
	return c
}

// Background returns an unbounded Ctl — what the legacy, non-context
// operator entry points use so there is a single metered implementation.
func Background() *Ctl {
	return New(context.Background(), Limits{})
}

// Point charges n units of upcoming work and, at checkpoint cadence,
// polls for cancellation and budget exhaustion. It returns nil to
// proceed, the context error on cancellation/deadline, or ErrBudget
// when the budget is spent. Once stopped, every later call returns the
// same error, so composite operators cannot accidentally resume.
func (c *Ctl) Point(n int64) error {
	if c == nil {
		return nil
	}
	if c.stopped != nil {
		return c.stopped
	}
	c.units += n
	c.sinceCheck += n
	if c.sinceCheck < c.checkEvery {
		return nil
	}
	c.sinceCheck = 0
	return c.check()
}

func (c *Ctl) check() error {
	c.checkpoints++
	nth := c.checkpoints
	if c.seq != nil {
		nth = c.seq.Add(1)
	}
	if c.hook != nil {
		c.hook(nth)
	}
	if c.stopped != nil {
		return c.stopped
	}
	if c.done != nil {
		select {
		case <-c.done:
			c.stopped = c.ctx.Err()
			return c.stopped
		default:
		}
	}
	if c.budget > 0 && c.units >= c.budget {
		c.stopped = ErrBudget
		return c.stopped
	}
	return nil
}

// Exhausted reports whether this Ctl has already stopped on budget
// exhaustion; composite operators use it to skip follow-on stages.
func (c *Ctl) Exhausted() bool {
	return c != nil && errors.Is(c.stopped, ErrBudget)
}

// Err returns the sticky stop error, if any.
func (c *Ctl) Err() error {
	if c == nil {
		return nil
	}
	return c.stopped
}

// Units returns the work charged so far.
func (c *Ctl) Units() int64 {
	if c == nil {
		return 0
	}
	return c.units
}

// Workers returns the worker count this Ctl authorises for sharded
// loops; it is always at least 1.
func (c *Ctl) Workers() int {
	if c == nil || c.workers <= 1 {
		return 1
	}
	return c.workers
}

// Split divides the remaining budget evenly across n child Ctls, one
// per worker. Each child inherits the parent's context, hook and
// checkpoint cadence and preserves the charge-then-check discipline
// against its own budget slice; fold the children back with Merge.
// Callers that know how much work each child will perform should use
// SplitWork instead so slices are proportional to the work.
func (c *Ctl) Split(n int) []*Ctl {
	if n < 1 {
		n = 1
	}
	counts := make([]int64, n)
	for i := range counts {
		counts[i] = 1
	}
	return c.SplitWork(counts)
}

// SplitWork divides the remaining budget across len(counts) child
// Ctls in proportion to each child's planned work, where counts[i] is
// the number of units child i will charge if it runs to completion.
// The split is exact and deterministic: slices sum to the remaining
// budget, a child whose slice is zero is born already stopped on
// ErrBudget, and when the remaining budget covers all the planned
// work every child runs uncapped (so an ample parent budget can never
// produce a spurious partial). Children also inherit the parent's
// checkpoint phase: child i starts its cadence at the point the
// sequential loop would have reached at the child's first unit, so
// checkpoint positions — and hook sequence numbers, drawn from one
// shared counter — are identical to the unsharded loop.
func (c *Ctl) SplitWork(counts []int64) []*Ctl {
	kids := make([]*Ctl, len(counts))
	if c == nil {
		return kids // nil Ctl is inert; so are its children
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	rem := int64(-1) // -1 means the children run uncapped
	if c.budget > 0 && total > 0 {
		rem = c.budget - c.units
		if rem < 0 {
			rem = 0
		}
		if rem > total {
			rem = -1
		}
	}
	// The shared checkpoint numbering exists for the hook's benefit: its
	// sequence numbers must match the unsharded loop. Without a hook the
	// numbers are observable by nobody, and the contended atomic would
	// throttle fine-grained kernels, so each child counts locally and
	// Merge reconciles the totals.
	seq := c.seq
	if seq == nil && c.hook != nil {
		seq = new(atomic.Int64)
		seq.Store(c.checkpoints)
	}
	var lo int64 // cumulative units before child i
	for i := range kids {
		kid := &Ctl{
			ctx:        c.ctx,
			done:       c.done,
			hook:       c.hook,
			checkEvery: c.checkEvery,
			workers:    1,
			sinceCheck: (c.sinceCheck + lo) % c.checkEvery,
			seq:        seq,
		}
		if rem >= 0 {
			// Cumulative-floor apportioning: slices sum exactly to rem
			// and depend only on (rem, counts), never on worker count.
			slice := rem*(lo+counts[i])/total - rem*lo/total
			if slice == 0 {
				kid.stopped = ErrBudget
			} else {
				kid.budget = slice
			}
		}
		kids[i] = kid
		lo += counts[i]
	}
	return kids
}

// Merge folds Split/SplitWork children back into the parent: Units()
// and Checkpoints totals are exact, the cadence phase advances as if
// the parent had charged every unit itself, and — if the parent is not
// already stopped — it adopts the first stopped child's error in child
// order, so budget exhaustion and cancellation stay sticky across the
// whole pipeline exactly as in the sequential loop.
func (c *Ctl) Merge(kids ...*Ctl) {
	if c == nil {
		return
	}
	var units, checks int64
	var stop error
	for _, k := range kids {
		if k == nil {
			continue
		}
		units += k.units
		checks += k.checkpoints
		if stop == nil && k.stopped != nil {
			stop = k.stopped
		}
	}
	c.units += units
	c.checkpoints += checks
	if c.checkEvery > 0 {
		c.sinceCheck = (c.sinceCheck + units) % c.checkEvery
	}
	if c.stopped == nil {
		c.stopped = stop
	}
}

// Snapshot captures the invocation's Trace. partial is supplied by the
// operator (only it knows whether it assembled a truncated result).
func (c *Ctl) Snapshot(partial bool) Trace {
	if c == nil {
		return Trace{Partial: partial}
	}
	t := Trace{Partial: partial, Units: c.units, Checkpoints: c.checkpoints}
	if c.stopped != nil {
		t.Reason = c.stopped.Error()
	}
	return t
}

// ExecError is the structured failure produced when an operator panics
// (or stops on cancellation inside Guard): it carries the operator
// name, the lineage node being computed, and — for panics — the
// recovered value and stack.
type ExecError struct {
	Op         string // operator, e.g. "fascicle.Lattice"
	Node       string // lineage node / result name, when known
	Err        error  // underlying cause; nil for bare panics
	PanicValue any    // non-nil when the operator panicked
	Stack      []byte // goroutine stack at recovery, for panics
}

func (e *ExecError) Error() string {
	where := e.Op
	if e.Node != "" {
		where += " (" + e.Node + ")"
	}
	if e.PanicValue != nil {
		return fmt.Sprintf("exec: %s: panic: %v", where, e.PanicValue)
	}
	return fmt.Sprintf("exec: %s: %v", where, e.Err)
}

func (e *ExecError) Unwrap() error { return e.Err }

// Guard runs fn panic-isolated. A panic is recovered into an
// *ExecError; a cancellation/deadline error is wrapped into one too
// (so callers learn which operator was cut short) while still
// satisfying errors.Is(err, context.Canceled / DeadlineExceeded).
// All other errors pass through untouched.
func Guard(op, node string, fn func() error) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &ExecError{
				Op:         op,
				Node:       node,
				PanicValue: rec,
				Stack:      debug.Stack(),
			}
		}
	}()
	err = fn()
	if err != nil && IsCancellation(err) {
		var ee *ExecError
		if !errors.As(err, &ee) { // don't double-wrap nested operators
			err = &ExecError{Op: op, Node: node, Err: err}
		}
	}
	return err
}

// IsCancellation reports whether err stems from context cancellation
// or a deadline expiry.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// IsBudget reports whether err is the budget-exhausted sentinel.
func IsBudget(err error) bool { return errors.Is(err, ErrBudget) }

// StartSpan opens an observability span for one operator run on this
// Ctl's scope, baselined at the current unit/checkpoint totals so the
// span charges the inclusive delta. With no collector installed it
// returns nil, and every obs method on a nil span is a no-op — the
// disabled path costs one nil check per operator invocation, not per
// unit.
func (c *Ctl) StartSpan(op string) *obs.Span {
	if c == nil || c.scope == nil {
		return nil
	}
	sp := c.scope.Start(op)
	sp.Baseline(c.units, c.checkpoints)
	return sp
}

// EndSpan completes a span opened by StartSpan. Defer it DIRECTLY from
// the metered implementation, over pointers to the named results:
//
//	func XWith(c *exec.Ctl, ...) (res R, partial bool, err error) {
//		sp := c.StartSpan("pkg.X")
//		defer c.EndSpan(sp, &partial, &err)
//		...
//
// Being the deferred function itself gives it recover authority: a
// panic unwinding through the operator is caught just long enough to
// close the span (and any open children) as OutcomePanic, then
// re-raised for Guard to structure. On normal returns it classifies
// the outcome from the final partial/err values.
func (c *Ctl) EndSpan(sp *obs.Span, partial *bool, err *error) {
	if rec := recover(); rec != nil {
		sp.End(obs.OutcomePanic, fmt.Sprint(rec), c.Units(), c.Checkpoints(), c.Workers())
		panic(rec)
	}
	if sp == nil {
		return
	}
	var p bool
	if partial != nil {
		p = *partial
	}
	var e error
	if err != nil {
		e = *err
	}
	outcome := obs.OutcomeOK
	msg := ""
	switch {
	case e == nil && p:
		outcome = obs.OutcomePartial
	case e != nil:
		msg = e.Error()
		var ee *ExecError
		switch {
		case IsCancellation(e):
			outcome = obs.OutcomeCanceled
		case IsBudget(e):
			outcome = obs.OutcomeBudget
		case errors.As(e, &ee) && ee.PanicValue != nil:
			// A nested operator panicked and Guard already structured
			// it; the enclosing span reports the run for what it was.
			outcome = obs.OutcomePanic
		default:
			outcome = obs.OutcomeError
		}
	}
	sp.End(outcome, msg, c.Units(), c.Checkpoints(), c.Workers())
}

// Checkpoints returns how many cancellation polls have run.
func (c *Ctl) Checkpoints() int64 {
	if c == nil {
		return 0
	}
	return c.checkpoints
}

// RunRecord returns this invocation's completed root span record, or
// nil (no collector, or the root span has not ended yet). Because the
// scope is private to the invocation, the record is safe to link into
// lineage once the operator has returned.
func (c *Ctl) RunRecord() *obs.Record {
	if c == nil {
		return nil
	}
	return c.scope.Root()
}

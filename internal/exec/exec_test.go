package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestPointUnlimited(t *testing.T) {
	c := Background()
	for i := 0; i < 1000; i++ {
		if err := c.Point(1); err != nil {
			t.Fatalf("unbounded Ctl stopped at unit %d: %v", i, err)
		}
	}
	tr := c.Snapshot(false)
	if tr.Units != 1000 || tr.Checkpoints != 1000 {
		t.Fatalf("trace = %+v, want 1000 units / 1000 checkpoints", tr)
	}
	if tr.Partial || tr.Reason != "" {
		t.Fatalf("clean run has partial/reason set: %+v", tr)
	}
}

func TestPointBudget(t *testing.T) {
	c := New(context.Background(), Limits{Budget: 10})
	var err error
	n := 0
	for ; n < 100; n++ {
		if err = c.Point(1); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrBudget) || !IsBudget(err) {
		t.Fatalf("got %v, want ErrBudget", err)
	}
	if n != 9 { // charge-then-check: the 10th charge trips the cap
		t.Fatalf("stopped after %d charges, want 9 (10th trips)", n)
	}
	if !c.Exhausted() {
		t.Error("Exhausted() = false after budget stop")
	}
	// Sticky: later points keep refusing.
	if err := c.Point(1); !errors.Is(err, ErrBudget) {
		t.Fatalf("post-stop Point = %v, want ErrBudget", err)
	}
	if tr := c.Snapshot(true); !tr.Partial || !strings.Contains(tr.Reason, "budget") {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestPointCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := New(ctx, Limits{})
	if err := c.Point(1); err != nil {
		t.Fatalf("pre-cancel: %v", err)
	}
	cancel()
	err := c.Point(1)
	if !errors.Is(err, context.Canceled) || !IsCancellation(err) {
		t.Fatalf("got %v, want Canceled", err)
	}
	if c.Exhausted() {
		t.Error("cancellation must not report budget exhaustion")
	}
}

func TestPointDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	c := New(ctx, Limits{})
	if err := c.Point(1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
}

func TestCheckEveryCadence(t *testing.T) {
	var polls int64
	ctx := WithHook(context.Background(), func(nth int64) { polls = nth })
	c := New(ctx, Limits{CheckEvery: 10})
	for i := 0; i < 95; i++ {
		if err := c.Point(1); err != nil {
			t.Fatal(err)
		}
	}
	if polls != 9 {
		t.Fatalf("95 units at cadence 10 ran %d polls, want 9", polls)
	}
}

func TestNilCtlIsInert(t *testing.T) {
	var c *Ctl
	if err := c.Point(5); err != nil {
		t.Fatal(err)
	}
	if c.Exhausted() || c.Err() != nil || c.Units() != 0 {
		t.Fatal("nil Ctl leaked state")
	}
}

func TestGuardRecoversPanic(t *testing.T) {
	err := Guard("core.Populate", "brainENUM", func() error {
		panic("index out of range")
	})
	var ee *ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("got %T, want *ExecError", err)
	}
	if ee.Op != "core.Populate" || ee.Node != "brainENUM" {
		t.Fatalf("ExecError = %+v", ee)
	}
	if ee.PanicValue != "index out of range" || len(ee.Stack) == 0 {
		t.Fatalf("panic details missing: %+v", ee)
	}
	for _, want := range []string{"core.Populate", "brainENUM", "index out of range"} {
		if !strings.Contains(ee.Error(), want) {
			t.Errorf("Error() = %q missing %q", ee.Error(), want)
		}
	}
}

func TestGuardWrapsCancellation(t *testing.T) {
	err := Guard("cluster.KMeans", "", func() error {
		return fmt.Errorf("stopped: %w", context.Canceled)
	})
	var ee *ExecError
	if !errors.As(err, &ee) || ee.Op != "cluster.KMeans" {
		t.Fatalf("got %v, want ExecError for cluster.KMeans", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("wrapping lost errors.Is(Canceled)")
	}
}

func TestGuardDoesNotDoubleWrap(t *testing.T) {
	inner := &ExecError{Op: "fascicle.Lattice", Err: context.Canceled}
	err := Guard("system.CalculateFascicles", "brain5k", func() error { return inner })
	var ee *ExecError
	if !errors.As(err, &ee) {
		t.Fatal("lost ExecError")
	}
	if ee != inner {
		t.Fatalf("nested cancellation re-wrapped: %v", err)
	}
}

func TestGuardPassesOrdinaryErrors(t *testing.T) {
	sentinel := errors.New("no such dataset")
	if err := Guard("op", "", func() error { return sentinel }); err != sentinel {
		t.Fatalf("ordinary error rewritten: %v", err)
	}
	if err := Guard("op", "", func() error { return nil }); err != nil {
		t.Fatalf("clean run errored: %v", err)
	}
}

func TestHookRunsBeforePoll(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctx = WithHook(ctx, func(nth int64) {
		if nth == 3 {
			cancel()
		}
	})
	c := New(ctx, Limits{})
	var err error
	n := 0
	for ; n < 10; n++ {
		if err = c.Point(1); err != nil {
			break
		}
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
	if n != 2 { // hook fires during the 3rd Point, which returns the error
		t.Fatalf("cancel at checkpoint 3 observed after %d clean points, want 2", n)
	}
}

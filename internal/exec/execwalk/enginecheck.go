package execwalk

import (
	"context"
	"fmt"
	"testing"

	"gea/internal/exec"
)

// EngineTarget adapts one operator that can evaluate on multiple
// engines (row-at-a-time vs columnar block kernels) to WalkEngines.
// Where ShardedTarget asserts worker-count equivalence within one
// engine, EngineTarget asserts the equivalence wall between engines:
// every engine must produce bit-identical full results and charge
// identical work units, and every budget-truncated run must be a
// flagged prefix of that shared full result.
type EngineTarget struct {
	// Name labels subtests.
	Name string
	// Engines are the engine labels probed; the first is the baseline
	// (conventionally "row"). Empty means {"row", "columnar"}.
	Engines []string
	// Workers are the worker counts probed per engine. Empty means
	// {1, 4}.
	Workers []int
	// Run invokes the operator on the given engine at the given worker
	// count and returns a canonical row-per-item rendering of its
	// result (so "bit-identical" is a string comparison), plus the
	// trace and error. The closure must rebuild any mutable inputs on
	// every call.
	Run func(ctx context.Context, engine string, workers int, lim exec.Limits) (rows []string, tr exec.Trace, err error)
	// MaxProbes caps the budget positions probed. 0 means 8.
	MaxProbes int
}

func (tg EngineTarget) engines() []string {
	if len(tg.Engines) == 0 {
		return []string{"row", "columnar"}
	}
	return tg.Engines
}

func (tg EngineTarget) workers() []int {
	if len(tg.Workers) == 0 {
		return []int{1, 4}
	}
	return tg.Workers
}

func (tg EngineTarget) probes() int {
	if tg.MaxProbes <= 0 {
		return 8
	}
	return tg.MaxProbes
}

// WalkEngines drives the cross-engine equivalence suite against one
// operator:
//
//   - full-run equivalence: every (engine, workers) combination yields
//     rows bit-identical to the baseline engine at one worker, with an
//     identical unit total — the engines must agree on what one unit of
//     work is, not just on the answer;
//   - budget walk: under every probed budget, every combination stays
//     within the budget, flags the truncation, and returns a strict
//     prefix of the shared full result. Prefix LENGTHS may differ
//     between engines — block-aligned shard boundaries split the budget
//     differently than uniform grains — but the rows themselves must
//     come from the same total order.
func WalkEngines(t *testing.T, tg EngineTarget) {
	t.Helper()

	engines := tg.engines()
	workers := tg.workers()
	base, baseTr, err := tg.Run(context.Background(), engines[0], 1, exec.Limits{})
	if err != nil {
		t.Fatalf("%s: baseline run (%s) failed: %v", tg.Name, engines[0], err)
	}
	if baseTr.Partial {
		t.Fatalf("%s: baseline run flagged partial without any budget", tg.Name)
	}
	if baseTr.Units <= 0 {
		t.Fatalf("%s: operator charged no work units", tg.Name)
	}

	t.Run(tg.Name+"/equivalence", func(t *testing.T) {
		for _, eng := range engines {
			for _, w := range workers {
				rows, tr, err := tg.Run(context.Background(), eng, w, exec.Limits{})
				if err != nil {
					t.Fatalf("%s workers %d: %v", eng, w, err)
				}
				if tr.Partial {
					t.Fatalf("%s workers %d: unbudgeted run flagged partial", eng, w)
				}
				if err := sameRows(base, rows); err != nil {
					t.Fatalf("%s workers %d: result differs from %s workers 1: %v",
						eng, w, engines[0], err)
				}
				if tr.Units != baseTr.Units {
					t.Fatalf("%s workers %d: charged %d units, baseline charged %d",
						eng, w, tr.Units, baseTr.Units)
				}
			}
		}
	})

	t.Run(tg.Name+"/budget-walk", func(t *testing.T) {
		if baseTr.Units < 2 {
			t.Skipf("only %d work units; nothing to truncate", baseTr.Units)
		}
		for _, b := range sample(baseTr.Units-1, tg.probes()) {
			for _, eng := range engines {
				for _, w := range workers {
					rows, tr, err := tg.Run(context.Background(), eng, w, exec.Limits{Budget: b})
					if err != nil {
						t.Fatalf("budget %d %s workers %d: %v", b, eng, w, err)
					}
					if !tr.Partial {
						t.Fatalf("budget %d %s workers %d: truncated run not flagged partial", b, eng, w)
					}
					if tr.Units > b {
						t.Fatalf("budget %d %s workers %d: charged %d units", b, eng, w, tr.Units)
					}
					if len(rows) >= len(base) {
						t.Fatalf("budget %d %s workers %d: partial result has %d rows, full run %d",
							b, eng, w, len(rows), len(base))
					}
					if err := sameRows(base[:len(rows)], rows); err != nil {
						t.Fatalf("budget %d %s workers %d: partial result is not a prefix of the full result: %v",
							b, eng, w, err)
					}
				}
			}
		}
	})
}

// RenderFloats is a helper for Run closures: a canonical, bit-faithful
// rendering of a float64 row ("%x" round-trips every value including
// NaN payloads and signed zero, which "%v" does not distinguish).
func RenderFloats(prefix string, vals ...float64) string {
	s := prefix
	for _, v := range vals {
		s += fmt.Sprintf(" %x", v)
	}
	return s
}

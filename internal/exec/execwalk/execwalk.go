// Package execwalk is the deterministic checkpoint-walk test driver for
// the exec governance layer — the compute-side sibling of PR 1's iofault
// crash walks. Given a Target adapter around one context-accepting
// operator, Walk first runs it unconstrained to count its checkpoints
// and work units, then replays it many times, each replay stopping the
// operator at a chosen point:
//
//   - cancel at the Nth checkpoint → the operator must return a
//     cancellation error within one checkpoint interval (plus Slack);
//   - pre-expired deadline → immediate deadline error at the very first
//     checkpoint;
//   - budget of B < total units → a nil error with Trace.Partial set
//     and strictly less work than the full run — flagged, not silent;
//   - panic injected at the Nth checkpoint → a structured *ExecError
//     carrying the operator name and the recovered value.
//
// Hooks make every stop deterministic: no timers, no goroutines, no
// flakes — the walk is a pure function of the operator's loop shape.
package execwalk

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"gea/internal/exec"
)

// Target adapts one operator to the walk driver.
type Target struct {
	// Name labels subtests.
	Name string
	// Run invokes the operator with the given context and limits and
	// returns its trace and error. The closure must rebuild any
	// mutable inputs (e.g. a rand source) on every call so replays are
	// identical.
	Run func(ctx context.Context, lim exec.Limits) (exec.Trace, error)
	// MaxProbes caps how many cancel/budget/panic positions are probed
	// (stride-sampled across the full run). 0 means 32.
	MaxProbes int
	// Slack is how many checkpoints past the stop an operator may
	// still touch while unwinding (composite operators poll the sticky
	// stop once per stage). 0 means 2.
	Slack int64
	// MaxUnitStep is the largest single Point(n) charge the operator
	// makes; a budget stop may overshoot by at most this many units.
	// 0 means 64.
	MaxUnitStep int64
}

func (tg Target) probes() int {
	if tg.MaxProbes <= 0 {
		return 32
	}
	return tg.MaxProbes
}

func (tg Target) slack() int64 {
	if tg.Slack <= 0 {
		return 2
	}
	return tg.Slack
}

func (tg Target) unitStep() int64 {
	if tg.MaxUnitStep <= 0 {
		return 64
	}
	return tg.MaxUnitStep
}

// sample returns up to n probe positions in [1, max], always including
// 1 and max, evenly strided.
func sample(max int64, n int) []int64 {
	if max <= 0 {
		return nil
	}
	if int64(n) >= max {
		out := make([]int64, 0, max)
		for i := int64(1); i <= max; i++ {
			out = append(out, i)
		}
		return out
	}
	out := make([]int64, 0, n)
	stride := max / int64(n)
	for k := int64(1); k <= max; k += stride {
		out = append(out, k)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// validateBaseline vets the unconstrained run: a walkable operator must
// complete cleanly, charge work, and poll at least one checkpoint — a
// zero-work or checkpoint-free operator is ungovernable and the walk
// would vacuously pass against it.
func validateBaseline(base exec.Trace, totalChecks int64) error {
	if base.Partial {
		//lint:gea errwrap -- harness diagnostic about an operator's shape; no governance sentinel exists to wrap
		return errors.New("baseline run flagged partial without any budget")
	}
	if totalChecks == 0 || base.Checkpoints == 0 {
		//lint:gea errwrap -- harness diagnostic about an operator's shape; no governance sentinel exists to wrap
		return errors.New("operator ran without a single checkpoint — it is not cancellable")
	}
	if base.Units <= 0 {
		return errors.New("operator charged no work units")
	}
	return nil
}

// Walk drives the full deterministic suite against one operator.
func Walk(t *testing.T, tg Target) {
	t.Helper()

	// Baseline: unconstrained run must complete cleanly and checkpoint.
	var totalChecks int64
	ctx := exec.WithHook(context.Background(), func(nth int64) { totalChecks = nth })
	base, err := tg.Run(ctx, exec.Limits{})
	if err != nil {
		t.Fatalf("%s: baseline run failed: %v", tg.Name, err)
	}
	if err := validateBaseline(base, totalChecks); err != nil {
		t.Fatalf("%s: %v", tg.Name, err)
	}

	t.Run(tg.Name+"/deadline-pre-expired", func(t *testing.T) {
		var seen int64
		dctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
		defer cancel()
		dctx = exec.WithHook(dctx, func(nth int64) { seen = nth })
		_, err := tg.Run(dctx, exec.Limits{})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("expired deadline: got %v, want DeadlineExceeded", err)
		}
		if seen > tg.slack() {
			t.Fatalf("operator ran %d checkpoints past an already-expired deadline", seen)
		}
		var ee *exec.ExecError
		if !errors.As(err, &ee) || ee.Op == "" {
			t.Fatalf("deadline error not a structured ExecError with operator name: %v", err)
		}
	})

	t.Run(tg.Name+"/cancel-walk", func(t *testing.T) {
		for _, k := range sample(totalChecks, tg.probes()) {
			var seen int64
			cctx, cancel := context.WithCancel(context.Background())
			cctx = exec.WithHook(cctx, func(nth int64) {
				seen = nth
				if nth == k {
					cancel()
				}
			})
			_, err := tg.Run(cctx, exec.Limits{})
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancel at checkpoint %d/%d: got %v, want Canceled", k, totalChecks, err)
			}
			if seen > k+tg.slack() {
				t.Fatalf("cancel at checkpoint %d: operator ran to checkpoint %d (slack %d)",
					k, seen, tg.slack())
			}
		}
	})

	t.Run(tg.Name+"/budget-walk", func(t *testing.T) {
		if base.Units < 2 {
			t.Skipf("only %d work units; nothing to truncate", base.Units)
		}
		for _, b := range sample(base.Units-1, tg.probes()) {
			tr, err := tg.Run(context.Background(), exec.Limits{Budget: b})
			if err != nil {
				t.Fatalf("budget %d/%d: unexpected error %v", b, base.Units, err)
			}
			if !tr.Partial {
				t.Fatalf("budget %d/%d: truncated run not flagged partial", b, base.Units)
			}
			if tr.Units > b+tg.unitStep() {
				t.Fatalf("budget %d: operator charged %d units (max step %d)",
					b, tr.Units, tg.unitStep())
			}
		}
		// A budget at least as large as the full run must not truncate.
		tr, err := tg.Run(context.Background(), exec.Limits{Budget: base.Units + tg.unitStep()})
		if err != nil {
			t.Fatalf("ample budget: %v", err)
		}
		if tr.Partial {
			t.Fatalf("ample budget %d for %d units still flagged partial", base.Units+tg.unitStep(), base.Units)
		}
	})

	t.Run(tg.Name+"/panic-walk", func(t *testing.T) {
		type boom struct{ at int64 }
		for _, k := range sample(totalChecks, tg.probes()) {
			pctx := exec.WithHook(context.Background(), func(nth int64) {
				if nth == k {
					//lint:gea nopanic -- deliberate fault injection: the walk asserts Guard recovers this panic into *exec.ExecError
					panic(boom{at: k})
				}
			})
			_, err := tg.Run(pctx, exec.Limits{})
			var ee *exec.ExecError
			if !errors.As(err, &ee) {
				t.Fatalf("panic at checkpoint %d: got %v (%T), want *exec.ExecError", k, err, err)
			}
			if ee.Op == "" {
				t.Fatalf("panic at checkpoint %d: ExecError missing operator name", k)
			}
			bv, ok := ee.PanicValue.(boom)
			if !ok || bv.at != k {
				t.Fatalf("panic at checkpoint %d: PanicValue = %#v", k, ee.PanicValue)
			}
		}
	})

	t.Run(tg.Name+"/coarse-cadence", func(t *testing.T) {
		// A coarser poll cadence must still observe cancellation. Pick a
		// cadence the operator's total work can actually reach.
		cadence := base.Units / 4
		if cadence < 2 {
			cadence = 2
		}
		if base.Units < 2*cadence {
			t.Skipf("only %d work units; no room for a coarser cadence", base.Units)
		}
		var seen int64
		cctx, cancel := context.WithCancel(context.Background())
		cctx = exec.WithHook(cctx, func(nth int64) {
			seen = nth
			if nth == 1 {
				cancel()
			}
		})
		_, err := tg.Run(cctx, exec.Limits{CheckEvery: cadence})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cadence %d: got %v, want Canceled", cadence, err)
		}
		if seen > 1+tg.slack() {
			t.Fatalf("cadence %d: ran to checkpoint %d after cancel at 1", cadence, seen)
		}
	})
}

// ShardedTarget adapts one sharded operator to WalkSharded. Where
// Target probes a sequential loop, ShardedTarget probes the same loop
// at several worker counts and asserts the shard substrate's promise:
// the rows an operator returns are bit-identical at any worker count,
// including the flagged partial prefix left by a budget stop.
type ShardedTarget struct {
	// Name labels subtests.
	Name string
	// Run invokes the operator at the given worker count and returns a
	// canonical row-per-item rendering of its result (so "bit-identical"
	// is a string comparison), plus the trace and error. The closure
	// must rebuild any mutable inputs on every call.
	Run func(ctx context.Context, workers int, lim exec.Limits) (rows []string, tr exec.Trace, err error)
	// Workers are the counts probed. Empty means {1, 2, 8}.
	Workers []int
	// MaxProbes caps the budget/cancel positions probed. 0 means 16.
	MaxProbes int
	// Slack is the per-worker checkpoint slack after a cancellation
	// (each in-flight shard may poll once more while unwinding).
	// 0 means 2.
	Slack int64
}

func (tg ShardedTarget) workers() []int {
	if len(tg.Workers) == 0 {
		return []int{1, 2, 8}
	}
	return tg.Workers
}

func (tg ShardedTarget) probes() int {
	if tg.MaxProbes <= 0 {
		return 16
	}
	return tg.MaxProbes
}

func (tg ShardedTarget) slack() int64 {
	if tg.Slack <= 0 {
		return 2
	}
	return tg.Slack
}

func sameRows(a, b []string) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d rows vs %d rows", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("row %d differs:\n  %q\n  %q", i, a[i], b[i])
		}
	}
	return nil
}

// WalkSharded drives the sharded-equivalence suite against one
// operator: identical full results at every worker count, identical
// flagged partial prefixes under a walked budget, and cancellation
// observed promptly by every worker.
func WalkSharded(t *testing.T, tg ShardedTarget) {
	t.Helper()

	workers := tg.workers()
	base, baseTr, err := tg.Run(context.Background(), 1, exec.Limits{})
	if err != nil {
		t.Fatalf("%s: baseline run failed: %v", tg.Name, err)
	}
	if baseTr.Partial {
		t.Fatalf("%s: baseline run flagged partial without any budget", tg.Name)
	}
	if baseTr.Units <= 0 {
		t.Fatalf("%s: operator charged no work units", tg.Name)
	}

	t.Run(tg.Name+"/equivalence", func(t *testing.T) {
		for _, w := range workers {
			rows, tr, err := tg.Run(context.Background(), w, exec.Limits{})
			if err != nil {
				t.Fatalf("workers %d: %v", w, err)
			}
			if tr.Partial {
				t.Fatalf("workers %d: unbudgeted run flagged partial", w)
			}
			if err := sameRows(base, rows); err != nil {
				t.Fatalf("workers %d: result differs from workers 1: %v", w, err)
			}
			if tr.Units != baseTr.Units {
				t.Fatalf("workers %d: charged %d units, workers 1 charged %d", w, tr.Units, baseTr.Units)
			}
		}
	})

	t.Run(tg.Name+"/budget-walk", func(t *testing.T) {
		if baseTr.Units < 2 {
			t.Skipf("only %d work units; nothing to truncate", baseTr.Units)
		}
		for _, b := range sample(baseTr.Units-1, tg.probes()) {
			var want []string
			for _, w := range workers {
				rows, tr, err := tg.Run(context.Background(), w, exec.Limits{Budget: b})
				if err != nil {
					t.Fatalf("budget %d workers %d: %v", b, w, err)
				}
				if !tr.Partial {
					t.Fatalf("budget %d workers %d: truncated run not flagged partial", b, w)
				}
				if tr.Units > b {
					t.Fatalf("budget %d workers %d: charged %d units", b, w, tr.Units)
				}
				if len(rows) >= len(base) {
					t.Fatalf("budget %d workers %d: partial result has %d rows, full run %d",
						b, w, len(rows), len(base))
				}
				if err := sameRows(base[:len(rows)], rows); err != nil {
					t.Fatalf("budget %d workers %d: partial result is not a prefix of the full result: %v", b, w, err)
				}
				if want == nil {
					want = rows
				} else if err := sameRows(want, rows); err != nil {
					t.Fatalf("budget %d: workers %d prefix differs from workers %d: %v",
						b, w, workers[0], err)
				}
			}
		}
	})

	t.Run(tg.Name+"/cancel-walk", func(t *testing.T) {
		totalChecks := baseTr.Checkpoints
		for _, w := range workers {
			for _, k := range sample(totalChecks, tg.probes()) {
				var seen atomic.Int64
				var fired atomic.Bool
				cctx, cancel := context.WithCancel(context.Background())
				cctx = exec.WithHook(cctx, func(nth int64) {
					for {
						cur := seen.Load()
						if nth <= cur || seen.CompareAndSwap(cur, nth) {
							break
						}
					}
					if nth >= k && fired.CompareAndSwap(false, true) {
						cancel()
					}
				})
				_, _, err := tg.Run(cctx, w, exec.Limits{})
				cancel()
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("workers %d cancel at checkpoint %d/%d: got %v, want Canceled",
						w, k, totalChecks, err)
				}
				// Every in-flight worker may take one more checkpoint
				// (plus the operator's own unwind slack) before it
				// observes the stop.
				bound := k + int64(w)*(tg.slack()+1)
				if got := seen.Load(); got > bound {
					t.Fatalf("workers %d cancel at checkpoint %d: ran to checkpoint %d (bound %d)",
						w, k, got, bound)
				}
			}
		}
	})
}

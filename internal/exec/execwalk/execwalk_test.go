package execwalk

import (
	"context"
	"errors"
	"testing"

	"gea/internal/exec"
)

// syntheticOp is a minimal governed operator: units metered work steps,
// charged one at a time, under Guard like the real operators.
func syntheticOp(units int64) func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
	return func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
		c := exec.New(ctx, lim)
		var partial bool
		err := exec.Guard("execwalk.synthetic", "", func() error {
			for i := int64(0); i < units; i++ {
				if err := c.Point(1); err != nil {
					if exec.IsBudget(err) {
						partial = true
						return nil
					}
					return err
				}
			}
			return nil
		})
		return c.Snapshot(partial), err
	}
}

// TestWalkSyntheticOperator exercises the whole driver against a known
// loop shape, so a regression in the walk itself (rather than in an
// operator) is caught here first.
func TestWalkSyntheticOperator(t *testing.T) {
	Walk(t, Target{
		Name:        "synthetic",
		Run:         syntheticOp(40),
		MaxUnitStep: 1,
	})
}

func TestValidateBaseline(t *testing.T) {
	healthy := exec.Trace{Units: 40, Checkpoints: 40}
	tests := []struct {
		name        string
		base        exec.Trace
		totalChecks int64
		wantErr     bool
	}{
		{"healthy", healthy, 40, false},
		{"zero work", exec.Trace{Checkpoints: 1}, 1, true},
		{"no checkpoints", exec.Trace{Units: 40}, 0, true},
		{"hook silent", healthy, 0, true},
		{"partial without budget", exec.Trace{Partial: true, Units: 40, Checkpoints: 40}, 40, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := validateBaseline(tt.base, tt.totalChecks)
			if (err != nil) != tt.wantErr {
				t.Fatalf("validateBaseline(%+v, %d) = %v, wantErr %v", tt.base, tt.totalChecks, err, tt.wantErr)
			}
		})
	}
}

// TestWalkRejectsZeroWorkOperator feeds the baseline validator the
// trace a do-nothing operator produces: Walk must refuse to bless it
// rather than run a vacuous suite.
func TestWalkRejectsZeroWorkOperator(t *testing.T) {
	var totalChecks int64
	ctx := exec.WithHook(context.Background(), func(nth int64) { totalChecks = nth })
	tr, err := syntheticOp(0)(ctx, exec.Limits{})
	if err != nil {
		t.Fatalf("zero-work operator errored: %v", err)
	}
	if err := validateBaseline(tr, totalChecks); err == nil {
		t.Fatal("validateBaseline accepted a zero-work operator")
	}
}

// TestCadenceCoarserThanTotalWork pins the documented boundary of
// CheckEvery: when the poll interval exceeds the operator's entire
// workload, no checkpoint ever fires — the run completes, the trace
// records zero checkpoints, and cancellation is never observed.
func TestCadenceCoarserThanTotalWork(t *testing.T) {
	op := syntheticOp(10)

	cctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the run even starts
	tr, err := op(cctx, exec.Limits{CheckEvery: 100})
	if err != nil {
		t.Fatalf("coarse cadence: %v (cancellation should never be polled)", err)
	}
	if tr.Checkpoints != 0 {
		t.Fatalf("CheckEvery 100 over 10 units polled %d checkpoints, want 0", tr.Checkpoints)
	}
	if tr.Units != 10 {
		t.Fatalf("charged %d units, want 10", tr.Units)
	}
	if tr.Partial {
		t.Fatal("complete run flagged partial")
	}

	// The same workload at unit cadence observes the cancellation at the
	// first poll.
	if _, err := op(cctx, exec.Limits{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("unit cadence: got %v, want Canceled", err)
	}
}

// TestCadenceCoarserThanBudget: a budget below one checkpoint interval
// can only be enforced at the first poll, so the overshoot is bounded
// by CheckEvery, not by the budget itself.
func TestCadenceCoarserThanBudget(t *testing.T) {
	tr, err := syntheticOp(10)(context.Background(), exec.Limits{Budget: 2, CheckEvery: 5})
	if err != nil {
		t.Fatalf("budget under coarse cadence: %v", err)
	}
	if !tr.Partial {
		t.Fatal("budget-stopped run not flagged partial")
	}
	if tr.Units != 5 {
		t.Fatalf("charged %d units, want 5 (budget 2 rounded up to the first poll)", tr.Units)
	}
}

func TestSample(t *testing.T) {
	t.Run("no work", func(t *testing.T) {
		if got := sample(0, 8); got != nil {
			t.Fatalf("sample(0, 8) = %v, want nil", got)
		}
		if got := sample(-3, 8); got != nil {
			t.Fatalf("sample(-3, 8) = %v, want nil", got)
		}
	})
	t.Run("single position", func(t *testing.T) {
		got := sample(1, 8)
		if len(got) != 1 || got[0] != 1 {
			t.Fatalf("sample(1, 8) = %v, want [1]", got)
		}
	})
	t.Run("probes cover everything", func(t *testing.T) {
		got := sample(5, 8)
		want := []int64{1, 2, 3, 4, 5}
		if len(got) != len(want) {
			t.Fatalf("sample(5, 8) = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sample(5, 8) = %v, want %v", got, want)
			}
		}
	})
	t.Run("strided", func(t *testing.T) {
		got := sample(1000, 10)
		if got[0] != 1 {
			t.Fatalf("first probe %d, want 1", got[0])
		}
		if got[len(got)-1] != 1000 {
			t.Fatalf("last probe %d, want 1000", got[len(got)-1])
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("probes not strictly increasing: %v", got)
			}
			if got[i] > 1000 {
				t.Fatalf("probe %d out of range: %v", got[i], got)
			}
		}
	})
}

package execwalk

import (
	"context"
	"errors"
	"testing"

	"gea/internal/exec"
	"gea/internal/obs"
)

// SpanVerified wraps a Target.Run so that every invocation — the baseline
// run and every cancel, budget, panic and coarse-cadence probe of a walk —
// also pins the observability invariants of the exec substrate:
//
//   - a governed invocation emits exactly one completed root span, named
//     after the operator;
//   - the root span's unit total equals the Ctl's charged total (the
//     returned Trace), at any worker count;
//   - the span outcome classifies the run the way the caller saw it:
//     ok, partial on a flagged budget stop, canceled on cancellation,
//     budget on an ErrBudget error, panic on a recovered panic, error
//     otherwise;
//   - no span anywhere in the tree is left without an outcome.
//
// Each invocation gets a fresh collector, so the assertions are local to
// that probe. The wrapped Run is also convenient to call directly with
// explicit worker limits to sweep the unit-total invariant across worker
// counts.
func SpanVerified(t *testing.T, op string, run func(ctx context.Context, lim exec.Limits) (exec.Trace, error)) func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
	return func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
		t.Helper()
		col := obs.NewCollector()
		tr, err := run(obs.WithCollector(ctx, col), lim)

		roots := col.Roots()
		if len(roots) != 1 {
			t.Errorf("%s: %d completed root spans, want exactly 1", op, len(roots))
			return tr, err
		}
		root := roots[0]
		if root.Op != op {
			t.Errorf("root span op = %q, want %q", root.Op, op)
		}
		if root.Units != tr.Units {
			t.Errorf("%s (workers %d): root span recorded %d units, Ctl charged %d",
				op, lim.Workers, root.Units, tr.Units)
		}

		want := obs.OutcomeOK
		switch {
		case exec.IsCancellation(err):
			want = obs.OutcomeCanceled
		case exec.IsBudget(err):
			want = obs.OutcomeBudget
		case err != nil:
			want = obs.OutcomeError
			var ee *exec.ExecError
			if errors.As(err, &ee) && ee.PanicValue != nil {
				want = obs.OutcomePanic
			}
		case tr.Partial:
			want = obs.OutcomePartial
		}
		if root.Outcome != want {
			t.Errorf("%s: root span outcome %q, want %q (err=%v, partial=%v)",
				op, root.Outcome, want, err, tr.Partial)
		}
		root.Walk(func(r *obs.Record) {
			if r.Outcome == "" {
				t.Errorf("%s: span %q completed without an outcome", op, r.Op)
			}
		})
		return tr, err
	}
}

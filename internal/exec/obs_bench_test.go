package exec

import (
	"context"
	"testing"

	"gea/internal/obs"
)

// BenchmarkSpanPair isolates the per-operator instrumentation cost: one
// StartSpan/EndSpan pair, with and without a collector behind the Ctl.
// The no-collector case is the guarantee the layer sells — a nil check
// and nothing else — so it must stay allocation-free.
func BenchmarkSpanPair(b *testing.B) {
	pair := func(c *Ctl) {
		sp := c.StartSpan("bench.op")
		var partial bool
		var err error
		defer c.EndSpan(sp, &partial, &err)
	}
	b.Run("no-collector", func(b *testing.B) {
		c := New(context.Background(), Limits{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pair(c)
		}
	})
	b.Run("collector", func(b *testing.B) {
		col := obs.NewCollector()
		c := New(obs.WithCollector(context.Background(), col), Limits{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pair(c)
		}
	})
}

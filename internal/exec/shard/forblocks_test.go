package shard

import (
	"context"
	"sort"
	"sync"
	"testing"

	"gea/internal/exec"
)

// irregularEdges builds an ascending edge list over work items with
// deterministic, uneven block sizes — the shape a columnar store's
// ragged tail produces.
func irregularEdges(work int) []int {
	edges := []int{0}
	sizes := []int{3, 8, 1, 5, 13, 2, 8, 8, 4}
	for i := 0; edges[len(edges)-1] < work; i++ {
		next := edges[len(edges)-1] + sizes[i%len(sizes)]
		if next > work {
			next = work
		}
		edges = append(edges, next)
	}
	return edges
}

func TestShardEquivForBlocks(t *testing.T) {
	const work = 500
	edges := irregularEdges(work)
	edgeSet := map[int]bool{}
	for _, e := range edges {
		edgeSet[e] = true
	}

	// Full runs: complete at any worker count, every kernel range is
	// block-aligned (both endpoints are edges), and results match the
	// sequential fill.
	for _, workers := range []int{1, 2, 3, 8, 32} {
		c := exec.New(context.Background(), exec.Limits{Workers: workers})
		out := make([]int, work)
		var mu sync.Mutex
		var calls [][2]int
		prefix, partial, err := ForBlocks(c, 0, edges, func(c *exec.Ctl, _, lo, hi int) (int, error) {
			mu.Lock()
			calls = append(calls, [2]int{lo, hi})
			mu.Unlock()
			for i := lo; i < hi; i++ {
				if err := c.Point(1); err != nil {
					return i - lo, err
				}
				out[i] = i * i
			}
			return hi - lo, nil
		})
		if err != nil || partial || prefix != work {
			t.Fatalf("workers %d: (%d, %v, %v), want (%d, false, nil)", workers, prefix, partial, err, work)
		}
		for _, call := range calls {
			if !edgeSet[call[0]] || !edgeSet[call[1]] {
				t.Fatalf("workers %d: kernel range [%d,%d) is not block-aligned to %v", workers, call[0], call[1], edges)
			}
		}
		sort.Slice(calls, func(i, j int) bool { return calls[i][0] < calls[j][0] })
		covered := 0
		for _, call := range calls {
			if call[0] != covered {
				t.Fatalf("workers %d: shard ranges %v leave a gap at %d", workers, calls, covered)
			}
			covered = call[1]
		}
		if covered != work {
			t.Fatalf("workers %d: shards cover %d of %d items", workers, covered, work)
		}
		for i := range out {
			if out[i] != i*i {
				t.Fatalf("workers %d: out[%d] = %d", workers, i, out[i])
			}
		}
		if c.Units() != work {
			t.Fatalf("workers %d: charged %d units", workers, c.Units())
		}
	}

	// Budget walk: the flagged prefix is identical at every worker
	// count — boundaries are a pure function of the edge list.
	for _, budget := range []int64{1, 7, 50, 211, 499} {
		wantPrefix := -1
		for _, workers := range []int{1, 2, 8} {
			c := exec.New(context.Background(), exec.Limits{Budget: budget, Workers: workers})
			out := make([]int, work)
			prefix, partial, err := ForBlocks(c, 0, edges, squareKernel(out))
			if err != nil || !partial {
				t.Fatalf("budget %d workers %d: (%v, %v)", budget, workers, partial, err)
			}
			if wantPrefix == -1 {
				wantPrefix = prefix
			} else if prefix != wantPrefix {
				t.Fatalf("budget %d: prefix %d at %d workers, %d at 1", budget, prefix, workers, wantPrefix)
			}
			for i := 0; i < prefix; i++ {
				if out[i] != i*i {
					t.Fatalf("budget %d workers %d: prefix row %d not computed", budget, workers, i)
				}
			}
			if c.Units() > budget {
				t.Fatalf("budget %d workers %d: charged %d units", budget, workers, c.Units())
			}
		}
	}
}

func TestForBlocksExplicitWorkersOverride(t *testing.T) {
	// The Ctl says one worker; the call says 8. Count concurrent
	// kernels to prove the override took.
	edges := irregularEdges(400)
	c := exec.New(context.Background(), exec.Limits{Workers: 1})
	var mu sync.Mutex
	active, peak := 0, 0
	out := make([]int, 400)
	_, _, err := ForBlocks(c, 8, edges, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		mu.Lock()
		active++
		if active > peak {
			peak = active
		}
		mu.Unlock()
		n, err := squareKernel(out)(c, 0, lo, hi)
		mu.Lock()
		active--
		mu.Unlock()
		return n, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak < 2 {
		t.Skipf("no observed concurrency (peak %d); scheduler timing", peak)
	}
}

func TestForBlocksDegenerateEdges(t *testing.T) {
	c := exec.New(context.Background(), exec.Limits{})
	for _, edges := range [][]int{nil, {}, {0}, {0, 0}} {
		prefix, partial, err := ForBlocks(c, 0, edges, func(*exec.Ctl, int, int, int) (int, error) {
			t.Fatal("kernel ran on degenerate edges")
			return 0, nil
		})
		if prefix != 0 || partial || err != nil {
			t.Fatalf("edges %v: (%d, %v, %v)", edges, prefix, partial, err)
		}
	}
}

func TestForBlocksSingleGiantBlock(t *testing.T) {
	// One block larger than the shard target is one shard: no split may
	// ever fall inside a block.
	c := exec.New(context.Background(), exec.Limits{Workers: 8})
	out := make([]int, 300)
	calls := 0
	prefix, partial, err := ForBlocks(c, 0, []int{0, 300}, func(c *exec.Ctl, _, lo, hi int) (int, error) {
		calls++
		if lo != 0 || hi != 300 {
			t.Fatalf("giant block split into [%d,%d)", lo, hi)
		}
		return squareKernel(out)(c, 0, lo, hi)
	})
	if err != nil || partial || prefix != 300 || calls != 1 {
		t.Fatalf("(%d, %v, %v) in %d calls", prefix, partial, err, calls)
	}
}

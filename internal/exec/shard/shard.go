// Package shard is the one parallel evaluation substrate under GEA's
// operator algebra. Every data-parallel operator loop — populate's
// candidate verification, aggregate's per-tag statistics, diff's row
// join, the clusterers' distance matrices — is expressed as a Kernel
// over a contiguous index range and driven by For, which:
//
//   - splits the work into deterministic contiguous shards whose
//     boundaries depend only on (work, grain) — or, for ForBlocks, on
//     the block edge list — never on the worker count;
//   - hands each shard a child Ctl carrying a proportional slice of
//     the remaining budget (exec.Ctl.SplitWork), so the
//     charge-then-check discipline holds per shard;
//   - runs the shards on a bounded worker pool, skipping shards past
//     the first stop;
//   - merges the children back (exec.Ctl.Merge) so Units() totals,
//     checkpoint counts, partial flags and the first error are exact.
//
// The contract that makes results bit-identical at any worker count:
// which shards run to completion is a pure function of the budget
// split, and the returned prefix always ends at the first stopped
// shard, so rows past it are discarded even if later shards happened
// to run. Kernels must write only to their own [lo, hi) output slots
// and charge exactly one unit per item through their shard Ctl.
package shard

import (
	"sync"
	"sync/atomic"

	"gea/internal/exec"
)

// Kernel computes items [lo, hi) of a sharded loop, writing results
// into caller-owned per-item slots. It charges one unit per item via
// c.Point BEFORE computing the item and returns the number of items
// fully computed together with the first error c.Point returned (or
// an operator-level failure of its own). A budget or cancellation
// stop is therefore reported as (done < hi-lo, err != nil) with the
// raw Point error — For classifies it; the kernel must not wrap it.
type Kernel func(c *exec.Ctl, shard, lo, hi int) (done int, err error)

// defaultShards is how many shards For aims for when the caller does
// not pick a grain: enough for load balancing on any plausible CPU
// count without drowning small inputs in scheduling overhead.
const defaultShards = 64

// For runs kernel over [0, work) in contiguous shards of the given
// grain (<= 0 picks one), on up to c.Workers() goroutines. It returns
// the length of the valid result prefix, whether that prefix is a
// budget-truncated partial result, and the first (in shard order)
// cancellation or operator error. Exactly one of partial/err is set
// on an early stop; on a clean completion prefix == work.
func For(c *exec.Ctl, work, grain int, kernel Kernel) (prefix int, partial bool, err error) {
	return ForN(c, 0, work, grain, kernel)
}

// ForN is For with an explicit worker count overriding the Ctl's
// (<= 0 defers to the Ctl). PopulateOptions.Workers threads through
// here.
func ForN(c *exec.Ctl, workers, work, grain int, kernel Kernel) (int, bool, error) {
	if work <= 0 {
		return 0, false, nil
	}
	if grain <= 0 {
		grain = (work + defaultShards - 1) / defaultShards
	}
	nshards := (work + grain - 1) / grain
	bounds := make([]int, nshards+1)
	//lint:gea ctlcharge -- O(shards) dispatch bookkeeping of the substrate itself; the kernels meter the actual work
	for i := 1; i <= nshards; i++ {
		hi := i * grain
		if hi > work {
			hi = work
		}
		bounds[i] = hi
	}
	return forBounds(c, workers, bounds, kernel)
}

// ForBlocks is For with shard boundaries drawn from a block edge list
// instead of a uniform grain: edges must be strictly ascending with
// edges[0] == 0 and edges[len-1] == the total work, and every shard
// boundary falls on an edge, so a kernel always sees whole blocks.
// Shards group consecutive blocks toward the same per-shard item
// count For would pick — boundaries are a pure function of the edge
// list, never of the worker count, preserving the bit-identical
// prefix contract.
func ForBlocks(c *exec.Ctl, workers int, edges []int, kernel Kernel) (int, bool, error) {
	if len(edges) < 2 || edges[len(edges)-1] <= 0 {
		return 0, false, nil
	}
	work := edges[len(edges)-1]
	target := (work + defaultShards - 1) / defaultShards
	bounds := make([]int, 1, len(edges))
	//lint:gea ctlcharge -- O(blocks) dispatch bookkeeping of the substrate itself; the kernels meter the actual work
	for _, e := range edges[1:] {
		if e-bounds[len(bounds)-1] >= target || e == work {
			bounds = append(bounds, e)
		}
	}
	return forBounds(c, workers, bounds, kernel)
}

// forBounds runs kernel over the contiguous shards [bounds[i],
// bounds[i+1]), the shared engine of For/ForN/ForBlocks.
func forBounds(c *exec.Ctl, workers int, bounds []int, kernel Kernel) (int, bool, error) {
	// Pre-flight: a Ctl already stopped by an earlier stage must not
	// start new work. Budget exhaustion yields an empty flagged
	// prefix; a cancellation propagates as the error it is.
	if err := c.Err(); err != nil {
		if exec.IsBudget(err) {
			return 0, true, nil
		}
		return 0, false, err
	}
	nshards := len(bounds) - 1
	if workers <= 0 {
		workers = c.Workers()
	}
	if workers > nshards {
		workers = nshards
	}

	counts := make([]int64, nshards)
	//lint:gea ctlcharge -- O(shards) dispatch bookkeeping of the substrate itself; the kernels meter the actual work
	for i := range counts {
		counts[i] = int64(bounds[i+1] - bounds[i])
	}
	kids := c.SplitWork(counts)

	outs := make([]outcome, nshards)
	if workers <= 1 {
		runSequential(kids, outs, bounds, kernel)
	} else {
		runParallel(kids, outs, bounds, workers, kernel)
	}
	c.Merge(kids...)
	return settle(kids, outs, bounds)
}

// outcome records how one shard ended.
type outcome struct {
	done    int   // items fully computed
	err     error // Point stop or operator error; nil on completion
	skipped bool  // never ran: a prior shard had already stopped
	panicv  any   // recovered panic value, re-raised by settle
}

// stoppedEarly reports whether shard i ended before computing its full
// range — by budget, cancellation, operator error or panic.
func (o *outcome) stoppedEarly() bool {
	return o.err != nil || o.panicv != nil || o.skipped
}

func runSequential(kids []*exec.Ctl, outs []outcome, bounds []int, kernel Kernel) {
	for i := range kids {
		if i > 0 && outs[i-1].stoppedEarly() {
			// Sequential semantics: nothing past the first stop runs.
			for j := i; j < len(outs); j++ {
				outs[j].skipped = true
			}
			return
		}
		// No recover here: at one worker a kernel panic unwinds
		// straight to the operator's Guard, exactly like the old
		// sequential loops.
		outs[i].done, outs[i].err = kernel(kids[i], i, bounds[i], bounds[i+1])
	}
}

func runParallel(kids []*exec.Ctl, outs []outcome, bounds []int, workers int, kernel Kernel) {
	var next atomic.Int64
	var stopIdx atomic.Int64 // lowest shard index known to have stopped
	stopIdx.Store(int64(len(kids)))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(kids) {
					return
				}
				if int64(i) > stopIdx.Load() {
					outs[i].skipped = true
					continue
				}
				runShard(kids[i], &outs[i], i, bounds[i], bounds[i+1], kernel)
				if outs[i].stoppedEarly() {
					for {
						cur := stopIdx.Load()
						if int64(i) >= cur || stopIdx.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}

// runShard executes one shard panic-isolated: a worker goroutine must
// never die with an unrecovered panic (that would crash the process),
// so the panic value is captured and settle re-raises the first one —
// in shard order — on the caller's goroutine for Guard to structure.
func runShard(kid *exec.Ctl, out *outcome, shard, lo, hi int, kernel Kernel) {
	defer func() {
		if rec := recover(); rec != nil {
			out.panicv = rec
		}
	}()
	out.done, out.err = kernel(kid, shard, lo, hi)
}

// settle classifies the run from the first shard (in shard order) that
// ended early. All lower shards completed their full ranges — a shard
// stops only on its own deterministic budget slice, a cancellation, a
// kernel error or a panic — so the prefix is exact.
func settle(kids []*exec.Ctl, outs []outcome, bounds []int) (int, bool, error) {
	for i := range outs {
		o := &outs[i]
		if !o.stoppedEarly() {
			continue
		}
		switch {
		case o.panicv != nil:
			//lint:gea nopanic -- re-raising a worker panic on the caller goroutine so exec.Guard recovers it into a structured *exec.ExecError
			panic(o.panicv)
		case o.skipped:
			// First stop was a shard that never ran: only a child born
			// already budget-stopped by a zero slice does that.
			if err := kids[i].Err(); err != nil && !exec.IsBudget(err) {
				return 0, false, err
			}
			return bounds[i], true, nil
		case exec.IsBudget(o.err):
			return bounds[i] + o.done, true, nil
		default:
			return 0, false, o.err
		}
	}
	return bounds[len(bounds)-1], false, nil
}

package shard

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"gea/internal/exec"
)

// squareKernel fills out[i] = i*i for its range, charging 1 unit/item.
func squareKernel(out []int) Kernel {
	return func(c *exec.Ctl, _, lo, hi int) (int, error) {
		for i := lo; i < hi; i++ {
			if err := c.Point(1); err != nil {
				return i - lo, err
			}
			out[i] = i * i
		}
		return hi - lo, nil
	}
}

func TestForCompletesAtAnyWorkerCount(t *testing.T) {
	const work = 1000
	for _, workers := range []int{1, 2, 3, 8, 32} {
		c := exec.New(context.Background(), exec.Limits{Workers: workers})
		out := make([]int, work)
		prefix, partial, err := For(c, work, 7, squareKernel(out))
		if err != nil || partial || prefix != work {
			t.Fatalf("workers %d: (%d, %v, %v), want (%d, false, nil)", workers, prefix, partial, err, work)
		}
		for i := range out {
			if out[i] != i*i {
				t.Fatalf("workers %d: out[%d] = %d", workers, i, out[i])
			}
		}
		if c.Units() != work {
			t.Fatalf("workers %d: charged %d units, want %d", workers, c.Units(), work)
		}
	}
}

func TestForBudgetPrefixIsIdenticalAcrossWorkerCounts(t *testing.T) {
	const work = 500
	for _, budget := range []int64{1, 2, 13, 100, 250, 499, 500} {
		var wantPrefix = -1
		for _, workers := range []int{1, 2, 8} {
			c := exec.New(context.Background(), exec.Limits{Budget: budget, Workers: workers})
			out := make([]int, work)
			prefix, partial, err := For(c, work, 32, squareKernel(out))
			if err != nil {
				t.Fatalf("budget %d workers %d: %v", budget, workers, err)
			}
			if !partial {
				t.Fatalf("budget %d workers %d: truncated run not flagged partial", budget, workers)
			}
			if wantPrefix == -1 {
				wantPrefix = prefix
			} else if prefix != wantPrefix {
				t.Fatalf("budget %d: prefix %d at %d workers, %d at 1 worker", budget, prefix, workers, wantPrefix)
			}
			if int64(prefix) >= budget {
				t.Fatalf("budget %d: prefix %d not a strict truncation", budget, prefix)
			}
			for i := 0; i < prefix; i++ {
				if out[i] != i*i {
					t.Fatalf("budget %d workers %d: prefix row %d not computed", budget, workers, i)
				}
			}
			if c.Units() > budget {
				t.Fatalf("budget %d workers %d: charged %d units", budget, workers, c.Units())
			}
			if !c.Exhausted() {
				t.Fatalf("budget %d workers %d: parent not exhausted after For", budget, workers)
			}
		}
	}
}

func TestForAmpleBudgetIsNotPartial(t *testing.T) {
	for _, workers := range []int{1, 8} {
		c := exec.New(context.Background(), exec.Limits{Budget: 501, Workers: workers})
		out := make([]int, 500)
		prefix, partial, err := For(c, 500, 0, squareKernel(out))
		if err != nil || partial || prefix != 500 {
			t.Fatalf("workers %d: ample budget gave (%d, %v, %v)", workers, prefix, partial, err)
		}
	}
}

func TestForCancellationReachesEveryWorker(t *testing.T) {
	for _, workers := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		var fired atomic.Bool
		ctx = exec.WithHook(ctx, func(nth int64) {
			if nth == 40 && fired.CompareAndSwap(false, true) {
				cancel()
			}
		})
		c := exec.New(ctx, exec.Limits{Workers: workers})
		out := make([]int, 2000)
		_, _, err := For(c, 2000, 50, squareKernel(out))
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers %d: err = %v, want Canceled", workers, err)
		}
		if !errors.Is(c.Err(), context.Canceled) {
			t.Fatalf("workers %d: parent Err = %v after merge", workers, c.Err())
		}
	}
}

func TestForPropagatesKernelError(t *testing.T) {
	boom := errors.New("bad row")
	for _, workers := range []int{1, 8} {
		c := exec.New(context.Background(), exec.Limits{Workers: workers})
		_, _, err := For(c, 100, 10, func(c *exec.Ctl, _, lo, hi int) (int, error) {
			for i := lo; i < hi; i++ {
				if err := c.Point(1); err != nil {
					return i - lo, err
				}
				if i == 57 {
					return i - lo, fmt.Errorf("row %d: %w", i, boom)
				}
			}
			return hi - lo, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers %d: err = %v, want wrapped boom", workers, err)
		}
	}
}

func TestForRepanicsOnCallerGoroutine(t *testing.T) {
	type boom struct{ at int }
	for _, workers := range []int{1, 8} {
		c := exec.New(context.Background(), exec.Limits{Workers: workers})
		err := exec.Guard("shard.test", "", func() error {
			_, _, err := For(c, 100, 10, func(c *exec.Ctl, _, lo, hi int) (int, error) {
				for i := lo; i < hi; i++ {
					if err := c.Point(1); err != nil {
						return i - lo, err
					}
					if i == 42 {
						//lint:gea nopanic -- deliberate fault injection: the test asserts the worker panic is re-raised for Guard
						panic(boom{at: i})
					}
				}
				return hi - lo, nil
			})
			return err
		})
		var ee *exec.ExecError
		if !errors.As(err, &ee) {
			t.Fatalf("workers %d: err = %v (%T), want *exec.ExecError", workers, err, err)
		}
		if bv, ok := ee.PanicValue.(boom); !ok || bv.at != 42 {
			t.Fatalf("workers %d: PanicValue = %#v", workers, ee.PanicValue)
		}
	}
}

func TestForOnStoppedOrInertCtl(t *testing.T) {
	// An exhausted Ctl yields an empty flagged prefix without running.
	c := exec.New(context.Background(), exec.Limits{Budget: 1})
	for c.Err() == nil {
		c.Point(1)
	}
	ran := false
	prefix, partial, err := For(c, 10, 1, func(*exec.Ctl, int, int, int) (int, error) {
		ran = true
		return 0, nil
	})
	if prefix != 0 || !partial || err != nil || ran {
		t.Fatalf("exhausted Ctl: (%d, %v, %v, ran=%v)", prefix, partial, err, ran)
	}

	// A nil Ctl is inert: the loop runs unmetered to completion.
	out := make([]int, 64)
	prefix, partial, err = For(nil, 64, 8, squareKernel(out))
	if prefix != 64 || partial || err != nil {
		t.Fatalf("nil Ctl: (%d, %v, %v)", prefix, partial, err)
	}

	// Zero work is a clean no-op.
	prefix, partial, err = For(c, 0, 1, squareKernel(nil))
	if prefix != 0 || partial || err != nil {
		t.Fatalf("zero work: (%d, %v, %v)", prefix, partial, err)
	}
}

func TestForNOverridesWorkerCount(t *testing.T) {
	c := exec.New(context.Background(), exec.Limits{}) // Workers 1
	var maxShard atomic.Int64
	out := make([]int, 256)
	prefix, partial, err := ForN(c, 4, 256, 16, func(k *exec.Ctl, shard, lo, hi int) (int, error) {
		for {
			cur := maxShard.Load()
			if int64(shard) <= cur || maxShard.CompareAndSwap(cur, int64(shard)) {
				break
			}
		}
		return squareKernel(out)(k, shard, lo, hi)
	})
	if err != nil || partial || prefix != 256 {
		t.Fatalf("(%d, %v, %v)", prefix, partial, err)
	}
	if maxShard.Load() != 15 {
		t.Fatalf("ForN did not run all 16 shards (max %d)", maxShard.Load())
	}
}

package exec

import (
	"context"
	"errors"
	"testing"
)

func TestSplitWorkSlicesSumToRemaining(t *testing.T) {
	for _, tc := range []struct {
		budget, used int64
		counts       []int64
	}{
		{budget: 10, used: 0, counts: []int64{7, 7, 7}},
		{budget: 10, used: 3, counts: []int64{5, 5, 5}},
		{budget: 100, used: 1, counts: []int64{1, 98, 1}},
		{budget: 5, used: 0, counts: []int64{10, 10, 10, 10, 10, 10, 10}},
		{budget: 3, used: 0, counts: []int64{1, 1, 1}},
	} {
		c := New(context.Background(), Limits{Budget: tc.budget})
		c.units = tc.used
		kids := c.SplitWork(tc.counts)
		var total, got int64
		for _, n := range tc.counts {
			total += n
		}
		rem := tc.budget - tc.used
		for i, k := range kids {
			if k.stopped != nil {
				if !IsBudget(k.stopped) {
					t.Fatalf("child %d born stopped with %v", i, k.stopped)
				}
				continue
			}
			if k.budget <= 0 {
				t.Fatalf("budget %d rem %d: child %d uncapped", tc.budget, rem, i)
			}
			got += k.budget
		}
		if rem > total {
			t.Fatalf("test case covers only rem <= total")
		}
		if got != rem {
			t.Fatalf("budget %d used %d: slices sum to %d, want %d", tc.budget, tc.used, got, rem)
		}
	}
}

func TestSplitWorkAmpleBudgetUncapsChildren(t *testing.T) {
	c := New(context.Background(), Limits{Budget: 100})
	kids := c.SplitWork([]int64{30, 30, 30}) // 90 < 100 remaining
	for i, k := range kids {
		if k.budget != 0 || k.stopped != nil {
			t.Fatalf("child %d capped (budget %d, stopped %v) despite ample parent budget", i, k.budget, k.stopped)
		}
	}
	// Unlimited parents always produce uncapped children.
	kids = New(context.Background(), Limits{}).SplitWork([]int64{1 << 40})
	if kids[0].budget != 0 {
		t.Fatalf("unlimited parent produced capped child (budget %d)", kids[0].budget)
	}
}

func TestSplitMergeRoundTripMatchesSequential(t *testing.T) {
	// Running the same charges through split children must leave the
	// parent with the units, checkpoint count and cadence phase the
	// sequential loop would have produced.
	const work, cadence = 95, 10
	seq := New(context.Background(), Limits{CheckEvery: cadence})
	for i := 0; i < work; i++ {
		if err := seq.Point(1); err != nil {
			t.Fatalf("sequential: %v", err)
		}
	}

	par := New(context.Background(), Limits{CheckEvery: cadence})
	counts := []int64{40, 40, 15}
	kids := par.SplitWork(counts)
	for i, k := range kids {
		for j := int64(0); j < counts[i]; j++ {
			if err := k.Point(1); err != nil {
				t.Fatalf("child %d: %v", i, err)
			}
		}
	}
	par.Merge(kids...)

	if par.Units() != seq.Units() {
		t.Fatalf("units: sharded %d, sequential %d", par.Units(), seq.Units())
	}
	if par.checkpoints != seq.checkpoints {
		t.Fatalf("checkpoints: sharded %d, sequential %d", par.checkpoints, seq.checkpoints)
	}
	if par.sinceCheck != seq.sinceCheck {
		t.Fatalf("cadence phase: sharded %d, sequential %d", par.sinceCheck, seq.sinceCheck)
	}
}

func TestSplitSharesHookNumbering(t *testing.T) {
	// Hook sequence numbers come from one shared counter: children of
	// one split never reuse a number, and they continue the parent's.
	var seen []int64
	ctx := WithHook(context.Background(), func(nth int64) { seen = append(seen, nth) })
	c := New(ctx, Limits{})
	for i := 0; i < 3; i++ { // parent checkpoints 1..3
		if err := c.Point(1); err != nil {
			t.Fatal(err)
		}
	}
	kids := c.SplitWork([]int64{2, 2})
	for _, k := range kids {
		for i := 0; i < 2; i++ {
			if err := k.Point(1); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Merge(kids...)
	if err := c.Point(1); err != nil { // parent resumes numbering
		t.Fatal(err)
	}
	want := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if len(seen) != len(want) {
		t.Fatalf("hook saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("hook saw %v, want %v", seen, want)
		}
	}
}

func TestMergeAdoptsFirstChildStop(t *testing.T) {
	c := New(context.Background(), Limits{Budget: 4})
	kids := c.SplitWork([]int64{2, 2})
	// Drive both children to their budget stops.
	for _, k := range kids {
		for k.Err() == nil {
			k.Point(1)
		}
	}
	c.Merge(kids...)
	if !c.Exhausted() {
		t.Fatalf("parent not exhausted after children tripped: %v", c.Err())
	}
	if err := c.Point(1); !errors.Is(err, ErrBudget) {
		t.Fatalf("parent Point after merge = %v, want ErrBudget", err)
	}
}

func TestMergeAdoptsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := New(ctx, Limits{})
	kids := c.SplitWork([]int64{5, 5})
	cancel()
	err := kids[1].Point(1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("child Point = %v, want Canceled", err)
	}
	c.Merge(kids...)
	if !errors.Is(c.Err(), context.Canceled) {
		t.Fatalf("parent Err = %v, want Canceled", c.Err())
	}
}

func TestSplitWorkOnNilAndStoppedParents(t *testing.T) {
	var nilCtl *Ctl
	kids := nilCtl.SplitWork([]int64{3, 3})
	for i, k := range kids {
		if k != nil {
			t.Fatalf("nil parent produced non-nil child %d", i)
		}
	}
	nilCtl.Merge(kids...) // must not panic

	// A parent over budget hands out only zero slices.
	c := New(context.Background(), Limits{Budget: 2})
	c.units = 5
	for i, k := range c.SplitWork([]int64{4, 4}) {
		if !IsBudget(k.Err()) {
			t.Fatalf("child %d of an over-budget parent not born stopped: %v", i, k.Err())
		}
	}
}

func TestSplitChildrenPreserveCadencePhase(t *testing.T) {
	// With cadence 10 and ranges [0,4) [4,12), the sequential loop
	// checkpoints once, inside the second range at its 6th unit. The
	// children must reproduce exactly that.
	var seen int
	ctx := WithHook(context.Background(), func(int64) { seen++ })
	c := New(ctx, Limits{CheckEvery: 10})
	kids := c.SplitWork([]int64{4, 8})
	for i := 0; i < 4; i++ {
		kids[0].Point(1)
	}
	if seen != 0 {
		t.Fatalf("first child checkpointed after 4/10 units")
	}
	for i := 0; i < 8; i++ {
		kids[1].Point(1)
	}
	if seen != 1 {
		t.Fatalf("children ran %d checkpoints over 12 units at cadence 10, want 1", seen)
	}
}

package fascicle

import (
	"context"
	"errors"
	"math"
	"testing"

	"gea/internal/exec"
	"gea/internal/exec/execwalk"
	"gea/internal/sage"
)

// TestLatticeCheckpointWalk proves the lattice miner observes
// cancellation, deadlines and budgets within one checkpoint interval,
// flags truncated results, and converts panics to *exec.ExecError.
func TestLatticeCheckpointWalk(t *testing.T) {
	d := table22Dataset(t)
	p := Params{K: 2, Tolerance: table22Tolerance(), MinSize: 2}
	execwalk.Walk(t, execwalk.Target{
		Name: "Lattice",
		Run: func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := LatticeCtx(ctx, d, p, lim)
			return tr, err
		},
		MaxUnitStep: 1,
	})
}

func TestGreedyCheckpointWalk(t *testing.T) {
	d := table22Dataset(t)
	p := Params{K: 2, Tolerance: table22Tolerance(), MinSize: 2, BatchSize: 3}
	execwalk.Walk(t, execwalk.Target{
		Name: "Greedy",
		Run: func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := GreedyCtx(ctx, d, p, lim)
			return tr, err
		},
		MaxUnitStep: 1,
	})
}

// TestLatticePartialIsPrefix checks a budget-cut lattice run returns a
// subset of the full run's fascicles (plus possibly non-maximal level
// candidates) rather than fabricated sets.
func TestLatticePartialIsPrefix(t *testing.T) {
	d := table22Dataset(t)
	p := Params{K: 2, Tolerance: table22Tolerance(), MinSize: 2}
	full, err := Lattice(d, p)
	if err != nil {
		t.Fatal(err)
	}
	valid := func(f *Fascicle) bool {
		// Every emitted fascicle, partial or not, must respect tolerances.
		tol := toleranceSlice(d, p.Tolerance)
		for i, col := range f.CompactCols {
			if f.Max[i]-f.Min[i] > tol[col] {
				return false
			}
		}
		return f.NumCompact() >= p.K && f.Size() >= p.MinSize
	}
	for budget := int64(1); budget < 60; budget += 7 {
		fs, tr, err := LatticeCtx(context.Background(), d, p, exec.Limits{Budget: budget})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if !tr.Partial && len(fs) != len(full) {
			t.Fatalf("budget %d: unflagged truncation: %d vs %d fascicles", budget, len(fs), len(full))
		}
		for _, f := range fs {
			if !valid(f) {
				t.Fatalf("budget %d: invalid fascicle %+v in partial result", budget, f)
			}
		}
	}
}

// TestParamErrors covers the typed up-front validation, including the
// negative/NaN tolerance cases that previously slipped into the miners.
func TestParamErrors(t *testing.T) {
	d := table22Dataset(t)
	nan := math.NaN()
	negTol := table22Tolerance()
	negTol[sage.MustParseTag("AAAAAAAAAC")] = -1
	nanTol := table22Tolerance()
	nanTol[sage.MustParseTag("AAAAAAAAAC")] = nan

	for name, p := range map[string]Params{
		"negative tolerance": {K: 2, MinSize: 1, Tolerance: negTol},
		"nan tolerance":      {K: 2, MinSize: 1, Tolerance: nanTol},
		"negative maxcand":   {K: 2, MinSize: 1, MaxCandidates: -4},
		"zero k":             {K: 0, MinSize: 1},
		"oversized k":        {K: d.NumTags() + 1, MinSize: 1},
	} {
		err := p.Validate(d)
		var pe *ParamError
		if !errors.As(err, &pe) {
			t.Errorf("%s: got %v, want *ParamError", name, err)
		} else if pe.Param == "" || pe.Error() == "" {
			t.Errorf("%s: ParamError missing detail: %+v", name, pe)
		}
	}
	// Valid params still pass.
	if err := (&Params{K: 2, MinSize: 1, Tolerance: table22Tolerance()}).Validate(d); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

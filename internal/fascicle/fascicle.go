// Package fascicle implements the Fascicles algorithm of Jagadish, Madar and
// Ng [JMN99] as used by the GEA (thesis Section 2.5.1). A fascicle is a set
// of libraries (records) that agree — within a per-attribute tolerance — on
// at least k "compact" attributes (tags). If a fascicle consists of only
// cancerous tissues, its compact tags collectively form a signature of those
// tissues and are candidate genes for clinical follow-up.
//
// Two miners are provided:
//
//   - Lattice: an exact level-wise search over library subsets. Compactness
//     is anti-monotone (adding a library can only widen a tag's range), so
//     subsets that fall below k compact tags prune their supersets, exactly
//     like infrequent itemsets in Apriori. It returns maximal fascicles.
//   - Greedy: the single-pass batched heuristic in the spirit of the
//     original paper's Phase 1, linear in the number of libraries and tags —
//     the complexity the thesis quotes in Section 3.3.1 — at the cost of
//     order sensitivity.
package fascicle

import (
	"context"
	"fmt"
	"math"
	"sort"

	"gea/internal/exec"
	"gea/internal/sage"
)

// Params configures a mining run. They mirror the GUI of Figure 4.6: the
// number of compact attributes (k), the tolerance vector (the ".meta" file),
// the batch size, and the minimum number of libraries per fascicle.
type Params struct {
	// K is the minimum number of compact attributes a fascicle must have.
	K int
	// Tolerance is the per-tag compactness tolerance ("metadata"). Tags
	// absent from the map get tolerance 0.
	Tolerance map[sage.TagID]float64
	// MinSize is the minimum number of libraries per fascicle ("for a
	// fascicle to be frequent"); the case studies use 3.
	MinSize int
	// BatchSize is the number of libraries the greedy miner folds in per
	// batch; the lattice miner ignores it. Zero means all at once.
	BatchSize int
	// MaxCandidates bounds the lattice frontier as a safety valve; zero
	// means DefaultMaxCandidates.
	MaxCandidates int
}

// DefaultMaxCandidates bounds the lattice miner's per-level frontier.
const DefaultMaxCandidates = 200000

// ParamError is a typed mining-parameter validation failure; Param names
// the offending field so callers (CLI, service layer) can point at it.
type ParamError struct {
	Param string
	Msg   string
}

func (e *ParamError) Error() string {
	return fmt.Sprintf("fascicle: invalid %s: %s", e.Param, e.Msg)
}

// Validate reports parameter errors against the dataset. Every failure
// is a *ParamError, caught up front instead of looping or panicking
// deep inside a miner.
func (p *Params) Validate(d *sage.Dataset) error {
	if d == nil || d.NumLibraries() == 0 {
		return &ParamError{Param: "dataset", Msg: "empty dataset"}
	}
	if p.K <= 0 {
		return &ParamError{Param: "K", Msg: "must be positive"}
	}
	if p.K > d.NumTags() {
		// "By definition, the number of compact attributes cannot exceed the
		// total number of attributes in the tissue type."
		return &ParamError{Param: "K", Msg: fmt.Sprintf("K=%d exceeds %d attributes", p.K, d.NumTags())}
	}
	if p.MinSize < 1 {
		return &ParamError{Param: "MinSize", Msg: "must be at least 1"}
	}
	if p.BatchSize < 0 {
		return &ParamError{Param: "BatchSize", Msg: "must not be negative"}
	}
	if p.MaxCandidates < 0 {
		return &ParamError{Param: "MaxCandidates", Msg: "must not be negative"}
	}
	for t, v := range p.Tolerance {
		if v < 0 || math.IsNaN(v) {
			return &ParamError{Param: "Tolerance", Msg: fmt.Sprintf("tag %s has tolerance %g; must be a non-negative number", t, v)}
		}
	}
	return nil
}

// Fascicle is one mined result: a set of library rows and the compact tags
// they agree on.
type Fascicle struct {
	// Rows are dataset row indices, ascending.
	Rows []int
	// CompactCols are dataset column indices of the compact tags, ascending.
	CompactCols []int
	// Min and Max give the value range of each compact column across Rows,
	// parallel to CompactCols.
	Min, Max []float64
}

// Size returns the number of libraries in the fascicle.
func (f *Fascicle) Size() int { return len(f.Rows) }

// NumCompact returns the number of compact tags.
func (f *Fascicle) NumCompact() int { return len(f.CompactCols) }

// LibraryNames resolves the member libraries' names against the dataset.
func (f *Fascicle) LibraryNames(d *sage.Dataset) []string {
	names := make([]string, len(f.Rows))
	for i, r := range f.Rows {
		names[i] = d.Libs[r].Name
	}
	return names
}

// CompactTags resolves the compact columns to TagIDs.
func (f *Fascicle) CompactTags(d *sage.Dataset) []sage.TagID {
	tags := make([]sage.TagID, len(f.CompactCols))
	for i, c := range f.CompactCols {
		tags[i] = d.Tags[c]
	}
	return tags
}

// IsPure reports whether every member library has the given property — the
// purity check of Figure 4.8 ("only the pure fascicles can be further
// analyzed").
func (f *Fascicle) IsPure(d *sage.Dataset, p sage.Property) bool {
	for _, r := range f.Rows {
		if !d.Libs[r].HasProperty(p) {
			return false
		}
	}
	return true
}

// Purity returns the properties the fascicle is pure for, in declaration
// order (cancer, normal, bulk tissue, cell line).
func (f *Fascicle) Purity(d *sage.Dataset) []sage.Property {
	var out []sage.Property
	for _, p := range []sage.Property{sage.PropCancer, sage.PropNormal, sage.PropBulkTissue, sage.PropCellLine} {
		if f.IsPure(d, p) {
			out = append(out, p)
		}
	}
	return out
}

// toleranceSlice aligns the tolerance map to dataset columns.
func toleranceSlice(d *sage.Dataset, tol map[sage.TagID]float64) []float64 {
	out := make([]float64, d.NumTags())
	for j, t := range d.Tags {
		out[j] = tol[t]
	}
	return out
}

// candidate is a lattice node: a library set with its surviving compact
// columns and their ranges.
type candidate struct {
	rows []int
	cols []int
	min  []float64
	max  []float64
}

// Lattice mines all maximal fascicles of d satisfying p exactly, by
// level-wise search with anti-monotone pruning.
func Lattice(d *sage.Dataset, p Params) ([]*Fascicle, error) {
	fs, _, err := LatticeWith(exec.Background(), d, p)
	return fs, err
}

// LatticeCtx is Lattice under execution governance: it observes ctx
// cancellation and deadlines at every checkpoint, stops at lim.Budget
// work units with a flagged partial result, and converts panics into a
// structured *exec.ExecError.
func LatticeCtx(ctx context.Context, d *sage.Dataset, p Params, lim exec.Limits) ([]*Fascicle, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var fs []*Fascicle
	var partial bool
	err := exec.Guard("fascicle.Lattice", "", func() error {
		var err error
		fs, partial, err = LatticeWith(c, d, p)
		return err
	})
	if err != nil {
		fs = nil
	}
	return fs, c.Snapshot(partial), err
}

// LatticeWith is the metered implementation, exported so composite
// operators (core.Mine, the System wrappers) can share one Ctl across
// stages. One work unit is one singleton initialisation, one candidate
// join attempt, or one subsumption scan. On budget exhaustion it
// returns the fascicles confirmed so far plus the current level's
// unsubsumed candidates, with partial = true.
func LatticeWith(c *exec.Ctl, d *sage.Dataset, p Params) (_ []*Fascicle, partial bool, err error) {
	sp := c.StartSpan("fascicle.Lattice")
	sp.SetInput("dataset: %d libraries x %d tags, k=%d", d.NumLibraries(), d.NumTags(), p.K)
	defer c.EndSpan(sp, &partial, &err)
	if err := p.Validate(d); err != nil {
		return nil, false, err
	}
	maxCand := p.MaxCandidates
	if maxCand == 0 {
		maxCand = DefaultMaxCandidates
	}
	tol := toleranceSlice(d, p.Tolerance)

	// cut assembles the flagged partial result when the budget expires:
	// everything emitted so far plus the current level's candidates that
	// no superset has (yet) subsumed.
	cut := func(results []*Fascicle, level []*candidate, subsumed []bool) []*Fascicle {
		//lint:gea ctlcharge -- assembles the flagged partial result after a stop; another charge would re-trip the exhausted budget
		for i, cd := range level {
			if (subsumed == nil || !subsumed[i]) && len(cd.rows) >= p.MinSize {
				results = append(results, &Fascicle{
					Rows: cd.rows, CompactCols: cd.cols, Min: cd.min, Max: cd.max,
				})
			}
		}
		sortFascicles(results)
		return results
	}

	// Level 1: singletons; every column is trivially compact.
	level := make([]*candidate, 0, d.NumLibraries())
	for i := 0; i < d.NumLibraries(); i++ {
		if err := c.Point(1); err != nil {
			if exec.IsBudget(err) {
				return cut(nil, level, nil), true, nil
			}
			return nil, false, err
		}
		cols := make([]int, d.NumTags())
		mn := make([]float64, d.NumTags())
		mx := make([]float64, d.NumTags())
		for j := range cols {
			cols[j] = j
			mn[j] = d.Expr[i][j]
			mx[j] = d.Expr[i][j]
		}
		level = append(level, &candidate{rows: []int{i}, cols: cols, min: mn, max: mx})
	}

	var results []*Fascicle
	for len(level) > 0 {
		subsumed := make([]bool, len(level))
		var next []*candidate
		// Join candidates sharing all but the last row (rows are sorted, so
		// the classic Apriori prefix join applies).
		byPrefix := map[string][]int{}
		for i, c := range level {
			byPrefix[prefixKey(c.rows)] = append(byPrefix[prefixKey(c.rows)], i)
		}
		for _, group := range byPrefix {
			for a := 0; a < len(group); a++ {
				for b := a + 1; b < len(group); b++ {
					if err := c.Point(1); err != nil {
						if exec.IsBudget(err) {
							return cut(results, level, subsumed), true, nil
						}
						return nil, false, err
					}
					ca, cb := level[group[a]], level[group[b]]
					merged := merge(ca, cb, tol, p.K)
					if merged == nil {
						continue
					}
					subsumed[group[a]] = true
					subsumed[group[b]] = true
					next = append(next, merged)
					if len(next) > maxCand {
						return nil, false, fmt.Errorf("fascicle: candidate frontier exceeded %d; raise K or MaxCandidates", maxCand)
					}
				}
			}
		}
		// A surviving superset subsumes *all* its sub-candidates at this
		// level, not just its two join parents.
		if len(next) > 0 {
			idx := map[string]int{}
			for i, c := range level {
				idx[rowsKey(c.rows)] = i
			}
			for _, sup := range next {
				if err := c.Point(1); err != nil {
					if exec.IsBudget(err) {
						return cut(results, level, subsumed), true, nil
					}
					return nil, false, err
				}
				forEachDropOne(sup.rows, func(sub []int) {
					if i, ok := idx[rowsKey(sub)]; ok {
						subsumed[i] = true
					}
				})
			}
		}
		for i, c := range level {
			if !subsumed[i] && len(c.rows) >= p.MinSize {
				results = append(results, &Fascicle{
					Rows: c.rows, CompactCols: c.cols, Min: c.min, Max: c.max,
				})
			}
		}
		level = next
	}
	sortFascicles(results)
	return results, false, nil
}

// merge combines two candidates sharing all but their last row; returns nil
// if the result has fewer than k compact columns.
func merge(a, b *candidate, tol []float64, k int) *candidate {
	rows := make([]int, len(a.rows)+1)
	copy(rows, a.rows)
	last := b.rows[len(b.rows)-1]
	// Keep rows sorted: a's last and b's last differ; order them.
	if last < rows[len(rows)-2] {
		rows[len(rows)-1] = rows[len(rows)-2]
		rows[len(rows)-2] = last
	} else {
		rows[len(rows)-1] = last
	}

	n := 0
	cols := make([]int, 0, minInt(len(a.cols), len(b.cols)))
	mns := make([]float64, 0, cap(cols))
	mxs := make([]float64, 0, cap(cols))
	ia, ib := 0, 0
	for ia < len(a.cols) && ib < len(b.cols) {
		switch {
		case a.cols[ia] < b.cols[ib]:
			ia++
		case a.cols[ia] > b.cols[ib]:
			ib++
		default:
			col := a.cols[ia]
			mn := a.min[ia]
			if b.min[ib] < mn {
				mn = b.min[ib]
			}
			mx := a.max[ia]
			if b.max[ib] > mx {
				mx = b.max[ib]
			}
			if mx-mn <= tol[col] {
				cols = append(cols, col)
				mns = append(mns, mn)
				mxs = append(mxs, mx)
				n++
			}
			ia++
			ib++
		}
	}
	if n < k {
		return nil
	}
	return &candidate{rows: rows, cols: cols, min: mns, max: mxs}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func prefixKey(rows []int) string {
	return rowsKey(rows[:len(rows)-1])
}

func rowsKey(rows []int) string {
	b := make([]byte, 0, 4*len(rows))
	for _, r := range rows {
		b = append(b, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
	}
	return string(b)
}

// forEachDropOne calls fn with each subset of rows missing one element.
func forEachDropOne(rows []int, fn func([]int)) {
	sub := make([]int, len(rows)-1)
	for drop := range rows {
		copy(sub, rows[:drop])
		copy(sub[drop:], rows[drop+1:])
		fn(sub)
	}
}

// Greedy mines fascicles with a single pass over the libraries in batches of
// p.BatchSize: each library joins the first existing cluster it keeps at or
// above k compact tags, else seeds a new cluster. It is linear in libraries
// and tags but order-dependent and not guaranteed maximal.
func Greedy(d *sage.Dataset, p Params) ([]*Fascicle, error) {
	fs, _, err := GreedyWith(exec.Background(), d, p)
	return fs, err
}

// GreedyCtx is Greedy under execution governance; see LatticeCtx.
func GreedyCtx(ctx context.Context, d *sage.Dataset, p Params, lim exec.Limits) ([]*Fascicle, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var fs []*Fascicle
	var partial bool
	err := exec.Guard("fascicle.Greedy", "", func() error {
		var err error
		fs, partial, err = GreedyWith(c, d, p)
		return err
	})
	if err != nil {
		fs = nil
	}
	return fs, c.Snapshot(partial), err
}

// GreedyWith is the metered implementation; one work unit is one
// library folded into the running clustering. A budget stop returns the
// clusters built from the libraries folded so far, flagged partial.
func GreedyWith(c *exec.Ctl, d *sage.Dataset, p Params) (_ []*Fascicle, partial bool, err error) {
	sp := c.StartSpan("fascicle.Greedy")
	sp.SetInput("dataset: %d libraries x %d tags, k=%d", d.NumLibraries(), d.NumTags(), p.K)
	defer c.EndSpan(sp, &partial, &err)
	if err := p.Validate(d); err != nil {
		return nil, false, err
	}
	tol := toleranceSlice(d, p.Tolerance)
	batch := p.BatchSize
	if batch <= 0 {
		batch = d.NumLibraries()
	}

	finish := func(clusters []*candidate) []*Fascicle {
		var results []*Fascicle
		//lint:gea ctlcharge -- materializes the clustering once at the end; it also runs after a budget stop, where a charge would re-trip the exhausted budget
		for _, c := range clusters {
			if len(c.rows) >= p.MinSize {
				sort.Ints(c.rows)
				results = append(results, &Fascicle{
					Rows: c.rows, CompactCols: c.cols, Min: c.min, Max: c.max,
				})
			}
		}
		sortFascicles(results)
		return results
	}

	var clusters []*candidate
	for start := 0; start < d.NumLibraries(); start += batch {
		end := start + batch
		if end > d.NumLibraries() {
			end = d.NumLibraries()
		}
		for i := start; i < end; i++ {
			if err := c.Point(1); err != nil {
				if exec.IsBudget(err) {
					return finish(clusters), true, nil
				}
				return nil, false, err
			}
			placed := false
			for _, c := range clusters {
				if tryAdd(c, d, i, tol, p.K) {
					placed = true
					break
				}
			}
			if !placed {
				cols := make([]int, d.NumTags())
				mn := make([]float64, d.NumTags())
				mx := make([]float64, d.NumTags())
				for j := range cols {
					cols[j] = j
					mn[j] = d.Expr[i][j]
					mx[j] = d.Expr[i][j]
				}
				clusters = append(clusters, &candidate{rows: []int{i}, cols: cols, min: mn, max: mx})
			}
		}
	}
	return finish(clusters), false, nil
}

// tryAdd extends cluster c with row i if at least k compact columns survive.
func tryAdd(c *candidate, d *sage.Dataset, i int, tol []float64, k int) bool {
	row := d.Expr[i]
	// First count survivors without mutating.
	n := 0
	for idx, col := range c.cols {
		mn, mx := c.min[idx], c.max[idx]
		v := row[col]
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		if mx-mn <= tol[col] {
			n++
		}
	}
	if n < k {
		return false
	}
	cols := make([]int, 0, n)
	mns := make([]float64, 0, n)
	mxs := make([]float64, 0, n)
	for idx, col := range c.cols {
		mn, mx := c.min[idx], c.max[idx]
		v := row[col]
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		if mx-mn <= tol[col] {
			cols = append(cols, col)
			mns = append(mns, mn)
			mxs = append(mxs, mx)
		}
	}
	c.rows = append(c.rows, i)
	c.cols, c.min, c.max = cols, mns, mxs
	return true
}

// sortFascicles orders results by size descending, then compact count
// descending, then first row — a stable, reproducible report order.
func sortFascicles(fs []*Fascicle) {
	sort.SliceStable(fs, func(a, b int) bool {
		if len(fs[a].Rows) != len(fs[b].Rows) {
			return len(fs[a].Rows) > len(fs[b].Rows)
		}
		if len(fs[a].CompactCols) != len(fs[b].CompactCols) {
			return len(fs[a].CompactCols) > len(fs[b].CompactCols)
		}
		return fs[a].Rows[0] < fs[b].Rows[0]
	})
}

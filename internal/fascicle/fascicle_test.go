package fascicle

import (
	"math/rand"
	"testing"

	"gea/internal/clean"
	"gea/internal/sage"
	"gea/internal/sagegen"
)

// table22Dataset reproduces the fragment of the SAGE data in Table 2.2.
func table22Dataset(t *testing.T) *sage.Dataset {
	t.Helper()
	tags := []string{"AAAAAAAAAA", "AAAAAAAAAC", "AAAAAAAAAT", "AAAAAACTCC", "AAAAAGAAAA"}
	rows := []struct {
		name string
		vals []float64
	}{
		{"SAGE_BB542_whitematter", []float64{1843, 3, 10, 15, 11}},
		{"SAGE_Duke_1273", []float64{1418, 7, 0, 30, 12}},
		{"SAGE_Duke_757", []float64{1251, 18, 0, 33, 20}},
		{"SAGE_Duke_cerebellum", []float64{1800, 0, 58, 40, 20}},
		{"SAGE_Duke_GBM_H1110", []float64{1050, 25, 1, 60, 15}},
		{"SAGE_Duke_H1020", []float64{1910, 1, 17, 74, 30}},
		{"SAGE_95_259", []float64{503, 8, 0, 0, 456}},
		{"SAGE_95_260", []float64{364, 7, 7, 7, 222}},
		{"SAGE_Br_N", []float64{65, 5, 79, 9, 300}},
		{"SAGE_DCIS", []float64{847, 4, 124, 0, 500}},
	}
	c := &sage.Corpus{}
	for i, r := range rows {
		l := sage.NewLibrary(sage.LibraryMeta{ID: i + 1, Name: r.name, Tissue: "brain"})
		for j, v := range r.vals {
			if v != 0 {
				l.Add(sage.MustParseTag(tags[j]), v)
			}
		}
		c.Libraries = append(c.Libraries, l)
	}
	return sage.BuildWithTags(c, []sage.TagID{
		sage.MustParseTag(tags[0]), sage.MustParseTag(tags[1]), sage.MustParseTag(tags[2]),
		sage.MustParseTag(tags[3]), sage.MustParseTag(tags[4]),
	})
}

// table22Tolerance is the compactness tolerance the thesis imposes on
// Table 2.2: t_AAAAAAAAAA=120, t_AAAAAAAAAC=3, t_AAAAAAAAAT=47,
// t_AAAAAACTCC=60, t_AAAAAGAAAA=20.
//
// Note: the thesis's own example is off by one on AAAAAAAAAT — across the
// three libraries it names, the values are {10, 58, 17}, width 48 > 47, so
// under the printed tolerance that tag would not be compact. We use 48 so
// the intended 5-D fascicle exists as described.
func table22Tolerance() map[sage.TagID]float64 {
	return map[sage.TagID]float64{
		sage.MustParseTag("AAAAAAAAAA"): 120,
		sage.MustParseTag("AAAAAAAAAC"): 3,
		sage.MustParseTag("AAAAAAAAAT"): 48,
		sage.MustParseTag("AAAAAACTCC"): 60,
		sage.MustParseTag("AAAAAGAAAA"): 20,
	}
}

// TestFascicleTable22Example verifies the worked example of Section 2.5.1:
// libraries SAGE_BB542_whitematter, SAGE_Duke_cerebellum and SAGE_Duke_H1020
// form a 5-D fascicle with all five tags compact.
func TestFascicleTable22Example(t *testing.T) {
	d := table22Dataset(t)
	fs, err := Lattice(d, Params{K: 5, Tolerance: table22Tolerance(), MinSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"SAGE_BB542_whitematter": true,
		"SAGE_Duke_cerebellum":   true,
		"SAGE_Duke_H1020":        true,
	}
	found := false
	for _, f := range fs {
		if f.Size() != 3 || f.NumCompact() != 5 {
			continue
		}
		names := f.LibraryNames(d)
		all := true
		for _, n := range names {
			if !want[n] {
				all = false
			}
		}
		if all {
			found = true
			// Check a compact range: AAAAAAAAAA over the three libraries is
			// [1800, 1910], width 110 <= 120.
			j, _ := d.TagColumn(sage.MustParseTag("AAAAAAAAAA"))
			for i, col := range f.CompactCols {
				if col == j {
					if f.Min[i] != 1800 || f.Max[i] != 1910 {
						t.Errorf("AAAAAAAAAA range = [%g, %g], want [1800, 1910]", f.Min[i], f.Max[i])
					}
				}
			}
		}
	}
	if !found {
		t.Fatalf("the thesis's 5-D fascicle was not mined; got %d fascicles", len(fs))
	}
}

func TestValidateParams(t *testing.T) {
	d := table22Dataset(t)
	cases := []Params{
		{K: 0, MinSize: 3},
		{K: 6, MinSize: 3}, // K > attributes
		{K: 2, MinSize: 0}, // MinSize < 1
		{K: 2, MinSize: 3, BatchSize: -1},
	}
	for i, p := range cases {
		if err := p.Validate(d); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := (&Params{K: 2, MinSize: 3}).Validate(nil); err == nil {
		t.Error("nil dataset: expected error")
	}
	if _, err := Lattice(d, Params{K: 0, MinSize: 1}); err == nil {
		t.Error("Lattice(invalid): expected error")
	}
	if _, err := Greedy(d, Params{K: 0, MinSize: 1}); err == nil {
		t.Error("Greedy(invalid): expected error")
	}
}

// Property: every mined fascicle (both algorithms) actually satisfies its
// contract — enough members, enough compact tags, and each compact tag's
// observed range within tolerance and matching the reported Min/Max.
func checkInvariants(t *testing.T, d *sage.Dataset, fs []*Fascicle, p Params) {
	t.Helper()
	tol := toleranceSlice(d, p.Tolerance)
	for fi, f := range fs {
		if f.Size() < p.MinSize {
			t.Errorf("fascicle %d: size %d < MinSize %d", fi, f.Size(), p.MinSize)
		}
		if f.NumCompact() < p.K {
			t.Errorf("fascicle %d: %d compact < K %d", fi, f.NumCompact(), p.K)
		}
		if len(f.Min) != len(f.CompactCols) || len(f.Max) != len(f.CompactCols) {
			t.Fatalf("fascicle %d: ragged ranges", fi)
		}
		for i := 1; i < len(f.Rows); i++ {
			if f.Rows[i-1] >= f.Rows[i] {
				t.Errorf("fascicle %d: rows not sorted", fi)
			}
		}
		for i, col := range f.CompactCols {
			lo, hi := d.Expr[f.Rows[0]][col], d.Expr[f.Rows[0]][col]
			for _, r := range f.Rows[1:] {
				v := d.Expr[r][col]
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if lo != f.Min[i] || hi != f.Max[i] {
				t.Errorf("fascicle %d col %d: reported [%g,%g], actual [%g,%g]",
					fi, col, f.Min[i], f.Max[i], lo, hi)
			}
			if hi-lo > tol[col] {
				t.Errorf("fascicle %d col %d: width %g exceeds tolerance %g",
					fi, col, hi-lo, tol[col])
			}
		}
	}
}

func TestLatticeInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		d := randomDataset(rng, 8, 30)
		p := Params{K: 5 + rng.Intn(10), Tolerance: randomTolerance(rng, d), MinSize: 2}
		fs, err := Lattice(d, p)
		if err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, d, fs, p)
	}
}

func TestGreedyInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		d := randomDataset(rng, 10, 40)
		p := Params{K: 5 + rng.Intn(10), Tolerance: randomTolerance(rng, d), MinSize: 2, BatchSize: 3}
		fs, err := Greedy(d, p)
		if err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, d, fs, p)
	}
}

func randomDataset(rng *rand.Rand, libs, tags int) *sage.Dataset {
	c := &sage.Corpus{}
	tagIDs := make([]sage.TagID, tags)
	for j := range tagIDs {
		tagIDs[j] = sage.TagID(j * 17)
	}
	for i := 0; i < libs; i++ {
		l := sage.NewLibrary(sage.LibraryMeta{ID: i + 1, Name: string(rune('A' + i)), Tissue: "t"})
		for _, tg := range tagIDs {
			if rng.Float64() < 0.7 {
				l.Add(tg, float64(rng.Intn(100)))
			}
		}
		c.Libraries = append(c.Libraries, l)
	}
	return sage.BuildWithTags(c, tagIDs)
}

func randomTolerance(rng *rand.Rand, d *sage.Dataset) map[sage.TagID]float64 {
	tol := map[sage.TagID]float64{}
	for _, tg := range d.Tags {
		tol[tg] = float64(rng.Intn(40))
	}
	return tol
}

// TestLatticeFindsPlantedCore checks the synthetic generator + miner loop:
// the planted brain fascicle core is rediscovered as a pure cancerous
// fascicle (the precondition of case study 1).
func TestLatticeFindsPlantedCore(t *testing.T) {
	res, err := sagegen.Generate(sagegen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cleaned, _, err := clean.Clean(res.Corpus, clean.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ds := sage.Build(cleaned)
	brain, err := ds.SubsetByTissue("brain")
	if err != nil {
		t.Fatal(err)
	}
	tol, err := clean.ToleranceVector(brain, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Most tags are zero, tissue-foreign, or below tolerance in the brain
	// slice, so a K of 55% of the attributes admits the planted core while
	// still being selective.
	p := Params{K: brain.NumTags() * 55 / 100, Tolerance: tol, MinSize: 3}
	fs, err := Lattice(brain, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) == 0 {
		t.Fatal("no fascicles mined from planted data")
	}
	core := map[string]bool{}
	for _, n := range res.FascicleCore["brain"] {
		core[n] = true
	}
	// The largest pure-cancer fascicle should consist of core libraries.
	found := false
	for _, f := range fs {
		if !f.IsPure(brain, sage.PropCancer) || f.Size() < 3 {
			continue
		}
		coreMembers := 0
		for _, n := range f.LibraryNames(brain) {
			if core[n] {
				coreMembers++
			}
		}
		if coreMembers >= 3 {
			found = true
			break
		}
	}
	if !found {
		t.Error("planted cancerous fascicle core was not recovered")
	}
}

func TestGreedyRecoversStructure(t *testing.T) {
	res, err := sagegen.Generate(sagegen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cleaned, _, err := clean.Clean(res.Corpus, clean.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ds := sage.Build(cleaned)
	brain, err := ds.SubsetByTissue("brain")
	if err != nil {
		t.Fatal(err)
	}
	tol, err := clean.ToleranceVector(brain, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{K: brain.NumTags() * 55 / 100, Tolerance: tol, MinSize: 2, BatchSize: 4}
	fs, err := Greedy(brain, p)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, brain, fs, p)
}

func TestPurity(t *testing.T) {
	d := table22Dataset(t)
	// Mark rows: first three cancer bulk, rest normal.
	for i := range d.Libs {
		if i < 3 {
			d.Libs[i].State = sage.Cancer
		} else {
			d.Libs[i].State = sage.Normal
		}
		d.Libs[i].Source = sage.BulkTissue
	}
	f := &Fascicle{Rows: []int{0, 1, 2}}
	if !f.IsPure(d, sage.PropCancer) {
		t.Error("pure cancer fascicle not recognized")
	}
	if f.IsPure(d, sage.PropNormal) {
		t.Error("cancer fascicle reported pure normal")
	}
	props := f.Purity(d)
	if len(props) != 2 || props[0] != sage.PropCancer || props[1] != sage.PropBulkTissue {
		t.Errorf("Purity = %v", props)
	}
	mixed := &Fascicle{Rows: []int{2, 3}}
	if mixed.IsPure(d, sage.PropCancer) || mixed.IsPure(d, sage.PropNormal) {
		t.Error("mixed fascicle reported pure")
	}
}

func TestCompactTagsAndNames(t *testing.T) {
	d := table22Dataset(t)
	f := &Fascicle{Rows: []int{0, 3}, CompactCols: []int{0, 2}}
	tags := f.CompactTags(d)
	if len(tags) != 2 || tags[0] != d.Tags[0] || tags[1] != d.Tags[2] {
		t.Errorf("CompactTags = %v", tags)
	}
	names := f.LibraryNames(d)
	if names[0] != "SAGE_BB542_whitematter" || names[1] != "SAGE_Duke_cerebellum" {
		t.Errorf("LibraryNames = %v", names)
	}
}

// TestLatticeMaximality: no reported fascicle's row set is a strict subset of
// another reported fascicle's row set.
func TestLatticeMaximality(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := randomDataset(rng, 9, 25)
	p := Params{K: 6, Tolerance: randomTolerance(rng, d), MinSize: 2}
	fs, err := Lattice(d, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range fs {
		for j, b := range fs {
			if i == j {
				continue
			}
			if isSubset(a.Rows, b.Rows) {
				t.Errorf("fascicle %d rows %v subset of %d rows %v", i, a.Rows, j, b.Rows)
			}
		}
	}
}

func isSubset(a, b []int) bool {
	if len(a) >= len(b) {
		return false
	}
	set := map[int]bool{}
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

// TestLatticeVsGreedyAgreementOnClearStructure: with unambiguous planted
// clusters the greedy heuristic recovers the same top cluster as the exact
// lattice.
func TestLatticeVsGreedyAgreementOnClearStructure(t *testing.T) {
	// Two well-separated groups of 3 libraries over 10 tags.
	c := &sage.Corpus{}
	tagIDs := make([]sage.TagID, 10)
	for j := range tagIDs {
		tagIDs[j] = sage.TagID(j)
	}
	addLib := func(name string, base float64) {
		l := sage.NewLibrary(sage.LibraryMeta{Name: name, Tissue: "t"})
		for j, tg := range tagIDs {
			l.Add(tg, base+float64(j))
		}
		c.Libraries = append(c.Libraries, l)
	}
	addLib("a1", 10)
	addLib("a2", 11)
	addLib("a3", 12)
	addLib("b1", 500)
	addLib("b2", 501)
	addLib("b3", 502)
	d := sage.BuildWithTags(c, tagIDs)
	tol := map[sage.TagID]float64{}
	for _, tg := range tagIDs {
		tol[tg] = 5
	}
	p := Params{K: 10, Tolerance: tol, MinSize: 3}
	lf, err := Lattice(d, p)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := Greedy(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(lf) != 2 || len(gf) != 2 {
		t.Fatalf("lattice %d, greedy %d fascicles; want 2 and 2", len(lf), len(gf))
	}
	for i := range lf {
		if lf[i].Size() != 3 || gf[i].Size() != 3 {
			t.Errorf("fascicle sizes: lattice %d, greedy %d", lf[i].Size(), gf[i].Size())
		}
	}
}

func TestLatticeCandidateCap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// All-identical libraries: every subset is a fascicle; tiny cap trips.
	c := &sage.Corpus{}
	tagIDs := []sage.TagID{0, 1, 2}
	for i := 0; i < 12; i++ {
		l := sage.NewLibrary(sage.LibraryMeta{Name: string(rune('a' + i)), Tissue: "t"})
		for _, tg := range tagIDs {
			l.Add(tg, 5)
		}
		c.Libraries = append(c.Libraries, l)
	}
	_ = rng
	d := sage.BuildWithTags(c, tagIDs)
	tol := map[sage.TagID]float64{0: 1, 1: 1, 2: 1}
	_, err := Lattice(d, Params{K: 3, Tolerance: tol, MinSize: 2, MaxCandidates: 10})
	if err == nil {
		t.Error("expected candidate-cap error")
	}
}

func TestGreedyBatchEqualsUnbatchedWhenOrderIndependent(t *testing.T) {
	// With disjoint, unambiguous clusters the batch size must not matter.
	c := &sage.Corpus{}
	tagIDs := []sage.TagID{0, 1}
	for i, base := range []float64{1, 1, 1000, 1000} {
		l := sage.NewLibrary(sage.LibraryMeta{Name: string(rune('a' + i)), Tissue: "t"})
		for _, tg := range tagIDs {
			l.Add(tg, base)
		}
		c.Libraries = append(c.Libraries, l)
	}
	d := sage.BuildWithTags(c, tagIDs)
	tol := map[sage.TagID]float64{0: 2, 1: 2}
	p1 := Params{K: 2, Tolerance: tol, MinSize: 2, BatchSize: 1}
	p2 := Params{K: 2, Tolerance: tol, MinSize: 2}
	f1, err := Greedy(d, p1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Greedy(d, p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1) != len(f2) || len(f1) != 2 {
		t.Errorf("batched %d vs unbatched %d fascicles", len(f1), len(f2))
	}
}

// TestCompactnessAntiMonotone is the pruning property the lattice miner
// relies on: adding a library to a set can never increase its compact-tag
// count.
func TestCompactnessAntiMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	d := randomDataset(rng, 10, 30)
	tolMap := randomTolerance(rng, d)
	tol := toleranceSlice(d, tolMap)

	compactCount := func(rows []int) int {
		n := 0
		for j := 0; j < d.NumTags(); j++ {
			lo, hi := d.Expr[rows[0]][j], d.Expr[rows[0]][j]
			for _, r := range rows[1:] {
				v := d.Expr[r][j]
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if hi-lo <= tol[j] {
				n++
			}
		}
		return n
	}

	for trial := 0; trial < 200; trial++ {
		// Random set plus one extra row.
		perm := rng.Perm(d.NumLibraries())
		k := 1 + rng.Intn(d.NumLibraries()-1)
		base := perm[:k]
		extended := perm[:k+1]
		if compactCount(extended) > compactCount(base) {
			t.Fatalf("adding a library increased compactness: %v -> %v", base, extended)
		}
	}
}

// Package genedb implements the GEA's integrated genomic analysis (thesis
// Section 5.2): the auxiliary databases — UNIGENE (tag -> gene), SWISSPROT
// (gene -> protein sequence), PFAM (protein -> family), KEGG (gene ->
// pathway), GENBANK (gene -> DNA sequence), OMIM (gene -> disease) and
// PUBMED (gene -> publications) — held as ordinary relations in the embedded
// relational engine, queried through the join expressions of the thesis,
// e.g.
//
//	GeneRel = π unigene.gene (σ TagRel.tag = unigene.tag (TagRel ⋈ Unigene))
//
// The real databases are external downloads; here they are synthesized from
// the generator's gene catalog with referential consistency (every tag maps
// to a gene, every gene to a protein, and so on), which exercises the same
// query plans.
package genedb

import (
	"fmt"
	"math/rand"

	"gea/internal/relational"
	"gea/internal/sage"
	"gea/internal/sagegen"
)

// Table names in the store.
const (
	TableUnigene   = "Unigene"
	TableSwissprot = "Swissprot"
	TablePfam      = "Pfam"
	TableKegg      = "Kegg"
	TableGenbank   = "Genbank"
	TableOmim      = "Omim"
	TablePubmed    = "Pubmed"
)

// DB bundles the auxiliary relations.
type DB struct {
	Store *relational.Store
}

// pathway/family/disease vocabularies for the synthetic annotations.
var (
	pathways = []string{
		"glycolysis", "citrate cycle", "oxidative phosphorylation",
		"MAPK signaling", "p53 signaling", "cell cycle", "apoptosis",
		"Wnt signaling", "DNA replication", "mismatch repair",
	}
	families = []string{
		"kinase", "zinc finger", "immunoglobulin", "ribosomal", "tubulin",
		"ABC transporter", "homeobox", "GPCR", "protease", "histone",
	}
	diseases = []string{
		"glioblastoma", "breast carcinoma", "renal carcinoma",
		"colorectal cancer", "pancreatic cancer", "melanoma",
		"ovarian carcinoma", "prostate carcinoma", "hypertension", "none known",
	}
)

// Build synthesizes the auxiliary databases from a gene catalog. Generation
// is deterministic for a given seed.
func Build(cat *sagegen.Catalog, seed int64) (*DB, error) {
	if cat == nil || len(cat.Genes) == 0 {
		return nil, fmt.Errorf("genedb: empty catalog")
	}
	rng := rand.New(rand.NewSource(seed))
	s := relational.NewStore()

	unigene, err := s.Create(TableUnigene, relational.Schema{
		{Name: "tag", Kind: relational.KindString},
		{Name: "gene", Kind: relational.KindString},
	})
	if err != nil {
		return nil, err
	}
	swissprot, err := s.Create(TableSwissprot, relational.Schema{
		{Name: "gene", Kind: relational.KindString},
		{Name: "protein", Kind: relational.KindString},
		{Name: "sequence", Kind: relational.KindString},
	})
	if err != nil {
		return nil, err
	}
	pfam, err := s.Create(TablePfam, relational.Schema{
		{Name: "protein", Kind: relational.KindString},
		{Name: "family", Kind: relational.KindString},
	})
	if err != nil {
		return nil, err
	}
	kegg, err := s.Create(TableKegg, relational.Schema{
		{Name: "gene", Kind: relational.KindString},
		{Name: "pathway", Kind: relational.KindString},
	})
	if err != nil {
		return nil, err
	}
	genbank, err := s.Create(TableGenbank, relational.Schema{
		{Name: "gene", Kind: relational.KindString},
		{Name: "dna", Kind: relational.KindString},
	})
	if err != nil {
		return nil, err
	}
	omim, err := s.Create(TableOmim, relational.Schema{
		{Name: "gene", Kind: relational.KindString},
		{Name: "disease", Kind: relational.KindString},
		{Name: "chromosome", Kind: relational.KindInt},
	})
	if err != nil {
		return nil, err
	}
	pubmed, err := s.Create(TablePubmed, relational.Schema{
		{Name: "gene", Kind: relational.KindString},
		{Name: "pmid", Kind: relational.KindInt},
		{Name: "title", Kind: relational.KindString},
	})
	if err != nil {
		return nil, err
	}

	pmid := int64(10000000)
	for _, g := range cat.Genes {
		unigene.MustInsert(relational.S(g.Tag.String()), relational.S(g.Name))
		protein := "P_" + g.Name
		swissprot.MustInsert(relational.S(g.Name), relational.S(protein),
			relational.S(proteinSequence(rng)))
		pfam.MustInsert(relational.S(protein), relational.S(families[rng.Intn(len(families))]))
		// Genes sit on 1-3 pathways.
		n := 1 + rng.Intn(3)
		for _, p := range rng.Perm(len(pathways))[:n] {
			kegg.MustInsert(relational.S(g.Name), relational.S(pathways[p]))
		}
		genbank.MustInsert(relational.S(g.Name), relational.S(dnaSequence(rng)))
		omim.MustInsert(relational.S(g.Name), relational.S(diseases[rng.Intn(len(diseases))]),
			relational.I(int64(1+rng.Intn(23))))
		// 0-3 publications per gene.
		for k := 0; k < rng.Intn(4); k++ {
			pmid++
			pubmed.MustInsert(relational.S(g.Name), relational.I(pmid),
				relational.S(fmt.Sprintf("Expression of %s in neoplastic tissue, part %d", g.Name, k+1)))
		}
	}
	return &DB{Store: s}, nil
}

const aminoAcids = "ACDEFGHIKLMNPQRSTVWY"

func proteinSequence(rng *rand.Rand) string {
	n := 60 + rng.Intn(120)
	b := make([]byte, n)
	for i := range b {
		b[i] = aminoAcids[rng.Intn(len(aminoAcids))]
	}
	return string(b)
}

func dnaSequence(rng *rand.Rand) string {
	const bases = "ACGT"
	n := 120 + rng.Intn(240)
	b := make([]byte, n)
	for i := range b {
		b[i] = bases[rng.Intn(len(bases))]
	}
	return string(b)
}

// TagRel builds a single-column relation of tags — the TagRel of the
// thesis's join expressions, typically the tag list of a SUMY, GAP or top
// gap table.
func TagRel(name string, tags []sage.TagID) *relational.Table {
	t := relational.NewTable(name, relational.Schema{{Name: "tag", Kind: relational.KindString}})
	for _, tg := range tags {
		t.MustInsert(relational.S(tg.String()))
	}
	return t
}

// GenesForTags evaluates GeneRel = π gene (σ tag match (TagRel ⋈ Unigene)):
// the tag-to-gene mapper of Section 5.2.1. Unknown tags (sequencing errors)
// simply produce no row.
func (db *DB) GenesForTags(tags []sage.TagID) (*relational.Table, error) {
	unigene, err := db.Store.Get(TableUnigene)
	if err != nil {
		return nil, err
	}
	j, err := TagRel("TagRel", tags).Join(unigene, "tag", "tag")
	if err != nil {
		return nil, err
	}
	p, err := j.Project("gene")
	if err != nil {
		return nil, err
	}
	return p.Distinct(), nil
}

// GeneForTag is the single-tag convenience form of the tag-to-gene mapper
// (the Figure 4.22 search box).
func (db *DB) GeneForTag(tag sage.TagID) (string, error) {
	t, err := db.GenesForTags([]sage.TagID{tag})
	if err != nil {
		return "", err
	}
	if t.Len() == 0 {
		return "", fmt.Errorf("genedb: no gene for tag %v", tag)
	}
	return t.Rows[0][0].Str(), nil
}

// ProteinsForGenes evaluates ProtRel = π protein, sequence (GeneRel ⋈
// Swissprot) — Section 5.2.2.
func (db *DB) ProteinsForGenes(geneRel *relational.Table) (*relational.Table, error) {
	swissprot, err := db.Store.Get(TableSwissprot)
	if err != nil {
		return nil, err
	}
	j, err := geneRel.Join(swissprot, "gene", "gene")
	if err != nil {
		return nil, err
	}
	return j.Project("protein", "sequence")
}

// FamiliesForProteins joins ProtRel with PFAM — Section 5.2.3.
func (db *DB) FamiliesForProteins(protRel *relational.Table) (*relational.Table, error) {
	pfam, err := db.Store.Get(TablePfam)
	if err != nil {
		return nil, err
	}
	j, err := protRel.Join(pfam, "protein", "protein")
	if err != nil {
		return nil, err
	}
	p, err := j.Project("protein", "family")
	if err != nil {
		return nil, err
	}
	return p.Distinct(), nil
}

// PathwaysForGenes joins GeneRel with KEGG — Section 5.2.4.
func (db *DB) PathwaysForGenes(geneRel *relational.Table) (*relational.Table, error) {
	kegg, err := db.Store.Get(TableKegg)
	if err != nil {
		return nil, err
	}
	j, err := geneRel.Join(kegg, "gene", "gene")
	if err != nil {
		return nil, err
	}
	p, err := j.Project("gene", "pathway")
	if err != nil {
		return nil, err
	}
	return p.Distinct(), nil
}

// DNAForGene looks up the GENBANK sequence — Section 5.2.5.
func (db *DB) DNAForGene(gene string) (string, error) {
	genbank, err := db.Store.Get(TableGenbank)
	if err != nil {
		return "", err
	}
	hits := genbank.Select(genbank.ColEq("gene", relational.S(gene)))
	if hits.Len() == 0 {
		return "", fmt.Errorf("genedb: no GENBANK entry for gene %q", gene)
	}
	return hits.Rows[0][1].Str(), nil
}

// DiseasesForGenes answers the OMIM questions of Section 5.2.6, e.g. "what
// human genes are related to hypertension, and which of those are on
// chromosome 17?" — pass the disease and an optional chromosome (0 = any).
func (db *DB) DiseasesForGenes(disease string, chromosome int) (*relational.Table, error) {
	omim, err := db.Store.Get(TableOmim)
	if err != nil {
		return nil, err
	}
	pred := omim.ColEq("disease", relational.S(disease))
	if chromosome > 0 {
		pred = relational.And(pred, omim.ColEq("chromosome", relational.I(int64(chromosome))))
	}
	return omim.Select(pred).Project("gene", "chromosome")
}

// PublicationsForGene lists the PUBMED entries for a gene — Section 5.2.7.
func (db *DB) PublicationsForGene(gene string) (*relational.Table, error) {
	pubmed, err := db.Store.Get(TablePubmed)
	if err != nil {
		return nil, err
	}
	return pubmed.Select(pubmed.ColEq("gene", relational.S(gene))).Project("pmid", "title")
}

// Annotate runs the full integration pipeline of Section 5.2 for a list of
// candidate tags and returns one report line per resolved gene.
type Annotation struct {
	Tag      sage.TagID
	Gene     string
	Protein  string
	Family   string
	Pathways []string
	Disease  string
	PubMed   []string
}

// AnnotateTags resolves each tag through every auxiliary database. Tags
// without a gene mapping (sequencing errors) are skipped.
func (db *DB) AnnotateTags(tags []sage.TagID) ([]Annotation, error) {
	unigene, err := db.Store.Get(TableUnigene)
	if err != nil {
		return nil, err
	}
	swissprot, err := db.Store.Get(TableSwissprot)
	if err != nil {
		return nil, err
	}
	pfam, err := db.Store.Get(TablePfam)
	if err != nil {
		return nil, err
	}
	kegg, err := db.Store.Get(TableKegg)
	if err != nil {
		return nil, err
	}
	omim, err := db.Store.Get(TableOmim)
	if err != nil {
		return nil, err
	}
	pubmed, err := db.Store.Get(TablePubmed)
	if err != nil {
		return nil, err
	}

	var out []Annotation
	for _, tg := range tags {
		hit := unigene.Select(unigene.ColEq("tag", relational.S(tg.String())))
		if hit.Len() == 0 {
			continue
		}
		gene := hit.Rows[0][1].Str()
		a := Annotation{Tag: tg, Gene: gene}
		if sp := swissprot.Select(swissprot.ColEq("gene", relational.S(gene))); sp.Len() > 0 {
			a.Protein = sp.Rows[0][1].Str()
		}
		if pf := pfam.Select(pfam.ColEq("protein", relational.S(a.Protein))); pf.Len() > 0 {
			a.Family = pf.Rows[0][1].Str()
		}
		for _, r := range kegg.Select(kegg.ColEq("gene", relational.S(gene))).Rows {
			a.Pathways = append(a.Pathways, r[1].Str())
		}
		if om := omim.Select(omim.ColEq("gene", relational.S(gene))); om.Len() > 0 {
			a.Disease = om.Rows[0][1].Str()
		}
		for _, r := range pubmed.Select(pubmed.ColEq("gene", relational.S(gene))).Rows {
			a.PubMed = append(a.PubMed, r[2].Str())
		}
		out = append(out, a)
	}
	return out, nil
}

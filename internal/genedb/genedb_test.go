package genedb

import (
	"strings"
	"testing"

	"gea/internal/sage"
	"gea/internal/sagegen"
)

func buildDB(t *testing.T) (*DB, *sagegen.Catalog) {
	t.Helper()
	res, err := sagegen.Generate(sagegen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	db, err := Build(res.Catalog, 7)
	if err != nil {
		t.Fatal(err)
	}
	return db, res.Catalog
}

func TestBuildRejectsEmptyCatalog(t *testing.T) {
	if _, err := Build(nil, 1); err == nil {
		t.Error("nil catalog: expected error")
	}
	if _, err := Build(&sagegen.Catalog{}, 1); err == nil {
		t.Error("empty catalog: expected error")
	}
}

func TestReferentialConsistency(t *testing.T) {
	db, cat := buildDB(t)
	unigene, err := db.Store.Get(TableUnigene)
	if err != nil {
		t.Fatal(err)
	}
	if unigene.Len() != len(cat.Genes) {
		t.Errorf("unigene has %d rows, want %d", unigene.Len(), len(cat.Genes))
	}
	// Every gene has exactly one SWISSPROT and GENBANK entry.
	sp, _ := db.Store.Get(TableSwissprot)
	gb, _ := db.Store.Get(TableGenbank)
	if sp.Len() != len(cat.Genes) || gb.Len() != len(cat.Genes) {
		t.Errorf("swissprot %d / genbank %d rows, want %d", sp.Len(), gb.Len(), len(cat.Genes))
	}
}

func TestGeneForTag(t *testing.T) {
	db, cat := buildDB(t)
	g, ok := cat.ByName(sagegen.GeneRibosomalL12)
	if !ok {
		t.Fatal("L12 missing from catalog")
	}
	gene, err := db.GeneForTag(g.Tag)
	if err != nil {
		t.Fatal(err)
	}
	if gene != sagegen.GeneRibosomalL12 {
		t.Errorf("GeneForTag = %q", gene)
	}
	// A tag outside the catalog has no gene — the thesis: "there are tags
	// with no known corresponding genes".
	if _, err := db.GeneForTag(sage.TagID(12345) ^ g.Tag ^ 0xFFFFF); err == nil {
		// That arbitrary tag could collide with a real one; check it first.
		if _, real := cat.ByTag(sage.TagID(12345) ^ g.Tag ^ 0xFFFFF); !real {
			t.Error("unknown tag: expected error")
		}
	}
}

func TestJoinPipeline(t *testing.T) {
	db, cat := buildDB(t)
	tags := []sage.TagID{cat.Genes[0].Tag, cat.Genes[1].Tag, cat.Genes[2].Tag}

	geneRel, err := db.GenesForTags(tags)
	if err != nil {
		t.Fatal(err)
	}
	if geneRel.Len() != 3 {
		t.Fatalf("GeneRel = %d rows", geneRel.Len())
	}
	protRel, err := db.ProteinsForGenes(geneRel)
	if err != nil {
		t.Fatal(err)
	}
	if protRel.Len() != 3 {
		t.Fatalf("ProtRel = %d rows", protRel.Len())
	}
	seq := protRel.Rows[0][1].Str()
	if len(seq) < 60 {
		t.Errorf("protein sequence too short: %d", len(seq))
	}
	famRel, err := db.FamiliesForProteins(protRel)
	if err != nil {
		t.Fatal(err)
	}
	if famRel.Len() != 3 {
		t.Errorf("FamRel = %d rows", famRel.Len())
	}
	pathRel, err := db.PathwaysForGenes(geneRel)
	if err != nil {
		t.Fatal(err)
	}
	if pathRel.Len() < 3 { // 1-3 pathways per gene
		t.Errorf("PathRel = %d rows", pathRel.Len())
	}
}

func TestDNAForGene(t *testing.T) {
	db, cat := buildDB(t)
	dna, err := db.DNAForGene(cat.Genes[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range dna {
		if !strings.ContainsRune("ACGT", c) {
			t.Fatalf("DNA contains %q", c)
		}
	}
	if _, err := db.DNAForGene("NOT A GENE"); err == nil {
		t.Error("unknown gene: expected error")
	}
}

func TestDiseasesForGenes(t *testing.T) {
	db, _ := buildDB(t)
	all, err := db.DiseasesForGenes("glioblastoma", 0)
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() == 0 {
		t.Fatal("no glioblastoma genes in synthetic OMIM")
	}
	chr17, err := db.DiseasesForGenes("glioblastoma", 17)
	if err != nil {
		t.Fatal(err)
	}
	if chr17.Len() > all.Len() {
		t.Error("chromosome filter grew the result")
	}
	for _, r := range chr17.Rows {
		if r[1].Int() != 17 {
			t.Errorf("row %v not on chromosome 17", r)
		}
	}
}

func TestPublicationsForGene(t *testing.T) {
	db, cat := buildDB(t)
	// Some gene has publications; find one by scanning the table.
	pubmed, err := db.Store.Get(TablePubmed)
	if err != nil {
		t.Fatal(err)
	}
	if pubmed.Len() == 0 {
		t.Fatal("synthetic PUBMED is empty")
	}
	gene := pubmed.Rows[0][0].Str()
	pubs, err := db.PublicationsForGene(gene)
	if err != nil {
		t.Fatal(err)
	}
	if pubs.Len() == 0 {
		t.Error("no publications returned")
	}
	if !strings.Contains(pubs.Rows[0][1].Str(), gene) {
		t.Errorf("title %q does not mention %q", pubs.Rows[0][1].Str(), gene)
	}
	_ = cat
}

func TestAnnotateTags(t *testing.T) {
	db, cat := buildDB(t)
	g, _ := cat.ByName(sagegen.GeneAlphaTubulin)
	// One real tag and one (almost certainly) error tag.
	errTag := g.Tag ^ 0x3
	tags := []sage.TagID{g.Tag}
	if _, real := cat.ByTag(errTag); !real {
		tags = append(tags, errTag)
	}
	anns, err := db.AnnotateTags(tags)
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 1 {
		t.Fatalf("annotated %d tags, want 1", len(anns))
	}
	a := anns[0]
	if a.Gene != sagegen.GeneAlphaTubulin || a.Protein == "" || a.Family == "" ||
		len(a.Pathways) == 0 || a.Disease == "" {
		t.Errorf("annotation incomplete: %+v", a)
	}
}

func TestBuildDeterministic(t *testing.T) {
	_, cat := buildDB(t)
	db1, err := Build(cat, 42)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Build(cat, 42)
	if err != nil {
		t.Fatal(err)
	}
	k1, _ := db1.Store.Get(TableKegg)
	k2, _ := db2.Store.Get(TableKegg)
	if k1.Len() != k2.Len() {
		t.Error("same seed produced different KEGG sizes")
	}
}

func TestJoinQueriesErrorOnMissingTables(t *testing.T) {
	db, cat := buildDB(t)
	// Drop the tables to exercise the error paths.
	db.Store.Drop(TableUnigene)
	if _, err := db.GenesForTags([]sage.TagID{cat.Genes[0].Tag}); err == nil {
		t.Error("GenesForTags without UNIGENE: expected error")
	}
	if _, err := db.GeneForTag(cat.Genes[0].Tag); err == nil {
		t.Error("GeneForTag without UNIGENE: expected error")
	}
	geneRel := TagRel("g", nil)
	db.Store.Drop(TableSwissprot)
	if _, err := db.ProteinsForGenes(geneRel); err == nil {
		t.Error("ProteinsForGenes without SWISSPROT: expected error")
	}
	db.Store.Drop(TablePfam)
	if _, err := db.FamiliesForProteins(geneRel); err == nil {
		t.Error("FamiliesForProteins without PFAM: expected error")
	}
	db.Store.Drop(TableKegg)
	if _, err := db.PathwaysForGenes(geneRel); err == nil {
		t.Error("PathwaysForGenes without KEGG: expected error")
	}
	db.Store.Drop(TableGenbank)
	if _, err := db.DNAForGene("x"); err == nil {
		t.Error("DNAForGene without GENBANK: expected error")
	}
	db.Store.Drop(TableOmim)
	if _, err := db.DiseasesForGenes("x", 0); err == nil {
		t.Error("DiseasesForGenes without OMIM: expected error")
	}
	db.Store.Drop(TablePubmed)
	if _, err := db.PublicationsForGene("x"); err == nil {
		t.Error("PublicationsForGene without PUBMED: expected error")
	}
	if _, err := db.AnnotateTags([]sage.TagID{cat.Genes[0].Tag}); err == nil {
		t.Error("AnnotateTags without tables: expected error")
	}
}

func TestTagRelShape(t *testing.T) {
	_, cat := buildDB(t)
	rel := TagRel("mine", []sage.TagID{cat.Genes[0].Tag, cat.Genes[1].Tag})
	if rel.Len() != 2 || rel.Schema[0].Name != "tag" {
		t.Errorf("TagRel = %d rows, schema %v", rel.Len(), rel.Schema.Names())
	}
}

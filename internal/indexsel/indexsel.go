// Package indexsel implements the index-selection machinery of thesis
// Section 3.3.2, which optimizes the populate() operator. populate() is a
// conjunction of ~25,000 range conditions — far too many to index them all —
// so the GEA indexes only the m tags with the highest entropy and relies on
// a probabilistic guarantee: with n total tags and p tags in a SUMY table,
// the number of indexed tags hit follows Binomial(p, m/n), and m is chosen
// as the smallest value giving at least a 99.9% chance of w or more hits.
// Table 3.1 of the thesis tabulates that m for w = 1..10.
package indexsel

import (
	"fmt"
	"sort"

	"gea/internal/sage"
	"gea/internal/stats"
)

// DefaultConfidence is the probability threshold of the thesis (99.9%).
const DefaultConfidence = 0.999

// HitProbability returns P(at least w of the p SUMY tags are indexed) when m
// of the n tags carry indexes, under the thesis's uniform-inclusion model:
// the count of indexed SUMY tags is Binomial(p, m/n).
func HitProbability(n, p, m, w int) (float64, error) {
	if n <= 0 || p < 0 || p > n || m < 0 || m > n || w < 0 {
		return 0, fmt.Errorf("indexsel: invalid arguments n=%d p=%d m=%d w=%d", n, p, m, w)
	}
	return stats.BinomialTailAtLeast(p, w, float64(m)/float64(n)), nil
}

// IndicesRequired returns the smallest m such that HitProbability(n, p, m, w)
// is at least conf. With n=60000, p=25000, conf=0.999 it reproduces
// Table 3.1 exactly (w=1 -> 17, w=2 -> 23, ..., w=10 -> 55).
func IndicesRequired(n, p, w int, conf float64) (int, error) {
	if conf <= 0 || conf >= 1 {
		return 0, fmt.Errorf("indexsel: confidence %v out of (0, 1)", conf)
	}
	if w < 1 {
		return 0, fmt.Errorf("indexsel: w must be at least 1")
	}
	if p < w {
		return 0, fmt.Errorf("indexsel: cannot hit %d indices with only %d SUMY tags", w, p)
	}
	// HitProbability is non-decreasing in m, so binary search applies.
	lo, hi := w, n
	if ok, err := HitProbability(n, p, hi, w); err != nil {
		return 0, err
	} else if ok < conf {
		return 0, fmt.Errorf("indexsel: even m=n gives probability %v < %v", ok, conf)
	}
	for lo < hi {
		mid := (lo + hi) / 2
		pr, err := HitProbability(n, p, mid, w)
		if err != nil {
			return 0, err
		}
		if pr >= conf {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// Table31Row is one row of Table 3.1.
type Table31Row struct {
	W int // indices hit (at least)
	M int // indices required
}

// Table31 computes the thesis's Table 3.1 for the given corpus parameters
// (n = 60000 total tags, p = 25000 SUMY tags in the thesis).
func Table31(n, p, maxW int, conf float64) ([]Table31Row, error) {
	rows := make([]Table31Row, 0, maxW)
	for w := 1; w <= maxW; w++ {
		m, err := IndicesRequired(n, p, w, conf)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table31Row{W: w, M: m})
	}
	return rows, nil
}

// RankedTag pairs a tag with its entropy score.
type RankedTag struct {
	Tag     sage.TagID
	Col     int // dataset column
	Entropy float64
}

// EntropyBins is the histogram resolution used when scoring tags.
const EntropyBins = 16

// RankByEntropy scores every tag of the dataset by the entropy of its
// expression values across libraries and returns them ranked, highest first.
// "Our heuristic is to pick the tags with the highest entropy, that is,
// highest variation."
func RankByEntropy(d *sage.Dataset) []RankedTag {
	ranked := make([]RankedTag, d.NumTags())
	col := make([]float64, d.NumLibraries())
	for j, tag := range d.Tags {
		for i := range d.Expr {
			col[i] = d.Expr[i][j]
		}
		ranked[j] = RankedTag{Tag: tag, Col: j, Entropy: stats.Entropy(col, EntropyBins)}
	}
	sort.SliceStable(ranked, func(a, b int) bool { return ranked[a].Entropy > ranked[b].Entropy })
	return ranked
}

// RankFromEntropies ranks tags from externally computed per-column
// entropies (tags[j] and entropies[j] describe dataset column j). It is
// the sort half of RankByEntropy split out so incremental maintenance in
// internal/ingest, which keeps per-column entropy state up to date across
// appends, produces the exact ranking a from-scratch RankByEntropy would:
// the same stable sort over the same column-ordered input.
func RankFromEntropies(tags []sage.TagID, entropies []float64) ([]RankedTag, error) {
	if len(tags) != len(entropies) {
		return nil, fmt.Errorf("indexsel: %d tags but %d entropies", len(tags), len(entropies))
	}
	ranked := make([]RankedTag, len(tags))
	for j, tag := range tags {
		ranked[j] = RankedTag{Tag: tag, Col: j, Entropy: entropies[j]}
	}
	sort.SliceStable(ranked, func(a, b int) bool { return ranked[a].Entropy > ranked[b].Entropy })
	return ranked, nil
}

// TopEntropyTags returns the m highest-entropy tags of the dataset — the
// tags the GEA creates indexes for.
func TopEntropyTags(d *sage.Dataset, m int) []RankedTag {
	ranked := RankByEntropy(d)
	if m > len(ranked) {
		m = len(ranked)
	}
	if m < 0 {
		m = 0
	}
	return ranked[:m]
}

// Advise picks the index budget for a planned populate(): given the dataset
// (n tags), the expected SUMY size p, the desired number of index hits w and
// the confidence, it returns the top-m entropy tags with m from
// IndicesRequired.
func Advise(d *sage.Dataset, p, w int, conf float64) ([]RankedTag, error) {
	m, err := IndicesRequired(d.NumTags(), p, w, conf)
	if err != nil {
		return nil, err
	}
	return TopEntropyTags(d, m), nil
}

package indexsel

import (
	"math/rand"
	"testing"

	"gea/internal/sage"
	"gea/internal/sagegen"
)

// TestTable31Exact reproduces Table 3.1 of the thesis: with n = 60,000 total
// tags and p = 25,000 tags in a SUMY table, the number of indices required to
// guarantee w hits with 99.9% probability.
func TestTable31Exact(t *testing.T) {
	want := map[int]int{
		1: 17, 2: 23, 3: 27, 4: 32, 5: 36,
		6: 40, 7: 44, 8: 48, 9: 51, 10: 55,
	}
	rows, err := Table31(60000, 25000, 10, DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if want[r.W] != r.M {
			t.Errorf("w=%d: m=%d, want %d (Table 3.1)", r.W, r.M, want[r.W])
		}
	}
}

func TestIndicesRequiredIsMinimal(t *testing.T) {
	// m-1 must fall below the confidence, m must reach it.
	for _, w := range []int{1, 4, 10} {
		m, err := IndicesRequired(60000, 25000, w, DefaultConfidence)
		if err != nil {
			t.Fatal(err)
		}
		atM, _ := HitProbability(60000, 25000, m, w)
		below, _ := HitProbability(60000, 25000, m-1, w)
		if atM < DefaultConfidence {
			t.Errorf("w=%d: P(m=%d) = %v < conf", w, m, atM)
		}
		if below >= DefaultConfidence {
			t.Errorf("w=%d: m=%d not minimal (m-1 already suffices)", w, m)
		}
	}
}

func TestHitProbabilityBoundsAndMonotonicity(t *testing.T) {
	n, p := 1000, 400
	prev := -1.0
	for m := 0; m <= n; m += 50 {
		pr, err := HitProbability(n, p, m, 3)
		if err != nil {
			t.Fatal(err)
		}
		if pr < 0 || pr > 1 {
			t.Fatalf("P out of range: %v", pr)
		}
		if pr < prev-1e-12 {
			t.Fatalf("P not monotone in m at m=%d", m)
		}
		prev = pr
	}
	// w=0 is certain.
	if pr, _ := HitProbability(n, p, 0, 0); pr != 1 {
		t.Errorf("P(w=0) = %v, want 1", pr)
	}
	// m=0 with w>=1 is impossible.
	if pr, _ := HitProbability(n, p, 0, 1); pr != 0 {
		t.Errorf("P(m=0, w=1) = %v, want 0", pr)
	}
}

func TestHitProbabilityErrors(t *testing.T) {
	cases := [][4]int{
		{0, 0, 0, 0},   // n=0
		{10, -1, 0, 0}, // p<0
		{10, 11, 0, 0}, // p>n
		{10, 5, -1, 0}, // m<0
		{10, 5, 11, 0}, // m>n
		{10, 5, 5, -1}, // w<0
	}
	for _, c := range cases {
		if _, err := HitProbability(c[0], c[1], c[2], c[3]); err == nil {
			t.Errorf("HitProbability(%v): expected error", c)
		}
	}
}

func TestIndicesRequiredErrors(t *testing.T) {
	if _, err := IndicesRequired(100, 50, 1, 0); err == nil {
		t.Error("conf=0: expected error")
	}
	if _, err := IndicesRequired(100, 50, 1, 1); err == nil {
		t.Error("conf=1: expected error")
	}
	if _, err := IndicesRequired(100, 50, 0, 0.9); err == nil {
		t.Error("w=0: expected error")
	}
	if _, err := IndicesRequired(100, 3, 5, 0.9); err == nil {
		t.Error("w>p: expected error")
	}
}

func TestTable31PropagatesErrors(t *testing.T) {
	if _, err := Table31(100, 2, 5, 0.999); err == nil {
		t.Error("expected error when w exceeds p")
	}
}

func buildEntropyDataset() *sage.Dataset {
	c := &sage.Corpus{}
	// Tag A varies wildly; tag C is constant; tag G varies a little.
	vals := map[string][]float64{
		"AAAAAAAAAA": {0, 50, 100, 150, 200, 250},
		"CCCCCCCCCC": {7, 7, 7, 7, 7, 7},
		"GGGGGGGGGG": {10, 11, 10, 11, 10, 11},
	}
	for i := 0; i < 6; i++ {
		l := sage.NewLibrary(sage.LibraryMeta{ID: i + 1, Name: string(rune('a' + i)), Tissue: "t"})
		for s, vs := range vals {
			l.Add(sage.MustParseTag(s), vs[i]+1) // +1 keeps zeros present
		}
		c.Libraries = append(c.Libraries, l)
	}
	return sage.Build(c)
}

func TestRankByEntropy(t *testing.T) {
	ds := buildEntropyDataset()
	ranked := RankByEntropy(ds)
	if len(ranked) != 3 {
		t.Fatalf("ranked %d tags", len(ranked))
	}
	if ranked[0].Tag != sage.MustParseTag("AAAAAAAAAA") {
		t.Errorf("highest-entropy tag = %v", ranked[0].Tag)
	}
	if ranked[2].Tag != sage.MustParseTag("CCCCCCCCCC") || ranked[2].Entropy != 0 {
		t.Errorf("constant tag should rank last with entropy 0: %+v", ranked[2])
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Entropy > ranked[i-1].Entropy {
			t.Error("ranking not descending")
		}
	}
}

func TestTopEntropyTags(t *testing.T) {
	ds := buildEntropyDataset()
	top := TopEntropyTags(ds, 2)
	if len(top) != 2 {
		t.Fatalf("got %d", len(top))
	}
	if got := TopEntropyTags(ds, 99); len(got) != 3 {
		t.Errorf("m beyond tags: %d", len(got))
	}
	if got := TopEntropyTags(ds, -1); len(got) != 0 {
		t.Errorf("negative m: %d", len(got))
	}
}

func TestAdvise(t *testing.T) {
	res, err := sagegen.Generate(sagegen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := sage.Build(res.Corpus)
	p := ds.NumTags() / 2
	tags, err := Advise(ds, p, 2, DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	wantM, err := IndicesRequired(ds.NumTags(), p, 2, DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	if len(tags) != wantM {
		t.Errorf("Advise returned %d tags, want %d", len(tags), wantM)
	}
	// The advised tags should all have positive entropy on real data.
	for _, rt := range tags {
		if rt.Entropy <= 0 {
			t.Errorf("advised tag %v has entropy %v", rt.Tag, rt.Entropy)
		}
	}
	if _, err := Advise(ds, p, 0, DefaultConfidence); err == nil {
		t.Error("Advise(w=0): expected error")
	}
}

// TestHitProbabilityMonteCarlo validates the binomial model of Section 3.3.2
// empirically: draw random SUMY tag sets and random index placements, count
// hits, and compare the empirical P(>= w hits) with HitProbability.
func TestHitProbabilityMonteCarlo(t *testing.T) {
	const (
		n      = 2000 // total tags
		p      = 800  // SUMY tags
		m      = 40   // indexes
		trials = 4000
	)
	rng := rand.New(rand.NewSource(99))
	hitCounts := make([]int, trials)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for tr := 0; tr < trials; tr++ {
		// Random m indexed tags.
		indexed := map[int]bool{}
		for len(indexed) < m {
			indexed[rng.Intn(n)] = true
		}
		// Random p-subset as the SUMY tags (partial Fisher-Yates).
		hits := 0
		for i := 0; i < p; i++ {
			j := i + rng.Intn(n-i)
			perm[i], perm[j] = perm[j], perm[i]
			if indexed[perm[i]] {
				hits++
			}
		}
		hitCounts[tr] = hits
	}
	for _, w := range []int{1, 5, 10, 16} {
		ge := 0
		for _, h := range hitCounts {
			if h >= w {
				ge++
			}
		}
		empirical := float64(ge) / trials
		model, err := HitProbability(n, p, m, w)
		if err != nil {
			t.Fatal(err)
		}
		// The thesis's model treats inclusions as independent
		// (binomial); the true distribution is hypergeometric. At these
		// parameters they agree to within a few percent.
		if diff := empirical - model; diff > 0.06 || diff < -0.06 {
			t.Errorf("w=%d: empirical %.3f vs model %.3f", w, empirical, model)
		}
	}
}

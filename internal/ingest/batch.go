package ingest

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"gea/internal/sage"
)

// BatchLibrary is one submitted library in the wire form the POST /ingest
// endpoint and the gea ingest command accept: tags as their 10-base
// strings, counts as raw (pre-cleaning) tag counts.
type BatchLibrary struct {
	Name   string             `json:"name"`
	Tissue string             `json:"tissue"`
	Cancer bool               `json:"cancer,omitempty"`
	Cell   bool               `json:"cell_line,omitempty"`
	Counts map[string]float64 `json:"counts"`
}

// Batch is one append submission.
type Batch struct {
	Libraries []BatchLibrary `json:"libraries"`
}

// MaxBatchBytes bounds a decoded submission; DecodeBatch refuses larger
// payloads so a hostile client cannot balloon the server.
const MaxBatchBytes = 64 << 20

// EncodeBatch writes the JSON wire form.
func EncodeBatch(w io.Writer, b Batch) error {
	enc := json.NewEncoder(w)
	return enc.Encode(b)
}

// DecodeBatch reads the JSON wire form, bounded by MaxBatchBytes.
func DecodeBatch(r io.Reader) (Batch, error) {
	var b Batch
	dec := json.NewDecoder(io.LimitReader(r, MaxBatchBytes))
	if err := dec.Decode(&b); err != nil {
		return Batch{}, &SchemaError{Reason: fmt.Sprintf("bad batch payload: %v", err)}
	}
	return b, nil
}

// BatchFromLibraries converts generator output (sagegen.EmitBatches) into
// the wire form, so geabench and the gea ingest command feed the server
// the exact corpus the tests replay locally.
func BatchFromLibraries(libs []*sage.Library) Batch {
	b := Batch{Libraries: make([]BatchLibrary, 0, len(libs))}
	for _, l := range libs {
		bl := BatchLibrary{
			Name:   l.Meta.Name,
			Tissue: l.Meta.Tissue,
			Cancer: l.Meta.State == sage.Cancer,
			Cell:   l.Meta.Source == sage.CellLine,
			Counts: make(map[string]float64, len(l.Counts)),
		}
		for t, cnt := range l.Counts {
			bl.Counts[t.String()] = cnt
		}
		b.Libraries = append(b.Libraries, bl)
	}
	return b
}

// Rejection records one library that failed screening and was diverted to
// quarantine instead of entering the corpus.
type Rejection struct {
	// Name is the submitted library name (possibly empty or unusable —
	// that may be exactly why it was rejected).
	Name string
	// Err is the *SchemaError describing the violation.
	Err error
}

func (r Rejection) String() string { return fmt.Sprintf("%s: %v", r.Name, r.Err) }

// Screen validates a batch against the library names already in the
// corpus. Valid submissions come back as ready-to-append libraries in
// submission order; invalid ones come back as Rejections, one per broken
// library — a bad library never blocks the rest of its batch.
func Screen(b Batch, existing map[string]bool) (valid []*sage.Library, rejected []Rejection) {
	seen := make(map[string]bool, len(b.Libraries))
	for _, bl := range b.Libraries {
		if err := screenOne(bl, existing, seen); err != nil {
			rejected = append(rejected, Rejection{Name: bl.Name, Err: err})
			continue
		}
		seen[bl.Name] = true
		meta := sage.LibraryMeta{Name: bl.Name, Tissue: bl.Tissue}
		if bl.Cancer {
			meta.State = sage.Cancer
		}
		if bl.Cell {
			meta.Source = sage.CellLine
		}
		l := sage.NewLibrary(meta)
		for ts, cnt := range bl.Counts {
			tag, _ := sage.ParseTag(ts) // screened above
			l.Counts[tag] = cnt
		}
		l.RefreshMeta()
		valid = append(valid, l)
	}
	return valid, rejected
}

func screenOne(bl BatchLibrary, existing, seen map[string]bool) error {
	if bl.Name == "" {
		return &SchemaError{Reason: "empty library name"}
	}
	if strings.ContainsAny(bl.Name, "/\\") {
		return &SchemaError{Lib: bl.Name, Reason: "name contains a path separator"}
	}
	if existing[bl.Name] {
		return &SchemaError{Lib: bl.Name, Reason: "library already in the corpus"}
	}
	if seen[bl.Name] {
		return &SchemaError{Lib: bl.Name, Reason: "duplicate name within the batch"}
	}
	if bl.Tissue == "" {
		return &SchemaError{Lib: bl.Name, Reason: "empty tissue type"}
	}
	if len(bl.Counts) == 0 {
		return &SchemaError{Lib: bl.Name, Reason: "no tag counts"}
	}
	for ts, cnt := range bl.Counts {
		if _, err := sage.ParseTag(ts); err != nil {
			return &SchemaError{Lib: bl.Name, Reason: fmt.Sprintf("bad tag %q: %v", ts, err)}
		}
		if cnt < 0 || math.IsNaN(cnt) || math.IsInf(cnt, 0) {
			return &SchemaError{Lib: bl.Name, Reason: fmt.Sprintf("tag %s has invalid count %g", ts, cnt)}
		}
	}
	return nil
}
